// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the ablation studies from DESIGN.md and
// component microbenchmarks. Reproduced measurements are attached to the
// benchmark output as custom metrics (ACC, TPR, ...), so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's numbers alongside the performance profile.
// Benchmarks use fixed SVM parameters and a single data-selection run per
// iteration; use cmd/leaps-bench for the full grid-searched, multi-run
// protocol.
package leaps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	leaps "repro"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/experiments"
	"repro/internal/hcluster"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/serve"
	"repro/internal/svm"
)

// benchConfig is the fast evaluation configuration shared by the
// table/figure benchmarks.
func benchConfig() core.Config {
	return core.Config{
		Seed:        1,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	}
}

// benchLogs caches generated dataset logs across benchmark iterations.
var benchLogs = map[string]*dataset.Logs{}

func logsFor(b *testing.B, name string) *dataset.Logs {
	b.Helper()
	if l, ok := benchLogs[name]; ok {
		return l
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	logs, err := spec.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	benchLogs[name] = logs
	return logs
}

// evalDataset runs one three-model evaluation and reports the WSVM
// measurements as custom metrics.
func evalDataset(b *testing.B, name string) {
	b.Helper()
	logs := logsFor(b, name)
	var last *core.EvalResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(last.WSVM.ACC, "WSVM-ACC")
	b.ReportMetric(last.SVM.ACC, "SVM-ACC")
	b.ReportMetric(last.CGraph.ACC, "CGraph-ACC")
	b.ReportMetric(last.WSVM.TPR, "WSVM-TPR")
	b.ReportMetric(last.WSVM.TNR, "WSVM-TNR")
}

// BenchmarkTable1 regenerates Table I: the WSVM measurements on each of
// the 21 datasets (sub-benchmark per row).
func BenchmarkTable1(b *testing.B) {
	for _, spec := range dataset.Table1Specs() {
		b.Run(spec.Name, func(b *testing.B) { evalDataset(b, spec.Name) })
	}
}

// BenchmarkFig6 regenerates Figure 6: the CGraph/SVM/WSVM comparison on
// the 13 offline-infection datasets.
func BenchmarkFig6(b *testing.B) {
	for _, spec := range dataset.OfflineSpecs() {
		b.Run(spec.Name, func(b *testing.B) { evalDataset(b, spec.Name) })
	}
}

// BenchmarkFig7 regenerates Figure 7: the comparison on the 8
// online-injection datasets.
func BenchmarkFig7(b *testing.B) {
	for _, spec := range dataset.OnlineSpecs() {
		b.Run(spec.Name, func(b *testing.B) { evalDataset(b, spec.Name) })
	}
}

// BenchmarkFig2Preprocess regenerates Figure 2: hierarchical clustering of
// a system event into its discretised 3-tuple.
func BenchmarkFig2Preprocess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4CFGDiff regenerates Figure 4: benign vs mixed CFG inference
// and comparison for the trojaned vim.
func BenchmarkFig4CFGDiff(b *testing.B) {
	var last *experiments.Figure4Stats
	for i := 0; i < b.N; i++ {
		stats, err := experiments.Figure4(2)
		if err != nil {
			b.Fatal(err)
		}
		last = stats
	}
	b.ReportMetric(float64(last.PayloadRegionNodes), "payload-nodes")
	b.ReportMetric(float64(last.CommonEdges), "common-edges")
}

// BenchmarkFig5Boundary regenerates Figure 5: plain vs weighted SVM on the
// noisy-label toy problem.
func BenchmarkFig5Boundary(b *testing.B) {
	var last *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.SVMAccuracy, "SVM-ACC")
	b.ReportMetric(last.WSVMAccuracy, "WSVM-ACC")
}

// BenchmarkAblationWeights (A1) compares intact CFG weights against
// shuffled weights on one dataset per iteration.
func BenchmarkAblationWeights(b *testing.B) {
	logs := logsFor(b, "winscp_reverse_tcp")
	var intact, shuffled *core.EvalResult
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		res, err := core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg)
		if err != nil {
			b.Fatal(err)
		}
		intact = res
		cfg.ShuffleWeights = true
		if shuffled, err = core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(intact.WSVM.ACC, "intact-ACC")
	b.ReportMetric(shuffled.WSVM.ACC, "shuffled-ACC")
}

// BenchmarkAblationDensity (A2) measures the density-array estimate's
// contribution.
func BenchmarkAblationDensity(b *testing.B) {
	logs := logsFor(b, "winscp_reverse_tcp")
	var with, without *core.EvalResult
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		res, err := core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg)
		if err != nil {
			b.Fatal(err)
		}
		with = res
		cfg.Weight.DisableDensityEstimate = true
		if without, err = core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.WSVM.ACC, "estimate-ACC")
	b.ReportMetric(without.WSVM.ACC, "hard01-ACC")
}

// BenchmarkAblationWindow (A3) sweeps the coalescing window.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{1, 5, 10, 20} {
		b.Run(windowName(w), func(b *testing.B) {
			logs := logsFor(b, "vim_reverse_tcp")
			var last *core.EvalResult
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Window = w
				res, err := core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.WSVM.ACC, "WSVM-ACC")
		})
	}
}

func windowName(w int) string {
	switch w {
	case 1:
		return "w1"
	case 5:
		return "w5"
	case 10:
		return "w10"
	default:
		return "w20"
	}
}

// BenchmarkAblationNoise (A4) sweeps the mixed log's payload share.
func BenchmarkAblationNoise(b *testing.B) {
	for _, name := range []string{"share20", "share50", "share80"} {
		share := map[string]float64{"share20": 0.2, "share50": 0.5, "share80": 0.8}[name]
		b.Run(name, func(b *testing.B) {
			logs, err := leaps.GenerateDatasetWithPayloadShare("winscp_reverse_tcp", 1, share)
			if err != nil {
				b.Fatal(err)
			}
			var last *core.EvalResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, benchConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.WSVM.ACC, "WSVM-ACC")
			b.ReportMetric(last.SVM.ACC, "SVM-ACC")
		})
	}
}

// BenchmarkAblationKernel (A5) compares kernels.
func BenchmarkAblationKernel(b *testing.B) {
	kernels := []struct {
		name string
		k    svm.Kernel
	}{
		{"linear", svm.LinearKernel{}},
		{"rbf", svm.RBFKernel{Sigma2: 2}},
		{"poly2", svm.PolyKernel{Degree: 2, Gamma: 1, Coef0: 1}},
	}
	for _, kk := range kernels {
		b.Run(kk.name, func(b *testing.B) {
			logs := logsFor(b, "vim_codeinject")
			var last *core.EvalResult
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Seed: 1, FixedParams: &svm.Params{Lambda: 8, Kernel: kk.k}}
				res, err := core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.WSVM.ACC, "WSVM-ACC")
		})
	}
}

// --- component microbenchmarks ---

// BenchmarkCFGInference measures Algorithm 1 on a 6k-event log.
func BenchmarkCFGInference(b *testing.B) {
	logs := logsFor(b, "vim_reverse_tcp")
	part, err := partition.Split(logs.Mixed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Infer(part); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStackPartition measures the stack partition module.
func BenchmarkStackPartition(b *testing.B) {
	logs := logsFor(b, "vim_reverse_tcp")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Split(logs.Mixed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocessFit measures feature clustering over a full log.
func BenchmarkPreprocessFit(b *testing.B) {
	logs := logsFor(b, "winscp_reverse_tcp")
	part, err := partition.Split(logs.Mixed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := preprocess.Fit(part.Events, preprocess.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeOne measures single-event featurization on the scratch
// path the streaming detector rides: a fitted encoder discretising one
// partitioned event into its 3-tuple with a warm per-caller Scratch.
func BenchmarkEncodeOne(b *testing.B) {
	logs := logsFor(b, "vim_reverse_tcp")
	part, err := partition.Split(logs.Mixed)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := preprocess.Fit(part.Events, preprocess.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var s preprocess.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.EncodeOne(&s, &part.Events[i%len(part.Events)])
	}
}

// BenchmarkSMOTrain measures the weighted-SVM solver on a
// representative training problem (360 samples, 30 dimensions).
func BenchmarkSMOTrain(b *testing.B) {
	logs := logsFor(b, "winscp_reverse_tcp")
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
		Seed:           1,
		SampleFraction: 0.4,
		FixedParams:    &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := td.Train(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchicalClustering measures UPGMA over 200 observations.
func BenchmarkHierarchicalClustering(b *testing.B) {
	const n = 200
	dm, err := hcluster.NewDistMatrix(n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dm.Set(i, j, float64((i*31+j*17)%100)/100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcluster.Cluster(dm, hcluster.Average); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkETLRoundTrip measures raw-log serialisation and parsing of a
// 6k-event log.
func BenchmarkETLRoundTrip(b *testing.B) {
	logs := logsFor(b, "vim_reverse_tcp")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := etl.WriteLogs(&buf, logs.Mixed); err != nil {
			b.Fatal(err)
		}
		if _, err := etl.Parse(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetect measures testing-phase throughput: windows classified
// per second on a 3k-event log.
func BenchmarkDetect(b *testing.B) {
	logs := logsFor(b, "vim_reverse_tcp")
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.DetectLog(logs.Malicious); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMOWorkingSetSelection compares the classic maximal-violating
// pair (WSS1) against second-order selection (WSS2) on the same training
// problem, reporting solver iterations.
func BenchmarkSMOWorkingSetSelection(b *testing.B) {
	logs := logsFor(b, "winscp_reverse_tcp")
	for _, tc := range []struct {
		name   string
		second bool
	}{{"wss1", false}, {"wss2", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.Config{
				Seed:           1,
				SampleFraction: 0.4,
				FixedParams: &svm.Params{
					Lambda:         8,
					Kernel:         svm.RBFKernel{Sigma2: 2},
					SecondOrderWSS: tc.second,
				},
			}
			td2, err := core.BuildTrainingData(logs.Benign, logs.Mixed, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clf, err := td2.Train()
				if err != nil {
					b.Fatal(err)
				}
				iters = clf.Model().Iters
			}
			b.ReportMetric(float64(iters), "smo-iters")
		})
	}
}

// serveIngestBatchEvents is the fixed batch size of the serving
// benchmark: one op POSTs this many events.
const serveIngestBatchEvents = 200

// BenchmarkServeIngest measures end-to-end serving throughput: events
// POSTed to a live leaps-serve HTTP API through ingestion, scheduling,
// scoring and verdict serialisation. Reports events and verdicts per op.
func BenchmarkServeIngest(b *testing.B) {
	b.ReportAllocs()
	benchmarkServeIngest(b)
}

// TestServeIngestAllocs pins the serving turn's allocation budget. One
// POSTed event may cost at most serveIngestAllocBudget allocations end
// to end — HTTP transport and JSON wire handling included. The bound
// holds only because the detector side of the turn (partition, encode,
// window flatten, scale, score) runs on recycled per-session scratch;
// the allocating featurization path costs several times more and fails
// it.
func TestServeIngestAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement under -short")
	}
	const serveIngestAllocBudget = 40 // allocs per event
	r := testing.Benchmark(benchmarkServeIngest)
	perEvent := float64(r.AllocsPerOp()) / serveIngestBatchEvents
	if perEvent > serveIngestAllocBudget {
		t.Errorf("serve ingest allocated %.1f allocs/event (%d per %d-event batch), budget %d",
			perEvent, r.AllocsPerOp(), serveIngestBatchEvents, serveIngestAllocBudget)
	}
}

func benchmarkServeIngest(b *testing.B) {
	logs := logsFor(b, "vim_reverse_tcp")
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		b.Fatal(err)
	}
	var bundle bytes.Buffer
	if err := clf.Save(&bundle); err != nil {
		b.Fatal(err)
	}
	mon, err := core.LoadMonitor(&bundle)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{
		Preloaded: map[string]*core.Monitor{"default": mon},
		Logger:    slog.New(slog.DiscardHandler),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mal := logs.Malicious
	spec, err := json.Marshal(serve.SessionSpecOf(mal, ""))
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	var info serve.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	// Pre-encode fixed-size batches so the loop measures the server, not
	// the client-side JSON encoding.
	const batchEvents = serveIngestBatchEvents
	wire := serve.EventSpecsOf(mal.Events)
	var batches [][]byte
	for i := 0; i+batchEvents <= len(wire); i += batchEvents {
		blob, err := json.Marshal(serve.EventBatch{Events: wire[i : i+batchEvents]})
		if err != nil {
			b.Fatal(err)
		}
		batches = append(batches, blob)
	}
	url := ts.URL + "/v1/sessions/" + info.ID + "/events"
	var verdicts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(batches[i%len(batches)]))
		if err != nil {
			b.Fatal(err)
		}
		var res serve.IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest status %d", resp.StatusCode)
		}
		verdicts += len(res.Verdicts)
	}
	b.ReportMetric(float64(b.N*batchEvents)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(verdicts)/float64(b.N), "verdicts/op")
}
