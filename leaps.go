// Package leaps is a reproduction of "LEAPS: Detecting Camouflaged Attacks
// with Statistical Learning Guided by Program Analysis" (Gu et al., DSN
// 2015): a host-based attack detector that classifies system events as
// benign or malicious with a weighted support vector machine whose
// per-sample weights are derived from control flow graphs inferred from
// stack-walk traces in system event logs.
//
// The package is the public facade over the pipeline:
//
//	raw event-trace log (binary, ETW-like)
//	  → raw-log parsing & per-process slicing   (ParseRawLog)
//	  → stack partitioning, feature clustering,
//	    CFG inference, weight assessment,
//	    weighted SVM training                   (Train)
//	  → window-level detection on new logs      (Detector.Detect)
//
// Because the paper's substrate (Windows ETW traces of real trojaned
// applications) is not reproducible offline, the package also exposes the
// workload simulator used by the evaluation harness: GenerateDataset
// synthesises the paper's 21 benign/mixed/malicious dataset triples.
package leaps

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/autopilot"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/svm"
	"repro/internal/trace"
	"repro/internal/weight"
)

// Re-exported log model types. A Log is a stack-event correlated log for
// one process: typed system events, each with a resolved stack walk.
type (
	// Log is a per-process stack-event correlated log.
	Log = trace.Log
	// Event is one system event with its stack walk.
	Event = trace.Event
	// EventType identifies the kind of a system event.
	EventType = trace.EventType
	// Frame is one stack-walk entry.
	Frame = trace.Frame
	// StackWalk is a captured call stack, outermost frame first.
	StackWalk = trace.StackWalk
	// Module is a loaded image (application, shared library or kernel).
	Module = trace.Module
	// ModuleMap indexes the modules of a process.
	ModuleMap = trace.ModuleMap

	// Detection is one classified event window.
	Detection = core.Detection
	// Summary bundles the five evaluation measurements (ACC, PPV, TPR,
	// TNR, NPV).
	Summary = metrics.Summary
	// Evaluation holds a full three-model evaluation of one dataset.
	Evaluation = core.EvalResult
	// DatasetLogs is one generated dataset: benign, mixed and
	// pure-malicious logs.
	DatasetLogs = dataset.Logs
	// EntryPoint is a backtracked attack entry: the control transfer
	// where benign code first handed execution to the payload.
	EntryPoint = cfg.EntryPoint
	// StreamDetector classifies a live event stream window by window.
	StreamDetector = core.StreamDetector
	// EventError reports one event a StreamDetector skipped.
	EventError = core.EventError
	// Monitor is the fault-tolerant detector front: it prefers the
	// statistical classifier and degrades to the call-graph baseline when
	// the model file's statistical sections are unusable.
	Monitor = core.Monitor
	// LogPair is one application's benign/mixed training material for the
	// universal classifier.
	LogPair = core.LogPair

	// FallbackUnavailableError reports a model bundle whose statistical
	// sections are unusable and that carries no call-graph fallback —
	// typically a version-1 bundle predating the embedded call graph.
	FallbackUnavailableError = core.FallbackUnavailableError

	// ServeConfig parameterises the online detection server.
	ServeConfig = serve.Config
	// Server is the online detection server: it manages concurrent
	// streaming sessions over the HTTP/JSON API served by leaps-serve.
	Server = serve.Server
	// SessionSpec describes one monitored process to POST /v1/sessions.
	SessionSpec = serve.SessionSpec
	// ServeEventBatch is the wire form of one ingest batch.
	ServeEventBatch = serve.EventBatch
	// ServeVerdict is the wire form of one classified window.
	ServeVerdict = serve.Verdict

	// ModelRegistry is the content-addressed model store behind
	// leaps-train -registry and the /v1/models lifecycle endpoints.
	ModelRegistry = registry.Store
	// ModelManifest describes one immutable registry entry.
	ModelManifest = registry.Manifest
	// TrainInfo records a published model's training provenance.
	TrainInfo = registry.TrainInfo
	// PromotionGate is the shadow-evidence policy a challenger must clear
	// before promotion.
	PromotionGate = registry.Gate
	// ShadowComparison is accumulated champion/challenger agreement
	// evidence from shadow evaluation.
	ShadowComparison = registry.Comparison

	// AutopilotConfig parameterises the retraining autopilot.
	AutopilotConfig = autopilot.Config
	// AutopilotController is the crash-safe serve→retrain→shadow→promote
	// controller behind leaps-serve -autopilot.
	AutopilotController = autopilot.Controller
	// AutopilotStatus is the controller's externally visible state (the
	// body of GET /v1/autopilot).
	AutopilotStatus = autopilot.Status
	// AutopilotRecord is one journaled controller state transition.
	AutopilotRecord = autopilot.Record
	// AutopilotLogTrainer retrains from raw event-trace logs on disk.
	AutopilotLogTrainer = autopilot.LogTrainer
	// AutopilotTrainerFunc adapts a function to the autopilot's Trainer.
	AutopilotTrainerFunc = autopilot.TrainerFunc

	// ParseOpts controls raw-log parsing fault tolerance.
	ParseOpts = etl.ParseOpts
	// ParseError is one record a lenient parse skipped.
	ParseError = etl.ParseError
	// RawFile is a parsed raw event-trace log before per-process slicing,
	// including lenient-parse telemetry (Dropped, ErrorLog).
	RawFile = etl.RawFile
)

// Option customises training and evaluation.
type Option func(*core.Config)

// WithWindow sets the event-coalescing window (default 10, the paper's
// 30-dimensional data points).
func WithWindow(n int) Option {
	return func(c *core.Config) { c.Window = n }
}

// WithSeed fixes the seed driving data selection and sampling.
func WithSeed(seed int64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithSampleFraction sets the training/testing subsampling share
// (default 0.2, per the paper's protocol).
func WithSampleFraction(f float64) Option {
	return func(c *core.Config) { c.SampleFraction = f }
}

// WithFixedParams skips cross-validated model selection and trains with
// the given λ and Gaussian-kernel σ² directly.
func WithFixedParams(lambda, sigma2 float64) Option {
	return func(c *core.Config) {
		c.FixedParams = &svm.Params{Lambda: lambda, Kernel: svm.RBFKernel{Sigma2: sigma2}}
	}
}

// WithoutDensityEstimate disables Algorithm 2's density-array weight
// interpolation (paths absent from the benign CFG score 0).
func WithoutDensityEstimate() Option {
	return func(c *core.Config) { c.Weight = weight.Config{DisableDensityEstimate: true} }
}

// WithAlignedCFGs enables the §VI-A extension: the mixed CFG is
// structurally aligned onto the benign CFG before weight assessment, which
// recovers correct weights for trojans recompiled from source (where all
// benign code addresses shift relative to the clean build).
func WithAlignedCFGs() Option {
	return func(c *core.Config) { c.AlignCFGs = true }
}

// WithParallel bounds the pipeline's internal worker pools (artifact
// building, model-selection grid points, evaluation runs). 0 — the
// default — uses every processor; 1 forces fully serial execution.
// Results are identical for any setting.
func WithParallel(n int) Option {
	return func(c *core.Config) { c.Parallel = n }
}

// Detector is a trained LEAPS classifier plus the training artifacts
// useful for inspection.
type Detector struct {
	clf *core.Classifier
	td  *core.TrainingData
}

// Train runs the full training phase on a pure-benign log and a mixed
// (benign + malicious) log of the same application: it partitions the
// stack walks, fits the feature clustering, infers both CFGs, assigns
// CFG-guided weights to the mixed data, and trains the weighted SVM.
func Train(benign, mixed *Log, opts ...Option) (*Detector, error) {
	if benign == nil || mixed == nil {
		return nil, errors.New("leaps: Train requires both a benign and a mixed log")
	}
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	td, err := core.BuildTrainingData(benign, mixed, cfg)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	clf, err := td.Train()
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return &Detector{clf: clf, td: td}, nil
}

// Detect applies the detector to a log and returns one verdict per event
// window.
func (d *Detector) Detect(log *Log) ([]Detection, error) {
	if log == nil {
		return nil, errors.New("leaps: nil log")
	}
	dets, err := d.clf.DetectLog(log)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return dets, nil
}

// BenignCFG returns the control flow graph inferred from the benign
// training log, or nil for a detector loaded from disk (training
// artifacts are not persisted).
func (d *Detector) BenignCFG() *cfg.Graph {
	if d.td == nil {
		return nil
	}
	return d.td.BenignCFG.Graph
}

// MixedCFG returns the control flow graph inferred from the mixed
// training log, or nil for a detector loaded from disk.
func (d *Detector) MixedCFG() *cfg.Graph {
	if d.td == nil {
		return nil
	}
	return d.td.MixedCFG.Graph
}

// EventBenignity reports the CFG-assessed benignity of a mixed-log event
// ordinal in [0, 1] (0.5 when the event contributed no CFG path, or when
// the detector was loaded from disk).
func (d *Detector) EventBenignity(seq int) float64 {
	if d.td == nil {
		return 0.5
	}
	return d.td.Weights.Benignity(seq, 0.5)
}

// Stream starts a streaming detection session for one process: feed
// events as they arrive and receive a Detection whenever a window
// completes. The module map identifies the monitored process's address
// space.
func (d *Detector) Stream(modules *ModuleMap) (*StreamDetector, error) {
	s, err := d.clf.Stream(modules)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return s, nil
}

// AttackEntryPoints backtracks candidate attack entry points from the
// training logs (§II-A): explicit control transfers in the mixed log from
// code the benign CFG knows into code it does not — the trojan's detour
// hook or the injected thread's bootstrap. Returns nil for detectors
// loaded from disk.
func (d *Detector) AttackEntryPoints() []EntryPoint {
	if d.td == nil {
		return nil
	}
	return cfg.EntryPoints(d.td.BenignCFG.Graph, d.td.MixedCFG)
}

// Save persists the trained detector so Detect can run in a later process
// without retraining. Training-time artifacts (CFGs, weights) are not
// included.
func (d *Detector) Save(w io.Writer) error {
	if err := d.clf.Save(w); err != nil {
		return fmt.Errorf("leaps: %w", err)
	}
	return nil
}

// LoadDetector reads a detector previously written by Save.
func LoadDetector(r io.Reader) (*Detector, error) {
	clf, err := core.LoadClassifier(r)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return &Detector{clf: clf}, nil
}

// SupportVectors reports the size of the trained model.
func (d *Detector) SupportVectors() int { return d.clf.Model().NumSVs() }

// Evaluate runs the paper's evaluation protocol on one dataset triple:
// train on benign+mixed, test on held-out benign windows (positives) and
// pure-malicious windows (negatives), with all three models (system-level
// call graph, plain SVM, weighted SVM).
func Evaluate(benign, mixed, malicious *Log, opts ...Option) (*Evaluation, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	res, err := core.Evaluate(context.Background(), benign, mixed, malicious, cfg)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return res, nil
}

// EvaluateRuns repeats Evaluate over several data selections and averages
// the measurements, as the paper averages 10 runs.
func EvaluateRuns(benign, mixed, malicious *Log, runs int, opts ...Option) (*Evaluation, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	res, err := core.EvaluateRuns(context.Background(), benign, mixed, malicious, cfg, runs)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return res, nil
}

// DatasetNames lists the paper's 21 dataset identifiers in Table I order.
func DatasetNames() []string { return dataset.Names() }

// GenerateDataset synthesises the named dataset's benign, mixed and
// pure-malicious logs deterministically from the seed.
func GenerateDataset(name string, seed int64) (*DatasetLogs, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	logs, err := spec.Generate(seed)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return logs, nil
}

// GenerateDatasetWithPayloadShare is GenerateDataset with a custom payload
// activity share for the mixed log (the default specs use the harness's
// fixed setting). Useful for studying label-noise sensitivity.
func GenerateDatasetWithPayloadShare(name string, seed int64, share float64) (*DatasetLogs, error) {
	if share <= 0 || share >= 1 {
		return nil, fmt.Errorf("leaps: payload share %v out of (0,1)", share)
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	spec.PayloadFraction = share
	logs, err := spec.Generate(seed)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return logs, nil
}

// EvaluateUniversal trains one classifier across several applications'
// benign/mixed log pairs (the paper's §II-B2 "universal classifier") and
// tests it per application against the aligned pure-malicious logs. It
// returns the per-application summaries and the pooled summary.
func EvaluateUniversal(pairs []LogPair, malicious []*Log, opts ...Option) ([]Summary, Summary, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	perApp, pooled, err := core.EvaluateUniversal(context.Background(), pairs, malicious, cfg)
	if err != nil {
		return nil, Summary{}, fmt.Errorf("leaps: %w", err)
	}
	return perApp, pooled, nil
}

// WriteRawLog serialises one or more per-process logs into the binary raw
// event-trace-log format, interleaving events in timestamp order.
func WriteRawLog(w io.Writer, logs ...*Log) error {
	return etl.WriteLogs(w, logs...)
}

// ParseRawLog parses a binary raw event-trace log, correlating stack-walk
// records with events, and returns the log of the process running the
// named application (the per-application slicing of the paper's testing
// phase). An empty app name is allowed when the file holds exactly one
// process.
func ParseRawLog(r io.Reader, app string) (*Log, error) {
	f, err := etl.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	if app == "" {
		pids := f.PIDs()
		if len(pids) != 1 {
			return nil, fmt.Errorf("leaps: raw log holds %d processes; name the application", len(pids))
		}
		return f.Slice(pids[0])
	}
	log, err := f.SliceApp(app)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return log, nil
}

// ParseRawFile parses a binary raw event-trace log with explicit fault
// tolerance and returns the whole multi-process file, exposing recovery
// telemetry (skipped records, dropped stack walks) alongside the logs. In
// lenient mode corrupt records are skipped and reported in ErrorLog
// instead of rejecting the file.
func ParseRawFile(r io.Reader, opts ParseOpts) (*RawFile, error) {
	f, err := etl.ParseWith(r, opts)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return f, nil
}

// NewServer starts the online detection server used by leaps-serve: it
// loads the configured model bundles, restores spooled sessions, and
// returns a Server whose Handler serves the HTTP/JSON detection API.
// Callers own the listener; call Shutdown to drain and checkpoint.
func NewServer(config ServeConfig) (*Server, error) {
	s, err := serve.NewServer(config)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return s, nil
}

// NewAutopilot opens (or resumes, via its journal) the retraining
// controller: bind it to a Server with Bind, then Start. A controller
// restarted over the same state directory picks up any interrupted
// cycle exactly where the journal says it stopped.
func NewAutopilot(config AutopilotConfig) (*AutopilotController, error) {
	c, err := autopilot.New(config)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return c, nil
}

// OpenModelRegistry opens (creating on first use) the content-addressed
// model registry at dir — the store leaps-train publishes into and
// leaps-serve promotes from.
func OpenModelRegistry(dir string) (*ModelRegistry, error) {
	st, err := registry.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return st, nil
}

// LoadMonitor reads a model file like LoadDetector but degrades instead of
// failing when the statistical sections are corrupt: if the file carries a
// usable call-graph section the returned Monitor runs the call-graph
// matcher and reports why via DegradedCause.
func LoadMonitor(r io.Reader) (*Monitor, error) {
	m, err := core.LoadMonitor(r)
	if err != nil {
		return nil, fmt.Errorf("leaps: %w", err)
	}
	return m, nil
}
