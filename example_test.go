package leaps_test

import (
	"bytes"
	"fmt"

	leaps "repro"
)

// ExampleTrain shows the full training and testing phases on a synthetic
// trojaned-vim dataset.
func ExampleTrain() {
	logs, err := leaps.GenerateDataset("vim_reverse_tcp", 42)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	det, err := leaps.Train(logs.Benign, logs.Mixed,
		leaps.WithSeed(42), leaps.WithFixedParams(8, 2))
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	dets, err := det.Detect(logs.Malicious)
	if err != nil {
		fmt.Println("detect:", err)
		return
	}
	flagged := 0
	for _, d := range dets {
		if d.Malicious {
			flagged++
		}
	}
	fmt.Printf("flagged %d of %d windows\n", flagged, len(dets))
	// Output: flagged 298 of 300 windows
}

// ExampleDetector_AttackEntryPoints backtracks where the trojan first
// hijacked control flow.
func ExampleDetector_AttackEntryPoints() {
	logs, err := leaps.GenerateDataset("vim_reverse_tcp", 7)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	det, err := leaps.Train(logs.Benign, logs.Mixed,
		leaps.WithSeed(7), leaps.WithFixedParams(8, 2))
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	for _, ep := range det.AttackEntryPoints() {
		fmt.Printf("entry first observed at event %d\n", ep.Events[0])
	}
	// Output: entry first observed at event 0
}

// ExampleWriteRawLog round-trips a log through the binary raw format.
func ExampleWriteRawLog() {
	logs, err := leaps.GenerateDataset("putty_reverse_tcp", 3)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	var buf bytes.Buffer
	if err := leaps.WriteRawLog(&buf, logs.Benign); err != nil {
		fmt.Println("write:", err)
		return
	}
	back, err := leaps.ParseRawLog(&buf, "putty.exe")
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	fmt.Printf("%s: %v events survived\n", back.App, back.Len() == logs.Benign.Len())
	// Output: putty.exe: true events survived
}

// ExampleEvaluate reproduces one dataset's model comparison.
func ExampleEvaluate() {
	logs, err := leaps.GenerateDataset("vim_codeinject", 4)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	res, err := leaps.Evaluate(logs.Benign, logs.Mixed, logs.Malicious,
		leaps.WithSeed(4), leaps.WithFixedParams(8, 2))
	if err != nil {
		fmt.Println("evaluate:", err)
		return
	}
	fmt.Printf("WSVM beats SVM: %v\n", res.WSVM.ACC > res.SVM.ACC)
	fmt.Printf("WSVM beats CGraph: %v\n", res.WSVM.ACC > res.CGraph.ACC)
	// Output:
	// WSVM beats SVM: true
	// WSVM beats CGraph: true
}
