package main

import "testing"

func TestRunRequiresSelection(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no selection accepted")
	}
}

func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run is slow")
	}
	if err := run([]string{"-fig2", "-fig5", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bogus flag accepted")
	}
}
