// Command leaps-bench regenerates the paper's evaluation artifacts: Table
// I, Figures 2, 4, 5, 6 and 7, the three case studies, and the ablation
// studies described in DESIGN.md.
//
// Usage:
//
//	leaps-bench -table1                 # Table I (WSVM on all 21 datasets)
//	leaps-bench -fig6 -fig7             # model comparisons per method group
//	leaps-bench -cases                  # case studies I-III, paper vs measured
//	leaps-bench -fig2 -fig4 -fig5       # illustrative figures
//	leaps-bench -ablations              # A1-A5 design-choice studies
//	leaps-bench -extensions             # §VI future-work extensions
//	leaps-bench -all -runs 10           # everything at paper fidelity
//	leaps-bench -table1 -csv            # machine-readable output
//	leaps-bench -perf-baseline BENCH_baseline.json   # perf baseline (ns/op, MB/s)
//	leaps-bench -perf-compare BENCH_baseline.json    # fail on >20% ns/op regressions
//	leaps-bench -all -runs 10 -parallel 0            # paper fidelity, parallel pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slogx"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-bench", flag.ContinueOnError)
	var (
		table1     = fs.Bool("table1", false, "reproduce Table I")
		auc        = fs.Bool("auc", false, "report per-dataset ROC AUC for the margin models")
		fig2       = fs.Bool("fig2", false, "reproduce Figure 2 (event preprocessing)")
		fig4       = fs.Bool("fig4", false, "reproduce Figure 4 (benign vs mixed CFG)")
		fig5       = fs.Bool("fig5", false, "reproduce Figure 5 (SVM vs WSVM boundary)")
		fig6       = fs.Bool("fig6", false, "reproduce Figure 6 (offline infection)")
		fig7       = fs.Bool("fig7", false, "reproduce Figure 7 (online injection)")
		cases      = fs.Bool("cases", false, "reproduce case studies I-III")
		ablations  = fs.Bool("ablations", false, "run ablation studies A1-A5")
		extensions = fs.Bool("extensions", false, "run the §VI extension studies (source trojans, HMM)")
		all        = fs.Bool("all", false, "run everything")
		runs       = fs.Int("runs", 3, "data-selection runs to average (paper: 10)")
		seed       = fs.Int64("seed", 0, "base seed (0 = fixed default)")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet      = fs.Bool("q", false, "suppress per-dataset progress")
		parallel   = fs.Int("parallel", 0, "per-dataset pipeline worker bound (0 = serial inside datasets; datasets already run concurrently)")
		perfOut    = fs.String("perf-baseline", "", "benchmark pipeline hot paths and write a JSON baseline to this file")
		perfCmp    = fs.String("perf-compare", "", "benchmark pipeline hot paths and diff against this committed baseline (fails on >20% ns/op regressions)")
		perfWarn   = fs.Bool("perf-warn", false, "report -perf-compare and -serve-compare regressions as warnings instead of failing")
		serveOut   = fs.String("serve-baseline", "", "drive an in-process serving workload and write per-endpoint p50/p95/p99 latency to this file")
		serveCmp   = fs.String("serve-compare", "", "drive the serving workload and diff p95 latency against this committed baseline (fails on >20% regressions)")
		simOut     = fs.String("sim-baseline", "", "run the canonical leaps-sim scenarios and write per-scenario throughput/latency/checksums to this file")
		simCmp     = fs.String("sim-compare", "", "run the canonical leaps-sim scenarios and diff against this committed baseline (counts and checksums gate exactly)")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, /spans and pprof on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, false)})
	if *debugAddr != "" {
		srv, err := telemetry.Serve(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		slogx.Info("debug server listening", "addr", srv.Addr)
	}
	opts := experiments.Options{Runs: *runs, Seed: *seed, Parallel: *parallel}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	render := func(title string, t *report.Table) {
		fmt.Printf("== %s ==\n", title)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		fmt.Println()
	}
	any := false
	start := time.Now()

	if *perfOut != "" {
		any = true
		if err := runPerfBaseline(*perfOut); err != nil {
			return err
		}
	}
	if *perfCmp != "" {
		any = true
		if err := runPerfCompare(*perfCmp, *perfWarn); err != nil {
			return err
		}
	}
	if *serveOut != "" {
		any = true
		if err := runServeBaseline(*serveOut); err != nil {
			return err
		}
	}
	if *serveCmp != "" {
		any = true
		if err := runServeCompare(*serveCmp, *perfWarn); err != nil {
			return err
		}
	}
	if *simOut != "" {
		any = true
		if err := runSimBaseline(*simOut); err != nil {
			return err
		}
	}
	if *simCmp != "" {
		any = true
		if err := runSimCompare(*simCmp, *perfWarn); err != nil {
			return err
		}
	}

	if *fig2 || *all {
		any = true
		out, err := experiments.Figure2(1)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 2: preprocessing one system event ==")
		fmt.Println(out)
	}
	if *fig4 || *all {
		any = true
		stats, err := experiments.Figure4(2)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 4: vim benign CFG vs mixed CFG (reverse TCP shell) ==")
		fmt.Println(stats)
	}
	if *fig5 || *all {
		any = true
		res, err := experiments.Figure5(3)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 5: decision boundaries under label noise ==")
		fmt.Printf("plain SVM accuracy on clean data:    %s\n", report.Pct(res.SVMAccuracy))
		fmt.Printf("weighted SVM accuracy on clean data: %s\n\n", report.Pct(res.WSVMAccuracy))
	}
	if *table1 || *auc || *all {
		any = true
		results, err := experiments.RunAll(opts)
		if err != nil {
			return err
		}
		if *table1 || *all {
			render("Table I: LEAPS (WSVM) on all 21 camouflaged-attack datasets", experiments.Table1(results))
		}
		if *auc || *all {
			render("ROC AUC per dataset (threshold-free comparison)", experiments.AUCTable(results))
		}
	}
	if *fig6 || *all {
		any = true
		t, _, err := experiments.Figure6(opts)
		if err != nil {
			return err
		}
		render("Figure 6: CGraph vs SVM vs WSVM — offline infection", t)
	}
	if *fig7 || *all {
		any = true
		t, _, err := experiments.Figure7(opts)
		if err != nil {
			return err
		}
		render("Figure 7: CGraph vs SVM vs WSVM — online injection", t)
	}
	if *cases || *all {
		any = true
		t, err := experiments.CaseStudies(opts)
		if err != nil {
			return err
		}
		render("Case studies I-III (paper vs measured)", t)
	}
	if *ablations || *all {
		any = true
		abls := []struct {
			title string
			run   func(experiments.Options) (*report.Table, error)
		}{
			{"A1: value of CFG guidance (intact vs shuffled weights vs none)", experiments.AblationWeights},
			{"A2: density-array estimate vs hard 0/1 weights (WSVM ACC)", experiments.AblationDensity},
			{"A3: event-coalescing window sweep (WSVM ACC)", experiments.AblationWindow},
			{"A4: mixed-log payload fraction sweep", experiments.AblationNoise},
			{"A5: kernel choice (WSVM ACC)", experiments.AblationKernel},
		}
		for _, a := range abls {
			t, err := a.run(opts)
			if err != nil {
				return err
			}
			render("Ablation "+a.title, t)
		}
	}
	if *extensions || *all {
		any = true
		t, err := experiments.ExtensionSourceTrojan(opts)
		if err != nil {
			return err
		}
		render("Extension §VI-A: source-level trojans with CFG alignment", t)
		t, err = experiments.ExtensionHMM(opts)
		if err != nil {
			return err
		}
		render("Extension §VI-B: HMM sequence model vs the paper's models", t)
		t, err = experiments.ExtensionUniversal(opts)
		if err != nil {
			return err
		}
		render("Extension §II-B2: universal (cross-application) classifier", t)
		t, err = experiments.ExtensionOneClass(opts)
		if err != nil {
			return err
		}
		render("Extension (related work): one-class SVM trained on benign data only", t)
	}
	if !any {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -table1, -fig2..-fig7, -cases, -ablations, -perf-baseline, -perf-compare or -all")
	}
	fmt.Fprintf(os.Stderr, "total: %.1fs\n", time.Since(start).Seconds())
	return nil
}
