package main

// Serving latency baseline: drives an in-process leaps-serve instance
// over real HTTP, then reads the server's own latency histograms and
// reports p50/p95/p99 per endpoint and pipeline stage as JSON
// (BENCH_serve.json). -serve-compare re-runs the workload and fails on
// >20% p95 regressions against the committed baseline — the serving
// SLO artifact next to the pipeline's ns/op one.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slogx"
)

// serveWorkload sizes the driven traffic: enough observations that the
// tail quantiles are populated, small enough to finish in seconds.
const (
	serveSessions   = 4
	serveBatches    = 25 // per session
	serveBatchSize  = 64 // events per batch
	serveParallel   = 4
	serveStatusGets = 50
)

// serveLatency is one histogram's quantile summary, in milliseconds.
type serveLatency struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// serveBaseline is the file layout of BENCH_serve.json.
type serveBaseline struct {
	GeneratedAt string         `json:"generated_at"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	Workload    string         `json:"workload"`
	Endpoints   []serveLatency `json:"endpoints"`
	Stages      []serveLatency `json:"stages"`
}

// quantileRow summarises one histogram snapshot in milliseconds.
func quantileRow(name string, m telemetry.MetricSnapshot) serveLatency {
	ms := func(q float64) float64 {
		v := m.Quantile(q)
		if math.IsNaN(v) {
			return 0
		}
		return v * 1000
	}
	return serveLatency{Name: name, Count: m.Count, P50ms: ms(0.50), P95ms: ms(0.95), P99ms: ms(0.99)}
}

// runServeSuite trains a small model, serves it in-process, drives the
// workload over HTTP and summarises the latency histograms.
func runServeSuite() (*serveBaseline, error) {
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		return nil, err
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 4000, 2000, 1000
	logs, err := spec.Generate(7)
	if err != nil {
		return nil, err
	}
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
		Seed:        7,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	})
	if err != nil {
		return nil, err
	}
	clf, err := td.Train()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		return nil, err
	}
	mon, err := core.LoadMonitor(&buf)
	if err != nil {
		return nil, err
	}

	// The quantiles must describe this workload alone, not whatever the
	// process observed before it.
	telemetry.Default().Reset()

	srv, err := serve.NewServer(serve.Config{
		Preloaded: map[string]*core.Monitor{"default": mon},
		Parallel:  serveParallel,
		Logger:    slogx.L(), // honours -q
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}()
	client := ts.Client()

	do := func(method, url string, body any) error {
		var rd *bytes.Reader
		if body != nil {
			blob, err := json.Marshal(body)
			if err != nil {
				return err
			}
			rd = bytes.NewReader(blob)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			return fmt.Errorf("%s %s: status %d", method, url, resp.StatusCode)
		}
		return nil
	}

	events := serve.EventSpecsOf(logs.Benign.Events)
	sessSpec := serve.SessionSpecOf(logs.Benign, "")
	var ids []string
	for i := 0; i < serveSessions; i++ {
		blob, err := json.Marshal(sessSpec)
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		var info serve.SessionInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusCreated || info.ID == "" {
			return nil, fmt.Errorf("create session: status %d", resp.StatusCode)
		}
		ids = append(ids, info.ID)
	}
	for b := 0; b < serveBatches; b++ {
		lo := (b * serveBatchSize) % max(1, len(events)-serveBatchSize)
		batch := serve.EventBatch{Events: events[lo : lo+serveBatchSize]}
		for _, id := range ids {
			if err := do("POST", ts.URL+"/v1/sessions/"+id+"/events", batch); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < serveStatusGets; i++ {
		if err := do("GET", ts.URL+"/v1/sessions/"+ids[i%len(ids)], nil); err != nil {
			return nil, err
		}
	}

	base := &serveBaseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Workload: fmt.Sprintf("%d sessions x %d batches x %d events, %d status reads",
			serveSessions, serveBatches, serveBatchSize, serveStatusGets),
	}
	for _, m := range telemetry.Default().Snapshot() {
		switch {
		case m.Name == "serve_http_seconds":
			base.Endpoints = append(base.Endpoints, quantileRow(m.LabelValue, m))
		case m.Name == "serve_queue_wait_seconds",
			m.Name == "serve_score_seconds",
			m.Name == "serve_verdict_seconds":
			base.Stages = append(base.Stages, quantileRow(m.Name, m))
		}
	}
	if len(base.Endpoints) == 0 {
		return nil, fmt.Errorf("serve bench: no serve_http_seconds observations recorded")
	}
	return base, nil
}

func printServeResults(base *serveBaseline) {
	fmt.Printf("serve workload: %s\n", base.Workload)
	for _, rows := range [][]serveLatency{base.Endpoints, base.Stages} {
		for _, r := range rows {
			fmt.Printf("%-40s n=%-6d p50=%8.3fms p95=%8.3fms p99=%8.3fms\n",
				r.Name, r.Count, r.P50ms, r.P95ms, r.P99ms)
		}
	}
}

// runServeBaseline drives the serving workload and writes BENCH_serve.json.
func runServeBaseline(path string) error {
	base, err := runServeSuite()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	printServeResults(base)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// serveRegressionThreshold flags fresh p95s slower than baseline by more
// than this ratio (>20%).
const serveRegressionThreshold = 1.20

// serveRegressionFloorMs ignores regressions below this absolute p95:
// sub-millisecond endpoints jitter by multiples on loaded CI machines
// without meaning anything.
const serveRegressionFloorMs = 2.0

// runServeCompare re-runs the serving workload and diffs per-endpoint
// p95 latency against the committed baseline at path.
func runServeCompare(path string, warnOnly bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed serveBaseline
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	old := make(map[string]serveLatency)
	for _, r := range append(committed.Endpoints, committed.Stages...) {
		old[r.Name] = r
	}

	fresh, err := runServeSuite()
	if err != nil {
		return err
	}

	var regressions []string
	for _, r := range append(fresh.Endpoints, fresh.Stages...) {
		o, ok := old[r.Name]
		if !ok {
			fmt.Printf("%-40s p95=%8.3fms   (new, not in baseline)\n", r.Name, r.P95ms)
			continue
		}
		status := "ok"
		if o.P95ms > 0 && r.P95ms > serveRegressionFloorMs && r.P95ms/o.P95ms > serveRegressionThreshold {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: p95 %.3f -> %.3f ms (%.2fx)", r.Name, o.P95ms, r.P95ms, r.P95ms/o.P95ms))
		}
		fmt.Printf("%-40s p95=%8.3fms  baseline %8.3fms  %s\n", r.Name, r.P95ms, o.P95ms, status)
	}
	if len(regressions) > 0 {
		msg := fmt.Sprintf("%d serving latency regression(s) vs %s (threshold %.0f%%, floor %.1fms):",
			len(regressions), path, (serveRegressionThreshold-1)*100, serveRegressionFloorMs)
		for _, r := range regressions {
			msg += "\n  " + r
		}
		if warnOnly {
			fmt.Fprintln(os.Stderr, "warning:", msg)
			return nil
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Printf("no serving latency regressions vs %s\n", path)
	return nil
}
