package main

// Performance baseline: measures the pipeline's hot paths with
// testing.Benchmark and writes the results as JSON, so perf regressions
// show up as diffs against a committed BENCH_baseline.json.
// -perf-compare re-runs the same suite and fails on >20% ns/op or
// allocs/op regressions against the committed baseline. The allocation
// gate stays hard even under -perf-warn: alloc counts are deterministic
// and transfer across machines, unlike wall-clock timings.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/svm"
)

// perfResult is one benchmark measurement.
type perfResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	// MBPerSec is the processed-byte throughput, present only for
	// benchmarks with a defined byte volume (parse, featurize, detect,
	// select-train), measured as serialized .letl bytes of the logs the
	// operation consumes.
	MBPerSec float64 `json:"mb_per_s,omitempty"`
}

// perfBaseline is the file layout of BENCH_baseline.json.
type perfBaseline struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	Dataset     string       `json:"dataset"`
	Results     []perfResult `json:"results"`
}

func toPerfResult(name string, r testing.BenchmarkResult) perfResult {
	out := perfResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return out
}

// gridProblem synthesises a deterministic two-class problem with enough
// label noise that every (λ, σ²) grid point does real cross-validation
// work.
func gridProblem() svm.Problem {
	rng := rand.New(rand.NewSource(7))
	var p svm.Problem
	for i := 0; i < 40; i++ {
		p.X = append(p.X, []float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4})
		p.Y = append(p.Y, 1)
		p.X = append(p.X, []float64{2 + rng.NormFloat64()*0.4, 2 + rng.NormFloat64()*0.4})
		p.Y = append(p.Y, -1)
	}
	for i := 0; i < len(p.Y); i += 9 {
		p.Y[i] = -p.Y[i]
	}
	return p
}

// runPerfSuite benchmarks the pipeline's hot paths — raw parse,
// featurisation, the two pipeline tiers (artifact build, per-seed
// selection+train), the whole training path, parallel grid search and
// detection — on a reduced fixed dataset.
func runPerfSuite() (*perfBaseline, error) {
	const name = "vim_reverse_tcp"
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	// Reduced volumes keep the whole baseline run under a minute while
	// still exercising every stage.
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	logs, err := spec.Generate(1)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := etl.WriteLogs(&buf, logs.Benign); err != nil {
		return nil, err
	}
	rawBenign := append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := etl.WriteLogs(&buf, logs.Mixed); err != nil {
		return nil, err
	}
	rawMixed := append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := etl.WriteLogs(&buf, logs.Malicious); err != nil {
		return nil, err
	}
	rawMalicious := append([]byte(nil), buf.Bytes()...)

	ctx := context.Background()
	cfg := core.Config{
		Seed:        1,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	}
	part, err := partition.Split(logs.Benign)
	if err != nil {
		return nil, err
	}
	enc, err := preprocess.Fit(part.Events, preprocess.Config{})
	if err != nil {
		return nil, err
	}
	art, err := core.BuildArtifacts(ctx, logs.Benign, logs.Mixed, cfg)
	if err != nil {
		return nil, err
	}
	clf, err := art.Select(cfg.Seed).Train(ctx)
	if err != nil {
		return nil, err
	}
	prob := gridProblem()
	grid := svm.DefaultGrid()

	base := &perfBaseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Dataset:     fmt.Sprintf("%s (%d/%d/%d events)", name, spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents),
	}

	// parse is the zero-copy hot path with a reused frame slab; the
	// streaming io.Reader path stays measured as parse-stream so the two
	// never drift apart unnoticed.
	base.Results = append(base.Results, toPerfResult("parse", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(rawBenign)))
		var slab etl.Slab
		for i := 0; i < b.N; i++ {
			slab.Reset()
			if _, err := etl.ParseBytesSlab(rawBenign, etl.ParseOpts{}, &slab); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("parse-stream", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(rawBenign)))
		for i := 0; i < b.N; i++ {
			if _, err := etl.Parse(bytes.NewReader(rawBenign)); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("featurize", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(rawBenign)))
		var scratch preprocess.Scratch
		var tuples []preprocess.Tuple
		var wins preprocess.WindowBuf
		for i := 0; i < b.N; i++ {
			tuples = enc.EncodeInto(tuples[:0], part, &scratch)
			if err := preprocess.CoalesceInto(&wins, tuples, 10); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("artifacts", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildArtifacts(ctx, logs.Benign, logs.Mixed, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("select-train", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(rawBenign) + len(rawMixed)))
		for i := 0; i < b.N; i++ {
			// Vary the seed as EvaluateRuns does: this is the per-run
			// marginal cost once artifacts exist.
			if _, err := art.Select(cfg.Seed + int64(i)*7919).Train(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("train", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := td.Train(); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("gridsearch", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := svm.GridSearch(prob, grid); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("detect", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(rawMalicious)))
		for i := 0; i < b.N; i++ {
			if _, err := clf.DetectLog(logs.Malicious); err != nil {
				b.Fatal(err)
			}
		}
	})))

	return base, nil
}

func printPerfResults(results []perfResult) {
	for _, r := range results {
		line := fmt.Sprintf("%-12s %12.0f ns/op %8d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.MBPerSec > 0 {
			line += fmt.Sprintf(" %8.1f MB/s", r.MBPerSec)
		}
		fmt.Println(line)
	}
}

// runPerfBaseline benchmarks the hot paths and writes the JSON baseline
// to path.
func runPerfBaseline(path string) error {
	base, err := runPerfSuite()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	printPerfResults(base.Results)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// perfRegressionThreshold flags fresh runs slower than baseline by more
// than this ratio (>20% ns/op); allocRegressionThreshold does the same
// for allocs/op, with allocRegressionSlack absolute allocations of
// headroom so near-zero baselines don't flag on measurement jitter.
const (
	perfRegressionThreshold  = 1.20
	allocRegressionThreshold = 1.20
	allocRegressionSlack     = 16
)

// runPerfCompare re-runs the benchmark suite and diffs it against the
// committed baseline at path. ns/op regressions beyond the threshold
// fail the run unless warnOnly is set; allocs/op regressions always
// fail — allocation counts are deterministic, so they transfer across
// machines and warrant a hard gate even where timings only warrant a
// warning. Benchmarks present on only one side are reported but never
// fail the comparison (new entries appear when the suite grows).
func runPerfCompare(path string, warnOnly bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed perfBaseline
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	old := make(map[string]perfResult, len(committed.Results))
	for _, r := range committed.Results {
		old[r.Name] = r
	}

	fresh, err := runPerfSuite()
	if err != nil {
		return err
	}

	var regressions []string
	var allocRegressions []string
	for _, r := range fresh.Results {
		o, ok := old[r.Name]
		if !ok {
			fmt.Printf("%-12s %12.0f ns/op %8d allocs/op   (new, not in baseline)\n", r.Name, r.NsPerOp, r.AllocsPerOp)
			continue
		}
		ratio := r.NsPerOp / o.NsPerOp
		status := "ok"
		if ratio > perfRegressionThreshold {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx)", r.Name, o.NsPerOp, r.NsPerOp, ratio))
		}
		if float64(r.AllocsPerOp) > float64(o.AllocsPerOp)*allocRegressionThreshold+allocRegressionSlack {
			status = "ALLOC REGRESSION"
			allocRegressions = append(allocRegressions,
				fmt.Sprintf("%s: %d -> %d allocs/op", r.Name, o.AllocsPerOp, r.AllocsPerOp))
		}
		fmt.Printf("%-12s %12.0f ns/op  baseline %12.0f  %5.2fx  %8d allocs/op  baseline %8d  %s\n",
			r.Name, r.NsPerOp, o.NsPerOp, ratio, r.AllocsPerOp, o.AllocsPerOp, status)
	}
	for _, o := range committed.Results {
		found := false
		for _, r := range fresh.Results {
			if r.Name == o.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-12s missing from fresh run (present in baseline)\n", o.Name)
		}
	}
	if len(regressions) > 0 {
		msg := fmt.Sprintf("%d perf regression(s) vs %s (threshold %.0f%%):", len(regressions), path, (perfRegressionThreshold-1)*100)
		for _, r := range regressions {
			msg += "\n  " + r
		}
		if warnOnly {
			fmt.Fprintln(os.Stderr, "warning:", msg)
		} else {
			return fmt.Errorf("%s", msg)
		}
	}
	// The allocation gate ignores warnOnly: allocs/op is deterministic,
	// so a regression here is a code change, not host noise.
	if len(allocRegressions) > 0 {
		msg := fmt.Sprintf("%d allocation regression(s) vs %s (threshold %.0f%% + %d):",
			len(allocRegressions), path, (allocRegressionThreshold-1)*100, allocRegressionSlack)
		for _, r := range allocRegressions {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	if len(regressions) == 0 {
		fmt.Printf("no perf regressions vs %s\n", path)
	}
	return nil
}
