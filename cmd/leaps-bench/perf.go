package main

// Performance baseline: measures the pipeline's hot paths with
// testing.Benchmark and writes the results as JSON, so perf regressions
// show up as diffs against a committed BENCH_baseline.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/svm"
)

// perfResult is one benchmark measurement.
type perfResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	// MBPerSec is the processed-byte throughput, present only for
	// benchmarks with a defined byte volume (parse).
	MBPerSec float64 `json:"mb_per_s,omitempty"`
}

// perfBaseline is the file layout of BENCH_baseline.json.
type perfBaseline struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	Dataset     string       `json:"dataset"`
	Results     []perfResult `json:"results"`
}

func toPerfResult(name string, r testing.BenchmarkResult) perfResult {
	out := perfResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return out
}

// runPerfBaseline benchmarks parse, featurize, train and detect on a
// reduced fixed dataset and writes the JSON baseline to path.
func runPerfBaseline(path string) error {
	const name = "vim_reverse_tcp"
	spec, err := dataset.ByName(name)
	if err != nil {
		return err
	}
	// Reduced volumes keep the whole baseline run under a minute while
	// still exercising every stage.
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	logs, err := spec.Generate(1)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := etl.WriteLogs(&buf, logs.Benign); err != nil {
		return err
	}
	rawBenign := buf.Bytes()

	cfg := core.Config{
		Seed:        1,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	}
	part, err := partition.Split(logs.Benign)
	if err != nil {
		return err
	}
	enc, err := preprocess.Fit(part.Events, preprocess.Config{})
	if err != nil {
		return err
	}
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, cfg)
	if err != nil {
		return err
	}
	clf, err := td.Train()
	if err != nil {
		return err
	}

	base := perfBaseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Dataset:     fmt.Sprintf("%s (%d/%d/%d events)", name, spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents),
	}

	base.Results = append(base.Results, toPerfResult("parse", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(rawBenign)))
		for i := 0; i < b.N; i++ {
			if _, err := etl.Parse(bytes.NewReader(rawBenign)); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("featurize", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tuples := enc.EncodeAll(part)
			if _, _, err := preprocess.Coalesce(tuples, 10); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("train", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := td.Train(); err != nil {
				b.Fatal(err)
			}
		}
	})))

	base.Results = append(base.Results, toPerfResult("detect", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := clf.DetectLog(logs.Malicious); err != nil {
				b.Fatal(err)
			}
		}
	})))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc2 := json.NewEncoder(f)
	enc2.SetIndent("", "  ")
	if err := enc2.Encode(base); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, r := range base.Results {
		line := fmt.Sprintf("%-10s %12.0f ns/op %8d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.MBPerSec > 0 {
			line += fmt.Sprintf(" %8.1f MB/s", r.MBPerSec)
		}
		fmt.Println(line)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
