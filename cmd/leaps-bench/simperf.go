package main

// Cluster-simulation baseline: runs every canonical leaps-sim scenario
// and records per-scenario throughput, virtual latency quantiles and the
// verdict checksum as JSON (BENCH_sim.json). Because the simulator is
// deterministic, the checksum and every count are gated exactly on
// compare — any drift means the verdict stream or schedule changed and
// must be an intentional rebaseline. The latency/throughput columns get
// the usual 20% band only so that deliberate service-model retuning
// shows up as a readable diff instead of a wall of exact-match failures.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry/slogx"
)

// simRow is one canonical scenario's baseline record.
type simRow struct {
	Scenario          string  `json:"scenario"`
	Seed              int64   `json:"seed"`
	Replicas          int     `json:"replicas"`
	Events            int     `json:"events"`
	Batches           int     `json:"batches"`
	BatchesHeld       int     `json:"batches_held"`
	BatchesDropped    int     `json:"batches_dropped"`
	Verdicts          int     `json:"verdicts"`
	Malicious         int     `json:"malicious"`
	Checksum          string  `json:"verdict_checksum"`
	VirtualDurationMS float64 `json:"virtual_duration_ms"`
	ThroughputEPS     float64 `json:"throughput_eps"`
	BatchP50ms        float64 `json:"batch_p50_ms"`
	BatchP95ms        float64 `json:"batch_p95_ms"`
	BatchP99ms        float64 `json:"batch_p99_ms"`
	VerdictP50ms      float64 `json:"verdict_p50_ms"`
	VerdictP95ms      float64 `json:"verdict_p95_ms"`
	VerdictP99ms      float64 `json:"verdict_p99_ms"`
}

// simBaseline is the file layout of BENCH_sim.json.
type simBaseline struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	Scenarios   []simRow `json:"scenarios"`
}

// simRowOf flattens one simulation report into its baseline row.
func simRowOf(rep *sim.Report) simRow {
	return simRow{
		Scenario:          rep.Scenario,
		Seed:              rep.Seed,
		Replicas:          rep.Replicas,
		Events:            rep.EventsSent,
		Batches:           rep.BatchesSent,
		BatchesHeld:       rep.BatchesHeld,
		BatchesDropped:    rep.BatchesDropped,
		Verdicts:          rep.Verdicts,
		Malicious:         rep.Malicious,
		Checksum:          rep.VerdictChecksum,
		VirtualDurationMS: rep.VirtualDurationMS,
		ThroughputEPS:     rep.ThroughputEPS,
		BatchP50ms:        rep.BatchLatency.P50ms,
		BatchP95ms:        rep.BatchLatency.P95ms,
		BatchP99ms:        rep.BatchLatency.P99ms,
		VerdictP50ms:      rep.VerdictLatency.P50ms,
		VerdictP95ms:      rep.VerdictLatency.P95ms,
		VerdictP99ms:      rep.VerdictLatency.P99ms,
	}
}

// runSimSuite runs every canonical scenario and collects its rows.
func runSimSuite() (*simBaseline, error) {
	base := &simBaseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, sc := range sim.Canonical() {
		rep, err := sim.Run(sim.Config{Scenario: sc, Logger: slogx.L()})
		if err != nil {
			return nil, fmt.Errorf("sim scenario %s: %w", sc.Name, err)
		}
		base.Scenarios = append(base.Scenarios, simRowOf(rep))
	}
	return base, nil
}

func printSimResults(base *simBaseline) {
	for _, r := range base.Scenarios {
		fmt.Printf("%-20s events=%-6d verdicts=%-5d eps=%9.1f verdict p50=%7.3fms p95=%7.3fms p99=%7.3fms checksum=%s\n",
			r.Scenario, r.Events, r.Verdicts, r.ThroughputEPS, r.VerdictP50ms, r.VerdictP95ms, r.VerdictP99ms, r.Checksum)
	}
}

// runSimBaseline runs the canonical scenarios and writes BENCH_sim.json.
func runSimBaseline(path string) error {
	base, err := runSimSuite()
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	printSimResults(base)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// simLatencyThreshold bands the latency/throughput columns: deviations
// beyond 20% either way fail the compare even though the quantities are
// deterministic, to keep intentional retuning visible as a single
// readable failure.
const simLatencyThreshold = 1.20

// simBand reports whether fresh deviates from old by more than the
// threshold ratio in either direction.
func simBand(old, fresh float64) bool {
	if old == 0 {
		return fresh != 0
	}
	ratio := fresh / old
	return ratio > simLatencyThreshold || ratio < 1/simLatencyThreshold
}

// runSimCompare re-runs the canonical scenarios and diffs them against
// the committed BENCH_sim.json: exact on the deterministic counts and
// the verdict checksum, 20% bands on throughput and latency.
func runSimCompare(path string, warnOnly bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed simBaseline
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	old := make(map[string]simRow, len(committed.Scenarios))
	for _, r := range committed.Scenarios {
		old[r.Scenario] = r
	}

	fresh, err := runSimSuite()
	if err != nil {
		return err
	}

	var hardFailures, softFailures []string
	for _, r := range fresh.Scenarios {
		o, ok := old[r.Scenario]
		if !ok {
			// A scenario the baseline has never seen is drift, not noise: the
			// canonical catalog grew and BENCH_sim.json was not regenerated.
			fmt.Printf("%-20s checksum=%s  NEW (not in baseline)\n", r.Scenario, r.Checksum)
			hardFailures = append(hardFailures,
				r.Scenario+": new canonical scenario absent from the baseline")
			continue
		}
		var hard, soft []string
		exact := []struct {
			name     string
			old, new any
		}{
			{"seed", o.Seed, r.Seed},
			{"replicas", o.Replicas, r.Replicas},
			{"events", o.Events, r.Events},
			{"batches", o.Batches, r.Batches},
			{"batches_held", o.BatchesHeld, r.BatchesHeld},
			{"batches_dropped", o.BatchesDropped, r.BatchesDropped},
			{"verdicts", o.Verdicts, r.Verdicts},
			{"malicious", o.Malicious, r.Malicious},
			{"verdict_checksum", o.Checksum, r.Checksum},
		}
		for _, e := range exact {
			if e.old != e.new {
				hard = append(hard, fmt.Sprintf("%s %v -> %v", e.name, e.old, e.new))
			}
		}
		banded := []struct {
			name     string
			old, new float64
		}{
			{"throughput_eps", o.ThroughputEPS, r.ThroughputEPS},
			{"verdict_p50_ms", o.VerdictP50ms, r.VerdictP50ms},
			{"verdict_p95_ms", o.VerdictP95ms, r.VerdictP95ms},
			{"verdict_p99_ms", o.VerdictP99ms, r.VerdictP99ms},
		}
		for _, b := range banded {
			if simBand(b.old, b.new) {
				soft = append(soft, fmt.Sprintf("%s %.3f -> %.3f (%.2fx)", b.name, b.old, b.new, safeRatio(b.old, b.new)))
			}
		}
		status := "ok"
		if len(hard)+len(soft) > 0 {
			status = "MISMATCH"
		}
		for _, f := range hard {
			hardFailures = append(hardFailures, r.Scenario+": "+f)
		}
		for _, f := range soft {
			softFailures = append(softFailures, r.Scenario+": "+f)
		}
		fmt.Printf("%-20s checksum=%s eps=%9.1f p95=%7.3fms  %s\n", r.Scenario, r.Checksum, r.ThroughputEPS, r.VerdictP95ms, status)
	}
	for name := range old {
		found := false
		for _, r := range fresh.Scenarios {
			if r.Scenario == name {
				found = true
				break
			}
		}
		if !found {
			hardFailures = append(hardFailures, name+": scenario missing from the canonical catalog")
		}
	}
	// The banded columns are machine-independent too, but deliberate
	// service-model retuning shifts them; -w downgrades only these.
	if len(softFailures) > 0 {
		msg := fmt.Sprintf("%d simulation latency/throughput deviation(s) vs %s:", len(softFailures), path)
		for _, f := range softFailures {
			msg += "\n  " + f
		}
		if warnOnly {
			fmt.Fprintln(os.Stderr, "warning:", msg)
		} else {
			hardFailures = append(hardFailures, softFailures...)
		}
	}
	if len(hardFailures) > 0 {
		msg := fmt.Sprintf("%d simulation mismatch(es) vs %s (counts and checksums are deterministic and gate exactly, even under -w; rebaseline with 'make bench BENCH_REBASELINE=1' if intentional):", len(hardFailures), path)
		for _, f := range hardFailures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Printf("no simulation drift vs %s\n", path)
	return nil
}

// safeRatio guards the divide in failure messages.
func safeRatio(old, fresh float64) float64 {
	if old == 0 {
		return math.Inf(1)
	}
	return fresh / old
}
