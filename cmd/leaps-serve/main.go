// Command leaps-serve runs the online detection server: it loads one or
// more trained model bundles and scores event streams POSTed to its
// HTTP/JSON API, one detection session per monitored process.
//
// Usage:
//
//	leaps-serve -model leaps.model [-model name=other.model ...] \
//	    [-registry dir] [-registry-model default] [-shadow-queue 256] \
//	    [-gate-min-events 1000] [-gate-min-tpr 0.95] [-gate-max-fpr 0.05] \
//	    [-addr 127.0.0.1:8341] [-spool ./spool] [-queue-depth 8192] \
//	    [-max-sessions 1024] [-max-body 8388608] [-request-timeout 30s] \
//	    [-idle-timeout 15m] [-evict-interval 1m] [-parallel N] \
//	    [-autopilot -autopilot-benign b.letl -autopilot-mixed m.letl \
//	     -autopilot-app vim.exe -autopilot-lambda 8 -autopilot-sigma2 2 \
//	     -autopilot-trigger 5000 -autopilot-interval 1m \
//	     -autopilot-state dir -autopilot-shadow-timeout 10m] \
//	    [-sync-from primary-registry-dir] [-sync-interval 2s] \
//	    [-replica-id r0] [-quiet] [-verbose] [-log-json]
//
// API (see README.md "Serving" for request/response bodies):
//
//	POST   /v1/sessions              open a session for one process
//	POST   /v1/sessions/{id}/events  ingest a batch, receive verdicts
//	GET    /v1/sessions/{id}         session state (?checkpoint=1)
//	DELETE /v1/sessions/{id}         close and discard the session
//	POST   /v1/sessions/{id}/export  detach a session as a handoff envelope
//	POST   /v1/sessions/import       restore a handed-off session
//	POST   /v1/drain                 refuse new sessions (ring exit prep)
//	DELETE /v1/drain                 resume accepting sessions
//	GET    /v1/models                registry catalogue and shadow state
//	POST   /v1/models/shadow         start shadow-evaluating an entry
//	DELETE /v1/models/shadow         stop the shadow evaluation
//	POST   /v1/models/promote        gated (or forced) promotion
//	POST   /v1/models/rollback       return to a prior champion
//	GET    /v1/autopilot             retraining controller status
//	POST   /v1/autopilot/pause       suspend retraining (journaled)
//	POST   /v1/autopilot/resume      resume; resets the circuit breaker
//	GET    /healthz, /readyz         liveness and readiness probes
//	GET    /metrics, /spans, ...     telemetry introspection
//
// With -registry, the model named by -registry-model (default "default")
// is loaded from the registry's current entry and managed over the
// /v1/models endpoints: challengers published by leaps-train -registry
// are shadow-evaluated against live traffic and promoted only when the
// -gate-* thresholds pass (see README.md "Model registry"). At least one
// model source is required; -registry counts as one.
//
// With -autopilot (requires -registry plus -autopilot-benign and
// -autopilot-mixed), a crash-safe retraining controller closes the loop
// unattended: once -autopilot-trigger new verdict windows accumulate it
// retrains from the configured logs, publishes the candidate, shadow-
// evaluates it against live traffic and promotes it when the gate
// passes. Its journal lives under -autopilot-state (default
// <registry>/autopilot); a restarted server resumes any interrupted
// cycle from there. See DESIGN.md "Retraining autopilot".
//
// On SIGTERM or SIGINT the server stops accepting work, drains every
// session queue, checkpoints all sessions to the spool directory and
// exits; a restart against the same -spool restores them. SIGHUP
// hot-reloads every model from disk for new sessions — all-or-nothing:
// if any bundle fails to load, every model keeps serving its previous
// version.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/autopilot"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slogx"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-serve:", err)
		os.Exit(1)
	}
}

// modelFlags collects repeated -model values of the form "path" (named
// "default") or "name=path".
type modelFlags map[string]string

func (m modelFlags) String() string {
	parts := make([]string, 0, len(m))
	for name, path := range m {
		parts = append(parts, name+"="+path)
	}
	return strings.Join(parts, ",")
}

func (m modelFlags) Set(v string) error {
	name, path := "default", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if name == "" || path == "" {
		return fmt.Errorf("want path or name=path, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("model %q given twice", name)
	}
	m[name] = path
	return nil
}

// run starts the server and blocks until a termination signal. When
// ready is non-nil, the bound address is sent on it once the listener is
// up (the smoke test and main_test hook).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("leaps-serve", flag.ContinueOnError)
	models := modelFlags{}
	fs.Var(models, "model", "model bundle to serve: path or name=path (repeatable)")
	var (
		addr       = fs.String("addr", "127.0.0.1:8341", "listen address")
		regDir     = fs.String("registry", "", "model registry directory (enables /v1/models lifecycle endpoints)")
		regModel   = fs.String("registry-model", "default", "model name the registry's current entry serves as")
		shadowQ    = fs.Int("shadow-queue", 256, "max queued shadow batches awaiting challenger replay")
		gateEvents = fs.Int("gate-min-events", 1000, "min shadow events before promotion")
		gateTPR    = fs.Float64("gate-min-tpr", 0.95, "min challenger agreement on champion-benign windows")
		gateFPR    = fs.Float64("gate-max-fpr", 0.05, "max rate of champion detections the challenger misses")
		spool      = fs.String("spool", "", "checkpoint spool directory (enables shutdown/eviction persistence)")
		queueDepth = fs.Int("queue-depth", 8192, "max queued events per session before 429")
		maxSess    = fs.Int("max-sessions", 1024, "max resident sessions")
		maxBody    = fs.Int64("max-body", 8<<20, "max request body bytes")
		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "max wait for a batch to be scored")
		idle       = fs.Duration("idle-timeout", 15*time.Minute, "evict sessions untouched this long (needs -spool)")
		evictEvery = fs.Duration("evict-interval", time.Minute, "idle-session scan period")
		parallel   = fs.Int("parallel", 0, "scoring worker count (0 = GOMAXPROCS)")
		syncFrom   = fs.String("sync-from", "", "primary registry directory to replicate -registry from (background pull loop; promotions on the primary hot-reload this replica)")
		syncEvery  = fs.Duration("sync-interval", 2*time.Second, "replication poll period (with -sync-from)")
		replicaID  = fs.String("replica-id", "", "fleet replica name, reported in session info and verdict flight entries")
		quiet      = fs.Bool("quiet", false, "only warnings and errors")
		verbose    = fs.Bool("verbose", false, "debug-level logging")
		logJSON    = fs.Bool("log-json", false, "emit JSON log records instead of key=value text")

		apEnable   = fs.Bool("autopilot", false, "run the retraining autopilot (needs -registry, -autopilot-benign, -autopilot-mixed)")
		apBenign   = fs.String("autopilot-benign", "", "benign training log the autopilot retrains from")
		apMixed    = fs.String("autopilot-mixed", "", "mixed training log the autopilot retrains from")
		apApp      = fs.String("autopilot-app", "", "application to slice from the training logs")
		apWindow   = fs.Int("autopilot-window", 0, "retraining detection window (0 = core default)")
		apLambda   = fs.Float64("autopilot-lambda", 0, "fixed WSVM lambda (0 with sigma2 0 = grid search)")
		apSigma2   = fs.Float64("autopilot-sigma2", 0, "fixed RBF sigma^2 (0 with lambda 0 = grid search)")
		apSeed     = fs.Int64("autopilot-seed", 1, "retraining data-selection seed")
		apLenient  = fs.Bool("autopilot-lenient", false, "skip corrupt training-log records instead of failing the cycle")
		apInterval = fs.Duration("autopilot-interval", time.Minute, "trigger-check period")
		apTrigger  = fs.Uint64("autopilot-trigger", 5000, "new verdict windows that trigger a retraining cycle")
		apState    = fs.String("autopilot-state", "", "autopilot journal directory (default <registry>/autopilot)")
		apShadowTO = fs.Duration("autopilot-shadow-timeout", 10*time.Minute, "max wait for shadow evidence before the gate judges what it has")
		apRetries  = fs.Int("autopilot-retries", 0, "retries per failed autopilot stage (0 = default 2, negative = no retries)")
		apBackoff  = fs.Duration("autopilot-backoff", 0, "base retry backoff (0 = default 500ms)")
		apBreaker  = fs.Int("autopilot-breaker", 0, "consecutive failed cycles that trip the circuit breaker (0 = default 3)")
		flightDir  = fs.String("flight-dir", "", "directory for flight-recorder dumps (default -spool, else <registry>/flightrec; empty without either disables dumps)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, *verbose), JSON: *logJSON})
	if armed := faultinject.ArmFromEnv(); len(armed) > 0 {
		slogx.Warn("crash points armed from environment", "points", strings.Join(armed, ","))
	}
	if len(models) == 0 && *regDir == "" {
		return fmt.Errorf("missing -model (or -registry)")
	}
	// Flight-recorder dumps land next to the server's other durable state
	// unless -flight-dir points elsewhere. With neither a spool nor a
	// registry configured there is no state dir at all; dumps stay off.
	switch {
	case *flightDir != "":
		telemetry.SetFlightDir(*flightDir)
	case *spool != "":
		telemetry.SetFlightDir(*spool)
	case *regDir != "":
		telemetry.SetFlightDir(filepath.Join(*regDir, "flightrec"))
	}
	// A crash-point exit is precisely when the recent-history ring matters
	// most: dump it on the way down.
	faultinject.SetExitHook(func(point string) {
		if path := telemetry.DumpFlight("crashpoint-" + point); path != "" {
			slogx.Warn("flight recorder dumped before crash-point exit", "point", point, "dump", path)
		}
	})
	var store *registry.Store
	if *regDir != "" {
		st, err := registry.Open(*regDir)
		if err != nil {
			return err
		}
		store = st
	}

	// Replication: mirror a primary registry into the local -registry
	// before boot (so boot serves the primary's champion), then keep
	// pulling in the background. Sync is fail-static — a broken primary
	// only costs freshness — but an *empty* mirror with a failed first
	// sync has nothing to serve, which is a boot error.
	var syncer *fleet.Syncer
	if *syncFrom != "" {
		if store == nil {
			return fmt.Errorf("-sync-from requires -registry (the local mirror directory)")
		}
		if *apEnable {
			return fmt.Errorf("-sync-from and -autopilot are mutually exclusive: replicas are read mirrors, the primary owns retraining")
		}
		src, err := registry.Open(*syncFrom)
		if err != nil {
			return fmt.Errorf("opening sync source: %w", err)
		}
		syncer = &fleet.Syncer{Source: src, Replica: store, Logger: slogx.L()}
		if err := syncer.SyncOnce(); err != nil {
			if _, ok, _ := store.Current(); !ok {
				return fmt.Errorf("initial registry sync failed and the local mirror is empty: %w", err)
			}
			slogx.Warn("initial registry sync failed; serving last mirrored model", "err", err.Error())
		}
	}

	gate := registry.Gate{MinEvents: *gateEvents, MinTPR: *gateTPR, MaxFPR: *gateFPR}
	var ctl *autopilot.Controller
	if *apEnable {
		if store == nil {
			return fmt.Errorf("-autopilot requires -registry")
		}
		if *apBenign == "" || *apMixed == "" {
			return fmt.Errorf("-autopilot requires -autopilot-benign and -autopilot-mixed")
		}
		stateDir := *apState
		if stateDir == "" {
			stateDir = filepath.Join(*regDir, "autopilot")
		}
		c, err := autopilot.New(autopilot.Config{
			Store: store,
			Trainer: autopilot.LogTrainer{
				BenignPath: *apBenign,
				MixedPath:  *apMixed,
				App:        *apApp,
				Window:     *apWindow,
				Lambda:     *apLambda,
				Sigma2:     *apSigma2,
				Seed:       *apSeed,
				Lenient:    *apLenient,
				Parallel:   *parallel,
			},
			Gate:             gate,
			StateDir:         stateDir,
			Interval:         *apInterval,
			TriggerEvents:    *apTrigger,
			ShadowTimeout:    *apShadowTO,
			StageRetries:     *apRetries,
			BackoffBase:      *apBackoff,
			BreakerThreshold: *apBreaker,
			Seed:             *apSeed,
			Logger:           slogx.L(),
		})
		if err != nil {
			return err
		}
		ctl = c
	}

	cfg := serve.Config{
		Models:         models,
		Registry:       store,
		RegistryModel:  *regModel,
		ShadowQueue:    *shadowQ,
		Gate:           gate,
		SpoolDir:       *spool,
		MaxSessions:    *maxSess,
		QueueDepth:     *queueDepth,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		IdleTimeout:    *idle,
		EvictInterval:  *evictEvery,
		Parallel:       *parallel,
		ReplicaID:      *replicaID,
		Logger:         slogx.L(),
	}
	if ctl != nil {
		cfg.Autopilot = ctl
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	if syncer != nil {
		// Pointer advances mirrored from the primary hot-reload the
		// server — the fleet-wide promotion propagation path.
		syncer.OnAdvance = func(registry.Pointer) error { return srv.Reload() }
		syncCtx, syncCancel := context.WithCancel(context.Background())
		defer syncCancel()
		go syncer.Run(syncCtx, *syncEvery)
		slogx.Info("registry replication started", "from", *syncFrom, "interval", syncEvery.String())
	}
	if ctl != nil {
		ctl.Bind(srv)
		if err := ctl.Start(); err != nil {
			return err
		}
		slogx.Info("autopilot started", "trigger", *apTrigger, "interval", apInterval.String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	slogx.Info("serving", "addr", ln.Addr().String(), "models", models.String(), "spool", *spool)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP, syscall.SIGQUIT)
	defer signal.Stop(sigs)
	for {
		select {
		case err := <-serveErr:
			return fmt.Errorf("listener failed: %w", err)
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				slogx.Info("SIGHUP: reloading models")
				if err := srv.Reload(); err != nil {
					slogx.Warn("model reload incomplete", "err", err.Error())
				}
				continue
			}
			if sig == syscall.SIGQUIT {
				// The operator's "what is it doing right now" signal: dump
				// the flight recorder and keep serving. Catching SIGQUIT
				// suppresses the runtime's dump-all-goroutines-and-exit
				// default, so write a goroutine stack dump too — to a file
				// next to the flight dump, or to stderr (where the runtime
				// would have put it) when no flight directory is configured.
				// Each kill -QUIT is a deliberate ask, so this bypasses the
				// trigger-dump rate limit.
				if dir := telemetry.FlightDir(); dir != "" {
					if path, err := telemetry.DumpFlightTo(dir, "sigquit"); err == nil {
						slogx.Info("SIGQUIT: flight recorder dumped", "dump", path)
					} else {
						slogx.Warn("SIGQUIT: flight dump failed", "err", err.Error())
					}
					if path, err := telemetry.DumpGoroutinesTo(dir, "sigquit"); err == nil {
						slogx.Info("SIGQUIT: goroutine stacks dumped", "dump", path)
					} else {
						slogx.Warn("SIGQUIT: goroutine dump failed", "err", err.Error())
					}
				} else {
					slogx.Warn("SIGQUIT: no flight directory configured; dumping goroutine stacks to stderr")
					_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 2)
				}
				continue
			}
			slogx.Info("shutting down", "signal", sig.String())
			if ctl != nil {
				ctl.Stop() // journal keeps any interrupted cycle resumable
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := httpSrv.Shutdown(ctx) // stop intake, finish in-flight requests
			if serr := srv.Shutdown(ctx); err == nil {
				err = serr
			}
			cancel()
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return fmt.Errorf("shutdown: %w", err)
			}
			slogx.Info("shutdown complete; sessions spooled", "spool", *spool)
			return nil
		}
	}
}
