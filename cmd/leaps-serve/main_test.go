package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/svm"
)

// buildModel trains a small model, writes it to dir, and returns its
// path plus the dataset's logs for driving sessions.
func buildModel(t *testing.T, dir string) (string, *dataset.Logs) {
	t.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	logs, err := spec.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
		Seed:        1,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "m.model")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, logs
}

// postJSON marshals body and POSTs it, decoding the response into out.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestRunServesScoresAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	model, logs := buildModel(t, dir)
	spool := filepath.Join(dir, "spool")
	mal := logs.Malicious

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-model", model, "-addr", "127.0.0.1:0", "-spool", spool, "-quiet"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}

	var info serve.SessionInfo
	if code := postJSON(t, base+"/v1/sessions", serve.SessionSpecOf(mal, ""), &info); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	n := 3 * info.Window
	var res serve.IngestResult
	url := fmt.Sprintf("%s/v1/sessions/%s/events", base, info.ID)
	batch := serve.EventBatch{Events: serve.EventSpecsOf(mal.Events[:n])}
	if code := postJSON(t, url, batch, &res); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	if res.Consumed != n || len(res.Verdicts) == 0 {
		t.Fatalf("ingest result %+v, want %d consumed with verdicts", res, n)
	}

	// SIGTERM checkpoints the session and exits cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
	ids, err := core.SpooledSessions(spool)
	if err != nil || len(ids) != 1 || ids[0] != info.ID {
		t.Fatalf("spool after SIGTERM: ids=%v err=%v, want [%s]", ids, err, info.ID)
	}

	// A restarted server restores the session and keeps scoring it.
	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-model", model, "-addr", "127.0.0.1:0", "-spool", spool, "-quiet"}, ready2)
	}()
	select {
	case addr := <-ready2:
		base = "http://" + addr
	case err := <-done2:
		t.Fatalf("restarted server exited before ready: %v", err)
	}
	resp, err := http.Get(base + "/v1/sessions/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var state serve.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || state.Consumed != n {
		t.Fatalf("restored session: status %d state %+v, want consumed=%d", resp.StatusCode, state, n)
	}
	url = fmt.Sprintf("%s/v1/sessions/%s/events", base, info.ID)
	batch = serve.EventBatch{Events: serve.EventSpecsOf(mal.Events[n : n+info.Window])}
	if code := postJSON(t, url, batch, &res); code != http.StatusOK {
		t.Fatalf("post-restore ingest: status %d", code)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("restarted server did not shut down on SIGTERM")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run([]string{"-model", "/no/such.model", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Error("unreadable model accepted")
	}
	if err := run([]string{"-model", "a.model", "-model", "b.model", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Error("duplicate default model name accepted")
	}
}

func TestModelFlags(t *testing.T) {
	m := modelFlags{}
	if err := m.Set("plain.model"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("extra=second.model"); err != nil {
		t.Fatal(err)
	}
	if m["default"] != "plain.model" || m["extra"] != "second.model" {
		t.Fatalf("modelFlags = %v", m)
	}
	for _, bad := range []string{"", "=path", "name="} {
		if err := m.Set(bad); err == nil {
			t.Errorf("value %q accepted", bad)
		}
	}
	if err := m.Set("other=plain.model"); err != nil {
		t.Error("distinct name for same path rejected")
	}
	if err := m.Set("extra=dup.model"); err == nil {
		t.Error("duplicate name accepted")
	}
}
