// Command leaps-sim runs the deterministic cluster load simulator: N
// in-process leaps-serve replicas driven by synthetic appsim sessions on
// a shared virtual clock, with optional replica crash/restore churn and
// a mid-traffic registry promotion. The same scenario and seed always
// produce a byte-identical report and event log.
//
// Usage:
//
//	leaps-sim -list                          # canonical scenario catalog
//	leaps-sim -name steady-state             # run a canonical scenario
//	leaps-sim -scenario sc.json              # run a scenario file
//	leaps-sim -name churn -seed 99           # override the pinned seed
//	leaps-sim -name burst -report out.json   # write the report to a file
//	leaps-sim -name churn -eventlog ev.log   # dump the event trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/telemetry/slogx"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-sim", flag.ContinueOnError)
	var (
		scenarioPath = fs.String("scenario", "", "scenario JSON file to run")
		name         = fs.String("name", "", "canonical scenario to run (see -list)")
		list         = fs.Bool("list", false, "list the canonical scenario catalog and exit")
		seed         = fs.Int64("seed", 0, "override the scenario's seed (0 = keep)")
		replicas     = fs.Int("replicas", 0, "override the scenario's replica count (0 = keep)")
		reportPath   = fs.String("report", "", "write the report JSON here (default stdout)")
		eventLog     = fs.String("eventlog", "", "write the deterministic event trace here")
		workDir      = fs.String("workdir", "", "scratch directory for the registry and spools (default: temp dir)")
		quiet        = fs.Bool("q", false, "suppress replica logs")
		verbose      = fs.Bool("v", false, "verbose replica logs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, *verbose)})

	if *list {
		for _, sc := range sim.Canonical() {
			extras := ""
			if len(sc.Faults) > 0 {
				extras += fmt.Sprintf(" faults=%d", len(sc.Faults))
			}
			if sc.Promotion != nil {
				extras += " promotion"
			}
			fmt.Printf("%-20s seed=%-6d replicas=%d duration=%gs arrival=%s%s\n",
				sc.Name, sc.Seed, sc.Replicas, sc.DurationSec, sc.Arrival.Process, extras)
		}
		return nil
	}

	var sc sim.Scenario
	var err error
	switch {
	case *scenarioPath != "" && *name != "":
		return fmt.Errorf("-scenario and -name are mutually exclusive")
	case *scenarioPath != "":
		sc, err = sim.LoadScenario(*scenarioPath)
	case *name != "":
		sc, err = sim.CanonicalByName(*name)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -scenario, -name or -list")
	}
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *replicas != 0 {
		sc.Replicas = *replicas
	}

	cfg := sim.Config{Scenario: sc, WorkDir: *workDir, Logger: slogx.L()}
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.EventLog = f
	}
	rep, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	blob, err := rep.JSON()
	if err != nil {
		return err
	}
	if *reportPath == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(*reportPath, blob, 0o644)
}
