package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/trace"
)

// writeDataset materialises a small dataset's logs as .letl files.
func writeDataset(t *testing.T, dir string) (benign, mixed, malicious string) {
	t.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	logs, err := spec.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, log *trace.Log) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := etl.WriteLogs(f, log); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("benign.letl", logs.Benign),
		write("mixed.letl", logs.Mixed),
		write("malicious.letl", logs.Malicious)
}

func TestRunTrainsAndSavesModel(t *testing.T) {
	dir := t.TempDir()
	benign, mixed, _ := writeDataset(t, dir)
	model := filepath.Join(dir, "out.model")
	err := run([]string{
		"-benign", benign, "-mixed", mixed, "-model", model,
		"-lambda", "8", "-sigma2", "2", "-seed", "1", "-lenient",
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(model)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("model file is empty")
	}
}

func TestRunMultiSeed(t *testing.T) {
	dir := t.TempDir()
	benign, mixed, _ := writeDataset(t, dir)
	model := filepath.Join(dir, "out.model")
	err := run([]string{
		"-benign", benign, "-mixed", mixed, "-model", model,
		"-lambda", "8", "-sigma2", "2", "-seeds", "1, 2", "-lenient",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{model, model + ".seed2"} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("model file %s is empty", path)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run([]string{"-benign", "/no/such.letl", "-mixed", "/no/such.letl"}); err == nil {
		t.Error("missing files accepted")
	}
}
