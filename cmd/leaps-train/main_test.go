package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/registry"
	"repro/internal/trace"
)

// writeDataset materialises a small dataset's logs as .letl files.
func writeDataset(t *testing.T, dir string) (benign, mixed, malicious string) {
	t.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	logs, err := spec.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, log *trace.Log) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := etl.WriteLogs(f, log); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("benign.letl", logs.Benign),
		write("mixed.letl", logs.Mixed),
		write("malicious.letl", logs.Malicious)
}

func TestRunTrainsAndSavesModel(t *testing.T) {
	dir := t.TempDir()
	benign, mixed, _ := writeDataset(t, dir)
	model := filepath.Join(dir, "out.model")
	err := run([]string{
		"-benign", benign, "-mixed", mixed, "-model", model,
		"-lambda", "8", "-sigma2", "2", "-seed", "1", "-lenient",
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(model)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("model file is empty")
	}
}

func TestRunMultiSeed(t *testing.T) {
	dir := t.TempDir()
	benign, mixed, _ := writeDataset(t, dir)
	model := filepath.Join(dir, "out.model")
	regDir := filepath.Join(dir, "registry")
	err := run([]string{
		"-benign", benign, "-mixed", mixed, "-model", model,
		"-lambda", "8", "-sigma2", "2", "-seeds", "1, 2", "-lenient",
		"-registry", regDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{model, model + ".seed2"} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("model file %s is empty", path)
		}
	}

	// Both seeds were published; the first became the champion.
	st, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("registry holds %d entries, want 2", len(entries))
	}
	seeds := map[int64]bool{}
	for _, man := range entries {
		seeds[man.Train.Seed] = true
		if man.Train.Lambda != 8 || man.Train.BenignLog != benign || man.Train.App == "" {
			t.Errorf("manifest training info %+v does not record the run", man.Train)
		}
	}
	if !seeds[1] || !seeds[2] {
		t.Errorf("published seeds %v, want 1 and 2", seeds)
	}
	ptr, ok, err := st.Current()
	if err != nil || !ok {
		t.Fatalf("registry current: ok=%v err=%v", ok, err)
	}
	if ptr.ID != entries[0].ID {
		t.Errorf("current = %s, want the first published entry %s", ptr.ID, entries[0].ID)
	}
}

// saverFunc adapts a function to the modelSaver interface.
type saverFunc func(io.Writer) error

func (f saverFunc) Save(w io.Writer) error { return f(w) }

// TestSaveModelAtomicity checks satellite guarantee of saveModel: a
// write that fails part-way leaves nothing observable at the output
// path, and no temporary files behind.
func TestSaveModelAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.model")

	// A saver that emits partial bytes and then fails must not create the
	// output file.
	boom := errors.New("disk went away")
	err := saveModel(path, saverFunc(func(w io.Writer) error {
		if _, err := w.Write([]byte("partial bytes")); err != nil {
			return err
		}
		return boom
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("saveModel error = %v, want the saver's failure", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed save left a file at %s", path)
	}
	assertNoTempFiles(t, dir)

	// A successful save lands the full content at the path.
	if err := saveModel(path, saverFunc(func(w io.Writer) error {
		_, err := w.Write([]byte("complete model"))
		return err
	})); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil || string(blob) != "complete model" {
		t.Fatalf("saved content %q err %v", blob, err)
	}
	assertNoTempFiles(t, dir)

	// Overwriting an existing model that fails mid-write keeps the old
	// content intact.
	err = saveModel(path, saverFunc(func(w io.Writer) error {
		if _, err := w.Write([]byte("half-writ")); err != nil {
			return err
		}
		return boom
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("overwrite error = %v, want the saver's failure", err)
	}
	blob, err = os.ReadFile(path)
	if err != nil || string(blob) != "complete model" {
		t.Fatalf("failed overwrite corrupted the model: %q err %v", blob, err)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, ".*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("temporary files left behind: %v", matches)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run([]string{"-benign", "/no/such.letl", "-mixed", "/no/such.letl"}); err == nil {
		t.Error("missing files accepted")
	}
}
