// Command leaps-train runs the LEAPS training phase: from a benign raw
// log and a mixed raw log of the same application it builds the
// CFG-guided weighted SVM classifier and saves it as a model file.
//
// Usage:
//
//	leaps-train -benign b.letl -mixed m.letl -model out.model \
//	    [-app vim.exe] [-window 10] [-lambda 8 -sigma2 2] [-seed 1] \
//	    [-seeds 1,2,3] [-parallel N] [-lenient] [-registry dir] \
//	    [-quiet] [-verbose] [-log-json] [-debug-addr 127.0.0.1:6060] \
//	    [-telemetry-out report.json]
//
// Without -lambda/-sigma2 the parameters are chosen by cross-validated
// grid search on the training set, as in the paper. With -lenient,
// corrupt records in the training logs are skipped and reported instead
// of rejecting the file.
//
// -seeds trains one model per data-selection seed while building the
// seed-independent pipeline artifacts (partitioning, feature clustering,
// CFG inference, weight assessment) exactly once; each extra model costs
// only its own sampling and SVM fit. Models beyond the first are written
// to <model>.seed<N>. -parallel bounds the pipeline's internal worker
// pools (0 = all processors, 1 = serial); results are identical either
// way.
//
// With -registry, each trained model is additionally published into the
// model registry at that directory (creating it on first use), recording
// the training inputs and hyperparameters in the entry's manifest. The
// first entry published into an empty registry becomes the serving
// champion; later entries wait for promotion over the leaps-serve
// /v1/models API. Model files are always written atomically — the bundle
// lands under a temporary name and is renamed into place, so a crash
// mid-write never leaves a partial model at the output path.
//
// A telemetry report (pipeline metrics plus stage timings) is written
// next to the model as <model>.telemetry.json; -telemetry-out overrides
// the path and -telemetry-out none disables it. -debug-addr serves live
// /metrics, /spans, expvar and pprof endpoints while training runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/etl"
	"repro/internal/faultinject"
	"repro/internal/registry"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slogx"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-train:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-train", flag.ContinueOnError)
	var (
		benignPath   = fs.String("benign", "", "benign raw log (.letl)")
		mixedPath    = fs.String("mixed", "", "mixed raw log (.letl)")
		modelPath    = fs.String("model", "leaps.model", "output model file")
		app          = fs.String("app", "", "application to slice (defaults to the only process)")
		window       = fs.Int("window", 10, "event-coalescing window")
		lambda       = fs.Float64("lambda", 0, "fixed λ (0 = grid search)")
		sigma2       = fs.Float64("sigma2", 0, "fixed Gaussian σ² (0 = grid search)")
		seed         = fs.Int64("seed", 1, "data-selection seed")
		seeds        = fs.String("seeds", "", "comma-separated seeds: one model per seed from shared artifacts (overrides -seed)")
		parallel     = fs.Int("parallel", 0, "pipeline worker bound (0 = all processors, 1 = serial)")
		lenient      = fs.Bool("lenient", false, "skip corrupt log records instead of rejecting the file")
		registryDir  = fs.String("registry", "", "publish each trained model into the registry at this directory")
		quiet        = fs.Bool("quiet", false, "only warnings and errors")
		verbose      = fs.Bool("verbose", false, "debug-level logging")
		logJSON      = fs.Bool("log-json", false, "emit JSON log records instead of key=value text")
		debugAddr    = fs.String("debug-addr", "", "serve /metrics, /spans and pprof on this address while running")
		telemetryOut = fs.String("telemetry-out", "", "telemetry report path (default <model>.telemetry.json, \"none\" disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, *verbose), JSON: *logJSON})
	if armed := faultinject.ArmFromEnv(); len(armed) > 0 {
		slogx.Warn("crash points armed from environment", "points", strings.Join(armed, ","))
	}
	if *benignPath == "" || *mixedPath == "" {
		return fmt.Errorf("missing -benign or -mixed")
	}
	if *debugAddr != "" {
		srv, err := telemetry.Serve(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		slogx.Info("debug server listening", "addr", srv.Addr)
	}

	benign, err := readLog(*benignPath, *app, *lenient)
	if err != nil {
		return err
	}
	mixed, err := readLog(*mixedPath, *app, *lenient)
	if err != nil {
		return err
	}

	seedList, err := parseSeeds(*seeds, *seed)
	if err != nil {
		return err
	}

	var store *registry.Store
	if *registryDir != "" {
		if store, err = registry.Open(*registryDir); err != nil {
			return err
		}
	}

	cfg := core.Config{Window: *window, Seed: seedList[0], Parallel: *parallel}
	if *lambda > 0 && *sigma2 > 0 {
		cfg.FixedParams = &svm.Params{Lambda: *lambda, Kernel: svm.RBFKernel{Sigma2: *sigma2}}
	}
	ctx := context.Background()
	art, err := core.BuildArtifacts(ctx, benign, mixed, cfg)
	if err != nil {
		return err
	}
	slogx.Info("inferred CFGs",
		"benign_nodes", art.BenignCFG.Graph.NumNodes(), "benign_edges", art.BenignCFG.Graph.NumEdges(),
		"mixed_nodes", art.MixedCFG.Graph.NumNodes(), "mixed_edges", art.MixedCFG.Graph.NumEdges())
	slogx.Info("assessed weights",
		"connected_paths", art.Weights.ConnectedPaths,
		"estimated_paths", art.Weights.EstimatedPaths,
		"outside_paths", art.Weights.OutsidePaths)

	for i, s := range seedList {
		clf, err := art.Select(s).Train(ctx)
		if err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
		slogx.Info("trained WSVM",
			"seed", s,
			"support_vectors", clf.Model().NumSVs(),
			"smo_iterations", clf.Model().Iters,
			"objective", clf.Model().Objective,
			"lambda", clf.Params().Lambda,
			"kernel", fmt.Sprint(clf.Params().Kernel))
		path := *modelPath
		if i > 0 {
			path = fmt.Sprintf("%s.seed%d", *modelPath, s)
		}
		if err := saveModel(path, clf); err != nil {
			return err
		}
		slogx.Info("wrote model", "path", path)
		if store != nil {
			man, err := publishModel(store, path, registry.TrainInfo{
				App:       benign.App,
				Seed:      s,
				Lambda:    clf.Params().Lambda,
				Kernel:    fmt.Sprint(clf.Params().Kernel),
				BenignLog: *benignPath,
				MixedLog:  *mixedPath,
			})
			if err != nil {
				return fmt.Errorf("publishing %s: %w", path, err)
			}
			slogx.Info("published model", "id", man.ID, "registry", *registryDir)
		}
	}

	if path := reportPath(*telemetryOut, *modelPath); path != "" {
		if err := telemetry.WriteJSONFile(path); err != nil {
			return fmt.Errorf("writing telemetry report: %w", err)
		}
		slogx.Info("wrote telemetry report", "path", path)
	}
	return nil
}

// parseSeeds resolves -seeds/-seed: an empty -seeds keeps the single
// -seed; otherwise the comma-separated list wins.
func parseSeeds(list string, single int64) ([]int64, error) {
	if list == "" {
		return []int64{single}, nil
	}
	var out []int64
	for _, part := range strings.Split(list, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %w", part, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// reportPath resolves the -telemetry-out flag: empty derives the report
// path from the primary output, "none" disables the report.
func reportPath(flagValue, output string) string {
	switch flagValue {
	case "":
		return output + ".telemetry.json"
	case "none":
		return ""
	default:
		return flagValue
	}
}

// modelSaver is what saveModel persists — the trained classifier in
// production, fakes in tests.
type modelSaver interface {
	Save(w io.Writer) error
}

// saveModel writes the bundle atomically: the model is serialised to a
// temporary file in the destination directory, synced, and renamed into
// place. A crash or write error part-way through never leaves a partial
// model observable at path.
func saveModel(path string, clf modelSaver) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := clf.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// publishModel pushes a saved bundle into the registry store.
func publishModel(store *registry.Store, path string, train registry.TrainInfo) (registry.Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return registry.Manifest{}, err
	}
	defer f.Close()
	return store.Publish(f, train)
}

func readLog(path, app string, lenient bool) (*trace.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := etl.ParseWith(f, etl.ParseOpts{Lenient: lenient})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(raw.ErrorLog) > 0 || raw.Dropped > 0 {
		slogx.Warn("log damage skipped", "path", path,
			"corrupt_records", len(raw.ErrorLog), "dropped_stacks", raw.Dropped)
	}
	if app == "" {
		pids := raw.PIDs()
		if len(pids) != 1 {
			return nil, fmt.Errorf("%s holds %d processes; use -app", path, len(pids))
		}
		return raw.Slice(pids[0])
	}
	return raw.SliceApp(app)
}
