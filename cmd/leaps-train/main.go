// Command leaps-train runs the LEAPS training phase: from a benign raw
// log and a mixed raw log of the same application it builds the
// CFG-guided weighted SVM classifier and saves it as a model file.
//
// Usage:
//
//	leaps-train -benign b.letl -mixed m.letl -model out.model \
//	    [-app vim.exe] [-window 10] [-lambda 8 -sigma2 2] [-seed 1] [-lenient]
//
// Without -lambda/-sigma2 the parameters are chosen by cross-validated
// grid search on the training set, as in the paper. With -lenient,
// corrupt records in the training logs are skipped and reported instead
// of rejecting the file.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/etl"
	"repro/internal/svm"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-train:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-train", flag.ContinueOnError)
	var (
		benignPath = fs.String("benign", "", "benign raw log (.letl)")
		mixedPath  = fs.String("mixed", "", "mixed raw log (.letl)")
		modelPath  = fs.String("model", "leaps.model", "output model file")
		app        = fs.String("app", "", "application to slice (defaults to the only process)")
		window     = fs.Int("window", 10, "event-coalescing window")
		lambda     = fs.Float64("lambda", 0, "fixed λ (0 = grid search)")
		sigma2     = fs.Float64("sigma2", 0, "fixed Gaussian σ² (0 = grid search)")
		seed       = fs.Int64("seed", 1, "data-selection seed")
		lenient    = fs.Bool("lenient", false, "skip corrupt log records instead of rejecting the file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benignPath == "" || *mixedPath == "" {
		return fmt.Errorf("missing -benign or -mixed")
	}

	benign, err := readLog(*benignPath, *app, *lenient)
	if err != nil {
		return err
	}
	mixed, err := readLog(*mixedPath, *app, *lenient)
	if err != nil {
		return err
	}

	cfg := core.Config{Window: *window, Seed: *seed}
	if *lambda > 0 && *sigma2 > 0 {
		cfg.FixedParams = &svm.Params{Lambda: *lambda, Kernel: svm.RBFKernel{Sigma2: *sigma2}}
	}
	td, err := core.BuildTrainingData(benign, mixed, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("benign CFG: %d nodes / %d edges; mixed CFG: %d nodes / %d edges\n",
		td.BenignCFG.Graph.NumNodes(), td.BenignCFG.Graph.NumEdges(),
		td.MixedCFG.Graph.NumNodes(), td.MixedCFG.Graph.NumEdges())
	fmt.Printf("weights: %d connected paths, %d estimated, %d outside benign range\n",
		td.Weights.ConnectedPaths, td.Weights.EstimatedPaths, td.Weights.OutsidePaths)

	clf, err := td.Train()
	if err != nil {
		return err
	}
	fmt.Printf("trained WSVM: %d support vectors, λ=%g, kernel %s\n",
		clf.Model().NumSVs(), clf.Params().Lambda, clf.Params().Kernel)

	if err := saveModel(*modelPath, clf); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *modelPath)
	return nil
}

func saveModel(path string, clf *core.Classifier) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return clf.Save(f)
}

func readLog(path, app string, lenient bool) (*trace.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := etl.ParseWith(f, etl.ParseOpts{Lenient: lenient})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(raw.ErrorLog) > 0 || raw.Dropped > 0 {
		fmt.Printf("%s: %d corrupt records skipped, %d stack walks dropped\n",
			path, len(raw.ErrorLog), raw.Dropped)
	}
	if app == "" {
		pids := raw.PIDs()
		if len(pids) != 1 {
			return nil, fmt.Errorf("%s holds %d processes; use -app", path, len(pids))
		}
		return raw.Slice(pids[0])
	}
	return raw.SliceApp(app)
}
