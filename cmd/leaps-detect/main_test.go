package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/faultinject"
	"repro/internal/svm"
	"repro/internal/trace"
)

// buildFixtures trains a model on a small dataset and writes the model and
// the malicious log to disk.
func buildFixtures(t *testing.T, dir string) (modelPath, malPath string) {
	t.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	logs, err := spec.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
		Seed:        1,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "m.model")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Save(mf); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}

	malPath = filepath.Join(dir, "mal.letl")
	writeLogFile(t, malPath, logs.Malicious)
	return modelPath, malPath
}

func writeLogFile(t *testing.T, path string, log *trace.Log) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := etl.WriteLogs(f, log); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDetects(t *testing.T) {
	dir := t.TempDir()
	model, mal := buildFixtures(t, dir)
	if err := run([]string{"-model", model, "-log", mal, "-expect", "malicious"}); err != nil {
		t.Fatal(err)
	}
	// Verbose path.
	if err := run([]string{"-model", model, "-log", mal, "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLenientRecoversCorruptLog(t *testing.T) {
	dir := t.TempDir()
	model, mal := buildFixtures(t, dir)

	clean, err := os.ReadFile(mal)
	if err != nil {
		t.Fatal(err)
	}
	faulty, rep, err := faultinject.Inject(clean, faultinject.Config{
		Seed:  11,
		Specs: []faultinject.Spec{{Fault: faultinject.Garbage, Rate: 0.03}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() == 0 {
		t.Fatal("no faults injected")
	}
	corrupt := filepath.Join(dir, "corrupt.letl")
	if err := os.WriteFile(corrupt, faulty, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-model", model, "-log", corrupt}); err == nil {
		t.Fatal("strict run accepted the corrupt log")
	}
	if err := run([]string{"-model", model, "-log", corrupt, "-lenient", "-expect", "malicious"}); err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run([]string{"-model", "x", "-log", "y", "-expect", "weird"}); err == nil {
		t.Error("bad -expect accepted")
	}
	if err := run([]string{"-model", "/no/such.model", "-log", "/no/such.letl"}); err == nil {
		t.Error("missing files accepted")
	}
}
