// Command leaps-detect runs the LEAPS testing phase: it applies a trained
// model file to a raw event trace log and reports per-window verdicts.
//
// Usage:
//
//	leaps-detect -model leaps.model -log suspect.letl [-app vim.exe] \
//	    [-v] [-expect benign|malicious] [-lenient]
//
// With -expect, the log is treated as ground truth of one class and the
// hit rate is reported (how Table I's TPR/TNR columns are produced).
// With -lenient, corrupt records in the log are skipped and reported
// instead of rejecting the whole file. A model file whose statistical
// sections are damaged degrades to the bundled call-graph matcher (with a
// warning) rather than refusing to run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/etl"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-detect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-detect", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "", "trained model file from leaps-train")
		logPath   = fs.String("log", "", "raw log to classify (.letl)")
		app       = fs.String("app", "", "application to slice (defaults to the only process)")
		verbose   = fs.Bool("v", false, "print every window verdict")
		expect    = fs.String("expect", "", "ground truth class: benign or malicious")
		lenient   = fs.Bool("lenient", false, "skip corrupt log records instead of rejecting the file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *logPath == "" {
		return fmt.Errorf("missing -model or -log")
	}
	switch *expect {
	case "", "benign", "malicious":
	default:
		return fmt.Errorf("-expect must be benign or malicious, got %q", *expect)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	mon, err := core.LoadMonitor(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if mon.Degraded() {
		fmt.Fprintf(os.Stderr, "leaps-detect: warning: statistical model unusable (%v); running degraded call-graph matcher\n",
			mon.DegradedCause())
	}

	log, raw, err := readLog(*logPath, *app, *lenient)
	if err != nil {
		return err
	}
	if len(raw.ErrorLog) > 0 || raw.Dropped > 0 {
		fmt.Printf("log health: %d corrupt records skipped, %d stack walks dropped, %d events recovered\n",
			len(raw.ErrorLog), raw.Dropped, log.Len())
	}
	dets, err := mon.DetectLog(log)
	if err != nil {
		return err
	}
	if len(dets) == 0 {
		return fmt.Errorf("log too short: no full event windows")
	}

	var malicious int
	for _, d := range dets {
		if d.Malicious {
			malicious++
		}
		if *verbose {
			verdict := "benign"
			if d.Malicious {
				verdict = "MALICIOUS"
			}
			fmt.Printf("events %5d-%5d  score %+.4f  %s\n", d.FirstEvent, d.LastEvent, d.Score, verdict)
		}
	}
	fmt.Printf("%s: %d windows, %d flagged malicious (%.1f%%)\n",
		*logPath, len(dets), malicious, 100*float64(malicious)/float64(len(dets)))

	if *expect != "" {
		correct := len(dets) - malicious
		if *expect == "malicious" {
			correct = malicious
		}
		fmt.Printf("hit rate vs %s ground truth: %.3f\n",
			*expect, float64(correct)/float64(len(dets)))
	}
	return nil
}

func readLog(path, app string, lenient bool) (*trace.Log, *etl.RawFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	raw, err := etl.ParseWith(f, etl.ParseOpts{Lenient: lenient})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	var log *trace.Log
	if app == "" {
		pids := raw.PIDs()
		if len(pids) != 1 {
			return nil, nil, fmt.Errorf("%s holds %d processes; use -app", path, len(pids))
		}
		log, err = raw.Slice(pids[0])
	} else {
		log, err = raw.SliceApp(app)
	}
	if err != nil {
		return nil, nil, err
	}
	return log, raw, nil
}
