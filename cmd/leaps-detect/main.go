// Command leaps-detect runs the LEAPS testing phase: it applies a trained
// model file to a raw event trace log and reports per-window verdicts.
//
// Usage:
//
//	leaps-detect -model leaps.model -log suspect.letl [-app vim.exe] \
//	    [-v] [-expect benign|malicious] [-lenient] [-quiet] [-verbose] \
//	    [-log-json] [-debug-addr 127.0.0.1:6060] [-debug-wait 30s] \
//	    [-telemetry-out report.json]
//
// With -expect, the log is treated as ground truth of one class and the
// hit rate is reported (how Table I's TPR/TNR columns are produced).
// With -lenient, corrupt records in the log are skipped and reported
// instead of rejecting the whole file. A model file whose statistical
// sections are damaged degrades to the bundled call-graph matcher (with a
// warning) rather than refusing to run.
//
// A telemetry report (pipeline metrics plus stage timings) is written
// next to the log as <log>.telemetry.json; -telemetry-out overrides the
// path and -telemetry-out none disables it. -debug-addr serves live
// /metrics, /spans, expvar and pprof endpoints; -debug-wait keeps them up
// for the given duration after detection finishes so they can be scraped.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/etl"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slogx"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-detect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-detect", flag.ContinueOnError)
	var (
		modelPath    = fs.String("model", "", "trained model file from leaps-train")
		logPath      = fs.String("log", "", "raw log to classify (.letl)")
		app          = fs.String("app", "", "application to slice (defaults to the only process)")
		verbose      = fs.Bool("v", false, "print every window verdict")
		expect       = fs.String("expect", "", "ground truth class: benign or malicious")
		lenient      = fs.Bool("lenient", false, "skip corrupt log records instead of rejecting the file")
		quiet        = fs.Bool("quiet", false, "only warnings and errors")
		verboseLog   = fs.Bool("verbose", false, "debug-level logging")
		logJSON      = fs.Bool("log-json", false, "emit JSON log records instead of key=value text")
		debugAddr    = fs.String("debug-addr", "", "serve /metrics, /spans and pprof on this address while running")
		debugWait    = fs.Duration("debug-wait", 0, "keep the debug server up this long after detection finishes")
		telemetryOut = fs.String("telemetry-out", "", "telemetry report path (default <log>.telemetry.json, \"none\" disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, *verboseLog), JSON: *logJSON})
	if *modelPath == "" || *logPath == "" {
		return fmt.Errorf("missing -model or -log")
	}
	switch *expect {
	case "", "benign", "malicious":
	default:
		return fmt.Errorf("-expect must be benign or malicious, got %q", *expect)
	}
	if *debugAddr != "" {
		srv, err := telemetry.Serve(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		slogx.Info("debug server listening", "addr", srv.Addr)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	mon, err := core.LoadMonitor(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	var fbErr *core.FallbackUnavailableError
	if errors.As(err, &fbErr) {
		// Distinguish "your bundle predates the embedded call graph" from
		// a generic parse failure: the fix is a migration, not a retrain
		// from scratch (DESIGN.md §5, "v1→v2 bundle migration").
		return fmt.Errorf("model %s cannot run degraded: %w", *modelPath, fbErr)
	}
	if err != nil {
		return err
	}
	if mon.Degraded() {
		slogx.Warn("statistical model unusable; running degraded call-graph matcher",
			"cause", fmt.Sprint(mon.DegradedCause()))
	}

	log, raw, err := readLog(*logPath, *app, *lenient)
	if err != nil {
		return err
	}
	if len(raw.ErrorLog) > 0 || raw.Dropped > 0 {
		slogx.Warn("log damage skipped", "path", *logPath,
			"corrupt_records", len(raw.ErrorLog), "dropped_stacks", raw.Dropped,
			"events_recovered", log.Len())
	}
	dets, err := mon.DetectLog(log)
	if err != nil {
		return err
	}
	if len(dets) == 0 {
		return fmt.Errorf("log too short: no full event windows")
	}

	var malicious int
	for _, d := range dets {
		if d.Malicious {
			malicious++
		}
		if *verbose {
			verdict := "benign"
			if d.Malicious {
				verdict = "MALICIOUS"
			}
			fmt.Printf("events %5d-%5d  score %+.4f  %s\n", d.FirstEvent, d.LastEvent, d.Score, verdict)
		}
	}
	fmt.Printf("%s: %d windows, %d flagged malicious (%.1f%%)\n",
		*logPath, len(dets), malicious, 100*float64(malicious)/float64(len(dets)))

	if *expect != "" {
		correct := len(dets) - malicious
		if *expect == "malicious" {
			correct = malicious
		}
		fmt.Printf("hit rate vs %s ground truth: %.3f\n",
			*expect, float64(correct)/float64(len(dets)))
	}

	if path := reportPath(*telemetryOut, *logPath); path != "" {
		if err := telemetry.WriteJSONFile(path); err != nil {
			return fmt.Errorf("writing telemetry report: %w", err)
		}
		slogx.Info("wrote telemetry report", "path", path)
	}
	if *debugWait > 0 && *debugAddr != "" {
		slogx.Info("holding debug server open", "wait", debugWait.String())
		time.Sleep(*debugWait)
	}
	return nil
}

// reportPath resolves the -telemetry-out flag: empty derives the report
// path from the primary input, "none" disables the report.
func reportPath(flagValue, input string) string {
	switch flagValue {
	case "":
		return input + ".telemetry.json"
	case "none":
		return ""
	default:
		return flagValue
	}
}

func readLog(path, app string, lenient bool) (*trace.Log, *etl.RawFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	raw, err := etl.ParseWith(f, etl.ParseOpts{Lenient: lenient})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	var log *trace.Log
	if app == "" {
		pids := raw.PIDs()
		if len(pids) != 1 {
			return nil, nil, fmt.Errorf("%s holds %d processes; use -app", path, len(pids))
		}
		log, err = raw.Slice(pids[0])
	} else {
		log, err = raw.SliceApp(app)
	}
	if err != nil {
		return nil, nil, err
	}
	return log, raw, nil
}
