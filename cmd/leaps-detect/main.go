// Command leaps-detect runs the LEAPS testing phase: it applies a trained
// model file to a raw event trace log and reports per-window verdicts.
//
// Usage:
//
//	leaps-detect -model leaps.model -log suspect.letl [-app vim.exe] \
//	    [-v] [-expect benign|malicious]
//
// With -expect, the log is treated as ground truth of one class and the
// hit rate is reported (how Table I's TPR/TNR columns are produced).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/etl"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-detect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-detect", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "", "trained model file from leaps-train")
		logPath   = fs.String("log", "", "raw log to classify (.letl)")
		app       = fs.String("app", "", "application to slice (defaults to the only process)")
		verbose   = fs.Bool("v", false, "print every window verdict")
		expect    = fs.String("expect", "", "ground truth class: benign or malicious")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *logPath == "" {
		return fmt.Errorf("missing -model or -log")
	}
	switch *expect {
	case "", "benign", "malicious":
	default:
		return fmt.Errorf("-expect must be benign or malicious, got %q", *expect)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	clf, err := core.LoadClassifier(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	log, err := readLog(*logPath, *app)
	if err != nil {
		return err
	}
	dets, err := clf.DetectLog(log)
	if err != nil {
		return err
	}
	if len(dets) == 0 {
		return fmt.Errorf("log too short: no full event windows")
	}

	var malicious int
	for _, d := range dets {
		if d.Malicious {
			malicious++
		}
		if *verbose {
			verdict := "benign"
			if d.Malicious {
				verdict = "MALICIOUS"
			}
			fmt.Printf("events %5d-%5d  score %+.4f  %s\n", d.FirstEvent, d.LastEvent, d.Score, verdict)
		}
	}
	fmt.Printf("%s: %d windows, %d flagged malicious (%.1f%%)\n",
		*logPath, len(dets), malicious, 100*float64(malicious)/float64(len(dets)))

	if *expect != "" {
		correct := len(dets) - malicious
		if *expect == "malicious" {
			correct = malicious
		}
		fmt.Printf("hit rate vs %s ground truth: %.3f\n",
			*expect, float64(correct)/float64(len(dets)))
	}
	return nil
}

func readLog(path, app string) (*trace.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := etl.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if app == "" {
		pids := raw.PIDs()
		if len(pids) != 1 {
			return nil, fmt.Errorf("%s holds %d processes; use -app", path, len(pids))
		}
		return raw.Slice(pids[0])
	}
	return raw.SliceApp(app)
}
