package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/svm"
)

// trainMonitor builds one small real monitor for replica fixtures.
func trainMonitor(t *testing.T) (*core.Monitor, *dataset.Logs) {
	t.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	logs, err := spec.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
		Seed:        1,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	return core.NewMonitor(clf), logs
}

// startReplica boots a real serve.Server on a real TCP listener and
// returns its base URL — the shape -replica flags point at.
func startReplica(t *testing.T, mon *core.Monitor, id string) string {
	t.Helper()
	srv, err := serve.NewServer(serve.Config{
		Preloaded:      map[string]*core.Monitor{"default": mon},
		Parallel:       1,
		ReplicaID:      id,
		RequestTimeout: 30 * time.Second,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return hs.URL
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRunRoutesAndDrains drives the router binary end to end over real
// sockets: two serve replicas behind run(), session creation lands on
// the ring owner, a drain hands the session off, and the verdict
// stream continues on the survivor.
func TestRunRoutesAndDrains(t *testing.T) {
	mon, logs := trainMonitor(t)
	r0 := startReplica(t, mon, "r0")
	r1 := startReplica(t, mon, "r1")

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-replica", "r0=" + r0, "-replica", "r1=" + r1,
			"-addr", "127.0.0.1:0", "-ring-seed", "7", "-quiet",
		}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("router exited before ready: %v", err)
	}

	mal := logs.Malicious
	var info serve.SessionInfo
	spec := serve.SessionSpecOf(mal, "")
	spec.ID = "smoke-session"
	if code := postJSON(t, base+"/v1/sessions", spec, &info); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	if info.Replica != "r0" && info.Replica != "r1" {
		t.Fatalf("session owner %q is not a fleet member", info.Replica)
	}
	n := 2 * info.Window
	var res serve.IngestResult
	url := fmt.Sprintf("%s/v1/sessions/%s/events", base, info.ID)
	if code := postJSON(t, url, serve.EventBatch{Events: serve.EventSpecsOf(mal.Events[:n])}, &res); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	if res.Consumed != n || len(res.Verdicts) == 0 {
		t.Fatalf("ingest result %+v, want %d consumed with verdicts", res, n)
	}

	// Drain the owner: the session must move and keep its stream.
	var dr struct {
		Member string `json:"member"`
		Moved  int    `json:"moved"`
	}
	dr.Member = info.Replica
	if code := postJSON(t, base+"/v1/fleet/drain", dr, &dr); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}
	if dr.Moved != 1 {
		t.Fatalf("drain moved %d sessions, want 1", dr.Moved)
	}
	var fs fleet.FleetStatus
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fs.Generation != 3 || len(fs.Members) != 2 {
		t.Fatalf("fleet status %+v, want generation 3 with 2 members", fs)
	}
	if code := postJSON(t, url, serve.EventBatch{Events: serve.EventSpecsOf(mal.Events[n : n+info.Window])}, &res); code != http.StatusOK {
		t.Fatalf("post-drain ingest: status %d", code)
	}
	if len(res.Verdicts) == 0 {
		t.Fatal("no verdicts after handoff")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not shut down on SIGTERM")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("missing -replica accepted")
	}
}

func TestReplicaFlags(t *testing.T) {
	r := &replicaFlags{}
	if err := r.Set("r0=http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("r1=https://example.com:2"); err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "r0=http://127.0.0.1:1,r1=https://example.com:2" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "=http://x", "r2=", "r2=ftp://x", "r0=http://dup"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("value %q accepted", bad)
		}
	}
}
