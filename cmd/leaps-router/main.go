// Command leaps-router fronts a fleet of leaps-serve replicas with a
// consistent-hash session router: every session is pinned to one
// replica by hashing its ID onto a virtual-node ring, and the serve
// session API is forwarded there unchanged. Draining a replica moves
// its sessions to the survivors by checkpoint handoff (export on the
// loser, import on the winner — the same envelope a SIGTERM spools),
// so verdict streams continue byte-identically across the move.
//
// Usage:
//
//	leaps-router -replica r0=http://127.0.0.1:8341 \
//	    -replica r1=http://127.0.0.1:8342 [-replica ...] \
//	    [-addr 127.0.0.1:8360] [-vnodes 64] [-ring-seed 0] \
//	    [-health-interval 2s] [-max-body 8388608] \
//	    [-quiet] [-verbose] [-log-json]
//
// API:
//
//	POST   /v1/sessions              open a session on its ring owner
//	POST   /v1/sessions/{id}/events  forward a batch to the owner
//	GET    /v1/sessions/{id}         session state from the owner
//	DELETE /v1/sessions/{id}         close the session on its owner
//	GET    /v1/fleet                 ring + membership + health status
//	POST   /v1/fleet/drain           {"member": id} — hand off and drain
//	POST   /v1/fleet/join            {"member": id} — rejoin the ring
//	GET    /healthz, /readyz         router liveness / any-owner-ready
//	GET    /metrics, /spans, ...     telemetry introspection
//
// Replica IDs given to -replica must match each replica's -replica-id
// so the ownership breadcrumbs in session info line up. The router
// health-checks every replica's /readyz each -health-interval; an
// unhealthy replica stays in the ring (placement must not flap with
// transient probe failures) but is reported in /v1/fleet.
//
// On SIGTERM or SIGINT the router stops accepting requests and exits.
// Sessions live on the replicas, not the router; a restarted router
// with the same -ring-seed, -vnodes and membership reconstructs the
// same placements for sessions created at generation 0. Fleets that
// drain and rejoin members should prefer a long-lived router, whose
// ownership table tracks every handoff.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/telemetry/slogx"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-router:", err)
		os.Exit(1)
	}
}

// replicaFlag is one -replica value: a fleet member ID and the base URL
// of the leaps-serve instance answering for it.
type replicaFlag struct {
	id  string
	url *url.URL
}

// replicaFlags collects repeated -replica id=url values in order.
type replicaFlags struct {
	list []replicaFlag
}

func (r *replicaFlags) String() string {
	parts := make([]string, 0, len(r.list))
	for _, m := range r.list {
		parts = append(parts, m.id+"="+m.url.String())
	}
	return strings.Join(parts, ",")
}

func (r *replicaFlags) Set(v string) error {
	i := strings.IndexByte(v, '=')
	if i <= 0 || i == len(v)-1 {
		return fmt.Errorf("want id=url, got %q", v)
	}
	id, raw := v[:i], v[i+1:]
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("replica %s: %w", id, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("replica %s: URL %q must be http(s)", id, raw)
	}
	for _, m := range r.list {
		if m.id == id {
			return fmt.Errorf("replica %q given twice", id)
		}
	}
	r.list = append(r.list, replicaFlag{id: id, url: u})
	return nil
}

// run starts the router and blocks until a termination signal. When
// ready is non-nil, the bound address is sent on it once the listener
// is up (the smoke test hook).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("leaps-router", flag.ContinueOnError)
	replicas := &replicaFlags{}
	fs.Var(replicas, "replica", "serve replica to front: id=url (repeatable, id must match its -replica-id)")
	var (
		addr        = fs.String("addr", "127.0.0.1:8360", "listen address")
		vnodes      = fs.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		ringSeed    = fs.Uint64("ring-seed", 0, "ring hash seed; routers sharing seed, vnodes and membership agree on placement")
		healthEvery = fs.Duration("health-interval", 2*time.Second, "replica /readyz probe period")
		maxBody     = fs.Int64("max-body", 8<<20, "max routed request body bytes")
		quiet       = fs.Bool("quiet", false, "only warnings and errors")
		verbose     = fs.Bool("verbose", false, "debug-level logging")
		logJSON     = fs.Bool("log-json", false, "emit JSON log records instead of key=value text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, *verbose), JSON: *logJSON})
	if len(replicas.list) == 0 {
		return fmt.Errorf("missing -replica (need at least one id=url)")
	}

	members := make([]fleet.Member, 0, len(replicas.list))
	for _, m := range replicas.list {
		proxy := httputil.NewSingleHostReverseProxy(m.url)
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			slogx.Warn("replica unreachable", "replica", m.id, "path", r.URL.Path, "err", err.Error())
			http.Error(w, fmt.Sprintf("replica %s unreachable: %v", m.id, err), http.StatusBadGateway)
		}
		members = append(members, fleet.Member{ID: m.id, Handler: proxy})
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Members:      members,
		Seed:         *ringSeed,
		Vnodes:       *vnodes,
		MaxBodyBytes: *maxBody,
		Logger:       slogx.L(),
	})
	if err != nil {
		return err
	}

	healthCtx, healthCancel := context.WithCancel(context.Background())
	defer healthCancel()
	go rt.Run(healthCtx, *healthEvery)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	slogx.Info("routing", "addr", ln.Addr().String(), "replicas", replicas.String(),
		"vnodes", *vnodes, "seed", *ringSeed)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigs)
	select {
	case err := <-serveErr:
		return fmt.Errorf("listener failed: %w", err)
	case sig := <-sigs:
		slogx.Info("shutting down", "signal", sig.String())
		healthCancel()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}
