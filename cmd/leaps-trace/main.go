// Command leaps-trace synthesises system event logs for any of the
// paper's 21 datasets and writes them as binary raw event-trace-log
// (.letl) files — the simulator standing in for the paper's ETW capture.
//
// Usage:
//
//	leaps-trace -dataset vim_reverse_tcp -out ./data [-seed 1] [-list]
//
// It writes three files into the output directory:
//
//	<dataset>_benign.letl     clean application run (training positives)
//	<dataset>_mixed.letl      infected run (training negatives)
//	<dataset>_malicious.letl  standalone payload (testing ground truth)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-trace", flag.ContinueOnError)
	var (
		name   = fs.String("dataset", "", "dataset to generate (see -list)")
		out    = fs.String("out", ".", "output directory")
		seed   = fs.Int64("seed", 1, "generation seed")
		list   = fs.Bool("list", false, "list available datasets and exit")
		system = fs.Bool("system", false, "write system-wide files: each log interleaved with background processes (svchost, explorer)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range dataset.Names() {
			fmt.Println(n)
		}
		return nil
	}
	if *name == "" {
		return fmt.Errorf("missing -dataset (use -list to see choices)")
	}
	spec, err := dataset.ByName(*name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var background []*trace.Log
	var logs *dataset.Logs
	if *system {
		sys, err := spec.GenerateSystem(*seed)
		if err != nil {
			return err
		}
		logs, background = sys.Logs, sys.Background
	} else {
		if logs, err = spec.Generate(*seed); err != nil {
			return err
		}
	}
	files := []struct {
		suffix string
		log    *trace.Log
	}{
		{"benign", logs.Benign},
		{"mixed", logs.Mixed},
		{"malicious", logs.Malicious},
	}
	for _, f := range files {
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.letl", spec.Name, f.suffix))
		if err := writeLog(path, append([]*trace.Log{f.log}, background...)...); err != nil {
			return err
		}
		extra := ""
		if len(background) > 0 {
			extra = fmt.Sprintf(" + %d background processes", len(background))
		}
		fmt.Printf("wrote %s (%d events, app %s%s)\n", path, f.log.Len(), f.log.App, extra)
	}
	return nil
}

func writeLog(path string, logs ...*trace.Log) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return etl.WriteLogs(f, logs...)
}
