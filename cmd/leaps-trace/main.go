// Command leaps-trace synthesises system event logs for any of the
// paper's 21 datasets and writes them as binary raw event-trace-log
// (.letl) files — the simulator standing in for the paper's ETW capture.
//
// Usage:
//
//	leaps-trace -dataset vim_reverse_tcp -out ./data [-seed 1] [-list] \
//	    [-inject bitflip:0.05,drop:0.02] [-inject-seed 1] [-serve-json]
//
// It writes three files into the output directory:
//
//	<dataset>_benign.letl     clean application run (training positives)
//	<dataset>_mixed.letl      infected run (training negatives)
//	<dataset>_malicious.letl  standalone payload (testing ground truth)
//
// With -inject, each written file is corrupted by the named deterministic
// faults (bitflip, drop, dupstack, garbage, truncate; optional per-fault
// rate after a colon) — fixtures for exercising the lenient parser and
// fault-tolerant detection.
//
// With -serve-json, each log is additionally exported as a pair of JSON
// files in the leaps-serve wire format (<dataset>_<kind>.session.json
// and .events.json), ready to POST to a running server with curl.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slogx"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-trace", flag.ContinueOnError)
	var (
		name      = fs.String("dataset", "", "dataset to generate (see -list)")
		out       = fs.String("out", ".", "output directory")
		seed      = fs.Int64("seed", 1, "generation seed")
		list      = fs.Bool("list", false, "list available datasets and exit")
		system    = fs.Bool("system", false, "write system-wide files: each log interleaved with background processes (svchost, explorer)")
		serveJSON = fs.Bool("serve-json", false, "also write <dataset>_<kind>.session.json and .events.json in the leaps-serve wire format")
		inject    = fs.String("inject", "", "corrupt the written files: comma-separated fault[:rate] list (bitflip, drop, dupstack, garbage, truncate)")
		injSeed   = fs.Int64("inject-seed", 1, "fault-injection seed")
		quiet     = fs.Bool("quiet", false, "only warnings and errors")
		verbose   = fs.Bool("verbose", false, "debug-level logging")
		logJSON   = fs.Bool("log-json", false, "emit JSON log records instead of key=value text")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /spans and pprof on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, *verbose), JSON: *logJSON})
	if *debugAddr != "" {
		srv, err := telemetry.Serve(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		slogx.Info("debug server listening", "addr", srv.Addr)
	}
	var specs []faultinject.Spec
	if *inject != "" {
		var err error
		if specs, err = faultinject.ParseSpecs(*inject); err != nil {
			return err
		}
	}
	if *list {
		for _, n := range dataset.Names() {
			fmt.Println(n)
		}
		return nil
	}
	if *name == "" {
		return fmt.Errorf("missing -dataset (use -list to see choices)")
	}
	spec, err := dataset.ByName(*name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var background []*trace.Log
	var logs *dataset.Logs
	if *system {
		sys, err := spec.GenerateSystem(*seed)
		if err != nil {
			return err
		}
		logs, background = sys.Logs, sys.Background
	} else {
		if logs, err = spec.Generate(*seed); err != nil {
			return err
		}
	}
	files := []struct {
		suffix string
		log    *trace.Log
	}{
		{"benign", logs.Benign},
		{"mixed", logs.Mixed},
		{"malicious", logs.Malicious},
	}
	for i, f := range files {
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.letl", spec.Name, f.suffix))
		var buf bytes.Buffer
		if err := etl.WriteLogs(&buf, append([]*trace.Log{f.log}, background...)...); err != nil {
			return err
		}
		data := buf.Bytes()
		if len(specs) > 0 {
			// A distinct seed per file keeps the three logs' fault
			// patterns independent while the whole run stays reproducible.
			mutated, rep, err := faultinject.Inject(data, faultinject.Config{
				Seed:  *injSeed + int64(i),
				Specs: specs,
			})
			if err != nil {
				return err
			}
			data = mutated
			slogx.Info("injected faults", "path", path, "report", fmt.Sprint(rep))
			reportRecovery(path, data, f.log.App, f.log.Len())
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		slogx.Info("wrote log", "path", path, "events", f.log.Len(), "app", f.log.App,
			"background_processes", len(background))
		if *serveJSON {
			base := filepath.Join(*out, fmt.Sprintf("%s_%s", spec.Name, f.suffix))
			if err := writeServeJSON(base, f.log); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeServeJSON writes the log's session spec and event batch in the
// leaps-serve wire format, ready to POST with curl:
//
//	<base>.session.json  body for POST /v1/sessions
//	<base>.events.json   body for POST /v1/sessions/{id}/events
func writeServeJSON(base string, log *trace.Log) error {
	session, err := json.MarshalIndent(serve.SessionSpecOf(log, ""), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(base+".session.json", append(session, '\n'), 0o644); err != nil {
		return err
	}
	events, err := json.MarshalIndent(serve.EventBatch{Events: serve.EventSpecsOf(log.Events)}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(base+".events.json", append(events, '\n'), 0o644); err != nil {
		return err
	}
	slogx.Info("wrote serve wire files", "session", base+".session.json",
		"events", base+".events.json")
	return nil
}

// reportRecovery reparses an injected stream leniently and logs how much
// of the application's log survives the corruption. Per-cause skip counts
// land in the etl_skipped_records_total metric family.
func reportRecovery(path string, data []byte, app string, total int) {
	raw, err := etl.ParseWith(bytes.NewReader(data), etl.ParseOpts{Lenient: true})
	if err != nil {
		slogx.Warn("lenient reparse failed", "path", path, "err", err.Error())
		return
	}
	recovered := 0
	if log, err := raw.SliceApp(app); err == nil {
		recovered = log.Len()
	}
	slogx.Info("lenient reparse recovery", "path", path,
		"events_recovered", recovered, "events_total", total,
		"records_skipped", len(raw.ErrorLog), "stacks_dropped", raw.Dropped)
}
