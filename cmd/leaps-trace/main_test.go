package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/etl"
)

func TestRunGeneratesThreeLogs(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-dataset", "vim_reverse_tcp", "-out", dir, "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"benign", "mixed", "malicious"} {
		path := filepath.Join(dir, "vim_reverse_tcp_"+suffix+".letl")
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("missing %s: %v", path, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -dataset accepted")
	}
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run([]string{"-dataset", "vim_reverse_tcp", "-inject", "warp:0.5"}); err == nil {
		t.Error("unknown fault spec accepted")
	}
}

func TestRunInjectCorruptsFiles(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-dataset", "vim_reverse_tcp", "-out", dir, "-seed", "5",
		"-inject", "bitflip:0.04,garbage:0.03", "-inject-seed", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "vim_reverse_tcp_malicious.letl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := etl.Parse(f); err == nil {
		t.Fatal("strict parse accepted the injected file")
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := etl.ParseWith(f, etl.ParseOpts{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse of injected file: %v", err)
	}
	if len(raw.ErrorLog) == 0 {
		t.Error("injected corruption not reported in ErrorLog")
	}
	log, err := raw.SliceApp("reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Error("no events recovered from injected file")
	}
}

func TestRunSystemWide(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dataset", "vim_reverse_tcp", "-out", dir, "-seed", "4", "-system"}); err != nil {
		t.Fatal(err)
	}
	// The system-wide benign file holds three processes; slicing the
	// application back out recovers its events only.
	f, err := os.Open(filepath.Join(dir, "vim_reverse_tcp_benign.letl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	raw, err := etl.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(raw.PIDs()); got != 3 {
		t.Fatalf("system file holds %d processes, want 3", got)
	}
	vim, err := raw.SliceApp("vim.exe")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range vim.Events[:50] {
		for _, fr := range e.Stack {
			if fr.Module == "svchost.exe" || fr.Module == "explorer.exe" {
				t.Fatal("application slice contains background frames")
			}
		}
	}
	if _, err := raw.SliceApp("svchost.exe"); err != nil {
		t.Errorf("background process missing from system file: %v", err)
	}
}
