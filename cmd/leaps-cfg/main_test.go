package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/trace"
)

func writeLogs(t *testing.T, dir string) (benign, mixed string) {
	t.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents = 1500, 1500
	logs, err := spec.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, log *trace.Log) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := etl.WriteLogs(f, log); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("benign.letl", logs.Benign), write("mixed.letl", logs.Mixed)
}

func TestRunInferAndDiff(t *testing.T) {
	dir := t.TempDir()
	benign, mixed := writeLogs(t, dir)
	dot := filepath.Join(dir, "out.dot")
	if err := run([]string{"-log", benign, "-dot", dot, "-diff", mixed}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(string(data), "main") {
		t.Error("DOT output missing resolved function names")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -log accepted")
	}
	if err := run([]string{"-log", "/no/such.letl"}); err == nil {
		t.Error("missing file accepted")
	}
}
