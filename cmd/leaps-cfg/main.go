// Command leaps-cfg infers application control flow graphs from raw event
// trace logs (Algorithm 1 of the paper) and optionally compares a mixed
// CFG against a benign one the way Figure 4 does.
//
// Usage:
//
//	leaps-cfg -log benign.letl [-app vim.exe] [-dot out.dot]
//	leaps-cfg -log benign.letl -diff mixed.letl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfg"
	"repro/internal/etl"
	"repro/internal/partition"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slogx"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leaps-cfg:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leaps-cfg", flag.ContinueOnError)
	var (
		logPath   = fs.String("log", "", "raw event-trace-log file (.letl)")
		app       = fs.String("app", "", "application to slice (defaults to the only process)")
		dotPath   = fs.String("dot", "", "write the inferred CFG as Graphviz DOT to this file")
		diffPath  = fs.String("diff", "", "second raw log; compare its CFG against -log's")
		quiet     = fs.Bool("quiet", false, "only warnings and errors")
		verbose   = fs.Bool("verbose", false, "debug-level logging")
		logJSON   = fs.Bool("log-json", false, "emit JSON log records instead of key=value text")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /spans and pprof on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slogx.Configure(slogx.Options{Level: slogx.CLILevel(*quiet, *verbose), JSON: *logJSON})
	if *logPath == "" {
		return fmt.Errorf("missing -log")
	}
	if *debugAddr != "" {
		srv, err := telemetry.Serve(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		slogx.Info("debug server listening", "addr", srv.Addr)
	}

	base, inf, err := inferFromFile(*logPath, *app)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d nodes, %d edges (%d explicit, %d implicit), %d stackless events skipped\n",
		*logPath, inf.Graph.NumNodes(), inf.Graph.NumEdges(),
		inf.ExplicitEdges, inf.ImplicitEdges, inf.SkippedEvents)

	if *dotPath != "" {
		resolve := func(a uint64) string {
			return base.Modules.Resolve(trace.Frame{Addr: a}).Function
		}
		if err := os.WriteFile(*dotPath, []byte(inf.Graph.DOT("cfg", resolve)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}

	if *diffPath == "" {
		return nil
	}
	_, other, err := inferFromFile(*diffPath, *app)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d nodes, %d edges\n", *diffPath, other.Graph.NumNodes(), other.Graph.NumEdges())
	d := cfg.DiffGraphs(inf.Graph, other.Graph)
	fmt.Printf("common edges: %d\nonly in %s: %d\nonly in %s: %d\n",
		len(d.Common), *logPath, len(d.OnlyA), *diffPath, len(d.OnlyB))
	comps := other.Graph.WeaklyConnectedComponents()
	fmt.Printf("%s has %d weakly connected components (largest %d nodes)\n",
		*diffPath, len(comps), len(comps[0]))
	return nil
}

// inferFromFile parses a raw log, slices the application, partitions the
// stacks and infers the CFG.
func inferFromFile(path, app string) (*trace.Log, *cfg.Inference, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	raw, err := etl.Parse(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	var log *trace.Log
	if app == "" {
		pids := raw.PIDs()
		if len(pids) != 1 {
			return nil, nil, fmt.Errorf("%s holds %d processes; use -app", path, len(pids))
		}
		if log, err = raw.Slice(pids[0]); err != nil {
			return nil, nil, err
		}
	} else if log, err = raw.SliceApp(app); err != nil {
		return nil, nil, err
	}
	part, err := partition.Split(log)
	if err != nil {
		return nil, nil, err
	}
	inf, err := cfg.Infer(part)
	if err != nil {
		return nil, nil, err
	}
	return log, inf, nil
}
