package hmm

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train([]int{0, 1}, 0, Config{}); err == nil {
		t.Error("numSymbols=0 accepted")
	}
	if _, err := Train([]int{0}, 2, Config{}); err == nil {
		t.Error("length-1 sequence accepted")
	}
	if _, err := Train([]int{0, 5}, 2, Config{}); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := Train([]int{0, -1}, 2, Config{}); err == nil {
		t.Error("negative symbol accepted")
	}
}

func TestModelIsStochasticAfterTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := make([]int, 400)
	for i := range seq {
		seq[i] = rng.Intn(5)
	}
	m, err := Train(seq, 5, Config{States: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range m.Pi {
		if p < 0 {
			t.Fatalf("negative Pi entry %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("Pi sums to %v", sum)
	}
	for i := 0; i < m.NumStates(); i++ {
		var sa, sb float64
		for _, p := range m.A[i] {
			if p <= 0 {
				t.Fatalf("non-positive transition %v", p)
			}
			sa += p
		}
		for _, p := range m.B[i] {
			if p <= 0 {
				t.Fatalf("non-positive emission %v", p)
			}
			sb += p
		}
		if math.Abs(sa-1) > 1e-6 || math.Abs(sb-1) > 1e-6 {
			t.Errorf("state %d rows sum to %v / %v", i, sa, sb)
		}
	}
	if m.NumStates() != 3 || m.NumSymbols() != 5 {
		t.Errorf("dims = (%d,%d)", m.NumStates(), m.NumSymbols())
	}
}

func TestTrainingImprovesLikelihood(t *testing.T) {
	// A strongly structured sequence: alternating symbol blocks.
	var seq []int
	for i := 0; i < 50; i++ {
		for j := 0; j < 5; j++ {
			seq = append(seq, 0)
		}
		for j := 0; j < 5; j++ {
			seq = append(seq, 1)
		}
	}
	trained, err := Train(seq, 2, Config{States: 2, MaxIter: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	untrained := randomModel(2, 2, rand.New(rand.NewSource(3)))
	llT, err := trained.LogLikelihood(seq)
	if err != nil {
		t.Fatal(err)
	}
	llU, err := untrained.LogLikelihood(seq)
	if err != nil {
		t.Fatal(err)
	}
	if llT <= llU {
		t.Errorf("trained LL %v not above untrained %v", llT, llU)
	}
}

func TestLogLikelihoodValidation(t *testing.T) {
	m := randomModel(2, 3, rand.New(rand.NewSource(4)))
	if _, err := m.LogLikelihood(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := m.LogLikelihood([]int{7}); err == nil {
		t.Error("out-of-range symbol accepted")
	}
}

// Two distinguishable sources: benign emits symbols {0,1,2} in runs,
// malicious emits {3,4} in runs with occasional overlap. The classifier
// should separate held-out windows.
func TestClassifierSeparatesSources(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gen := func(symbols []int, n int) []int {
		out := make([]int, 0, n)
		for len(out) < n {
			s := symbols[rng.Intn(len(symbols))]
			run := 2 + rng.Intn(4)
			for j := 0; j < run && len(out) < n; j++ {
				out = append(out, s)
			}
		}
		return out
	}
	benignTrain := gen([]int{0, 1, 2}, 800)
	// The "mixed" sequence interleaves benign and malicious runs.
	var mixedTrain []int
	for len(mixedTrain) < 800 {
		if rng.Intn(2) == 0 {
			mixedTrain = append(mixedTrain, gen([]int{0, 1, 2}, 20)...)
		} else {
			mixedTrain = append(mixedTrain, gen([]int{3, 4}, 20)...)
		}
	}
	clf, err := TrainClassifier(benignTrain, mixedTrain, 5, Config{States: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		b, err := clf.PredictBenign(gen([]int{0, 1, 2}, 20))
		if err != nil {
			t.Fatal(err)
		}
		if b {
			correct++
		}
		b, err = clf.PredictBenign(gen([]int{3, 4}, 20))
		if err != nil {
			t.Fatal(err)
		}
		if !b {
			correct++
		}
	}
	if acc := float64(correct) / float64(2*trials); acc < 0.85 {
		t.Errorf("classifier accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := make([]int, 300)
	for i := range seq {
		seq[i] = rng.Intn(4)
	}
	a, err := Train(seq, 4, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(seq, 4, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	llA, _ := a.LogLikelihood(seq)
	llB, _ := b.LogLikelihood(seq)
	if llA != llB {
		t.Errorf("same seed trained different models: %v vs %v", llA, llB)
	}
}

func TestViterbiValidation(t *testing.T) {
	m := randomModel(2, 3, rand.New(rand.NewSource(9)))
	if _, err := m.Viterbi(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := m.Viterbi([]int{9}); err == nil {
		t.Error("out-of-range symbol accepted")
	}
}

func TestViterbiRecoversBlockStructure(t *testing.T) {
	// Train on alternating blocks; the decoded state sequence must
	// switch states exactly at the block boundaries.
	var seq []int
	for i := 0; i < 40; i++ {
		for j := 0; j < 6; j++ {
			seq = append(seq, 0)
		}
		for j := 0; j < 6; j++ {
			seq = append(seq, 1)
		}
	}
	m, err := Train(seq, 2, Config{States: 2, MaxIter: 60, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	path, err := m.Viterbi(seq[:24])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 24 {
		t.Fatalf("path length = %d", len(path))
	}
	// Within each block the state must be constant; across the block
	// boundary it must change.
	for _, block := range [][2]int{{0, 6}, {6, 12}, {12, 18}, {18, 24}} {
		first := path[block[0]]
		for i := block[0]; i < block[1]; i++ {
			if path[i] != first {
				t.Fatalf("state changed inside block %v at %d", block, i)
			}
		}
	}
	if path[0] == path[6] {
		t.Error("states identical across block boundary")
	}
	// Viterbi path probability is consistent with model dimensions.
	for _, s := range path {
		if s < 0 || s >= m.NumStates() {
			t.Fatalf("state %d out of range", s)
		}
	}
}
