// Package hmm implements a discrete-observation hidden Markov model with
// Baum-Welch training and scaled forward-algorithm scoring.
//
// The paper's §VI-B names HMMs as future work for capturing causal
// relations between events dispersed in the log (following Warrender et
// al. and Gao et al.). This package provides that extension: one HMM is
// trained per class over discretised event-symbol sequences, and windows
// are classified by log-likelihood ratio (see Classifier).
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Model is a discrete HMM with N hidden states and M observation symbols.
type Model struct {
	// Pi is the initial state distribution (N).
	Pi []float64
	// A is the state transition matrix (N×N), A[i][j] = P(j | i).
	A [][]float64
	// B is the emission matrix (N×M), B[i][k] = P(symbol k | state i).
	B [][]float64
}

// NumStates returns N.
func (m *Model) NumStates() int { return len(m.Pi) }

// NumSymbols returns M.
func (m *Model) NumSymbols() int {
	if len(m.B) == 0 {
		return 0
	}
	return len(m.B[0])
}

// Config controls training.
type Config struct {
	// States is the number of hidden states (default 4).
	States int
	// MaxIter bounds Baum-Welch iterations (default 30).
	MaxIter int
	// Tol stops training when the per-symbol log-likelihood improves by
	// less than this (default 1e-4).
	Tol float64
	// Seed initialises the random parameter start.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.States == 0 {
		c.States = 4
	}
	if c.MaxIter == 0 {
		c.MaxIter = 30
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// smoothing is the additive floor keeping probabilities non-zero so
// unseen symbols cannot produce -Inf likelihoods.
const smoothing = 1e-6

// Train fits a model to the observation sequence with Baum-Welch. symbols
// must lie in [0, numSymbols).
func Train(seq []int, numSymbols int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if numSymbols < 1 {
		return nil, fmt.Errorf("hmm: numSymbols %d must be positive", numSymbols)
	}
	if len(seq) < 2 {
		return nil, errors.New("hmm: sequence too short to train on")
	}
	for i, s := range seq {
		if s < 0 || s >= numSymbols {
			return nil, fmt.Errorf("hmm: symbol %d at position %d out of [0,%d)", s, i, numSymbols)
		}
	}

	m := randomModel(cfg.States, numSymbols, rand.New(rand.NewSource(cfg.Seed)))
	prev := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		ll := m.baumWelchStep(seq)
		if ll-prev < cfg.Tol*float64(len(seq)) && iter > 0 {
			break
		}
		prev = ll
	}
	return m, nil
}

// randomModel initialises near-uniform parameters with random jitter
// (exact uniformity is a Baum-Welch fixed point).
func randomModel(n, mSyms int, rng *rand.Rand) *Model {
	m := &Model{
		Pi: make([]float64, n),
		A:  make([][]float64, n),
		B:  make([][]float64, n),
	}
	randRow := func(k int) []float64 {
		row := make([]float64, k)
		var sum float64
		for i := range row {
			row[i] = 1 + 0.2*rng.Float64()
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
		return row
	}
	copy(m.Pi, randRow(n))
	for i := 0; i < n; i++ {
		m.A[i] = randRow(n)
		m.B[i] = randRow(mSyms)
	}
	return m
}

// forwardScaled runs the scaled forward algorithm, returning the scaled
// alpha matrix, the per-step scale factors and the sequence
// log-likelihood.
func (m *Model) forwardScaled(seq []int) (alpha [][]float64, scale []float64, ll float64) {
	n, T := m.NumStates(), len(seq)
	alpha = make([][]float64, T)
	scale = make([]float64, T)
	alpha[0] = make([]float64, n)
	for i := 0; i < n; i++ {
		alpha[0][i] = m.Pi[i] * m.B[i][seq[0]]
		scale[0] += alpha[0][i]
	}
	if scale[0] == 0 {
		scale[0] = smoothing
	}
	for i := 0; i < n; i++ {
		alpha[0][i] /= scale[0]
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = s * m.B[j][seq[t]]
			scale[t] += alpha[t][j]
		}
		if scale[t] == 0 {
			scale[t] = smoothing
		}
		for j := 0; j < n; j++ {
			alpha[t][j] /= scale[t]
		}
	}
	for t := 0; t < T; t++ {
		ll += math.Log(scale[t])
	}
	return alpha, scale, ll
}

// backwardScaled runs the scaled backward algorithm with the forward
// pass's scale factors.
func (m *Model) backwardScaled(seq []int, scale []float64) [][]float64 {
	n, T := m.NumStates(), len(seq)
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, n)
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += m.A[i][j] * m.B[j][seq[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s / scale[t]
		}
	}
	return beta
}

// baumWelchStep performs one EM iteration in place and returns the
// log-likelihood under the pre-update parameters.
func (m *Model) baumWelchStep(seq []int) float64 {
	n, mSyms, T := m.NumStates(), m.NumSymbols(), len(seq)
	alpha, scale, ll := m.forwardScaled(seq)
	beta := m.backwardScaled(seq, scale)

	// gamma[t][i] ∝ alpha[t][i]·beta[t][i]; xi aggregated directly into
	// the transition numerators.
	gammaSum := make([]float64, n)      // Σ_{t<T-1} gamma[t][i]
	gammaSymbol := make([][]float64, n) // Σ_t gamma[t][i]·[seq[t]==k]
	gammaTotal := make([]float64, n)    // Σ_t gamma[t][i]
	transNum := make([][]float64, n)    // Σ_t xi[t][i][j]
	for i := 0; i < n; i++ {
		gammaSymbol[i] = make([]float64, mSyms)
		transNum[i] = make([]float64, n)
	}
	for t := 0; t < T; t++ {
		var norm float64
		g := make([]float64, n)
		for i := 0; i < n; i++ {
			g[i] = alpha[t][i] * beta[t][i]
			norm += g[i]
		}
		if norm == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			g[i] /= norm
			gammaTotal[i] += g[i]
			gammaSymbol[i][seq[t]] += g[i]
			if t < T-1 {
				gammaSum[i] += g[i]
			}
		}
		if t == 0 {
			copy(m.Pi, g)
		}
		if t < T-1 {
			var xiNorm float64
			xi := make([][]float64, n)
			for i := 0; i < n; i++ {
				xi[i] = make([]float64, n)
				for j := 0; j < n; j++ {
					xi[i][j] = alpha[t][i] * m.A[i][j] * m.B[j][seq[t+1]] * beta[t+1][j]
					xiNorm += xi[i][j]
				}
			}
			if xiNorm > 0 {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						transNum[i][j] += xi[i][j] / xiNorm
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.A[i][j] = (transNum[i][j] + smoothing) / (gammaSum[i] + float64(n)*smoothing)
		}
		for k := 0; k < mSyms; k++ {
			m.B[i][k] = (gammaSymbol[i][k] + smoothing) / (gammaTotal[i] + float64(mSyms)*smoothing)
		}
	}
	return ll
}

// LogLikelihood scores a sequence under the model.
func (m *Model) LogLikelihood(seq []int) (float64, error) {
	if len(seq) == 0 {
		return 0, errors.New("hmm: empty sequence")
	}
	for i, s := range seq {
		if s < 0 || s >= m.NumSymbols() {
			return 0, fmt.Errorf("hmm: symbol %d at position %d out of range", s, i)
		}
	}
	_, _, ll := m.forwardScaled(seq)
	return ll, nil
}

// Classifier is a two-class sequence classifier: one HMM per class,
// deciding by log-likelihood ratio.
type Classifier struct {
	Benign    *Model
	Malicious *Model
}

// TrainClassifier fits the benign model on the benign symbol sequence and
// the malicious model on the mixed sequence.
func TrainClassifier(benignSeq, mixedSeq []int, numSymbols int, cfg Config) (*Classifier, error) {
	b, err := Train(benignSeq, numSymbols, cfg)
	if err != nil {
		return nil, fmt.Errorf("hmm: benign model: %w", err)
	}
	malCfg := cfg
	malCfg.Seed = cfg.Seed + 1
	m, err := Train(mixedSeq, numSymbols, malCfg)
	if err != nil {
		return nil, fmt.Errorf("hmm: malicious model: %w", err)
	}
	return &Classifier{Benign: b, Malicious: m}, nil
}

// Score returns the benign-minus-malicious log-likelihood ratio of the
// window; positive favours benign.
func (c *Classifier) Score(window []int) (float64, error) {
	lb, err := c.Benign.LogLikelihood(window)
	if err != nil {
		return 0, err
	}
	lm, err := c.Malicious.LogLikelihood(window)
	if err != nil {
		return 0, err
	}
	return lb - lm, nil
}

// PredictBenign classifies a window: true when the benign model explains
// it at least as well as the malicious model.
func (c *Classifier) PredictBenign(window []int) (bool, error) {
	s, err := c.Score(window)
	if err != nil {
		return false, err
	}
	return s >= 0, nil
}

// Viterbi returns the most likely hidden-state sequence for the
// observations, using log-space dynamic programming.
func (m *Model) Viterbi(seq []int) ([]int, error) {
	if len(seq) == 0 {
		return nil, errors.New("hmm: empty sequence")
	}
	for i, s := range seq {
		if s < 0 || s >= m.NumSymbols() {
			return nil, fmt.Errorf("hmm: symbol %d at position %d out of range", s, i)
		}
	}
	n, T := m.NumStates(), len(seq)
	logP := func(p float64) float64 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Log(p)
	}
	delta := make([][]float64, T)
	back := make([][]int, T)
	delta[0] = make([]float64, n)
	back[0] = make([]int, n)
	for i := 0; i < n; i++ {
		delta[0][i] = logP(m.Pi[i]) + logP(m.B[i][seq[0]])
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, n)
		back[t] = make([]int, n)
		for j := 0; j < n; j++ {
			best, bestI := math.Inf(-1), 0
			for i := 0; i < n; i++ {
				if v := delta[t-1][i] + logP(m.A[i][j]); v > best {
					best, bestI = v, i
				}
			}
			delta[t][j] = best + logP(m.B[j][seq[t]])
			back[t][j] = bestI
		}
	}
	// Backtrack from the best final state.
	path := make([]int, T)
	best, bestI := math.Inf(-1), 0
	for i := 0; i < n; i++ {
		if delta[T-1][i] > best {
			best, bestI = delta[T-1][i], i
		}
	}
	path[T-1] = bestI
	for t := T - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path, nil
}
