// Equivalence and allocation tests for the scratch encode path: the
// hot-path APIs must produce tuples byte-identical to the allocating
// reference implementation, and must stop allocating once warm.
package preprocess

import (
	"testing"

	"repro/internal/partition"
)

// TestEncodeOneMatchesEncode holds EncodeOne to Encode's output on
// every event of a fitted log plus a log the encoder never saw (so both
// the key-hit and the nearest-medoid fallback paths are exercised).
func TestEncodeOneMatchesEncode(t *testing.T) {
	seen := partitionedLog(t, 3)
	unseen := partitionedLog(t, 77)
	enc, err := Fit(seen.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for _, part := range []*partition.Log{seen, unseen} {
		for i := range part.Events {
			e := &part.Events[i]
			want := enc.Encode(e)
			if got := enc.EncodeOne(&s, e); got != want {
				t.Fatalf("event %d: Encode=%+v EncodeOne=%+v", i, want, got)
			}
		}
	}
}

// TestEncodeBatchMatchesEncodeAll checks the batch wrappers: EncodeAll,
// EncodeInto and EncodeBatch must agree, and a recycled dst must be
// reused in place.
func TestEncodeBatchMatchesEncodeAll(t *testing.T) {
	part := partitionedLog(t, 5)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := enc.EncodeAll(part)
	var s Scratch
	got := enc.EncodeInto(nil, part, &s)
	if len(got) != len(want) {
		t.Fatalf("EncodeInto returned %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tuple %d: want %+v, got %+v", i, want[i], got[i])
		}
	}
	reused := enc.EncodeBatch(got[:0], part.Events, &s)
	if &reused[0] != &got[0] {
		t.Fatal("EncodeBatch reallocated despite sufficient capacity")
	}
}

// TestEncodeOneSteadyStateAllocs requires the warm scratch path to be
// allocation-free per event.
func TestEncodeOneSteadyStateAllocs(t *testing.T) {
	part := partitionedLog(t, 9)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for i := range part.Events {
		enc.EncodeOne(&s, &part.Events[i])
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		enc.EncodeOne(&s, &part.Events[i%len(part.Events)])
		i++
	})
	if avg != 0 {
		t.Fatalf("warm EncodeOne allocates %.2f per event, want 0", avg)
	}
}

// TestCoalesceIntoMatchesCoalesce checks the slab-backed coalescer
// against the allocating wrapper, including the degenerate window.
func TestCoalesceIntoMatchesCoalesce(t *testing.T) {
	part := partitionedLog(t, 11)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tuples := enc.EncodeAll(part)
	var wb WindowBuf
	if err := CoalesceInto(&wb, tuples, 0); err == nil {
		t.Fatal("CoalesceInto(window 0) succeeded")
	}
	for _, window := range []int{1, 7, 10} {
		vecs, starts, err := Coalesce(tuples, window)
		if err != nil {
			t.Fatal(err)
		}
		if err := CoalesceInto(&wb, tuples, window); err != nil {
			t.Fatal(err)
		}
		if len(wb.Vecs) != len(vecs) || len(wb.Starts) != len(starts) {
			t.Fatalf("window %d: got %d/%d windows, want %d/%d",
				window, len(wb.Vecs), len(wb.Starts), len(vecs), len(starts))
		}
		for i := range vecs {
			if wb.Starts[i] != starts[i] {
				t.Fatalf("window %d start %d: want %d, got %d", window, i, starts[i], wb.Starts[i])
			}
			for j := range vecs[i] {
				if wb.Vecs[i][j] != vecs[i][j] {
					t.Fatalf("window %d vec %d[%d]: want %v, got %v",
						window, i, j, vecs[i][j], wb.Vecs[i][j])
				}
			}
		}
	}
	// A warm buffer must coalesce without allocating.
	if avg := testing.AllocsPerRun(50, func() {
		if err := CoalesceInto(&wb, tuples, 10); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm CoalesceInto allocates %.2f per call, want 0", avg)
	}
}

// TestFlattenWindowMatchesCoalesce pins the streaming single-window
// flattener to Coalesce's vector layout.
func TestFlattenWindowMatchesCoalesce(t *testing.T) {
	part := partitionedLog(t, 13)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tuples := enc.EncodeAll(part)[:10]
	vecs, _, err := Coalesce(tuples, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := FlattenWindow(nil, tuples)
	if len(got) != len(vecs[0]) {
		t.Fatalf("FlattenWindow returned %d dims, want %d", len(got), len(vecs[0]))
	}
	for i := range got {
		if got[i] != vecs[0][i] {
			t.Fatalf("dim %d: want %v, got %v", i, vecs[0][i], got[i])
		}
	}
}
