package preprocess

import (
	"reflect"
	"testing"
)

func TestEncoderMarshalRoundTrip(t *testing.T) {
	part := partitionedLog(t, 13)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := enc.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var got Encoder
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got.NumLibClusters() != enc.NumLibClusters() || got.NumFuncClusters() != enc.NumFuncClusters() {
		t.Fatalf("cluster counts changed: (%d,%d) vs (%d,%d)",
			got.NumLibClusters(), got.NumFuncClusters(),
			enc.NumLibClusters(), enc.NumFuncClusters())
	}
	// Identical encodings on the full log, including unseen-set fallback
	// behaviour.
	a := enc.EncodeAll(part)
	b := got.EncodeAll(part)
	if !reflect.DeepEqual(a, b) {
		t.Error("round-tripped encoder produces different tuples")
	}
}

func TestEncoderUnmarshalRejectsGarbage(t *testing.T) {
	var enc Encoder
	if err := enc.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if err := enc.UnmarshalBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestClustersSnapshotValidation(t *testing.T) {
	bad := clustersSnapshot{
		Uniq:        [][]string{{"a"}},
		Labels:      []int{0, 1}, // mismatched
		Medoids:     []int{0},
		NumClusters: 1,
	}
	if _, err := bad.clusters(); err == nil {
		t.Error("mismatched labels accepted")
	}
	bad2 := clustersSnapshot{
		Uniq:        [][]string{{"a"}},
		Labels:      []int{0},
		Medoids:     []int{5}, // out of range
		NumClusters: 1,
	}
	if _, err := bad2.clusters(); err == nil {
		t.Error("out-of-range medoid accepted")
	}
	bad3 := clustersSnapshot{
		Uniq:        [][]string{{"a"}},
		Labels:      []int{0},
		Medoids:     []int{0, 0}, // wrong count
		NumClusters: 1,
	}
	if _, err := bad3.clusters(); err == nil {
		t.Error("medoid/cluster count mismatch accepted")
	}
}
