package preprocess

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/appsim"
	"repro/internal/hcluster"
	"repro/internal/partition"
	"repro/internal/trace"
)

func TestJaccard(t *testing.T) {
	tests := []struct {
		name string
		a, b []string
		want float64
	}{
		{"identical", []string{"a", "b"}, []string{"a", "b"}, 0},
		{"disjoint", []string{"a"}, []string{"b"}, 1},
		{"half", []string{"a", "b"}, []string{"b", "c"}, 1 - 1.0/3},
		{"subset", []string{"a"}, []string{"a", "b"}, 0.5},
		{"both empty", nil, nil, 0},
		{"one empty", []string{"a"}, nil, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Jaccard(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Jaccard(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// Property: Jaccard is symmetric, bounded in [0,1], and zero iff equal sets.
func TestJaccardPropertyQuick(t *testing.T) {
	mk := func(raw []byte) []string {
		set := make(map[string]bool)
		for _, b := range raw {
			set[string(rune('a'+int(b)%8))] = true
		}
		out := make([]string, 0, len(set))
		for k := range set {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	f := func(ra, rb []byte) bool {
		a, b := mk(ra), mk(rb)
		d1, d2 := Jaccard(a, b), Jaccard(b, a)
		if d1 != d2 || d1 < 0 || d1 > 1 {
			return false
		}
		if reflect.DeepEqual(a, b) != (d1 == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func partitionedLog(t *testing.T, seed int64) *partition.Log {
	t.Helper()
	payload := appsim.ReverseTCPProfile()
	p, err := appsim.NewProcess(appsim.WinSCPProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: seed, Events: 600, PayloadFraction: 0.35, PID: 1})
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Split(log)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, Config{}); err == nil {
		t.Error("Fit(no events) succeeded")
	}
}

func TestFitAndEncode(t *testing.T) {
	part := partitionedLog(t, 3)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if enc.NumLibClusters() < 2 {
		t.Errorf("NumLibClusters() = %d, want >= 2", enc.NumLibClusters())
	}
	if enc.NumFuncClusters() < 2 {
		t.Errorf("NumFuncClusters() = %d, want >= 2", enc.NumFuncClusters())
	}
	tuples := enc.EncodeAll(part)
	if len(tuples) != part.Len() {
		t.Fatalf("EncodeAll returned %d tuples, want %d", len(tuples), part.Len())
	}
	for i, tp := range tuples {
		if tp.EventType != int(part.Events[i].Type) {
			t.Fatalf("tuple %d event type = %d, want %d", i, tp.EventType, part.Events[i].Type)
		}
		if tp.Lib < 0 || tp.Lib >= enc.NumLibClusters() {
			t.Fatalf("tuple %d lib cluster %d out of range", i, tp.Lib)
		}
		if tp.Func < 0 || tp.Func >= enc.NumFuncClusters() {
			t.Fatalf("tuple %d func cluster %d out of range", i, tp.Func)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	part := partitionedLog(t, 4)
	enc1, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := enc1.EncodeAll(part)
	b := enc2.EncodeAll(part)
	if !reflect.DeepEqual(a, b) {
		t.Error("two fits over the same data disagree")
	}
}

func TestEncodeIdenticalSetsSameCluster(t *testing.T) {
	part := partitionedLog(t, 5)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Events with identical system stacks must encode identically.
	type key struct{ libs, fns string }
	byKey := make(map[key]Tuple)
	for i := range part.Events {
		e := &part.Events[i]
		k := key{
			libs: setKey(sortedKeys(e.LibSet())),
			fns:  setKey(sortedKeys(e.FuncSet())),
		}
		tp := enc.Encode(e)
		if prev, ok := byKey[k]; ok {
			if prev.Lib != tp.Lib || prev.Func != tp.Func {
				t.Fatalf("identical sets got clusters %+v and %+v", prev, tp)
			}
		} else {
			byKey[k] = tp
		}
	}
}

func TestEncodeUnseenSetAssigned(t *testing.T) {
	part := partitionedLog(t, 6)
	enc, err := Fit(part.Events, Config{})
	if err != nil {
		t.Fatal(err)
	}
	unseen := partition.Event{
		Type: trace.EventNetSend,
		SysTrace: trace.StackWalk{
			{Addr: 1, Module: "ws2_32.dll", Function: "send"},
			{Addr: 2, Module: "never_seen.dll", Function: "Mystery"},
		},
	}
	tp := enc.Encode(&unseen)
	if tp.Lib < 0 || tp.Lib >= enc.NumLibClusters() {
		t.Errorf("unseen lib set assigned out-of-range cluster %d", tp.Lib)
	}
	if tp.Func < 0 || tp.Func >= enc.NumFuncClusters() {
		t.Errorf("unseen func set assigned out-of-range cluster %d", tp.Func)
	}
}

func TestSimilarSetsClusterTogether(t *testing.T) {
	// Three near-identical file stacks and one disjoint network stack:
	// with a 0.5 cut the file sets share a cluster, the network set does
	// not.
	mkEvent := func(typ trace.EventType, funcs ...[2]string) partition.Event {
		e := partition.Event{Type: typ}
		for i, mf := range funcs {
			e.SysTrace = append(e.SysTrace, trace.Frame{Addr: uint64(i + 1), Module: mf[0], Function: mf[1]})
		}
		return e
	}
	events := []partition.Event{
		mkEvent(trace.EventFileRead, [2]string{"k32", "ReadFile"}, [2]string{"ntdll", "NtReadFile"}, [2]string{"ntos", "NtReadFile"}),
		mkEvent(trace.EventFileRead, [2]string{"k32", "ReadFile"}, [2]string{"ntdll", "NtReadFile"}, [2]string{"ntfs", "Read"}),
		mkEvent(trace.EventFileRead, [2]string{"msvcrt", "fread"}, [2]string{"k32", "ReadFile"}, [2]string{"ntdll", "NtReadFile"}),
		mkEvent(trace.EventNetSend, [2]string{"ws2", "send"}, [2]string{"afd", "Send"}, [2]string{"tcp", "SendData"}),
	}
	enc, err := Fit(events, Config{Linkage: hcluster.Average, LibCut: 0.5, FuncCut: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	t0 := enc.Encode(&events[0])
	t1 := enc.Encode(&events[1])
	t3 := enc.Encode(&events[3])
	if t0.Func != t1.Func {
		t.Errorf("similar file stacks in different func clusters: %d vs %d", t0.Func, t1.Func)
	}
	if t0.Func == t3.Func {
		t.Error("file and network stacks share a func cluster")
	}
	if t0.Lib == t3.Lib {
		t.Error("file and network stacks share a lib cluster")
	}
}

func TestCoalesce(t *testing.T) {
	tuples := []Tuple{
		{1, 10, 100}, {2, 20, 200}, {3, 30, 300}, {4, 40, 400}, {5, 50, 500},
	}
	vecs, starts, err := Coalesce(tuples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 2 {
		t.Fatalf("got %d windows, want 2 (trailing partial dropped)", len(vecs))
	}
	want0 := []float64{1, 10, 100, 2, 20, 200}
	if !reflect.DeepEqual(vecs[0], want0) {
		t.Errorf("window 0 = %v, want %v", vecs[0], want0)
	}
	if !reflect.DeepEqual(starts, []int{0, 2}) {
		t.Errorf("starts = %v, want [0 2]", starts)
	}
	// Paper configuration: 10-event windows give 30 dimensions.
	long := make([]Tuple, 25)
	vecs, _, err = Coalesce(long, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 2 || len(vecs[0]) != 30 {
		t.Errorf("paper windows: %d windows of dim %d, want 2 of 30", len(vecs), len(vecs[0]))
	}
}

func TestCoalesceValidation(t *testing.T) {
	if _, _, err := Coalesce(nil, 0); err == nil {
		t.Error("Coalesce(window=0) succeeded")
	}
	vecs, starts, err := Coalesce([]Tuple{{1, 1, 1}}, 5)
	if err != nil || len(vecs) != 0 || len(starts) != 0 {
		t.Errorf("short input: vecs=%v starts=%v err=%v, want empty", vecs, starts, err)
	}
}
