// Package preprocess implements the paper's Data Preprocessing Module: it
// turns partitioned system events into discretised 3-tuple features
// {Event_Type, Lib, Func}, where Lib and Func are hierarchical-clustering
// cluster ids of the event's library set and function set (Jaccard set
// dissimilarity, UPGMA linkage), and coalesces consecutive tuples into
// higher-dimensional data points for the statistical learning model.
package preprocess

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/hcluster"
	"repro/internal/partition"
	"repro/internal/telemetry"
)

// Preprocessing telemetry: how many events were discretised, how many
// windows the coalescer produced (the statistical model's sample count),
// and the learned cluster-space sizes.
var (
	mFitEvents     = telemetry.NewCounter("preprocess_fit_events_total", "events the feature encoder was fitted on")
	mEncodedEvents = telemetry.NewCounter("preprocess_encoded_events_total", "events discretised into 3-tuples")
	mWindows       = telemetry.NewCounter("preprocess_windows_total", "coalesced windows produced")
	mTailDropped   = telemetry.NewCounter("preprocess_tail_events_total", "events dropped in trailing partial windows")
	mLibClusters   = telemetry.NewGauge("preprocess_lib_clusters", "library-set clusters in the last fitted encoder")
	mFuncClusters  = telemetry.NewGauge("preprocess_func_clusters", "function-set clusters in the last fitted encoder")
)

// Tuple is the discretised form of one system event.
type Tuple struct {
	// EventType is the integer event type (well-defined in the system, so
	// mapped directly to the integer space).
	EventType int
	// Lib is the cluster id of the event's library set.
	Lib int
	// Func is the cluster id of the event's function set.
	Func int
}

// Config controls feature extraction.
type Config struct {
	// Linkage is the clustering criterion; the zero value selects UPGMA
	// (average linkage), the paper's choice.
	Linkage hcluster.Linkage
	// LibCut and FuncCut are the dendrogram cut thresholds on Jaccard
	// dissimilarity for the library-set and function-set clusterings.
	// Zero values default to 0.5: sets sharing at least half their
	// elements (on average) group together.
	LibCut  float64
	FuncCut float64
}

func (c Config) withDefaults() Config {
	if c.Linkage == 0 {
		c.Linkage = hcluster.Average
	}
	if c.LibCut == 0 {
		c.LibCut = 0.5
	}
	if c.FuncCut == 0 {
		c.FuncCut = 0.5
	}
	return c
}

// Encoder is a fitted feature extractor: the cluster models for library
// and function sets, learned on training events and reusable on unseen
// testing events.
type Encoder struct {
	cfg  Config
	libs *setClusters
	fns  *setClusters
}

// Fit learns the library/function clusterings from training events, which
// should cover both the benign and the mixed training logs so cluster ids
// are consistent across them.
func Fit(events []partition.Event, cfg Config) (*Encoder, error) {
	return FitContext(context.Background(), events, cfg)
}

// FitContext is Fit with a caller-supplied context, so the fit's telemetry
// span nests under the caller's span tree instead of rooting a fresh one.
func FitContext(ctx context.Context, events []partition.Event, cfg Config) (*Encoder, error) {
	if len(events) == 0 {
		return nil, errors.New("preprocess: no events to fit on")
	}
	_, sp := telemetry.StartSpan(ctx, "preprocess")
	defer sp.End()
	cfg = cfg.withDefaults()
	libSets := make([][]string, len(events))
	fnSets := make([][]string, len(events))
	for i := range events {
		libSets[i] = sortedKeys(events[i].LibSet())
		fnSets[i] = sortedKeys(events[i].FuncSet())
	}
	libs, err := clusterSets(libSets, cfg.Linkage, cfg.LibCut)
	if err != nil {
		return nil, fmt.Errorf("preprocess: clustering library sets: %w", err)
	}
	fns, err := clusterSets(fnSets, cfg.Linkage, cfg.FuncCut)
	if err != nil {
		return nil, fmt.Errorf("preprocess: clustering function sets: %w", err)
	}
	mFitEvents.Add(uint64(len(events)))
	mLibClusters.Set(float64(libs.numClusters))
	mFuncClusters.Set(float64(fns.numClusters))
	return &Encoder{cfg: cfg, libs: libs, fns: fns}, nil
}

// NumLibClusters returns how many library-set clusters were learned.
func (enc *Encoder) NumLibClusters() int { return enc.libs.numClusters }

// NumFuncClusters returns how many function-set clusters were learned.
func (enc *Encoder) NumFuncClusters() int { return enc.fns.numClusters }

// Encode discretises one event. Unseen library/function sets are assigned
// to the nearest learned cluster by Jaccard distance to cluster medoids.
//
// This is the allocating reference implementation (set maps, sorted key
// slices); hot paths use EncodeOne/EncodeBatch, which are tested to
// produce identical tuples without the per-event garbage.
func (enc *Encoder) Encode(e *partition.Event) Tuple {
	return Tuple{
		EventType: int(e.Type),
		Lib:       enc.libs.assign(sortedKeys(e.LibSet())),
		Func:      enc.fns.assign(sortedKeys(e.FuncSet())),
	}
}

// Scratch is the reusable working memory of the scratch encode path:
// the distinct-name buffer, the set-key buffer and the interned
// module-qualified function names. The zero value is ready to use. A
// Scratch belongs to one goroutine at a time; the Encoder itself stays
// immutable and safe for concurrent use.
type Scratch struct {
	names []string
	key   []byte
	qual  map[qualName]string
}

type qualName struct{ module, function string }

// qualified returns the interned "module!function" string for a frame,
// concatenating only the first time a pair is seen.
func (s *Scratch) qualified(module, function string) string {
	if s.qual == nil {
		s.qual = make(map[qualName]string)
	}
	k := qualName{module, function}
	if q, ok := s.qual[k]; ok {
		return q
	}
	q := module + "!" + function
	s.qual[k] = q
	return q
}

// appendDistinct appends name unless present. Linear scan: stack-walk
// name sets are tiny (bounded by stack depth, typically a handful).
func appendDistinct(names []string, name string) []string {
	for _, n := range names {
		if n == name {
			return names
		}
	}
	return append(names, name)
}

// EncodeOne discretises one event on the scratch path: the sorted
// library and function sets are built in scratch buffers and matched
// against the fitted clusters without allocating. Tuples are identical
// to Encode's.
func (enc *Encoder) EncodeOne(s *Scratch, e *partition.Event) Tuple {
	t := Tuple{EventType: int(e.Type)}
	s.names = s.names[:0]
	for _, fr := range e.SysTrace {
		if fr.Module != "" {
			s.names = appendDistinct(s.names, fr.Module)
		}
	}
	slices.Sort(s.names)
	t.Lib = enc.libs.assignScratch(s)
	s.names = s.names[:0]
	for _, fr := range e.SysTrace {
		if fr.Function != "" {
			s.names = appendDistinct(s.names, s.qualified(fr.Module, fr.Function))
		}
	}
	slices.Sort(s.names)
	t.Func = enc.fns.assignScratch(s)
	return t
}

// EncodeBatch discretises events in order, appending the tuples to dst
// (pass dst[:0] to recycle a previous batch). A nil scratch gets a
// private one for the call; passing one in makes repeated batches
// allocation-free.
func (enc *Encoder) EncodeBatch(dst []Tuple, events []partition.Event, s *Scratch) []Tuple {
	if s == nil {
		s = &Scratch{}
	}
	for i := range events {
		dst = append(dst, enc.EncodeOne(s, &events[i]))
	}
	mEncodedEvents.Add(uint64(len(events)))
	return dst
}

// EncodeInto is EncodeBatch over a partitioned log.
func (enc *Encoder) EncodeInto(dst []Tuple, log *partition.Log, s *Scratch) []Tuple {
	return enc.EncodeBatch(dst, log.Events, s)
}

// EncodeAll discretises every event of a partitioned log, in order. It
// is the allocating convenience wrapper over EncodeInto.
func (enc *Encoder) EncodeAll(log *partition.Log) []Tuple {
	return enc.EncodeInto(make([]Tuple, 0, log.Len()), log, nil)
}

// Coalesce groups consecutive tuples into windows of the given size and
// flattens each window into one (3*window)-dimensional feature vector,
// taking the order of adjacent events into account as in the paper
// (window 10 yields the paper's 30-dimensional data points). The trailing
// partial window is dropped. It returns, alongside the vectors, the index
// of the first event of each window.
func Coalesce(tuples []Tuple, window int) (vecs [][]float64, starts []int, err error) {
	var wb WindowBuf
	if err := CoalesceInto(&wb, tuples, window); err != nil {
		return nil, nil, err
	}
	return wb.Vecs, wb.Starts, nil
}

// WindowBuf is a reusable coalescing buffer. After CoalesceInto, Vecs
// and Starts hold the same windows Coalesce would have returned, with
// every vector sliced out of one shared slab.
//
// Ownership: Vecs and their backing slab are valid until the next
// CoalesceInto on the same buffer; retain windows past that only by
// copying. The vectors are capacity-clipped, so an append by a retainer
// copies out instead of clobbering the slab.
type WindowBuf struct {
	Vecs   [][]float64
	Starts []int
	slab   []float64
}

// CoalesceInto is Coalesce writing into a reusable buffer: one slab
// holds every window vector, so a warm buffer coalesces without
// allocating.
func CoalesceInto(wb *WindowBuf, tuples []Tuple, window int) error {
	if window < 1 {
		return fmt.Errorf("preprocess: window %d must be positive", window)
	}
	n := len(tuples) / window
	wb.Vecs = wb.Vecs[:0]
	wb.Starts = wb.Starts[:0]
	if need := 3 * window * n; cap(wb.slab) < need {
		wb.slab = make([]float64, 0, need)
	}
	wb.slab = wb.slab[:0]
	for w := 0; w < n; w++ {
		start := len(wb.slab)
		for i := w * window; i < (w+1)*window; i++ {
			wb.slab = append(wb.slab, float64(tuples[i].EventType), float64(tuples[i].Lib), float64(tuples[i].Func))
		}
		wb.Vecs = append(wb.Vecs, wb.slab[start:len(wb.slab):len(wb.slab)])
		wb.Starts = append(wb.Starts, w*window)
	}
	mWindows.Add(uint64(n))
	mTailDropped.Add(uint64(len(tuples) - n*window))
	return nil
}

// FlattenWindow flattens exactly one window of tuples into dst (pass
// dst[:0] to reuse it) — the streaming detector's single-window
// counterpart of Coalesce, counted as one coalesced window.
func FlattenWindow(dst []float64, tuples []Tuple) []float64 {
	for i := range tuples {
		dst = append(dst, float64(tuples[i].EventType), float64(tuples[i].Lib), float64(tuples[i].Func))
	}
	mWindows.Inc()
	return dst
}

// Jaccard returns the Jaccard set dissimilarity of two sorted string
// slices: 1 - |a∩b| / |a∪b| (Eqn. 1 of the paper). Two empty sets have
// dissimilarity 0.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	var inter, union int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch strings.Compare(a[i], b[j]) {
		case 0:
			inter++
			union++
			i++
			j++
		case -1:
			union++
			i++
		default:
			union++
			j++
		}
	}
	union += (len(a) - i) + (len(b) - j)
	return 1 - float64(inter)/float64(union)
}

// setClusters is a fitted clustering over unique string sets.
type setClusters struct {
	uniq        [][]string // unique sets in first-seen order
	labels      []int      // cluster label per unique set
	medoids     []int      // index into uniq per cluster
	numClusters int
	keyToLabel  map[string]int
}

// clusterSets deduplicates the observed sets, hierarchically clusters the
// unique ones under Jaccard dissimilarity and records per-cluster medoids
// for assigning unseen sets.
func clusterSets(sets [][]string, linkage hcluster.Linkage, cut float64) (*setClusters, error) {
	sc := &setClusters{keyToLabel: make(map[string]int)}
	seen := make(map[string]bool)
	for _, s := range sets {
		k := setKey(s)
		if !seen[k] {
			seen[k] = true
			sc.uniq = append(sc.uniq, s)
		}
	}
	dm, err := hcluster.NewDistMatrix(len(sc.uniq))
	if err != nil {
		return nil, err
	}
	for i := range sc.uniq {
		for j := i + 1; j < len(sc.uniq); j++ {
			dm.Set(i, j, Jaccard(sc.uniq[i], sc.uniq[j]))
		}
	}
	dend, err := hcluster.Cluster(dm, linkage)
	if err != nil {
		return nil, err
	}
	sc.labels = dend.CutDistance(cut)
	for _, l := range sc.labels {
		if l+1 > sc.numClusters {
			sc.numClusters = l + 1
		}
	}
	for i, s := range sc.uniq {
		sc.keyToLabel[setKey(s)] = sc.labels[i]
	}
	// Medoid of each cluster: the member minimising total dissimilarity
	// to its cluster mates.
	sc.medoids = make([]int, sc.numClusters)
	for c := 0; c < sc.numClusters; c++ {
		best, bestCost := -1, -1.0
		for i := range sc.uniq {
			if sc.labels[i] != c {
				continue
			}
			var cost float64
			for j := range sc.uniq {
				if sc.labels[j] == c {
					cost += Jaccard(sc.uniq[i], sc.uniq[j])
				}
			}
			if best == -1 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		sc.medoids[c] = best
	}
	return sc, nil
}

// assign maps a (possibly unseen) set to its cluster id.
func (sc *setClusters) assign(s []string) int {
	if l, ok := sc.keyToLabel[setKey(s)]; ok {
		return l
	}
	return sc.nearestMedoid(s)
}

// assignScratch is assign over the sorted distinct names sitting in the
// scratch: the set key is built in the scratch's byte buffer, and the
// map probe compiles to an allocation-free string-keyed lookup.
func (sc *setClusters) assignScratch(s *Scratch) int {
	s.key = s.key[:0]
	for i, n := range s.names {
		if i > 0 {
			s.key = append(s.key, 0)
		}
		s.key = append(s.key, n...)
	}
	if l, ok := sc.keyToLabel[string(s.key)]; ok {
		return l
	}
	return sc.nearestMedoid(s.names)
}

// nearestMedoid maps an unseen sorted set to the cluster whose medoid
// it is least dissimilar to.
func (sc *setClusters) nearestMedoid(s []string) int {
	best, bestD := 0, 2.0
	for c, mi := range sc.medoids {
		if d := Jaccard(s, sc.uniq[mi]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func setKey(s []string) string { return strings.Join(s, "\x00") }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
