package preprocess

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
)

// encoderSnapshot is the serialisable state of a fitted Encoder.
type encoderSnapshot struct {
	Cfg  Config
	Libs clustersSnapshot
	Fns  clustersSnapshot
}

type clustersSnapshot struct {
	Uniq        [][]string
	Labels      []int
	Medoids     []int
	NumClusters int
}

func snapshotClusters(sc *setClusters) clustersSnapshot {
	return clustersSnapshot{
		Uniq:        sc.uniq,
		Labels:      sc.labels,
		Medoids:     sc.medoids,
		NumClusters: sc.numClusters,
	}
}

func (cs clustersSnapshot) clusters() (*setClusters, error) {
	if len(cs.Uniq) != len(cs.Labels) {
		return nil, fmt.Errorf("preprocess: %d sets with %d labels", len(cs.Uniq), len(cs.Labels))
	}
	if len(cs.Medoids) != cs.NumClusters {
		return nil, fmt.Errorf("preprocess: %d medoids for %d clusters", len(cs.Medoids), cs.NumClusters)
	}
	sc := &setClusters{
		uniq:        cs.Uniq,
		labels:      cs.Labels,
		medoids:     cs.Medoids,
		numClusters: cs.NumClusters,
		keyToLabel:  make(map[string]int, len(cs.Uniq)),
	}
	for i, s := range sc.uniq {
		sc.keyToLabel[strings.Join(s, "\x00")] = sc.labels[i]
	}
	for _, m := range sc.medoids {
		if m < 0 || m >= len(sc.uniq) {
			return nil, fmt.Errorf("preprocess: medoid index %d out of range", m)
		}
	}
	return sc, nil
}

// MarshalBinary encodes the fitted encoder for persistence.
func (enc *Encoder) MarshalBinary() ([]byte, error) {
	snap := encoderSnapshot{
		Cfg:  enc.cfg,
		Libs: snapshotClusters(enc.libs),
		Fns:  snapshotClusters(enc.fns),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("preprocess: encoding encoder: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes an encoder produced by MarshalBinary.
func (enc *Encoder) UnmarshalBinary(data []byte) error {
	var snap encoderSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("preprocess: decoding encoder: %w", err)
	}
	libs, err := snap.Libs.clusters()
	if err != nil {
		return err
	}
	fns, err := snap.Fns.clusters()
	if err != nil {
		return err
	}
	enc.cfg = snap.Cfg
	enc.libs = libs
	enc.fns = fns
	return nil
}
