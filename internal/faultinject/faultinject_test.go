package faultinject

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/trace"
)

func genLogs(t *testing.T, seed int64) *dataset.Logs {
	t.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	logs, err := spec.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return logs
}

func serialize(t *testing.T, log *trace.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := etl.WriteLogs(&buf, log); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestInjectDeterministic(t *testing.T) {
	data := serialize(t, genLogs(t, 41).Benign)
	cfg := Config{Seed: 7, Specs: []Spec{{BitFlip, 0.1}, {DropRecord, 0.05}}}
	a, repA, err := Inject(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, repB, err := Inject(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different mutants")
	}
	if repA.Total() != repB.Total() {
		t.Fatalf("reports differ: %v vs %v", repA, repB)
	}
	if repA.Total() == 0 {
		t.Fatal("nothing injected at 10%/5% rates")
	}
	cfg.Seed = 8
	c, _, err := Inject(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical mutants")
	}
}

func TestInjectFaultKinds(t *testing.T) {
	data := serialize(t, genLogs(t, 42).Benign)

	t.Run("drop shrinks", func(t *testing.T) {
		out, rep, err := Inject(data, Config{Seed: 1, Specs: []Spec{{DropRecord, 0.2}}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Counts[DropRecord] == 0 || len(out) >= len(data) {
			t.Fatalf("drop: %v, %d → %d bytes", rep, len(data), len(out))
		}
	})
	t.Run("dupstack grows and orphans", func(t *testing.T) {
		out, rep, err := Inject(data, Config{Seed: 2, Specs: []Spec{{DupStack, 0.3}}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Counts[DupStack] == 0 || len(out) <= len(data) {
			t.Fatalf("dupstack: %v", rep)
		}
		// Duplicated stack records are structurally valid: even the
		// strict parser accepts them, discarding orphans.
		f, err := etl.Parse(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("strict parse of dupstack stream: %v", err)
		}
		if f.Dropped < rep.Counts[DupStack] {
			t.Errorf("Dropped = %d, want ≥ %d orphans", f.Dropped, rep.Counts[DupStack])
		}
	})
	t.Run("truncate cuts tail", func(t *testing.T) {
		out, rep, err := Inject(data, Config{Seed: 3, Specs: []Spec{{Truncate, 0.3}}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Counts[Truncate] != 1 || len(out) >= len(data) {
			t.Fatalf("truncate: %v", rep)
		}
	})
	t.Run("garbage inserts", func(t *testing.T) {
		out, rep, err := Inject(data, Config{Seed: 4, Specs: []Spec{{Garbage, 0.1}}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Counts[Garbage] == 0 || len(out) <= len(data) {
			t.Fatalf("garbage: %v", rep)
		}
	})
}

func TestInjectValidation(t *testing.T) {
	data := serialize(t, genLogs(t, 43).Benign)
	if _, _, err := Inject(data, Config{Specs: []Spec{{Fault: "meteor"}}}); err == nil {
		t.Error("unknown fault accepted")
	}
	if _, _, err := Inject(data, Config{Specs: []Spec{{BitFlip, 1.5}}}); err == nil {
		t.Error("out-of-range rate accepted")
	}
	if _, _, err := Inject(data, Config{Specs: []Spec{{BitFlip, 0.1}, {BitFlip, 0.2}}}); err == nil {
		t.Error("duplicate fault accepted")
	}
	if _, _, err := Inject([]byte("not a stream"), Config{}); err == nil {
		t.Error("invalid input stream accepted")
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("bitflip:0.05, drop:0.02,garbage")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(specs))
	}
	if specs[0].Fault != BitFlip || specs[0].Rate != 0.05 {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[2].Fault != Garbage || specs[2].Rate != 0 {
		t.Errorf("spec 2 = %+v (rate filled at Inject time)", specs[2])
	}
	for _, bad := range []string{"", "warp:0.1", "bitflip:x", "bitflip:2"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) succeeded", bad)
		}
	}
}

func TestCorpus(t *testing.T) {
	data := serialize(t, genLogs(t, 44).Benign)
	corpus, err := Corpus(data, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 8 {
		t.Fatalf("corpus size %d, want 8", len(corpus))
	}
	distinct := 0
	for _, m := range corpus {
		if !bytes.Equal(m, data) {
			distinct++
		}
	}
	if distinct == 0 {
		t.Error("no corpus entry differs from the clean stream")
	}
}
