// Package faultinject mutates serialized raw event-trace-log streams
// with deterministic, seedable faults — the corruption patterns a real
// capture pipeline produces (dropped or duplicated records, flipped
// bits, garbage bursts, truncated files) plus what an adversary aware
// of the parser would feed it. It exists so the robustness of the
// lenient ETL parser and the streaming detector can be exercised
// reproducibly, both in tests and end-to-end via `leaps-trace -inject`.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/etl"
)

// Fault names one corruption pattern.
type Fault string

// The supported fault kinds.
const (
	// BitFlip flips one random bit inside a record's body.
	BitFlip Fault = "bitflip"
	// DropRecord removes a whole record from the stream (a capture
	// drop; dropped stack records orphan their events).
	DropRecord Fault = "drop"
	// DupStack duplicates a stack record (the duplicate arrives with no
	// pending event and must be discarded as an orphan).
	DupStack Fault = "dupstack"
	// Garbage inserts a short burst of random bytes between records.
	Garbage Fault = "garbage"
	// Truncate cuts the tail of the stream, possibly mid-record.
	Truncate Fault = "truncate"
)

// faultOrder fixes the application order so a Config is deterministic
// regardless of how its Specs slice was assembled.
var faultOrder = []Fault{DropRecord, DupStack, BitFlip, Garbage, Truncate}

// DefaultRate is the per-record fault probability when a spec omits it.
const DefaultRate = 0.05

// Spec is one fault with its rate. For record-level faults the rate is
// the per-record probability of injection; for Truncate it is the
// maximum fraction of the stream removed.
type Spec struct {
	Fault Fault
	Rate  float64
}

// Config selects the faults to inject and the randomness seed.
type Config struct {
	// Seed drives every random choice; identical (data, Config) pairs
	// produce identical output.
	Seed int64
	// Specs are the faults to apply. An empty list applies every
	// record-level fault at DefaultRate.
	Specs []Spec
	// IncludeProcess lets record-level faults hit process records too.
	// Off by default: corrupting a process record loses the whole
	// process (there is no redundancy for module maps in the format),
	// which models a catastrophic failure rather than noisy capture.
	IncludeProcess bool
}

// Report summarises what an injection did.
type Report struct {
	// Records is how many records the input stream held.
	Records int
	// Counts tallies injections per fault.
	Counts map[Fault]int
	// BytesIn and BytesOut are the stream sizes before and after.
	BytesIn, BytesOut int
}

// Total returns the number of injected faults.
func (r Report) Total() int {
	var n int
	for _, c := range r.Counts {
		n += c
	}
	return n
}

func (r Report) String() string {
	parts := make([]string, 0, len(r.Counts))
	for _, f := range faultOrder {
		if c := r.Counts[f]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", f, c))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "none")
	}
	return fmt.Sprintf("%s over %d records (%d → %d bytes)",
		strings.Join(parts, " "), r.Records, r.BytesIn, r.BytesOut)
}

// Inject applies the configured faults to a serialized stream and
// returns the mutated copy. The input must be a structurally valid
// stream (it is scanned record by record); the output usually is not —
// that is the point.
func Inject(data []byte, cfg Config) ([]byte, Report, error) {
	rep := Report{Counts: make(map[Fault]int), BytesIn: len(data)}
	specs, err := normalize(cfg.Specs)
	if err != nil {
		return nil, rep, err
	}
	spans, err := etl.ScanRecords(data)
	if err != nil {
		return nil, rep, fmt.Errorf("faultinject: input stream invalid: %w", err)
	}
	rep.Records = len(spans)
	rng := rand.New(rand.NewSource(cfg.Seed))

	out := make([]byte, 0, len(data)+64)
	out = append(out, data[:etl.HeaderLen]...)
	for _, sp := range spans {
		rec := data[sp.Offset : sp.Offset+int64(sp.Len)]
		if sp.Tag == etl.TagEnd || (sp.Tag == etl.TagProcess && !cfg.IncludeProcess) {
			out = append(out, rec...)
			continue
		}
		dropped := false
		for _, spec := range specs {
			switch spec.Fault {
			case DropRecord:
				if !dropped && rng.Float64() < spec.Rate {
					dropped = true
					rep.Counts[DropRecord]++
				}
			case DupStack:
				if sp.Tag == etl.TagStack && rng.Float64() < spec.Rate {
					out = append(out, rec...)
					rep.Counts[DupStack]++
				}
			case BitFlip:
				if rng.Float64() < spec.Rate {
					mut := append([]byte(nil), rec...)
					mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
					rec = mut
					rep.Counts[BitFlip]++
				}
			case Garbage:
				if rng.Float64() < spec.Rate {
					n := 1 + rng.Intn(16)
					for i := 0; i < n; i++ {
						out = append(out, byte(rng.Intn(256)))
					}
					rep.Counts[Garbage]++
				}
			}
		}
		if !dropped {
			out = append(out, rec...)
		}
	}
	for _, spec := range specs {
		if spec.Fault != Truncate {
			continue
		}
		cut := int(rng.Float64() * spec.Rate * float64(len(out)))
		if cut > 0 && cut < len(out) {
			out = out[:len(out)-cut]
			rep.Counts[Truncate]++
		}
	}
	rep.BytesOut = len(out)
	return out, rep, nil
}

// normalize validates the specs and orders them canonically.
func normalize(specs []Spec) ([]Spec, error) {
	if len(specs) == 0 {
		specs = []Spec{
			{BitFlip, DefaultRate},
			{DropRecord, DefaultRate},
			{DupStack, DefaultRate},
			{Garbage, DefaultRate},
		}
	}
	rank := make(map[Fault]int, len(faultOrder))
	for i, f := range faultOrder {
		rank[f] = i
	}
	out := make([]Spec, 0, len(specs))
	seen := make(map[Fault]bool)
	for _, s := range specs {
		if _, known := rank[s.Fault]; !known {
			return nil, fmt.Errorf("faultinject: unknown fault %q", s.Fault)
		}
		if seen[s.Fault] {
			return nil, fmt.Errorf("faultinject: fault %q specified twice", s.Fault)
		}
		seen[s.Fault] = true
		if s.Rate == 0 {
			s.Rate = DefaultRate
		}
		if s.Rate < 0 || s.Rate > 1 {
			return nil, fmt.Errorf("faultinject: rate %v for %q out of [0,1]", s.Rate, s.Fault)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return rank[out[i].Fault] < rank[out[j].Fault] })
	return out, nil
}

// ParseSpecs parses a CLI fault specification: a comma-separated list
// of faults, each optionally followed by a colon and a rate, e.g.
// "bitflip:0.05,drop:0.02" or just "bitflip,garbage".
func ParseSpecs(s string) ([]Spec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("faultinject: empty fault spec")
	}
	var specs []Spec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rateStr, hasRate := strings.Cut(part, ":")
		spec := Spec{Fault: Fault(strings.TrimSpace(name))}
		if hasRate {
			r, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad rate in %q: %v", part, err)
			}
			spec.Rate = r
		}
		specs = append(specs, spec)
	}
	// Validate eagerly so CLI users get errors at flag-parse time.
	if _, err := normalize(specs); err != nil {
		return nil, err
	}
	return specs, nil
}

// Corpus generates n single-fault mutants of a valid stream, cycling
// through the fault kinds — seed material for fuzzing the parser.
func Corpus(data []byte, seed int64, n int) ([][]byte, error) {
	kinds := faultOrder
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		spec := Spec{Fault: kinds[i%len(kinds)], Rate: 0.1}
		mut, _, err := Inject(data, Config{Seed: seed + int64(i), Specs: []Spec{spec}})
		if err != nil {
			return nil, err
		}
		out = append(out, mut)
	}
	return out, nil
}
