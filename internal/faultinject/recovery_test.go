package faultinject

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/etl"
	"repro/internal/svm"
)

// TestLenientRecoveryEndToEnd is the robustness acceptance check: with
// ~10% of records corrupted at a fixed seed, the lenient parser must
// recover ≥90% of the events, report every skipped record, and the
// recovered log must classify within 2 points of the clean run.
func TestLenientRecoveryEndToEnd(t *testing.T) {
	logs := genLogs(t, 5)
	clean := serialize(t, logs.Malicious)

	faulty, rep, err := Inject(clean, Config{
		Seed:  42,
		Specs: []Spec{{BitFlip, 0.06}, {DropRecord, 0.02}, {Garbage, 0.02}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() == 0 {
		t.Fatal("no faults injected")
	}
	t.Logf("injected: %v", rep)

	// Strict parsing must reject the corrupted stream.
	if _, err := etl.Parse(bytes.NewReader(faulty)); err == nil {
		t.Fatal("strict parse accepted the fault-injected stream")
	}

	// Lenient parsing recovers.
	f, err := etl.ParseWith(bytes.NewReader(faulty), etl.ParseOpts{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse: %v", err)
	}
	if len(f.ErrorLog) == 0 {
		t.Fatal("corruption not reported in ErrorLog")
	}
	recovered, err := f.SliceApp(logs.Malicious.App)
	if err != nil {
		t.Fatal(err)
	}
	total := logs.Malicious.Len()
	if recovered.Len() < total*9/10 {
		t.Fatalf("recovered %d/%d events (< 90%%), %d records skipped",
			recovered.Len(), total, len(f.ErrorLog))
	}
	t.Logf("recovered %d/%d events, %d records skipped, %d stacks dropped",
		recovered.Len(), total, len(f.ErrorLog), f.Dropped)

	// Detection on the recovered log stays within 2 points of clean.
	cfg := core.Config{Seed: 5, FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}}}
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	cleanDets, err := clf.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	cleanHit := maliciousFraction(cleanDets)
	faultyDets, err := clf.DetectLog(recovered)
	if err != nil {
		t.Fatal(err)
	}
	faultyHit := maliciousFraction(faultyDets)
	if d := math.Abs(cleanHit - faultyHit); d > 0.02 {
		t.Fatalf("hit rate drifted %.3f points (clean %.3f, recovered %.3f)", d, cleanHit, faultyHit)
	}
	t.Logf("hit rate: clean %.3f, recovered %.3f", cleanHit, faultyHit)
}

func maliciousFraction(dets []core.Detection) float64 {
	if len(dets) == 0 {
		return 0
	}
	var n int
	for _, d := range dets {
		if d.Malicious {
			n++
		}
	}
	return float64(n) / float64(len(dets))
}
