package faultinject

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the process-fault half of the package: named fault points
// compiled into production code paths (registry publishes, spool writes,
// autopilot transitions) that are inert until a test or an operator arms
// them. A disarmed Step is one atomic load, so the hooks are free on the
// hot path.
//
// Two fault shapes are supported per point:
//
//   - a crash: Step panics with *CrashPanic (in-process tests recover it
//     to simulate a kill) or calls os.Exit(CrashExitCode) when armed
//     from the environment (smoke tests kill the real process);
//   - an error: Step returns the armed error for its next N firings,
//     modelling transient I/O failures (disk full, EIO) without
//     corrupting any real file.
//
// Points are just strings; the convention is "subsystem/site", e.g.
// "registry/publish/manifest" or "autopilot/journal/published".

// CrashExitCode is the exit status of a process killed by an
// environment-armed crash point, distinguishable from ordinary failures.
const CrashExitCode = 70

// CrashEnv is the environment variable ArmFromEnv reads: a
// comma-separated list of crash points, each killing the process with
// CrashExitCode the first time execution reaches it.
const CrashEnv = "LEAPS_CRASHPOINT"

// CrashPanic is the panic payload of an in-process armed crash point.
// Tests recover it at the top of the killed control flow to simulate a
// process death at exactly that point.
type CrashPanic struct {
	// Point is the fault point that fired.
	Point string
}

func (c *CrashPanic) Error() string {
	return fmt.Sprintf("faultinject: simulated crash at %q", c.Point)
}

// armKind selects what an armed point does when stepped on.
type armKind int

const (
	armPanic armKind = iota // panic(*CrashPanic)
	armExit                 // os.Exit(CrashExitCode)
	armError                // return the armed error
)

// armed is one armed fault point.
type armed struct {
	kind  armKind
	err   error
	times int // firings left; <0 means unlimited
}

var (
	pointMu sync.Mutex
	points  map[string]*armed
	// armedCount keeps the disarmed Step fast: one atomic load, no lock.
	armedCount atomic.Int32
	// exitHook runs just before an environment-armed crash point kills
	// the process (see SetExitHook).
	exitHook atomic.Pointer[func(point string)]
)

// SetExitHook installs fn to run immediately before an armExit crash
// point terminates the process. Binaries use it to flush last-moment
// diagnostics — leaps-serve dumps the telemetry flight recorder — in
// the narrow window a simulated crash still allows. The hook must not
// block; a nil fn clears it. What to flush is the binary's policy, so
// the hook is injected from main rather than hard-wired here.
func SetExitHook(fn func(point string)) {
	if fn == nil {
		exitHook.Store(nil)
		return
	}
	exitHook.Store(&fn)
}

func arm(point string, a *armed) {
	pointMu.Lock()
	defer pointMu.Unlock()
	if points == nil {
		points = make(map[string]*armed)
	}
	if _, dup := points[point]; !dup {
		armedCount.Add(1)
	}
	points[point] = a
}

// ArmCrash arms point to panic with *CrashPanic the next time execution
// steps on it (one-shot). In-process recovery tests use it to kill a
// control flow at an exact transition and then restart it.
func ArmCrash(point string) {
	arm(point, &armed{kind: armPanic, times: 1})
}

// ArmExit arms point to terminate the process with CrashExitCode the
// next time execution steps on it (one-shot) — the cross-process variant
// of ArmCrash for smoke tests that kill a real binary.
func ArmExit(point string) {
	arm(point, &armed{kind: armExit, times: 1})
}

// ArmError arms point to return err from Step for its next times
// firings (times < 0 means until disarmed). It models transient I/O
// failures such as a full disk.
func ArmError(point string, err error, times int) {
	if times == 0 {
		times = 1
	}
	arm(point, &armed{kind: armError, err: err, times: times})
}

// Disarm removes one armed point; missing points are a no-op.
func Disarm(point string) {
	pointMu.Lock()
	defer pointMu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armedCount.Add(-1)
	}
}

// Reset disarms every point. Tests call it in cleanup so armed faults
// cannot leak across test cases.
func Reset() {
	pointMu.Lock()
	defer pointMu.Unlock()
	armedCount.Add(-int32(len(points)))
	points = nil
}

// ArmFromEnv arms every crash point named in the CrashEnv environment
// variable (comma-separated) to kill the process with CrashExitCode.
// Binaries call it at startup; with the variable unset it does nothing.
// It returns the armed points so callers can log them.
func ArmFromEnv() []string {
	v := os.Getenv(CrashEnv)
	if strings.TrimSpace(v) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(v, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		ArmExit(p)
		out = append(out, p)
	}
	return out
}

// Step is the fault hook production code places at a crash or failure
// site. Disarmed (the overwhelmingly common case) it returns nil at the
// cost of one atomic load. Armed as a crash it never returns; armed as
// an error it returns the injected error until the arming's firing
// budget is spent.
func Step(point string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	pointMu.Lock()
	a, ok := points[point]
	if !ok {
		pointMu.Unlock()
		return nil
	}
	if a.times > 0 {
		a.times--
		if a.times == 0 {
			delete(points, point)
			armedCount.Add(-1)
		}
	}
	kind, err := a.kind, a.err
	pointMu.Unlock()
	switch kind {
	case armPanic:
		panic(&CrashPanic{Point: point})
	case armExit:
		fmt.Fprintf(os.Stderr, "faultinject: crash point %q reached; exiting %d\n", point, CrashExitCode)
		if fn := exitHook.Load(); fn != nil {
			(*fn)(point)
		}
		os.Exit(CrashExitCode)
	}
	return err
}

// Recover converts a recover() value back into the *CrashPanic an armed
// crash point raised, re-panicking on anything else so unrelated panics
// are never swallowed. Typical use:
//
//	defer func() { crash = faultinject.Recover(recover()) }()
func Recover(v any) *CrashPanic {
	if v == nil {
		return nil
	}
	if c, ok := v.(*CrashPanic); ok {
		return c
	}
	panic(v)
}
