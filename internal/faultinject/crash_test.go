package faultinject

import (
	"errors"
	"os"
	"testing"
)

func TestStepDisarmedIsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Step("nowhere/armed"); err != nil {
		t.Fatalf("disarmed Step returned %v", err)
	}
}

func TestArmCrashFiresOnceAndRecovers(t *testing.T) {
	t.Cleanup(Reset)
	ArmCrash("test/point")

	var crash *CrashPanic
	func() {
		defer func() { crash = Recover(recover()) }()
		_ = Step("test/point")
		t.Error("Step returned past an armed crash point")
	}()
	if crash == nil || crash.Point != "test/point" {
		t.Fatalf("recovered crash %+v, want point %q", crash, "test/point")
	}
	// One-shot: the same point is inert afterwards.
	if err := Step("test/point"); err != nil {
		t.Fatalf("crash point fired twice: %v", err)
	}
}

func TestArmErrorBudget(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("disk full")
	ArmError("test/err", boom, 2)
	for i := 0; i < 2; i++ {
		if err := Step("test/err"); !errors.Is(err, boom) {
			t.Fatalf("firing %d: got %v, want %v", i, err, boom)
		}
	}
	if err := Step("test/err"); err != nil {
		t.Fatalf("error point outlived its budget: %v", err)
	}
}

func TestArmErrorUnlimitedUntilDisarm(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("eio")
	ArmError("test/forever", boom, -1)
	for i := 0; i < 5; i++ {
		if err := Step("test/forever"); !errors.Is(err, boom) {
			t.Fatalf("firing %d: got %v", i, err)
		}
	}
	Disarm("test/forever")
	if err := Step("test/forever"); err != nil {
		t.Fatalf("disarmed point still fires: %v", err)
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Reset)
	t.Setenv(CrashEnv, " a/one , b/two ,")
	got := ArmFromEnv()
	if len(got) != 2 || got[0] != "a/one" || got[1] != "b/two" {
		t.Fatalf("ArmFromEnv armed %v", got)
	}
	// The armed action is a process exit; assert the arming without
	// firing it by inspecting the table.
	pointMu.Lock()
	defer pointMu.Unlock()
	for _, p := range got {
		a, ok := points[p]
		if !ok || a.kind != armExit {
			t.Fatalf("point %q armed as %+v, want exit", p, a)
		}
	}
}

func TestArmFromEnvEmpty(t *testing.T) {
	t.Cleanup(Reset)
	os.Unsetenv(CrashEnv)
	if got := ArmFromEnv(); got != nil {
		t.Fatalf("unset env armed %v", got)
	}
}

func TestRecoverRepanicsOnForeignPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("foreign panic was swallowed")
		}
	}()
	func() {
		defer func() { Recover(recover()) }()
		panic("unrelated")
	}()
}
