package appsim

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

func testProcess(t *testing.T) *Process {
	t.Helper()
	app, err := AppProfile("vim")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := PayloadProfile("reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(app, &payload, MethodOnlineInjection)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGeneratorChunkingInvariance is the stream contract: the event
// sequence depends only on (process, config), never on how Next calls
// slice it — one Next(1000) equals four Next(250)s equals a thousand
// Next(1)s.
func TestGeneratorChunkingInvariance(t *testing.T) {
	p := testProcess(t)
	cfg := GenConfig{Seed: 11, PayloadFraction: 0.3, PID: 5}

	gen1, err := p.Generator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	whole := gen1.Next(1000)

	gen2, err := p.Generator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var quarters []trace.Event
	for i := 0; i < 4; i++ {
		quarters = append(quarters, gen2.Next(250)...)
	}

	gen3, err := p.Generator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var singles []trace.Event
	for i := 0; i < 1000; i++ {
		singles = append(singles, gen3.Next(1)...)
	}

	if !reflect.DeepEqual(whole, quarters) {
		t.Fatal("Next(1000) != 4x Next(250)")
	}
	if !reflect.DeepEqual(whole, singles) {
		t.Fatal("Next(1000) != 1000x Next(1)")
	}
	for i, e := range whole {
		if e.Seq != i {
			t.Fatalf("event %d carries Seq %d; want the absolute stream ordinal", i, e.Seq)
		}
	}
	if gen1.Emitted() != 1000 || gen2.Emitted() != 1000 || gen3.Emitted() != 1000 {
		t.Fatalf("emitted counters: %d/%d/%d, want 1000 each", gen1.Emitted(), gen2.Emitted(), gen3.Emitted())
	}
}

// TestGeneratorDeterminism proves two generators with the same config
// emit identical streams, and different seeds diverge.
func TestGeneratorDeterminism(t *testing.T) {
	p := testProcess(t)
	cfg := GenConfig{Seed: 11, PayloadFraction: 0.3}
	g1, err := p.Generator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p.Generator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Next(500), g2.Next(500)) {
		t.Fatal("same config produced different streams")
	}
	cfg.Seed = 12
	g3, err := p.Generator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(g1.Next(500), g3.Next(500)) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestGeneratorInfectedPreamble proves infected streams open with the
// attack-establishment events, exactly like GenerateLog's mixed logs.
func TestGeneratorInfectedPreamble(t *testing.T) {
	p := testProcess(t)
	gen, err := p.Generator(GenConfig{Seed: 3, PayloadFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	head := gen.Next(2)
	if head[0].Type != trace.EventMemAlloc || head[1].Type != trace.EventThreadCreate {
		t.Fatalf("online-injection stream opens with %s,%s; want MemAlloc,ThreadCreate",
			head[0].Type, head[1].Type)
	}
}

// TestGeneratorRejectsEvents proves the lifetime knob stays with the
// caller: GenConfig.Events is GenerateLog's contract, not the stream's.
func TestGeneratorRejectsEvents(t *testing.T) {
	p := testProcess(t)
	if _, err := p.Generator(GenConfig{Seed: 1, Events: 100}); err == nil {
		t.Fatal("Generator accepted GenConfig.Events")
	}
	if got := p.mustGenerator(t, GenConfig{Seed: 1}).Next(0); got != nil {
		t.Fatalf("Next(0) returned %d events, want none", len(got))
	}
}

// mustGenerator builds a generator or fails the test.
func (p *Process) mustGenerator(t *testing.T, cfg GenConfig) *Generator {
	t.Helper()
	gen, err := p.Generator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}
