package appsim

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// AttackMethod is how a malicious payload was placed into the victim
// process, following the paper's two dataset categories.
type AttackMethod int

// Attack methods.
const (
	// MethodNone means no payload: a clean process.
	MethodNone AttackMethod = iota + 1
	// MethodOfflineInfection embeds the payload in an appended section of
	// the benign binary and detours a benign code path to trigger it
	// (trojaned application).
	MethodOfflineInfection
	// MethodOnlineInjection allocates memory in the running benign process,
	// writes the payload there and starts it on a remote thread.
	MethodOnlineInjection
	// MethodStandalone runs the payload as its own independent executable;
	// the paper uses such recompiled payloads as pure-malicious ground
	// truth for testing.
	MethodStandalone
	// MethodSourceTrojan models the paper's §VI-A scenario: the adversary
	// adds the payload to the application's source and recompiles, so
	// every benign function shifts relative to the clean build while the
	// payload occupies an appended region of the new image.
	MethodSourceTrojan
)

var attackMethodNames = map[AttackMethod]string{
	MethodNone:             "none",
	MethodOfflineInfection: "offline-infection",
	MethodOnlineInjection:  "online-injection",
	MethodStandalone:       "standalone",
	MethodSourceTrojan:     "source-trojan",
}

// String returns the canonical method name.
func (m AttackMethod) String() string {
	if n, ok := attackMethodNames[m]; ok {
		return n
	}
	return fmt.Sprintf("AttackMethod(%d)", int(m))
}

// Address-space layout constants of the simulated victim process.
const (
	// appImageBase is where application images are mapped.
	appImageBase uint64 = 0x0040_0000
	// trojanSectionGap separates the benign code from the appended payload
	// section in an offline-infected binary: close enough to stay inside
	// one image, far enough that payload addresses never interleave with
	// benign functions.
	trojanSectionGap uint64 = 0x8000
	// injectionBase is where online injection allocates payload memory —
	// a private allocation far from every loaded module.
	injectionBase uint64 = 0x01_4000_0000
	// imageTailPad pads the declared image size past the last function.
	imageTailPad uint64 = 0x1000
	// sourceTrojanShift is how far a recompiled trojaned binary's benign
	// code moves relative to the clean build (new code, changed layout).
	sourceTrojanShift uint64 = 0x2800
)

// Threads used by the generator.
const (
	benignTID  = 1
	payloadTID = 9
)

// Process is a simulated victim (or clean, or pure-malware) process: the
// application program, an optional payload placed by an attack method, the
// module map describing its address space, and resolved addresses for
// every system-library function the behaviour templates reference.
type Process struct {
	app     *Program
	payload *Program
	method  AttackMethod
	modules *trace.ModuleMap
	sysAddr map[SysFrame]uint64
}

// NewProcess builds a simulated process.
//
//   - method == MethodNone: payload must be nil; a clean run of app.
//   - MethodOfflineInfection: payload laid out in an appended section of
//     the app image (addresses above the benign code, same module, no
//     symbols — like a packed trojan section).
//   - MethodOnlineInjection: payload laid out at a far private allocation
//     outside every module; its frames never resolve.
//   - MethodStandalone: app is ignored and must be the zero Profile or the
//     payload itself; prefer NewStandaloneProcess.
func NewProcess(app Profile, payload *Profile, method AttackMethod) (*Process, error) {
	templates := SysTemplates()
	switch method {
	case MethodNone:
		if payload != nil {
			return nil, errors.New("appsim: MethodNone cannot take a payload")
		}
	case MethodOfflineInfection, MethodOnlineInjection, MethodSourceTrojan:
		if payload == nil {
			return nil, fmt.Errorf("appsim: %v requires a payload", method)
		}
	case MethodStandalone:
		return nil, errors.New("appsim: use NewStandaloneProcess for standalone payloads")
	default:
		return nil, fmt.Errorf("appsim: unknown attack method %v", method)
	}

	appBase := uint64(appImageBase)
	if method == MethodSourceTrojan {
		appBase += sourceTrojanShift
	}
	appProg, err := BuildProgram(app, appBase, templates)
	if err != nil {
		return nil, fmt.Errorf("appsim: building app program: %w", err)
	}
	p := &Process{app: appProg, method: method}

	appImageSize := appProg.CodeSize() + imageTailPad
	if payload != nil {
		var payloadBase uint64
		switch method {
		case MethodOfflineInfection, MethodSourceTrojan:
			payloadBase = appProg.Limit() + trojanSectionGap
		case MethodOnlineInjection:
			payloadBase = injectionBase
		}
		p.payload, err = BuildProgram(*payload, payloadBase, templates)
		if err != nil {
			return nil, fmt.Errorf("appsim: building payload program: %w", err)
		}
		if method == MethodOfflineInfection || method == MethodSourceTrojan {
			// The appended section is part of the (trojaned) image.
			appImageSize = p.payload.Limit() + imageTailPad - appProg.Base()
		}
	}

	// The trojaned section carries no symbols: the app module exposes only
	// the benign symbol table, so payload frames resolve to synthetic
	// sub_ names, as a stripped packed section would.
	appModule, err := trace.NewModule(app.Name, trace.ModuleApp, appProg.Base(), appImageSize, appProg.Symbols())
	if err != nil {
		return nil, fmt.Errorf("appsim: building app module: %w", err)
	}
	sysMods, err := BuildSystemModules()
	if err != nil {
		return nil, fmt.Errorf("appsim: building system modules: %w", err)
	}
	p.modules, err = trace.NewModuleMap(app.Name, append([]*trace.Module{appModule}, sysMods...))
	if err != nil {
		return nil, fmt.Errorf("appsim: building module map: %w", err)
	}
	if err := p.indexSystemFunctions(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewStandaloneProcess builds a process running the payload as an
// independent executable (the paper's recompiled pure-malicious samples).
func NewStandaloneProcess(payload Profile) (*Process, error) {
	templates := SysTemplates()
	prog, err := BuildProgram(payload, appImageBase, templates)
	if err != nil {
		return nil, fmt.Errorf("appsim: building standalone payload: %w", err)
	}
	mod, err := trace.NewModule(payload.Name, trace.ModuleApp, prog.Base(), prog.CodeSize()+imageTailPad, prog.Symbols())
	if err != nil {
		return nil, fmt.Errorf("appsim: building payload module: %w", err)
	}
	sysMods, err := BuildSystemModules()
	if err != nil {
		return nil, fmt.Errorf("appsim: building system modules: %w", err)
	}
	p := &Process{app: prog, method: MethodStandalone}
	p.modules, err = trace.NewModuleMap(payload.Name, append([]*trace.Module{mod}, sysMods...))
	if err != nil {
		return nil, fmt.Errorf("appsim: building module map: %w", err)
	}
	if err := p.indexSystemFunctions(); err != nil {
		return nil, err
	}
	return p, nil
}

// indexSystemFunctions precomputes the address of every (module, function)
// pair appearing in the loaded system modules.
func (p *Process) indexSystemFunctions() error {
	p.sysAddr = make(map[SysFrame]uint64)
	for _, m := range p.modules.Modules() {
		if m.Kind == trace.ModuleApp {
			continue
		}
		for _, s := range m.Symbols() {
			p.sysAddr[SysFrame{Module: m.Name, Function: s.Name}] = s.Addr
		}
	}
	// Every template frame must be resolvable, otherwise generation would
	// produce unattributable system frames.
	for name, tpl := range SysTemplates() {
		for _, variant := range tpl.Variants {
			for _, fr := range variant {
				if _, ok := p.sysAddr[fr]; !ok {
					return fmt.Errorf("appsim: template %q references unknown system function %s!%s",
						name, fr.Module, fr.Function)
				}
			}
		}
	}
	return nil
}

// Modules returns the process's module map.
func (p *Process) Modules() *trace.ModuleMap { return p.modules }

// Method returns the attack method the process was built with.
func (p *Process) Method() AttackMethod { return p.method }

// App returns the application program (for standalone processes, the
// payload program acting as the main image).
func (p *Process) App() *Program { return p.app }

// Payload returns the embedded/injected payload program, or nil.
func (p *Process) Payload() *Program { return p.payload }

// BenignRange returns the address range [lo, hi) occupied by benign
// application functions. Useful to assert the separation invariant.
func (p *Process) BenignRange() (lo, hi uint64) {
	return p.app.Base() + codeStart, p.app.Limit()
}

// PayloadRange returns the address range occupied by payload functions and
// true, or zeros and false for clean processes.
func (p *Process) PayloadRange() (lo, hi uint64, ok bool) {
	if p.payload == nil {
		return 0, 0, false
	}
	return p.payload.Base() + codeStart, p.payload.Limit(), true
}
