package appsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/trace"
)

// GenConfig controls log generation for one process.
type GenConfig struct {
	// Seed drives all randomness; the same seed yields the same log.
	Seed int64
	// Events is the approximate number of events to emit. Generation stops
	// at the first operation boundary at or after this count.
	Events int
	// PayloadFraction is the probability of drawing the next operation
	// from the payload instead of the application (mixed logs only).
	PayloadFraction float64
	// ExcludeOps lists application operations to withhold from this log.
	// Excluding operations from the benign training log reproduces the
	// paper's "incomplete benign CFG": functionality that appears in the
	// mixed log but was never observed clean.
	ExcludeOps []string
	// MaxBurst is the maximum number of consecutive operations drawn from
	// the same source (payload or application) before the generator may
	// switch: backdoors beacon and exfiltrate in bursts rather than
	// alternating single operations with their host. Zero defaults to 4;
	// 1 disables bursting.
	MaxBurst int
	// PID identifies the process in the emitted log.
	PID int
	// Start is the timestamp of the first event; the zero value picks a
	// fixed epoch so logs stay deterministic.
	Start time.Time
}

// genEpoch is the fixed default start time for generated logs.
var genEpoch = time.Date(2015, time.June, 22, 9, 0, 0, 0, time.UTC)

// GenerateLog simulates execution of the process and returns the resulting
// stack-event correlated log.
//
// Benign operations run on the main thread; payload operations run on a
// separate backdoor thread, interleaved into the same event stream the way
// a stack-walking system logger would record them. For attacked processes
// the log opens with the attack preamble (the detour trigger for offline
// infection; memory allocation, payload write and remote thread creation
// for online injection).
func (p *Process) GenerateLog(cfg GenConfig) (*trace.Log, error) {
	if cfg.Events <= 0 {
		return nil, errors.New("appsim: GenConfig.Events must be positive")
	}
	if cfg.PayloadFraction < 0 || cfg.PayloadFraction > 1 {
		return nil, fmt.Errorf("appsim: PayloadFraction %v out of [0,1]", cfg.PayloadFraction)
	}
	if p.payload == nil && cfg.PayloadFraction > 0 {
		return nil, errors.New("appsim: PayloadFraction set on a process without a payload")
	}
	appOps, appW, err := p.appOpsFor(cfg)
	if err != nil {
		return nil, err
	}

	g := &logGen{
		proc: p,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		log: &trace.Log{
			App:     p.modules.AppName(),
			PID:     cfg.PID,
			Modules: p.modules,
		},
		now: cfg.Start,
	}
	if g.now.IsZero() {
		g.now = genEpoch
	}

	if p.payload != nil {
		g.emitPreamble()
	}
	maxBurst := cfg.MaxBurst
	if maxBurst == 0 {
		maxBurst = 4
	}
	if maxBurst < 1 {
		return nil, fmt.Errorf("appsim: MaxBurst %d must be positive", cfg.MaxBurst)
	}
	for g.log.Len() < cfg.Events {
		fromPayload := p.payload != nil && g.rng.Float64() < cfg.PayloadFraction
		burst := 1 + g.rng.Intn(maxBurst)
		for b := 0; b < burst && g.log.Len() < cfg.Events; b++ {
			if fromPayload {
				g.emitOp(pickOp(g.rng, p.payload.ops, p.payload.totalW), payloadTID)
			} else {
				g.emitOp(pickOp(g.rng, appOps, appW), benignTID)
			}
		}
	}
	return g.log, nil
}

// appOpsFor resolves the application operation set a generation run
// samples from after applying cfg.ExcludeOps, with its total weight.
func (p *Process) appOpsFor(cfg GenConfig) ([]*builtOp, float64, error) {
	excluded := make(map[string]bool, len(cfg.ExcludeOps))
	for _, name := range cfg.ExcludeOps {
		if p.app.op(name) == nil {
			return nil, 0, fmt.Errorf("appsim: ExcludeOps references unknown operation %q", name)
		}
		excluded[name] = true
	}
	appOps := make([]*builtOp, 0, len(p.app.ops))
	var appW float64
	for _, op := range p.app.ops {
		if !excluded[op.name] {
			appOps = append(appOps, op)
			appW += op.weight
		}
	}
	if len(appOps) == 0 {
		return nil, 0, errors.New("appsim: all application operations excluded")
	}
	return appOps, appW, nil
}

// logGen carries the mutable state of one generation run.
type logGen struct {
	proc *Process
	rng  *rand.Rand
	log  *trace.Log
	now  time.Time
}

// pickOp selects an operation by weight.
func pickOp(rng *rand.Rand, ops []*builtOp, totalW float64) *builtOp {
	x := rng.Float64() * totalW
	for _, op := range ops {
		x -= op.weight
		if x < 0 {
			return op
		}
	}
	return ops[len(ops)-1]
}

// emitPreamble emits the attack-establishment events at the head of a
// mixed log.
func (g *logGen) emitPreamble() {
	payloadRoot := g.proc.payload.ops[0].chain[0]
	switch g.proc.method {
	case MethodOfflineInfection:
		// The trojaned binary detours a benign code path into the payload
		// entry, which registers the backdoor thread and returns: the
		// trigger stack runs from benign main through the hook site into
		// payload code — the one edge connecting the two CFG regions.
		hook := g.proc.app.ops[0]
		appPath := append(append([]uint64{}, hook.chain...), payloadRoot)
		g.emitEvent("thread_create", appPath, payloadTID)
	case MethodOnlineInjection:
		// Remote exploitation: allocate payload memory, then a thread
		// appears whose stack is rooted in the private allocation.
		g.emitEvent("mem_alloc", []uint64{payloadRoot}, payloadTID)
		g.emitEvent("thread_create", []uint64{payloadRoot}, payloadTID)
	}
}

// emitOp emits all events of one operation instance.
func (g *logGen) emitOp(op *builtOp, tid int) {
	for _, st := range op.steps {
		reps := st.spec.MinRepeat
		if span := st.spec.MaxRepeat - st.spec.MinRepeat; span > 0 {
			reps += g.rng.Intn(span + 1)
		}
		appPath := append(append([]uint64{}, op.chain...), st.leaf)
		for r := 0; r < reps; r++ {
			g.emitTemplate(st.template, st.spec.PinVariant, appPath, tid)
		}
	}
}

// emitTemplate emits one event for the given template with the given
// application-side call path. pin selects a fixed variant (1-based) or, at
// zero, a uniformly random one.
func (g *logGen) emitTemplate(tpl *SysTemplate, pin int, appPath []uint64, tid int) {
	variant := tpl.Variants[g.rng.Intn(len(tpl.Variants))]
	if pin > 0 {
		variant = tpl.Variants[pin-1]
	}
	stack := make(trace.StackWalk, 0, len(appPath)+len(variant))
	for _, addr := range appPath {
		stack = append(stack, trace.Frame{Addr: addr})
	}
	for _, fr := range variant {
		stack = append(stack, trace.Frame{Addr: g.proc.sysAddr[fr]})
	}
	g.proc.modules.ResolveStack(stack)
	g.now = g.now.Add(time.Duration(50+g.rng.Intn(1950)) * time.Microsecond)
	g.log.Events = append(g.log.Events, trace.Event{
		Seq:   g.log.Len(),
		Type:  tpl.Type,
		Time:  g.now,
		PID:   g.log.PID,
		TID:   tid,
		Stack: stack,
	})
}

// emitEvent emits one event for a named template (preamble helper).
func (g *logGen) emitEvent(templateName string, appPath []uint64, tid int) {
	tpl := SysTemplates()[templateName]
	g.emitTemplate(tpl, 0, appPath, tid)
}
