package appsim

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// StepSpec is one system interaction inside an operation: the named
// behaviour template, executed between MinRepeat and MaxRepeat times per
// operation instance (each repetition emits one event).
type StepSpec struct {
	Template  string
	MinRepeat int
	MaxRepeat int
	// PinVariant, when non-zero, fixes the template variant this step
	// uses to Variants[PinVariant-1] instead of sampling uniformly:
	// different code paths reach the same system service through
	// different library routes (msvcrt stdio vs. raw Win32, wininet vs.
	// winhttp), and that per-call-site stability is what gives some
	// operations distinctive system-level call-graph edges.
	PinVariant int
}

// OpSpec describes one operation of an application or payload: a named unit
// of work with its own application-side call chain and a sequence of system
// interactions performed at the bottom of that chain.
type OpSpec struct {
	Name string
	// Weight is the relative probability of selecting this operation when
	// generating a log.
	Weight float64
	// Depth is the number of private call-chain functions between the
	// dispatch function and the step leaves.
	Depth int
	Steps []StepSpec
}

// Profile describes a program to simulate: an application binary
// (WinSCP-like, Vim-like, ...) or a malicious payload. Only the
// statistical structure matters: how many operations, how deep their call
// chains, and which system behaviours they exercise at what rates.
type Profile struct {
	// Name is the image name, e.g. "winscp.exe".
	Name string
	// Ops is the operation mix.
	Ops []OpSpec
}

// Validate checks the profile for structural errors against the template
// catalog.
func (p *Profile) Validate(templates map[string]*SysTemplate) error {
	if p.Name == "" {
		return errors.New("appsim: profile name must not be empty")
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("appsim: profile %q has no operations", p.Name)
	}
	seen := make(map[string]bool, len(p.Ops))
	for _, op := range p.Ops {
		if op.Name == "" {
			return fmt.Errorf("appsim: profile %q has an unnamed operation", p.Name)
		}
		if seen[op.Name] {
			return fmt.Errorf("appsim: profile %q has duplicate operation %q", p.Name, op.Name)
		}
		seen[op.Name] = true
		if op.Weight <= 0 {
			return fmt.Errorf("appsim: operation %q weight must be positive, got %v", op.Name, op.Weight)
		}
		if op.Depth < 0 {
			return fmt.Errorf("appsim: operation %q depth must be non-negative", op.Name)
		}
		if len(op.Steps) == 0 {
			return fmt.Errorf("appsim: operation %q has no steps", op.Name)
		}
		for _, st := range op.Steps {
			tpl, ok := templates[st.Template]
			if !ok {
				return fmt.Errorf("appsim: operation %q references unknown template %q", op.Name, st.Template)
			}
			if st.MinRepeat < 1 || st.MaxRepeat < st.MinRepeat {
				return fmt.Errorf("appsim: operation %q step %q has invalid repeat range [%d,%d]",
					op.Name, st.Template, st.MinRepeat, st.MaxRepeat)
			}
			if st.PinVariant < 0 || st.PinVariant > len(tpl.Variants) {
				return fmt.Errorf("appsim: operation %q step %q pins variant %d of %d",
					op.Name, st.Template, st.PinVariant, len(tpl.Variants))
			}
		}
	}
	return nil
}

// builtStep is a StepSpec bound to its template and the address of the
// application-side leaf function that performs it.
type builtStep struct {
	spec     StepSpec
	template *SysTemplate
	leaf     uint64
}

// builtOp is an operation with concrete function addresses: the call chain
// from the program root down to the operation body, plus one leaf per step.
type builtOp struct {
	name   string
	weight float64
	chain  []uint64 // root → dispatch → private chain
	steps  []builtStep
}

// events returns how many events one instance of the op emits at minimum
// and maximum.
func (op *builtOp) events() (min, max int) {
	for _, st := range op.steps {
		min += st.spec.MinRepeat
		max += st.spec.MaxRepeat
	}
	return min, max
}

// funcSpacing is the address distance between consecutive simulated
// functions; codeStart is the offset of the first function within an image.
const (
	funcSpacing uint64 = 0x80
	codeStart   uint64 = 0x1000
)

// Program is a built profile: the operation set with concrete function
// addresses laid out from base, plus the symbol table for those functions.
type Program struct {
	profile Profile
	base    uint64
	limit   uint64 // first address past the last function
	symbols []trace.Symbol
	ops     []*builtOp
	totalW  float64
}

// BuildProgram lays out the profile's functions starting at base and binds
// every step to its behaviour template.
//
// The layout mirrors a compiled binary: a root ("main") and a per-operation
// dispatch function, then each operation's private chain and step leaves in
// declaration order, all at funcSpacing intervals. Operations declared
// adjacently therefore occupy adjacent address ranges, which is what makes
// the paper's density-array weight estimate meaningful for benign
// functionality missing from an incomplete benign CFG.
func BuildProgram(p Profile, base uint64, templates map[string]*SysTemplate) (*Program, error) {
	if err := p.Validate(templates); err != nil {
		return nil, err
	}
	prog := &Program{profile: p, base: base}
	next := base + codeStart
	alloc := func(name string) uint64 {
		addr := next
		next += funcSpacing
		prog.symbols = append(prog.symbols, trace.Symbol{Name: name, Addr: addr})
		return addr
	}

	rootAddr := alloc("main")
	for _, opSpec := range p.Ops {
		op := &builtOp{name: opSpec.Name, weight: opSpec.Weight}
		op.chain = append(op.chain, rootAddr)
		op.chain = append(op.chain, alloc("dispatch_"+opSpec.Name))
		for d := 0; d < opSpec.Depth; d++ {
			op.chain = append(op.chain, alloc(fmt.Sprintf("%s_f%d", opSpec.Name, d+1)))
		}
		for _, stSpec := range opSpec.Steps {
			st := builtStep{
				spec:     stSpec,
				template: templates[stSpec.Template],
				leaf:     alloc(fmt.Sprintf("%s_do_%s", opSpec.Name, stSpec.Template)),
			}
			op.steps = append(op.steps, st)
		}
		prog.ops = append(prog.ops, op)
		prog.totalW += opSpec.Weight
	}
	prog.limit = next
	return prog, nil
}

// Name returns the program's image name.
func (prog *Program) Name() string { return prog.profile.Name }

// Base returns the address of the start of the program's layout region.
func (prog *Program) Base() uint64 { return prog.base }

// Limit returns the first address past the program's last function.
func (prog *Program) Limit() uint64 { return prog.limit }

// CodeSize returns the size of the laid-out code region.
func (prog *Program) CodeSize() uint64 { return prog.limit - prog.base }

// Symbols returns a copy of the program's symbol table.
func (prog *Program) Symbols() []trace.Symbol {
	out := make([]trace.Symbol, len(prog.symbols))
	copy(out, prog.symbols)
	return out
}

// NumOps returns the number of operations in the program.
func (prog *Program) NumOps() int { return len(prog.ops) }

// OpNames returns the operation names in declaration order.
func (prog *Program) OpNames() []string {
	out := make([]string, len(prog.ops))
	for i, op := range prog.ops {
		out[i] = op.name
	}
	return out
}

// op returns the named operation or nil.
func (prog *Program) op(name string) *builtOp {
	for _, op := range prog.ops {
		if op.name == name {
			return op
		}
	}
	return nil
}
