// Package appsim is the workload substrate of this reproduction: a
// deterministic simulator of application and payload execution that emits
// system event logs with stack walks, standing in for the paper's Event
// Tracing for Windows (ETW) capture of real applications.
//
// The simulator models a process as a set of loaded modules (the
// application image, shared libraries, kernel components and — for attacks
// — payload code), a library of system behaviour templates (file I/O,
// networking, registry, UI, process management), and per-application
// operation mixes that chain those behaviours under application-side call
// paths. Camouflaged attacks are reproduced by embedding payload code in an
// appended image section (offline infection) or a remote private allocation
// (online injection) and interleaving payload operations with benign ones
// in the same event stream.
package appsim

import "repro/internal/trace"

// SysFrame names one stack frame in a system behaviour template: a function
// within a shared library or kernel module.
type SysFrame struct {
	Module   string
	Function string
}

// SysTemplate describes one system interaction: the event type it raises
// and one or more alternative system-side stack paths, each ordered from
// the outermost library frame down to the kernel leaf. Variants model
// path diversity in real systems (cache hits vs. misses, fast vs. slow
// syscall paths) and are chosen uniformly per instance.
type SysTemplate struct {
	Name     string
	Type     trace.EventType
	Variants [][]SysFrame
}

// sysModuleSpec declares one system module of the simulated OS along with
// its exported functions. Addresses are assigned by BuildSystemModules.
type sysModuleSpec struct {
	name  string
	kind  trace.ModuleKind
	funcs []string
}

// systemModuleSpecs is the catalog of shared libraries and kernel
// components every simulated process loads. The names follow the Windows
// modules the paper's stack walks traverse so that logs read like the
// paper's examples; only the names matter to the algorithms.
func systemModuleSpecs() []sysModuleSpec {
	return []sysModuleSpec{
		{"ntdll.dll", trace.ModuleSharedLib, []string{
			"NtCreateFile", "NtReadFile", "NtWriteFile", "NtDeleteFile", "NtClose",
			"NtOpenKey", "NtQueryValueKey", "NtSetValueKey",
			"NtCreateProcess", "NtTerminateProcess", "NtCreateThreadEx",
			"NtAllocateVirtualMemory", "NtFreeVirtualMemory",
			"NtDeviceIoControlFile", "NtUserMessageCall", "RtlUserThreadStart",
			"LdrLoadDll", "LdrUnloadDll", "KiFastSystemCall",
		}},
		{"kernel32.dll", trace.ModuleSharedLib, []string{
			"CreateFileW", "ReadFile", "WriteFile", "DeleteFileW", "CloseHandle",
			"CreateProcessW", "ExitProcess", "CreateThread", "CreateRemoteThread",
			"VirtualAlloc", "VirtualFree", "LoadLibraryW", "FreeLibrary",
			"GetProcAddress", "WriteProcessMemory",
		}},
		{"kernelbase.dll", trace.ModuleSharedLib, []string{
			"CreateFileInternal", "ReadFileImpl", "WriteFileImpl",
			"RegOpenKeyInternal", "RegQueryValueInternal", "RegSetValueInternal",
		}},
		{"advapi32.dll", trace.ModuleSharedLib, []string{
			"RegOpenKeyExW", "RegQueryValueExW", "RegSetValueExW", "RegCloseKey",
			"CryptAcquireContextW", "CryptGenRandom",
		}},
		{"user32.dll", trace.ModuleSharedLib, []string{
			"GetMessageW", "DispatchMessageW", "PeekMessageW", "SendMessageW",
			"CreateWindowExW", "DialogBoxParamW", "GetAsyncKeyState", "SetWindowsHookExW",
		}},
		{"gdi32.dll", trace.ModuleSharedLib, []string{
			"BitBlt", "CreateCompatibleDC", "GetDIBits", "TextOutW",
		}},
		{"ws2_32.dll", trace.ModuleSharedLib, []string{
			"WSAStartup", "socket", "connect", "send", "recv", "closesocket",
			"WSASend", "WSARecv", "getaddrinfo",
		}},
		{"mswsock.dll", trace.ModuleSharedLib, []string{
			"WSPSocket", "WSPConnect", "WSPSend", "WSPRecv", "WSPCloseSocket",
		}},
		{"wininet.dll", trace.ModuleSharedLib, []string{
			"InternetOpenW", "InternetConnectW", "HttpOpenRequestW",
			"HttpSendRequestW", "InternetReadFile", "InternetCloseHandle",
		}},
		{"winhttp.dll", trace.ModuleSharedLib, []string{
			"WinHttpOpen", "WinHttpConnect", "WinHttpSendRequest", "WinHttpReceiveResponse",
		}},
		{"secur32.dll", trace.ModuleSharedLib, []string{
			"InitializeSecurityContextW", "EncryptMessage", "DecryptMessage",
		}},
		{"msvcrt.dll", trace.ModuleSharedLib, []string{
			"fopen", "fread", "fwrite", "fclose", "malloc", "free", "memcpy", "printf",
		}},
		{"shell32.dll", trace.ModuleSharedLib, []string{
			"ShellExecuteW", "SHGetFolderPathW",
		}},
		{"ntoskrnl.exe", trace.ModuleKernel, []string{
			"KiSystemServiceStart", "NtCreateFile", "NtReadFile", "NtWriteFile",
			"NtSetInformationFile", "NtOpenKey", "NtQueryValueKey", "NtSetValueKey",
			"NtCreateUserProcess", "NtTerminateProcess", "NtCreateThreadEx",
			"NtAllocateVirtualMemory", "NtFreeVirtualMemory", "NtDeviceIoControlFile",
			"IopSynchronousServiceTail", "ObpCloseHandle",
		}},
		{"ntfs.sys", trace.ModuleKernel, []string{
			"NtfsFsdCreate", "NtfsFsdRead", "NtfsFsdWrite", "NtfsFsdSetInformation",
			"NtfsCommonRead", "NtfsCommonWrite",
		}},
		{"fltmgr.sys", trace.ModuleKernel, []string{
			"FltpDispatch", "FltpPerformPreCallbacks",
		}},
		{"tcpip.sys", trace.ModuleKernel, []string{
			"TcpCreateEndpoint", "TcpConnectEndpoint", "TcpSendData", "TcpReceiveData",
			"TcpDisconnectEndpoint", "UdpSendMessages",
		}},
		{"afd.sys", trace.ModuleKernel, []string{
			"AfdCreate", "AfdConnect", "AfdSend", "AfdReceive", "AfdCleanup",
		}},
		{"win32k.sys", trace.ModuleKernel, []string{
			"NtUserGetMessage", "NtUserDispatchMessage", "NtUserCreateWindowEx",
			"NtUserCallOneParam", "NtGdiBitBlt",
		}},
	}
}

// sysModuleBase is where simulated shared libraries start; kernel modules
// start at sysKernelBase. Spacing leaves room between modules so the maps
// never overlap.
const (
	sysModuleBase  = 0x7ff8_0000_0000
	sysModuleStep  = 0x0000_0010_0000
	sysKernelBase  = 0xfffff800_0000_0000
	sysFuncSpacing = 0x100
)

// BuildSystemModules constructs the shared-library and kernel modules of
// the simulated OS with deterministic address assignments.
func BuildSystemModules() ([]*trace.Module, error) {
	specs := systemModuleSpecs()
	mods := make([]*trace.Module, 0, len(specs))
	var userIdx, kernIdx uint64
	for _, spec := range specs {
		var base uint64
		switch spec.kind {
		case trace.ModuleKernel:
			base = sysKernelBase + kernIdx*sysModuleStep
			kernIdx++
		default:
			base = sysModuleBase + userIdx*sysModuleStep
			userIdx++
		}
		syms := make([]trace.Symbol, len(spec.funcs))
		for i, fn := range spec.funcs {
			syms[i] = trace.Symbol{Name: fn, Addr: base + 0x1000 + uint64(i)*sysFuncSpacing}
		}
		size := uint64(0x1000 + len(spec.funcs)*sysFuncSpacing + 0x1000)
		m, err := trace.NewModule(spec.name, spec.kind, base, size, syms)
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	return mods, nil
}

// f is shorthand for constructing a SysFrame in template literals.
func f(module, function string) SysFrame { return SysFrame{Module: module, Function: function} }

// SysTemplates returns the catalog of system behaviour templates available
// to application and payload profiles, keyed by name.
func SysTemplates() map[string]*SysTemplate {
	list := []*SysTemplate{
		{
			Name: "file_open", Type: trace.EventFileCreate,
			Variants: [][]SysFrame{
				{f("msvcrt.dll", "fopen"), f("kernel32.dll", "CreateFileW"), f("kernelbase.dll", "CreateFileInternal"), f("ntdll.dll", "NtCreateFile"), f("ntoskrnl.exe", "NtCreateFile"), f("fltmgr.sys", "FltpDispatch"), f("ntfs.sys", "NtfsFsdCreate")},
				{f("kernel32.dll", "CreateFileW"), f("kernelbase.dll", "CreateFileInternal"), f("ntdll.dll", "NtCreateFile"), f("ntoskrnl.exe", "NtCreateFile"), f("ntfs.sys", "NtfsFsdCreate")},
			},
		},
		{
			Name: "file_read", Type: trace.EventFileRead,
			Variants: [][]SysFrame{
				{f("msvcrt.dll", "fread"), f("kernel32.dll", "ReadFile"), f("kernelbase.dll", "ReadFileImpl"), f("ntdll.dll", "NtReadFile"), f("ntoskrnl.exe", "NtReadFile"), f("ntfs.sys", "NtfsFsdRead"), f("ntfs.sys", "NtfsCommonRead")},
				{f("kernel32.dll", "ReadFile"), f("kernelbase.dll", "ReadFileImpl"), f("ntdll.dll", "NtReadFile"), f("ntoskrnl.exe", "NtReadFile"), f("ntoskrnl.exe", "IopSynchronousServiceTail")},
			},
		},
		{
			Name: "file_write", Type: trace.EventFileWrite,
			Variants: [][]SysFrame{
				{f("msvcrt.dll", "fwrite"), f("kernel32.dll", "WriteFile"), f("kernelbase.dll", "WriteFileImpl"), f("ntdll.dll", "NtWriteFile"), f("ntoskrnl.exe", "NtWriteFile"), f("ntfs.sys", "NtfsFsdWrite"), f("ntfs.sys", "NtfsCommonWrite")},
				{f("kernel32.dll", "WriteFile"), f("kernelbase.dll", "WriteFileImpl"), f("ntdll.dll", "NtWriteFile"), f("ntoskrnl.exe", "NtWriteFile"), f("ntfs.sys", "NtfsFsdWrite")},
			},
		},
		{
			Name: "file_delete", Type: trace.EventFileDelete,
			Variants: [][]SysFrame{
				{f("kernel32.dll", "DeleteFileW"), f("ntdll.dll", "NtDeleteFile"), f("ntoskrnl.exe", "NtSetInformationFile"), f("ntfs.sys", "NtfsFsdSetInformation")},
			},
		},
		{
			Name: "file_close", Type: trace.EventSysCallEnter,
			Variants: [][]SysFrame{
				{f("msvcrt.dll", "fclose"), f("kernel32.dll", "CloseHandle"), f("ntdll.dll", "NtClose"), f("ntoskrnl.exe", "ObpCloseHandle")},
				{f("kernel32.dll", "CloseHandle"), f("ntdll.dll", "NtClose"), f("ntoskrnl.exe", "ObpCloseHandle")},
			},
		},
		{
			Name: "reg_read", Type: trace.EventRegistryRead,
			Variants: [][]SysFrame{
				{f("advapi32.dll", "RegOpenKeyExW"), f("kernelbase.dll", "RegOpenKeyInternal"), f("ntdll.dll", "NtOpenKey"), f("ntoskrnl.exe", "NtOpenKey")},
				{f("advapi32.dll", "RegQueryValueExW"), f("kernelbase.dll", "RegQueryValueInternal"), f("ntdll.dll", "NtQueryValueKey"), f("ntoskrnl.exe", "NtQueryValueKey")},
			},
		},
		{
			Name: "reg_write", Type: trace.EventRegistryWrite,
			Variants: [][]SysFrame{
				{f("advapi32.dll", "RegSetValueExW"), f("kernelbase.dll", "RegSetValueInternal"), f("ntdll.dll", "NtSetValueKey"), f("ntoskrnl.exe", "NtSetValueKey")},
			},
		},
		{
			Name: "net_connect", Type: trace.EventNetConnect,
			Variants: [][]SysFrame{
				{f("ws2_32.dll", "connect"), f("mswsock.dll", "WSPConnect"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdConnect"), f("tcpip.sys", "TcpConnectEndpoint")},
				{f("ws2_32.dll", "socket"), f("mswsock.dll", "WSPSocket"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdCreate"), f("tcpip.sys", "TcpCreateEndpoint")},
			},
		},
		{
			Name: "net_send", Type: trace.EventNetSend,
			Variants: [][]SysFrame{
				{f("ws2_32.dll", "send"), f("mswsock.dll", "WSPSend"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdSend"), f("tcpip.sys", "TcpSendData")},
				{f("ws2_32.dll", "WSASend"), f("mswsock.dll", "WSPSend"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdSend"), f("tcpip.sys", "TcpSendData")},
			},
		},
		{
			Name: "net_recv", Type: trace.EventNetRecv,
			Variants: [][]SysFrame{
				{f("ws2_32.dll", "recv"), f("mswsock.dll", "WSPRecv"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdReceive"), f("tcpip.sys", "TcpReceiveData")},
				{f("ws2_32.dll", "WSARecv"), f("mswsock.dll", "WSPRecv"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdReceive"), f("tcpip.sys", "TcpReceiveData")},
			},
		},
		{
			Name: "net_close", Type: trace.EventNetDisconnect,
			Variants: [][]SysFrame{
				{f("ws2_32.dll", "closesocket"), f("mswsock.dll", "WSPCloseSocket"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdCleanup"), f("tcpip.sys", "TcpDisconnectEndpoint")},
			},
		},
		{
			Name: "https_request", Type: trace.EventNetSend,
			Variants: [][]SysFrame{
				{f("wininet.dll", "HttpSendRequestW"), f("secur32.dll", "EncryptMessage"), f("ws2_32.dll", "send"), f("mswsock.dll", "WSPSend"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdSend"), f("tcpip.sys", "TcpSendData")},
				{f("winhttp.dll", "WinHttpSendRequest"), f("secur32.dll", "EncryptMessage"), f("ws2_32.dll", "send"), f("mswsock.dll", "WSPSend"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdSend"), f("tcpip.sys", "TcpSendData")},
			},
		},
		{
			Name: "https_response", Type: trace.EventNetRecv,
			Variants: [][]SysFrame{
				{f("wininet.dll", "InternetReadFile"), f("secur32.dll", "DecryptMessage"), f("ws2_32.dll", "recv"), f("mswsock.dll", "WSPRecv"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdReceive"), f("tcpip.sys", "TcpReceiveData")},
				{f("winhttp.dll", "WinHttpReceiveResponse"), f("secur32.dll", "DecryptMessage"), f("ws2_32.dll", "recv"), f("mswsock.dll", "WSPRecv"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdReceive"), f("tcpip.sys", "TcpReceiveData")},
			},
		},
		{
			Name: "https_open", Type: trace.EventNetConnect,
			Variants: [][]SysFrame{
				{f("wininet.dll", "InternetConnectW"), f("ws2_32.dll", "connect"), f("mswsock.dll", "WSPConnect"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdConnect"), f("tcpip.sys", "TcpConnectEndpoint")},
			},
		},
		{
			Name: "ui_message", Type: trace.EventUIMessage,
			Variants: [][]SysFrame{
				{f("user32.dll", "GetMessageW"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtUserGetMessage")},
				{f("user32.dll", "DispatchMessageW"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtUserDispatchMessage")},
				{f("user32.dll", "PeekMessageW"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtUserGetMessage")},
			},
		},
		{
			Name: "ui_paint", Type: trace.EventUIMessage,
			Variants: [][]SysFrame{
				{f("gdi32.dll", "TextOutW"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtGdiBitBlt")},
				{f("gdi32.dll", "BitBlt"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtGdiBitBlt")},
			},
		},
		{
			Name: "ui_dialog", Type: trace.EventUIMessage,
			Variants: [][]SysFrame{
				{f("user32.dll", "DialogBoxParamW"), f("user32.dll", "CreateWindowExW"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtUserCreateWindowEx")},
			},
		},
		{
			Name: "keystate_poll", Type: trace.EventUIMessage,
			Variants: [][]SysFrame{
				{f("user32.dll", "GetAsyncKeyState"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtUserCallOneParam")},
				{f("user32.dll", "SetWindowsHookExW"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtUserCallOneParam")},
			},
		},
		{
			Name: "screenshot", Type: trace.EventUIMessage,
			Variants: [][]SysFrame{
				{f("gdi32.dll", "CreateCompatibleDC"), f("gdi32.dll", "GetDIBits"), f("ntdll.dll", "NtUserMessageCall"), f("win32k.sys", "NtGdiBitBlt")},
			},
		},
		{
			Name: "proc_create", Type: trace.EventProcessCreate,
			Variants: [][]SysFrame{
				{f("kernel32.dll", "CreateProcessW"), f("ntdll.dll", "NtCreateProcess"), f("ntoskrnl.exe", "NtCreateUserProcess")},
				{f("shell32.dll", "ShellExecuteW"), f("kernel32.dll", "CreateProcessW"), f("ntdll.dll", "NtCreateProcess"), f("ntoskrnl.exe", "NtCreateUserProcess")},
			},
		},
		{
			Name: "proc_exit", Type: trace.EventProcessExit,
			Variants: [][]SysFrame{
				{f("kernel32.dll", "ExitProcess"), f("ntdll.dll", "NtTerminateProcess"), f("ntoskrnl.exe", "NtTerminateProcess")},
			},
		},
		{
			Name: "thread_create", Type: trace.EventThreadCreate,
			Variants: [][]SysFrame{
				{f("kernel32.dll", "CreateThread"), f("ntdll.dll", "NtCreateThreadEx"), f("ntoskrnl.exe", "NtCreateThreadEx")},
				{f("kernel32.dll", "CreateRemoteThread"), f("ntdll.dll", "NtCreateThreadEx"), f("ntoskrnl.exe", "NtCreateThreadEx")},
			},
		},
		{
			Name: "mem_alloc", Type: trace.EventMemAlloc,
			Variants: [][]SysFrame{
				{f("kernel32.dll", "VirtualAlloc"), f("ntdll.dll", "NtAllocateVirtualMemory"), f("ntoskrnl.exe", "NtAllocateVirtualMemory")},
				{f("msvcrt.dll", "malloc"), f("ntdll.dll", "NtAllocateVirtualMemory"), f("ntoskrnl.exe", "NtAllocateVirtualMemory")},
			},
		},
		{
			Name: "mem_free", Type: trace.EventMemFree,
			Variants: [][]SysFrame{
				{f("kernel32.dll", "VirtualFree"), f("ntdll.dll", "NtFreeVirtualMemory"), f("ntoskrnl.exe", "NtFreeVirtualMemory")},
				{f("msvcrt.dll", "free"), f("ntdll.dll", "NtFreeVirtualMemory"), f("ntoskrnl.exe", "NtFreeVirtualMemory")},
			},
		},
		{
			Name: "image_load", Type: trace.EventImageLoad,
			Variants: [][]SysFrame{
				{f("kernel32.dll", "LoadLibraryW"), f("ntdll.dll", "LdrLoadDll"), f("ntoskrnl.exe", "KiSystemServiceStart")},
			},
		},
		{
			Name: "crypto_random", Type: trace.EventSysCallEnter,
			Variants: [][]SysFrame{
				{f("advapi32.dll", "CryptGenRandom"), f("advapi32.dll", "CryptAcquireContextW"), f("ntdll.dll", "KiFastSystemCall"), f("ntoskrnl.exe", "KiSystemServiceStart")},
			},
		},
		{
			Name: "dns_lookup", Type: trace.EventNetSend,
			Variants: [][]SysFrame{
				{f("ws2_32.dll", "getaddrinfo"), f("ntdll.dll", "NtDeviceIoControlFile"), f("ntoskrnl.exe", "NtDeviceIoControlFile"), f("afd.sys", "AfdSend"), f("tcpip.sys", "UdpSendMessages")},
			},
		},
	}
	out := make(map[string]*SysTemplate, len(list))
	for _, t := range list {
		out[t.Name] = t
	}
	return out
}
