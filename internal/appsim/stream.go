package appsim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// Generator emits a simulated process's event stream incrementally — the
// session-template hook behind the cluster load simulator. Where
// GenerateLog materialises one bounded log, a Generator is open-ended:
// Next hands out the next n events of an endless stream, so a driver can
// pace a session batch by batch without holding its whole lifetime in
// memory, and a million concurrent sessions cost a million generator
// cursors, not a million logs.
//
// The stream is deterministic: the same Process and GenConfig yield the
// same event sequence regardless of how Next calls slice it. Generation
// follows GenerateLog's model — the attack preamble first for infected
// processes, then weighted operations in payload/application bursts —
// but bursts always run to completion (nothing truncates the stream), so
// a Generator's events are not byte-identical to a GenerateLog call with
// the same seed; sessions that need log/stream parity should slice a
// generated log instead.
type Generator struct {
	proc     *Process
	g        *logGen
	appOps   []*builtOp
	appW     float64
	fraction float64
	maxBurst int
	emitted  int // absolute ordinal of the next event handed out
}

// Generator starts an incremental event stream for the process.
// GenConfig is interpreted as for GenerateLog except that Events is
// ignored (the stream has no end; the caller decides the session
// lifetime) and must be zero.
func (p *Process) Generator(cfg GenConfig) (*Generator, error) {
	if cfg.Events != 0 {
		return nil, errors.New("appsim: Generator ignores GenConfig.Events; set the lifetime at the caller")
	}
	if cfg.PayloadFraction < 0 || cfg.PayloadFraction > 1 {
		return nil, fmt.Errorf("appsim: PayloadFraction %v out of [0,1]", cfg.PayloadFraction)
	}
	if p.payload == nil && cfg.PayloadFraction > 0 {
		return nil, errors.New("appsim: PayloadFraction set on a process without a payload")
	}
	appOps, appW, err := p.appOpsFor(cfg)
	if err != nil {
		return nil, err
	}
	maxBurst := cfg.MaxBurst
	if maxBurst == 0 {
		maxBurst = 4
	}
	if maxBurst < 1 {
		return nil, fmt.Errorf("appsim: MaxBurst %d must be positive", cfg.MaxBurst)
	}
	gen := &Generator{
		proc: p,
		g: &logGen{
			proc: p,
			rng:  rand.New(rand.NewSource(cfg.Seed)),
			log: &trace.Log{
				App:     p.modules.AppName(),
				PID:     cfg.PID,
				Modules: p.modules,
			},
			now: cfg.Start,
		},
		appOps:   appOps,
		appW:     appW,
		fraction: cfg.PayloadFraction,
		maxBurst: maxBurst,
	}
	if gen.g.now.IsZero() {
		gen.g.now = genEpoch
	}
	if p.payload != nil {
		gen.g.emitPreamble()
	}
	return gen, nil
}

// Next returns the next n events of the stream. The returned slice is
// owned by the caller; successive calls continue where the previous one
// stopped, with Seq numbering the absolute stream ordinal.
func (gen *Generator) Next(n int) []trace.Event {
	if n <= 0 {
		return nil
	}
	g := gen.g
	for len(g.log.Events) < n {
		fromPayload := gen.proc.payload != nil && g.rng.Float64() < gen.fraction
		burst := 1 + g.rng.Intn(gen.maxBurst)
		for b := 0; b < burst; b++ {
			if fromPayload {
				g.emitOp(pickOp(g.rng, gen.proc.payload.ops, gen.proc.payload.totalW), payloadTID)
			} else {
				g.emitOp(pickOp(g.rng, gen.appOps, gen.appW), benignTID)
			}
		}
	}
	out := make([]trace.Event, n)
	copy(out, g.log.Events)
	rest := copy(g.log.Events, g.log.Events[n:])
	for i := rest; i < len(g.log.Events); i++ {
		g.log.Events[i] = trace.Event{} // release stack walks to the GC
	}
	g.log.Events = g.log.Events[:rest]
	for i := range out {
		out[i].Seq = gen.emitted
		gen.emitted++
	}
	return out
}

// Emitted returns how many events the generator has handed out.
func (gen *Generator) Emitted() int { return gen.emitted }
