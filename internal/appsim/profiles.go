package appsim

import "fmt"

// This file defines the behaviour profiles of the five benign applications
// and three malicious payloads the paper's 21 datasets combine. The
// profiles are synthetic stand-ins for the real binaries: each reproduces
// the application's characteristic operation mix (what system behaviours it
// exercises and at what rates) and call-graph scale, which is all the LEAPS
// pipeline observes.

// step is shorthand for a StepSpec literal.
func step(template string, min, max int) StepSpec {
	return StepSpec{Template: template, MinRepeat: min, MaxRepeat: max}
}

// pstep is a StepSpec pinned to one template variant (1-based), modelling
// a call site that always reaches the system service through the same
// library route.
func pstep(template string, min, max, pin int) StepSpec {
	return StepSpec{Template: template, MinRepeat: min, MaxRepeat: max, PinVariant: pin}
}

// WinSCPProfile models a graphical SFTP/SCP file-transfer client: heavy
// paired file and network traffic, session setup with crypto and registry
// access, and a UI pump.
func WinSCPProfile() Profile {
	return Profile{
		Name: "winscp.exe",
		Ops: []OpSpec{
			{Name: "session_login", Weight: 1, Depth: 3, Steps: []StepSpec{
				step("reg_read", 1, 2), step("crypto_random", 1, 2),
				step("net_connect", 1, 1), step("net_send", 1, 2), step("net_recv", 1, 2),
			}},
			{Name: "upload_file", Weight: 3, Depth: 4, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_read", 2, 6, 2),
				step("net_send", 2, 6), step("net_recv", 1, 2), pstep("file_close", 1, 1, 2),
			}},
			{Name: "download_file", Weight: 3, Depth: 4, Steps: []StepSpec{
				step("net_send", 1, 1), step("net_recv", 2, 6),
				pstep("file_open", 1, 1, 2), pstep("file_write", 2, 6, 2), pstep("file_close", 1, 1, 2),
			}},
			{Name: "browse_remote", Weight: 2, Depth: 3, Steps: []StepSpec{
				step("net_send", 1, 2), step("net_recv", 1, 3), step("ui_paint", 1, 2),
			}},
			{Name: "local_browse", Weight: 2, Depth: 2, Steps: []StepSpec{
				pstep("file_open", 1, 2, 1), pstep("file_read", 1, 3, 1), pstep("file_close", 1, 2, 1), step("ui_paint", 1, 1),
			}},
			{Name: "edit_prefs", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("reg_read", 1, 2), step("reg_write", 1, 2), step("ui_dialog", 1, 1),
			}},
			{Name: "sync_dirs", Weight: 1, Depth: 4, Steps: []StepSpec{
				step("file_read", 1, 3), step("net_send", 1, 3), step("net_recv", 1, 3), step("file_write", 1, 3),
			}},
			{Name: "ui_idle", Weight: 3, Depth: 1, Steps: []StepSpec{
				step("ui_message", 2, 5), step("ui_paint", 1, 2),
			}},
		},
	}
}

// ChromeProfile models a web browser: the noisiest application — many
// operations, deep call chains, heavy HTTPS and cache traffic, spawned
// helper processes. Its overlap with HTTPS-beaconing payloads is what makes
// the chrome datasets the hardest in the paper.
func ChromeProfile() Profile {
	return Profile{
		Name: "chrome.exe",
		Ops: []OpSpec{
			{Name: "page_load", Weight: 4, Depth: 5, Steps: []StepSpec{
				step("dns_lookup", 1, 2), step("https_open", 1, 1),
				step("https_request", 1, 3), step("https_response", 2, 8),
				step("ui_paint", 1, 3),
			}},
			{Name: "subresource_fetch", Weight: 4, Depth: 4, Steps: []StepSpec{
				step("https_request", 1, 2), step("https_response", 1, 4), step("mem_alloc", 1, 2),
			}},
			{Name: "cache_write", Weight: 3, Depth: 3, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_write", 1, 4, 2), pstep("file_close", 1, 1, 2),
			}},
			{Name: "cache_read", Weight: 3, Depth: 3, Steps: []StepSpec{
				pstep("file_open", 1, 1, 1), pstep("file_read", 1, 4, 1), pstep("file_close", 1, 1, 1),
			}},
			{Name: "js_heap", Weight: 3, Depth: 2, Steps: []StepSpec{
				step("mem_alloc", 1, 4), step("mem_free", 1, 3),
			}},
			{Name: "render_frame", Weight: 3, Depth: 3, Steps: []StepSpec{
				step("ui_paint", 2, 5), step("ui_message", 1, 3),
			}},
			{Name: "history_update", Weight: 2, Depth: 3, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_write", 1, 2, 2), pstep("file_close", 1, 1, 2), step("reg_write", 1, 1),
			}},
			{Name: "spawn_renderer", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("proc_create", 1, 1), step("thread_create", 1, 2), step("image_load", 1, 2),
			}},
			{Name: "extension_sync", Weight: 1, Depth: 3, Steps: []StepSpec{
				step("https_request", 1, 1), step("https_response", 1, 2), step("file_write", 1, 1),
			}},
			{Name: "download", Weight: 1, Depth: 4, Steps: []StepSpec{
				step("https_response", 2, 6), step("file_write", 2, 6), step("ui_message", 1, 1),
			}},
		},
	}
}

// NotepadPPProfile models a tabbed text editor with plugins: dominated by
// UI and file activity, with an occasional plugin-update HTTPS touch.
func NotepadPPProfile() Profile {
	return Profile{
		Name: "notepad++.exe",
		Ops: []OpSpec{
			{Name: "open_file", Weight: 3, Depth: 3, Steps: []StepSpec{
				step("ui_dialog", 1, 1), pstep("file_open", 1, 1, 2), pstep("file_read", 1, 4, 2), pstep("file_close", 1, 1, 2),
			}},
			{Name: "save_file", Weight: 3, Depth: 3, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_write", 1, 4, 2), pstep("file_close", 1, 1, 2),
			}},
			{Name: "edit_buffer", Weight: 5, Depth: 2, Steps: []StepSpec{
				step("ui_message", 2, 6), step("mem_alloc", 1, 2), step("ui_paint", 1, 3),
			}},
			{Name: "find_in_files", Weight: 2, Depth: 4, Steps: []StepSpec{
				pstep("file_open", 1, 3, 1), pstep("file_read", 2, 6, 1), pstep("file_close", 1, 3, 1), step("ui_paint", 1, 1),
			}},
			{Name: "session_save", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("reg_write", 1, 2), step("file_write", 1, 2),
			}},
			{Name: "plugin_update_check", Weight: 1, Depth: 3, Steps: []StepSpec{
				step("https_open", 1, 1), step("https_request", 1, 1), step("https_response", 1, 2),
			}},
			{Name: "ui_idle", Weight: 4, Depth: 1, Steps: []StepSpec{
				step("ui_message", 2, 5), step("ui_paint", 1, 2),
			}},
		},
	}
}

// PuttyProfile models an SSH terminal client: an interactive network pump
// (send keystrokes, receive screen data) with session crypto. Its benign
// traffic already looks like a reverse shell's, which is why the putty
// datasets show the most confusable benign/malicious boundary in the paper.
func PuttyProfile() Profile {
	return Profile{
		Name: "putty.exe",
		Ops: []OpSpec{
			{Name: "session_open", Weight: 1, Depth: 3, Steps: []StepSpec{
				step("reg_read", 1, 2), step("dns_lookup", 1, 1),
				step("net_connect", 1, 1), step("crypto_random", 1, 2),
			}},
			{Name: "send_keystrokes", Weight: 5, Depth: 2, Steps: []StepSpec{
				step("ui_message", 1, 3), step("net_send", 1, 3),
			}},
			{Name: "recv_screen", Weight: 5, Depth: 2, Steps: []StepSpec{
				step("net_recv", 1, 4), step("ui_paint", 1, 2),
			}},
			{Name: "rekey", Weight: 1, Depth: 3, Steps: []StepSpec{
				step("crypto_random", 1, 2), step("net_send", 1, 1), step("net_recv", 1, 1),
			}},
			{Name: "save_session", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("reg_write", 1, 2), step("ui_dialog", 1, 1),
			}},
			{Name: "log_output", Weight: 2, Depth: 2, Steps: []StepSpec{
				pstep("file_open", 1, 1, 1), pstep("file_write", 1, 3, 1), pstep("file_close", 1, 1, 1),
			}},
		},
	}
}

// VimProfile models a modal text editor: small, regular, file- and
// UI-centric. Its compact call graph gives the cleanest benign CFGs.
func VimProfile() Profile {
	return Profile{
		Name: "vim.exe",
		Ops: []OpSpec{
			{Name: "open_buffer", Weight: 2, Depth: 3, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_read", 1, 4, 2), pstep("file_close", 1, 1, 2),
			}},
			{Name: "write_buffer", Weight: 2, Depth: 3, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_write", 1, 4, 2), pstep("file_close", 1, 1, 2),
			}},
			{Name: "edit_insert", Weight: 5, Depth: 2, Steps: []StepSpec{
				step("ui_message", 2, 5), step("ui_paint", 1, 2), step("mem_alloc", 1, 1),
			}},
			{Name: "search_buffer", Weight: 2, Depth: 2, Steps: []StepSpec{
				step("ui_message", 1, 2), step("ui_paint", 1, 2),
			}},
			{Name: "swap_sync", Weight: 2, Depth: 2, Steps: []StepSpec{
				pstep("file_write", 1, 2, 1), pstep("file_close", 1, 1, 1),
			}},
			{Name: "read_vimrc", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("file_open", 1, 1), step("file_read", 1, 2), step("file_close", 1, 1),
			}},
			{Name: "shell_filter", Weight: 1, Depth: 3, Steps: []StepSpec{
				step("proc_create", 1, 1), pstep("file_read", 1, 2, 1), pstep("file_write", 1, 2, 1),
			}},
		},
	}
}

// ReverseTCPProfile models a Meterpreter-style reverse TCP shell backdoor:
// connect-back with a raw socket, command beaconing, remote command
// execution, keylogging, file exfiltration and screen capture.
func ReverseTCPProfile() Profile {
	return Profile{
		Name: "reverse_tcp",
		Ops: []OpSpec{
			{Name: "connect_back", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("net_connect", 1, 1), step("crypto_random", 1, 1), step("net_send", 1, 1),
			}},
			{Name: "beacon", Weight: 5, Depth: 1, Steps: []StepSpec{
				step("net_send", 1, 2), step("net_recv", 1, 2),
			}},
			{Name: "exec_command", Weight: 2, Depth: 2, Steps: []StepSpec{
				step("proc_create", 1, 1), step("net_recv", 1, 1), step("net_send", 1, 3),
			}},
			{Name: "keylog", Weight: 3, Depth: 2, Steps: []StepSpec{
				step("keystate_poll", 2, 6), pstep("file_write", 1, 1, 2),
			}},
			{Name: "exfil_file", Weight: 2, Depth: 2, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_read", 1, 4, 2), step("net_send", 1, 4), pstep("file_close", 1, 1, 2),
			}},
			{Name: "screenshot_grab", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("screenshot", 1, 2), step("net_send", 1, 3),
			}},
		},
	}
}

// ReverseHTTPSProfile models a Meterpreter-style reverse HTTPS backdoor:
// the same capabilities as the TCP variant but beaconing over encrypted
// HTTP requests, which blends into browser-like traffic.
func ReverseHTTPSProfile() Profile {
	return Profile{
		Name: "reverse_https",
		Ops: []OpSpec{
			{Name: "stage_channel", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("dns_lookup", 1, 1), step("https_open", 1, 1), step("crypto_random", 1, 1),
			}},
			{Name: "https_beacon", Weight: 5, Depth: 1, Steps: []StepSpec{
				step("https_request", 1, 2), step("https_response", 1, 2),
			}},
			{Name: "exec_command", Weight: 2, Depth: 2, Steps: []StepSpec{
				step("proc_create", 1, 1), step("https_response", 1, 1), step("https_request", 1, 2),
			}},
			{Name: "keylog", Weight: 3, Depth: 2, Steps: []StepSpec{
				step("keystate_poll", 2, 6), pstep("file_write", 1, 1, 2),
			}},
			{Name: "exfil_file", Weight: 2, Depth: 2, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_read", 1, 4, 2), step("https_request", 1, 4), pstep("file_close", 1, 1, 2),
			}},
			{Name: "screenshot_grab", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("screenshot", 1, 2), step("https_request", 1, 3),
			}},
		},
	}
}

// PwddlgProfile models the Codeinject password-dialog payload of the
// paper's codeinject datasets: pop a modal password prompt on startup and
// silently terminate the host when the password is wrong.
func PwddlgProfile() Profile {
	return Profile{
		Name: "pwddlg",
		Ops: []OpSpec{
			{Name: "show_dialog", Weight: 3, Depth: 2, Steps: []StepSpec{
				step("ui_dialog", 1, 1), step("ui_message", 1, 3),
			}},
			{Name: "read_input", Weight: 3, Depth: 1, Steps: []StepSpec{
				step("keystate_poll", 1, 4), step("ui_message", 1, 2),
			}},
			{Name: "verify_password", Weight: 2, Depth: 2, Steps: []StepSpec{
				step("crypto_random", 1, 1), step("reg_read", 1, 1),
			}},
			{Name: "silent_exit", Weight: 1, Depth: 1, Steps: []StepSpec{
				step("file_delete", 1, 1), step("proc_exit", 1, 1),
			}},
		},
	}
}

// AppProfiles returns the five benign application profiles keyed by the
// short names used in dataset identifiers (winscp, chrome, notepad++,
// putty, vim).
func AppProfiles() map[string]Profile {
	return map[string]Profile{
		"winscp":    WinSCPProfile(),
		"chrome":    ChromeProfile(),
		"notepad++": NotepadPPProfile(),
		"putty":     PuttyProfile(),
		"vim":       VimProfile(),
	}
}

// PayloadProfiles returns the three payload profiles keyed by the short
// names used in dataset identifiers (reverse_tcp, reverse_https,
// codeinject).
func PayloadProfiles() map[string]Profile {
	return map[string]Profile{
		"reverse_tcp":   ReverseTCPProfile(),
		"reverse_https": ReverseHTTPSProfile(),
		"codeinject":    PwddlgProfile(),
	}
}

// AppProfile returns the named application profile.
func AppProfile(name string) (Profile, error) {
	p, ok := AppProfiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("appsim: unknown application profile %q", name)
	}
	return p, nil
}

// PayloadProfile returns the named payload profile.
func PayloadProfile(name string) (Profile, error) {
	p, ok := PayloadProfiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("appsim: unknown payload profile %q", name)
	}
	return p, nil
}
