package appsim

// Background process profiles. A real system event log interleaves many
// processes; the paper's testing phase "perform[s] application slicing on
// the system event log" to isolate the application of interest (§II-B2).
// These profiles synthesise that ambient activity so the raw-log parser's
// slicing is exercised against realistic multi-process files.

// SvchostProfile models a service host: timers, registry reads, occasional
// network beacons to update services — quiet, periodic activity.
func SvchostProfile() Profile {
	return Profile{
		Name: "svchost.exe",
		Ops: []OpSpec{
			{Name: "service_tick", Weight: 5, Depth: 2, Steps: []StepSpec{
				step("reg_read", 1, 2), step("mem_alloc", 1, 1),
			}},
			{Name: "update_poll", Weight: 1, Depth: 3, Steps: []StepSpec{
				step("dns_lookup", 1, 1), step("https_request", 1, 1), step("https_response", 1, 2),
			}},
			{Name: "event_log_write", Weight: 2, Depth: 2, Steps: []StepSpec{
				pstep("file_open", 1, 1, 2), pstep("file_write", 1, 2, 2), pstep("file_close", 1, 1, 2),
			}},
		},
	}
}

// ExplorerProfile models a desktop shell: UI pump, directory listings,
// process launches.
func ExplorerProfile() Profile {
	return Profile{
		Name: "explorer.exe",
		Ops: []OpSpec{
			{Name: "ui_pump", Weight: 5, Depth: 1, Steps: []StepSpec{
				step("ui_message", 2, 6), step("ui_paint", 1, 2),
			}},
			{Name: "list_directory", Weight: 3, Depth: 2, Steps: []StepSpec{
				pstep("file_open", 1, 2, 2), pstep("file_read", 1, 3, 2), pstep("file_close", 1, 2, 2),
			}},
			{Name: "launch_program", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("proc_create", 1, 1), step("image_load", 1, 2),
			}},
			{Name: "shell_settings", Weight: 1, Depth: 2, Steps: []StepSpec{
				step("reg_read", 1, 2), step("reg_write", 1, 1),
			}},
		},
	}
}

// BackgroundProfiles returns the ambient-process profiles in a fixed
// order.
func BackgroundProfiles() []Profile {
	return []Profile{SvchostProfile(), ExplorerProfile()}
}

// NewBackgroundProcess builds a clean process for a background profile.
func NewBackgroundProcess(p Profile) (*Process, error) {
	return NewProcess(p, nil, MethodNone)
}
