package appsim

import (
	"testing"

	"repro/internal/trace"
)

func TestSysTemplatesResolvable(t *testing.T) {
	mods, err := BuildSystemModules()
	if err != nil {
		t.Fatalf("BuildSystemModules: %v", err)
	}
	byName := make(map[string]*trace.Module, len(mods))
	for _, m := range mods {
		byName[m.Name] = m
	}
	for name, tpl := range SysTemplates() {
		if !tpl.Type.Valid() {
			t.Errorf("template %q has invalid event type", name)
		}
		if len(tpl.Variants) == 0 {
			t.Errorf("template %q has no variants", name)
		}
		for vi, variant := range tpl.Variants {
			if len(variant) == 0 {
				t.Errorf("template %q variant %d is empty", name, vi)
			}
			for _, fr := range variant {
				m := byName[fr.Module]
				if m == nil {
					t.Errorf("template %q references unknown module %q", name, fr.Module)
					continue
				}
				found := false
				for _, s := range m.Symbols() {
					if s.Name == fr.Function {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("template %q references unknown function %s!%s", name, fr.Module, fr.Function)
				}
			}
		}
	}
}

func TestBuildSystemModulesDisjoint(t *testing.T) {
	mods, err := BuildSystemModules()
	if err != nil {
		t.Fatalf("BuildSystemModules: %v", err)
	}
	if len(mods) < 10 {
		t.Fatalf("expected a rich module catalog, got %d modules", len(mods))
	}
	// NewModuleMap enforces disjointness; adding a synthetic app module
	// proves the whole catalog coexists in one address space.
	app, err := trace.NewModule("app.exe", trace.ModuleApp, appImageBase, 0x1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.NewModuleMap("app.exe", append([]*trace.Module{app}, mods...)); err != nil {
		t.Fatalf("system modules overlap: %v", err)
	}
}

func TestProfileValidate(t *testing.T) {
	templates := SysTemplates()
	valid := Profile{Name: "x.exe", Ops: []OpSpec{
		{Name: "op", Weight: 1, Depth: 1, Steps: []StepSpec{step("file_read", 1, 2)}},
	}}
	tests := []struct {
		name    string
		mutate  func(*Profile)
		wantErr bool
	}{
		{"valid", func(p *Profile) {}, false},
		{"empty name", func(p *Profile) { p.Name = "" }, true},
		{"no ops", func(p *Profile) { p.Ops = nil }, true},
		{"unnamed op", func(p *Profile) { p.Ops[0].Name = "" }, true},
		{"zero weight", func(p *Profile) { p.Ops[0].Weight = 0 }, true},
		{"negative depth", func(p *Profile) { p.Ops[0].Depth = -1 }, true},
		{"no steps", func(p *Profile) { p.Ops[0].Steps = nil }, true},
		{"unknown template", func(p *Profile) { p.Ops[0].Steps[0].Template = "nope" }, true},
		{"zero min repeat", func(p *Profile) { p.Ops[0].Steps[0].MinRepeat = 0 }, true},
		{"max below min", func(p *Profile) { p.Ops[0].Steps[0].MaxRepeat = 0 }, true},
		{
			"duplicate op",
			func(p *Profile) { p.Ops = append(p.Ops, p.Ops[0]) },
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Profile{Name: valid.Name, Ops: []OpSpec{
				{Name: "op", Weight: 1, Depth: 1, Steps: []StepSpec{step("file_read", 1, 2)}},
			}}
			tt.mutate(&p)
			err := p.Validate(templates)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuiltinProfilesValid(t *testing.T) {
	templates := SysTemplates()
	for name, p := range AppProfiles() {
		if err := p.Validate(templates); err != nil {
			t.Errorf("app profile %q invalid: %v", name, err)
		}
	}
	for name, p := range PayloadProfiles() {
		if err := p.Validate(templates); err != nil {
			t.Errorf("payload profile %q invalid: %v", name, err)
		}
	}
}

func TestProfileLookup(t *testing.T) {
	if _, err := AppProfile("vim"); err != nil {
		t.Errorf("AppProfile(vim): %v", err)
	}
	if _, err := AppProfile("emacs"); err == nil {
		t.Error("AppProfile(emacs) did not fail")
	}
	if _, err := PayloadProfile("reverse_tcp"); err != nil {
		t.Errorf("PayloadProfile(reverse_tcp): %v", err)
	}
	if _, err := PayloadProfile("ransomware"); err == nil {
		t.Error("PayloadProfile(ransomware) did not fail")
	}
}

func TestBuildProgramLayout(t *testing.T) {
	prog, err := BuildProgram(VimProfile(), appImageBase, SysTemplates())
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	if prog.Name() != "vim.exe" {
		t.Errorf("Name() = %q", prog.Name())
	}
	syms := prog.Symbols()
	if len(syms) < 10 {
		t.Fatalf("expected many functions, got %d", len(syms))
	}
	if syms[0].Name != "main" || syms[0].Addr != appImageBase+codeStart {
		t.Errorf("first symbol = %+v, want main at 0x%x", syms[0], appImageBase+codeStart)
	}
	for i := 1; i < len(syms); i++ {
		if syms[i].Addr != syms[i-1].Addr+funcSpacing {
			t.Errorf("symbol %d at 0x%x, want contiguous spacing from 0x%x", i, syms[i].Addr, syms[i-1].Addr)
		}
	}
	if prog.Limit() != syms[len(syms)-1].Addr+funcSpacing {
		t.Errorf("Limit() = 0x%x, want 0x%x", prog.Limit(), syms[len(syms)-1].Addr+funcSpacing)
	}
	if got, want := prog.NumOps(), len(VimProfile().Ops); got != want {
		t.Errorf("NumOps() = %d, want %d", got, want)
	}
	// Every op chain starts at main and is strictly inside the image.
	for _, op := range prog.ops {
		if op.chain[0] != syms[0].Addr {
			t.Errorf("op %q chain does not start at main", op.name)
		}
		if len(op.chain) < 2 {
			t.Errorf("op %q chain too short: %d", op.name, len(op.chain))
		}
		lo, hi := prog.Base(), prog.Limit()
		for _, a := range op.chain {
			if a < lo || a >= hi {
				t.Errorf("op %q chain addr 0x%x outside [0x%x, 0x%x)", op.name, a, lo, hi)
			}
		}
		minE, maxE := op.events()
		if minE < 1 || maxE < minE {
			t.Errorf("op %q event bounds (%d, %d) invalid", op.name, minE, maxE)
		}
	}
}

func TestNewProcessValidation(t *testing.T) {
	payload := ReverseTCPProfile()
	tests := []struct {
		name    string
		payload *Profile
		method  AttackMethod
		wantErr bool
	}{
		{"clean", nil, MethodNone, false},
		{"clean with payload", &payload, MethodNone, true},
		{"offline", &payload, MethodOfflineInfection, false},
		{"offline missing payload", nil, MethodOfflineInfection, true},
		{"online", &payload, MethodOnlineInjection, false},
		{"standalone via NewProcess", &payload, MethodStandalone, true},
		{"bad method", &payload, AttackMethod(99), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewProcess(VimProfile(), tt.payload, tt.method)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewProcess err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestOfflineInfectionLayout(t *testing.T) {
	payload := ReverseTCPProfile()
	p, err := NewProcess(VimProfile(), &payload, MethodOfflineInfection)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	bLo, bHi := p.BenignRange()
	pLo, pHi, ok := p.PayloadRange()
	if !ok {
		t.Fatal("PayloadRange reported no payload")
	}
	if pLo < bHi {
		t.Errorf("payload range [0x%x,0x%x) overlaps benign range [0x%x,0x%x)", pLo, pHi, bLo, bHi)
	}
	// Offline payload stays inside the trojaned image.
	app := p.Modules().AppModule()
	if !app.Contains(pLo) || !app.Contains(pHi-1) {
		t.Errorf("offline payload [0x%x,0x%x) not inside app image [0x%x,0x%x)", pLo, pHi, app.Base, app.End())
	}
	// Payload frames resolve to the app module with synthetic names.
	fr := p.Modules().Resolve(trace.Frame{Addr: pLo})
	if fr.Module != "vim.exe" {
		t.Errorf("payload frame resolved to %q, want vim.exe", fr.Module)
	}
}

func TestOnlineInjectionLayout(t *testing.T) {
	payload := ReverseHTTPSProfile()
	p, err := NewProcess(PuttyProfile(), &payload, MethodOnlineInjection)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	pLo, pHi, ok := p.PayloadRange()
	if !ok {
		t.Fatal("PayloadRange reported no payload")
	}
	// Injected code lives outside every module: frames stay unresolved.
	for _, addr := range []uint64{pLo, (pLo + pHi) / 2} {
		if m := p.Modules().Locate(addr); m != nil {
			t.Errorf("injected addr 0x%x resolved to module %q, want none", addr, m.Name)
		}
	}
}

func TestStandaloneProcess(t *testing.T) {
	p, err := NewStandaloneProcess(ReverseTCPProfile())
	if err != nil {
		t.Fatalf("NewStandaloneProcess: %v", err)
	}
	if p.Modules().AppName() != "reverse_tcp" {
		t.Errorf("AppName() = %q", p.Modules().AppName())
	}
	if _, _, ok := p.PayloadRange(); ok {
		t.Error("standalone process reports a separate payload range")
	}
	log, err := p.GenerateLog(GenConfig{Seed: 1, Events: 200, PID: 7})
	if err != nil {
		t.Fatalf("GenerateLog: %v", err)
	}
	if log.Len() < 200 {
		t.Errorf("log has %d events, want >= 200", log.Len())
	}
}

func TestGenerateLogDeterministic(t *testing.T) {
	payload := ReverseTCPProfile()
	p, err := NewProcess(WinSCPProfile(), &payload, MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GenConfig{Seed: 42, Events: 500, PayloadFraction: 0.4, PID: 3}
	a, err := p.GenerateLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.GenerateLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Type != eb.Type || ea.TID != eb.TID || len(ea.Stack) != len(eb.Stack) {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
		for j := range ea.Stack {
			if ea.Stack[j] != eb.Stack[j] {
				t.Fatalf("event %d frame %d differs", i, j)
			}
		}
	}
	// Different seeds should diverge.
	c, err := p.GenerateLog(GenConfig{Seed: 43, Events: 500, PayloadFraction: 0.4, PID: 3})
	if err != nil {
		t.Fatal(err)
	}
	same := a.Len() == c.Len()
	if same {
		for i := range a.Events {
			if a.Events[i].Type != c.Events[i].Type {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical logs")
	}
}

func TestGenerateLogValidation(t *testing.T) {
	clean, err := NewProcess(VimProfile(), nil, MethodNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.GenerateLog(GenConfig{Seed: 1, Events: 0}); err == nil {
		t.Error("Events=0 accepted")
	}
	if _, err := clean.GenerateLog(GenConfig{Seed: 1, Events: 10, PayloadFraction: 0.5}); err == nil {
		t.Error("PayloadFraction on clean process accepted")
	}
	if _, err := clean.GenerateLog(GenConfig{Seed: 1, Events: 10, PayloadFraction: -1}); err == nil {
		t.Error("negative PayloadFraction accepted")
	}
	if _, err := clean.GenerateLog(GenConfig{Seed: 1, Events: 10, ExcludeOps: []string{"nope"}}); err == nil {
		t.Error("unknown ExcludeOps accepted")
	}
	all := VimProfile()
	names := make([]string, len(all.Ops))
	for i, op := range all.Ops {
		names[i] = op.Name
	}
	if _, err := clean.GenerateLog(GenConfig{Seed: 1, Events: 10, ExcludeOps: names}); err == nil {
		t.Error("excluding every op accepted")
	}
}

func TestGenerateLogExcludeOps(t *testing.T) {
	clean, err := NewProcess(VimProfile(), nil, MethodNone)
	if err != nil {
		t.Fatal(err)
	}
	log, err := clean.GenerateLog(GenConfig{Seed: 7, Events: 800, ExcludeOps: []string{"open_buffer"}})
	if err != nil {
		t.Fatal(err)
	}
	// The excluded op's dispatch function must never appear in any stack.
	var dispatch uint64
	for _, s := range clean.App().Symbols() {
		if s.Name == "dispatch_open_buffer" {
			dispatch = s.Addr
		}
	}
	if dispatch == 0 {
		t.Fatal("dispatch_open_buffer symbol not found")
	}
	for _, e := range log.Events {
		for _, f := range e.Stack {
			if f.Addr == dispatch {
				t.Fatalf("excluded op appeared in event %d", e.Seq)
			}
		}
	}
}

func TestGenerateLogMixedComposition(t *testing.T) {
	payload := ReverseTCPProfile()
	p, err := NewProcess(WinSCPProfile(), &payload, MethodOnlineInjection)
	if err != nil {
		t.Fatal(err)
	}
	log, err := p.GenerateLog(GenConfig{Seed: 11, Events: 4000, PayloadFraction: 0.4, PID: 5})
	if err != nil {
		t.Fatal(err)
	}
	var payloadEvents, benignEvents int
	for _, e := range log.Events {
		switch e.TID {
		case payloadTID:
			payloadEvents++
		case benignTID:
			benignEvents++
		default:
			t.Fatalf("event %d on unexpected thread %d", e.Seq, e.TID)
		}
	}
	// The op-level payload share is 0.4, but payload operations emit
	// fewer events per instance than the host's transfer operations, so
	// the event-level share sits below it.
	frac := float64(payloadEvents) / float64(payloadEvents+benignEvents)
	if frac < 0.18 || frac > 0.55 {
		t.Errorf("payload event fraction = %.2f, want in [0.18, 0.55]", frac)
	}
	// Timestamps must be strictly increasing.
	for i := 1; i < log.Len(); i++ {
		if !log.Events[i].Time.After(log.Events[i-1].Time) {
			t.Fatalf("timestamps not increasing at event %d", i)
		}
	}
	// Every payload-thread event's application-side frames are unresolved
	// (online injection) while benign-thread stacks resolve to the app.
	pLo, pHi, _ := p.PayloadRange()
	for _, e := range log.Events {
		top := e.Stack[0]
		if e.TID == payloadTID {
			if top.Addr < pLo || top.Addr >= pHi {
				t.Fatalf("payload event %d rooted at 0x%x outside payload range", e.Seq, top.Addr)
			}
		} else if top.Module != "winscp.exe" {
			t.Fatalf("benign event %d rooted in %q", e.Seq, top.Module)
		}
	}
}

func TestAttackMethodString(t *testing.T) {
	tests := []struct {
		m    AttackMethod
		want string
	}{
		{MethodNone, "none"},
		{MethodOfflineInfection, "offline-infection"},
		{MethodOnlineInjection, "online-injection"},
		{MethodStandalone, "standalone"},
		{AttackMethod(42), "AttackMethod(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}
