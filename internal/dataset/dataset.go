// Package dataset defines the paper's 21 evaluation datasets (Table I):
// every combination of application, payload and attack method the paper
// measures, with the generation protocol that produces each dataset's
// three subsets — pure benign samples, mixed samples and pure malicious
// samples (the recompiled-payload ground truth).
package dataset

import (
	"fmt"

	"repro/internal/appsim"
	"repro/internal/trace"
)

// Spec identifies one dataset and its generation parameters.
type Spec struct {
	// Name is the dataset identifier, e.g. "winscp_reverse_tcp" or
	// "putty_reverse_https_online".
	Name string
	// App and Payload are profile keys (appsim.AppProfile /
	// appsim.PayloadProfile).
	App     string
	Payload string
	// Method is the attack method: offline infection or online injection.
	Method appsim.AttackMethod
	// BenignEvents, MixedEvents and MaliciousEvents size the three logs.
	BenignEvents    int
	MixedEvents     int
	MaliciousEvents int
	// PayloadFraction is the payload activity share of the mixed log.
	PayloadFraction float64
	// HoldoutOps are benign operations withheld from the pure benign log
	// so the benign CFG is incomplete relative to the mixed log (§III-B).
	HoldoutOps []string
	// MixedHoldoutOps are benign operations withheld from the mixed log:
	// real benign and infected sessions exercise different functionality
	// subsets, which is what gives the benign call graph edges the mixed
	// call graph lacks (without this the CGraph baseline could never
	// classify anything benign).
	MixedHoldoutOps []string
}

// Display strings for Table I.
func (s Spec) AttackMethodLabel() string {
	if s.Method == appsim.MethodOnlineInjection {
		return "Online Injection"
	}
	return "Offline Infection"
}

// Default log sizes: large enough for a few hundred windows per subset.
const (
	defaultBenignEvents    = 6000
	defaultMixedEvents     = 6000
	defaultMaliciousEvents = 3000
	defaultPayloadFraction = 0.55
)

// holdouts lists, per application, the benign operation withheld from the
// pure benign log (low-weight functionality the controlled benign run
// plausibly never exercised).
var holdouts = map[string][]string{
	"winscp":    {"sync_dirs"},
	"chrome":    {"extension_sync"},
	"notepad++": {"plugin_update_check"},
	"putty":     {"rekey"},
	"vim":       {"read_vimrc"},
}

// mixedHoldouts lists, per application, the benign operations the infected
// session never exercised. They are chosen to carry system behaviour
// (registry writes, dialogs, process spawns) that no other operation of
// the app — and no payload — produces, so their call-graph edges are
// exclusive to the benign model.
var mixedHoldouts = map[string][]string{
	"winscp":    {"edit_prefs", "local_browse"},
	"chrome":    {"history_update", "cache_read"},
	"notepad++": {"session_save", "find_in_files"},
	"putty":     {"save_session", "log_output"},
	"vim":       {"shell_filter", "swap_sync"},
}

// payloadDisplay maps payload keys to the Table I payload column.
var payloadDisplay = map[string]string{
	"reverse_tcp":   "Reverse TCP Shell",
	"reverse_https": "Reverse HTTPS Shell",
	"codeinject":    "Pwddlg",
}

// appDisplay maps app keys to the Table I application column.
var appDisplay = map[string]string{
	"winscp":    "WinSCP",
	"chrome":    "Chrome",
	"notepad++": "Notepad++",
	"putty":     "Putty",
	"vim":       "Vim",
}

// AppLabel returns the Table I application name.
func (s Spec) AppLabel() string { return appDisplay[s.App] }

// PayloadLabel returns the Table I payload name.
func (s Spec) PayloadLabel() string { return payloadDisplay[s.Payload] }

func spec(app, payload string, method appsim.AttackMethod) Spec {
	name := fmt.Sprintf("%s_%s", app, payload)
	if payload == "codeinject" {
		name = fmt.Sprintf("%s_codeinject", app)
	}
	if method == appsim.MethodOnlineInjection {
		name += "_online"
	}
	return Spec{
		Name:            name,
		App:             app,
		Payload:         payload,
		Method:          method,
		BenignEvents:    defaultBenignEvents,
		MixedEvents:     defaultMixedEvents,
		MaliciousEvents: defaultMaliciousEvents,
		PayloadFraction: defaultPayloadFraction,
		HoldoutOps:      holdouts[app],
		MixedHoldoutOps: mixedHoldouts[app],
	}
}

// Table1Specs returns the 21 datasets of Table I in the paper's row order:
// 13 offline-infection datasets followed by 8 online-injection datasets.
func Table1Specs() []Spec {
	offline := appsim.MethodOfflineInfection
	online := appsim.MethodOnlineInjection
	return []Spec{
		spec("winscp", "reverse_tcp", offline),
		spec("winscp", "reverse_https", offline),
		spec("chrome", "reverse_tcp", offline),
		spec("chrome", "reverse_https", offline),
		spec("notepad++", "reverse_tcp", offline),
		spec("notepad++", "reverse_https", offline),
		spec("putty", "reverse_tcp", offline),
		spec("putty", "reverse_https", offline),
		spec("vim", "reverse_tcp", offline),
		spec("vim", "reverse_https", offline),
		spec("vim", "codeinject", offline),
		spec("notepad++", "codeinject", offline),
		spec("putty", "codeinject", offline),
		spec("putty", "reverse_tcp", online),
		spec("putty", "reverse_https", online),
		spec("notepad++", "reverse_tcp", online),
		spec("notepad++", "reverse_https", online),
		spec("vim", "reverse_tcp", online),
		spec("vim", "reverse_https", online),
		spec("winscp", "reverse_tcp", online),
		spec("winscp", "reverse_https", online),
	}
}

// OfflineSpecs returns the 13 offline-infection datasets (Figure 6).
func OfflineSpecs() []Spec {
	all := Table1Specs()
	return all[:13]
}

// OnlineSpecs returns the 8 online-injection datasets (Figure 7).
func OnlineSpecs() []Spec {
	all := Table1Specs()
	return all[13:]
}

// ByName returns the named dataset spec.
func ByName(name string) (Spec, error) {
	for _, s := range Table1Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Names lists all dataset names in Table I order.
func Names() []string {
	specs := Table1Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// SourceTrojanVariant returns the named dataset converted to the paper's
// §VI-A source-level trojan scenario: the payload is compiled into the
// application from source, shifting every benign function relative to the
// clean build. Only offline-infection datasets have a source-trojan
// variant.
func SourceTrojanVariant(name string) (Spec, error) {
	s, err := ByName(name)
	if err != nil {
		return Spec{}, err
	}
	if s.Method != appsim.MethodOfflineInfection {
		return Spec{}, fmt.Errorf("dataset: %s is not an offline-infection dataset", name)
	}
	s.Method = appsim.MethodSourceTrojan
	s.Name += "_srctrojan"
	return s, nil
}

// Logs is one generated dataset: the three raw logs ready for the
// pipeline.
type Logs struct {
	Spec      Spec
	Benign    *trace.Log
	Mixed     *trace.Log
	Malicious *trace.Log
	// Victim is the attacked process (exposes the payload address range
	// for diagnostics); Clean is the uninfected process that produced the
	// benign log.
	Victim *appsim.Process
	Clean  *appsim.Process
}

// Generate synthesises the dataset's three logs deterministically from
// the seed.
func (s Spec) Generate(seed int64) (*Logs, error) {
	app, err := appsim.AppProfile(s.App)
	if err != nil {
		return nil, err
	}
	payload, err := appsim.PayloadProfile(s.Payload)
	if err != nil {
		return nil, err
	}
	clean, err := appsim.NewProcess(app, nil, appsim.MethodNone)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", s.Name, err)
	}
	victim, err := appsim.NewProcess(app, &payload, s.Method)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", s.Name, err)
	}
	standalone, err := appsim.NewStandaloneProcess(payload)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", s.Name, err)
	}

	out := &Logs{Spec: s, Victim: victim, Clean: clean}
	if out.Benign, err = clean.GenerateLog(appsim.GenConfig{
		Seed: seed, Events: s.BenignEvents, ExcludeOps: s.HoldoutOps, PID: 100,
	}); err != nil {
		return nil, fmt.Errorf("dataset %s: benign log: %w", s.Name, err)
	}
	if out.Mixed, err = victim.GenerateLog(appsim.GenConfig{
		Seed: seed + 1, Events: s.MixedEvents, PayloadFraction: s.PayloadFraction,
		ExcludeOps: s.MixedHoldoutOps, MaxBurst: 3, PID: 200,
	}); err != nil {
		return nil, fmt.Errorf("dataset %s: mixed log: %w", s.Name, err)
	}
	if out.Malicious, err = standalone.GenerateLog(appsim.GenConfig{
		Seed: seed + 2, Events: s.MaliciousEvents, PID: 300,
	}); err != nil {
		return nil, fmt.Errorf("dataset %s: malicious log: %w", s.Name, err)
	}
	return out, nil
}

// SystemLogs bundles a dataset's logs with ambient background-process
// activity, modelling the full system event log the paper's testing phase
// slices per application (§II-B2). Background holds one clean log per
// profile in appsim.BackgroundProfiles order, sized relative to the
// dataset's logs and sharing their time base so a raw file interleaves
// realistically.
type SystemLogs struct {
	*Logs
	Background []*trace.Log
}

// GenerateSystem is Generate plus background processes.
func (s Spec) GenerateSystem(seed int64) (*SystemLogs, error) {
	logs, err := s.Generate(seed)
	if err != nil {
		return nil, err
	}
	out := &SystemLogs{Logs: logs}
	for i, prof := range appsim.BackgroundProfiles() {
		proc, err := appsim.NewBackgroundProcess(prof)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: background %s: %w", s.Name, prof.Name, err)
		}
		log, err := proc.GenerateLog(appsim.GenConfig{
			Seed:   seed + 100 + int64(i),
			Events: s.BenignEvents / 2,
			PID:    400 + i,
		})
		if err != nil {
			return nil, fmt.Errorf("dataset %s: background %s: %w", s.Name, prof.Name, err)
		}
		out.Background = append(out.Background, log)
	}
	return out, nil
}
