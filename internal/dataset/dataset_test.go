package dataset

import (
	"strings"
	"testing"

	"repro/internal/appsim"
)

func TestTable1SpecsShape(t *testing.T) {
	specs := Table1Specs()
	if len(specs) != 21 {
		t.Fatalf("Table1Specs() = %d datasets, want 21", len(specs))
	}
	var offline, online int
	seen := make(map[string]bool)
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate dataset name %q", s.Name)
		}
		seen[s.Name] = true
		switch s.Method {
		case appsim.MethodOfflineInfection:
			offline++
			if strings.HasSuffix(s.Name, "_online") {
				t.Errorf("offline dataset %q has _online suffix", s.Name)
			}
		case appsim.MethodOnlineInjection:
			online++
			if !strings.HasSuffix(s.Name, "_online") {
				t.Errorf("online dataset %q missing _online suffix", s.Name)
			}
		default:
			t.Errorf("dataset %q has method %v", s.Name, s.Method)
		}
		if s.BenignEvents <= 0 || s.MixedEvents <= 0 || s.MaliciousEvents <= 0 {
			t.Errorf("dataset %q has non-positive log sizes", s.Name)
		}
		if s.PayloadFraction <= 0 || s.PayloadFraction >= 1 {
			t.Errorf("dataset %q payload fraction %v", s.Name, s.PayloadFraction)
		}
		if s.AppLabel() == "" || s.PayloadLabel() == "" {
			t.Errorf("dataset %q missing display labels", s.Name)
		}
	}
	if offline != 13 || online != 8 {
		t.Errorf("method split = (%d offline, %d online), want (13, 8)", offline, online)
	}
	if got := len(OfflineSpecs()); got != 13 {
		t.Errorf("OfflineSpecs() = %d", got)
	}
	if got := len(OnlineSpecs()); got != 8 {
		t.Errorf("OnlineSpecs() = %d", got)
	}
}

func TestSpecProfilesResolve(t *testing.T) {
	for _, s := range Table1Specs() {
		if _, err := appsim.AppProfile(s.App); err != nil {
			t.Errorf("dataset %q: %v", s.Name, err)
		}
		if _, err := appsim.PayloadProfile(s.Payload); err != nil {
			t.Errorf("dataset %q: %v", s.Name, err)
		}
		// Holdouts must name real operations of the app.
		app, _ := appsim.AppProfile(s.App)
		opNames := make(map[string]bool, len(app.Ops))
		for _, op := range app.Ops {
			opNames[op.Name] = true
		}
		for _, h := range append(append([]string{}, s.HoldoutOps...), s.MixedHoldoutOps...) {
			if !opNames[h] {
				t.Errorf("dataset %q holdout %q is not an operation of %s", s.Name, h, s.App)
			}
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("vim_codeinject")
	if err != nil {
		t.Fatal(err)
	}
	if s.App != "vim" || s.Payload != "codeinject" || s.Method != appsim.MethodOfflineInfection {
		t.Errorf("vim_codeinject = %+v", s)
	}
	if _, err := ByName("no_such_dataset"); err == nil {
		t.Error("ByName(no_such_dataset) succeeded")
	}
	if got := len(Names()); got != 21 {
		t.Errorf("Names() = %d entries", got)
	}
}

func TestAttackMethodLabel(t *testing.T) {
	off, _ := ByName("winscp_reverse_tcp")
	on, _ := ByName("winscp_reverse_tcp_online")
	if off.AttackMethodLabel() != "Offline Infection" {
		t.Errorf("offline label = %q", off.AttackMethodLabel())
	}
	if on.AttackMethodLabel() != "Online Injection" {
		t.Errorf("online label = %q", on.AttackMethodLabel())
	}
}

func TestGenerate(t *testing.T) {
	spec, err := ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	logs, err := spec.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	if logs.Benign.Len() < spec.BenignEvents {
		t.Errorf("benign log %d events, want >= %d", logs.Benign.Len(), spec.BenignEvents)
	}
	if logs.Mixed.Len() < spec.MixedEvents {
		t.Errorf("mixed log %d events, want >= %d", logs.Mixed.Len(), spec.MixedEvents)
	}
	if logs.Malicious.Len() < spec.MaliciousEvents {
		t.Errorf("malicious log %d events, want >= %d", logs.Malicious.Len(), spec.MaliciousEvents)
	}
	// Identities.
	if logs.Benign.App != "vim.exe" || logs.Mixed.App != "vim.exe" {
		t.Error("app logs misattributed")
	}
	if logs.Malicious.App != "reverse_tcp" {
		t.Errorf("malicious log app = %q", logs.Malicious.App)
	}
	// The benign log must not contain the holdout op; the mixed log must
	// not contain the mixed holdouts (checked indirectly: holdout
	// dispatch symbols never appear in stacks).
	for _, h := range spec.HoldoutOps {
		assertOpAbsent(t, logs, "benign", h, true)
	}
	for _, h := range spec.MixedHoldoutOps {
		assertOpAbsent(t, logs, "mixed", h, false)
	}
}

func assertOpAbsent(t *testing.T, logs *Logs, which, op string, benign bool) {
	t.Helper()
	var dispatch uint64
	for _, sym := range logs.Clean.App().Symbols() {
		if sym.Name == "dispatch_"+op {
			dispatch = sym.Addr
		}
	}
	if dispatch == 0 {
		t.Fatalf("dispatch_%s not found", op)
	}
	log := logs.Mixed
	if benign {
		log = logs.Benign
	}
	for _, e := range log.Events {
		for _, f := range e.Stack {
			if f.Addr == dispatch {
				t.Fatalf("op %q present in %s log", op, which)
				return
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByName("putty_reverse_https")
	a, err := spec.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Benign.Len() != b.Benign.Len() || a.Mixed.Len() != b.Mixed.Len() {
		t.Fatal("same seed produced different logs")
	}
	for i := range a.Mixed.Events {
		if a.Mixed.Events[i].Type != b.Mixed.Events[i].Type {
			t.Fatal("same seed produced different mixed events")
		}
	}
}

func TestGenerateMethodLayout(t *testing.T) {
	offline, _ := ByName("vim_reverse_tcp")
	logsOff, err := offline.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	lo, _, ok := logsOff.Victim.PayloadRange()
	if !ok {
		t.Fatal("offline victim has no payload range")
	}
	if logsOff.Victim.Modules().Locate(lo) == nil {
		t.Error("offline payload outside the trojaned image")
	}

	online, _ := ByName("vim_reverse_tcp_online")
	logsOn, err := online.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	lo, _, ok = logsOn.Victim.PayloadRange()
	if !ok {
		t.Fatal("online victim has no payload range")
	}
	if logsOn.Victim.Modules().Locate(lo) != nil {
		t.Error("online payload inside a module")
	}
}

func TestSourceTrojanVariant(t *testing.T) {
	s, err := SourceTrojanVariant("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	if s.Method != appsim.MethodSourceTrojan || s.Name != "vim_reverse_tcp_srctrojan" {
		t.Errorf("variant = %+v", s)
	}
	logs, err := s.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	// The trojaned build's benign code is shifted relative to the clean
	// build: same symbol, different address.
	cleanMain := symbolAddr(t, logs.Clean, "main")
	trojanMain := symbolAddr(t, logs.Victim, "main")
	if cleanMain == trojanMain {
		t.Error("source trojan did not shift benign code")
	}
	// Online datasets have no source-trojan variant.
	if _, err := SourceTrojanVariant("vim_reverse_tcp_online"); err == nil {
		t.Error("online variant accepted")
	}
	if _, err := SourceTrojanVariant("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func symbolAddr(t *testing.T, p *appsim.Process, name string) uint64 {
	t.Helper()
	for _, s := range p.App().Symbols() {
		if s.Name == name {
			return s.Addr
		}
	}
	t.Fatalf("symbol %q not found", name)
	return 0
}

func TestGenerateSystem(t *testing.T) {
	spec, err := ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 2000, 1000
	sys, err := spec.GenerateSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Background) != len(appsim.BackgroundProfiles()) {
		t.Fatalf("background logs = %d", len(sys.Background))
	}
	apps := map[string]bool{}
	pids := map[int]bool{sys.Benign.PID: true, sys.Mixed.PID: true, sys.Malicious.PID: true}
	for _, b := range sys.Background {
		if b.Len() == 0 {
			t.Error("empty background log")
		}
		if apps[b.App] {
			t.Errorf("duplicate background app %q", b.App)
		}
		apps[b.App] = true
		if pids[b.PID] {
			t.Errorf("background pid %d collides", b.PID)
		}
		pids[b.PID] = true
	}
	if !apps["svchost.exe"] || !apps["explorer.exe"] {
		t.Errorf("background apps = %v", apps)
	}
}
