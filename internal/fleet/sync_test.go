package fleet

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/registry"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestSyncOnceMirrorsPrimary: one round against a primary with two
// committed entries and a promoted pointer leaves the replica holding
// byte-identical bundles, a verbatim pointer (same entry, same
// generation), and fires the hot-reload hook exactly once; a second
// round is a generation-matched no-op.
func TestSyncOnceMirrorsPrimary(t *testing.T) {
	primary, champ := newPrimary(t)
	chall := publishChallenger(t, primary)
	if _, err := primary.Promote(chall.ID, "test"); err != nil {
		t.Fatal(err)
	}
	replica := newReplicaStore(t, "replica")

	advances := 0
	y := &Syncer{
		Source:  primary,
		Replica: replica,
		Logger:  discardLogger(),
		OnAdvance: func(ptr registry.Pointer) error {
			advances++
			if ptr.ID != chall.ID {
				t.Errorf("OnAdvance pointer at %s, want %s", ptr.ID, chall.ID)
			}
			return nil
		},
	}
	if err := y.SyncOnce(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	for _, man := range []registry.Manifest{champ, chall} {
		got := readBundle(t, replica, man.ID)
		want := readBundle(t, primary, man.ID)
		if !bytes.Equal(got, want) {
			t.Errorf("entry %s differs between replica and primary", man.ID)
		}
		rman, err := replica.Get(man.ID)
		if err != nil {
			t.Fatalf("replica manifest %s: %v", man.ID, err)
		}
		if rman.SHA256 != man.SHA256 {
			t.Errorf("entry %s manifest hash %s, want %s", man.ID, rman.SHA256, man.SHA256)
		}
	}
	pptr, _, err := primary.Current()
	if err != nil {
		t.Fatal(err)
	}
	rptr, ok, err := replica.Current()
	if err != nil || !ok {
		t.Fatalf("replica pointer: ok=%v err=%v", ok, err)
	}
	if rptr.ID != pptr.ID || rptr.Generation != pptr.Generation {
		t.Fatalf("replica pointer %s gen %d, want %s gen %d", rptr.ID, rptr.Generation, pptr.ID, pptr.Generation)
	}
	if advances != 1 {
		t.Errorf("OnAdvance fired %d times, want 1", advances)
	}

	if err := y.SyncOnce(); err != nil {
		t.Fatalf("steady-state sync: %v", err)
	}
	if advances != 1 {
		t.Errorf("OnAdvance fired on a generation-matched no-op round")
	}
	st := y.Status()
	if !st.Synced || st.Rounds != 2 || st.Failures != 0 || st.Entries != 2 || st.Generation != pptr.Generation {
		t.Errorf("status %+v, want synced 2 rounds 0 failures 2 entries gen %d", st, pptr.Generation)
	}
}

// flakySource fails OpenBundle until repaired — a primary whose entry
// fetches error mid-transfer.
type flakySource struct {
	*registry.Store
	broken bool
}

func (f *flakySource) OpenBundle(id string) (io.ReadCloser, error) {
	if f.broken {
		return nil, errors.New("synthetic transfer failure")
	}
	return f.Store.OpenBundle(id)
}

// TestSyncFailStatic: a failed round changes nothing on the replica —
// no pointer movement, no hook — and the next clean round converges.
func TestSyncFailStatic(t *testing.T) {
	primary, champ := newPrimary(t)
	replica := newReplicaStore(t, "replica")
	src := &flakySource{Store: primary, broken: true}
	advances := 0
	y := &Syncer{
		Source: src, Replica: replica, Logger: discardLogger(),
		OnAdvance: func(registry.Pointer) error { advances++; return nil },
	}

	err := y.SyncOnce()
	if err == nil || !strings.Contains(err.Error(), "synthetic transfer failure") {
		t.Fatalf("broken-source sync err %v, want the transfer failure", err)
	}
	if _, ok, _ := replica.Current(); ok {
		t.Error("failed round left a pointer on the replica")
	}
	if advances != 0 {
		t.Error("failed round fired OnAdvance")
	}
	st := y.Status()
	if st.Synced || st.Failures != 1 || st.LastError == "" {
		t.Errorf("status after failure %+v, want unsynced with recorded error", st)
	}

	src.broken = false
	if err := y.SyncOnce(); err != nil {
		t.Fatalf("repaired sync: %v", err)
	}
	if ptr, ok, _ := replica.Current(); !ok || ptr.ID != champ.ID {
		t.Fatalf("replica pointer %+v ok=%v, want champion %s", ptr, ok, champ.ID)
	}
	if st := y.Status(); !st.Synced || st.LastError != "" {
		t.Errorf("status after recovery %+v, want synced with cleared error", st)
	}
}

// crashDuring runs fn with the given crash point armed and asserts the
// crash fired there, returning after recovery. This is the simulated
// power-cut: whatever fn's writes left on disk is what a restarted
// process would see.
func crashDuring(t *testing.T, point string, fn func() error) {
	t.Helper()
	t.Cleanup(faultinject.Reset)
	faultinject.ArmCrash(point)
	var crash *faultinject.CrashPanic
	func() {
		defer func() { crash = faultinject.Recover(recover()) }()
		_ = fn()
	}()
	faultinject.Reset()
	if crash == nil || crash.Point != point {
		t.Fatalf("crash = %v, want a crash at %s", crash, point)
	}
}

// TestSyncCrashSafety covers the replication crash matrix: a sync round
// killed mid-entry-fetch or mid-pointer-swap must never leave the
// replica exposing a partial entry or a pointer at an entry it does not
// hold, and a fresh round after restart must converge fully.
func TestSyncCrashSafety(t *testing.T) {
	points := []struct {
		name  string
		point string
	}{
		{"before entry fetch", "fleet/sync/fetch"},
		{"between bundle and manifest", "registry/import/manifest"},
		{"before pointer swap", "fleet/sync/pointer"},
		{"mid pointer mirror", "registry/setcurrent/mirror"},
	}
	for _, tc := range points {
		t.Run(tc.name, func(t *testing.T) {
			primary, champ := newPrimary(t)
			replica := newReplicaStore(t, "replica")
			y := &Syncer{Source: primary, Replica: replica, Logger: discardLogger()}

			crashDuring(t, tc.point, y.SyncOnce)

			// Invariant 1: no partial entry is visible. Every listed entry
			// must be fully committed (manifest present, bundle readable and
			// hash-complete).
			mans, err := replica.List()
			if err != nil {
				t.Fatalf("replica list after crash: %v", err)
			}
			for _, man := range mans {
				if got := readBundle(t, replica, man.ID); !bytes.Equal(got, readBundle(t, primary, man.ID)) {
					t.Errorf("entry %s visible but partial after crash at %s", man.ID, tc.point)
				}
			}
			// Invariant 2: no dangling pointer. If a pointer exists, its
			// entry must be fully present locally.
			if ptr, ok, _ := replica.Current(); ok {
				if _, err := replica.Get(ptr.ID); err != nil {
					t.Errorf("pointer at %s dangles after crash at %s: %v", ptr.ID, tc.point, err)
				}
			}

			// Restart: a fresh round converges to the primary.
			if err := y.SyncOnce(); err != nil {
				t.Fatalf("post-crash sync: %v", err)
			}
			ptr, ok, err := replica.Current()
			if err != nil || !ok || ptr.ID != champ.ID {
				t.Fatalf("post-crash pointer %+v ok=%v err=%v, want %s", ptr, ok, err, champ.ID)
			}
			if got := readBundle(t, replica, champ.ID); !bytes.Equal(got, readBundle(t, primary, champ.ID)) {
				t.Error("post-crash replica bundle differs from primary")
			}
		})
	}
}

// TestSyncerIsSourceCompatible: a replica store itself satisfies
// SyncSource, so replicas can chain (primary -> replica -> edge).
func TestSyncerIsSourceCompatible(t *testing.T) {
	primary, champ := newPrimary(t)
	mid := newReplicaStore(t, "mid")
	edge := newReplicaStore(t, "edge")
	if err := (&Syncer{Source: primary, Replica: mid, Logger: discardLogger()}).SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if err := (&Syncer{Source: mid, Replica: edge, Logger: discardLogger()}).SyncOnce(); err != nil {
		t.Fatal(err)
	}
	ptr, ok, err := edge.Current()
	if err != nil || !ok || ptr.ID != champ.ID {
		t.Fatalf("edge pointer %+v ok=%v err=%v, want %s via two hops", ptr, ok, err, champ.ID)
	}
	if ptr.Generation != 1 {
		t.Errorf("edge generation %d, want the primary's 1 mirrored verbatim", ptr.Generation)
	}
}
