package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// MemberStatus is one replica's row in the fleet status report.
type MemberStatus struct {
	ID       string `json:"id"`
	InRing   bool   `json:"in_ring"`
	Healthy  bool   `json:"healthy"`
	Sessions int    `json:"sessions"`
}

// FleetStatus is the GET /v1/fleet report: ring generation, membership
// and session placement counts.
type FleetStatus struct {
	Generation int64          `json:"generation"`
	Sessions   int            `json:"sessions"`
	Members    []MemberStatus `json:"members"`
}

// Status snapshots the fleet: who is in the ring, who is healthy, and
// how many routed sessions each member holds.
func (rt *Router) Status() FleetStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	counts := make(map[string]int, len(rt.members))
	for _, mid := range rt.table {
		counts[mid]++
	}
	st := FleetStatus{Generation: rt.ring.Generation(), Sessions: len(rt.table)}
	ids := make([]string, 0, len(rt.members))
	for id := range rt.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ms := rt.members[id]
		st.Members = append(st.Members, MemberStatus{
			ID:       id,
			InRing:   ms.inRing,
			Healthy:  ms.healthy,
			Sessions: counts[id],
		})
	}
	return st
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Status())
}

// handleReady reports ready while at least one in-ring member is
// healthy — the fleet can place sessions somewhere.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	ready := false
	for _, ms := range rt.members {
		if ms.inRing && ms.healthy {
			ready = true
			break
		}
	}
	rt.mu.Unlock()
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "no healthy in-ring replicas")
		return
	}
	fmt.Fprintln(w, "ready")
}

// ringChange is the POST /v1/fleet/{drain,join} request and response
// body: which member, and (in the response) how the ring moved.
type ringChange struct {
	Member     string `json:"member"`
	Moved      int    `json:"moved,omitempty"`
	Generation int64  `json:"generation,omitempty"`
}

func (rt *Router) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	var req ringChange
	if err := readBody(w, r, rt.cfg.MaxBodyBytes, &req); err != nil {
		return
	}
	moved, err := rt.DrainMember(r.Context(), req.Member)
	if err != nil {
		writeError(w, http.StatusConflict, "draining %s: %v", req.Member, err)
		return
	}
	rt.mu.Lock()
	gen := rt.ring.Generation()
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, ringChange{Member: req.Member, Moved: moved, Generation: gen})
}

func (rt *Router) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	var req ringChange
	if err := readBody(w, r, rt.cfg.MaxBodyBytes, &req); err != nil {
		return
	}
	moved, err := rt.JoinMember(r.Context(), req.Member)
	if err != nil {
		writeError(w, http.StatusConflict, "joining %s: %v", req.Member, err)
		return
	}
	rt.mu.Lock()
	gen := rt.ring.Generation()
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, ringChange{Member: req.Member, Moved: moved, Generation: gen})
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return err
	}
	return nil
}

// DrainMember takes a member out of the ring and moves every session it
// owns to the session's new ring owner by checkpoint handoff, then puts
// the member into drain mode. The order matters: the ring changes first
// so new placements already avoid the loser, sessions move while the
// loser still accepts traffic (a failed import can fall back to it), and
// the drain flag lands last. Returns the number of sessions moved.
func (rt *Router) DrainMember(ctx context.Context, id string) (int, error) {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()

	rt.mu.Lock()
	ms, ok := rt.members[id]
	if !ok {
		rt.mu.Unlock()
		return 0, fmt.Errorf("fleet: unknown member %q", id)
	}
	if !ms.inRing {
		rt.mu.Unlock()
		return 0, fmt.Errorf("fleet: member %q already drained", id)
	}
	inRing := 0
	for _, m := range rt.members {
		if m.inRing {
			inRing++
		}
	}
	if inRing == 1 {
		rt.mu.Unlock()
		return 0, fmt.Errorf("fleet: refusing to drain the last ring member %q", id)
	}
	if err := rt.ring.Remove(id); err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	ms.inRing = false
	gen := rt.ring.Generation()
	rt.mu.Unlock()
	mRingGeneration.Set(float64(gen))

	moved, err := rt.rebalance(ctx, gen)

	// Drain the loser last: its own sessions have moved (or are pinned
	// to it by a failed handoff, in which case drain still lets them
	// keep scoring in place).
	if status, derr := rt.originate(ctx, ms, http.MethodPost, "/v1/drain", nil, nil); derr != nil || status >= 300 {
		if err == nil {
			err = fmt.Errorf("fleet: drain request to %s: status %d, %v", id, status, derr)
		}
	}
	rt.cfg.Logger.Info("member drained", "member", id, "moved", moved, "ring_gen", gen, "error", err)
	return moved, err
}

// JoinMember returns a drained member to the ring, lifts its drain flag,
// and moves every session whose ring owner changed onto it. Returns the
// number of sessions moved.
func (rt *Router) JoinMember(ctx context.Context, id string) (int, error) {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()

	rt.mu.Lock()
	ms, ok := rt.members[id]
	if !ok {
		rt.mu.Unlock()
		return 0, fmt.Errorf("fleet: unknown member %q", id)
	}
	if ms.inRing {
		rt.mu.Unlock()
		return 0, fmt.Errorf("fleet: member %q already in ring", id)
	}
	if err := rt.ring.Add(id); err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	ms.inRing = true
	gen := rt.ring.Generation()
	rt.mu.Unlock()
	mRingGeneration.Set(float64(gen))

	// Lift the drain flag before moving sessions in: an import against a
	// draining replica is refused.
	if status, err := rt.originate(ctx, ms, http.MethodDelete, "/v1/drain", nil, nil); err != nil || status >= 300 {
		return 0, fmt.Errorf("fleet: undrain request to %s: status %d, %v", id, status, err)
	}

	moved, err := rt.rebalance(ctx, gen)
	rt.cfg.Logger.Info("member joined", "member", id, "moved", moved, "ring_gen", gen, "error", err)
	return moved, err
}

// rebalance walks the ownership table in sorted session order (so a
// drain and a replayed drain move sessions identically) and hands off
// every session whose current owner differs from its ring owner. The
// first failed move pins its session and the walk continues; the last
// error is returned after the sweep.
func (rt *Router) rebalance(ctx context.Context, gen int64) (int, error) {
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.table))
	for sid := range rt.table {
		ids = append(ids, sid)
	}
	rt.mu.Unlock()
	sort.Strings(ids)

	moved := 0
	var lastErr error
	for _, sid := range ids {
		rt.mu.Lock()
		have, ok := rt.table[sid]
		want, wok := rt.ring.Owner(sid)
		from, to := rt.members[have], rt.members[want]
		rt.mu.Unlock()
		if !ok || !wok || have == want {
			continue
		}
		if err := rt.moveSession(ctx, sid, from, to, gen); err != nil {
			mHandoffFailures.Inc()
			rt.cfg.Logger.Error("session handoff failed; session pinned",
				"session", sid, "from", have, "to", want, "error", err)
			lastErr = err
			continue
		}
		moved++
	}
	return moved, lastErr
}

// moveSession performs one checkpoint handoff: export from the loser
// (which atomically claims and removes the session there), import into
// the gainer, and commit the new placement. A failed import re-imports
// the envelope into the loser so the session is never lost; only if that
// recovery also fails is the error fatal to this session.
func (rt *Router) moveSession(ctx context.Context, sid string, from, to *memberState, gen int64) error {
	start := time.Now()
	var ex serve.SessionExport
	status, err := rt.originate(ctx, from, http.MethodPost, "/v1/sessions/"+sid+"/export", nil, &ex)
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		// Session ended between the table snapshot and now; forget it.
		rt.mu.Lock()
		delete(rt.table, sid)
		rt.mu.Unlock()
		return nil
	}
	if status >= 300 {
		return fmt.Errorf("fleet: export of %s from %s: status %d", sid, from.member.ID, status)
	}

	status, err = rt.originate(ctx, to, http.MethodPost, "/v1/sessions/import", ex, nil)
	if err == nil && status >= 300 {
		err = fmt.Errorf("fleet: import of %s into %s: status %d", sid, to.member.ID, status)
	}
	if err != nil {
		// Put the session back where it came from — the loser is not yet
		// draining at this point in the drain sequence.
		rstatus, rerr := rt.originate(ctx, from, http.MethodPost, "/v1/sessions/import", ex, nil)
		if rerr != nil || rstatus >= 300 {
			return fmt.Errorf("fleet: session %s LOST: import failed (%v) and fallback to %s failed (status %d, %v)",
				sid, err, from.member.ID, rstatus, rerr)
		}
		return err
	}

	rt.mu.Lock()
	rt.table[sid] = to.member.ID
	rt.mu.Unlock()
	mHandoffs.Inc()
	d := time.Since(start)
	attrs := map[string]string{
		"from":     from.member.ID,
		"to":       to.member.ID,
		"ring_gen": fmt.Sprintf("%d", gen),
	}
	fe := telemetry.FlightEntry{Kind: "handoff", Name: sid, Dur: d, Attrs: attrs}
	if tc, ok := telemetry.TraceContextFrom(ctx); ok {
		fe.Trace = tc.Trace.String()
	}
	telemetry.RecordFlight(fe)
	rt.cfg.Logger.Info("session handed off",
		"session", sid, "from", from.member.ID, "to", to.member.ID, "ring_gen", gen)
	return nil
}

// HealthCheck probes every member's /readyz once and updates health
// flags. An unhealthy member stays in the ring (its sessions stay
// placed — fail-static again) but the router answers 503 for requests
// that would land on it.
func (rt *Router) HealthCheck(ctx context.Context) {
	rt.mu.Lock()
	mss := make([]*memberState, 0, len(rt.members))
	for _, ms := range rt.members {
		mss = append(mss, ms)
	}
	rt.mu.Unlock()
	for _, ms := range mss {
		status, err := rt.originate(ctx, ms, http.MethodGet, "/readyz", nil, nil)
		healthy := err == nil && status < 300
		rt.mu.Lock()
		changed := ms.healthy != healthy
		ms.healthy = healthy
		rt.mu.Unlock()
		if changed {
			rt.cfg.Logger.Warn("member health changed",
				"member", ms.member.ID, "healthy", healthy, "status", status, "error", err)
		}
	}
}

// Run health-checks the fleet every interval until the context ends.
func (rt *Router) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	rt.HealthCheck(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			rt.HealthCheck(ctx)
		}
	}
}
