package fleet

import (
	"fmt"
	"testing"
)

func ringWith(t *testing.T, seed uint64, members ...string) *Ring {
	t.Helper()
	r := NewRing(seed, 64)
	for _, m := range members {
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%05d", i)
	}
	return out
}

// TestRingDeterminism: the layout is a pure function of (seed, vnodes,
// membership) — two rings built alike agree on every key, and a
// different seed produces a genuinely different layout.
func TestRingDeterminism(t *testing.T) {
	a := ringWith(t, 42, "r0", "r1", "r2")
	b := ringWith(t, 42, "r2", "r0", "r1") // insertion order must not matter
	c := ringWith(t, 43, "r0", "r1", "r2")

	moved := 0
	counts := map[string]int{}
	for _, k := range keys(500) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		if oa != ob {
			t.Fatalf("same-config rings disagree on %s: %s vs %s", k, oa, ob)
		}
		if oa != oc {
			moved++
		}
		counts[oa]++
	}
	if moved == 0 {
		t.Error("changing the seed moved no keys; seed is not folded into the hash")
	}
	// Spread: each of 3 members should own a material share of 500 keys.
	for m, n := range counts {
		if n < 50 {
			t.Errorf("member %s owns only %d/500 keys; vnode spread is broken", m, n)
		}
	}
}

// TestRingMinimalDisruption: removing a member only reassigns the keys
// it owned; everyone else's keys stay put. This is the property that
// bounds how many sessions a drain has to hand off.
func TestRingMinimalDisruption(t *testing.T) {
	r := ringWith(t, 42, "r0", "r1", "r2")
	before := map[string]string{}
	for _, k := range keys(500) {
		before[k], _ = r.Owner(k)
	}
	if err := r.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	for k, was := range before {
		now, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s after remove", k)
		}
		if was != "r1" && now != was {
			t.Errorf("key %s moved %s -> %s though %s stayed in the ring", k, was, now, was)
		}
		if was == "r1" && now == "r1" {
			t.Errorf("key %s still owned by removed member", k)
		}
	}
	// Re-adding restores the exact original layout (pure function of
	// membership), which is what lets a rejoin move sessions back.
	if err := r.Add("r1"); err != nil {
		t.Fatal(err)
	}
	for k, was := range before {
		if now, _ := r.Owner(k); now != was {
			t.Errorf("key %s at %s after rejoin, want original owner %s", k, now, was)
		}
	}
}

func TestRingEdges(t *testing.T) {
	r := NewRing(1, 8)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring claims an owner")
	}
	if g := r.Generation(); g != 0 {
		t.Errorf("fresh ring generation %d, want 0", g)
	}
	if err := r.Add(""); err == nil {
		t.Error("empty member id accepted")
	}
	if err := r.Add("r0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("r0"); err == nil {
		t.Error("duplicate add accepted")
	}
	if err := r.Remove("nope"); err == nil {
		t.Error("removing an absent member succeeded")
	}
	if g := r.Generation(); g != 1 {
		t.Errorf("generation %d after one add, want 1 (failed ops must not bump)", g)
	}
	if got := r.Members(); len(got) != 1 || got[0] != "r0" {
		t.Errorf("members %v, want [r0]", got)
	}
}
