// Package fleet is the multi-replica serving layer: it turns N
// single-process detection servers into one logical fleet.
//
// The package has two halves. The Syncer is a pull-based registry
// replicator: it mirrors content-addressed model entries and the
// current-pointer from a primary registry into a replica's local store
// (hash-verified entry fetch, atomic manifest-last commit, pointer
// mirrored only when its generation advances), so a single Promote on
// the primary converges on every replica and each serve instance
// hot-reloads the new champion. Sync follows a fail-static rule: any
// error leaves the replica serving its last good model — a lagging or
// unreachable primary degrades freshness, never availability.
//
// The Router shards detection sessions across replicas by consistent
// hashing on the session ID over a fixed-seed vnode ring, forwarding the
// serve API unchanged. On ring change (drain or rejoin of a replica) it
// performs checkpoint handoff: the losing replica exports each session's
// checkpoint (the SIGTERM spool format), the gaining replica restores
// it, and the session's verdict stream continues byte-identically — the
// property the deterministic cluster simulator proves with its
// replica-count-invariant verdict checksum.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Every member owns
// Vnodes points placed by FNV-1a over a fixed seed, so the layout is a
// pure function of (seed, vnodes, membership) — two routers configured
// alike agree on every placement. A key's owner is the member of the
// first ring point at or clockwise after the key's hash. The zero value
// is not usable; construct with NewRing. Ring is not safe for concurrent
// use; the Router serialises access.
type Ring struct {
	seed   uint64
	vnodes int
	gen    int64
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring hashing with the given seed and virtual
// node count per member (vnodes <= 0 selects 64).
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{seed: seed, vnodes: vnodes}
}

// FNV-1a 64-bit, folding the ring seed in ahead of the key bytes.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (r *Ring) hash(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= (r.seed >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	// Raw FNV-1a gives a key's last byte only one multiply of diffusion,
	// so sequential ids ("s00001", "s00002", …) land adjacent on the ring
	// and all map to the same member. The 64-bit avalanche finalizer
	// (murmur3 fmix64) spreads every input bit across the whole hash.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a member's vnodes and bumps the ring generation. Adding a
// present member is an error (the caller lost track of membership).
func (r *Ring) Add(member string) error {
	if member == "" {
		return fmt.Errorf("fleet: empty ring member id")
	}
	for _, p := range r.points {
		if p.member == member {
			return fmt.Errorf("fleet: member %q already in ring", member)
		}
	}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:   r.hash(member + "#" + strconv.Itoa(v)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	r.gen++
	return nil
}

// Remove deletes a member's vnodes and bumps the ring generation.
func (r *Ring) Remove(member string) error {
	kept := r.points[:0]
	removed := false
	for _, p := range r.points {
		if p.member == member {
			removed = true
			continue
		}
		kept = append(kept, p)
	}
	if !removed {
		return fmt.Errorf("fleet: member %q not in ring", member)
	}
	r.points = kept
	r.gen++
	return nil
}

// Owner returns the member owning a key, reporting false on an empty
// ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point
	}
	return r.points[i].member, true
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	sort.Strings(out)
	return out
}

// Generation counts membership changes monotonically; sessions are
// stamped with the generation that placed them.
func (r *Ring) Generation() int64 { return r.gen }
