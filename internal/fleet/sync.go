package fleet

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// SyncSource is the read surface a Syncer pulls from — satisfied by
// *registry.Store, so a replica can sync straight off a primary's
// directory (shared filesystem) or any future transport that can answer
// the same three questions.
type SyncSource interface {
	// Current returns the primary's manifest pointer.
	Current() (registry.Pointer, bool, error)
	// List returns every committed entry on the primary.
	List() ([]registry.Manifest, error)
	// OpenBundle opens one committed entry's bundle bytes.
	OpenBundle(id string) (io.ReadCloser, error)
}

// SyncStatus is a snapshot of a Syncer's progress for metrics and the
// fleet status endpoint.
type SyncStatus struct {
	// Synced reports whether the last sync round succeeded.
	Synced bool `json:"synced"`
	// Generation is the last pointer generation mirrored locally.
	Generation int64 `json:"generation"`
	// Entries counts entries imported over the syncer's lifetime.
	Entries int `json:"entries"`
	// Rounds and Failures count sync attempts and failed attempts.
	Rounds   int `json:"rounds"`
	Failures int `json:"failures"`
	// LastError is the most recent failure ("" after a clean round).
	LastError string `json:"last_error,omitempty"`
	// LastSync is when the last successful round finished.
	LastSync time.Time `json:"last_sync"`
}

// Syncer replicates a primary registry into a local replica store:
// committed entries are fetched hash-verified and imported under the
// manifest-last commit protocol, then the current pointer is mirrored
// verbatim — entries strictly before pointer, so the replica never
// exposes a pointer at an entry it does not hold, and a crash at any
// point leaves at worst an invisible uncommitted entry directory.
//
// Every error follows the fail-static rule: the replica keeps its last
// good pointer (and the serve instance its last good model); the next
// round retries from scratch. The pointer is only rewritten when the
// primary's generation or id differs from the replica's — the
// generation is the poll token that makes steady-state rounds cheap.
type Syncer struct {
	// Source is the primary being mirrored; Replica the local store.
	Source  SyncSource
	Replica *registry.Store
	// OnAdvance, when set, runs after the pointer advances — the serve
	// hot-reload hook. An OnAdvance error counts as a failed round (the
	// pointer has landed; the next round retries the reload via a
	// re-advance no-op and reports the error).
	OnAdvance func(registry.Pointer) error
	// Logger receives sync logs (default slog.Default()).
	Logger *slog.Logger

	mu     sync.Mutex
	status SyncStatus
}

// Status returns a snapshot of the syncer's progress.
func (y *Syncer) Status() SyncStatus {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.status
}

func (y *Syncer) logger() *slog.Logger {
	if y.Logger != nil {
		return y.Logger
	}
	return slog.Default()
}

// SyncOnce runs one pull round: import missing entries, then mirror the
// pointer if it moved, then fire OnAdvance. It returns the first error
// and changes nothing else on failure — fail-static.
func (y *Syncer) SyncOnce() error {
	imported, ptr, advanced, err := y.round()
	y.mu.Lock()
	y.status.Rounds++
	y.status.Entries += imported
	if err != nil {
		y.status.Failures++
		y.status.Synced = false
		y.status.LastError = err.Error()
	} else {
		y.status.Synced = true
		y.status.LastError = ""
		y.status.Generation = ptr.Generation
		y.status.LastSync = time.Now().UTC()
	}
	y.mu.Unlock()
	mSyncRounds.Inc()
	if err != nil {
		mSyncFailures.Inc()
		y.logger().Warn("registry sync failed; serving last good model", "error", err)
		return err
	}
	if imported > 0 || advanced {
		mSyncEntries.Add(uint64(imported))
		mSyncGeneration.Set(float64(ptr.Generation))
		telemetry.RecordFlight(telemetry.FlightEntry{
			Kind: "sync", Name: "advance",
			Attrs: map[string]string{
				"entry":      ptr.ID,
				"generation": fmt.Sprintf("%d", ptr.Generation),
				"imported":   fmt.Sprintf("%d", imported),
			},
		})
	}
	return nil
}

// round does the actual pull; split out so SyncOnce owns the accounting.
func (y *Syncer) round() (imported int, ptr registry.Pointer, advanced bool, err error) {
	ptr, ok, err := y.Source.Current()
	if err != nil {
		return 0, ptr, false, fmt.Errorf("fleet: polling primary pointer: %w", err)
	}
	mans, err := y.Source.List()
	if err != nil {
		return 0, ptr, false, fmt.Errorf("fleet: listing primary entries: %w", err)
	}
	for _, man := range mans {
		if _, err := y.Replica.Get(man.ID); err == nil {
			continue // already mirrored; entries are immutable
		}
		if err := faultinject.Step("fleet/sync/fetch"); err != nil {
			return imported, ptr, false, fmt.Errorf("fleet: fetching entry %s: %w", man.ID, err)
		}
		rc, err := y.Source.OpenBundle(man.ID)
		if err != nil {
			return imported, ptr, false, fmt.Errorf("fleet: fetching entry %s: %w", man.ID, err)
		}
		blob, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return imported, ptr, false, fmt.Errorf("fleet: fetching entry %s: %w", man.ID, err)
		}
		if err := y.Replica.ImportEntry(man, blob); err != nil {
			return imported, ptr, false, err
		}
		imported++
		y.logger().Info("registry entry mirrored", "entry", man.ID)
	}
	if !ok {
		return imported, ptr, false, nil // primary has no champion yet
	}
	cur, _, err := y.Replica.Current()
	if err != nil {
		return imported, ptr, false, err
	}
	if cur.ID == ptr.ID && cur.Generation == ptr.Generation {
		return imported, ptr, false, nil // generations agree: nothing to do
	}
	if err := faultinject.Step("fleet/sync/pointer"); err != nil {
		return imported, ptr, false, fmt.Errorf("fleet: mirroring pointer: %w", err)
	}
	if _, err := y.Replica.SetCurrentMirror(ptr); err != nil {
		return imported, ptr, false, err
	}
	y.logger().Info("registry pointer mirrored",
		"entry", ptr.ID, "generation", ptr.Generation, "reason", ptr.Reason)
	if y.OnAdvance != nil {
		if err := y.OnAdvance(ptr); err != nil {
			return imported, ptr, true, fmt.Errorf("fleet: pointer advanced to %s but reload failed: %w", ptr.ID, err)
		}
	}
	return imported, ptr, true, nil
}

// Run polls the primary every interval until the context ends. Failures
// are logged and retried next round; Run itself never returns an error —
// fail-static is the loop's whole contract.
func (y *Syncer) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	_ = y.SyncOnce() // converge immediately at startup
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			_ = y.SyncOnce()
		}
	}
}
