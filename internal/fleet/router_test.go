package fleet

import (
	"context"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/serve"
)

// newTestFleet boots n serve replicas r0..r(n-1) behind a fresh router
// and returns the router plus a driver speaking to it.
func newTestFleet(t *testing.T, n int) (*Router, *serve.Driver, []*serve.Server) {
	t.Helper()
	var members []Member
	var servers []*serve.Server
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r%d", i)
		srv := newServeReplica(t, id)
		servers = append(servers, srv)
		members = append(members, Member{ID: id, Handler: srv.Handler()})
	}
	rt, err := NewRouter(RouterConfig{Members: members, Seed: 1106, Vnodes: 64, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	return rt, serve.NewHandlerDriver(rt.Handler()), servers
}

// TestRouterPlacement: routed creates land on the ring owner, the
// placement is visible in the session info breadcrumbs, and two routers
// configured alike agree on every placement.
func TestRouterPlacement(t *testing.T) {
	_, logs := fixtures(t)
	rt, drv, _ := newTestFleet(t, 3)

	other, err := NewRouter(RouterConfig{
		Members: []Member{
			{ID: "r0", Handler: http.NotFoundHandler()},
			{ID: "r1", Handler: http.NotFoundHandler()},
			{ID: "r2", Handler: http.NotFoundHandler()},
		},
		Seed: 1106, Vnodes: 64, Logger: discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	owners := map[string]bool{}
	for i := 0; i < 12; i++ {
		spec := serve.SessionSpecOf(logs.Malicious, "")
		spec.ID = fmt.Sprintf("s%05d", i)
		info, err := drv.CreateSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, gen, ok := rt.Owner(spec.ID)
		if !ok || info.Replica != want {
			t.Errorf("session %s reports replica %q, ring owner is %q (ok=%v)", spec.ID, info.Replica, want, ok)
		}
		if info.RingGeneration != gen {
			t.Errorf("session %s ring generation %d, want %d", spec.ID, info.RingGeneration, gen)
		}
		if w2, _, _ := other.Owner(spec.ID); w2 != want {
			t.Errorf("identically configured router disagrees on %s: %s vs %s", spec.ID, w2, want)
		}
		owners[info.Replica] = true
	}
	if len(owners) < 2 {
		t.Errorf("12 sessions all landed on %v; sharding is not spreading", owners)
	}
	st := rt.Status()
	if st.Sessions != 12 || len(st.Members) != 3 {
		t.Errorf("fleet status %+v, want 12 sessions across 3 members", st)
	}

	// An ID-less create gets a minted ID and still lands consistently.
	info, err := drv.CreateSession(serve.SessionSpecOf(logs.Malicious, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.ID) != 16 {
		t.Errorf("minted session id %q, want 8 random bytes hex-encoded", info.ID)
	}
	if want, _, _ := rt.Owner(info.ID); info.Replica != want {
		t.Errorf("minted session on %s, ring owner %s", info.Replica, want)
	}

	// Deleting through the router forgets the placement.
	if err := drv.DeleteSession(info.ID); err != nil {
		t.Fatal(err)
	}
	if st := rt.Status(); st.Sessions != 12 {
		t.Errorf("sessions after delete %d, want 12", st.Sessions)
	}
}

// TestRouterDrainJoinContinuity is the tentpole guarantee end to end: a
// fleet of three replicas scores a cohort of sessions, one replica
// drains mid-traffic (checkpoint handoff), traffic continues, the
// replica rejoins (sessions hand back), and every session's concatenated
// verdict stream is byte-identical to the same session scored on a
// single unrouted server.
func TestRouterDrainJoinContinuity(t *testing.T) {
	mon, logs := fixtures(t)
	rt, drv, servers := newTestFleet(t, 3)

	// The unmoved reference: one plain server scoring the same events.
	ref := newServeReplica(t, "ref")
	rdrv := serve.NewDriver(ref)

	mal := logs.Malicious
	events := mal.Events[:3*mon.Window()]
	cut1, cut2 := len(events)/3, 2*len(events)/3

	const n = 9
	got := map[string][]serve.Verdict{}
	want := map[string][]serve.Verdict{}
	for i := 0; i < n; i++ {
		sid := fmt.Sprintf("s%05d", i)
		spec := serve.SessionSpecOf(mal, "")
		spec.ID = sid
		if _, err := drv.CreateSession(spec); err != nil {
			t.Fatal(err)
		}
		rspec := serve.SessionSpecOf(mal, "")
		rspec.ID = "ref-" + sid
		if _, err := rdrv.CreateSession(rspec); err != nil {
			t.Fatal(err)
		}
		res, err := rdrv.Ingest(rspec.ID, serve.EventBatch{Events: serve.EventSpecsOf(events)})
		if err != nil {
			t.Fatal(err)
		}
		want[sid] = res.Verdicts
	}

	ingestAll := func(from, to int) {
		t.Helper()
		for i := 0; i < n; i++ {
			sid := fmt.Sprintf("s%05d", i)
			res, err := drv.Ingest(sid, serve.EventBatch{Events: serve.EventSpecsOf(events[from:to])})
			if err != nil {
				t.Fatalf("ingest %s [%d:%d]: %v", sid, from, to, err)
			}
			got[sid] = append(got[sid], res.Verdicts...)
		}
	}

	ingestAll(0, cut1)

	// Phase 2: drain r1 mid-traffic. Its sessions move by checkpoint
	// handoff; everyone keeps scoring through the router.
	beforeDrain := rt.Status()
	var r1Sessions int
	for _, m := range beforeDrain.Members {
		if m.ID == "r1" {
			r1Sessions = m.Sessions
		}
	}
	moved, err := rt.DrainMember(context.Background(), "r1")
	if err != nil {
		t.Fatalf("drain r1: %v", err)
	}
	if moved != r1Sessions {
		t.Errorf("drain moved %d sessions, r1 held %d", moved, r1Sessions)
	}
	st := rt.Status()
	for _, m := range st.Members {
		if m.ID == "r1" && (m.InRing || m.Sessions != 0) {
			t.Errorf("r1 after drain: %+v, want out of ring with 0 sessions", m)
		}
	}
	// The drained replica itself refuses new work.
	r1drv := serve.NewDriver(servers[1])
	if _, err := r1drv.CreateSession(serve.SessionSpecOf(mal, "")); !serve.IsStatus(err, http.StatusServiceUnavailable) {
		t.Errorf("create on drained r1: err %v, want 503", err)
	}

	ingestAll(cut1, cut2)

	// Phase 3: r1 rejoins; the ring layout is restored, so exactly the
	// sessions that originally hashed to r1 hand back.
	movedBack, err := rt.JoinMember(context.Background(), "r1")
	if err != nil {
		t.Fatalf("join r1: %v", err)
	}
	if movedBack != r1Sessions {
		t.Errorf("join moved %d sessions back, want %d", movedBack, r1Sessions)
	}
	if gen := rt.Status().Generation; gen != 5 {
		t.Errorf("ring generation %d, want 5 (3 adds + drain + join)", gen)
	}

	ingestAll(cut2, len(events))

	for i := 0; i < n; i++ {
		sid := fmt.Sprintf("s%05d", i)
		if !reflect.DeepEqual(got[sid], want[sid]) {
			t.Errorf("session %s: %d verdicts across drain+join differ from the unmoved reference (%d verdicts)",
				sid, len(got[sid]), len(want[sid]))
		}
	}

	// Ownership breadcrumbs survived the round trip: every session
	// reports the member the router's table places it on.
	for i := 0; i < n; i++ {
		sid := fmt.Sprintf("s%05d", i)
		info, err := drv.Session(sid)
		if err != nil {
			t.Fatal(err)
		}
		if want, _, _ := rt.Owner(sid); info.Replica != want {
			t.Errorf("session %s reports replica %q, router places it on %q", sid, info.Replica, want)
		}
	}
}

// TestRouterDrainGuards: the last ring member cannot drain, unknown
// members are rejected, and drain/join are idempotence-checked.
func TestRouterDrainGuards(t *testing.T) {
	fixtures(t)
	rt, _, _ := newTestFleet(t, 2)
	ctx := context.Background()

	if _, err := rt.DrainMember(ctx, "nope"); err == nil {
		t.Error("draining an unknown member succeeded")
	}
	if _, err := rt.JoinMember(ctx, "r0"); err == nil {
		t.Error("joining an in-ring member succeeded")
	}
	if _, err := rt.DrainMember(ctx, "r0"); err != nil {
		t.Fatalf("drain r0: %v", err)
	}
	if _, err := rt.DrainMember(ctx, "r0"); err == nil {
		t.Error("double drain succeeded")
	}
	if _, err := rt.DrainMember(ctx, "r1"); err == nil {
		t.Error("draining the last ring member succeeded")
	}
	if _, err := rt.JoinMember(ctx, "r0"); err != nil {
		t.Fatalf("rejoin r0: %v", err)
	}
}

// TestRouterHealth: health checks flip member state off readyz, readiness
// follows, and the fleet endpoints respond over the HTTP surface.
func TestRouterHealth(t *testing.T) {
	fixtures(t)
	rt, drv, servers := newTestFleet(t, 2)
	ctx := context.Background()

	rt.HealthCheck(ctx)
	for _, m := range rt.Status().Members {
		if !m.Healthy {
			t.Errorf("member %s unhealthy after probe: %+v", m.ID, m)
		}
	}

	// Shut one replica down for real; the probe must notice.
	if err := servers[1].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rt.HealthCheck(ctx)
	for _, m := range rt.Status().Members {
		if m.ID == "r1" && m.Healthy {
			t.Error("r1 still healthy after shutdown")
		}
	}
	// The router stays ready while r0 lives.
	if err := drv.Ready(); err != nil {
		t.Errorf("router readyz with one healthy member: %v", err)
	}
}
