package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Member is one serve replica behind the router: its fleet ID and the
// handler speaking the serve API. In-process fleets (tests, the cluster
// simulator) pass Server.Handler() directly; cmd/leaps-router wraps each
// replica's base URL in a reverse proxy.
type Member struct {
	// ID names the replica on the ring; it must match the replica's
	// serve.Config.ReplicaID for the ownership breadcrumbs to line up.
	ID string
	// Handler speaks the replica's serve API.
	Handler http.Handler
}

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Members are the replicas, all initially in the ring.
	Members []Member
	// Seed fixes the ring's hash layout; two routers with the same seed,
	// vnodes and membership agree on every placement.
	Seed uint64
	// Vnodes is the virtual-node count per member (default 64).
	Vnodes int
	// NewID mints session IDs for specs that request none (default: 8
	// random bytes, hex). The simulator injects a deterministic one.
	NewID func() string
	// MaxBodyBytes caps routed request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Logger receives routing logs (default slog.Default()).
	Logger *slog.Logger
}

// memberState is a Member plus the router's view of it.
type memberState struct {
	member  Member
	inRing  bool
	healthy bool
}

// Router shards sessions across replicas by consistent hashing on the
// session ID and forwards the serve session API unchanged. Placement is
// remembered in an ownership table (hash decides at creation; the table
// rules thereafter), so ring changes never silently strand an existing
// session: DrainMember and JoinMember move sessions explicitly by
// checkpoint handoff and update the table as each move commits. A failed
// handoff pins the session to its old replica — fail-static, the same
// rule the registry syncer follows.
type Router struct {
	cfg RouterConfig
	mux *http.ServeMux

	// rebalanceMu serialises ring changes (drain/join) end to end.
	rebalanceMu sync.Mutex

	mu      sync.Mutex
	ring    *Ring
	members map[string]*memberState
	table   map[string]string // session id -> owning member id
}

// NewRouter builds a router over the configured members, all in the
// ring.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fleet: router needs at least one member")
	}
	if cfg.NewID == nil {
		cfg.NewID = func() string {
			var b [8]byte
			if _, err := rand.Read(b[:]); err != nil {
				panic(fmt.Sprintf("fleet: reading random session id: %v", err))
			}
			return hex.EncodeToString(b[:])
		}
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Seed, cfg.Vnodes),
		members: make(map[string]*memberState),
		table:   make(map[string]string),
	}
	for _, m := range cfg.Members {
		if m.Handler == nil {
			return nil, fmt.Errorf("fleet: member %q has no handler", m.ID)
		}
		if _, dup := rt.members[m.ID]; dup {
			return nil, fmt.Errorf("fleet: member %q configured twice", m.ID)
		}
		if err := rt.ring.Add(m.ID); err != nil {
			return nil, err
		}
		rt.members[m.ID] = &memberState{member: m, inRing: true, healthy: true}
	}
	mRingGeneration.Set(float64(rt.ring.Generation()))
	rt.buildMux()
	return rt, nil
}

func (rt *Router) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.forwardSession)
	mux.HandleFunc("POST /v1/sessions/{id}/events", rt.forwardSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleDelete)
	mux.HandleFunc("GET /v1/fleet", rt.handleFleet)
	mux.HandleFunc("POST /v1/fleet/drain", rt.handleFleetDrain)
	mux.HandleFunc("POST /v1/fleet/join", rt.handleFleetJoin)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", rt.handleReady)
	telemetry.Register(mux)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, "no such endpoint")
			return
		}
		fmt.Fprintln(w, "leaps-router endpoints:")
		fmt.Fprintln(w, "  POST   /v1/sessions")
		fmt.Fprintln(w, "  GET    /v1/sessions/{id}")
		fmt.Fprintln(w, "  POST   /v1/sessions/{id}/events")
		fmt.Fprintln(w, "  DELETE /v1/sessions/{id}")
		fmt.Fprintln(w, "  GET    /v1/fleet")
		fmt.Fprintln(w, "  POST   /v1/fleet/drain, /v1/fleet/join")
		fmt.Fprintln(w, "  GET    /healthz, /readyz")
		fmt.Fprintln(w, "  GET    /metrics, /spans, /debug/vars, /debug/pprof/")
	})
	rt.mux = mux
}

// Handler returns the router's HTTP surface wrapped in the tracing
// middleware: the router adopts or mints a trace context and forwards it
// on the hop to the replica, so one trace follows a batch through both
// processes.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tc telemetry.TraceContext
		if parent, ok := telemetry.ParseTraceParent(r.Header.Get("traceparent")); ok {
			tc = parent.Child()
		} else {
			tc = telemetry.TraceContext{Trace: telemetry.NewTraceID(), Span: telemetry.NewSpanID()}
		}
		ctx := telemetry.WithTraceContext(r.Context(), tc)
		w.Header().Set("traceparent", tc.TraceParent())
		route := r.URL.Path
		if _, pattern := rt.mux.Handler(r); pattern != "" {
			route = pattern
		}
		start := time.Now()
		rt.mux.ServeHTTP(w, r.WithContext(ctx))
		mRouterHTTPSeconds.With(route).ObserveTraced(time.Since(start).Seconds(), tc.Trace.String())
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// owner resolves a session to its member: the ownership table rules for
// existing sessions, the ring decides for unknown ids.
func (rt *Router) owner(id string) (*memberState, int64, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	gen := rt.ring.Generation()
	if mid, ok := rt.table[id]; ok {
		return rt.members[mid], gen, true
	}
	mid, ok := rt.ring.Owner(id)
	if !ok {
		return nil, gen, false
	}
	return rt.members[mid], gen, true
}

// Owner reports which member a session id routes to and the current ring
// generation — the simulator uses it to charge virtual service time to
// the replica that really scored the batch.
func (rt *Router) Owner(id string) (string, int64, bool) {
	ms, gen, ok := rt.owner(id)
	if !ok {
		return "", gen, false
	}
	return ms.member.ID, gen, true
}

// originate runs a router-originated request against a member (export,
// import, drain probes), propagating the caller's trace context.
func (rt *Router) originate(ctx context.Context, ms *memberState, method, path string, body, out any) (int, error) {
	var rd io.Reader = bytes.NewReader(nil)
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return 0, fmt.Errorf("fleet: encoding %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(blob)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc, ok := telemetry.TraceContextFrom(ctx); ok {
		req.Header.Set("traceparent", tc.TraceParent())
	}
	rt.mu.Lock()
	gen := rt.ring.Generation()
	rt.mu.Unlock()
	req.Header.Set(serve.RingGenHeader, strconv.FormatInt(gen, 10))
	rec := httptest.NewRecorder()
	ms.member.Handler.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			return rec.Code, fmt.Errorf("fleet: decoding %s %s from %s: %w", method, path, ms.member.ID, err)
		}
	}
	return rec.Code, nil
}

// forward proxies the incoming request to a member, stamping the hop
// with the router's trace context and ring generation. The member's
// response streams straight through.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, ms *memberState, gen int64, body []byte) {
	r2 := r.Clone(r.Context())
	if body != nil {
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
	}
	if tc, ok := telemetry.TraceContextFrom(r.Context()); ok {
		r2.Header.Set("traceparent", tc.TraceParent())
	}
	r2.Header.Set(serve.RingGenHeader, strconv.FormatInt(gen, 10))
	mRouterForwards.With(ms.member.ID).Inc()
	ms.member.Handler.ServeHTTP(w, r2)
}

// handleCreate places a session: the spec's ID (minted here when absent)
// hashes to its owning replica, the request forwards there, and a 201
// records the placement in the ownership table.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading request body: %v", err)
		return
	}
	var spec serve.SessionSpec
	if err := json.Unmarshal(blob, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding session spec: %v", err)
		return
	}
	if spec.ID == "" {
		spec.ID = rt.cfg.NewID()
		if blob, err = json.Marshal(spec); err != nil {
			writeError(w, http.StatusInternalServerError, "re-encoding session spec: %v", err)
			return
		}
	}
	ms, gen, ok := rt.owner(spec.ID)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no replicas in ring")
		return
	}
	if !ms.isHealthy() {
		writeError(w, http.StatusServiceUnavailable, "replica %s unhealthy", ms.member.ID)
		return
	}
	sw := &statusWriter{ResponseWriter: w}
	rt.forward(sw, r, ms, gen, blob)
	if sw.status == http.StatusCreated {
		rt.mu.Lock()
		rt.table[spec.ID] = ms.member.ID
		rt.mu.Unlock()
		rt.cfg.Logger.Info("session placed",
			"session", spec.ID, "replica", ms.member.ID, "ring_gen", gen)
	}
}

// forwardSession proxies a session-scoped request to its owner.
func (rt *Router) forwardSession(w http.ResponseWriter, r *http.Request) {
	ms, gen, ok := rt.owner(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no replicas in ring")
		return
	}
	if !ms.isHealthy() {
		writeError(w, http.StatusServiceUnavailable, "replica %s unhealthy", ms.member.ID)
		return
	}
	rt.forward(w, r, ms, gen, nil)
}

// handleDelete proxies the delete and forgets the placement on success.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ms, gen, ok := rt.owner(id)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no replicas in ring")
		return
	}
	sw := &statusWriter{ResponseWriter: w}
	rt.forward(sw, r, ms, gen, nil)
	if sw.status < 300 {
		rt.mu.Lock()
		delete(rt.table, id)
		rt.mu.Unlock()
	}
}

func (ms *memberState) isHealthy() bool { return ms.healthy }

// statusWriter captures the forwarded response status so the router can
// commit side effects (table updates) only on success.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
