package fleet

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/svm"
)

// The fleet tests train two real model bundles once (champion and a
// challenger with different hyperparameters, so the content hashes
// differ) and share them across every test in the package.
var (
	fixOnce     sync.Once
	fixChampion []byte
	fixChall    []byte
	fixMonitor  *core.Monitor
	fixLogs     *dataset.Logs
	fixErr      error
)

func trainFixture(lambda float64, sigma2 float64) ([]byte, error) {
	td, err := core.BuildTrainingData(fixLogs.Benign, fixLogs.Mixed, core.Config{
		Seed:        7,
		FixedParams: &svm.Params{Lambda: lambda, Kernel: svm.RBFKernel{Sigma2: sigma2}},
	})
	if err != nil {
		return nil, err
	}
	clf, err := td.Train()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func fixtures(t *testing.T) (*core.Monitor, *dataset.Logs) {
	t.Helper()
	fixOnce.Do(func() {
		spec, err := dataset.ByName("vim_reverse_tcp")
		if err != nil {
			fixErr = err
			return
		}
		if fixLogs, fixErr = spec.Generate(7); fixErr != nil {
			return
		}
		if fixChampion, fixErr = trainFixture(8, 2); fixErr != nil {
			return
		}
		if fixChall, fixErr = trainFixture(2, 4); fixErr != nil {
			return
		}
		fixMonitor, fixErr = core.LoadMonitor(bytes.NewReader(fixChampion))
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixMonitor, fixLogs
}

// newPrimary opens a registry with the champion published (and current).
func newPrimary(t *testing.T) (*registry.Store, registry.Manifest) {
	t.Helper()
	fixtures(t)
	st, err := registry.Open(filepath.Join(t.TempDir(), "primary"))
	if err != nil {
		t.Fatal(err)
	}
	man, err := st.Publish(bytes.NewReader(fixChampion), registry.TrainInfo{
		App: "vim", Seed: 7, Lambda: 8, Kernel: "rbf",
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, man
}

// publishChallenger adds the second bundle to a store.
func publishChallenger(t *testing.T, st *registry.Store) registry.Manifest {
	t.Helper()
	man, err := st.Publish(bytes.NewReader(fixChall), registry.TrainInfo{
		App: "vim", Seed: 7, Lambda: 2, Kernel: "rbf",
	})
	if err != nil {
		t.Fatal(err)
	}
	return man
}

func newReplicaStore(t *testing.T, name string) *registry.Store {
	t.Helper()
	st, err := registry.Open(filepath.Join(t.TempDir(), name))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newServeReplica boots a real serve.Server preloaded with the champion
// monitor, named for the fleet.
func newServeReplica(t *testing.T, id string) *serve.Server {
	t.Helper()
	mon, _ := fixtures(t)
	srv, err := serve.NewServer(serve.Config{
		Preloaded:      map[string]*core.Monitor{"default": mon},
		Parallel:       1,
		ReplicaID:      id,
		RequestTimeout: 30 * time.Second,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// readBundle returns one entry's bundle bytes from a store.
func readBundle(t *testing.T, st *registry.Store, id string) []byte {
	t.Helper()
	rc, err := st.OpenBundle(id)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	blob, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
