package fleet

import "repro/internal/telemetry"

// Fleet metrics, registered on the default telemetry registry so they
// surface on whichever process hosts the router or syncer (leaps-router,
// leaps-serve with -sync-from, or the simulator).
var (
	mSyncRounds = telemetry.NewCounter("fleet_sync_rounds_total",
		"registry sync rounds attempted against the primary")
	mSyncFailures = telemetry.NewCounter("fleet_sync_failures_total",
		"registry sync rounds that failed (replica kept serving last good model)")
	mSyncEntries = telemetry.NewCounter("fleet_sync_entries_total",
		"registry entries mirrored from the primary")
	mSyncGeneration = telemetry.NewGauge("fleet_sync_generation",
		"last registry pointer generation mirrored locally")
	mRouterForwards = telemetry.NewCounterVec("fleet_router_forwards_total",
		"requests forwarded to each replica", "replica")
	mHandoffs = telemetry.NewCounter("fleet_handoffs_total",
		"sessions checkpoint-handed-off between replicas on ring changes")
	mHandoffFailures = telemetry.NewCounter("fleet_handoff_failures_total",
		"session handoffs that failed and pinned the session to its old replica")
	mRingGeneration = telemetry.NewGauge("fleet_ring_generation",
		"current consistent-hash ring generation")
	mRouterHTTPSeconds = telemetry.NewHistogramVec("fleet_router_http_seconds",
		"router HTTP request latency by route", "route", telemetry.DurationBuckets())
)
