package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionAdd(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	c.Add(true, true)   // TP
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
}

func TestMeasurements(t *testing.T) {
	// Worked example: TP=80, FN=20, TN=90, FP=10.
	c := Confusion{TP: 80, FN: 20, TN: 90, FP: 10}
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"ACC", c.ACC(), 0.85},
		{"PPV", c.PPV(), 80.0 / 90},
		{"TPR", c.TPR(), 0.8},
		{"TNR", c.TNR(), 0.9},
		{"NPV", c.NPV(), 90.0 / 110},
	}
	for _, tt := range tests {
		if math.Abs(tt.got-tt.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestUndefinedMeasurementsAreNaN(t *testing.T) {
	var c Confusion
	if !math.IsNaN(c.ACC()) {
		t.Error("empty ACC not NaN")
	}
	onlyNeg := Confusion{TN: 5, FP: 1}
	if !math.IsNaN(onlyNeg.TPR()) {
		t.Error("TPR with no positives not NaN")
	}
	if math.IsNaN(onlyNeg.TNR()) {
		t.Error("TNR with negatives is NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s := Confusion{TP: 1, TN: 1}.Summary()
	str := s.String()
	if !strings.Contains(str, "ACC=1.000") {
		t.Errorf("String() = %q", str)
	}
}

func TestMean(t *testing.T) {
	ss := []Summary{
		{ACC: 0.8, PPV: 0.9, TPR: 0.7, TNR: 0.6, NPV: 0.5},
		{ACC: 0.6, PPV: 0.7, TPR: 0.9, TNR: 0.8, NPV: 0.7},
	}
	m := Mean(ss)
	if math.Abs(m.ACC-0.7) > 1e-12 || math.Abs(m.PPV-0.8) > 1e-12 ||
		math.Abs(m.TPR-0.8) > 1e-12 || math.Abs(m.TNR-0.7) > 1e-12 ||
		math.Abs(m.NPV-0.6) > 1e-12 {
		t.Errorf("Mean = %+v", m)
	}
}

func TestMeanSkipsNaN(t *testing.T) {
	ss := []Summary{
		{ACC: 0.8, TPR: math.NaN()},
		{ACC: 0.6, TPR: 0.5},
	}
	m := Mean(ss)
	if math.Abs(m.ACC-0.7) > 1e-12 {
		t.Errorf("ACC = %v", m.ACC)
	}
	if math.Abs(m.TPR-0.5) > 1e-12 {
		t.Errorf("TPR = %v, want 0.5 (NaN skipped)", m.TPR)
	}
}

func TestMeanAllNaN(t *testing.T) {
	m := Mean([]Summary{{ACC: math.NaN()}, {ACC: math.NaN()}})
	if !math.IsNaN(m.ACC) {
		t.Errorf("all-NaN mean ACC = %v, want NaN", m.ACC)
	}
}

// Properties: all measures lie in [0,1] when defined, and
// ACC is a convex combination bounded by min/max of (TPR, TNR).
func TestMeasurementPropertiesQuick(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		for _, v := range []float64{c.ACC(), c.PPV(), c.TPR(), c.TNR(), c.NPV()} {
			if !math.IsNaN(v) && (v < 0 || v > 1) {
				return false
			}
		}
		acc, tpr, tnr := c.ACC(), c.TPR(), c.TNR()
		if !math.IsNaN(acc) && !math.IsNaN(tpr) && !math.IsNaN(tnr) {
			lo, hi := math.Min(tpr, tnr), math.Max(tpr, tnr)
			if acc < lo-1e-12 || acc > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
