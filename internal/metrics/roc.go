package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ROCPoint is one operating point of a score-threshold sweep.
type ROCPoint struct {
	// FPR is the false positive rate (malicious samples classified
	// benign) and TPR the true positive rate (benign samples classified
	// benign) when classifying scores >= Threshold as benign.
	FPR, TPR  float64
	Threshold float64
}

// ROC sweeps the decision threshold over the given scores (higher = more
// benign, matching the SVM decision convention) against the ground truth
// and returns the ROC curve plus the area under it. The curve runs from
// (0,0) to (1,1).
func ROC(scores []float64, benign []bool) ([]ROCPoint, float64, error) {
	if len(scores) == 0 || len(scores) != len(benign) {
		return nil, 0, errors.New("metrics: scores and labels must be non-empty and equal length")
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			return nil, 0, fmt.Errorf("metrics: score %d is NaN", i)
		}
	}
	var pos, neg float64
	for _, b := range benign {
		if b {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, 0, errors.New("metrics: ROC needs both classes")
	}

	type sample struct {
		score  float64
		benign bool
	}
	samples := make([]sample, len(scores))
	for i := range scores {
		samples[i] = sample{scores[i], benign[i]}
	}
	// Descending by score: thresholds sweep from strict to lax.
	sort.Slice(samples, func(i, j int) bool { return samples[i].score > samples[j].score })

	curve := []ROCPoint{{FPR: 0, TPR: 0, Threshold: samples[0].score + 1}}
	var tp, fp float64
	var auc float64
	i := 0
	for i < len(samples) {
		// Process ties as one block so the curve is threshold-consistent.
		j := i
		for j < len(samples) && samples[j].score == samples[i].score {
			if samples[j].benign {
				tp++
			} else {
				fp++
			}
			j++
		}
		prev := curve[len(curve)-1]
		pt := ROCPoint{FPR: fp / neg, TPR: tp / pos, Threshold: samples[i].score}
		// Trapezoidal area increment.
		auc += (pt.FPR - prev.FPR) * (pt.TPR + prev.TPR) / 2
		curve = append(curve, pt)
		i = j
	}
	return curve, auc, nil
}
