// Package metrics implements the evaluation measurements of the paper's
// §V-B: the confusion matrix over benign (positive) and malicious
// (negative) predictions, and the five derived measures — Accuracy,
// Positive Predictive Value (precision), True Positive Rate (recall),
// True Negative Rate (specificity) and Negative Predictive Value — plus
// multi-run averaging.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
)

// Confusion is the 2×2 confusion matrix. Following the paper's
// convention, the positive class is benign: TP counts benign samples
// classified benign, TN malicious samples classified malicious, FP
// malicious samples misclassified benign, FN benign samples misclassified
// malicious.
type Confusion struct {
	TP, TN, FP, FN int
}

// Add records one prediction.
func (c *Confusion) Add(actualBenign, predictedBenign bool) {
	switch {
	case actualBenign && predictedBenign:
		c.TP++
	case actualBenign && !predictedBenign:
		c.FN++
	case !actualBenign && predictedBenign:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of recorded predictions.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// ratio returns num/den, or NaN when den is zero.
func ratio(num, den int) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}

// ACC is the accuracy (TP+TN)/total (Eqn. 6).
func (c Confusion) ACC() float64 { return ratio(c.TP+c.TN, c.Total()) }

// PPV is the positive predictive value TP/(FP+TP) (Eqn. 7).
func (c Confusion) PPV() float64 { return ratio(c.TP, c.FP+c.TP) }

// TPR is the true positive rate TP/(TP+FN) (Eqn. 8).
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// TNR is the true negative rate TN/(FP+TN) (Eqn. 9).
func (c Confusion) TNR() float64 { return ratio(c.TN, c.FP+c.TN) }

// NPV is the negative predictive value TN/(TN+FN) (Eqn. 10).
func (c Confusion) NPV() float64 { return ratio(c.TN, c.TN+c.FN) }

// F1 is the harmonic mean of PPV and TPR, computed as 2·TP/(2·TP+FP+FN).
// Like the other ratios it is NaN when its denominator is empty (no
// benign samples and no false positives recorded).
func (c Confusion) F1() float64 { return ratio(2*c.TP, 2*c.TP+c.FP+c.FN) }

// Summary bundles the six measurements of one evaluation run: the
// paper's five (Eqns. 6–10) plus the F1 score the promotion gate and
// experiment reports use.
type Summary struct {
	ACC, PPV, TPR, TNR, NPV, F1 float64
}

// Summary computes all six measurements.
func (c Confusion) Summary() Summary {
	return Summary{ACC: c.ACC(), PPV: c.PPV(), TPR: c.TPR(), TNR: c.TNR(), NPV: c.NPV(), F1: c.F1()}
}

// String renders the summary in table-row form.
func (s Summary) String() string {
	return fmt.Sprintf("ACC=%.3f PPV=%.3f TPR=%.3f TNR=%.3f NPV=%.3f F1=%.3f",
		s.ACC, s.PPV, s.TPR, s.TNR, s.NPV, s.F1)
}

// MarshalJSON renders undefined (NaN) measurements as null: JSON has no
// NaN literal, and a summary that silently fails to encode would drop
// whole API responses that embed one.
func (s Summary) MarshalJSON() ([]byte, error) {
	p := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return json.Marshal(struct {
		ACC, PPV, TPR, TNR, NPV, F1 *float64
	}{p(s.ACC), p(s.PPV), p(s.TPR), p(s.TNR), p(s.NPV), p(s.F1)})
}

// Mean averages summaries element-wise, skipping NaN entries per element
// (a run whose denominator was empty does not drag the average).
func Mean(ss []Summary) Summary {
	var out Summary
	acc := func(get func(Summary) float64, set func(*Summary, float64)) {
		var sum float64
		var n int
		for _, s := range ss {
			v := get(s)
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			set(&out, math.NaN())
			return
		}
		set(&out, sum/float64(n))
	}
	acc(func(s Summary) float64 { return s.ACC }, func(o *Summary, v float64) { o.ACC = v })
	acc(func(s Summary) float64 { return s.PPV }, func(o *Summary, v float64) { o.PPV = v })
	acc(func(s Summary) float64 { return s.TPR }, func(o *Summary, v float64) { o.TPR = v })
	acc(func(s Summary) float64 { return s.TNR }, func(o *Summary, v float64) { o.TNR = v })
	acc(func(s Summary) float64 { return s.NPV }, func(o *Summary, v float64) { o.NPV = v })
	acc(func(s Summary) float64 { return s.F1 }, func(o *Summary, v float64) { o.F1 = v })
	return out
}
