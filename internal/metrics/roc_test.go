package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCValidation(t *testing.T) {
	if _, _, err := ROC(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ROC([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single class accepted")
	}
}

func TestROCPerfectSeparation(t *testing.T) {
	scores := []float64{3, 2, 1, -1, -2, -3}
	benign := []bool{true, true, true, false, false, false}
	curve, auc, err := ROC(scores, benign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Errorf("curve start = %+v, want origin", curve[0])
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve end = %+v, want (1,1)", last)
	}
}

func TestROCInvertedSeparation(t *testing.T) {
	scores := []float64{-3, -2, 2, 3}
	benign := []bool{true, true, false, false}
	_, auc, err := ROC(scores, benign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc) > 1e-12 {
		t.Errorf("AUC = %v, want 0 for anti-correlated scores", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	benign := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		benign[i] = rng.Intn(2) == 0
	}
	_, auc, err := ROC(scores, benign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.05 {
		t.Errorf("AUC = %v for random scores, want ~0.5", auc)
	}
}

func TestROCTiesHandled(t *testing.T) {
	// All scores equal: the curve is the diagonal, AUC 0.5.
	scores := []float64{1, 1, 1, 1}
	benign := []bool{true, false, true, false}
	curve, auc, err := ROC(scores, benign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
	if len(curve) != 2 {
		t.Errorf("tied curve has %d points, want 2", len(curve))
	}
}

// Property: AUC is always within [0,1] and the curve is monotone.
func TestROCPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		scores := make([]float64, n)
		benign := make([]bool, n)
		benign[0], benign[1] = true, false // both classes present
		for i := range scores {
			scores[i] = float64(rng.Intn(10))
			if i >= 2 {
				benign[i] = rng.Intn(2) == 0
			}
		}
		curve, auc, err := ROC(scores, benign)
		if err != nil {
			return false
		}
		if auc < -1e-12 || auc > 1+1e-12 {
			return false
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].FPR < curve[i-1].FPR-1e-12 || curve[i].TPR < curve[i-1].TPR-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
