package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestROCAllOneClass(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.1}
	for _, label := range []bool{true, false} {
		labels := []bool{label, label, label}
		if _, _, err := ROC(scores, labels); err == nil {
			t.Errorf("all-%v labels: ROC accepted a single-class input", label)
		}
	}
}

func TestROCRejectsNaNScores(t *testing.T) {
	scores := []float64{0.9, math.NaN(), 0.1}
	labels := []bool{true, false, true}
	_, _, err := ROC(scores, labels)
	if err == nil {
		t.Fatal("ROC accepted a NaN score")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("error %q does not mention NaN", err)
	}
}

func TestROCInfiniteScoresStillSweep(t *testing.T) {
	// ±Inf scores are orderable, so the sweep must handle them.
	scores := []float64{math.Inf(1), 1, -1, math.Inf(-1)}
	labels := []bool{true, true, false, false}
	_, auc, err := ROC(scores, labels)
	if err != nil {
		t.Fatalf("ROC with infinite scores: %v", err)
	}
	if auc != 1 {
		t.Errorf("perfectly separated scores: AUC = %v, want 1", auc)
	}
}

func TestConfusionEmptyDenominators(t *testing.T) {
	var c Confusion
	// No predictions at all: every measure is NaN, not a panic or zero.
	s := c.Summary()
	for name, v := range map[string]float64{
		"ACC": s.ACC, "PPV": s.PPV, "TPR": s.TPR, "TNR": s.TNR, "NPV": s.NPV,
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty confusion: %s = %v, want NaN", name, v)
		}
	}

	// Only benign predictions recorded: TNR's denominator stays empty.
	c.Add(true, true)
	c.Add(true, true)
	if got := c.TNR(); !math.IsNaN(got) {
		t.Errorf("TNR with no malicious samples = %v, want NaN", got)
	}
	if got := c.ACC(); got != 1 {
		t.Errorf("ACC = %v, want 1", got)
	}
	if got := c.TPR(); got != 1 {
		t.Errorf("TPR = %v, want 1", got)
	}
}

func TestMeanSkipsNaNPerElement(t *testing.T) {
	ss := []Summary{
		{ACC: 1, PPV: math.NaN(), TPR: 0.5, TNR: math.NaN(), NPV: 0.2},
		{ACC: 0, PPV: 0.8, TPR: math.NaN(), TNR: math.NaN(), NPV: 0.4},
	}
	m := Mean(ss)
	if m.ACC != 0.5 {
		t.Errorf("ACC mean = %v, want 0.5", m.ACC)
	}
	if m.PPV != 0.8 {
		t.Errorf("PPV mean should skip the NaN run, got %v", m.PPV)
	}
	if m.TPR != 0.5 {
		t.Errorf("TPR mean should skip the NaN run, got %v", m.TPR)
	}
	if !math.IsNaN(m.TNR) {
		t.Errorf("TNR mean of all-NaN runs = %v, want NaN", m.TNR)
	}
	if math.Abs(m.NPV-0.3) > 1e-15 {
		t.Errorf("NPV mean = %v, want 0.3", m.NPV)
	}
}
