package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestROCAllOneClass(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.1}
	for _, label := range []bool{true, false} {
		labels := []bool{label, label, label}
		if _, _, err := ROC(scores, labels); err == nil {
			t.Errorf("all-%v labels: ROC accepted a single-class input", label)
		}
	}
}

func TestROCRejectsNaNScores(t *testing.T) {
	scores := []float64{0.9, math.NaN(), 0.1}
	labels := []bool{true, false, true}
	_, _, err := ROC(scores, labels)
	if err == nil {
		t.Fatal("ROC accepted a NaN score")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("error %q does not mention NaN", err)
	}
}

func TestROCInfiniteScoresStillSweep(t *testing.T) {
	// ±Inf scores are orderable, so the sweep must handle them.
	scores := []float64{math.Inf(1), 1, -1, math.Inf(-1)}
	labels := []bool{true, true, false, false}
	_, auc, err := ROC(scores, labels)
	if err != nil {
		t.Fatalf("ROC with infinite scores: %v", err)
	}
	if auc != 1 {
		t.Errorf("perfectly separated scores: AUC = %v, want 1", auc)
	}
}

func TestConfusionEmptyDenominators(t *testing.T) {
	var c Confusion
	// No predictions at all: every measure is NaN, not a panic or zero.
	s := c.Summary()
	for name, v := range map[string]float64{
		"ACC": s.ACC, "PPV": s.PPV, "TPR": s.TPR, "TNR": s.TNR, "NPV": s.NPV,
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty confusion: %s = %v, want NaN", name, v)
		}
	}

	// Only benign predictions recorded: TNR's denominator stays empty.
	c.Add(true, true)
	c.Add(true, true)
	if got := c.TNR(); !math.IsNaN(got) {
		t.Errorf("TNR with no malicious samples = %v, want NaN", got)
	}
	if got := c.ACC(); got != 1 {
		t.Errorf("ACC = %v, want 1", got)
	}
	if got := c.TPR(); got != 1 {
		t.Errorf("TPR = %v, want 1", got)
	}
}

func TestF1EmptyDenominator(t *testing.T) {
	var c Confusion
	// No predictions: 2TP+FP+FN is empty, so F1 is NaN like the other
	// ratios (not a panic, not zero).
	if got := c.F1(); !math.IsNaN(got) {
		t.Errorf("empty confusion: F1 = %v, want NaN", got)
	}
	if s := c.Summary(); !math.IsNaN(s.F1) {
		t.Errorf("empty confusion: Summary.F1 = %v, want NaN", s.F1)
	}

	// Only true negatives recorded: still no benign evidence, still NaN.
	c.Add(false, false)
	c.Add(false, false)
	if got := c.F1(); !math.IsNaN(got) {
		t.Errorf("TN-only confusion: F1 = %v, want NaN", got)
	}

	// One false positive makes the denominator non-empty: F1 becomes 0.
	c.Add(false, true)
	if got := c.F1(); got != 0 {
		t.Errorf("FP-only benign evidence: F1 = %v, want 0", got)
	}
}

func TestF1HarmonicMean(t *testing.T) {
	c := Confusion{TP: 8, FN: 2, FP: 3, TN: 7}
	ppv, tpr := c.PPV(), c.TPR()
	want := 2 * ppv * tpr / (ppv + tpr)
	if got := c.F1(); math.Abs(got-want) > 1e-15 {
		t.Errorf("F1 = %v, want harmonic mean of PPV/TPR = %v", got, want)
	}
	if !strings.Contains(c.Summary().String(), "F1=") {
		t.Errorf("Summary.String %q does not report F1", c.Summary())
	}
}

func TestMeanSkipsNaNPerElement(t *testing.T) {
	ss := []Summary{
		{ACC: 1, PPV: math.NaN(), TPR: 0.5, TNR: math.NaN(), NPV: 0.2},
		{ACC: 0, PPV: 0.8, TPR: math.NaN(), TNR: math.NaN(), NPV: 0.4},
	}
	m := Mean(ss)
	if m.ACC != 0.5 {
		t.Errorf("ACC mean = %v, want 0.5", m.ACC)
	}
	if m.PPV != 0.8 {
		t.Errorf("PPV mean should skip the NaN run, got %v", m.PPV)
	}
	if m.TPR != 0.5 {
		t.Errorf("TPR mean should skip the NaN run, got %v", m.TPR)
	}
	if !math.IsNaN(m.TNR) {
		t.Errorf("TNR mean of all-NaN runs = %v, want NaN", m.TNR)
	}
	if math.Abs(m.NPV-0.3) > 1e-15 {
		t.Errorf("NPV mean = %v, want 0.3", m.NPV)
	}
}
