package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/preprocess"
	"repro/internal/svm"
)

// classifierFile is the on-disk form of a trained classifier.
type classifierFile struct {
	Magic    string
	Version  int
	Window   int
	Lambda   float64
	Encoder  []byte
	Scaler   []byte
	Model    []byte
	HasPlatt bool
	PlattA   float64
	PlattB   float64
}

const (
	classifierMagic   = "LEAPS-MODEL"
	classifierVersion = 1
)

// Save serialises the trained classifier so a later process can run the
// testing phase without retraining.
func (c *Classifier) Save(w io.Writer) error {
	encB, err := c.enc.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	scB, err := c.scaler.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	mB, err := c.model.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	f := classifierFile{
		Magic:   classifierMagic,
		Version: classifierVersion,
		Window:  c.window,
		Lambda:  c.params.Lambda,
		Encoder: encB,
		Scaler:  scB,
		Model:   mB,
	}
	if c.platt != nil {
		f.HasPlatt = true
		f.PlattA, f.PlattB = c.platt.A, c.platt.B
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("core: encoding classifier: %w", err)
	}
	return nil
}

// LoadClassifier reads a classifier previously written by Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	var f classifierFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding classifier: %w", err)
	}
	if f.Magic != classifierMagic {
		return nil, fmt.Errorf("core: not a classifier file (magic %q)", f.Magic)
	}
	if f.Version != classifierVersion {
		return nil, fmt.Errorf("core: unsupported classifier version %d", f.Version)
	}
	if f.Window < 1 {
		return nil, fmt.Errorf("core: classifier window %d invalid", f.Window)
	}
	c := &Classifier{window: f.Window, params: svm.Params{Lambda: f.Lambda}}
	c.enc = new(preprocess.Encoder)
	if err := c.enc.UnmarshalBinary(f.Encoder); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.scaler = new(svm.Scaler)
	if err := c.scaler.UnmarshalBinary(f.Scaler); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.model = new(svm.Model)
	if err := c.model.UnmarshalBinary(f.Model); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if f.HasPlatt {
		c.platt = &svm.PlattScaler{A: f.PlattA, B: f.PlattB}
	}
	return c, nil
}
