package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/callgraph"
	"repro/internal/preprocess"
	"repro/internal/svm"
)

// classifierFile is the on-disk form of a trained classifier.
type classifierFile struct {
	Magic    string
	Version  int
	Window   int
	Lambda   float64
	Encoder  []byte
	Scaler   []byte
	Model    []byte
	HasPlatt bool
	PlattA   float64
	PlattB   float64
	// CallGraph is the serialized call-graph baseline trained alongside
	// the WSVM (since version 2). It is the degraded-mode fallback: when
	// the statistical sections fail to decode, a Monitor can still run the
	// call-graph matcher. Empty in version-1 files.
	CallGraph []byte
}

const (
	classifierMagic   = "LEAPS-MODEL"
	classifierVersion = 2
)

// Save serialises the trained classifier so a later process can run the
// testing phase without retraining.
func (c *Classifier) Save(w io.Writer) error {
	encB, err := c.enc.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	scB, err := c.scaler.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	mB, err := c.model.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	f := classifierFile{
		Magic:   classifierMagic,
		Version: classifierVersion,
		Window:  c.window,
		Lambda:  c.params.Lambda,
		Encoder: encB,
		Scaler:  scB,
		Model:   mB,
	}
	if c.platt != nil {
		f.HasPlatt = true
		f.PlattA, f.PlattB = c.platt.A, c.platt.B
	}
	if c.cg != nil {
		if f.CallGraph, err = c.cg.MarshalBinary(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("core: encoding classifier: %w", err)
	}
	return nil
}

// decodeClassifierFile reads and structurally validates the envelope of a
// classifier file, without touching the per-section payloads.
func decodeClassifierFile(r io.Reader) (classifierFile, error) {
	var f classifierFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return f, fmt.Errorf("core: decoding classifier: %w", err)
	}
	if f.Magic != classifierMagic {
		return f, fmt.Errorf("core: not a classifier file (magic %q)", f.Magic)
	}
	if f.Version < 1 || f.Version > classifierVersion {
		return f, fmt.Errorf("core: unsupported classifier version %d", f.Version)
	}
	if f.Window < 1 {
		return f, fmt.Errorf("core: classifier window %d invalid", f.Window)
	}
	return f, nil
}

// classifier reconstructs the statistical model from the file's sections.
func (f classifierFile) classifier() (*Classifier, error) {
	c := &Classifier{window: f.Window, params: svm.Params{Lambda: f.Lambda}}
	c.enc = new(preprocess.Encoder)
	if err := c.enc.UnmarshalBinary(f.Encoder); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.scaler = new(svm.Scaler)
	if err := c.scaler.UnmarshalBinary(f.Scaler); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.model = new(svm.Model)
	if err := c.model.UnmarshalBinary(f.Model); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if f.HasPlatt {
		c.platt = &svm.PlattScaler{A: f.PlattA, B: f.PlattB}
	}
	if cg, err := f.callGraph(); err == nil {
		c.cg = cg
	}
	return c, nil
}

// callGraph reconstructs the embedded call-graph baseline, if present.
func (f classifierFile) callGraph() (*callgraph.Model, error) {
	if len(f.CallGraph) == 0 {
		return nil, fmt.Errorf("core: classifier file carries no call graph")
	}
	cg := new(callgraph.Model)
	if err := cg.UnmarshalBinary(f.CallGraph); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return cg, nil
}

// LoadClassifier reads a classifier previously written by Save. It fails
// when any section is unusable; LoadMonitor is the fault-tolerant entry
// point that degrades to the call-graph baseline instead.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	f, err := decodeClassifierFile(r)
	if err != nil {
		return nil, err
	}
	return f.classifier()
}
