package core

import (
	"fmt"
	"io"

	"repro/internal/callgraph"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Monitor is the fault-tolerant front of the testing phase: a detector
// that prefers the statistical WSVM classifier but degrades to the
// call-graph baseline when the statistical sections of a model file are
// corrupt or missing, instead of refusing to monitor at all.
type Monitor struct {
	clf    *Classifier      // nil in degraded mode
	cg     *callgraph.Model // the fallback (and bundled baseline)
	window int
	cause  error // why the monitor is degraded, nil otherwise
}

// NewMonitor wraps an in-memory classifier (never degraded).
func NewMonitor(c *Classifier) *Monitor {
	return &Monitor{clf: c, cg: c.cg, window: c.window}
}

// FallbackUnavailableError reports a model bundle whose statistical
// sections are unusable and that carries no call-graph section to degrade
// to. Version-1 bundles always trip this — they predate the embedded
// call-graph fallback — so the fix is a migration, not a repair: re-save
// the model with a current build (or retrain) to produce a version-2
// bundle. DESIGN.md §5 documents the migration.
type FallbackUnavailableError struct {
	// Version is the bundle's file-format version.
	Version int
	// Cause is why the statistical sections were unusable.
	Cause error
}

func (e *FallbackUnavailableError) Error() string {
	if e.Version < 2 {
		return fmt.Sprintf("core: version-%d model bundle predates the embedded call-graph fallback (re-save or retrain to migrate to version %d): %v",
			e.Version, classifierVersion, e.Cause)
	}
	return fmt.Sprintf("core: version-%d model bundle carries no call-graph fallback: %v", e.Version, e.Cause)
}

func (e *FallbackUnavailableError) Unwrap() error { return e.Cause }

// LoadMonitor reads a classifier file like LoadClassifier but degrades
// instead of failing: when the statistical sections are unusable and the
// file carries a call-graph section, the returned Monitor runs the
// call-graph baseline and reports why via DegradedCause. Only a file whose
// envelope is unreadable — or that offers no usable model at all — is an
// error.
func LoadMonitor(r io.Reader) (*Monitor, error) {
	f, err := decodeClassifierFile(r)
	if err != nil {
		return nil, err
	}
	clf, cerr := f.classifier()
	if cerr == nil {
		return &Monitor{clf: clf, cg: clf.cg, window: clf.window}, nil
	}
	cg, gerr := f.callGraph()
	if gerr != nil {
		if len(f.CallGraph) == 0 {
			return nil, &FallbackUnavailableError{Version: f.Version, Cause: cerr}
		}
		return nil, fmt.Errorf("core: no usable model: %w (call-graph fallback: %v)", cerr, gerr)
	}
	return &Monitor{cg: cg, window: f.Window, cause: cerr}, nil
}

// BundleInfo summarises a model bundle's envelope and usability without
// keeping the loaded model. The model registry records it in entry
// manifests so listings can show what a bundle is before anyone loads it.
type BundleInfo struct {
	// Version is the bundle's file-format version.
	Version int
	// Window is the event-coalescing window the model classifies with.
	Window int
	// Degraded reports that the statistical sections are unusable and a
	// Monitor loading this bundle would run the call-graph fallback.
	Degraded bool
}

// InspectBundle decodes a model bundle just far enough to describe it:
// the file-format version, the detection window, and whether a Monitor
// would run degraded. It applies LoadMonitor's acceptance rules — a
// bundle with no usable model at all is an error, including the typed
// FallbackUnavailableError for statistical corruption with no call-graph
// section to fall back to.
func InspectBundle(r io.Reader) (BundleInfo, error) {
	f, err := decodeClassifierFile(r)
	if err != nil {
		return BundleInfo{}, err
	}
	info := BundleInfo{Version: f.Version, Window: f.Window}
	if _, cerr := f.classifier(); cerr != nil {
		if _, gerr := f.callGraph(); gerr != nil {
			if len(f.CallGraph) == 0 {
				return BundleInfo{}, &FallbackUnavailableError{Version: f.Version, Cause: cerr}
			}
			return BundleInfo{}, fmt.Errorf("core: no usable model: %w (call-graph fallback: %v)", cerr, gerr)
		}
		info.Degraded = true
	}
	return info, nil
}

// Degraded reports whether the monitor fell back to the call-graph
// baseline.
func (m *Monitor) Degraded() bool { return m.clf == nil }

// DegradedCause returns why the statistical model was unusable (nil when
// not degraded).
func (m *Monitor) DegradedCause() error { return m.cause }

// Window returns the event-coalescing width the monitor classifies with.
func (m *Monitor) Window() int { return m.window }

// Classifier returns the underlying statistical classifier, nil when
// degraded.
func (m *Monitor) Classifier() *Classifier { return m.clf }

// DetectLog classifies a full log, batch-style. In degraded mode each
// window is scored by the call-graph vote margin (see degradedDetection).
func (m *Monitor) DetectLog(log *trace.Log) ([]Detection, error) {
	if m.clf != nil {
		return m.clf.DetectLog(log)
	}
	part, err := partition.Split(log)
	if err != nil {
		return nil, err
	}
	n := part.Len() / m.window
	out := make([]Detection, 0, n)
	for w := 0; w < n; w++ {
		first := w * m.window
		evs := part.Events[first : first+m.window]
		out = append(out, degradedDetection(m.cg, evs, first, first+m.window-1))
	}
	return out, nil
}

// Stream starts a streaming session (degraded sessions score windows with
// the call-graph baseline).
func (m *Monitor) Stream(modules *trace.ModuleMap) (*StreamDetector, error) {
	if m.clf != nil {
		return m.clf.Stream(modules)
	}
	if modules == nil {
		return nil, fmt.Errorf("core: nil module map")
	}
	return &StreamDetector{cg: m.cg, window: m.window, modules: modules}, nil
}

// RestoreStream starts a streaming session and resumes it from a
// checkpoint written by StreamDetector.Checkpoint. The checkpoint must
// have been taken in the same mode (degraded or not) as this monitor.
func (m *Monitor) RestoreStream(modules *trace.ModuleMap, r io.Reader) (*StreamDetector, error) {
	s, err := m.Stream(modules)
	if err != nil {
		return nil, err
	}
	if err := s.restore(r); err != nil {
		return nil, err
	}
	return s, nil
}
