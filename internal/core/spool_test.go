package core

import (
	"testing"
)

func TestSpoolCheckpointRoundTrip(t *testing.T) {
	clf, mal := trainStream(t, 41)
	dir := t.TempDir()

	s1, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	cut := clf.window + 3
	for _, e := range mal.Events[:cut] {
		if _, err := s1.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSpoolCheckpoint(dir, "sess-1", s1); err != nil {
		t.Fatal(err)
	}

	ids, err := SpooledSessions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "sess-1" {
		t.Fatalf("SpooledSessions = %v, want [sess-1]", ids)
	}

	r, err := OpenSpoolCheckpoint(dir, "sess-1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := clf.RestoreStream(mal.Modules, r)
	if cerr := r.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if s2.Consumed() != cut || s2.Pending() != 3 {
		t.Fatalf("restored consumed=%d pending=%d, want %d/3", s2.Consumed(), s2.Pending(), cut)
	}

	if err := RemoveSpoolCheckpoint(dir, "sess-1"); err != nil {
		t.Fatal(err)
	}
	if ids, err = SpooledSessions(dir); err != nil || len(ids) != 0 {
		t.Fatalf("after removal: ids=%v err=%v", ids, err)
	}
	// Double-removal and removal of never-spooled ids are clean no-ops.
	if err := RemoveSpoolCheckpoint(dir, "sess-1"); err != nil {
		t.Fatal(err)
	}
}

func TestSpoolOverwriteReplacesCheckpoint(t *testing.T) {
	clf, mal := trainStream(t, 42)
	dir := t.TempDir()

	s, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSpoolCheckpoint(dir, "s", s); err != nil {
		t.Fatal(err)
	}
	for _, e := range mal.Events[:clf.window+1] {
		if _, err := s.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSpoolCheckpoint(dir, "s", s); err != nil {
		t.Fatal(err)
	}

	r, err := OpenSpoolCheckpoint(dir, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	restored, err := clf.RestoreStream(mal.Modules, r)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Consumed() != clf.window+1 {
		t.Fatalf("restored consumed=%d, want the second checkpoint's %d",
			restored.Consumed(), clf.window+1)
	}
}

func TestSpoolRejectsHostileIDs(t *testing.T) {
	clf, mal := trainStream(t, 43)
	dir := t.TempDir()
	s, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", ".hidden", "nul\x00byte"} {
		if err := WriteSpoolCheckpoint(dir, id, s); err == nil {
			t.Errorf("id %q accepted by WriteSpoolCheckpoint", id)
		}
		if _, err := OpenSpoolCheckpoint(dir, id); err == nil {
			t.Errorf("id %q accepted by OpenSpoolCheckpoint", id)
		}
	}
}

func TestSpooledSessionsMissingDir(t *testing.T) {
	ids, err := SpooledSessions(t.TempDir() + "/never-created")
	if err != nil || ids != nil {
		t.Fatalf("missing dir: ids=%v err=%v, want nil/nil", ids, err)
	}
}
