package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 11)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadClassifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadClassifier: %v", err)
	}

	// The loaded classifier must produce identical detections.
	want, err := clf.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("detection counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, want[i], got[i])
		}
	}
	if loaded.Model().NumSVs() != clf.Model().NumSVs() {
		t.Errorf("SV count = %d, want %d", loaded.Model().NumSVs(), clf.Model().NumSVs())
	}
}

func TestInspectBundle(t *testing.T) {
	clf, _ := trainStream(t, 31)

	// Healthy bundle: current version, not degraded.
	f := saveFile(t, clf)
	info, err := InspectBundle(encodeFile(t, f))
	if err != nil {
		t.Fatalf("InspectBundle(healthy): %v", err)
	}
	if info.Version != classifierVersion || info.Window != clf.window || info.Degraded {
		t.Errorf("healthy bundle info = %+v, want version %d window %d not degraded",
			info, classifierVersion, clf.window)
	}

	// Corrupt statistical sections with a call graph present: degraded.
	f = saveFile(t, clf)
	f.Model = []byte("corrupt")
	info, err = InspectBundle(encodeFile(t, f))
	if err != nil {
		t.Fatalf("InspectBundle(degradable): %v", err)
	}
	if !info.Degraded {
		t.Error("corrupt statistical sections with a call graph: Degraded = false")
	}

	// Version-1 bundle (no call-graph section) with corrupt statistics:
	// the typed migration error, same as LoadMonitor.
	f = saveFile(t, clf)
	f.Version = 1
	f.Model = []byte("corrupt")
	f.CallGraph = nil
	if _, err = InspectBundle(encodeFile(t, f)); err == nil {
		t.Fatal("version-1 corrupt bundle accepted")
	}
	var fbErr *FallbackUnavailableError
	if !errors.As(err, &fbErr) {
		t.Fatalf("error %v is not a FallbackUnavailableError", err)
	}
	if fbErr.Version != 1 {
		t.Errorf("FallbackUnavailableError.Version = %d, want 1", fbErr.Version)
	}

	// Garbage never decodes.
	if _, err := InspectBundle(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadClassifierRejectsGarbage(t *testing.T) {
	if _, err := LoadClassifier(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadClassifier(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
