package core

import (
	"bytes"
	"testing"
)

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 11)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadClassifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadClassifier: %v", err)
	}

	// The loaded classifier must produce identical detections.
	want, err := clf.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("detection counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, want[i], got[i])
		}
	}
	if loaded.Model().NumSVs() != clf.Model().NumSVs() {
		t.Errorf("SV count = %d, want %d", loaded.Model().NumSVs(), clf.Model().NumSVs())
	}
}

func TestLoadClassifierRejectsGarbage(t *testing.T) {
	if _, err := LoadClassifier(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadClassifier(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
