package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/callgraph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/trace"
)

// EvalResult holds one evaluation run of the three models on one dataset:
// the paper's Figure 6/7 bar groups (and Table I's WSVM row).
type EvalResult struct {
	// CGraph, SVM and WSVM are the five measurements per model.
	CGraph metrics.Summary
	SVM    metrics.Summary
	WSVM   metrics.Summary
	// HMM holds the §VI-B extension model's measurements; populated only
	// by EvaluateWithHMM, as signalled by HMMIncluded.
	HMM         metrics.Summary
	HMMIncluded bool
	// WSVMAUC and SVMAUC are the areas under the ROC curves of the two
	// margin classifiers over the test windows (threshold sweeps on the
	// decision values). NaN when undefined.
	WSVMAUC, SVMAUC float64
	// CGraphUndecidedFrac is the fraction of test windows the call-graph
	// model could not decide (counted as misclassified above).
	CGraphUndecidedFrac float64
	// TrainBenign, TrainMixed, TestBenign, TestMalicious are the sampled
	// set sizes.
	TrainBenign, TrainMixed, TestBenign, TestMalicious int
	// MeanMixedWeight is the average WSVM cost over mixed training
	// windows (diagnostic: how much the CFG pruned).
	MeanMixedWeight float64
}

// Evaluate runs the full §V protocol once: build training data from the
// benign and mixed logs, train CGraph, SVM and WSVM, and test all three on
// held-out benign windows (positives) and pure-malicious windows
// (negatives).
func Evaluate(benign, mixed, malicious *trace.Log, config Config) (*EvalResult, error) {
	return evaluate(benign, mixed, malicious, config, false)
}

// EvaluateWithHMM is Evaluate plus the §VI-B HMM extension model as a
// fourth classifier.
func EvaluateWithHMM(benign, mixed, malicious *trace.Log, config Config) (*EvalResult, error) {
	return evaluate(benign, mixed, malicious, config, true)
}

func evaluate(benign, mixed, malicious *trace.Log, config Config, includeHMM bool) (*EvalResult, error) {
	if malicious == nil {
		return nil, errors.New("core: nil malicious log")
	}
	config = config.withDefaults()
	td, err := BuildTrainingData(benign, mixed, config)
	if err != nil {
		return nil, err
	}

	malPart, err := partition.Split(malicious)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning malicious log: %w", err)
	}
	malWins, err := coalesce(td.Encoder, malPart, config.Window)
	if err != nil {
		return nil, err
	}

	// Test-set sampling (the same 20% protocol as training).
	rng := rand.New(rand.NewSource(config.Seed + 2))
	testBenign, err := sampleWindows(rng, td.benignTest, config.SampleFraction)
	if err != nil {
		return nil, fmt.Errorf("sampling benign test windows: %w", err)
	}
	testMal, err := sampleWindows(rng, malWins, config.SampleFraction)
	if err != nil {
		return nil, fmt.Errorf("sampling malicious test windows: %w", err)
	}

	res := &EvalResult{
		TestBenign:    len(testBenign),
		TestMalicious: len(testMal),
	}
	for _, w := range td.mixedWeight {
		res.MeanMixedWeight += w
	}
	if len(td.mixedWeight) > 0 {
		res.MeanMixedWeight /= float64(len(td.mixedWeight))
	}

	// WSVM (the LEAPS model).
	wsvm, err := td.Train()
	if err != nil {
		return nil, fmt.Errorf("core: training WSVM: %w", err)
	}
	// Plain SVM comparison.
	plain, err := td.TrainUnweighted()
	if err != nil {
		return nil, fmt.Errorf("core: training SVM: %w", err)
	}
	res.TrainBenign = int(float64(len(td.benignTrain))*config.SampleFraction + 0.5)
	res.TrainMixed = int(float64(len(td.mixed))*config.SampleFraction + 0.5)

	var wsvmConf, svmConf metrics.Confusion
	wsvm.classifyWindows(testBenign, true, &wsvmConf)
	wsvm.classifyWindows(testMal, false, &wsvmConf)
	plain.classifyWindows(testBenign, true, &svmConf)
	plain.classifyWindows(testMal, false, &svmConf)
	res.WSVM = wsvmConf.Summary()
	res.SVM = svmConf.Summary()
	res.WSVMAUC = testAUC(wsvm, testBenign, testMal)
	res.SVMAUC = testAUC(plain, testBenign, testMal)

	// Call-graph baseline: BCG from the benign training windows' events,
	// MCG from the whole mixed log.
	benignTrainLog := &partition.Log{App: td.BenignPart.App, PID: td.BenignPart.PID}
	for _, w := range td.benignTrain {
		end := w.start + config.Window
		if end > td.BenignPart.Len() {
			end = td.BenignPart.Len()
		}
		benignTrainLog.Events = append(benignTrainLog.Events, td.BenignPart.Events[w.start:end]...)
	}
	cg, err := callgraph.Train(benignTrainLog, td.MixedPart)
	if err != nil {
		return nil, fmt.Errorf("core: training call-graph model: %w", err)
	}
	var cgConf metrics.Confusion
	var undecided int
	cgraphClassify(cg, td.BenignPart, testBenign, config.Window, true, &cgConf, &undecided)
	cgraphClassify(cg, malPart, testMal, config.Window, false, &cgConf, &undecided)
	res.CGraph = cgConf.Summary()
	if total := len(testBenign) + len(testMal); total > 0 {
		res.CGraphUndecidedFrac = float64(undecided) / float64(total)
	}

	if includeHMM {
		hc, err := trainHMM(td)
		if err != nil {
			return nil, err
		}
		var hmmConf metrics.Confusion
		if err := hc.classifyWindows(testBenign, true, &hmmConf); err != nil {
			return nil, err
		}
		if err := hc.classifyWindows(testMal, false, &hmmConf); err != nil {
			return nil, err
		}
		res.HMM = hmmConf.Summary()
		res.HMMIncluded = true
	}
	return res, nil
}

// EvaluateRuns repeats Evaluate over several data-selection seeds and
// averages the measurements, as the paper averages all results over 10
// runs. The logs are fixed; selection and sampling vary per run.
func EvaluateRuns(benign, mixed, malicious *trace.Log, config Config, runs int) (*EvalResult, error) {
	if runs < 1 {
		return nil, fmt.Errorf("core: runs %d must be positive", runs)
	}
	var cgs, svms, wsvms []metrics.Summary
	var wsvmAUCs, svmAUCs []float64
	agg := &EvalResult{}
	for r := 0; r < runs; r++ {
		cfg := config
		cfg.Seed = config.Seed + int64(r)*7919
		res, err := Evaluate(benign, mixed, malicious, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: run %d: %w", r, err)
		}
		cgs = append(cgs, res.CGraph)
		svms = append(svms, res.SVM)
		wsvms = append(wsvms, res.WSVM)
		wsvmAUCs = append(wsvmAUCs, res.WSVMAUC)
		svmAUCs = append(svmAUCs, res.SVMAUC)
		agg.CGraphUndecidedFrac += res.CGraphUndecidedFrac
		agg.MeanMixedWeight += res.MeanMixedWeight
		agg.TrainBenign, agg.TrainMixed = res.TrainBenign, res.TrainMixed
		agg.TestBenign, agg.TestMalicious = res.TestBenign, res.TestMalicious
	}
	agg.CGraph = metrics.Mean(cgs)
	agg.SVM = metrics.Mean(svms)
	agg.WSVM = metrics.Mean(wsvms)
	agg.WSVMAUC = meanSkipNaN(wsvmAUCs)
	agg.SVMAUC = meanSkipNaN(svmAUCs)
	agg.CGraphUndecidedFrac /= float64(runs)
	agg.MeanMixedWeight /= float64(runs)
	return agg, nil
}

// meanSkipNaN averages the defined entries; NaN when none are.
func meanSkipNaN(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// testAUC sweeps the classifier's decision values over the test windows
// and returns the area under the ROC curve (NaN when undefined).
func testAUC(c *Classifier, testBenign, testMal []window) float64 {
	scores := make([]float64, 0, len(testBenign)+len(testMal))
	labels := make([]bool, 0, len(testBenign)+len(testMal))
	for _, w := range testBenign {
		scores = append(scores, c.model.Decision(c.scaler.Apply(w.vec)))
		labels = append(labels, true)
	}
	for _, w := range testMal {
		scores = append(scores, c.model.Decision(c.scaler.Apply(w.vec)))
		labels = append(labels, false)
	}
	_, auc, err := metrics.ROC(scores, labels)
	if err != nil {
		return math.NaN()
	}
	return auc
}
