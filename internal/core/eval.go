package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/trace"
)

// EvalResult holds one evaluation run of the three models on one dataset:
// the paper's Figure 6/7 bar groups (and Table I's WSVM row).
type EvalResult struct {
	// CGraph, SVM and WSVM are the five measurements per model.
	CGraph metrics.Summary
	SVM    metrics.Summary
	WSVM   metrics.Summary
	// HMM holds the §VI-B extension model's measurements; populated only
	// by EvaluateWithHMM, as signalled by HMMIncluded.
	HMM         metrics.Summary
	HMMIncluded bool
	// WSVMAUC and SVMAUC are the areas under the ROC curves of the two
	// margin classifiers over the test windows (threshold sweeps on the
	// decision values). NaN when undefined.
	WSVMAUC, SVMAUC float64
	// CGraphUndecidedFrac is the fraction of test windows the call-graph
	// model could not decide (counted as misclassified above).
	CGraphUndecidedFrac float64
	// TrainBenign, TrainMixed, TestBenign, TestMalicious are the actual
	// sampled set sizes.
	TrainBenign, TrainMixed, TestBenign, TestMalicious int
	// MeanMixedWeight is the average WSVM cost over mixed training
	// windows (diagnostic: how much the CFG pruned).
	MeanMixedWeight float64
}

// evalData bundles the seed-independent state shared by every evaluation
// run on one dataset triple: the training artifacts plus the partitioned
// and coalesced pure-malicious log.
type evalData struct {
	art     *Artifacts
	malPart *partition.Log
	malWins []window
}

// buildEvalData computes the per-dataset tier once. Both the training
// artifacts and the malicious windows depend only on the logs and the
// configuration, never on the run seed.
func buildEvalData(ctx context.Context, benign, mixed, malicious *trace.Log, config Config) (*evalData, error) {
	if malicious == nil {
		return nil, errors.New("core: nil malicious log")
	}
	art, err := BuildArtifacts(ctx, benign, mixed, config)
	if err != nil {
		return nil, err
	}
	malPart, err := partition.Split(malicious)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning malicious log: %w", err)
	}
	malWins, err := coalesce(art.Encoder, malPart, art.cfg.Window)
	if err != nil {
		return nil, err
	}
	return &evalData{art: art, malPart: malPart, malWins: malWins}, nil
}

// run executes one seed's selection, training and testing on the shared
// evaluation data. It only reads the shared state, so seed-varied runs
// may execute concurrently.
func (ed *evalData) run(ctx context.Context, seed int64, includeHMM bool) (*EvalResult, error) {
	cfg := ed.art.cfg
	sel := ed.art.Select(seed)

	// Test-set sampling (the same 20% protocol as training).
	rng := rand.New(rand.NewSource(seed + 2))
	testBenign, err := sampleWindows(rng, sel.benignTest, cfg.SampleFraction)
	if err != nil {
		return nil, fmt.Errorf("sampling benign test windows: %w", err)
	}
	testMal, err := sampleWindows(rng, ed.malWins, cfg.SampleFraction)
	if err != nil {
		return nil, fmt.Errorf("sampling malicious test windows: %w", err)
	}

	res := &EvalResult{
		TestBenign:    len(testBenign),
		TestMalicious: len(testMal),
	}
	for _, w := range sel.mixedWeight {
		res.MeanMixedWeight += w
	}
	if len(sel.mixedWeight) > 0 {
		res.MeanMixedWeight /= float64(len(sel.mixedWeight))
	}

	// WSVM (the LEAPS model).
	wsvm, err := sel.train(ctx, true)
	if err != nil {
		return nil, fmt.Errorf("core: training WSVM: %w", err)
	}
	// Plain SVM comparison.
	plain, err := sel.train(ctx, false)
	if err != nil {
		return nil, fmt.Errorf("core: training SVM: %w", err)
	}
	res.TrainBenign, res.TrainMixed = wsvm.TrainSizes()

	var wsvmConf, svmConf metrics.Confusion
	wsvm.classifyWindows(testBenign, true, &wsvmConf)
	wsvm.classifyWindows(testMal, false, &wsvmConf)
	plain.classifyWindows(testBenign, true, &svmConf)
	plain.classifyWindows(testMal, false, &svmConf)
	res.WSVM = wsvmConf.Summary()
	res.SVM = svmConf.Summary()
	res.WSVMAUC = testAUC(wsvm, testBenign, testMal)
	res.SVMAUC = testAUC(plain, testBenign, testMal)

	// Call-graph baseline: BCG from the benign training windows' events,
	// MCG from the whole mixed log.
	benignTrainLog := &partition.Log{App: ed.art.BenignPart.App, PID: ed.art.BenignPart.PID}
	for _, w := range sel.benignTrain {
		end := w.start + cfg.Window
		if end > ed.art.BenignPart.Len() {
			end = ed.art.BenignPart.Len()
		}
		benignTrainLog.Events = append(benignTrainLog.Events, ed.art.BenignPart.Events[w.start:end]...)
	}
	cg, err := callgraph.Train(benignTrainLog, ed.art.MixedPart)
	if err != nil {
		return nil, fmt.Errorf("core: training call-graph model: %w", err)
	}
	var cgConf metrics.Confusion
	var undecided int
	cgraphClassify(cg, ed.art.BenignPart, testBenign, cfg.Window, true, &cgConf, &undecided)
	cgraphClassify(cg, ed.malPart, testMal, cfg.Window, false, &cgConf, &undecided)
	res.CGraph = cgConf.Summary()
	if total := len(testBenign) + len(testMal); total > 0 {
		res.CGraphUndecidedFrac = float64(undecided) / float64(total)
	}

	if includeHMM {
		hc, err := trainHMM(sel)
		if err != nil {
			return nil, err
		}
		var hmmConf metrics.Confusion
		if err := hc.classifyWindows(testBenign, true, &hmmConf); err != nil {
			return nil, err
		}
		if err := hc.classifyWindows(testMal, false, &hmmConf); err != nil {
			return nil, err
		}
		res.HMM = hmmConf.Summary()
		res.HMMIncluded = true
	}
	return res, nil
}

// Evaluate runs the full §V protocol once: build training data from the
// benign and mixed logs, train CGraph, SVM and WSVM, and test all three on
// held-out benign windows (positives) and pure-malicious windows
// (negatives).
func Evaluate(ctx context.Context, benign, mixed, malicious *trace.Log, config Config) (*EvalResult, error) {
	return evaluate(ctx, benign, mixed, malicious, config, false)
}

// EvaluateWithHMM is Evaluate plus the §VI-B HMM extension model as a
// fourth classifier.
func EvaluateWithHMM(ctx context.Context, benign, mixed, malicious *trace.Log, config Config) (*EvalResult, error) {
	return evaluate(ctx, benign, mixed, malicious, config, true)
}

func evaluate(ctx context.Context, benign, mixed, malicious *trace.Log, config Config, includeHMM bool) (*EvalResult, error) {
	ed, err := buildEvalData(ctx, benign, mixed, malicious, config)
	if err != nil {
		return nil, err
	}
	return ed.run(ctx, ed.art.cfg.Seed, includeHMM)
}

// EvaluateRuns repeats the evaluation over several data-selection seeds
// and averages the measurements, as the paper averages all results over
// 10 runs. The seed-independent artifacts (partitioning, encoder fit,
// CFG inference, weight assessment, window coalescing) are built exactly
// once and shared; only the cheap per-seed tail (split, sampling, weight
// shuffle, training) repeats, on up to Config.Parallel concurrent
// workers. Results are merged in run order and are identical for any
// Parallel value.
func EvaluateRuns(ctx context.Context, benign, mixed, malicious *trace.Log, config Config, runs int) (*EvalResult, error) {
	if runs < 1 {
		return nil, fmt.Errorf("core: runs %d must be positive", runs)
	}
	ed, err := buildEvalData(ctx, benign, mixed, malicious, config)
	if err != nil {
		return nil, err
	}

	results := make([]*EvalResult, runs)
	errs := make([]error, runs)
	workers := resolveParallel(ed.art.cfg.Parallel)
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		for r := 0; r < runs; r++ {
			results[r], errs[r] = ed.run(ctx, config.Seed+int64(r)*7919, false)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for r := 0; r < runs; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[r], errs[r] = ed.run(ctx, config.Seed+int64(r)*7919, false)
			}(r)
		}
		wg.Wait()
	}

	var cgs, svms, wsvms []metrics.Summary
	var wsvmAUCs, svmAUCs []float64
	agg := &EvalResult{}
	for r, res := range results {
		if errs[r] != nil {
			return nil, fmt.Errorf("core: run %d: %w", r, errs[r])
		}
		cgs = append(cgs, res.CGraph)
		svms = append(svms, res.SVM)
		wsvms = append(wsvms, res.WSVM)
		wsvmAUCs = append(wsvmAUCs, res.WSVMAUC)
		svmAUCs = append(svmAUCs, res.SVMAUC)
		agg.CGraphUndecidedFrac += res.CGraphUndecidedFrac
		agg.MeanMixedWeight += res.MeanMixedWeight
		agg.TrainBenign, agg.TrainMixed = res.TrainBenign, res.TrainMixed
		agg.TestBenign, agg.TestMalicious = res.TestBenign, res.TestMalicious
	}
	agg.CGraph = metrics.Mean(cgs)
	agg.SVM = metrics.Mean(svms)
	agg.WSVM = metrics.Mean(wsvms)
	agg.WSVMAUC = meanSkipNaN(wsvmAUCs)
	agg.SVMAUC = meanSkipNaN(svmAUCs)
	agg.CGraphUndecidedFrac /= float64(runs)
	agg.MeanMixedWeight /= float64(runs)
	return agg, nil
}

// meanSkipNaN averages the defined entries; NaN when none are.
func meanSkipNaN(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// testAUC sweeps the classifier's decision values over the test windows
// and returns the area under the ROC curve (NaN when undefined).
func testAUC(c *Classifier, testBenign, testMal []window) float64 {
	scores := make([]float64, 0, len(testBenign)+len(testMal))
	labels := make([]bool, 0, len(testBenign)+len(testMal))
	var buf []float64
	for _, w := range testBenign {
		buf = c.scaler.ApplyInto(buf[:0], w.vec)
		scores = append(scores, c.model.Decision(buf))
		labels = append(labels, true)
	}
	for _, w := range testMal {
		buf = c.scaler.ApplyInto(buf[:0], w.vec)
		scores = append(scores, c.model.Decision(buf))
		labels = append(labels, false)
	}
	_, auc, err := metrics.ROC(scores, labels)
	if err != nil {
		return math.NaN()
	}
	return auc
}
