package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// This file implements the paper's §II-B2 remark that application-wise
// classifiers are an evaluation convenience only: "LEAPS can coalesce all
// application data from the system event log to learn a universal
// classifier for testing." A universal classifier trains one model over
// the benign/mixed log pairs of several applications, with one shared
// feature encoder, and tests on any application's logs.

// LogPair is one application's training material.
type LogPair struct {
	// Benign is the clean run; Mixed the infected run of the same
	// application.
	Benign *trace.Log
	Mixed  *trace.Log
}

// UniversalTrainingData aggregates per-application training data under a
// single shared feature encoder.
type UniversalTrainingData struct {
	// PerApp holds each application's pipeline artifacts (CFGs, weights,
	// windows), all encoded with the shared encoder.
	PerApp []*TrainingData
	// Encoder is the shared feature encoder fitted on every
	// application's training events.
	Encoder *preprocess.Encoder

	cfg Config
}

// BuildUniversalTrainingData runs the seed-independent pipeline tier for
// every application and re-encodes all windows with one shared encoder so
// a single classifier can be trained across applications. Per-application
// partitioning and artifact building run concurrently (bounded by
// Config.Parallel).
func BuildUniversalTrainingData(ctx context.Context, pairs []LogPair, config Config) (*UniversalTrainingData, error) {
	if len(pairs) == 0 {
		return nil, errors.New("core: no training pairs")
	}
	config = config.withDefaults()
	if err := config.Validate(); err != nil {
		return nil, err
	}
	ctx, sp := telemetry.StartSpan(ctx, "train/build")
	defer sp.End()
	par := resolveParallel(config.Parallel)

	// Partition every pair's logs; independent across pairs and sides.
	parts := make([][2]*partition.Log, len(pairs))
	partTasks := make([]func() error, 0, 2*len(pairs))
	for i, p := range pairs {
		if p.Benign == nil || p.Mixed == nil {
			return nil, fmt.Errorf("core: pair %d has a nil log", i)
		}
		i, p := i, p
		partTasks = append(partTasks,
			func() error {
				_, sp := telemetry.StartSpan(ctx, "partition")
				defer sp.End()
				var err error
				if parts[i][0], err = partition.Split(p.Benign); err != nil {
					return fmt.Errorf("core: pair %d: %w", i, err)
				}
				return nil
			},
			func() error {
				_, sp := telemetry.StartSpan(ctx, "partition")
				defer sp.End()
				var err error
				if parts[i][1], err = partition.Split(p.Mixed); err != nil {
					return fmt.Errorf("core: pair %d: %w", i, err)
				}
				return nil
			},
		)
	}
	if err := inParallel(par, partTasks...); err != nil {
		return nil, err
	}

	// The shared encoder is the one barrier: it must see every
	// application's events before any windows are encoded.
	var fitEvents []partition.Event
	for i := range parts {
		fitEvents = append(fitEvents, parts[i][0].Events...)
		fitEvents = append(fitEvents, parts[i][1].Events...)
	}
	enc, err := preprocess.FitContext(ctx, fitEvents, config.Preprocess)
	if err != nil {
		return nil, err
	}

	u := &UniversalTrainingData{Encoder: enc, cfg: config, PerApp: make([]*TrainingData, len(pairs))}
	appTasks := make([]func() error, len(pairs))
	for i := range pairs {
		i := i
		appTasks[i] = func() error {
			art, err := buildArtifactsFromParts(ctx, parts[i][0], parts[i][1], enc, config)
			if err != nil {
				return fmt.Errorf("core: pair %d: %w", i, err)
			}
			u.PerApp[i] = art.TrainingData()
			return nil
		}
	}
	if err := inParallel(par, appTasks...); err != nil {
		return nil, err
	}
	return u, nil
}

// Train fits one weighted SVM over the pooled training windows of all
// applications.
func (u *UniversalTrainingData) Train(ctx context.Context) (*Classifier, error) {
	ctx, sp := telemetry.StartSpan(ctx, "train")
	defer sp.End()
	rng := rand.New(rand.NewSource(u.cfg.Seed + 1))
	var prob svm.Problem
	var raw [][]float64
	for _, td := range u.PerApp {
		sel := td.sel
		benign, err := sampleWindows(rng, sel.benignTrain, u.cfg.SampleFraction)
		if err != nil {
			return nil, fmt.Errorf("sampling benign training windows: %w", err)
		}
		for _, w := range benign {
			raw = append(raw, w.vec)
			prob.Y = append(prob.Y, 1)
			prob.Weight = append(prob.Weight, 1)
		}
		picks, err := sampleIndices(rng, len(td.mixed), u.cfg.SampleFraction)
		if err != nil {
			return nil, fmt.Errorf("sampling mixed training windows: %w", err)
		}
		for _, p := range picks {
			raw = append(raw, td.mixed[p].vec)
			prob.Y = append(prob.Y, -1)
			prob.Weight = append(prob.Weight, sel.mixedWeight[p])
		}
	}
	scaler, err := svm.FitScaler(raw)
	if err != nil {
		return nil, err
	}
	prob.X = scaler.ApplyAll(raw)
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	var params svm.Params
	if u.cfg.FixedParams != nil {
		params = *u.cfg.FixedParams
	} else {
		grid := u.cfg.Grid
		grid.Seed = u.cfg.Seed
		if grid.Parallel == 0 {
			grid.Parallel = u.cfg.Parallel
		}
		_, spG := telemetry.StartSpan(ctx, "gridsearch")
		best, _, err := svm.GridSearch(prob, grid)
		spG.End()
		if err != nil {
			return nil, err
		}
		params = best
	}
	_, spT := telemetry.StartSpan(ctx, "smo")
	model, err := svm.Train(prob, params)
	spT.End()
	if err != nil {
		return nil, err
	}
	return &Classifier{
		enc:    u.Encoder,
		scaler: scaler,
		model:  model,
		platt:  fitPlatt(model, prob),
		window: u.cfg.Window,
		params: params,
	}, nil
}

// EvaluateUniversal trains the universal classifier on all pairs and tests
// it per application against that application's held-out benign windows
// and the given pure-malicious logs (one per pair, aligned by index). It
// returns one Summary per application plus the pooled summary.
func EvaluateUniversal(ctx context.Context, pairs []LogPair, malicious []*trace.Log, config Config) ([]metrics.Summary, metrics.Summary, error) {
	if len(malicious) != len(pairs) {
		return nil, metrics.Summary{}, fmt.Errorf("core: %d malicious logs for %d pairs", len(malicious), len(pairs))
	}
	u, err := BuildUniversalTrainingData(ctx, pairs, config)
	if err != nil {
		return nil, metrics.Summary{}, err
	}
	clf, err := u.Train(ctx)
	if err != nil {
		return nil, metrics.Summary{}, err
	}
	config = config.withDefaults()
	rng := rand.New(rand.NewSource(config.Seed + 2))

	var pooled metrics.Confusion
	perApp := make([]metrics.Summary, len(pairs))
	for i, td := range u.PerApp {
		malPart, err := partition.Split(malicious[i])
		if err != nil {
			return nil, metrics.Summary{}, err
		}
		malWins, err := coalesce(u.Encoder, malPart, config.Window)
		if err != nil {
			return nil, metrics.Summary{}, err
		}
		testBenign, err := sampleWindows(rng, td.sel.benignTest, config.SampleFraction)
		if err != nil {
			return nil, metrics.Summary{}, fmt.Errorf("sampling benign test windows: %w", err)
		}
		testMal, err := sampleWindows(rng, malWins, config.SampleFraction)
		if err != nil {
			return nil, metrics.Summary{}, fmt.Errorf("sampling malicious test windows: %w", err)
		}
		var conf metrics.Confusion
		clf.classifyWindows(testBenign, true, &conf)
		clf.classifyWindows(testMal, false, &conf)
		perApp[i] = conf.Summary()
		pooled.TP += conf.TP
		pooled.TN += conf.TN
		pooled.FP += conf.FP
		pooled.FN += conf.FN
	}
	return perApp, pooled.Summary(), nil
}
