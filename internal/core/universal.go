package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/cfg"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/trace"
	"repro/internal/weight"
)

// This file implements the paper's §II-B2 remark that application-wise
// classifiers are an evaluation convenience only: "LEAPS can coalesce all
// application data from the system event log to learn a universal
// classifier for testing." A universal classifier trains one model over
// the benign/mixed log pairs of several applications, with one shared
// feature encoder, and tests on any application's logs.

// LogPair is one application's training material.
type LogPair struct {
	// Benign is the clean run; Mixed the infected run of the same
	// application.
	Benign *trace.Log
	Mixed  *trace.Log
}

// UniversalTrainingData aggregates per-application training data under a
// single shared feature encoder.
type UniversalTrainingData struct {
	// PerApp holds each application's pipeline artifacts (CFGs, weights,
	// windows), all encoded with the shared encoder.
	PerApp []*TrainingData
	// Encoder is the shared feature encoder fitted on every
	// application's training events.
	Encoder *preprocess.Encoder

	cfg Config
}

// BuildUniversalTrainingData runs the training-phase pipeline for every
// application and re-encodes all windows with one shared encoder so a
// single classifier can be trained across applications.
func BuildUniversalTrainingData(pairs []LogPair, config Config) (*UniversalTrainingData, error) {
	if len(pairs) == 0 {
		return nil, errors.New("core: no training pairs")
	}
	config = config.withDefaults()
	if err := config.Validate(); err != nil {
		return nil, err
	}

	// Fit the shared encoder over every application's events first.
	var fitEvents []partition.Event
	parts := make([][2]*partition.Log, len(pairs))
	for i, p := range pairs {
		if p.Benign == nil || p.Mixed == nil {
			return nil, fmt.Errorf("core: pair %d has a nil log", i)
		}
		bp, err := partition.Split(p.Benign)
		if err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		mp, err := partition.Split(p.Mixed)
		if err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		parts[i] = [2]*partition.Log{bp, mp}
		fitEvents = append(fitEvents, bp.Events...)
		fitEvents = append(fitEvents, mp.Events...)
	}
	enc, err := preprocess.Fit(fitEvents, config.Preprocess)
	if err != nil {
		return nil, err
	}

	u := &UniversalTrainingData{Encoder: enc, cfg: config}
	for i := range pairs {
		td, err := buildTrainingDataWithEncoder(parts[i][0], parts[i][1], enc, config)
		if err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		u.PerApp = append(u.PerApp, td)
	}
	return u, nil
}

// buildTrainingDataWithEncoder is BuildTrainingData with pre-partitioned
// logs and a shared, already-fitted encoder.
func buildTrainingDataWithEncoder(bp, mp *partition.Log, enc *preprocess.Encoder, config Config) (*TrainingData, error) {
	td := &TrainingData{cfg: config, Encoder: enc, BenignPart: bp, MixedPart: mp}
	var err error
	if td.BenignCFG, err = cfg.Infer(bp); err != nil {
		return nil, err
	}
	if td.MixedCFG, err = cfg.Infer(mp); err != nil {
		return nil, err
	}
	if td.Weights, err = weight.Assess(td.BenignCFG.Graph, td.MixedCFG, config.Weight); err != nil {
		return nil, err
	}
	benignWins, err := coalesce(enc, bp, config.Window)
	if err != nil {
		return nil, err
	}
	mixedWins, err := coalesce(enc, mp, config.Window)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(config.Seed))
	perm := rng.Perm(len(benignWins))
	nTrain := int(float64(len(benignWins)) * config.TrainFraction)
	for i, p := range perm {
		if i < nTrain {
			td.benignTrain = append(td.benignTrain, benignWins[p])
		} else {
			td.benignTest = append(td.benignTest, benignWins[p])
		}
	}
	td.mixed = mixedWins
	td.mixedWeight = make([]float64, len(mixedWins))
	for i, w := range mixedWins {
		benignity := td.Weights.MeanBenignity(w.start, w.start+config.Window, unscoredBenignity)
		td.mixedWeight[i] = 1 - benignity
	}
	return td, nil
}

// Train fits one weighted SVM over the pooled training windows of all
// applications.
func (u *UniversalTrainingData) Train() (*Classifier, error) {
	rng := rand.New(rand.NewSource(u.cfg.Seed + 1))
	var prob svm.Problem
	var raw [][]float64
	for _, td := range u.PerApp {
		benign, err := sampleWindows(rng, td.benignTrain, u.cfg.SampleFraction)
		if err != nil {
			return nil, fmt.Errorf("sampling benign training windows: %w", err)
		}
		for _, w := range benign {
			raw = append(raw, w.vec)
			prob.Y = append(prob.Y, 1)
			prob.Weight = append(prob.Weight, 1)
		}
		n := int(float64(len(td.mixed))*u.cfg.SampleFraction + 0.5)
		if u.cfg.SampleFraction >= 1 {
			n = len(td.mixed)
		}
		perm := rng.Perm(len(td.mixed))
		for _, p := range perm[:n] {
			raw = append(raw, td.mixed[p].vec)
			prob.Y = append(prob.Y, -1)
			prob.Weight = append(prob.Weight, td.mixedWeight[p])
		}
	}
	scaler, err := svm.FitScaler(raw)
	if err != nil {
		return nil, err
	}
	prob.X = scaler.ApplyAll(raw)
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	var params svm.Params
	if u.cfg.FixedParams != nil {
		params = *u.cfg.FixedParams
	} else {
		grid := u.cfg.Grid
		grid.Seed = u.cfg.Seed
		best, _, err := svm.GridSearch(prob, grid)
		if err != nil {
			return nil, err
		}
		params = best
	}
	model, err := svm.Train(prob, params)
	if err != nil {
		return nil, err
	}
	return &Classifier{
		enc:    u.Encoder,
		scaler: scaler,
		model:  model,
		platt:  fitPlatt(model, prob),
		window: u.cfg.Window,
		params: params,
	}, nil
}

// EvaluateUniversal trains the universal classifier on all pairs and tests
// it per application against that application's held-out benign windows
// and the given pure-malicious logs (one per pair, aligned by index). It
// returns one Summary per application plus the pooled summary.
func EvaluateUniversal(pairs []LogPair, malicious []*trace.Log, config Config) ([]metrics.Summary, metrics.Summary, error) {
	if len(malicious) != len(pairs) {
		return nil, metrics.Summary{}, fmt.Errorf("core: %d malicious logs for %d pairs", len(malicious), len(pairs))
	}
	u, err := BuildUniversalTrainingData(pairs, config)
	if err != nil {
		return nil, metrics.Summary{}, err
	}
	clf, err := u.Train()
	if err != nil {
		return nil, metrics.Summary{}, err
	}
	config = config.withDefaults()
	rng := rand.New(rand.NewSource(config.Seed + 2))

	var pooled metrics.Confusion
	perApp := make([]metrics.Summary, len(pairs))
	for i, td := range u.PerApp {
		malPart, err := partition.Split(malicious[i])
		if err != nil {
			return nil, metrics.Summary{}, err
		}
		malWins, err := coalesce(u.Encoder, malPart, config.Window)
		if err != nil {
			return nil, metrics.Summary{}, err
		}
		testBenign, err := sampleWindows(rng, td.benignTest, config.SampleFraction)
		if err != nil {
			return nil, metrics.Summary{}, fmt.Errorf("sampling benign test windows: %w", err)
		}
		testMal, err := sampleWindows(rng, malWins, config.SampleFraction)
		if err != nil {
			return nil, metrics.Summary{}, fmt.Errorf("sampling malicious test windows: %w", err)
		}
		var conf metrics.Confusion
		clf.classifyWindows(testBenign, true, &conf)
		clf.classifyWindows(testMal, false, &conf)
		perApp[i] = conf.Summary()
		pooled.TP += conf.TP
		pooled.TN += conf.TN
		pooled.FP += conf.FP
		pooled.FN += conf.FN
	}
	return perApp, pooled.Summary(), nil
}
