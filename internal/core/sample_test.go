package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func sampleRNG() *rand.Rand { return rand.New(rand.NewSource(7)) }

func someWindows(n int) []window {
	out := make([]window, n)
	for i := range out {
		out[i] = window{vec: []float64{float64(i)}, start: i}
	}
	return out
}

func TestSampleWindowsEmptySet(t *testing.T) {
	_, err := sampleWindows(sampleRNG(), nil, 0.5)
	if !errors.Is(err, ErrNoWindows) {
		t.Fatalf("empty set: err = %v, want ErrNoWindows", err)
	}
	_, err = sampleWindows(sampleRNG(), []window{}, 1)
	if !errors.Is(err, ErrNoWindows) {
		t.Fatalf("empty slice: err = %v, want ErrNoWindows", err)
	}
}

func TestSampleWindowsBadFraction(t *testing.T) {
	for _, f := range []float64{0, -0.2, math.NaN()} {
		_, err := sampleWindows(sampleRNG(), someWindows(5), f)
		if !errors.Is(err, ErrBadSampleFraction) {
			t.Errorf("fraction %v: err = %v, want ErrBadSampleFraction", f, err)
		}
	}
}

func TestSampleWindowsDraws(t *testing.T) {
	wins := someWindows(10)
	got, err := sampleWindows(sampleRNG(), wins, 0.2)
	if err != nil {
		t.Fatalf("sampleWindows: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("sampled %d windows, want 2", len(got))
	}

	// A tiny fraction still draws at least one window.
	got, err = sampleWindows(sampleRNG(), wins, 1e-9)
	if err != nil || len(got) != 1 {
		t.Fatalf("tiny fraction: got %d windows, err %v; want 1, nil", len(got), err)
	}

	// fraction >= 1 copies the set in order.
	got, err = sampleWindows(sampleRNG(), wins, 1)
	if err != nil || len(got) != len(wins) {
		t.Fatalf("full fraction: got %d windows, err %v", len(got), err)
	}
	for i := range got {
		if got[i].start != wins[i].start {
			t.Fatalf("full fraction reordered windows at %d", i)
		}
	}
}
