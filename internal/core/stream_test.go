package core

import (
	"testing"
)

func TestStreamMatchesBatch(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 21)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := clf.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := clf.Stream(logs.Malicious.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Detection
	for _, e := range logs.Malicious.Events {
		det, err := stream.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			streamed = append(streamed, *det)
		}
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d detections, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i] != batch[i] {
			t.Fatalf("detection %d: stream %+v vs batch %+v", i, streamed[i], batch[i])
		}
	}
	if stream.Pending() >= 10 {
		t.Errorf("Pending() = %d after full drain", stream.Pending())
	}
}

func TestStreamValidation(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 22)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clf.Stream(nil); err == nil {
		t.Error("nil module map accepted")
	}
}
