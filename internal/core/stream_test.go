package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/partition"
	"repro/internal/trace"
)

func TestStreamMatchesBatch(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 21)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := clf.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := clf.Stream(logs.Malicious.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Detection
	for _, e := range logs.Malicious.Events {
		det, err := stream.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			streamed = append(streamed, *det)
		}
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d detections, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i] != batch[i] {
			t.Fatalf("detection %d: stream %+v vs batch %+v", i, streamed[i], batch[i])
		}
	}
	if stream.Pending() >= 10 {
		t.Errorf("Pending() = %d after full drain", stream.Pending())
	}
}

// trainStream builds a classifier for streaming tests.
func trainStream(t *testing.T, seed int64) (*Classifier, *trace.Log) {
	t.Helper()
	logs := genLogs(t, "vim_reverse_tcp", seed)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	return clf, logs.Malicious
}

func TestStreamFeedRecoversFromEventError(t *testing.T) {
	clf, mal := trainStream(t, 23)
	stream, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}

	// Fail partitioning for exactly one event mid-stream.
	failAt := 3
	calls := 0
	injected := errors.New("boom")
	splitOne = func(log *trace.Log, s *partition.Scratch) (*partition.Log, error) {
		calls++
		if calls == failAt+1 {
			return nil, injected
		}
		return partition.SplitInto(log, s)
	}
	defer func() { splitOne = partition.SplitInto }()

	var dets int
	for i, e := range mal.Events[:3*clf.window] {
		det, err := stream.Feed(e)
		if i == failAt {
			var evErr *EventError
			if !errors.As(err, &evErr) {
				t.Fatalf("event %d: got %v, want *EventError", i, err)
			}
			if evErr.Ordinal != failAt || !errors.Is(err, injected) {
				t.Fatalf("EventError = %+v", evErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if det != nil {
			dets++
		}
	}
	if dets == 0 {
		t.Error("no detections after recovering from a mid-window error")
	}
	if stream.Skipped() != 1 {
		t.Errorf("Skipped() = %d, want 1", stream.Skipped())
	}
	if stream.Consumed() != 3*clf.window {
		t.Errorf("Consumed() = %d, want %d", stream.Consumed(), 3*clf.window)
	}
}

func TestStreamWindowAlignmentWithSkips(t *testing.T) {
	clf, mal := trainStream(t, 24)
	stream, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}

	// The 4th event fed is skipped: the first window then spans
	// window+1 stream ordinals.
	calls := 0
	splitOne = func(log *trace.Log, s *partition.Scratch) (*partition.Log, error) {
		calls++
		if calls == 4 {
			return nil, errors.New("skip me")
		}
		return partition.SplitInto(log, s)
	}
	defer func() { splitOne = partition.SplitInto }()

	var det *Detection
	for _, e := range mal.Events[:clf.window+1] {
		d, err := stream.Feed(e)
		var evErr *EventError
		if err != nil && !errors.As(err, &evErr) {
			t.Fatal(err)
		}
		if d != nil {
			det = d
		}
	}
	if det == nil {
		t.Fatal("no detection after window+1 events with one skip")
	}
	if det.FirstEvent != 0 || det.LastEvent != clf.window {
		t.Errorf("window spans events %d-%d, want 0-%d (skip widens the span)",
			det.FirstEvent, det.LastEvent, clf.window)
	}
	if stream.Pending() != 0 {
		t.Errorf("Pending() = %d after completed window", stream.Pending())
	}
}

func TestStreamCheckpointRestoreMatchesUninterrupted(t *testing.T) {
	clf, mal := trainStream(t, 25)
	n := 5 * clf.window
	events := mal.Events[:n]

	// Uninterrupted reference run.
	ref, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var want []Detection
	for _, e := range events {
		det, err := ref.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			want = append(want, *det)
		}
	}

	// Interrupted run: checkpoint mid-window, restore, continue.
	cut := 2*clf.window + 3
	s1, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var got []Detection
	for _, e := range events[:cut] {
		det, err := s1.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			got = append(got, *det)
		}
	}
	var ckpt bytes.Buffer
	if err := s1.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	s2, err := clf.RestoreStream(mal.Modules, &ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Consumed() != cut || s2.Pending() != 3 {
		t.Fatalf("restored state: consumed %d pending %d, want %d / 3",
			s2.Consumed(), s2.Pending(), cut)
	}
	for _, e := range events[cut:] {
		det, err := s2.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			got = append(got, *det)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("interrupted run produced %d detections, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("detection %d: interrupted %+v vs uninterrupted %+v", i, got[i], want[i])
		}
	}
}

func TestStreamRestoreRejectsBadCheckpoints(t *testing.T) {
	clf, mal := trainStream(t, 26)
	if _, err := clf.RestoreStream(mal.Modules, bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage checkpoint accepted")
	}

	// A checkpoint from a degraded detector must not restore into a
	// statistical one.
	deg := &StreamDetector{cg: clf.CallGraph(), window: clf.window, modules: mal.Modules}
	var ckpt bytes.Buffer
	if err := deg.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := clf.RestoreStream(mal.Modules, &ckpt); err == nil {
		t.Error("degraded checkpoint restored into statistical detector")
	}

	// Window mismatch.
	other := &StreamDetector{clf: clf, window: clf.window + 1, modules: mal.Modules}
	ckpt.Reset()
	if err := other.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := clf.RestoreStream(mal.Modules, &ckpt); err == nil {
		t.Error("window-mismatched checkpoint accepted")
	}
}

func TestStreamValidation(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 22)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clf.Stream(nil); err == nil {
		t.Error("nil module map accepted")
	}
}

// TestStreamFeedSteadyStateAllocs pins the ingest hot path: once the
// detector's scratch arenas and interning maps are warm, feeding events
// allocates nothing except the Detection returned per completed window.
func TestStreamFeedSteadyStateAllocs(t *testing.T) {
	clf, mal := trainStream(t, 29)
	stream, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up on the full stream so every module and function name the
	// log can produce is already interned.
	for _, e := range mal.Events {
		if _, err := stream.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	windows := float64(len(mal.Events)/clf.window + 2)
	allocs := testing.AllocsPerRun(5, func() {
		for _, e := range mal.Events {
			if _, err := stream.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > windows {
		t.Errorf("Feed of %d warm events allocated %.0f times, want <= %.0f (one Detection per window)",
			len(mal.Events), allocs, windows)
	}
}
