package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"testing"
)

// saveFile round-trips a classifier through Save and re-decodes the
// envelope so tests can corrupt individual sections.
func saveFile(t *testing.T, clf *Classifier) classifierFile {
	t.Helper()
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := decodeClassifierFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func encodeFile(t *testing.T, f classifierFile) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

func TestLoadMonitorHealthyFile(t *testing.T) {
	clf, mal := trainStream(t, 27)
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mon, err := LoadMonitor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mon.Degraded() {
		t.Fatalf("healthy file loaded degraded: %v", mon.DegradedCause())
	}
	if mon.Classifier() == nil || mon.Window() != clf.window {
		t.Fatalf("monitor state: clf=%v window=%d", mon.Classifier() != nil, mon.Window())
	}
	want, err := clf.DetectLog(mal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mon.DetectLog(mal)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("monitor %d detections, classifier %d", len(got), len(want))
	}
}

func TestLoadMonitorDegradesToCallGraph(t *testing.T) {
	clf, mal := trainStream(t, 28)
	f := saveFile(t, clf)
	f.Model = []byte("rotten")

	mon, err := LoadMonitor(encodeFile(t, f))
	if err != nil {
		t.Fatalf("LoadMonitor refused a file with a usable call graph: %v", err)
	}
	if !mon.Degraded() || mon.DegradedCause() == nil {
		t.Fatal("corrupt statistical section did not degrade the monitor")
	}
	if mon.Classifier() != nil {
		t.Fatal("degraded monitor still exposes a classifier")
	}

	// Degraded batch detection runs and flags the malicious log.
	dets, err := mon.DetectLog(mal)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("degraded DetectLog produced no windows")
	}
	var malicious int
	for _, d := range dets {
		if d.Malicious {
			malicious++
		}
	}
	if malicious == 0 {
		t.Error("degraded call-graph matcher flagged nothing in the pure-malicious log")
	}

	// Degraded streaming matches degraded batch.
	stream, err := mon.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Degraded() {
		t.Fatal("stream from degraded monitor is not degraded")
	}
	var streamed []Detection
	for _, e := range mal.Events {
		det, err := stream.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			streamed = append(streamed, *det)
		}
	}
	if len(streamed) != len(dets) {
		t.Fatalf("degraded stream %d detections, batch %d", len(streamed), len(dets))
	}
	for i := range dets {
		if streamed[i] != dets[i] {
			t.Fatalf("degraded detection %d: stream %+v vs batch %+v", i, streamed[i], dets[i])
		}
	}
}

func TestLoadMonitorDegradedCheckpointRoundTrip(t *testing.T) {
	clf, mal := trainStream(t, 29)
	f := saveFile(t, clf)
	f.Scaler = nil // unusable statistical section

	mon, err := LoadMonitor(encodeFile(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if !mon.Degraded() {
		t.Fatal("monitor not degraded")
	}
	n := 3*mon.Window() + 2
	ref, err := mon.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var want []Detection
	for _, e := range mal.Events[:n] {
		if det, err := ref.Feed(e); err != nil {
			t.Fatal(err)
		} else if det != nil {
			want = append(want, *det)
		}
	}

	cut := mon.Window() + 4
	s1, err := mon.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var got []Detection
	for _, e := range mal.Events[:cut] {
		if det, err := s1.Feed(e); err != nil {
			t.Fatal(err)
		} else if det != nil {
			got = append(got, *det)
		}
	}
	var ckpt bytes.Buffer
	if err := s1.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	s2, err := mon.RestoreStream(mal.Modules, &ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mal.Events[cut:n] {
		if det, err := s2.Feed(e); err != nil {
			t.Fatal(err)
		} else if det != nil {
			got = append(got, *det)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("interrupted degraded run %d detections, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degraded detection %d differs after restore: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestLoadMonitorNoFallbackAvailable(t *testing.T) {
	clf, _ := trainStream(t, 30)
	f := saveFile(t, clf)
	f.Model = []byte("rotten")
	f.CallGraph = []byte("also rotten")
	if _, err := LoadMonitor(encodeFile(t, f)); err == nil {
		t.Error("file with no usable model accepted")
	}

	// Version-1 files carry no call-graph section: a corrupt model is
	// fatal there too, and the failure is typed so callers can tell "your
	// bundle predates the fallback" apart from a generic parse failure.
	f = saveFile(t, clf)
	f.Version = 1
	f.Model = nil
	f.CallGraph = nil
	_, err := LoadMonitor(encodeFile(t, f))
	if err == nil {
		t.Fatal("v1 file with corrupt model accepted")
	}
	var fbErr *FallbackUnavailableError
	if !errors.As(err, &fbErr) {
		t.Fatalf("v1 fallback failure is %T (%v), want *FallbackUnavailableError", err, err)
	}
	if fbErr.Version != 1 || fbErr.Cause == nil {
		t.Errorf("FallbackUnavailableError = %+v, want Version 1 with a cause", fbErr)
	}
	if !strings.Contains(err.Error(), "migrate") {
		t.Errorf("error %q does not mention the v1→v2 migration", err)
	}
}

func TestLoadMonitorV2MissingCallGraphIsTyped(t *testing.T) {
	// A v2 bundle saved without a call graph (classifier trained from a
	// v1 file) also reports the typed error, without the migration hint.
	clf, _ := trainStream(t, 46)
	f := saveFile(t, clf)
	f.Scaler = []byte("rotten")
	f.CallGraph = nil
	_, err := LoadMonitor(encodeFile(t, f))
	var fbErr *FallbackUnavailableError
	if !errors.As(err, &fbErr) {
		t.Fatalf("got %T (%v), want *FallbackUnavailableError", err, err)
	}
	if fbErr.Version != classifierVersion {
		t.Errorf("Version = %d, want %d", fbErr.Version, classifierVersion)
	}
}

func TestLoadClassifierAcceptsV1Files(t *testing.T) {
	clf, mal := trainStream(t, 31)
	f := saveFile(t, clf)
	f.Version = 1
	f.CallGraph = nil

	loaded, err := LoadClassifier(encodeFile(t, f))
	if err != nil {
		t.Fatalf("version-1 file rejected: %v", err)
	}
	if loaded.CallGraph() != nil {
		t.Error("v1 file produced a call graph out of thin air")
	}
	want, err := clf.DetectLog(mal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.DetectLog(mal)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("detection %d differs under v1 load", i)
		}
	}
}
