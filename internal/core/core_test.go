package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/svm"
)

// fastConfig avoids grid search so tests stay quick.
func fastConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	}
}

func genLogs(t *testing.T, name string, seed int64) *dataset.Logs {
	t.Helper()
	spec, err := dataset.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	logs, err := spec.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return logs
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"zero value ok", Config{}, false},
		{"negative window", Config{Window: -1}, true},
		{"train fraction high", Config{TrainFraction: 1.5}, true},
		{"sample fraction negative", Config{SampleFraction: -0.1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuildTrainingDataValidation(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 1)
	if _, err := BuildTrainingData(nil, logs.Mixed, fastConfig(1)); err == nil {
		t.Error("nil benign accepted")
	}
	if _, err := BuildTrainingData(logs.Benign, nil, fastConfig(1)); err == nil {
		t.Error("nil mixed accepted")
	}
	bad := fastConfig(1)
	bad.TrainFraction = 2
	if _, err := BuildTrainingData(logs.Benign, logs.Mixed, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestBuildTrainingDataArtifacts(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 2)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if td.BenignCFG.Graph.NumNodes() == 0 || td.MixedCFG.Graph.NumNodes() == 0 {
		t.Fatal("empty inferred CFGs")
	}
	if td.MixedCFG.Graph.NumNodes() <= td.BenignCFG.Graph.NumNodes() {
		t.Error("mixed CFG not larger than benign CFG despite payload code")
	}
	if len(td.Weights.EventBenignity) == 0 {
		t.Fatal("no event weights assessed")
	}
	// Split sizes: roughly 50/50 of benign windows.
	total := len(td.sel.benignTrain) + len(td.sel.benignTest)
	if total == 0 {
		t.Fatal("no benign windows")
	}
	if d := len(td.sel.benignTrain) - len(td.sel.benignTest); d < -1 || d > 1 {
		t.Errorf("benign split = %d/%d, want near-even", len(td.sel.benignTrain), len(td.sel.benignTest))
	}
	if len(td.mixed) == 0 || len(td.mixedWeight) != len(td.mixed) {
		t.Fatalf("mixed windows/weights = %d/%d", len(td.mixed), len(td.mixedWeight))
	}
	for i, w := range td.mixedWeight {
		if w < 0 || w > 1 || math.IsNaN(w) {
			t.Fatalf("mixed weight %d = %v out of [0,1]", i, w)
		}
	}
}

func TestTrainAndDetect(t *testing.T) {
	logs := genLogs(t, "winscp_reverse_tcp", 3)
	td, err := BuildTrainingData(logs.Benign, logs.Mixed, fastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := td.Train()
	if err != nil {
		t.Fatal(err)
	}
	if clf.Model().NumSVs() == 0 {
		t.Fatal("classifier has no support vectors")
	}
	if clf.Params().Lambda != 8 {
		t.Errorf("Params().Lambda = %v, want fixed 8", clf.Params().Lambda)
	}

	// Detections on the pure malicious log: overwhelmingly malicious.
	dets, err := clf.DetectLog(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("no detections on malicious log")
	}
	var mal int
	for _, d := range dets {
		if d.Malicious != (d.Score < 0) {
			t.Fatal("Detection.Malicious inconsistent with Score")
		}
		if d.LastEvent-d.FirstEvent != 9 {
			t.Fatalf("window bounds = [%d,%d]", d.FirstEvent, d.LastEvent)
		}
		if d.Malicious {
			mal++
		}
	}
	if frac := float64(mal) / float64(len(dets)); frac < 0.7 {
		t.Errorf("malicious detection rate = %.2f, want >= 0.7", frac)
	}

	// Detections on the benign log: mostly benign.
	dets, err = clf.DetectLog(logs.Benign)
	if err != nil {
		t.Fatal(err)
	}
	mal = 0
	for _, d := range dets {
		if d.Malicious {
			mal++
		}
	}
	if frac := float64(mal) / float64(len(dets)); frac > 0.35 {
		t.Errorf("false-alarm rate on benign log = %.2f, want <= 0.35", frac)
	}
}

func TestEvaluateOrdering(t *testing.T) {
	// The paper's headline: WSVM beats SVM beats (roughly) CGraph.
	for _, name := range []string{"vim_codeinject", "winscp_reverse_tcp_online"} {
		t.Run(name, func(t *testing.T) {
			logs := genLogs(t, name, 4)
			res, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(4))
			if err != nil {
				t.Fatal(err)
			}
			if res.WSVM.ACC <= res.SVM.ACC {
				t.Errorf("WSVM ACC %.3f not above SVM ACC %.3f", res.WSVM.ACC, res.SVM.ACC)
			}
			if res.WSVM.ACC <= res.CGraph.ACC {
				t.Errorf("WSVM ACC %.3f not above CGraph ACC %.3f", res.WSVM.ACC, res.CGraph.ACC)
			}
			if res.WSVM.TPR <= res.CGraph.TPR {
				t.Errorf("WSVM TPR %.3f not above CGraph TPR %.3f", res.WSVM.TPR, res.CGraph.TPR)
			}
			if res.TestBenign == 0 || res.TestMalicious == 0 {
				t.Error("empty test sets")
			}
			if res.MeanMixedWeight <= 0 || res.MeanMixedWeight >= 1 {
				t.Errorf("MeanMixedWeight = %v", res.MeanMixedWeight)
			}
		})
	}
}

func TestEvaluateValidation(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 5)
	if _, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, nil, fastConfig(5)); err == nil {
		t.Error("nil malicious accepted")
	}
}

func TestEvaluateRuns(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 6)
	res, err := EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.WSVM.ACC) || res.WSVM.ACC <= 0.5 {
		t.Errorf("averaged WSVM ACC = %v", res.WSVM.ACC)
	}
	if _, err := EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(6), 0); err == nil {
		t.Error("runs=0 accepted")
	}
}

func TestShuffleWeightsAblationDegrades(t *testing.T) {
	logs := genLogs(t, "winscp_reverse_tcp", 7)
	cfg := fastConfig(7)
	normal, err := EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShuffleWeights = true
	shuffled, err := EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffled weights destroy the CFG signal: accuracy must drop.
	if shuffled.WSVM.ACC >= normal.WSVM.ACC {
		t.Errorf("shuffled WSVM ACC %.3f not below intact %.3f",
			shuffled.WSVM.ACC, normal.WSVM.ACC)
	}
}

func TestDeterministicEvaluate(t *testing.T) {
	logs := genLogs(t, "putty_reverse_tcp", 8)
	a, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.WSVM != b.WSVM || a.SVM != b.SVM || a.CGraph != b.CGraph {
		t.Error("same seed produced different evaluation results")
	}
}

func TestEvaluateWithHMM(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 9)
	res, err := EvaluateWithHMM(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.HMMIncluded {
		t.Fatal("HMMIncluded = false")
	}
	if math.IsNaN(res.HMM.ACC) || res.HMM.ACC < 0.5 {
		t.Errorf("HMM ACC = %v, want informative classifier", res.HMM.ACC)
	}
	// Plain Evaluate must not spend time on the HMM.
	plain, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if plain.HMMIncluded {
		t.Error("Evaluate set HMMIncluded")
	}
}

func TestEvaluateReportsAUC(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 10)
	res, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.WSVMAUC) || res.WSVMAUC < 0.6 {
		t.Errorf("WSVM AUC = %v, want well above chance", res.WSVMAUC)
	}
	if math.IsNaN(res.SVMAUC) {
		t.Errorf("SVM AUC = %v", res.SVMAUC)
	}
	if res.WSVMAUC < res.SVMAUC-0.1 {
		t.Errorf("WSVM AUC %v far below SVM AUC %v", res.WSVMAUC, res.SVMAUC)
	}
}

func TestAlignCFGsOnSourceTrojan(t *testing.T) {
	spec, err := dataset.SourceTrojanVariant("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	logs, err := spec.Generate(33)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(33)
	unaligned, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AlignCFGs = true
	aligned, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.WSVM.ACC <= unaligned.WSVM.ACC {
		t.Errorf("aligned ACC %.3f not above unaligned %.3f",
			aligned.WSVM.ACC, unaligned.WSVM.ACC)
	}
	// Diagnostic: the mean mixed weight must rise once benign paths are
	// recognised again (fewer windows treated as confident negatives).
	if aligned.MeanMixedWeight >= unaligned.MeanMixedWeight {
		t.Errorf("aligned mean weight %.3f not below unaligned %.3f (weights should shrink for benign windows)",
			aligned.MeanMixedWeight, unaligned.MeanMixedWeight)
	}
}

func TestEvaluateOneClass(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 12)
	s, err := EvaluateOneClass(context.Background(), logs.Benign, logs.Malicious, fastConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s.ACC) {
		t.Fatal("one-class ACC undefined")
	}
	// The baseline accepts some held-out benign windows, but far fewer
	// than its ν=0.05 training-rejection rate suggests: the discrete
	// 30-dim feature space is sparsely covered by the training sample,
	// so unseen-but-benign combinations fall outside the learned region
	// — one of the reasons anomaly-only detection underperforms here.
	if s.TPR < 0.25 {
		t.Errorf("one-class TPR = %v, want >= 0.25", s.TPR)
	}
	// ...and the known headline result: without mixed training data it
	// cannot compete with the CFG-guided WSVM.
	res, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, fastConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if s.ACC >= res.WSVM.ACC {
		t.Errorf("one-class ACC %v unexpectedly beats WSVM %v", s.ACC, res.WSVM.ACC)
	}
	if _, err := EvaluateOneClass(context.Background(), nil, logs.Malicious, fastConfig(12)); err == nil {
		t.Error("nil benign accepted")
	}
	if _, err := EvaluateOneClass(context.Background(), logs.Benign, nil, fastConfig(12)); err == nil {
		t.Error("nil malicious accepted")
	}
}
