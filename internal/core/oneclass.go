package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// oneClassNu is the ν parameter of the one-class baseline: allow ~5 % of
// benign training windows to fall outside the learned region.
const oneClassNu = 0.05

// EvaluateOneClass runs the anomaly-detection baseline from the paper's
// related work (one-class SVM à la Heller et al.): the model sees *only*
// the benign log — no mixed data, hence no label-noise problem but also
// no malicious signal — and is tested on the same held-out benign and
// pure-malicious windows as the other models. The comparison isolates
// what the mixed log (suitably de-noised) buys LEAPS.
func EvaluateOneClass(ctx context.Context, benign, malicious *trace.Log, config Config) (metrics.Summary, error) {
	config = config.withDefaults()
	if err := config.Validate(); err != nil {
		return metrics.Summary{}, err
	}
	if benign == nil || malicious == nil {
		return metrics.Summary{}, errors.New("core: nil log")
	}
	ctx, sp := telemetry.StartSpan(ctx, "oneclass")
	defer sp.End()
	var bp, mp *partition.Log
	err := inParallel(resolveParallel(config.Parallel),
		func() error {
			_, sp := telemetry.StartSpan(ctx, "partition")
			defer sp.End()
			var err error
			if bp, err = partition.Split(benign); err != nil {
				return fmt.Errorf("core: partitioning benign log: %w", err)
			}
			return nil
		},
		func() error {
			_, sp := telemetry.StartSpan(ctx, "partition")
			defer sp.End()
			var err error
			if mp, err = partition.Split(malicious); err != nil {
				return fmt.Errorf("core: partitioning malicious log: %w", err)
			}
			return nil
		},
	)
	if err != nil {
		return metrics.Summary{}, err
	}
	// The encoder sees only benign events: a deployment without any
	// infected training material.
	enc, err := preprocess.FitContext(ctx, bp.Events, config.Preprocess)
	if err != nil {
		return metrics.Summary{}, err
	}
	benignWins, err := coalesce(enc, bp, config.Window)
	if err != nil {
		return metrics.Summary{}, err
	}
	malWins, err := coalesce(enc, mp, config.Window)
	if err != nil {
		return metrics.Summary{}, err
	}

	rng := rand.New(rand.NewSource(config.Seed))
	perm := rng.Perm(len(benignWins))
	nTrain := int(float64(len(benignWins)) * config.TrainFraction)
	var train, test []window
	for i, p := range perm {
		if i < nTrain {
			train = append(train, benignWins[p])
		} else {
			test = append(test, benignWins[p])
		}
	}
	trainSample, err := sampleWindows(rng, train, config.SampleFraction)
	if err != nil {
		return metrics.Summary{}, fmt.Errorf("sampling benign training windows: %w", err)
	}
	testBenign, err := sampleWindows(rng, test, config.SampleFraction)
	if err != nil {
		return metrics.Summary{}, fmt.Errorf("sampling benign test windows: %w", err)
	}
	testMal, err := sampleWindows(rng, malWins, config.SampleFraction)
	if err != nil {
		return metrics.Summary{}, fmt.Errorf("sampling malicious test windows: %w", err)
	}
	if len(trainSample) < 2 {
		return metrics.Summary{}, errors.New("core: too few benign windows for one-class training")
	}

	raw := make([][]float64, len(trainSample))
	for i, w := range trainSample {
		raw[i] = w.vec
	}
	scaler, err := svm.FitScaler(raw)
	if err != nil {
		return metrics.Summary{}, err
	}
	scaled := scaler.ApplyAll(raw)
	_, spT := telemetry.StartSpan(ctx, "smo")
	model, err := svm.TrainOneClass(scaled, svm.OneClassParams{
		Nu:     oneClassNu,
		Kernel: svm.RBFKernel{Sigma2: medianSquaredDistance(scaled, rng)},
	})
	spT.End()
	if err != nil {
		return metrics.Summary{}, err
	}

	var conf metrics.Confusion
	var buf []float64
	for _, w := range testBenign {
		buf = scaler.ApplyInto(buf[:0], w.vec)
		conf.Add(true, model.PredictInlier(buf))
	}
	for _, w := range testMal {
		buf = scaler.ApplyInto(buf[:0], w.vec)
		conf.Add(false, model.PredictInlier(buf))
	}
	return conf.Summary(), nil
}

// medianSquaredDistance estimates the RBF radius by the median heuristic:
// the median of pairwise squared distances over a sample of the training
// vectors. Parameter-free and standard for one-class models, which have no
// labels to cross-validate against.
func medianSquaredDistance(x [][]float64, rng *rand.Rand) float64 {
	if len(x) < 2 {
		return 1
	}
	const pairs = 512
	d2s := make([]float64, 0, pairs)
	for p := 0; p < pairs; p++ {
		a, b := x[rng.Intn(len(x))], x[rng.Intn(len(x))]
		var d2 float64
		for d := range a {
			diff := a[d] - b[d]
			d2 += diff * diff
		}
		if d2 > 0 {
			d2s = append(d2s, d2)
		}
	}
	if len(d2s) == 0 {
		return 1
	}
	sort.Float64s(d2s)
	return d2s[len(d2s)/2]
}
