package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Checkpoint spool: a directory holding one checkpoint file per live
// streaming session. A serving process checkpoints every session here on
// graceful shutdown (and on idle eviction) and restores them on restart,
// so a restarted monitor produces the same verdicts an uninterrupted one
// would have. Writes are atomic (temp file + rename), so a crash during a
// spool write leaves either the previous checkpoint or none — never a
// torn file.

// spoolExt is the filename suffix of spooled checkpoints.
const spoolExt = ".ckpt"

// spoolPath validates a session id and resolves its checkpoint path. Ids
// are restricted to a filename-safe alphabet so a hostile id cannot
// escape the spool directory.
func spoolPath(dir, id string) (string, error) {
	if id == "" {
		return "", fmt.Errorf("core: empty spool session id")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return "", fmt.Errorf("core: spool session id %q contains %q", id, r)
		}
	}
	if strings.HasPrefix(id, ".") {
		return "", fmt.Errorf("core: spool session id %q must not start with a dot", id)
	}
	return filepath.Join(dir, id+spoolExt), nil
}

// WriteSpoolCheckpoint checkpoints the detector into dir under the
// session id, creating the directory if needed. The write is atomic: the
// checkpoint lands under a temporary name and is renamed into place only
// after a successful sync.
func WriteSpoolCheckpoint(dir, id string, s *StreamDetector) (err error) {
	path, err := spoolPath(dir, id)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: creating spool directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: creating spool temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = s.Checkpoint(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("core: syncing spool checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("core: closing spool checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: publishing spool checkpoint: %w", err)
	}
	telemetry.RecordFlight(telemetry.FlightEntry{
		Kind: "spool", Name: "checkpoint", Attrs: map[string]string{"session": id},
	})
	return nil
}

// OpenSpoolCheckpoint opens the spooled checkpoint of a session for
// RestoreStream. The caller closes the reader.
func OpenSpoolCheckpoint(dir, id string) (io.ReadCloser, error) {
	path, err := spoolPath(dir, id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening spool checkpoint: %w", err)
	}
	telemetry.RecordFlight(telemetry.FlightEntry{
		Kind: "spool", Name: "restore", Attrs: map[string]string{"session": id},
	})
	return f, nil
}

// SpooledSessions lists the session ids with a checkpoint in dir, sorted.
// A missing directory is an empty spool, not an error.
func SpooledSessions(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: reading spool directory: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, spoolExt) {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, spoolExt))
	}
	sort.Strings(ids)
	return ids, nil
}

// RemoveSpoolCheckpoint deletes a session's spooled checkpoint. Removing
// an absent checkpoint is not an error: close paths race with eviction.
func RemoveSpoolCheckpoint(dir, id string) error {
	path, err := spoolPath(dir, id)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: removing spool checkpoint: %w", err)
	}
	return nil
}
