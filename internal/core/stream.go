package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/callgraph"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Streaming telemetry: event throughput (rate = d events_total / dt),
// skip volume, completed windows and checkpoint latency.
var (
	mStreamEvents    = telemetry.NewCounter("core_stream_events_total", "events fed to streaming detectors")
	mStreamSkipped   = telemetry.NewCounter("core_stream_skipped_events_total", "fed events skipped by per-event errors")
	mStreamWindows   = telemetry.NewCounter("core_stream_windows_total", "windows completed by streaming detectors")
	mStreamMalicious = telemetry.NewCounter("core_stream_malicious_total", "streamed windows flagged malicious")
	mCheckpointSecs  = telemetry.NewHistogram("core_checkpoint_seconds", "streaming checkpoint write latency", telemetry.DurationBuckets())
)

// splitOne partitions a single-event log into the caller's scratch
// arena; a variable so tests can inject partition failures into the
// streaming path.
var splitOne = partition.SplitInto

// EventError reports one event the streaming detector had to skip: its
// stack walk could not be partitioned or encoded. The detector stays
// usable — the event is counted as consumed and excluded from windows.
type EventError struct {
	// Ordinal is the stream position of the offending event (0-based,
	// counting every event ever fed).
	Ordinal int
	// Cause is the underlying failure.
	Cause error
}

func (e *EventError) Error() string {
	return fmt.Sprintf("core: event %d skipped: %v", e.Ordinal, e.Cause)
}

func (e *EventError) Unwrap() error { return e.Cause }

// StreamDetector applies a trained model to a live event stream: feed
// events as the logger produces them and receive a Detection whenever a
// window completes. This is the production-monitoring shape of the testing
// phase (DetectLog is the batch equivalent).
//
// The detector is crash-safe: Checkpoint serialises the in-flight window
// state and RestoreStream resumes it, producing the same window boundaries
// and scores an uninterrupted run would have. In degraded mode (no usable
// statistical model, see Monitor) it scores windows with the call-graph
// baseline instead of the WSVM.
//
// A StreamDetector is safe for concurrent use: Feed, Checkpoint and the
// counter accessors serialise on an internal mutex, so a serving process
// can checkpoint a session while another goroutine is mid-ingest. Event
// order still matters — concurrent Feed calls are applied in lock-acquisition
// order — so callers that need deterministic verdicts must serialise their
// own event stream (one logical feeder per session).
type StreamDetector struct {
	mu      sync.Mutex
	clf     *Classifier      // nil in degraded mode
	cg      *callgraph.Model // scores windows when clf is nil
	window  int
	modules *trace.ModuleMap
	// buf holds the encoded tuples of the open window (WSVM mode);
	// evbuf holds its partitioned events (degraded mode).
	buf   []preprocess.Tuple
	evbuf []partition.Event
	// consumed counts every event ever fed, skipped counts the subset
	// excluded by per-event errors; winStart is the ordinal of the first
	// event in the open window.
	consumed int
	skipped  int
	winStart int
	// Ingest scratch, recycled every Feed call: the one-event log handed
	// to the splitter, its partition arena, the encoder scratch and the
	// flattened/scaled window vectors. Anything retained across calls
	// (evbuf, checkpoints) must be deep-copied out of these buffers.
	oneEv  [1]trace.Event
	oneLog trace.Log
	ps     partition.Scratch
	es     preprocess.Scratch
	winVec []float64
	svec   []float64
}

// Stream starts a streaming session for one process, identified by its
// module map (needed to partition stack walks).
func (c *Classifier) Stream(modules *trace.ModuleMap) (*StreamDetector, error) {
	if modules == nil {
		return nil, errors.New("core: nil module map")
	}
	return &StreamDetector{clf: c, cg: c.cg, window: c.window, modules: modules}, nil
}

// RestoreStream starts a streaming session and resumes it from a
// checkpoint written by StreamDetector.Checkpoint.
func (c *Classifier) RestoreStream(modules *trace.ModuleMap, r io.Reader) (*StreamDetector, error) {
	s, err := c.Stream(modules)
	if err != nil {
		return nil, err
	}
	if err := s.restore(r); err != nil {
		return nil, err
	}
	return s, nil
}

// Feed consumes one event. It returns a non-nil Detection when the event
// completed a window. A returned *EventError means this event was skipped
// (counted, excluded from windows) and the detector remains usable.
func (s *StreamDetector) Feed(e trace.Event) (*Detection, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ord := s.consumed
	s.consumed++
	mStreamEvents.Inc()
	// Partition this single event: reuse the batch splitter on a
	// one-event log to keep the classification path identical. The log
	// header and event slot live on the detector so steady-state ingest
	// allocates nothing.
	s.oneEv[0] = e
	s.oneLog = trace.Log{App: s.modules.AppName(), Modules: s.modules, Events: s.oneEv[:]}
	part, err := splitOne(&s.oneLog, &s.ps)
	if err != nil {
		s.skipped++
		mStreamSkipped.Inc()
		return nil, &EventError{Ordinal: ord, Cause: err}
	}
	if len(part.Events) == 0 {
		s.skipped++
		mStreamSkipped.Inc()
		return nil, &EventError{Ordinal: ord, Cause: errors.New("partition produced no events")}
	}
	if s.pending() == 0 {
		s.winStart = ord
	}
	if s.clf == nil {
		return s.feedDegraded(&part.Events[0], ord)
	}
	s.buf = append(s.buf, s.clf.enc.EncodeOne(&s.es, &part.Events[0]))
	if len(s.buf) < s.window {
		return nil, nil
	}
	// The buffer holds exactly one window; flatten and scale it in place.
	s.winVec = preprocess.FlattenWindow(s.winVec[:0], s.buf)
	s.buf = s.buf[:0]
	s.svec = s.clf.scaler.ApplyInto(s.svec[:0], s.winVec)
	score := s.clf.model.Decision(s.svec)
	pMal := 0.5
	if s.clf.platt != nil {
		pMal = 1 - s.clf.platt.Probability(score)
	}
	mStreamWindows.Inc()
	if score < 0 {
		mStreamMalicious.Inc()
	}
	return &Detection{
		FirstEvent:  s.winStart,
		LastEvent:   ord,
		Score:       score,
		Probability: pMal,
		Malicious:   score < 0,
	}, nil
}

// feedDegraded buffers the partitioned event and scores completed windows
// with the call-graph baseline.
func (s *StreamDetector) feedDegraded(pe *partition.Event, ord int) (*Detection, error) {
	// pe points into the Feed scratch arena, which the next Feed call
	// recycles — but evbuf outlives this call (and is gob-encoded by
	// Checkpoint), so the stack walks must be deep-copied out.
	pc := *pe
	pc.AppTrace = pe.AppTrace.Clone()
	pc.SysTrace = pe.SysTrace.Clone()
	s.evbuf = append(s.evbuf, pc)
	if len(s.evbuf) < s.window {
		return nil, nil
	}
	det := degradedDetection(s.cg, s.evbuf, s.winStart, ord)
	s.evbuf = s.evbuf[:0]
	mStreamWindows.Inc()
	if det.Malicious {
		mStreamMalicious.Inc()
	}
	return &det, nil
}

// degradedDetection scores one window by call-graph vote margin: the score
// is the benign-minus-malicious exclusive-edge vote count (negative means
// malicious, matching the WSVM convention) and the probability is the
// malicious vote share (0.5 when there is no evidence).
func degradedDetection(cg *callgraph.Model, events []partition.Event, first, last int) Detection {
	b, mal := cg.WindowVotes(events)
	p := 0.5
	if b+mal > 0 {
		p = float64(mal) / float64(b+mal)
	}
	return Detection{
		FirstEvent:  first,
		LastEvent:   last,
		Score:       float64(b - mal),
		Probability: p,
		Malicious:   mal > b,
	}
}

// pending reports the open-window buffer length; callers hold s.mu.
func (s *StreamDetector) pending() int {
	if s.clf == nil {
		return len(s.evbuf)
	}
	return len(s.buf)
}

// Pending reports how many events are buffered toward the next window.
func (s *StreamDetector) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending()
}

// Consumed reports how many events were fed so far, including skipped ones.
func (s *StreamDetector) Consumed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.consumed
}

// Skipped reports how many fed events were excluded by per-event errors.
func (s *StreamDetector) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Degraded reports whether windows are scored by the call-graph fallback
// instead of the statistical model.
func (s *StreamDetector) Degraded() bool { return s.clf == nil }

// checkpointFile is the serialized in-flight state of a StreamDetector.
// The model itself is not included: restore pairs a checkpoint with a
// detector built from the same classifier (or monitor).
type checkpointFile struct {
	Magic    string
	Version  int
	Window   int
	Degraded bool
	Consumed int
	Skipped  int
	WinStart int
	Tuples   []preprocess.Tuple
	Events   []partition.Event
}

const (
	checkpointMagic   = "LEAPS-CKPT"
	checkpointVersion = 1
)

// Checkpoint serialises the detector's in-flight state — the open window's
// buffered events and the stream counters — so a crashed or restarted
// monitor can resume with RestoreStream and produce the same window
// boundaries and scores as an uninterrupted run.
func (s *StreamDetector) Checkpoint(w io.Writer) error {
	start := time.Now()
	defer func() { mCheckpointSecs.Observe(time.Since(start).Seconds()) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	f := checkpointFile{
		Magic:    checkpointMagic,
		Version:  checkpointVersion,
		Window:   s.window,
		Degraded: s.clf == nil,
		Consumed: s.consumed,
		Skipped:  s.skipped,
		WinStart: s.winStart,
		Tuples:   s.buf,
		Events:   s.evbuf,
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	return nil
}

// restore loads a checkpoint into a freshly-constructed detector,
// validating that it matches the detector's model shape.
func (s *StreamDetector) restore(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var f checkpointFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if f.Magic != checkpointMagic {
		return fmt.Errorf("core: not a checkpoint file (magic %q)", f.Magic)
	}
	if f.Version != checkpointVersion {
		return fmt.Errorf("core: unsupported checkpoint version %d", f.Version)
	}
	if f.Window != s.window {
		return fmt.Errorf("core: checkpoint window %d does not match model window %d", f.Window, s.window)
	}
	if f.Degraded != (s.clf == nil) {
		return fmt.Errorf("core: checkpoint degraded=%v does not match detector mode", f.Degraded)
	}
	if f.Consumed < 0 || f.Skipped < 0 || f.Skipped > f.Consumed {
		return fmt.Errorf("core: checkpoint counters invalid (consumed %d, skipped %d)", f.Consumed, f.Skipped)
	}
	if len(f.Tuples) >= f.Window || len(f.Events) >= f.Window {
		return fmt.Errorf("core: checkpoint buffers a full window (%d/%d tuples, %d events)",
			len(f.Tuples), f.Window, len(f.Events))
	}
	s.consumed = f.Consumed
	s.skipped = f.Skipped
	s.winStart = f.WinStart
	s.buf = f.Tuples
	s.evbuf = f.Events
	return nil
}
