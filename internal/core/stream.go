package core

import (
	"errors"

	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/trace"
)

// StreamDetector applies a trained classifier to a live event stream: feed
// events as the logger produces them and receive a Detection whenever a
// window completes. This is the production-monitoring shape of the testing
// phase (DetectLog is the batch equivalent).
type StreamDetector struct {
	clf     *Classifier
	modules *trace.ModuleMap
	buf     []preprocess.Tuple
	// consumed counts events fed so far; windows are aligned to it.
	consumed int
}

// Stream starts a streaming session for one process, identified by its
// module map (needed to partition stack walks).
func (c *Classifier) Stream(modules *trace.ModuleMap) (*StreamDetector, error) {
	if modules == nil {
		return nil, errors.New("core: nil module map")
	}
	return &StreamDetector{clf: c, modules: modules}, nil
}

// Feed consumes one event. It returns a non-nil Detection when the event
// completed a window.
func (s *StreamDetector) Feed(e trace.Event) (*Detection, error) {
	// Partition this single event: reuse the batch splitter on a
	// one-event log to keep the classification path identical.
	log := &trace.Log{App: s.modules.AppName(), Modules: s.modules, Events: []trace.Event{e}}
	part, err := partition.Split(log)
	if err != nil {
		return nil, err
	}
	s.buf = append(s.buf, s.clf.enc.Encode(&part.Events[0]))
	s.consumed++
	if len(s.buf) < s.clf.window {
		return nil, nil
	}
	vecs, _, err := preprocess.Coalesce(s.buf, s.clf.window)
	if err != nil {
		return nil, err
	}
	s.buf = s.buf[:0]
	score := s.clf.model.Decision(s.clf.scaler.Apply(vecs[0]))
	pMal := 0.5
	if s.clf.platt != nil {
		pMal = 1 - s.clf.platt.Probability(score)
	}
	return &Detection{
		FirstEvent:  s.consumed - s.clf.window,
		LastEvent:   s.consumed - 1,
		Score:       score,
		Probability: pMal,
		Malicious:   score < 0,
	}, nil
}

// Pending reports how many events are buffered toward the next window.
func (s *StreamDetector) Pending() int { return len(s.buf) }
