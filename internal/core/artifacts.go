package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/cfg"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/weight"
)

// The training pipeline is split into two tiers. Artifacts is the
// expensive first tier: everything derived purely from the logs and the
// configuration — partitioned logs, the fitted feature encoder, both CFG
// inferences, the Algorithm-2 weight assessment and the coalesced
// windows. None of it depends on Config.Seed, so the paper's 10
// seed-varied evaluation runs (§V) can share one Artifacts instead of
// recomputing the front half of the pipeline per run.
type Artifacts struct {
	// Encoder is the feature encoder fitted on both training logs.
	Encoder *preprocess.Encoder

	// BenignCFG and MixedCFG are the inferred application CFGs.
	BenignCFG *cfg.Inference
	MixedCFG  *cfg.Inference
	// Weights is the Algorithm-2 assessment of the mixed log.
	Weights *weight.Result
	// Alignment is the mixed→benign CFG alignment, set only when
	// Config.AlignCFGs was enabled.
	Alignment *cfg.Alignment

	// BenignPart and MixedPart are the partitioned training logs.
	BenignPart *partition.Log
	MixedPart  *partition.Log

	// benignWins holds every benign window, unsplit; the per-seed 50/50
	// split is Selection's job.
	benignWins []window
	// mixed holds all mixed windows; mixedWeight their CFG-derived WSVM
	// costs 1 − benignity, before any ShuffleWeights permutation.
	mixed       []window
	mixedWeight []float64

	cfg Config // defaults applied
}

// Config returns the (defaulted) configuration the artifacts were built
// with.
func (a *Artifacts) Config() Config { return a.cfg }

// BuildArtifacts runs the seed-independent tier of the training pipeline
// on a benign and a mixed log: partition, fit the feature encoder, infer
// both CFGs, assess weights and coalesce windows. The benign and mixed
// branches of each stage are independent and run concurrently (bounded
// by Config.Parallel). Telemetry spans nest under ctx.
func BuildArtifacts(ctx context.Context, benign, mixed *trace.Log, config Config) (*Artifacts, error) {
	config = config.withDefaults()
	if err := config.Validate(); err != nil {
		return nil, err
	}
	if benign == nil || mixed == nil {
		return nil, errors.New("core: nil training log")
	}
	ctx, sp := telemetry.StartSpan(ctx, "train/build")
	defer sp.End()
	a := &Artifacts{cfg: config}
	par := resolveParallel(config.Parallel)

	// The benign and mixed partitions are independent.
	err := inParallel(par,
		func() error {
			_, sp := telemetry.StartSpan(ctx, "partition")
			defer sp.End()
			var err error
			if a.BenignPart, err = partition.Split(benign); err != nil {
				return fmt.Errorf("core: partitioning benign log: %w", err)
			}
			return nil
		},
		func() error {
			_, sp := telemetry.StartSpan(ctx, "partition")
			defer sp.End()
			var err error
			if a.MixedPart, err = partition.Split(mixed); err != nil {
				return fmt.Errorf("core: partitioning mixed log: %w", err)
			}
			return nil
		},
	)
	if err != nil {
		return nil, err
	}

	// Feature encoder fitted on all training events so cluster ids are
	// consistent across the benign and mixed sets — the one barrier
	// between the two branches.
	fitEvents := make([]partition.Event, 0, a.BenignPart.Len()+a.MixedPart.Len())
	fitEvents = append(fitEvents, a.BenignPart.Events...)
	fitEvents = append(fitEvents, a.MixedPart.Events...)
	if a.Encoder, err = preprocess.FitContext(ctx, fitEvents, config.Preprocess); err != nil {
		return nil, err
	}

	if err := a.finish(ctx); err != nil {
		return nil, err
	}
	return a, nil
}

// buildArtifactsFromParts assembles Artifacts from pre-partitioned logs
// and an already-fitted (possibly shared) encoder. config must already
// have defaults applied. Used by the universal-classifier path, where one
// encoder spans several applications.
func buildArtifactsFromParts(ctx context.Context, bp, mp *partition.Log, enc *preprocess.Encoder, config Config) (*Artifacts, error) {
	a := &Artifacts{cfg: config, Encoder: enc, BenignPart: bp, MixedPart: mp}
	if err := a.finish(ctx); err != nil {
		return nil, err
	}
	return a, nil
}

// finish runs the seed-independent back half shared by every build path:
// CFG inference, window coalescing, weight assessment and the per-window
// WSVM costs. Requires cfg, Encoder, BenignPart and MixedPart to be set.
func (a *Artifacts) finish(ctx context.Context) error {
	config := a.cfg
	par := resolveParallel(config.Parallel)

	// CFG inference and window coalescing: four independent tasks (the
	// two CFGs need only their partition, the two coalesces only the
	// encoder and their partition).
	var benignWins, mixedWins []window
	err := inParallel(par,
		func() error {
			_, sp := telemetry.StartSpan(ctx, "cfg")
			defer sp.End()
			var err error
			a.BenignCFG, err = cfg.Infer(a.BenignPart)
			return err
		},
		func() error {
			_, sp := telemetry.StartSpan(ctx, "cfg")
			defer sp.End()
			var err error
			a.MixedCFG, err = cfg.Infer(a.MixedPart)
			return err
		},
		func() error {
			_, sp := telemetry.StartSpan(ctx, "coalesce")
			defer sp.End()
			var err error
			benignWins, err = coalesce(a.Encoder, a.BenignPart, config.Window)
			return err
		},
		func() error {
			_, sp := telemetry.StartSpan(ctx, "coalesce")
			defer sp.End()
			var err error
			mixedWins, err = coalesce(a.Encoder, a.MixedPart, config.Window)
			return err
		},
	)
	if err != nil {
		return err
	}

	// Weight assessment needs both CFGs.
	_, spW := telemetry.StartSpan(ctx, "weights")
	if config.AlignCFGs {
		a.Alignment = cfg.AlignGraphs(a.BenignCFG.Graph, a.MixedCFG.Graph)
		a.Weights, err = weight.AssessAligned(a.BenignCFG.Graph, a.MixedCFG, a.Alignment, config.Weight)
	} else {
		a.Weights, err = weight.Assess(a.BenignCFG.Graph, a.MixedCFG, config.Weight)
	}
	spW.End()
	if err != nil {
		return err
	}

	a.benignWins = benignWins
	a.mixed = mixedWins
	// Mixed windows with CFG-derived weights: the WSVM cost cᵢ is the
	// confidence that the negative label is correct, 1 − benignity.
	a.mixedWeight = make([]float64, len(mixedWins))
	for i, w := range mixedWins {
		benignity := a.Weights.MeanBenignity(w.start, w.start+config.Window, unscoredBenignity)
		a.mixedWeight[i] = 1 - benignity
	}
	return nil
}

// Selection is the cheap per-seed second tier: the 50/50 benign
// train/test split and the (optionally shuffled) mixed-window weights.
// Selections share the Artifacts they were derived from and never mutate
// them, so seed-varied runs can fan out over one Artifacts concurrently.
type Selection struct {
	art  *Artifacts
	seed int64

	// benignTrain/benignTest are the benign windows after the split.
	benignTrain []window
	benignTest  []window
	// mixedWeight aliases the artifacts' base weights, or holds a
	// shuffled copy when Config.ShuffleWeights is set.
	mixedWeight []float64
}

// Select derives the per-seed tier: the benign split permutation and,
// when Config.ShuffleWeights is set, the weight shuffle, both drawn from
// one RNG seeded with seed (matching the historical single-pass
// pipeline stream byte for byte).
func (a *Artifacts) Select(seed int64) *Selection {
	rng := rand.New(rand.NewSource(seed))
	sel := &Selection{art: a, seed: seed, mixedWeight: a.mixedWeight}
	perm := rng.Perm(len(a.benignWins))
	nTrain := int(float64(len(a.benignWins)) * a.cfg.TrainFraction)
	for i, p := range perm {
		if i < nTrain {
			sel.benignTrain = append(sel.benignTrain, a.benignWins[p])
		} else {
			sel.benignTest = append(sel.benignTest, a.benignWins[p])
		}
	}
	if a.cfg.ShuffleWeights {
		sel.mixedWeight = append([]float64(nil), a.mixedWeight...)
		rng.Shuffle(len(sel.mixedWeight), func(i, j int) {
			sel.mixedWeight[i], sel.mixedWeight[j] = sel.mixedWeight[j], sel.mixedWeight[i]
		})
	}
	return sel
}

// Seed returns the data-selection seed this tier was derived from.
func (s *Selection) Seed() int64 { return s.seed }

// Artifacts returns the shared seed-independent tier.
func (s *Selection) Artifacts() *Artifacts { return s.art }

// resolveParallel maps the Config.Parallel knob to a worker count:
// non-positive means "use every processor".
func resolveParallel(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// inParallel runs the tasks on at most limit workers and returns the
// first error in task order (deterministic regardless of scheduling).
// limit 1 degrades to a plain sequential loop.
func inParallel(limit int, tasks ...func() error) error {
	errs := make([]error, len(tasks))
	if limit <= 1 {
		for i, task := range tasks {
			errs[i] = task()
		}
	} else {
		sem := make(chan struct{}, limit)
		var wg sync.WaitGroup
		for i, task := range tasks {
			wg.Add(1)
			go func(i int, task func() error) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				errs[i] = task()
			}(i, task)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
