// Package core wires the LEAPS pipeline together: raw logs → stack
// partitioning → feature preprocessing → CFG inference → weight assessment
// → weighted SVM training → testing-phase classification. It implements
// both the paper's evaluation protocol (benign/mixed/malicious dataset
// triples, §V) and a user-facing Detector for applying a trained model to
// new logs.
//
// The training pipeline is two-tiered: BuildArtifacts computes every
// seed-independent artifact once per dataset, and Artifacts.Select
// derives the cheap per-seed Selection (split, sampling, weight shuffle)
// that the trainers and the evaluation protocol consume.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/weight"
)

// Pipeline telemetry: batch-detection volume and verdict mix. Training
// effort is covered by spans ("train", "train/build" and children) and by
// the per-package metrics of the stage implementations.
var (
	mDetectWindows   = telemetry.NewCounter("core_detect_windows_total", "windows classified by batch detection")
	mDetectMalicious = telemetry.NewCounter("core_detect_malicious_total", "windows flagged malicious by batch detection")
)

// ErrNoWindows reports a window-sampling request over an empty window set,
// typically a log shorter than one coalescing window.
var ErrNoWindows = errors.New("core: no windows to sample")

// ErrBadSampleFraction reports a sampling fraction that cannot select
// anything (non-positive or NaN).
var ErrBadSampleFraction = errors.New("core: sample fraction must be positive")

// Config controls the pipeline. The zero value reproduces the paper's
// settings where they are specified.
type Config struct {
	// Window is the event-coalescing width; default 10 (30 feature
	// dimensions, §V-A2).
	Window int
	// TrainFraction is the share of benign windows used for training
	// (the rest test); default 0.5.
	TrainFraction float64
	// SampleFraction subsamples every selection (training and testing);
	// default 0.2, per §V-A2.
	SampleFraction float64
	// Grid is the λ/σ² search space for model selection; zero value uses
	// svm.DefaultGrid(). Ignored when FixedParams is set.
	Grid svm.GridSpec
	// FixedParams skips cross-validated model selection.
	FixedParams *svm.Params
	// Preprocess configures the feature clustering.
	Preprocess preprocess.Config
	// Weight configures CFG weight assessment.
	Weight weight.Config
	// ShuffleWeights randomly permutes the mixed-window weights before
	// training — the ablation that checks the weights carry signal, not
	// just their distribution.
	ShuffleWeights bool
	// AlignCFGs enables the §VI-A extension: before weight assessment the
	// mixed CFG is structurally aligned onto the benign CFG, recovering
	// correct weights when the trojaned binary was recompiled from source
	// (benign code shifted).
	AlignCFGs bool
	// Seed drives data selection (and weight shuffling).
	Seed int64
	// Parallel bounds the worker pools of the pipeline's concurrent
	// sections: the benign/mixed branches of artifact building, the grid
	// points of model selection, and the runs of EvaluateRuns. 0 uses
	// every processor; 1 forces the serial path. Every randomised step
	// derives its RNG from its own seed, so results are identical for
	// any Parallel value.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 10
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.5
	}
	if c.SampleFraction == 0 {
		c.SampleFraction = 0.2
	}
	if len(c.Grid.Lambdas) == 0 {
		c.Grid = svm.DefaultGrid()
	}
	return c
}

// Validate rejects out-of-range configuration.
func (c Config) Validate() error {
	if c.Window < 0 {
		return fmt.Errorf("core: Window %d must be non-negative", c.Window)
	}
	if c.TrainFraction < 0 || c.TrainFraction > 1 {
		return fmt.Errorf("core: TrainFraction %v out of [0,1]", c.TrainFraction)
	}
	if c.SampleFraction < 0 || c.SampleFraction > 1 {
		return fmt.Errorf("core: SampleFraction %v out of [0,1]", c.SampleFraction)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("core: Parallel %d must be non-negative", c.Parallel)
	}
	return nil
}

// window is one coalesced data point with provenance.
type window struct {
	vec   []float64
	start int // first event ordinal
}

// TrainingData is the classic single-seed view over the two pipeline
// tiers: the seed-independent Artifacts plus the Selection derived from
// Config.Seed. Tools use it to inspect intermediate artifacts (CFGs,
// weights, encoders).
type TrainingData struct {
	*Artifacts
	sel *Selection
}

// unscoredBenignity is the benignity default for events that contributed
// no CFG path: maximal uncertainty.
const unscoredBenignity = 0.5

// BuildTrainingData runs the full training-phase data pipeline on a
// benign and a mixed log: BuildArtifacts plus the Config.Seed selection.
func BuildTrainingData(benign, mixed *trace.Log, config Config) (*TrainingData, error) {
	art, err := BuildArtifacts(context.Background(), benign, mixed, config)
	if err != nil {
		return nil, err
	}
	return art.TrainingData(), nil
}

// TrainingData bundles the artifacts with the Config.Seed selection.
func (a *Artifacts) TrainingData() *TrainingData {
	return &TrainingData{Artifacts: a, sel: a.Select(a.cfg.Seed)}
}

// Selection exposes the per-seed tier (benign split, effective weights).
func (td *TrainingData) Selection() *Selection { return td.sel }

// coalesce encodes and windows one partitioned log.
func coalesce(enc *preprocess.Encoder, log *partition.Log, windowSize int) ([]window, error) {
	tuples := enc.EncodeAll(log)
	vecs, starts, err := preprocess.Coalesce(tuples, windowSize)
	if err != nil {
		return nil, err
	}
	out := make([]window, len(vecs))
	for i := range vecs {
		out[i] = window{vec: vecs[i], start: starts[i]}
	}
	return out, nil
}

// sampleIndices draws ⌈fraction·n⌉ indices without replacement. It
// rejects an empty set (ErrNoWindows) and a non-positive or NaN fraction
// (ErrBadSampleFraction) instead of silently producing zero samples; a
// fraction ≥ 1 selects everything in order without consuming the RNG.
// Every sampling site (benign windows, joint mixed windows + weights)
// goes through this one function so the rounding and edge-case rules
// cannot drift apart.
func sampleIndices(rng *rand.Rand, n int, fraction float64) ([]int, error) {
	if n == 0 {
		return nil, ErrNoWindows
	}
	if fraction <= 0 || math.IsNaN(fraction) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadSampleFraction, fraction)
	}
	if fraction >= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	k := int(float64(n)*fraction + 0.5)
	if k < 1 {
		k = 1
	}
	return rng.Perm(n)[:k], nil
}

// sampleWindows draws ⌈fraction·n⌉ windows without replacement under the
// sampleIndices rules.
func sampleWindows(rng *rand.Rand, wins []window, fraction float64) ([]window, error) {
	idx, err := sampleIndices(rng, len(wins), fraction)
	if err != nil {
		return nil, err
	}
	out := make([]window, len(idx))
	for i, p := range idx {
		out[i] = wins[p]
	}
	return out, nil
}

// trainProblem assembles the (possibly weighted) SVM problem from sampled
// training windows. Scaling is fitted here. The mixed windows and their
// weights are sampled jointly by index, through the same sampleIndices
// rules as the benign windows. It reports the actual sampled set sizes.
func (s *Selection) trainProblem(rng *rand.Rand, weighted bool) (svm.Problem, *svm.Scaler, int, int, error) {
	fraction := s.art.cfg.SampleFraction
	benign, err := sampleWindows(rng, s.benignTrain, fraction)
	if err != nil {
		return svm.Problem{}, nil, 0, 0, fmt.Errorf("sampling benign training windows: %w", err)
	}
	mixedIdx, err := sampleIndices(rng, len(s.art.mixed), fraction)
	if err != nil {
		return svm.Problem{}, nil, 0, 0, fmt.Errorf("sampling mixed training windows: %w", err)
	}

	var prob svm.Problem
	raw := make([][]float64, 0, len(benign)+len(mixedIdx))
	for _, w := range benign {
		raw = append(raw, w.vec)
		prob.Y = append(prob.Y, 1)
		if weighted {
			prob.Weight = append(prob.Weight, 1)
		}
	}
	for _, p := range mixedIdx {
		raw = append(raw, s.art.mixed[p].vec)
		prob.Y = append(prob.Y, -1)
		if weighted {
			prob.Weight = append(prob.Weight, s.mixedWeight[p])
		}
	}
	scaler, err := svm.FitScaler(raw)
	if err != nil {
		return svm.Problem{}, nil, 0, 0, err
	}
	prob.X = scaler.ApplyAll(raw)
	return prob, scaler, len(benign), len(mixedIdx), nil
}

// Classifier is a trained LEAPS model (the WSVM path) ready for the
// testing phase.
type Classifier struct {
	enc    *preprocess.Encoder
	scaler *svm.Scaler
	model  *svm.Model
	platt  *svm.PlattScaler
	window int
	params svm.Params
	// cg is the call-graph baseline trained on the same logs. It travels
	// with the classifier (persisted since file version 2) so a Monitor
	// can degrade to it when the statistical sections are unusable. Nil
	// for classifiers loaded from version-1 files.
	cg *callgraph.Model
	// trainBenign/trainMixed are the actual sampled training-set sizes
	// (zero for classifiers loaded from disk).
	trainBenign, trainMixed int
}

// Params returns the SVM parameters the classifier was trained with.
func (c *Classifier) Params() svm.Params { return c.params }

// Model exposes the underlying SVM model (e.g. for support-vector counts).
func (c *Classifier) Model() *svm.Model { return c.model }

// CallGraph exposes the bundled call-graph baseline (nil when the
// classifier was loaded from a file predating it).
func (c *Classifier) CallGraph() *callgraph.Model { return c.cg }

// TrainSizes reports the actual sampled training-set sizes (benign and
// mixed windows); both zero for classifiers loaded from disk.
func (c *Classifier) TrainSizes() (benign, mixed int) {
	return c.trainBenign, c.trainMixed
}

// Train fits the CFG-guided weighted SVM classifier on the training data.
func (td *TrainingData) Train() (*Classifier, error) {
	return td.sel.train(context.Background(), true)
}

// TrainUnweighted fits the plain-SVM comparison model (all weights 1).
func (td *TrainingData) TrainUnweighted() (*Classifier, error) {
	return td.sel.train(context.Background(), false)
}

// Train fits the CFG-guided weighted SVM classifier on this selection.
// Telemetry spans nest under ctx.
func (s *Selection) Train(ctx context.Context) (*Classifier, error) {
	return s.train(ctx, true)
}

// TrainUnweighted fits the plain-SVM comparison model (all weights 1).
func (s *Selection) TrainUnweighted(ctx context.Context) (*Classifier, error) {
	return s.train(ctx, false)
}

func (s *Selection) train(ctx context.Context, weighted bool) (*Classifier, error) {
	ctx, sp := telemetry.StartSpan(ctx, "train")
	defer sp.End()
	cfg := s.art.cfg
	rng := rand.New(rand.NewSource(s.seed + 1))
	prob, scaler, nBenign, nMixed, err := s.trainProblem(rng, weighted)
	if err != nil {
		return nil, err
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	var params svm.Params
	if cfg.FixedParams != nil {
		params = *cfg.FixedParams
	} else {
		grid := cfg.Grid
		grid.Seed = s.seed
		if grid.Parallel == 0 {
			grid.Parallel = cfg.Parallel
		}
		_, spGrid := telemetry.StartSpan(ctx, "gridsearch")
		best, _, err := svm.GridSearch(prob, grid)
		spGrid.End()
		if err != nil {
			return nil, err
		}
		params = best
	}
	_, spSMO := telemetry.StartSpan(ctx, "smo")
	model, err := svm.Train(prob, params)
	spSMO.End()
	if err != nil {
		return nil, err
	}
	_, spCG := telemetry.StartSpan(ctx, "callgraph")
	cg, err := callgraph.Train(s.art.BenignPart, s.art.MixedPart)
	spCG.End()
	if err != nil {
		return nil, err
	}
	_, spPlatt := telemetry.StartSpan(ctx, "platt")
	platt := fitPlatt(model, prob)
	spPlatt.End()
	return &Classifier{
		enc:         s.art.Encoder,
		scaler:      scaler,
		model:       model,
		platt:       platt,
		window:      cfg.Window,
		params:      params,
		cg:          cg,
		trainBenign: nBenign,
		trainMixed:  nMixed,
	}, nil
}

// fitPlatt calibrates a probability sigmoid on the training decisions;
// calibration is best-effort (nil on degenerate inputs).
func fitPlatt(model *svm.Model, prob svm.Problem) *svm.PlattScaler {
	dec := make([]float64, len(prob.X))
	for i, x := range prob.X {
		dec[i] = model.Decision(x)
	}
	p, err := svm.FitPlatt(dec, prob.Y)
	if err != nil {
		return nil
	}
	return p
}

// Detection is one classified window of a log.
type Detection struct {
	// FirstEvent and LastEvent bound the window (event ordinals).
	FirstEvent, LastEvent int
	// Score is the decision value; negative means malicious.
	Score float64
	// Probability is the Platt-calibrated probability that the window is
	// malicious (0.5 when no calibration is available).
	Probability float64
	// Malicious is the verdict.
	Malicious bool
}

// DetectLog applies the classifier to a full log (the testing phase's
// application slicing is assumed done: one process per log).
func (c *Classifier) DetectLog(log *trace.Log) ([]Detection, error) {
	return c.DetectLogContext(context.Background(), log)
}

// detectScratch is the pooled working memory of one DetectLog pass:
// partition arenas, encoder scratch, the tuple and window buffers and
// the scaled-vector buffer. Everything it backs is consumed before
// DetectLogContext returns — only the fresh Detection slice escapes —
// so recycling through a pool keeps concurrent detections (serve
// workers, shadow canary) safe while making the steady state nearly
// allocation-free.
type detectScratch struct {
	part   partition.Scratch
	enc    preprocess.Scratch
	tuples []preprocess.Tuple
	wins   preprocess.WindowBuf
	vec    []float64
}

var detectScratchPool = sync.Pool{New: func() any { return new(detectScratch) }}

// DetectLogContext is DetectLog with telemetry spans nested under ctx.
func (c *Classifier) DetectLogContext(ctx context.Context, log *trace.Log) ([]Detection, error) {
	ctx, sp := telemetry.StartSpan(ctx, "detect")
	defer sp.End()
	ds := detectScratchPool.Get().(*detectScratch)
	defer detectScratchPool.Put(ds)
	_, spPart := telemetry.StartSpan(ctx, "partition")
	part, err := partition.SplitInto(log, &ds.part)
	spPart.End()
	if err != nil {
		return nil, err
	}
	_, spEnc := telemetry.StartSpan(ctx, "encode")
	ds.tuples = c.enc.EncodeInto(ds.tuples[:0], part, &ds.enc)
	err = preprocess.CoalesceInto(&ds.wins, ds.tuples, c.window)
	spEnc.End()
	if err != nil {
		return nil, err
	}
	_, spScore := telemetry.StartSpan(ctx, "score")
	defer spScore.End()
	out := make([]Detection, len(ds.wins.Vecs))
	var malicious uint64
	for i, v := range ds.wins.Vecs {
		ds.vec = c.scaler.ApplyInto(ds.vec[:0], v)
		score := c.model.Decision(ds.vec)
		pMal := 0.5
		if c.platt != nil {
			pMal = 1 - c.platt.Probability(score)
		}
		out[i] = Detection{
			FirstEvent:  ds.wins.Starts[i],
			LastEvent:   ds.wins.Starts[i] + c.window - 1,
			Score:       score,
			Probability: pMal,
			Malicious:   score < 0,
		}
		if out[i].Malicious {
			malicious++
		}
	}
	mDetectWindows.Add(uint64(len(out)))
	mDetectMalicious.Add(malicious)
	return out, nil
}

// classifyWindows runs the model over pre-built windows and fills the
// confusion matrix.
func (c *Classifier) classifyWindows(wins []window, actualBenign bool, conf *metrics.Confusion) {
	var buf []float64
	for _, w := range wins {
		buf = c.scaler.ApplyInto(buf[:0], w.vec)
		pred := c.model.Decision(buf) >= 0
		conf.Add(actualBenign, pred)
	}
}

// cgraphClassify runs the call-graph baseline over windows, resolving each
// from the partitioned log's events. Undecided verdicts count as
// misclassifications of the true class.
func cgraphClassify(m *callgraph.Model, part *partition.Log, wins []window, windowSize int, actualBenign bool, conf *metrics.Confusion, undecided *int) {
	for _, w := range wins {
		end := w.start + windowSize
		if end > part.Len() {
			end = part.Len()
		}
		v := m.ClassifyWindow(part.Events[w.start:end])
		if v == callgraph.VerdictUndecided {
			*undecided++
		}
		conf.Add(actualBenign, v == callgraph.VerdictBenign)
	}
}
