// Package core wires the LEAPS pipeline together: raw logs → stack
// partitioning → feature preprocessing → CFG inference → weight assessment
// → weighted SVM training → testing-phase classification. It implements
// both the paper's evaluation protocol (benign/mixed/malicious dataset
// triples, §V) and a user-facing Detector for applying a trained model to
// new logs.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/weight"
)

// Pipeline telemetry: batch-detection volume and verdict mix. Training
// effort is covered by spans ("train", "train/build" and children) and by
// the per-package metrics of the stage implementations.
var (
	mDetectWindows   = telemetry.NewCounter("core_detect_windows_total", "windows classified by batch detection")
	mDetectMalicious = telemetry.NewCounter("core_detect_malicious_total", "windows flagged malicious by batch detection")
)

// ErrNoWindows reports a window-sampling request over an empty window set,
// typically a log shorter than one coalescing window.
var ErrNoWindows = errors.New("core: no windows to sample")

// ErrBadSampleFraction reports a sampling fraction that cannot select
// anything (non-positive or NaN).
var ErrBadSampleFraction = errors.New("core: sample fraction must be positive")

// Config controls the pipeline. The zero value reproduces the paper's
// settings where they are specified.
type Config struct {
	// Window is the event-coalescing width; default 10 (30 feature
	// dimensions, §V-A2).
	Window int
	// TrainFraction is the share of benign windows used for training
	// (the rest test); default 0.5.
	TrainFraction float64
	// SampleFraction subsamples every selection (training and testing);
	// default 0.2, per §V-A2.
	SampleFraction float64
	// Grid is the λ/σ² search space for model selection; zero value uses
	// svm.DefaultGrid(). Ignored when FixedParams is set.
	Grid svm.GridSpec
	// FixedParams skips cross-validated model selection.
	FixedParams *svm.Params
	// Preprocess configures the feature clustering.
	Preprocess preprocess.Config
	// Weight configures CFG weight assessment.
	Weight weight.Config
	// ShuffleWeights randomly permutes the mixed-window weights before
	// training — the ablation that checks the weights carry signal, not
	// just their distribution.
	ShuffleWeights bool
	// AlignCFGs enables the §VI-A extension: before weight assessment the
	// mixed CFG is structurally aligned onto the benign CFG, recovering
	// correct weights when the trojaned binary was recompiled from source
	// (benign code shifted).
	AlignCFGs bool
	// Seed drives data selection (and weight shuffling).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 10
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.5
	}
	if c.SampleFraction == 0 {
		c.SampleFraction = 0.2
	}
	if len(c.Grid.Lambdas) == 0 {
		c.Grid = svm.DefaultGrid()
	}
	return c
}

// Validate rejects out-of-range configuration.
func (c Config) Validate() error {
	if c.Window < 0 {
		return fmt.Errorf("core: Window %d must be non-negative", c.Window)
	}
	if c.TrainFraction < 0 || c.TrainFraction > 1 {
		return fmt.Errorf("core: TrainFraction %v out of [0,1]", c.TrainFraction)
	}
	if c.SampleFraction < 0 || c.SampleFraction > 1 {
		return fmt.Errorf("core: SampleFraction %v out of [0,1]", c.SampleFraction)
	}
	return nil
}

// window is one coalesced data point with provenance.
type window struct {
	vec   []float64
	start int // first event ordinal
}

// TrainingData is the assembled training-phase state, exposed so tools can
// inspect intermediate artifacts (CFGs, weights, encoders).
type TrainingData struct {
	Encoder *preprocess.Encoder
	Scaler  *svm.Scaler

	// BenignCFG and MixedCFG are the inferred application CFGs.
	BenignCFG *cfg.Inference
	MixedCFG  *cfg.Inference
	// Weights is the Algorithm-2 assessment of the mixed log.
	Weights *weight.Result
	// Alignment is the mixed→benign CFG alignment, set only when
	// Config.AlignCFGs was enabled.
	Alignment *cfg.Alignment

	// BenignPart and MixedPart are the partitioned training logs.
	BenignPart *partition.Log
	MixedPart  *partition.Log

	// benignTrain/benignTest are the benign windows after the 50/50
	// split; mixed holds all mixed windows with their weights.
	benignTrain []window
	benignTest  []window
	mixed       []window
	mixedWeight []float64

	cfg Config
}

// unscoredBenignity is the benignity default for events that contributed
// no CFG path: maximal uncertainty.
const unscoredBenignity = 0.5

// BuildTrainingData runs the training-phase data pipeline on a benign and
// a mixed log: partition, fit the feature encoder, infer both CFGs, assess
// weights and coalesce windows.
func BuildTrainingData(benign, mixed *trace.Log, config Config) (*TrainingData, error) {
	config = config.withDefaults()
	if err := config.Validate(); err != nil {
		return nil, err
	}
	if benign == nil || mixed == nil {
		return nil, errors.New("core: nil training log")
	}
	ctx, sp := telemetry.StartSpan(context.Background(), "train/build")
	defer sp.End()
	td := &TrainingData{cfg: config}

	var err error
	_, spPart := telemetry.StartSpan(ctx, "partition")
	if td.BenignPart, err = partition.Split(benign); err != nil {
		spPart.End()
		return nil, fmt.Errorf("core: partitioning benign log: %w", err)
	}
	if td.MixedPart, err = partition.Split(mixed); err != nil {
		spPart.End()
		return nil, fmt.Errorf("core: partitioning mixed log: %w", err)
	}
	spPart.End()

	// Feature encoder fitted on all training events so cluster ids are
	// consistent across the benign and mixed sets.
	fitEvents := make([]partition.Event, 0, td.BenignPart.Len()+td.MixedPart.Len())
	fitEvents = append(fitEvents, td.BenignPart.Events...)
	fitEvents = append(fitEvents, td.MixedPart.Events...)
	_, spFit := telemetry.StartSpan(ctx, "preprocess")
	if td.Encoder, err = preprocess.Fit(fitEvents, config.Preprocess); err != nil {
		spFit.End()
		return nil, err
	}
	spFit.End()

	// CFG inference and weight assessment.
	_, spCFG := telemetry.StartSpan(ctx, "cfg")
	if td.BenignCFG, err = cfg.Infer(td.BenignPart); err != nil {
		spCFG.End()
		return nil, err
	}
	if td.MixedCFG, err = cfg.Infer(td.MixedPart); err != nil {
		spCFG.End()
		return nil, err
	}
	spCFG.End()
	_, spW := telemetry.StartSpan(ctx, "weights")
	if config.AlignCFGs {
		td.Alignment = cfg.AlignGraphs(td.BenignCFG.Graph, td.MixedCFG.Graph)
		td.Weights, err = weight.AssessAligned(td.BenignCFG.Graph, td.MixedCFG, td.Alignment, config.Weight)
	} else {
		td.Weights, err = weight.Assess(td.BenignCFG.Graph, td.MixedCFG, config.Weight)
	}
	spW.End()
	if err != nil {
		return nil, err
	}

	// Coalesce windows.
	_, spCo := telemetry.StartSpan(ctx, "coalesce")
	benignWins, err := coalesce(td.Encoder, td.BenignPart, config.Window)
	if err != nil {
		spCo.End()
		return nil, err
	}
	mixedWins, err := coalesce(td.Encoder, td.MixedPart, config.Window)
	spCo.End()
	if err != nil {
		return nil, err
	}

	// 50/50 benign split (deterministic by seed).
	rng := rand.New(rand.NewSource(config.Seed))
	perm := rng.Perm(len(benignWins))
	nTrain := int(float64(len(benignWins)) * config.TrainFraction)
	for i, p := range perm {
		if i < nTrain {
			td.benignTrain = append(td.benignTrain, benignWins[p])
		} else {
			td.benignTest = append(td.benignTest, benignWins[p])
		}
	}

	// Mixed windows with CFG-derived weights: the WSVM cost cᵢ is the
	// confidence that the negative label is correct, 1 − benignity.
	td.mixed = mixedWins
	td.mixedWeight = make([]float64, len(mixedWins))
	for i, w := range mixedWins {
		benignity := td.Weights.MeanBenignity(w.start, w.start+config.Window, unscoredBenignity)
		td.mixedWeight[i] = 1 - benignity
	}
	if config.ShuffleWeights {
		rng.Shuffle(len(td.mixedWeight), func(i, j int) {
			td.mixedWeight[i], td.mixedWeight[j] = td.mixedWeight[j], td.mixedWeight[i]
		})
	}
	return td, nil
}

// coalesce encodes and windows one partitioned log.
func coalesce(enc *preprocess.Encoder, log *partition.Log, windowSize int) ([]window, error) {
	tuples := enc.EncodeAll(log)
	vecs, starts, err := preprocess.Coalesce(tuples, windowSize)
	if err != nil {
		return nil, err
	}
	out := make([]window, len(vecs))
	for i := range vecs {
		out[i] = window{vec: vecs[i], start: starts[i]}
	}
	return out, nil
}

// sampleWindows draws ⌈fraction·n⌉ windows without replacement. It rejects
// an empty window set (ErrNoWindows) and a non-positive or NaN fraction
// (ErrBadSampleFraction) instead of silently producing zero samples.
func sampleWindows(rng *rand.Rand, wins []window, fraction float64) ([]window, error) {
	if len(wins) == 0 {
		return nil, ErrNoWindows
	}
	if fraction <= 0 || math.IsNaN(fraction) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadSampleFraction, fraction)
	}
	if fraction >= 1 {
		out := make([]window, len(wins))
		copy(out, wins)
		return out, nil
	}
	n := int(float64(len(wins))*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	perm := rng.Perm(len(wins))
	out := make([]window, 0, n)
	for _, p := range perm[:n] {
		out = append(out, wins[p])
	}
	return out, nil
}

// trainProblem assembles the (possibly weighted) SVM problem from sampled
// training windows. Scaling is fitted here.
func (td *TrainingData) trainProblem(rng *rand.Rand, weighted bool) (svm.Problem, *svm.Scaler, error) {
	benign, err := sampleWindows(rng, td.benignTrain, td.cfg.SampleFraction)
	if err != nil {
		return svm.Problem{}, nil, fmt.Errorf("sampling benign training windows: %w", err)
	}
	// Sample mixed windows jointly with their weights.
	if len(td.mixed) == 0 {
		return svm.Problem{}, nil, fmt.Errorf("sampling mixed training windows: %w", ErrNoWindows)
	}
	type weighted_ struct {
		w  window
		wt float64
	}
	all := make([]weighted_, len(td.mixed))
	for i := range td.mixed {
		all[i] = weighted_{td.mixed[i], td.mixedWeight[i]}
	}
	n := int(float64(len(all))*td.cfg.SampleFraction + 0.5)
	if n < 1 {
		n = 1
	}
	if td.cfg.SampleFraction >= 1 {
		n = len(all)
	}
	perm := rng.Perm(len(all))

	var prob svm.Problem
	raw := make([][]float64, 0, len(benign)+n)
	for _, w := range benign {
		raw = append(raw, w.vec)
		prob.Y = append(prob.Y, 1)
		if weighted {
			prob.Weight = append(prob.Weight, 1)
		}
	}
	for _, p := range perm[:n] {
		raw = append(raw, all[p].w.vec)
		prob.Y = append(prob.Y, -1)
		if weighted {
			prob.Weight = append(prob.Weight, all[p].wt)
		}
	}
	scaler, err := svm.FitScaler(raw)
	if err != nil {
		return svm.Problem{}, nil, err
	}
	prob.X = scaler.ApplyAll(raw)
	return prob, scaler, nil
}

// Classifier is a trained LEAPS model (the WSVM path) ready for the
// testing phase.
type Classifier struct {
	enc    *preprocess.Encoder
	scaler *svm.Scaler
	model  *svm.Model
	platt  *svm.PlattScaler
	window int
	params svm.Params
	// cg is the call-graph baseline trained on the same logs. It travels
	// with the classifier (persisted since file version 2) so a Monitor
	// can degrade to it when the statistical sections are unusable. Nil
	// for classifiers loaded from version-1 files.
	cg *callgraph.Model
}

// Params returns the SVM parameters the classifier was trained with.
func (c *Classifier) Params() svm.Params { return c.params }

// Model exposes the underlying SVM model (e.g. for support-vector counts).
func (c *Classifier) Model() *svm.Model { return c.model }

// CallGraph exposes the bundled call-graph baseline (nil when the
// classifier was loaded from a file predating it).
func (c *Classifier) CallGraph() *callgraph.Model { return c.cg }

// Train fits the CFG-guided weighted SVM classifier on the training data.
func (td *TrainingData) Train() (*Classifier, error) {
	return td.train(true)
}

// TrainUnweighted fits the plain-SVM comparison model (all weights 1).
func (td *TrainingData) TrainUnweighted() (*Classifier, error) {
	return td.train(false)
}

func (td *TrainingData) train(weighted bool) (*Classifier, error) {
	ctx, sp := telemetry.StartSpan(context.Background(), "train")
	defer sp.End()
	rng := rand.New(rand.NewSource(td.cfg.Seed + 1))
	prob, scaler, err := td.trainProblem(rng, weighted)
	if err != nil {
		return nil, err
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	var params svm.Params
	if td.cfg.FixedParams != nil {
		params = *td.cfg.FixedParams
	} else {
		grid := td.cfg.Grid
		grid.Seed = td.cfg.Seed
		_, spGrid := telemetry.StartSpan(ctx, "gridsearch")
		best, _, err := svm.GridSearch(prob, grid)
		spGrid.End()
		if err != nil {
			return nil, err
		}
		params = best
	}
	_, spSMO := telemetry.StartSpan(ctx, "smo")
	model, err := svm.Train(prob, params)
	spSMO.End()
	if err != nil {
		return nil, err
	}
	_, spCG := telemetry.StartSpan(ctx, "callgraph")
	cg, err := callgraph.Train(td.BenignPart, td.MixedPart)
	spCG.End()
	if err != nil {
		return nil, err
	}
	_, spPlatt := telemetry.StartSpan(ctx, "platt")
	platt := fitPlatt(model, prob)
	spPlatt.End()
	return &Classifier{
		enc:    td.Encoder,
		scaler: scaler,
		model:  model,
		platt:  platt,
		window: td.cfg.Window,
		params: params,
		cg:     cg,
	}, nil
}

// fitPlatt calibrates a probability sigmoid on the training decisions;
// calibration is best-effort (nil on degenerate inputs).
func fitPlatt(model *svm.Model, prob svm.Problem) *svm.PlattScaler {
	dec := make([]float64, len(prob.X))
	for i, x := range prob.X {
		dec[i] = model.Decision(x)
	}
	p, err := svm.FitPlatt(dec, prob.Y)
	if err != nil {
		return nil
	}
	return p
}

// Detection is one classified window of a log.
type Detection struct {
	// FirstEvent and LastEvent bound the window (event ordinals).
	FirstEvent, LastEvent int
	// Score is the decision value; negative means malicious.
	Score float64
	// Probability is the Platt-calibrated probability that the window is
	// malicious (0.5 when no calibration is available).
	Probability float64
	// Malicious is the verdict.
	Malicious bool
}

// DetectLog applies the classifier to a full log (the testing phase's
// application slicing is assumed done: one process per log).
func (c *Classifier) DetectLog(log *trace.Log) ([]Detection, error) {
	ctx, sp := telemetry.StartSpan(context.Background(), "detect")
	defer sp.End()
	_, spPart := telemetry.StartSpan(ctx, "partition")
	part, err := partition.Split(log)
	spPart.End()
	if err != nil {
		return nil, err
	}
	_, spEnc := telemetry.StartSpan(ctx, "encode")
	tuples := c.enc.EncodeAll(part)
	vecs, starts, err := preprocess.Coalesce(tuples, c.window)
	spEnc.End()
	if err != nil {
		return nil, err
	}
	_, spScore := telemetry.StartSpan(ctx, "score")
	defer spScore.End()
	out := make([]Detection, len(vecs))
	var malicious uint64
	for i, v := range vecs {
		score := c.model.Decision(c.scaler.Apply(v))
		pMal := 0.5
		if c.platt != nil {
			pMal = 1 - c.platt.Probability(score)
		}
		out[i] = Detection{
			FirstEvent:  starts[i],
			LastEvent:   starts[i] + c.window - 1,
			Score:       score,
			Probability: pMal,
			Malicious:   score < 0,
		}
		if out[i].Malicious {
			malicious++
		}
	}
	mDetectWindows.Add(uint64(len(out)))
	mDetectMalicious.Add(malicious)
	return out, nil
}

// classifyWindows runs the model over pre-built windows and fills the
// confusion matrix.
func (c *Classifier) classifyWindows(wins []window, actualBenign bool, conf *metrics.Confusion) {
	for _, w := range wins {
		pred := c.model.Decision(c.scaler.Apply(w.vec)) >= 0
		conf.Add(actualBenign, pred)
	}
}

// cgraphClassify runs the call-graph baseline over windows, resolving each
// from the partitioned log's events. Undecided verdicts count as
// misclassifications of the true class.
func cgraphClassify(m *callgraph.Model, part *partition.Log, wins []window, windowSize int, actualBenign bool, conf *metrics.Confusion, undecided *int) {
	for _, w := range wins {
		end := w.start + windowSize
		if end > part.Len() {
			end = part.Len()
		}
		v := m.ClassifyWindow(part.Events[w.start:end])
		if v == callgraph.VerdictUndecided {
			*undecided++
		}
		conf.Add(actualBenign, v == callgraph.VerdictBenign)
	}
}
