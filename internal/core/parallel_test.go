package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/telemetry"
)

// sameFloat treats two NaNs as equal (AUCs are NaN on degenerate test
// sets).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// TestEvaluateRunsParallelDeterminism is the ISSUE's regression gate: for
// a fixed Config.Seed, EvaluateRuns must produce identical EvalResult
// values with parallelism 1 and parallelism N, because every randomised
// step derives its RNG from its own seed rather than from shared state.
func TestEvaluateRunsParallelDeterminism(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 17)
	const runs = 3

	serial := fastConfig(17)
	serial.Parallel = 1
	a, err := EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, serial, runs)
	if err != nil {
		t.Fatal(err)
	}

	parallel := fastConfig(17)
	parallel.Parallel = 4
	b, err := EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, parallel, runs)
	if err != nil {
		t.Fatal(err)
	}

	if a.CGraph != b.CGraph || a.SVM != b.SVM || a.WSVM != b.WSVM {
		t.Errorf("summaries differ between Parallel=1 and Parallel=4:\n  serial   %+v %+v %+v\n  parallel %+v %+v %+v",
			a.CGraph, a.SVM, a.WSVM, b.CGraph, b.SVM, b.WSVM)
	}
	if !sameFloat(a.WSVMAUC, b.WSVMAUC) || !sameFloat(a.SVMAUC, b.SVMAUC) {
		t.Errorf("AUCs differ: serial (%v, %v) parallel (%v, %v)", a.WSVMAUC, a.SVMAUC, b.WSVMAUC, b.SVMAUC)
	}
	if a.CGraphUndecidedFrac != b.CGraphUndecidedFrac || a.MeanMixedWeight != b.MeanMixedWeight {
		t.Errorf("diagnostics differ: serial (%v, %v) parallel (%v, %v)",
			a.CGraphUndecidedFrac, a.MeanMixedWeight, b.CGraphUndecidedFrac, b.MeanMixedWeight)
	}
	if a.TrainBenign != b.TrainBenign || a.TrainMixed != b.TrainMixed ||
		a.TestBenign != b.TestBenign || a.TestMalicious != b.TestMalicious {
		t.Errorf("set sizes differ: serial (%d/%d/%d/%d) parallel (%d/%d/%d/%d)",
			a.TrainBenign, a.TrainMixed, a.TestBenign, a.TestMalicious,
			b.TrainBenign, b.TrainMixed, b.TestBenign, b.TestMalicious)
	}
}

// TestEvaluateRunsBuildsArtifactsOnce checks the ISSUE's acceptance
// criterion directly: with runs=N the seed-independent artifact build
// (the "train/build" span) happens exactly once, and the per-seed
// training ("train") happens 2×N times (WSVM + plain SVM per run).
func TestEvaluateRunsBuildsArtifactsOnce(t *testing.T) {
	telemetry.ResetSpans()
	logs := genLogs(t, "vim_reverse_tcp", 18)
	const runs = 3
	cfg := fastConfig(18)
	cfg.Parallel = 2
	if _, err := EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, runs); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]uint64)
	for _, s := range telemetry.SpanReport() {
		counts[s.Path] = s.Count
	}
	if counts["train/build"] != 1 {
		t.Errorf("train/build span count = %d, want exactly 1 for runs=%d", counts["train/build"], runs)
	}
	if counts["train"] != 2*runs {
		t.Errorf("train span count = %d, want %d (WSVM+SVM per run)", counts["train"], 2*runs)
	}
}

// TestTrainSizesReported checks the satellite fix: EvalResult reports the
// actual sampled training-set sizes, not fraction-scaled estimates. With
// a fraction small enough to round the estimate to zero, sampling still
// draws one window and the report must say so.
func TestTrainSizesReported(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 19)
	cfg := fastConfig(19)
	cfg.SampleFraction = 0.001
	res, err := Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainBenign != 1 || res.TrainMixed != 1 {
		t.Errorf("TrainBenign/TrainMixed = %d/%d, want 1/1 (the actual clamped sample sizes)",
			res.TrainBenign, res.TrainMixed)
	}
	if res.TestBenign != 1 || res.TestMalicious != 1 {
		t.Errorf("TestBenign/TestMalicious = %d/%d, want 1/1", res.TestBenign, res.TestMalicious)
	}
}

// TestSelectIsolation: selections derived from one Artifacts must not
// mutate shared state — two interleaved Select calls with different seeds
// reproduce the same splits as fresh calls.
func TestSelectIsolation(t *testing.T) {
	logs := genLogs(t, "vim_reverse_tcp", 20)
	art, err := BuildArtifacts(context.Background(), logs.Benign, logs.Mixed, fastConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	s1a := art.Select(1)
	s2 := art.Select(2)
	s1b := art.Select(1)
	if len(s1a.benignTrain) != len(s1b.benignTrain) {
		t.Fatalf("split sizes differ across repeated Select: %d vs %d", len(s1a.benignTrain), len(s1b.benignTrain))
	}
	for i := range s1a.benignTrain {
		if s1a.benignTrain[i].start != s1b.benignTrain[i].start {
			t.Fatalf("benignTrain[%d] differs across repeated Select(1)", i)
		}
	}
	if s2.Seed() != 2 || s1a.Artifacts() != art {
		t.Error("Selection accessors broken")
	}
}
