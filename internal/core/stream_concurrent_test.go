package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"repro/internal/trace"
)

// encodeDetections serialises a verdict sequence so runs can be compared
// byte for byte, not just value for value.
func encodeDetections(t *testing.T, dets []Detection) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dets); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feedAll drives every event through the detector and collects verdicts.
func feedAll(t *testing.T, s *StreamDetector, events []trace.Event) []Detection {
	t.Helper()
	var out []Detection
	for _, e := range events {
		det, err := s.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			out = append(out, *det)
		}
	}
	return out
}

// TestConcurrentSessionsCheckpointRestore runs N sessions over one shared
// classifier from N goroutines, each checkpointing to a spool mid-stream,
// restoring, and continuing — the serving subsystem's access pattern.
// Every session's verdicts must be byte-identical to an uninterrupted
// serial run. Run under -race this also proves session independence: the
// sessions share the classifier and module map but never each other's
// state.
func TestConcurrentSessionsCheckpointRestore(t *testing.T) {
	clf, mal := trainStream(t, 44)
	const sessions = 8
	n := 4 * clf.window
	dir := t.TempDir()

	// Uninterrupted references, computed serially. Each session gets its
	// own offset slice of the stream so their window contents differ.
	want := make([][]Detection, sessions)
	for i := 0; i < sessions; i++ {
		ref, err := clf.Stream(mal.Modules)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = feedAll(t, ref, mal.Events[i:i+n])
	}

	got := make([][]Detection, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			events := mal.Events[i : i+n]
			cut := clf.window + 2 + i // interleave the checkpoint points
			id := fmt.Sprintf("sess-%d", i)

			s1, err := clf.Stream(mal.Modules)
			if err != nil {
				errs[i] = err
				return
			}
			var dets []Detection
			for _, e := range events[:cut] {
				det, err := s1.Feed(e)
				if err != nil {
					errs[i] = err
					return
				}
				if det != nil {
					dets = append(dets, *det)
				}
			}
			if err := WriteSpoolCheckpoint(dir, id, s1); err != nil {
				errs[i] = err
				return
			}
			r, err := OpenSpoolCheckpoint(dir, id)
			if err != nil {
				errs[i] = err
				return
			}
			s2, err := clf.RestoreStream(mal.Modules, r)
			r.Close()
			if err != nil {
				errs[i] = err
				return
			}
			for _, e := range events[cut:] {
				det, err := s2.Feed(e)
				if err != nil {
					errs[i] = err
					return
				}
				if det != nil {
					dets = append(dets, *det)
				}
			}
			got[i] = dets
		}(i)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !bytes.Equal(encodeDetections(t, got[i]), encodeDetections(t, want[i])) {
			t.Errorf("session %d: interrupted verdicts differ from uninterrupted run (%d vs %d detections)",
				i, len(got[i]), len(want[i]))
		}
	}
}

// TestStreamDetectorConcurrentFeedCheckpoint hammers one detector with
// concurrent Feed and Checkpoint calls. Verdict order is undefined under
// concurrent feeding, so the assertions are on the serialised invariants:
// every event is counted exactly once and every checkpoint taken mid-race
// is internally consistent (decodable, partial window only).
func TestStreamDetectorConcurrentFeedCheckpoint(t *testing.T) {
	clf, mal := trainStream(t, 45)
	s, err := clf.Stream(mal.Modules)
	if err != nil {
		t.Fatal(err)
	}
	const feeders = 4
	per := 3 * clf.window
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for _, e := range mal.Events[f*per : (f+1)*per] {
				if _, err := s.Feed(e); err != nil {
					t.Errorf("feeder %d: %v", f, err)
					return
				}
			}
		}(f)
	}
	ckptErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			var buf bytes.Buffer
			if err := s.Checkpoint(&buf); err != nil {
				ckptErr <- err
				return
			}
			fresh, err := clf.Stream(mal.Modules)
			if err != nil {
				ckptErr <- err
				return
			}
			if err := fresh.restore(bytes.NewReader(buf.Bytes())); err != nil {
				ckptErr <- fmt.Errorf("checkpoint %d not restorable: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-ckptErr:
		t.Fatal(err)
	default:
	}
	if s.Consumed() != feeders*per {
		t.Fatalf("Consumed() = %d, want %d", s.Consumed(), feeders*per)
	}
	if s.Skipped() != 0 {
		t.Fatalf("Skipped() = %d, want 0", s.Skipped())
	}
}
