package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/trace"
)

func universalFixtures(t *testing.T) (pairs []LogPair, malicious []*trace.Log) {
	t.Helper()
	for i, name := range []string{"vim_reverse_tcp", "putty_reverse_https_online"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 3000, 3000, 1500
		logs, err := spec.Generate(int64(20 + i))
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, LogPair{Benign: logs.Benign, Mixed: logs.Mixed})
		malicious = append(malicious, logs.Malicious)
	}
	return pairs, malicious
}

func TestBuildUniversalTrainingDataValidation(t *testing.T) {
	if _, err := BuildUniversalTrainingData(context.Background(), nil, fastConfig(1)); err == nil {
		t.Error("no pairs accepted")
	}
	if _, err := BuildUniversalTrainingData(context.Background(), []LogPair{{}}, fastConfig(1)); err == nil {
		t.Error("nil logs accepted")
	}
}

func TestUniversalSharedEncoder(t *testing.T) {
	pairs, _ := universalFixtures(t)
	u, err := BuildUniversalTrainingData(context.Background(), pairs, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.PerApp) != 2 {
		t.Fatalf("PerApp = %d, want 2", len(u.PerApp))
	}
	for i, td := range u.PerApp {
		if td.Encoder != u.Encoder {
			t.Errorf("app %d does not share the universal encoder", i)
		}
		if td.BenignCFG.Graph.NumNodes() == 0 {
			t.Errorf("app %d has empty benign CFG", i)
		}
	}
}

func TestEvaluateUniversal(t *testing.T) {
	pairs, malicious := universalFixtures(t)
	perApp, pooled, err := EvaluateUniversal(context.Background(), pairs, malicious, fastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(perApp) != 2 {
		t.Fatalf("perApp = %d summaries", len(perApp))
	}
	// One cross-application model still has to discriminate: the pooled
	// accuracy must beat chance clearly.
	if math.IsNaN(pooled.ACC) || pooled.ACC < 0.65 {
		t.Errorf("pooled universal ACC = %v, want >= 0.65", pooled.ACC)
	}
	for i, s := range perApp {
		if math.IsNaN(s.ACC) || s.ACC < 0.55 {
			t.Errorf("app %d universal ACC = %v, want >= 0.55", i, s.ACC)
		}
	}
}

func TestEvaluateUniversalValidation(t *testing.T) {
	pairs, malicious := universalFixtures(t)
	if _, _, err := EvaluateUniversal(context.Background(), pairs, malicious[:1], fastConfig(4)); err == nil {
		t.Error("mismatched malicious count accepted")
	}
}
