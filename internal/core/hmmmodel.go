package core

import (
	"fmt"

	"repro/internal/hmm"
	"repro/internal/metrics"
)

// This file adds the §VI-B extension model to the evaluation: a two-class
// hidden Markov model over the discretised event-symbol sequence, which
// (unlike the window-flattening SVMs) can exploit ordering constraints
// between events.

// hmmStates is the hidden-state count for the extension classifier.
const hmmStates = 4

// hmmClassifier classifies windows by HMM log-likelihood ratio.
type hmmClassifier struct {
	vocab map[[3]int]int
	clf   *hmm.Classifier
}

// trainHMM fits the benign HMM on the benign training windows' symbol
// sequence and the malicious HMM on the mixed windows' sequence.
func trainHMM(sel *Selection) (*hmmClassifier, error) {
	h := &hmmClassifier{vocab: make(map[[3]int]int)}
	// Symbol 0 is reserved for tuples unseen at training time.
	next := 1
	intern := func(wins []window, build bool) []int {
		var seq []int
		for _, w := range wins {
			for i := 0; i+2 < len(w.vec); i += 3 {
				key := [3]int{int(w.vec[i]), int(w.vec[i+1]), int(w.vec[i+2])}
				sym, ok := h.vocab[key]
				if !ok {
					if !build {
						sym = 0
					} else {
						sym = next
						h.vocab[key] = sym
						next++
					}
				}
				seq = append(seq, sym)
			}
		}
		return seq
	}
	benignSeq := intern(sel.benignTrain, true)
	mixedSeq := intern(sel.art.mixed, true)
	clf, err := hmm.TrainClassifier(benignSeq, mixedSeq, next, hmm.Config{
		States: hmmStates,
		Seed:   sel.seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: training HMM extension: %w", err)
	}
	h.clf = clf
	return h, nil
}

// windowSymbols interns one window's tuples for prediction (unseen tuples
// map to the reserved unknown symbol).
func (h *hmmClassifier) windowSymbols(w window) []int {
	seq := make([]int, 0, len(w.vec)/3)
	for i := 0; i+2 < len(w.vec); i += 3 {
		key := [3]int{int(w.vec[i]), int(w.vec[i+1]), int(w.vec[i+2])}
		seq = append(seq, h.vocab[key]) // 0 when absent
	}
	return seq
}

// classifyWindows scores windows into the confusion matrix.
func (h *hmmClassifier) classifyWindows(wins []window, actualBenign bool, conf *metrics.Confusion) error {
	for _, w := range wins {
		benign, err := h.clf.PredictBenign(h.windowSymbols(w))
		if err != nil {
			return err
		}
		conf.Add(actualBenign, benign)
	}
	return nil
}
