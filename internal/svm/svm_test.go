package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProblemValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Problem)
		wantErr bool
	}{
		{"valid", func(p *Problem) {}, false},
		{"empty", func(p *Problem) { p.X = nil; p.Y = nil }, true},
		{"label count", func(p *Problem) { p.Y = p.Y[:1] }, true},
		{"weight count", func(p *Problem) { p.Weight = []float64{1} }, true},
		{"ragged dims", func(p *Problem) { p.X[1] = []float64{1} }, true},
		{"bad label", func(p *Problem) { p.Y[0] = 2 }, true},
		{"one class", func(p *Problem) { p.Y[1] = 1 }, true},
		{"weight range", func(p *Problem) { p.Weight = []float64{1, 1.5} }, true},
		{"nan weight", func(p *Problem) { p.Weight = []float64{1, math.NaN()} }, true},
		{"valid weights", func(p *Problem) { p.Weight = []float64{1, 0.5} }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Problem{
				X: [][]float64{{0, 0}, {1, 1}},
				Y: []float64{1, -1},
			}
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTrainRejectsBadLambda(t *testing.T) {
	p := Problem{X: [][]float64{{0}, {1}}, Y: []float64{1, -1}}
	if _, err := Train(p, Params{Lambda: 0}); err == nil {
		t.Error("Lambda=0 accepted")
	}
	if _, err := Train(p, Params{Lambda: -1}); err == nil {
		t.Error("Lambda<0 accepted")
	}
}

// linearly separable clusters around (0,0) and (3,3).
func separableProblem(rng *rand.Rand, n int) Problem {
	var p Problem
	for i := 0; i < n; i++ {
		p.X = append(p.X, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
		p.Y = append(p.Y, 1)
		p.X = append(p.X, []float64{3 + rng.NormFloat64()*0.3, 3 + rng.NormFloat64()*0.3})
		p.Y = append(p.Y, -1)
	}
	return p
}

func TestTrainSeparableLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := separableProblem(rng, 40)
	m, err := Train(p, Params{Lambda: 10, Kernel: LinearKernel{}})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range p.X {
		if m.Predict(x) != p.Y[i] {
			t.Fatalf("training point %d misclassified", i)
		}
	}
	// Fresh points from the same clusters classify correctly.
	for i := 0; i < 50; i++ {
		if m.Predict([]float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}) != 1 {
			t.Fatal("fresh positive point misclassified")
		}
		if m.Predict([]float64{3 + rng.NormFloat64()*0.3, 3 + rng.NormFloat64()*0.3}) != -1 {
			t.Fatal("fresh negative point misclassified")
		}
	}
	if m.NumSVs() == 0 || m.NumSVs() == len(p.X) {
		t.Errorf("NumSVs = %d of %d, want a sparse subset", m.NumSVs(), len(p.X))
	}
}

func TestTrainXORWithRBF(t *testing.T) {
	// XOR is not linearly separable; the Gaussian kernel handles it.
	p := Problem{
		X: [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}},
		Y: []float64{1, 1, -1, -1},
	}
	m, err := Train(p, Params{Lambda: 50, Kernel: RBFKernel{Sigma2: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range p.X {
		if m.Predict(x) != p.Y[i] {
			t.Errorf("XOR point %d misclassified (decision %.3f)", i, m.Decision(x))
		}
	}
}

func TestTrainPolyKernel(t *testing.T) {
	p := Problem{
		X: [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}},
		Y: []float64{1, 1, -1, -1},
	}
	m, err := Train(p, Params{Lambda: 50, Kernel: PolyKernel{Degree: 2, Gamma: 1, Coef0: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range p.X {
		if m.Predict(x) != p.Y[i] {
			t.Errorf("poly-kernel XOR point %d misclassified", i)
		}
	}
}

// TestWeightedIgnoresZeroWeight is the core WSVM property: mislabeled
// points with weight 0 cannot move the boundary and never become support
// vectors.
func TestWeightedIgnoresZeroWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := separableProblem(rng, 30)
	// Inject 20 poisoned points: positive-cluster locations labeled -1,
	// weight 0 (CFG said they are certainly mislabeled).
	p.Weight = make([]float64, len(p.X))
	for i := range p.Weight {
		p.Weight[i] = 1
	}
	for i := 0; i < 20; i++ {
		p.X = append(p.X, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
		p.Y = append(p.Y, -1)
		p.Weight = append(p.Weight, 0)
	}
	m, err := Train(p, Params{Lambda: 10, Kernel: LinearKernel{}})
	if err != nil {
		t.Fatal(err)
	}
	// The positive cluster must still classify as positive.
	for i := 0; i < 30; i++ {
		if m.Predict([]float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}) != 1 {
			t.Fatal("zero-weight poison moved the boundary")
		}
	}
}

// TestWeightedVersusUnweightedOnNoisyLabels reproduces Figure 5's claim:
// with label noise, the weighted model recovers the boundary the
// unweighted model loses.
func TestWeightedVersusUnweightedOnNoisyLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var p Problem
	// 60 true positives at (0,0); 60 true negatives at (2.2,2.2) labeled
	// -1; plus 60 noisy points at (0,0) ALSO labeled -1 (the "benign
	// events inside the mixed log").
	for i := 0; i < 60; i++ {
		p.X = append(p.X, []float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4})
		p.Y = append(p.Y, 1)
		p.Weight = append(p.Weight, 1)
	}
	for i := 0; i < 60; i++ {
		p.X = append(p.X, []float64{2.2 + rng.NormFloat64()*0.4, 2.2 + rng.NormFloat64()*0.4})
		p.Y = append(p.Y, -1)
		p.Weight = append(p.Weight, 0.9) // CFG confident these are malicious
	}
	for i := 0; i < 60; i++ {
		p.X = append(p.X, []float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4})
		p.Y = append(p.Y, -1)
		p.Weight = append(p.Weight, 0.05) // CFG says: almost surely benign
	}

	params := Params{Lambda: 5, Kernel: RBFKernel{Sigma2: 2}}
	weighted, err := Train(p, params)
	if err != nil {
		t.Fatal(err)
	}
	unweighted, err := Train(Problem{X: p.X, Y: p.Y}, params)
	if err != nil {
		t.Fatal(err)
	}

	// Score both on clean held-out data.
	eval := func(m *Model) float64 {
		correct := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			if m.Predict([]float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4}) == 1 {
				correct++
			}
			if m.Predict([]float64{2.2 + rng.NormFloat64()*0.4, 2.2 + rng.NormFloat64()*0.4}) == -1 {
				correct++
			}
		}
		return float64(correct) / float64(2*trials)
	}
	wAcc, uAcc := eval(weighted), eval(unweighted)
	if wAcc < 0.9 {
		t.Errorf("weighted accuracy = %.3f, want >= 0.9", wAcc)
	}
	if wAcc <= uAcc {
		t.Errorf("weighted accuracy %.3f not above unweighted %.3f", wAcc, uAcc)
	}
}

// TestKKTConditions verifies the solver actually solves the dual: every
// sample satisfies the KKT conditions of the weighted problem within
// tolerance.
func TestKKTConditions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		var p Problem
		p.Weight = make([]float64, 0, 2*n)
		for i := 0; i < n; i++ {
			p.X = append(p.X, []float64{rng.NormFloat64(), rng.NormFloat64()})
			p.Y = append(p.Y, 1)
			p.Weight = append(p.Weight, rng.Float64())
			p.X = append(p.X, []float64{1 + rng.NormFloat64(), 1 + rng.NormFloat64()})
			p.Y = append(p.Y, -1)
			p.Weight = append(p.Weight, rng.Float64())
		}
		lambda := 1 + rng.Float64()*10
		params := Params{
			Lambda: lambda,
			Kernel: RBFKernel{Sigma2: 1},
			Tol:    1e-4,
			// Exercise both working-set selection strategies.
			SecondOrderWSS: seed%2 == 0,
		}
		m, err := Train(p, params)
		if err != nil {
			return false
		}
		const slack = 5e-3
		for i, x := range p.X {
			yd := p.Y[i] * m.Decision(x)
			ci := lambda * p.Weight[i]
			alpha := alphaOf(m, p, i)
			switch {
			case alpha <= 1e-9: // α=0 → y·d ≥ 1
				if ci > 1e-9 && yd < 1-slack {
					return false
				}
			case alpha >= ci-1e-9: // α=C → y·d ≤ 1
				if yd > 1+slack {
					return false
				}
			default: // free → y·d = 1
				if math.Abs(yd-1) > slack {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// alphaOf recovers |α_i| for training sample i from the model's support
// vector coefficients (0 when the sample is not a support vector).
func alphaOf(m *Model, p Problem, i int) float64 {
	// Support vectors keep the training slice identity.
	for s, sv := range m.svX {
		if &sv[0] == &p.X[i][0] {
			return math.Abs(m.svCoef[s])
		}
	}
	return 0
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := separableProblem(rng, 50)
	params := Params{Lambda: 3, Kernel: RBFKernel{Sigma2: 1}}
	a, err := Train(p, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSVs() != b.NumSVs() || a.Bias() != b.Bias() {
		t.Error("two identical trainings disagree")
	}
	probe := []float64{1.5, 1.5}
	if a.Decision(probe) != b.Decision(probe) {
		t.Error("decisions disagree")
	}
}

func TestZeroWeightNeverSupportVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := separableProblem(rng, 20)
	p.Weight = make([]float64, len(p.X))
	for i := range p.Weight {
		p.Weight[i] = 1
	}
	p.Weight[3] = 0
	p.Weight[7] = 0
	m, err := Train(p, Params{Lambda: 10, Kernel: LinearKernel{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sv := range m.svX {
		if &sv[0] == &p.X[3][0] || &sv[0] == &p.X[7][0] {
			t.Error("zero-weight sample became a support vector")
		}
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{0, 10, 5}, {10, 20, 5}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 3 {
		t.Errorf("Dim() = %d", s.Dim())
	}
	got := s.Apply([]float64{5, 15, 5})
	want := []float64{0.5, 0.5, 0} // constant column maps to 0
	for d := range want {
		if math.Abs(got[d]-want[d]) > 1e-12 {
			t.Errorf("Apply[%d] = %v, want %v", d, got[d], want[d])
		}
	}
	all := s.ApplyAll(x)
	if all[0][0] != 0 || all[1][0] != 1 {
		t.Errorf("ApplyAll corners = %v, %v", all[0][0], all[1][0])
	}
	// Out-of-range values extrapolate rather than clamp.
	if v := s.Apply([]float64{20, 10, 5})[0]; v != 2 {
		t.Errorf("extrapolated = %v, want 2", v)
	}
}

func TestFitScalerValidation(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Error("FitScaler(nil) succeeded")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := separableProblem(rng, 40)
	acc, err := CrossValidate(p, Params{Lambda: 5, Kernel: RBFKernel{Sigma2: 1}}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("CV accuracy = %.3f on separable data, want >= 0.95", acc)
	}
	if _, err := CrossValidate(p, Params{Lambda: 5}, 1, 1); err == nil {
		t.Error("folds=1 accepted")
	}
}

func TestCrossValidateDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := separableProblem(rng, 25)
	params := Params{Lambda: 2, Kernel: RBFKernel{Sigma2: 1}}
	a, err := CrossValidate(p, params, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(p, params, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
}

func TestGridSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := separableProblem(rng, 30)
	grid := GridSpec{Lambdas: []float64{1, 10}, Sigma2s: []float64{0.5, 2}, Folds: 3, Seed: 1}
	params, acc, err := GridSearch(p, grid)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("grid best accuracy = %.3f, want >= 0.9", acc)
	}
	if params.Lambda == 0 || params.Kernel == nil {
		t.Error("grid returned zero params")
	}
	if _, _, err := GridSearch(p, GridSpec{}); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestKernelStrings(t *testing.T) {
	if (LinearKernel{}).String() != "linear" {
		t.Error("linear name")
	}
	if (RBFKernel{Sigma2: 2}).String() != "rbf(σ²=2)" {
		t.Errorf("rbf name = %s", RBFKernel{Sigma2: 2}.String())
	}
	if (PolyKernel{Degree: 2, Gamma: 1, Coef0: 0}).String() == "" {
		t.Error("poly name empty")
	}
}

func TestRBFKernelValues(t *testing.T) {
	k := RBFKernel{Sigma2: 4}
	if got := k.Compute([]float64{1, 2}, []float64{1, 2}); got != 1 {
		t.Errorf("k(x,x) = %v, want 1", got)
	}
	// ‖(0)-(2)‖² = 4 → exp(-1)
	if got := k.Compute([]float64{0}, []float64{2}); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("k = %v, want exp(-1)", got)
	}
}

func TestSecondOrderWSSAgreesAndConvergesFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// An overlapping, weighted problem where selection strategy matters.
	var p Problem
	for i := 0; i < 80; i++ {
		p.X = append(p.X, []float64{rng.NormFloat64(), rng.NormFloat64()})
		p.Y = append(p.Y, 1)
		p.Weight = append(p.Weight, 0.3+0.7*rng.Float64())
		p.X = append(p.X, []float64{0.8 + rng.NormFloat64(), 0.8 + rng.NormFloat64()})
		p.Y = append(p.Y, -1)
		p.Weight = append(p.Weight, 0.3+0.7*rng.Float64())
	}
	base := Params{Lambda: 10, Kernel: RBFKernel{Sigma2: 1}, Tol: 1e-4}
	first, err := Train(p, base)
	if err != nil {
		t.Fatal(err)
	}
	second := base
	second.SecondOrderWSS = true
	m2, err := Train(p, second)
	if err != nil {
		t.Fatal(err)
	}
	// Both reach the same optimum: decisions agree on probes.
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		d1, d2 := first.Decision(x), m2.Decision(x)
		if math.Abs(d1-d2) > 0.05 {
			t.Fatalf("WSS1/WSS2 decisions diverge at %v: %v vs %v", x, d1, d2)
		}
	}
	// WSS2 should not need more iterations (usually far fewer).
	if m2.Iters > first.Iters {
		t.Errorf("WSS2 took %d iterations, WSS1 %d", m2.Iters, first.Iters)
	}
}
