package svm

import "sync"

// rowCacheStripes is the stripe count of a RowCache: a power of two so
// the index→stripe mapping is a mask, large enough that the grid-search
// worker pool rarely contends on one lock.
const rowCacheStripes = 16

// RowCache is a sharded, mutex-striped cache of raw kernel rows
// K[i][j] = k(xᵢ,xⱼ) over one fixed sample set, keyed by sample index.
// It is safe for concurrent use: every scorer sharing a kernel — the
// grid-search worker pool sweeping λ at one σ², the cross-validation
// folds inside each sweep — gathers its label-signed Q rows from the
// same raw rows instead of re-evaluating the kernel. Rows are pure
// functions of (i, x, kernel), so concurrent duplicate computation is
// value-identical and the first stored row is kept canonical.
type RowCache struct {
	x       [][]float64
	kernel  Kernel
	stripes [rowCacheStripes]rowStripe
}

type rowStripe struct {
	mu   sync.Mutex
	rows map[int][]float64
}

// NewRowCache builds an empty cache over the sample set for one kernel.
// The cache aliases x; callers must not mutate the vectors while the
// cache is live.
func NewRowCache(x [][]float64, kernel Kernel) *RowCache {
	c := &RowCache{x: x, kernel: kernel}
	for i := range c.stripes {
		c.stripes[i].rows = make(map[int][]float64)
	}
	return c
}

// Len returns the sample count the cache spans.
func (c *RowCache) Len() int { return len(c.x) }

// Row returns the raw kernel row of sample i, computing it outside the
// stripe lock on first use. The returned slice is shared and must be
// treated as read-only.
func (c *RowCache) Row(i int) []float64 {
	st := &c.stripes[i&(rowCacheStripes-1)]
	st.mu.Lock()
	if r, ok := st.rows[i]; ok {
		st.mu.Unlock()
		mCacheHits.Inc()
		return r
	}
	st.mu.Unlock()

	mCacheMisses.Inc()
	row := make([]float64, len(c.x))
	for j := range c.x {
		row[j] = c.kernel.Compute(c.x[i], c.x[j])
	}
	mKernelEvals.Add(uint64(len(row)))

	st.mu.Lock()
	if r, ok := st.rows[i]; ok {
		// Lost the race: keep the first stored row canonical so every
		// caller aliases one backing array.
		row = r
	} else {
		st.rows[i] = row
	}
	st.mu.Unlock()
	return row
}
