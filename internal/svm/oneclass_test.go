package svm

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainOneClassValidation(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 1}, {0, 1}}
	if _, err := TrainOneClass(x[:1], OneClassParams{Nu: 0.5}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := TrainOneClass(x, OneClassParams{Nu: 0}); err == nil {
		t.Error("Nu=0 accepted")
	}
	if _, err := TrainOneClass(x, OneClassParams{Nu: 1.5}); err == nil {
		t.Error("Nu>1 accepted")
	}
	if _, err := TrainOneClass([][]float64{{0}, {1, 2}}, OneClassParams{Nu: 0.5}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestOneClassSeparatesCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var x [][]float64
	for i := 0; i < 120; i++ {
		x = append(x, []float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4})
	}
	m, err := TrainOneClass(x, OneClassParams{Nu: 0.1, Kernel: RBFKernel{Sigma2: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSVs() == 0 || m.NumSVs() == len(x) {
		t.Errorf("NumSVs = %d of %d, want a sparse subset", m.NumSVs(), len(x))
	}
	// Most training-like points are inliers; far points are outliers.
	inliers, outliers := 0, 0
	const trials = 200
	for i := 0; i < trials; i++ {
		if m.PredictInlier([]float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4}) {
			inliers++
		}
		if !m.PredictInlier([]float64{4 + rng.NormFloat64()*0.4, 4 + rng.NormFloat64()*0.4}) {
			outliers++
		}
	}
	if frac := float64(inliers) / trials; frac < 0.8 {
		t.Errorf("inlier acceptance = %.2f, want >= 0.8", frac)
	}
	if frac := float64(outliers) / trials; frac < 0.95 {
		t.Errorf("outlier rejection = %.2f, want >= 0.95", frac)
	}
}

// TestOneClassNuControlsOutlierFraction checks the ν-property: roughly a
// ν fraction of training points fall outside the learned region.
func TestOneClassNuControlsOutlierFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var x [][]float64
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for _, nu := range []float64{0.05, 0.2, 0.5} {
		m, err := TrainOneClass(x, OneClassParams{Nu: nu, Kernel: RBFKernel{Sigma2: 2}, Tol: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		rejected := 0
		for _, v := range x {
			if !m.PredictInlier(v) {
				rejected++
			}
		}
		frac := float64(rejected) / float64(len(x))
		if math.Abs(frac-nu) > nu*0.6+0.05 {
			t.Errorf("ν=%.2f rejected fraction %.3f, want near ν", nu, frac)
		}
	}
}

func TestOneClassDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var x [][]float64
	for i := 0; i < 60; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	a, err := TrainOneClass(x, OneClassParams{Nu: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainOneClass(x, OneClassParams{Nu: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rho() != b.Rho() || a.NumSVs() != b.NumSVs() {
		t.Error("one-class training not deterministic")
	}
}
