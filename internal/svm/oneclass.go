package svm

import (
	"errors"
	"fmt"
	"math"
)

// One-class SVM (Schölkopf et al.): an anomaly detector trained on benign
// data only, solving
//
//	min_α  ½ ΣᵢΣⱼ αᵢαⱼk(xᵢ,xⱼ)
//	s.t.   0 ≤ αᵢ ≤ 1/(ν·n),   Σᵢ αᵢ = 1
//
// The paper's related work (Heller et al.) uses this model for anomalous
// registry access; it is the natural "no mixed log available" baseline
// against which LEAPS's noise-pruned two-class training is motivated.

// OneClassParams configures one-class training.
type OneClassParams struct {
	// Nu bounds the fraction of training outliers (and support vectors);
	// in (0, 1].
	Nu float64
	// Kernel defaults to RBFKernel{Sigma2: 1}.
	Kernel Kernel
	// Tol is the KKT tolerance (default 1e-3); MaxIter bounds iterations.
	Tol     float64
	MaxIter int
}

// OneClassModel is a trained one-class SVM.
type OneClassModel struct {
	kernel Kernel
	svX    [][]float64
	svCoef []float64
	rho    float64
	// Iters reports solver iterations.
	Iters int
}

// TrainOneClass fits a one-class SVM on the (unlabeled) training vectors.
func TrainOneClass(x [][]float64, params OneClassParams) (*OneClassModel, error) {
	n := len(x)
	if n < 2 {
		return nil, errors.New("svm: one-class training needs at least 2 samples")
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("svm: sample %d has dimension %d, want %d", i, len(x[i]), dim)
		}
	}
	if params.Nu <= 0 || params.Nu > 1 {
		return nil, fmt.Errorf("svm: Nu %v out of (0,1]", params.Nu)
	}
	if params.Kernel == nil {
		params.Kernel = RBFKernel{Sigma2: 1}
	}
	if params.Tol <= 0 {
		params.Tol = 1e-3
	}
	if params.MaxIter <= 0 {
		params.MaxIter = 100 * n
		if params.MaxIter < 10000 {
			params.MaxIter = 10000
		}
	}

	// Reuse the two-class solver machinery with all labels +1: the pair
	// update then preserves Σα. The initial point must be feasible
	// (Σα = 1): LIBSVM's initialisation fills the first ⌊νn⌋ entries at
	// the bound 1/(νn) and the remainder fractionally.
	y := make([]float64, n)
	c := make([]float64, n)
	upper := 1 / (params.Nu * float64(n))
	for i := range y {
		y[i] = 1
		c[i] = upper
	}
	s := newSolver(x, y, c, Params{
		Lambda:  1, // unused: c is set explicitly above
		Kernel:  params.Kernel,
		Tol:     params.Tol,
		MaxIter: params.MaxIter,
	})
	budget := 1.0
	for i := 0; i < n && budget > 0; i++ {
		a := math.Min(upper, budget)
		s.alpha[i] = a
		budget -= a
	}
	// Gradient of the one-class dual: G = Qα (no linear term).
	for t := 0; t < n; t++ {
		s.grad[t] = 0
	}
	for i := 0; i < n; i++ {
		if s.alpha[i] == 0 {
			continue
		}
		qi := s.q.row(i)
		for t := 0; t < n; t++ {
			s.grad[t] += qi[t] * s.alpha[i]
		}
	}
	s.solve()

	m := &OneClassModel{kernel: params.Kernel, rho: -s.bias(), Iters: s.iters}
	for i := 0; i < n; i++ {
		if s.alpha[i] > 1e-12 {
			m.svX = append(m.svX, x[i])
			m.svCoef = append(m.svCoef, s.alpha[i])
		}
	}
	return m, nil
}

// NumSVs returns the support-vector count.
func (m *OneClassModel) NumSVs() int { return len(m.svX) }

// Rho returns the decision offset.
func (m *OneClassModel) Rho() float64 { return m.rho }

// Decision returns Σᵢ αᵢk(xᵢ,x) − ρ; negative means anomalous.
func (m *OneClassModel) Decision(x []float64) float64 {
	s := -m.rho
	for i, sv := range m.svX {
		s += m.svCoef[i] * m.kernel.Compute(sv, x)
	}
	return s
}

// PredictInlier reports whether x lies inside the learned region.
func (m *OneClassModel) PredictInlier(x []float64) bool {
	return m.Decision(x) >= 0
}

// DecisionBatch appends the decision value of every vector of xs to dst
// (pass dst[:0] to recycle a buffer) — the one-class counterpart of
// Model.DecisionBatch.
func (m *OneClassModel) DecisionBatch(dst []float64, xs [][]float64) []float64 {
	for _, x := range xs {
		dst = append(dst, m.Decision(x))
	}
	return dst
}
