package svm

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitPlattValidation(t *testing.T) {
	if _, err := FitPlatt(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitPlatt([]float64{1}, []float64{1, -1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitPlatt([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := FitPlatt([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("bad label accepted")
	}
}

func TestPlattMonotoneAndCalibrated(t *testing.T) {
	// Decision values cleanly separated around 0.
	rng := rand.New(rand.NewSource(1))
	var dec, lab []float64
	for i := 0; i < 200; i++ {
		dec = append(dec, 1.5+rng.NormFloat64())
		lab = append(lab, 1)
		dec = append(dec, -1.5+rng.NormFloat64())
		lab = append(lab, -1)
	}
	p, err := FitPlatt(dec, lab)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone increasing in the decision value.
	prev := -1.0
	for d := -4.0; d <= 4.0; d += 0.5 {
		pr := p.Probability(d)
		if pr < 0 || pr > 1 {
			t.Fatalf("Probability(%v) = %v out of [0,1]", d, pr)
		}
		if pr < prev {
			t.Fatalf("probability not monotone at %v", d)
		}
		prev = pr
	}
	// Confident regions map near 0/1; boundary maps to the middle.
	if p.Probability(3) < 0.9 {
		t.Errorf("P(+3) = %v, want > 0.9", p.Probability(3))
	}
	if p.Probability(-3) > 0.1 {
		t.Errorf("P(-3) = %v, want < 0.1", p.Probability(-3))
	}
	if mid := p.Probability(0); math.Abs(mid-0.5) > 0.15 {
		t.Errorf("P(0) = %v, want near 0.5", mid)
	}
}

func TestPlattWithTrainedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prob := separableProblem(rng, 40)
	m, err := Train(prob, Params{Lambda: 5, Kernel: RBFKernel{Sigma2: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dec := make([]float64, len(prob.X))
	for i, x := range prob.X {
		dec[i] = m.Decision(x)
	}
	p, err := FitPlatt(dec, prob.Y)
	if err != nil {
		t.Fatal(err)
	}
	// The positive cluster gets high benign probability.
	pos := p.Probability(m.Decision([]float64{0, 0}))
	neg := p.Probability(m.Decision([]float64{3, 3}))
	if pos < 0.8 {
		t.Errorf("P(benign cluster) = %v, want > 0.8", pos)
	}
	if neg > 0.2 {
		t.Errorf("P(malicious cluster) = %v, want < 0.2", neg)
	}
}
