package svm

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// CrossValidate estimates classification quality of the given parameters
// by k-fold cross-validation on the problem, shuffling with the seed.
//
// The score is the balanced, weight-aware accuracy: each held-out sample
// contributes its confidence weight cᵢ (so samples the CFG guidance marked
// as probably mislabeled barely influence model selection), and the two
// classes' weighted accuracies are averaged (so an imbalanced training set
// cannot make a degenerate single-class model look good). The per-sample
// weights also follow their samples into the training folds.
func CrossValidate(prob Problem, params Params, folds int, seed int64) (float64, error) {
	return crossValidateShared(prob, params, folds, seed, nil)
}

// crossValidateShared is CrossValidate with an optional shared raw-row
// cache over prob.X's samples (see RowCache): the training folds of one
// problem overlap pairwise in all but 2/k of the kernel matrix, and a
// grid sweep revisits the same rows for every λ, so fold solvers gather
// their Q rows from the cache instead of re-evaluating the kernel. The
// score is byte-identical to the self-contained path.
func crossValidateShared(prob Problem, params Params, folds int, seed int64, shared *RowCache) (float64, error) {
	if err := prob.Validate(); err != nil {
		return 0, err
	}
	n := len(prob.X)
	if folds < 2 {
		return 0, fmt.Errorf("svm: folds %d must be at least 2", folds)
	}
	if folds > n {
		folds = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)

	var posCorrect, posTotal, negCorrect, negTotal float64
	var tested int
	for f := 0; f < folds; f++ {
		var train Problem
		var testIdx, gidx []int
		for idx, p := range perm {
			if idx%folds == f {
				testIdx = append(testIdx, p)
				continue
			}
			train.X = append(train.X, prob.X[p])
			train.Y = append(train.Y, prob.Y[p])
			if prob.Weight != nil {
				train.Weight = append(train.Weight, prob.Weight[p])
			}
			if shared != nil {
				gidx = append(gidx, p)
			}
		}
		model, err := trainShared(train, params, shared, gidx)
		if err != nil {
			// A fold can lose one class entirely; skip it rather than
			// fail the whole estimate.
			if len(testIdx) > 0 && isSingleClass(train.Y) {
				continue
			}
			return 0, fmt.Errorf("svm: fold %d: %w", f, err)
		}
		for _, p := range testIdx {
			w := 1.0
			if prob.Weight != nil {
				w = prob.Weight[p]
			}
			hit := 0.0
			if model.Predict(prob.X[p]) == prob.Y[p] {
				hit = w
			}
			if prob.Y[p] > 0 {
				posCorrect += hit
				posTotal += w
			} else {
				negCorrect += hit
				negTotal += w
			}
			tested++
		}
	}
	if tested == 0 {
		return 0, errors.New("svm: no testable folds")
	}
	switch {
	case posTotal == 0 && negTotal == 0:
		return 0, errors.New("svm: all held-out weight is zero")
	case posTotal == 0:
		return negCorrect / negTotal, nil
	case negTotal == 0:
		return posCorrect / posTotal, nil
	}
	return (posCorrect/posTotal + negCorrect/negTotal) / 2, nil
}

func isSingleClass(y []float64) bool {
	var pos, neg bool
	for _, v := range y {
		if v > 0 {
			pos = true
		} else {
			neg = true
		}
	}
	return !(pos && neg)
}

// GridSpec is the search space for model selection. The paper tunes λ and
// σ² by 10-fold cross-validation on the training set.
type GridSpec struct {
	Lambdas []float64
	Sigma2s []float64
	Folds   int
	Seed    int64
	// Parallel bounds how many grid points are cross-validated
	// concurrently: 1 (or negative) is fully sequential, 0 uses every
	// processor. Each grid point derives its fold shuffle from Seed alone,
	// so the selected parameters are identical for any Parallel value.
	Parallel int
}

// DefaultGrid returns the grid used by the evaluation harness: a coarse
// logarithmic sweep, 5 folds.
func DefaultGrid() GridSpec {
	return GridSpec{
		Lambdas: []float64{0.5, 2, 8, 32},
		Sigma2s: []float64{0.25, 1, 4, 16},
		Folds:   5,
	}
}

// GridSearch selects the (λ, σ²) pair with the best cross-validated
// accuracy on the problem, breaking ties toward the earlier grid entry.
// It returns the chosen parameters and the best accuracy. Grid points are
// evaluated on up to GridSpec.Parallel workers; because CrossValidate
// seeds its own fold shuffle and the results are reduced in grid order,
// the outcome is byte-identical to the sequential sweep.
func GridSearch(prob Problem, grid GridSpec) (Params, float64, error) {
	if len(grid.Lambdas) == 0 || len(grid.Sigma2s) == 0 {
		return Params{}, 0, errors.New("svm: empty grid")
	}
	folds := grid.Folds
	if folds == 0 {
		folds = 10
	}

	type point struct {
		params Params
		cache  *RowCache
		acc    float64
		err    error
	}
	// One shared raw-row cache per σ²: the kernel matrix depends only on
	// the kernel, so the entire λ axis of the sweep and every
	// cross-validation fold inside it gather from the same rows. The
	// cache is mutex-striped, so concurrent grid-point workers hitting
	// the same σ² are safe.
	caches := make(map[float64]*RowCache, len(grid.Sigma2s))
	for _, s2 := range grid.Sigma2s {
		caches[s2] = NewRowCache(prob.X, RBFKernel{Sigma2: s2})
	}
	points := make([]point, 0, len(grid.Lambdas)*len(grid.Sigma2s))
	for _, l := range grid.Lambdas {
		for _, s2 := range grid.Sigma2s {
			points = append(points, point{params: Params{Lambda: l, Kernel: RBFKernel{Sigma2: s2}}, cache: caches[s2]})
		}
	}

	workers := grid.Parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i := range points {
			points[i].acc, points[i].err = crossValidateShared(prob, points[i].params, folds, grid.Seed, points[i].cache)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range points {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				points[i].acc, points[i].err = crossValidateShared(prob, points[i].params, folds, grid.Seed, points[i].cache)
			}(i)
		}
		wg.Wait()
	}

	// Reduce in grid order: the first error wins, ties break toward the
	// earlier entry — exactly the sequential semantics.
	var best Params
	bestAcc := -1.0
	for _, pt := range points {
		if pt.err != nil {
			rbf := pt.params.Kernel.(RBFKernel)
			return Params{}, 0, fmt.Errorf("svm: grid point (λ=%g, σ²=%g): %w", pt.params.Lambda, rbf.Sigma2, pt.err)
		}
		if pt.acc > bestAcc {
			best, bestAcc = pt.params, pt.acc
		}
	}
	return best, bestAcc, nil
}
