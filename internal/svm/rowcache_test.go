package svm

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSharedCrossValidateMatchesUncached pins the shared-cache fold
// solvers to the self-contained path: identical accuracy, bit for bit,
// for every kernel of the default grid.
func TestSharedCrossValidateMatchesUncached(t *testing.T) {
	prob := noisyProblem(rand.New(rand.NewSource(17)), 40)
	for _, s2 := range DefaultGrid().Sigma2s {
		params := Params{Lambda: 2, Kernel: RBFKernel{Sigma2: s2}}
		want, err := CrossValidate(prob, params, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := crossValidateShared(prob, params, 5, 7, NewRowCache(prob.X, params.Kernel))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("σ²=%g: shared %v != uncached %v", s2, got, want)
		}
	}
}

// TestGridSearchMatchesUncachedSweep reduces the grid by brute force
// over the uncached CrossValidate and requires GridSearch (which shares
// a row cache per σ² across the λ axis and folds) to select the same
// point at the same accuracy.
func TestGridSearchMatchesUncachedSweep(t *testing.T) {
	prob := noisyProblem(rand.New(rand.NewSource(23)), 35)
	grid := DefaultGrid()
	grid.Seed = 99
	grid.Parallel = 1

	var wantBest Params
	wantAcc := -1.0
	for _, l := range grid.Lambdas {
		for _, s2 := range grid.Sigma2s {
			p := Params{Lambda: l, Kernel: RBFKernel{Sigma2: s2}}
			acc, err := CrossValidate(prob, p, grid.Folds, grid.Seed)
			if err != nil {
				t.Fatal(err)
			}
			if acc > wantAcc {
				wantBest, wantAcc = p, acc
			}
		}
	}
	best, acc, err := GridSearch(prob, grid)
	if err != nil {
		t.Fatal(err)
	}
	if best != wantBest || acc != wantAcc {
		t.Errorf("GridSearch selected (%+v, %v), uncached sweep selected (%+v, %v)",
			best, acc, wantBest, wantAcc)
	}
}

// TestRowCacheConcurrent hammers one cache from many goroutines (run
// under -race by make race) and checks every caller sees the canonical
// row: same backing array, same values as a direct kernel evaluation.
func TestRowCacheConcurrent(t *testing.T) {
	prob := noisyProblem(rand.New(rand.NewSource(31)), 64)
	kernel := RBFKernel{Sigma2: 4}
	cache := NewRowCache(prob.X, kernel)

	const workers = 8
	rows := make([][][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows[w] = make([][]float64, cache.Len())
			for pass := 0; pass < 3; pass++ {
				for i := 0; i < cache.Len(); i++ {
					rows[w][(i+w)%cache.Len()] = cache.Row((i + w) % cache.Len())
				}
			}
		}(w)
	}
	wg.Wait()

	for i := 0; i < cache.Len(); i++ {
		canon := rows[0][i]
		for w := 1; w < workers; w++ {
			if &rows[w][i][0] != &canon[0] {
				t.Fatalf("row %d: worker %d got a non-canonical backing array", i, w)
			}
		}
		for j := range canon {
			if want := kernel.Compute(prob.X[i], prob.X[j]); canon[j] != want {
				t.Fatalf("row %d[%d] = %v, want %v", i, j, canon[j], want)
			}
		}
	}
}

// TestDecisionBatchMatchesDecision checks the buffered scorers against
// their scalar counterparts, including buffer reuse.
func TestDecisionBatchMatchesDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	prob := noisyProblem(rng, 30)
	model, err := Train(prob, Params{Lambda: 2, Kernel: RBFKernel{Sigma2: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dst := model.DecisionBatch(nil, prob.X)
	dst2 := model.DecisionBatch(dst[:0], prob.X)
	if &dst2[0] != &dst[0] {
		t.Fatal("DecisionBatch reallocated despite sufficient capacity")
	}
	for i, x := range prob.X {
		if want := model.Decision(x); dst2[i] != want {
			t.Fatalf("decision %d: batch %v != scalar %v", i, dst2[i], want)
		}
	}

	oc, err := TrainOneClass(prob.X, OneClassParams{Nu: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ocDst := oc.DecisionBatch(nil, prob.X)
	for i, x := range prob.X {
		if want := oc.Decision(x); ocDst[i] != want {
			t.Fatalf("one-class decision %d: batch %v != scalar %v", i, ocDst[i], want)
		}
	}
}

// TestApplyIntoMatchesApply checks the scratch scaler against Apply.
func TestApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	prob := noisyProblem(rng, 25)
	sc, err := FitScaler(prob.X)
	if err != nil {
		t.Fatal(err)
	}
	var buf []float64
	for i, v := range prob.X {
		want := sc.Apply(v)
		buf = sc.ApplyInto(buf[:0], v)
		if len(buf) != len(want) {
			t.Fatalf("vector %d: ApplyInto returned %d dims, want %d", i, len(buf), len(want))
		}
		for d := range want {
			if buf[d] != want[d] {
				t.Fatalf("vector %d dim %d: %v != %v", i, d, buf[d], want[d])
			}
		}
	}
}
