package svm

import (
	"math/rand"
	"testing"
)

// noisyProblem builds a two-class problem with enough label noise that
// different (λ, σ²) grid points genuinely score differently.
func noisyProblem(rng *rand.Rand, n int) Problem {
	p := separableProblem(rng, n)
	for i := 0; i < len(p.Y); i += 7 {
		p.Y[i] = -p.Y[i]
	}
	return p
}

// TestGridSearchParallelDeterminism asserts the refactor's contract: the
// parallel grid sweep selects byte-identical parameters and accuracy for
// any worker count, because every grid point derives its fold shuffle
// from GridSpec.Seed alone and results reduce in grid order.
func TestGridSearchParallelDeterminism(t *testing.T) {
	prob := noisyProblem(rand.New(rand.NewSource(11)), 30)
	grid := DefaultGrid()
	grid.Seed = 42

	grid.Parallel = 1
	serialBest, serialAcc, err := GridSearch(prob, grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		grid.Parallel = workers
		best, acc, err := GridSearch(prob, grid)
		if err != nil {
			t.Fatalf("Parallel=%d: %v", workers, err)
		}
		if best != serialBest || acc != serialAcc {
			t.Errorf("Parallel=%d selected (%+v, %v), serial selected (%+v, %v)",
				workers, best, acc, serialBest, serialAcc)
		}
	}
}

// TestGridSearchParallelError: a failing grid point must surface the same
// (first-in-grid-order) error regardless of worker count.
func TestGridSearchParallelError(t *testing.T) {
	prob := separableProblem(rand.New(rand.NewSource(12)), 10)
	grid := GridSpec{Lambdas: []float64{-1, 2}, Sigma2s: []float64{1}, Folds: 2}
	grid.Parallel = 1
	_, _, serialErr := GridSearch(prob, grid)
	if serialErr == nil {
		t.Fatal("invalid λ accepted")
	}
	grid.Parallel = 4
	_, _, parallelErr := GridSearch(prob, grid)
	if parallelErr == nil || parallelErr.Error() != serialErr.Error() {
		t.Errorf("parallel error %q, serial error %q", parallelErr, serialErr)
	}
}
