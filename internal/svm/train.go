package svm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// Solver telemetry: kernel work (the dominant training cost), cache
// effectiveness and SMO convergence behaviour across training runs.
var (
	mKernelEvals = telemetry.NewCounter("svm_kernel_evals_total", "kernel function evaluations")
	mCacheHits   = telemetry.NewCounter("svm_kernel_cache_hits_total", "kernel cache row hits")
	mCacheMisses = telemetry.NewCounter("svm_kernel_cache_misses_total", "kernel cache row misses (rows computed on demand)")
	mTrainRuns   = telemetry.NewCounter("svm_train_runs_total", "SMO training runs")
	mIterHist    = telemetry.NewHistogram("svm_smo_iterations", "SMO iterations per training run", telemetry.CountBuckets())
	mLastIters   = telemetry.NewGauge("svm_last_iterations", "SMO iterations of the most recent training run")
	mLastObj     = telemetry.NewGauge("svm_last_objective", "final dual objective of the most recent training run")
	mLastSVs     = telemetry.NewGauge("svm_last_support_vectors", "support vectors in the most recent model")
	mCappedRuns  = telemetry.NewCounter("svm_iteration_capped_runs_total", "training runs that hit MaxIter before converging")
)

// trajectoryEvery is the SMO iteration interval between objective
// trajectory samples; the trajectory stays small even on capped runs.
const trajectoryEvery = 64

// Problem is a binary classification training set.
type Problem struct {
	// X are the feature vectors; all must share one dimensionality.
	X [][]float64
	// Y are the labels, +1 (benign) or -1 (malicious/mixed).
	Y []float64
	// Weight holds the per-sample confidence cᵢ ∈ [0,1]; nil means every
	// sample has full weight 1. A sample's box constraint is λ·cᵢ, so
	// weight 0 removes the sample's influence entirely.
	Weight []float64
}

// Validate checks the problem's structural invariants.
func (p *Problem) Validate() error {
	if len(p.X) == 0 {
		return errors.New("svm: empty training set")
	}
	if len(p.Y) != len(p.X) {
		return fmt.Errorf("svm: %d labels for %d samples", len(p.Y), len(p.X))
	}
	if p.Weight != nil && len(p.Weight) != len(p.X) {
		return fmt.Errorf("svm: %d weights for %d samples", len(p.Weight), len(p.X))
	}
	dim := len(p.X[0])
	var pos, neg bool
	for i := range p.X {
		if len(p.X[i]) != dim {
			return fmt.Errorf("svm: sample %d has dimension %d, want %d", i, len(p.X[i]), dim)
		}
		switch p.Y[i] {
		case 1:
			pos = true
		case -1:
			neg = true
		default:
			return fmt.Errorf("svm: label %v of sample %d not in {-1,+1}", p.Y[i], i)
		}
		if p.Weight != nil {
			if w := p.Weight[i]; w < 0 || w > 1 || math.IsNaN(w) {
				return fmt.Errorf("svm: weight %v of sample %d out of [0,1]", w, i)
			}
		}
	}
	if !pos || !neg {
		return errors.New("svm: training set needs both classes")
	}
	return nil
}

// Params configures training.
type Params struct {
	// Lambda is the trade-off parameter λ (the C of C-SVM).
	Lambda float64
	// Kernel defaults to RBFKernel{Sigma2: 1}.
	Kernel Kernel
	// Tol is the KKT violation tolerance terminating SMO (default 1e-3).
	Tol float64
	// MaxIter bounds SMO iterations (default 100·n, at least 10000).
	MaxIter int
	// SecondOrderWSS enables LIBSVM's second-order working-set selection
	// (WSS2): the first index maximises the KKT violation, the second
	// minimises the quadratic gain estimate. Converges in fewer
	// iterations on ill-conditioned problems; the default (false) is the
	// classic maximal-violating-pair rule.
	SecondOrderWSS bool
}

func (p Params) withDefaults(n int) Params {
	if p.Kernel == nil {
		p.Kernel = RBFKernel{Sigma2: 1}
	}
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 100 * n
		if p.MaxIter < 10000 {
			p.MaxIter = 10000
		}
	}
	return p
}

// Model is a trained classifier: the support vectors and their dual
// coefficients.
type Model struct {
	kernel Kernel
	svX    [][]float64
	// svCoef holds αᵢ·yᵢ for each support vector.
	svCoef []float64
	bias   float64
	// Iters reports how many SMO iterations training took.
	Iters int
	// BoundedSVs counts support vectors at their upper bound.
	BoundedSVs int
	// Objective is the final dual objective value ½αᵀQα − Σαᵢ.
	Objective float64
	// Trajectory samples the dual objective every trajectoryEvery SMO
	// iterations (plus the final value), recording convergence behaviour.
	// It is diagnostic only and not persisted with the model.
	Trajectory []float64
}

// NumSVs returns the number of support vectors.
func (m *Model) NumSVs() int { return len(m.svX) }

// Bias returns the intercept b of the decision function.
func (m *Model) Bias() float64 { return m.bias }

// Decision returns the raw decision value Σ αᵢyᵢk(xᵢ,x) + b; positive
// means benign, negative malicious (Eqn. 5).
func (m *Model) Decision(x []float64) float64 {
	s := m.bias
	for i, sv := range m.svX {
		s += m.svCoef[i] * m.kernel.Compute(sv, x)
	}
	return s
}

// Predict returns the predicted label of x: +1 (benign) or -1 (malicious).
func (m *Model) Predict(x []float64) float64 {
	if m.Decision(x) < 0 {
		return -1
	}
	return 1
}

// DecisionBatch appends the decision value of every vector of xs to dst
// (pass dst[:0] to recycle a buffer), so batch scorers keep one
// preallocated result buffer instead of boxing values per window.
func (m *Model) DecisionBatch(dst []float64, xs [][]float64) []float64 {
	for _, x := range xs {
		dst = append(dst, m.Decision(x))
	}
	return dst
}

// Train solves the weighted SVM dual with SMO.
func Train(prob Problem, params Params) (*Model, error) {
	return trainShared(prob, params, nil, nil)
}

// trainShared is Train optionally gathering its Q rows from a shared
// raw-row cache: gidx maps the problem's sample indices to the cache's.
// Results are byte-identical to the self-contained path — the gathered
// products yᵢ·yⱼ·k(xᵢ,xⱼ) are the exact expressions computeRow
// evaluates.
func trainShared(prob Problem, params Params, shared *RowCache, gidx []int) (*Model, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if params.Lambda <= 0 {
		return nil, fmt.Errorf("svm: Lambda %v must be positive", params.Lambda)
	}
	n := len(prob.X)
	params = params.withDefaults(n)

	// Per-sample box bounds λ·cᵢ.
	c := make([]float64, n)
	for i := range c {
		c[i] = params.Lambda
		if prob.Weight != nil {
			c[i] = params.Lambda * prob.Weight[i]
		}
	}

	s := newSolverShared(prob.X, prob.Y, c, params, shared, gidx)
	s.solve()

	m := &Model{
		kernel: params.Kernel, bias: s.bias(), Iters: s.iters,
		Objective: s.objective(), Trajectory: s.trajectory,
	}
	for i := 0; i < n; i++ {
		if s.alpha[i] > 0 {
			m.svX = append(m.svX, prob.X[i])
			m.svCoef = append(m.svCoef, s.alpha[i]*prob.Y[i])
			if s.alpha[i] >= c[i]-1e-12 {
				m.BoundedSVs++
			}
		}
	}
	mTrainRuns.Inc()
	mIterHist.Observe(float64(s.iters))
	mLastIters.Set(float64(s.iters))
	mLastObj.Set(m.Objective)
	mLastSVs.Set(float64(m.NumSVs()))
	if s.iters >= params.MaxIter {
		mCappedRuns.Inc()
	}
	return m, nil
}

// solver carries SMO state for one training run.
type solver struct {
	x      [][]float64
	y      []float64
	c      []float64
	params Params
	alpha  []float64
	grad   []float64 // gradient of the dual objective: (Qα)ᵢ - 1
	q      *kernelCache
	iters  int
	// trajectory samples the dual objective during solve.
	trajectory []float64
	// rho is the decision bias determined at convergence.
	rho float64
}

func newSolver(x [][]float64, y, c []float64, params Params) *solver {
	return newSolverShared(x, y, c, params, nil, nil)
}

func newSolverShared(x [][]float64, y, c []float64, params Params, shared *RowCache, gidx []int) *solver {
	n := len(x)
	s := &solver{
		x: x, y: y, c: c, params: params,
		alpha: make([]float64, n),
		grad:  make([]float64, n),
		q:     newKernelCache(x, y, params.Kernel, shared, gidx),
	}
	for i := range s.grad {
		s.grad[i] = -1
	}
	return s
}

// selectWorkingSet returns the working-set pair (i, j), or ok=false when
// the KKT conditions hold within tolerance. The first index always
// maximises the violation; the second is either the minimal-violation
// index (WSS1) or the second-order gain minimiser (WSS2).
func (s *solver) selectWorkingSet() (i, j int, ok bool) {
	// I_up:  α_t < C_t with y=+1, or α_t > 0 with y=-1
	// I_low: α_t < C_t with y=-1, or α_t > 0 with y=+1
	// violation = max_{I_up}(-y·g) - min_{I_low}(-y·g)
	gmax, gmin := math.Inf(-1), math.Inf(1)
	i, j = -1, -1
	for t := range s.alpha {
		yg := -s.y[t] * s.grad[t]
		inUp := (s.y[t] > 0 && s.alpha[t] < s.c[t]) || (s.y[t] < 0 && s.alpha[t] > 0)
		inLow := (s.y[t] < 0 && s.alpha[t] < s.c[t]) || (s.y[t] > 0 && s.alpha[t] > 0)
		if inUp && yg > gmax {
			gmax, i = yg, t
		}
		if inLow && yg < gmin {
			gmin, j = yg, t
		}
	}
	if i < 0 || j < 0 || gmax-gmin < s.params.Tol {
		return -1, -1, false
	}
	if s.params.SecondOrderWSS {
		if j2 := s.selectSecondOrder(i, gmax); j2 >= 0 {
			j = j2
		}
	}
	return i, j, true
}

// selectSecondOrder picks the second working index by maximising the
// estimated objective decrease -b²/a against the fixed first index
// (LIBSVM's WSS2).
func (s *solver) selectSecondOrder(i int, gmax float64) int {
	qi := s.q.row(i)
	kii := s.y[i] * s.y[i] * qi[i] // = K_ii
	best, bestJ := math.Inf(1), -1
	for t := range s.alpha {
		inLow := (s.y[t] < 0 && s.alpha[t] < s.c[t]) || (s.y[t] > 0 && s.alpha[t] > 0)
		if !inLow {
			continue
		}
		yg := -s.y[t] * s.grad[t]
		b := gmax - yg
		if b <= 0 {
			continue
		}
		ktt := s.q.row(t)[t]
		kit := s.y[i] * s.y[t] * qi[t] // strip label signs: K_it
		a := kii + ktt - 2*kit
		if a <= 0 {
			a = 1e-12
		}
		if gain := -(b * b) / a; gain < best {
			best, bestJ = gain, t
		}
	}
	return bestJ
}

// solve runs SMO to convergence or iteration cap.
func (s *solver) solve() {
	for s.iters = 0; s.iters < s.params.MaxIter; s.iters++ {
		i, j, ok := s.selectWorkingSet()
		if !ok {
			break
		}
		s.update(i, j)
		if s.iters%trajectoryEvery == 0 {
			s.trajectory = append(s.trajectory, s.objective())
		}
	}
	s.trajectory = append(s.trajectory, s.objective())
	s.rho = s.computeBias()
}

// objective returns the dual objective ½αᵀQα − Σαᵢ. With grad = Qα − 1
// this is ½Σαᵢ(gradᵢ − 1), an O(n) read of existing solver state.
func (s *solver) objective() float64 {
	var obj float64
	for t := range s.alpha {
		obj += s.alpha[t] * (s.grad[t] - 1)
	}
	return obj / 2
}

// update optimises the pair (αᵢ, αⱼ) analytically subject to the box and
// equality constraints, then refreshes the gradient.
func (s *solver) update(i, j int) {
	qi := s.q.row(i)
	qj := s.q.row(j)
	oldAi, oldAj := s.alpha[i], s.alpha[j]
	const minQuad = 1e-12

	// The curvature along the feasible direction is K_ii + K_jj - 2K_ij in
	// both label configurations.
	quad := qi[i] + qj[j] - 2*s.q.k(i, j)
	if quad < minQuad {
		quad = minQuad
	}

	if s.y[i] != s.y[j] {
		delta := (-s.grad[i] - s.grad[j]) / quad
		diff := s.alpha[i] - s.alpha[j]
		s.alpha[i] += delta
		s.alpha[j] += delta
		if diff > 0 {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = diff
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = -diff
			}
		}
		if diff > s.c[i]-s.c[j] {
			if s.alpha[i] > s.c[i] {
				s.alpha[i] = s.c[i]
				s.alpha[j] = s.c[i] - diff
			}
		} else {
			if s.alpha[j] > s.c[j] {
				s.alpha[j] = s.c[j]
				s.alpha[i] = s.c[j] + diff
			}
		}
	} else {
		delta := (s.grad[i] - s.grad[j]) / quad
		sum := s.alpha[i] + s.alpha[j]
		s.alpha[i] -= delta
		s.alpha[j] += delta
		if sum > s.c[i] {
			if s.alpha[i] > s.c[i] {
				s.alpha[i] = s.c[i]
				s.alpha[j] = sum - s.c[i]
			}
		} else {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = sum
			}
		}
		if sum > s.c[j] {
			if s.alpha[j] > s.c[j] {
				s.alpha[j] = s.c[j]
				s.alpha[i] = sum - s.c[j]
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = sum
			}
		}
	}

	dAi, dAj := s.alpha[i]-oldAi, s.alpha[j]-oldAj
	if dAi == 0 && dAj == 0 {
		return
	}
	for t := range s.grad {
		s.grad[t] += qi[t]*dAi + qj[t]*dAj
	}
}

// computeBias derives the intercept from the KKT conditions: for free
// support vectors b = -yᵗ·gᵗ; otherwise the midpoint of the feasible
// interval.
func (s *solver) computeBias() float64 {
	var sum float64
	var free int
	ub, lb := math.Inf(1), math.Inf(-1)
	for t := range s.alpha {
		if s.c[t] <= 1e-12 {
			// Zero-weight samples impose no KKT condition on b.
			continue
		}
		yg := -s.y[t] * s.grad[t]
		switch {
		case s.alpha[t] > 1e-12 && s.alpha[t] < s.c[t]-1e-12:
			sum += yg
			free++
		default:
			// KKT: samples at α=0 with y=+1 (and at the bound with y=-1)
			// force b ≥ yg; the mirror set forces b ≤ yg.
			lower := (s.y[t] > 0 && s.alpha[t] <= 1e-12) || (s.y[t] < 0 && s.alpha[t] >= s.c[t]-1e-12)
			if lower {
				if yg > lb {
					lb = yg
				}
			} else {
				if yg < ub {
					ub = yg
				}
			}
		}
	}
	if free > 0 {
		return sum / float64(free)
	}
	if math.IsInf(ub, 1) && math.IsInf(lb, -1) {
		return 0
	}
	if math.IsInf(ub, 1) {
		return lb
	}
	if math.IsInf(lb, -1) {
		return ub
	}
	return (ub + lb) / 2
}

func (s *solver) bias() float64 { return s.rho }

// kernelCache precomputes or lazily caches rows of Q, Q[i][j] =
// yᵢyⱼk(xᵢ,xⱼ). With a shared RowCache attached, rows are gathered
// from its raw kernel rows instead of re-evaluating the kernel, so
// solvers over overlapping sample sets (cross-validation folds, the
// λ axis of a grid sweep) each pay only the cheap label-sign products.
type kernelCache struct {
	x      [][]float64
	y      []float64
	kernel Kernel
	rows   [][]float64
	// full indicates the whole matrix was precomputed.
	full bool
	// shared, when non-nil, is the raw-row source; gidx maps local
	// sample index to shared cache index.
	shared *RowCache
	gidx   []int
}

// fullMatrixLimit is the sample count up to which the entire Q matrix is
// precomputed (n² float64; 4000² ≈ 128 MB is the ceiling).
const fullMatrixLimit = 4000

func newKernelCache(x [][]float64, y []float64, k Kernel, shared *RowCache, gidx []int) *kernelCache {
	c := &kernelCache{x: x, y: y, kernel: k, rows: make([][]float64, len(x)), shared: shared, gidx: gidx}
	if len(x) <= fullMatrixLimit {
		c.full = true
		for i := range x {
			c.rows[i] = c.computeRow(i)
		}
	}
	return c
}

func (c *kernelCache) computeRow(i int) []float64 {
	row := make([]float64, len(c.x))
	if c.shared != nil {
		kr := c.shared.Row(c.gidx[i])
		for j := range c.x {
			row[j] = c.y[i] * c.y[j] * kr[c.gidx[j]]
		}
		return row
	}
	for j := range c.x {
		row[j] = c.y[i] * c.y[j] * c.kernel.Compute(c.x[i], c.x[j])
	}
	mKernelEvals.Add(uint64(len(row)))
	return row
}

// row returns Q's row i, computing and caching it on demand.
func (c *kernelCache) row(i int) []float64 {
	if c.rows[i] == nil {
		mCacheMisses.Inc()
		c.rows[i] = c.computeRow(i)
		return c.rows[i]
	}
	mCacheHits.Inc()
	return c.rows[i]
}

// k returns the raw kernel value k(xᵢ,xⱼ) (without label signs).
func (c *kernelCache) k(i, j int) float64 {
	return c.y[i] * c.y[j] * c.row(i)[j]
}
