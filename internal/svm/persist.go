package svm

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Serialisation snapshots. Kernels are encoded structurally (kind +
// parameters) so models round-trip without registering interface types.

type kernelSnapshot struct {
	Kind   string
	Sigma2 float64
	Degree int
	Gamma  float64
	Coef0  float64
}

func snapshotKernel(k Kernel) (kernelSnapshot, error) {
	switch kk := k.(type) {
	case LinearKernel:
		return kernelSnapshot{Kind: "linear"}, nil
	case RBFKernel:
		return kernelSnapshot{Kind: "rbf", Sigma2: kk.Sigma2}, nil
	case PolyKernel:
		return kernelSnapshot{Kind: "poly", Degree: kk.Degree, Gamma: kk.Gamma, Coef0: kk.Coef0}, nil
	default:
		return kernelSnapshot{}, fmt.Errorf("svm: kernel %T is not serialisable", k)
	}
}

func (s kernelSnapshot) kernel() (Kernel, error) {
	switch s.Kind {
	case "linear":
		return LinearKernel{}, nil
	case "rbf":
		return RBFKernel{Sigma2: s.Sigma2}, nil
	case "poly":
		return PolyKernel{Degree: s.Degree, Gamma: s.Gamma, Coef0: s.Coef0}, nil
	default:
		return nil, fmt.Errorf("svm: unknown kernel kind %q", s.Kind)
	}
}

type modelSnapshot struct {
	Kernel     kernelSnapshot
	SVX        [][]float64
	SVCoef     []float64
	Bias       float64
	Iters      int
	BoundedSVs int
}

// MarshalBinary encodes the model for persistence.
func (m *Model) MarshalBinary() ([]byte, error) {
	ks, err := snapshotKernel(m.kernel)
	if err != nil {
		return nil, err
	}
	snap := modelSnapshot{
		Kernel:     ks,
		SVX:        m.svX,
		SVCoef:     m.svCoef,
		Bias:       m.bias,
		Iters:      m.Iters,
		BoundedSVs: m.BoundedSVs,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("svm: encoding model: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a model produced by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap modelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("svm: decoding model: %w", err)
	}
	k, err := snap.Kernel.kernel()
	if err != nil {
		return err
	}
	if len(snap.SVX) != len(snap.SVCoef) {
		return fmt.Errorf("svm: model has %d support vectors but %d coefficients",
			len(snap.SVX), len(snap.SVCoef))
	}
	m.kernel = k
	m.svX = snap.SVX
	m.svCoef = snap.SVCoef
	m.bias = snap.Bias
	m.Iters = snap.Iters
	m.BoundedSVs = snap.BoundedSVs
	return nil
}

type scalerSnapshot struct {
	Min, Max []float64
}

// MarshalBinary encodes the scaler for persistence.
func (s *Scaler) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(scalerSnapshot{Min: s.min, Max: s.max}); err != nil {
		return nil, fmt.Errorf("svm: encoding scaler: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a scaler produced by MarshalBinary.
func (s *Scaler) UnmarshalBinary(data []byte) error {
	var snap scalerSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("svm: decoding scaler: %w", err)
	}
	if len(snap.Min) != len(snap.Max) {
		return fmt.Errorf("svm: scaler min/max lengths differ: %d vs %d", len(snap.Min), len(snap.Max))
	}
	s.min, s.max = snap.Min, snap.Max
	return nil
}
