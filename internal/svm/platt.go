package svm

import (
	"errors"
	"fmt"
	"math"
)

// PlattScaler maps raw SVM decision values to calibrated probabilities
// P(y=+1 | x) = 1 / (1 + exp(A·f(x) + B)), fitted by regularised maximum
// likelihood on held-out or training decision values (Platt 1999, with the
// Lin-Weng-Keerthi target smoothing LIBSVM uses).
type PlattScaler struct {
	A, B float64
}

// FitPlatt fits the sigmoid on decision values and their true labels
// (+1/-1) with Newton iterations on the regularised log-loss.
func FitPlatt(decisions []float64, labels []float64) (*PlattScaler, error) {
	n := len(decisions)
	if n == 0 || n != len(labels) {
		return nil, fmt.Errorf("svm: %d decisions for %d labels", n, len(labels))
	}
	var nPos, nNeg float64
	for _, y := range labels {
		switch y {
		case 1:
			nPos++
		case -1:
			nNeg++
		default:
			return nil, fmt.Errorf("svm: label %v not in {-1,+1}", y)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, errors.New("svm: Platt fitting needs both classes")
	}
	// Smoothed targets avoid infinite weights at probability 0/1.
	hiTarget := (nPos + 1) / (nPos + 2)
	loTarget := 1 / (nNeg + 2)
	t := make([]float64, n)
	for i, y := range labels {
		if y > 0 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	a, b := 0.0, math.Log((nNeg+1)/(nPos+1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
		eps     = 1e-5
	)
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := decisions[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		// Gradient and Hessian.
		h11, h22, h21, g1, g2 := sigma, sigma, 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			fApB := decisions[i]*a + b
			var p, q float64
			if fApB >= 0 {
				p = math.Exp(-fApB) / (1 + math.Exp(-fApB))
				q = 1 / (1 + math.Exp(-fApB))
			} else {
				p = 1 / (1 + math.Exp(fApB))
				q = math.Exp(fApB) / (1 + math.Exp(fApB))
			}
			d2 := p * q
			h11 += decisions[i] * decisions[i] * d2
			h22 += d2
			h21 += decisions[i] * d2
			d1 := t[i] - p
			g1 += decisions[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		// Newton direction.
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		// Backtracking line search.
		step := 1.0
		for step >= minStep {
			newA, newB := a+step*dA, b+step*dB
			newF := 0.0
			for i := 0; i < n; i++ {
				fApB := decisions[i]*newA + newB
				if fApB >= 0 {
					newF += t[i]*fApB + math.Log1p(math.Exp(-fApB))
				} else {
					newF += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
				}
			}
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return &PlattScaler{A: a, B: b}, nil
}

// Probability maps a decision value to P(benign | x).
func (p *PlattScaler) Probability(decision float64) float64 {
	fApB := decision*p.A + p.B
	if fApB >= 0 {
		return math.Exp(-fApB) / (1 + math.Exp(-fApB))
	}
	return 1 / (1 + math.Exp(fApB))
}
