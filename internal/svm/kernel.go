// Package svm implements the paper's Supervised Statistical Learning
// Module: a from-scratch Weighted Support Vector Machine.
//
// The optimisation problem is the weighted C-SVM dual of Eqn. (4):
//
//	min_α  -Σᵢ αᵢ + ½ ΣᵢΣⱼ αᵢαⱼyᵢyⱼk(xᵢ,xⱼ)
//	s.t.   0 ≤ αᵢ ≤ λ·cᵢ,   Σᵢ αᵢyᵢ = 0
//
// which differs from the ordinary C-SVM dual only in the per-sample upper
// bound λ·cᵢ, where cᵢ ∈ [0,1] is the confidence weight assigned to sample
// i (1 for benign training data; CFG-derived for mixed training data). It
// is solved with sequential minimal optimisation (SMO) using
// maximal-violating-pair working-set selection — the algorithm family
// LIBSVM, which the paper builds on, uses.
package svm

import (
	"fmt"
	"math"
)

// Kernel computes inner products in feature space.
type Kernel interface {
	// Compute returns k(a, b). Implementations may assume len(a)==len(b).
	Compute(a, b []float64) float64
	// String describes the kernel and its parameters.
	String() string
}

// LinearKernel is k(a,b) = a·b.
type LinearKernel struct{}

var _ Kernel = LinearKernel{}

// Compute returns the dot product of a and b.
func (LinearKernel) Compute(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// String returns the kernel description.
func (LinearKernel) String() string { return "linear" }

// RBFKernel is the paper's Gaussian kernel k(a,b) = exp(-‖a-b‖²/σ²).
type RBFKernel struct {
	// Sigma2 is the radius parameter σ².
	Sigma2 float64
}

var _ Kernel = RBFKernel{}

// Compute returns the Gaussian similarity of a and b.
func (k RBFKernel) Compute(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / k.Sigma2)
}

// String returns the kernel description.
func (k RBFKernel) String() string { return fmt.Sprintf("rbf(σ²=%g)", k.Sigma2) }

// PolyKernel is k(a,b) = (γ·a·b + coef0)^degree.
type PolyKernel struct {
	Degree int
	Gamma  float64
	Coef0  float64
}

var _ Kernel = PolyKernel{}

// Compute returns the polynomial similarity of a and b.
func (k PolyKernel) Compute(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return math.Pow(k.Gamma*s+k.Coef0, float64(k.Degree))
}

// String returns the kernel description.
func (k PolyKernel) String() string {
	return fmt.Sprintf("poly(d=%d,γ=%g,c0=%g)", k.Degree, k.Gamma, k.Coef0)
}
