package svm

import (
	"math/rand"
	"testing"
)

func TestModelMarshalRoundTrip(t *testing.T) {
	kernels := []Kernel{
		LinearKernel{},
		RBFKernel{Sigma2: 2},
		PolyKernel{Degree: 2, Gamma: 1, Coef0: 1},
	}
	rng := rand.New(rand.NewSource(11))
	prob := separableProblem(rng, 25)
	for _, k := range kernels {
		t.Run(k.String(), func(t *testing.T) {
			m, err := Train(prob, Params{Lambda: 5, Kernel: k})
			if err != nil {
				t.Fatal(err)
			}
			data, err := m.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			var got Model
			if err := got.UnmarshalBinary(data); err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			if got.NumSVs() != m.NumSVs() || got.Bias() != m.Bias() {
				t.Errorf("round trip changed SVs/bias: (%d,%v) vs (%d,%v)",
					got.NumSVs(), got.Bias(), m.NumSVs(), m.Bias())
			}
			probe := []float64{1.4, 1.6}
			if got.Decision(probe) != m.Decision(probe) {
				t.Error("round trip changed the decision function")
			}
		})
	}
}

func TestModelUnmarshalRejectsGarbage(t *testing.T) {
	var m Model
	if err := m.UnmarshalBinary([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
	if err := m.UnmarshalBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
}

// unsupportedKernel exercises the serialisation error path.
type unsupportedKernel struct{}

func (unsupportedKernel) Compute(a, b []float64) float64 { return 0 }
func (unsupportedKernel) String() string                 { return "unsupported" }

func TestModelMarshalUnsupportedKernel(t *testing.T) {
	m := &Model{kernel: unsupportedKernel{}}
	if _, err := m.MarshalBinary(); err == nil {
		t.Error("unsupported kernel marshalled")
	}
}

func TestScalerMarshalRoundTrip(t *testing.T) {
	s, err := FitScaler([][]float64{{0, 5}, {10, 15}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Scaler
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	in := []float64{5, 10}
	a, b := s.Apply(in), got.Apply(in)
	for d := range a {
		if a[d] != b[d] {
			t.Fatalf("round trip changed scaling: %v vs %v", a, b)
		}
	}
	if err := got.UnmarshalBinary([]byte("nope")); err == nil {
		t.Error("garbage scaler accepted")
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid()
	if len(g.Lambdas) == 0 || len(g.Sigma2s) == 0 || g.Folds < 2 {
		t.Errorf("DefaultGrid() = %+v", g)
	}
}

func TestCrossValidateSkipsSingleClassFold(t *testing.T) {
	// Tiny, extremely imbalanced problem: some folds lose the minority
	// class entirely; CrossValidate must skip them, not fail.
	prob := Problem{
		X: [][]float64{{0}, {0.1}, {0.2}, {0.3}, {0.4}, {5}},
		Y: []float64{1, 1, 1, 1, 1, -1},
	}
	if _, err := CrossValidate(prob, Params{Lambda: 1, Kernel: LinearKernel{}}, 3, 1); err != nil {
		t.Fatalf("CrossValidate on imbalanced problem: %v", err)
	}
}
