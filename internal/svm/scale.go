package svm

import (
	"errors"
	"fmt"
)

// Scaler linearly maps each feature column to [0, 1] using ranges learned
// from training data — LIBSVM's standard preprocessing, needed for the
// Gaussian kernel to weigh the dimensions comparably.
type Scaler struct {
	min []float64
	max []float64
}

// FitScaler learns per-column ranges from the given vectors.
func FitScaler(x [][]float64) (*Scaler, error) {
	if len(x) == 0 {
		return nil, errors.New("svm: no vectors to fit scaler on")
	}
	dim := len(x[0])
	s := &Scaler{min: make([]float64, dim), max: make([]float64, dim)}
	copy(s.min, x[0])
	copy(s.max, x[0])
	for _, v := range x[1:] {
		if len(v) != dim {
			return nil, fmt.Errorf("svm: vector of dimension %d, want %d", len(v), dim)
		}
		for d, f := range v {
			if f < s.min[d] {
				s.min[d] = f
			}
			if f > s.max[d] {
				s.max[d] = f
			}
		}
	}
	return s, nil
}

// Apply returns a scaled copy of v. Values outside the learned range are
// clamped to the range's projection behaviour (they simply fall outside
// [0,1], which is fine for kernels). Constant columns map to 0.
func (s *Scaler) Apply(v []float64) []float64 {
	out := make([]float64, len(v))
	for d := range v {
		span := s.max[d] - s.min[d]
		if span == 0 {
			out[d] = 0
			continue
		}
		out[d] = (v[d] - s.min[d]) / span
	}
	return out
}

// ApplyInto scales v into dst, reusing dst's capacity (pass dst[:0] to
// recycle a buffer); it returns the scaled vector. The hot-path
// counterpart of Apply.
func (s *Scaler) ApplyInto(dst, v []float64) []float64 {
	for d := range v {
		span := s.max[d] - s.min[d]
		if span == 0 {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, (v[d]-s.min[d])/span)
	}
	return dst
}

// ApplyAll scales every vector.
func (s *Scaler) ApplyAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, v := range x {
		out[i] = s.Apply(v)
	}
	return out
}

// Dim returns the dimensionality the scaler was fitted on.
func (s *Scaler) Dim() int { return len(s.min) }
