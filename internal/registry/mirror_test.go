package registry

import (
	"bytes"
	"strings"
	"testing"
)

// publishTwo publishes the fixture bundle and a distinct variant,
// returning the store and both manifests (first is current).
func publishTwo(t *testing.T) (*Store, Manifest, Manifest) {
	t.Helper()
	raw, _ := testBundle(t)
	st := openStore(t)
	first, err := st.Publish(bytes.NewReader(raw), TrainInfo{Seed: 13})
	if err != nil {
		t.Fatalf("Publish first: %v", err)
	}
	variant := mutateBundle(t, raw, func(env *bundleEnvelope) { env.Lambda++ })
	second, err := st.Publish(bytes.NewReader(variant), TrainInfo{Seed: 14})
	if err != nil {
		t.Fatalf("Publish second: %v", err)
	}
	return st, first, second
}

func TestSetCurrentGenerationMonotonic(t *testing.T) {
	st, first, second := publishTwo(t)

	ptr, ok, err := st.Current()
	if err != nil || !ok {
		t.Fatalf("Current after initial publish: ptr=%v ok=%v err=%v", ptr, ok, err)
	}
	if ptr.Generation != 1 {
		t.Errorf("initial publish generation = %d, want 1", ptr.Generation)
	}
	if _, err := st.Promote(second.ID, "test"); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	ptr, _, _ = st.Current()
	if ptr.Generation != 2 {
		t.Errorf("post-promotion generation = %d, want 2", ptr.Generation)
	}
	if _, err := st.Rollback(first.ID, "test"); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	ptr, _, _ = st.Current()
	if ptr.Generation != 3 {
		t.Errorf("post-rollback generation = %d, want 3", ptr.Generation)
	}
}

func TestImportEntryMirrorsCommittedEntry(t *testing.T) {
	primary, first, second := publishTwo(t)
	replicaStore := openStore(t)

	for _, man := range []Manifest{first, second} {
		blob := readBundle(t, primary, man.ID)
		if err := replicaStore.ImportEntry(man, blob); err != nil {
			t.Fatalf("ImportEntry %s: %v", man.ID, err)
		}
		// Idempotent re-import.
		if err := replicaStore.ImportEntry(man, blob); err != nil {
			t.Fatalf("re-ImportEntry %s: %v", man.ID, err)
		}
		got, err := replicaStore.Get(man.ID)
		if err != nil {
			t.Fatalf("Get imported %s: %v", man.ID, err)
		}
		if got != man {
			t.Errorf("imported manifest differs:\n got %+v\nwant %+v", got, man)
		}
	}
	// Importing an entry must never set the pointer.
	if _, ok, err := replicaStore.Current(); err != nil || ok {
		t.Errorf("replica pointer after imports: ok=%v err=%v, want unset", ok, err)
	}
}

func TestImportEntryRejectsHashMismatch(t *testing.T) {
	primary, first, _ := publishTwo(t)
	replicaStore := openStore(t)

	blob := readBundle(t, primary, first.ID)
	corrupt := append([]byte{}, blob...)
	corrupt[len(corrupt)/2] ^= 0xff
	err := replicaStore.ImportEntry(first, corrupt)
	if err == nil || !strings.Contains(err.Error(), "hashes") {
		t.Fatalf("ImportEntry with corrupt bundle: err=%v, want hash mismatch", err)
	}
	// The failed import must not have committed anything.
	if _, err := replicaStore.Get(first.ID); err == nil {
		t.Error("corrupt import is visible as a committed entry")
	}

	bad := first
	bad.ID = "abcdefabcdef"
	bad.SHA256 = "abcdefabcdef" + first.SHA256[idLen:]
	if err := replicaStore.ImportEntry(bad, blob); err == nil {
		t.Error("ImportEntry accepted a manifest whose hash disagrees with the bundle")
	}
}

func TestSetCurrentMirrorPreservesGeneration(t *testing.T) {
	primary, first, second := publishTwo(t)
	replicaStore := openStore(t)
	for _, man := range []Manifest{first, second} {
		if err := replicaStore.ImportEntry(man, readBundle(t, primary, man.ID)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := primary.Promote(second.ID, "gate approved"); err != nil {
		t.Fatal(err)
	}
	ptr, _, _ := primary.Current()

	if _, err := replicaStore.SetCurrentMirror(ptr); err != nil {
		t.Fatalf("SetCurrentMirror: %v", err)
	}
	got, ok, err := replicaStore.Current()
	if err != nil || !ok {
		t.Fatalf("replica Current: ok=%v err=%v", ok, err)
	}
	if got != ptr {
		t.Errorf("mirrored pointer differs:\n got %+v\nwant %+v", got, ptr)
	}

	// Re-mirroring the same generation is a no-op (no history append).
	before, _ := replicaStore.History()
	if _, err := replicaStore.SetCurrentMirror(ptr); err != nil {
		t.Fatalf("re-SetCurrentMirror: %v", err)
	}
	after, _ := replicaStore.History()
	if len(after) != len(before) {
		t.Errorf("converged re-mirror appended history: %d -> %d entries", len(before), len(after))
	}
}

func TestSetCurrentMirrorRefusesMissingEntry(t *testing.T) {
	primary, _, second := publishTwo(t)
	replicaStore := openStore(t)
	if _, err := primary.Promote(second.ID, "test"); err != nil {
		t.Fatal(err)
	}
	ptr, _, _ := primary.Current()
	if _, err := replicaStore.SetCurrentMirror(ptr); err == nil {
		t.Fatal("SetCurrentMirror accepted a pointer to an entry the store does not hold")
	}
	if _, ok, _ := replicaStore.Current(); ok {
		t.Error("refused mirror still wrote a pointer")
	}
}

func readBundle(t *testing.T, st *Store, id string) []byte {
	t.Helper()
	rc, err := st.OpenBundle(id)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(rc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
