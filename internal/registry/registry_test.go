package registry

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/svm"
	"repro/internal/trace"
)

// Shared trained bundle: training dominates test time, so every test
// reuses one model and its dataset.
var (
	fixtureOnce sync.Once
	fixtureErr  error
	fixtureRaw  []byte
	fixtureLogs *dataset.Logs
)

func testBundle(t *testing.T) ([]byte, *dataset.Logs) {
	t.Helper()
	fixtureOnce.Do(func() {
		spec, err := dataset.ByName("vim_reverse_tcp")
		if err != nil {
			fixtureErr = err
			return
		}
		logs, err := spec.Generate(13)
		if err != nil {
			fixtureErr = err
			return
		}
		td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
			Seed:        13,
			FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
		})
		if err != nil {
			fixtureErr = err
			return
		}
		clf, err := td.Train()
		if err != nil {
			fixtureErr = err
			return
		}
		var buf bytes.Buffer
		if err := clf.Save(&buf); err != nil {
			fixtureErr = err
			return
		}
		fixtureRaw = buf.Bytes()
		fixtureLogs = logs
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureRaw, fixtureLogs
}

// bundleEnvelope mirrors core's on-disk classifier envelope by gob field
// names, so tests can corrupt sections without reaching into core.
type bundleEnvelope struct {
	Magic     string
	Version   int
	Window    int
	Lambda    float64
	Encoder   []byte
	Scaler    []byte
	Model     []byte
	HasPlatt  bool
	PlattA    float64
	PlattB    float64
	CallGraph []byte
}

func mutateBundle(t *testing.T, raw []byte, mutate func(*bundleEnvelope)) []byte {
	t.Helper()
	var env bundleEnvelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStorePublishLifecycle(t *testing.T) {
	raw, _ := testBundle(t)
	st := openStore(t)

	man, err := st.Publish(bytes.NewReader(raw), TrainInfo{App: "vim.exe", Seed: 13})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(man.ID) != idLen || !strings.HasPrefix(man.SHA256, man.ID) {
		t.Errorf("manifest id %q is not a prefix of hash %q", man.ID, man.SHA256)
	}
	if man.FormatVersion != 2 || man.Window <= 0 || man.Degraded {
		t.Errorf("manifest envelope = %+v, want version 2, positive window, not degraded", man)
	}
	if man.Parent != "" {
		t.Errorf("first entry has parent %q, want none", man.Parent)
	}

	// The first publish auto-promotes.
	ptr, ok, err := st.Current()
	if err != nil || !ok || ptr.ID != man.ID {
		t.Fatalf("Current = %+v ok=%v err=%v, want initial publish to set %s", ptr, ok, err, man.ID)
	}

	// Republishing identical bytes is idempotent.
	again, err := st.Publish(bytes.NewReader(raw), TrainInfo{})
	if err != nil {
		t.Fatalf("re-Publish: %v", err)
	}
	if again.ID != man.ID || !again.CreatedAt.Equal(man.CreatedAt) {
		t.Errorf("re-publish returned %+v, want the original entry %+v", again, man)
	}

	// A different (degraded) bundle becomes a second entry with lineage.
	degraded := mutateBundle(t, raw, func(e *bundleEnvelope) { e.Model = []byte("corrupt") })
	man2, err := st.Publish(bytes.NewReader(degraded), TrainInfo{})
	if err != nil {
		t.Fatalf("Publish degraded: %v", err)
	}
	if man2.ID == man.ID {
		t.Fatal("distinct bundles share an id")
	}
	if !man2.Degraded {
		t.Error("corrupt statistical sections not recorded as degraded")
	}
	if man2.Parent != man.ID {
		t.Errorf("second entry parent = %q, want %q", man2.Parent, man.ID)
	}

	// The second publish must not repoint current.
	ptr, _, _ = st.Current()
	if ptr.ID != man.ID {
		t.Errorf("second publish moved current to %s", ptr.ID)
	}

	list, err := st.List()
	if err != nil || len(list) != 2 {
		t.Fatalf("List = %d entries, err %v, want 2", len(list), err)
	}

	// Promotion and rollback repoint the pointer and append history.
	if _, err := st.SetCurrent(man2.ID, "promoted"); err != nil {
		t.Fatalf("SetCurrent: %v", err)
	}
	ptr, _, _ = st.Current()
	if ptr.ID != man2.ID {
		t.Fatalf("current = %s after promotion, want %s", ptr.ID, man2.ID)
	}
	target, err := st.RollbackTarget()
	if err != nil || target != man.ID {
		t.Fatalf("RollbackTarget = %q err %v, want %s", target, err, man.ID)
	}
	if _, err := st.SetCurrent(target, "rollback"); err != nil {
		t.Fatalf("rollback SetCurrent: %v", err)
	}
	hist, err := st.History()
	if err != nil || len(hist) != 3 {
		t.Fatalf("History = %d records, err %v, want 3", len(hist), err)
	}
	if hist[2].From != man2.ID || hist[2].To != man.ID {
		t.Errorf("rollback transition = %+v, want %s -> %s", hist[2], man2.ID, man.ID)
	}
}

func TestStoreRejectsUnloadableBundles(t *testing.T) {
	raw, _ := testBundle(t)
	st := openStore(t)

	if _, err := st.Publish(strings.NewReader("not a model"), TrainInfo{}); err == nil {
		t.Error("garbage bundle accepted")
	}

	// A version-1 bundle with corrupt statistics has no fallback: the
	// publish error must carry the migration instruction, not a generic
	// load failure.
	v1 := mutateBundle(t, raw, func(e *bundleEnvelope) {
		e.Version = 1
		e.Model = []byte("corrupt")
		e.CallGraph = nil
	})
	_, err := st.Publish(bytes.NewReader(v1), TrainInfo{})
	if err == nil {
		t.Fatal("version-1 corrupt bundle accepted")
	}
	var fbErr *core.FallbackUnavailableError
	if !errors.As(err, &fbErr) {
		t.Fatalf("publish error %v is not a FallbackUnavailableError", err)
	}
	if !strings.Contains(err.Error(), "re-save or retrain") {
		t.Errorf("publish error %q lacks the migration instruction", err)
	}
}

func TestStoreIDValidation(t *testing.T) {
	st := openStore(t)
	for _, id := range []string{"", "..", "../../escape", "ABCDEF123456", "zzzzzzzzzzzz", "abc"} {
		if _, err := st.Get(id); err == nil {
			t.Errorf("Get(%q) accepted an invalid id", id)
		}
		if _, err := st.BundlePath(id); err == nil {
			t.Errorf("BundlePath(%q) accepted an invalid id", id)
		}
	}
	if _, err := st.SetCurrent("0123456789ab", "absent"); err == nil {
		t.Error("SetCurrent accepted an id with no committed entry")
	}
}

func TestStoreIgnoresUncommittedEntries(t *testing.T) {
	raw, _ := testBundle(t)
	st := openStore(t)
	man, err := st.Publish(bytes.NewReader(raw), TrainInfo{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between bundle and manifest: a directory with no
	// manifest must be invisible.
	torn := filepath.Join(st.Root(), entriesDir, "0123456789ab")
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, bundleFile), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	list, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != man.ID {
		t.Errorf("List sees %d entries, want only the committed %s", len(list), man.ID)
	}
}

// champion replays the dataset's events through a monitor, batching them,
// and returns per-batch events plus champion verdict flags.
type champBatch struct {
	events    []trace.Event
	malicious []bool
}

func championBatches(t *testing.T, mon *core.Monitor, log *trace.Log, batchSize int) []champBatch {
	t.Helper()
	det, err := mon.Stream(log.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var out []champBatch
	events := log.Events
	for len(events) > 0 {
		n := batchSize
		if n > len(events) {
			n = len(events)
		}
		b := champBatch{events: events[:n]}
		for _, e := range events[:n] {
			d, err := det.Feed(e)
			var evErr *core.EventError
			if err != nil && !errors.As(err, &evErr) {
				t.Fatal(err)
			}
			if d != nil {
				b.malicious = append(b.malicious, d.Malicious)
			}
		}
		out = append(out, b)
		events = events[n:]
	}
	return out
}

func TestCanaryIdenticalChallengerAgreesPerfectly(t *testing.T) {
	raw, logs := testBundle(t)
	mon, err := core.LoadMonitor(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	challenger, err := core.LoadMonitor(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	batches := championBatches(t, mon, logs.Malicious, 37)
	// Size the queue to hold every batch so nothing is dropped no matter
	// how slowly the shadow worker drains.
	can, err := NewCanary("abcdefabcdef", challenger, len(batches))
	if err != nil {
		t.Fatal(err)
	}
	defer can.Stop()

	total := 0
	for _, b := range batches {
		if !can.Offer("sess-1", logs.Malicious.Modules, b.events, b.malicious) {
			t.Fatal("Offer rejected a batch with capacity for every batch")
		}
		total += len(b.events)
	}
	can.Sync()
	cmp := can.Status()
	if cmp.Events != total {
		t.Errorf("shadow events = %d, want %d", cmp.Events, total)
	}
	if cmp.Windows == 0 {
		t.Fatal("no verdict pairs compared")
	}
	if cmp.Diverged != 0 || cmp.Dropped != 0 {
		t.Errorf("diverged=%d dropped=%d, want 0/0", cmp.Diverged, cmp.Dropped)
	}
	if cmp.Confusion.FP != 0 || cmp.Confusion.FN != 0 {
		t.Errorf("identical challenger disagreed: %+v", cmp.Confusion)
	}
	s := cmp.Summary()
	if !math.IsNaN(s.ACC) && s.ACC != 1 {
		t.Errorf("identical challenger ACC = %v, want 1", s.ACC)
	}
}

func TestCanaryStopIsIdempotentAndRejectsOffers(t *testing.T) {
	raw, logs := testBundle(t)
	challenger, err := core.LoadMonitor(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	can, err := NewCanary("abcdefabcdef", challenger, 4)
	if err != nil {
		t.Fatal(err)
	}
	can.Stop()
	can.Stop()
	if can.Offer("s", logs.Benign.Modules, logs.Benign.Events[:1], nil) {
		t.Error("Offer accepted a batch after Stop")
	}
}

func TestCanaryCountsDroppedEvents(t *testing.T) {
	raw, logs := testBundle(t)
	challenger, err := core.LoadMonitor(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	can, err := NewCanary("abcdefabcdef", challenger, 4)
	if err != nil {
		t.Fatal(err)
	}
	can.Stop()
	batch := logs.Benign.Events[:3]
	if can.Offer("s", logs.Benign.Modules, batch, nil) {
		t.Fatal("Offer accepted a batch after Stop")
	}
	cmp := can.Status()
	if cmp.Dropped != 1 || cmp.DroppedEvents != len(batch) {
		t.Errorf("dropped=%d dropped_events=%d, want 1 batch carrying %d events",
			cmp.Dropped, cmp.DroppedEvents, len(batch))
	}
}

func TestGateEffectiveFillsDefaults(t *testing.T) {
	eff := Gate{}.Effective()
	if eff.MinEvents != 1000 || eff.MinTPR != 0.95 || eff.MaxFPR != 0.05 {
		t.Errorf("zero gate Effective = %+v, want the documented defaults", eff)
	}
	set := Gate{MinEvents: 7, MinTPR: 0.5, MaxFPR: 0.2}
	if got := set.Effective(); got != set {
		t.Errorf("Effective rewrote explicit thresholds: %+v", got)
	}
}

func TestGateDecide(t *testing.T) {
	mk := func(events int, tp, tn, fp, fn int) Comparison {
		return Comparison{Events: events, Confusion: metrics.Confusion{TP: tp, TN: tn, FP: fp, FN: fn}}
	}
	g := Gate{MinEvents: 100, MinTPR: 0.9, MaxFPR: 0.1}

	if d := g.Decide(mk(500, 95, 40, 2, 5)); !d.OK {
		t.Errorf("healthy comparison blocked: %v", d.Reasons)
	}
	if d := g.Decide(mk(50, 95, 40, 2, 5)); d.OK || len(d.Reasons) != 1 {
		t.Errorf("too-few-events comparison passed: %+v", d)
	}
	// Low agreement on champion-benign windows (new false alarms).
	if d := g.Decide(mk(500, 50, 40, 2, 50)); d.OK {
		t.Error("low-TPR challenger passed the gate")
	}
	// Challenger clears windows the champion flags (missed detections).
	if d := g.Decide(mk(500, 95, 10, 40, 5)); d.OK {
		t.Error("high-FPR challenger passed the gate")
	}
	// No shadow evidence at all: fails closed on undefined measures.
	d := g.Decide(Comparison{})
	if d.OK {
		t.Error("empty comparison passed the gate")
	}
	found := 0
	for _, r := range d.Reasons {
		if strings.Contains(r, "undefined") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("empty comparison reasons %v, want both undefined measures reported", d.Reasons)
	}

	// Zero-value gate applies defaults.
	if d := (Gate{}).Decide(mk(999, 1000, 100, 0, 0)); d.OK {
		t.Error("999 events passed the default 1000-event floor")
	}
	if d := (Gate{}).Decide(mk(1000, 1000, 100, 0, 0)); !d.OK {
		t.Errorf("default gate blocked a perfect comparison: %v", d.Reasons)
	}
}
