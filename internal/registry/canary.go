package registry

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Comparison is the accumulated champion/challenger shadow evidence: how
// much traffic the challenger has replayed and how its verdicts compare
// to the champion's, with the champion's verdicts as reference labels.
// In the Confusion, "actual" is the champion calling a window benign and
// "predicted" is the challenger agreeing — so TPR is the challenger's
// agreement rate on champion-benign windows (low TPR = new false
// alarms), and FPR is the rate at which the challenger clears windows
// the champion flagged (high FPR = missed detections).
type Comparison struct {
	// ChallengerID is the registry entry under shadow evaluation.
	ChallengerID string `json:"challenger_id"`
	// StartedAt is when shadowing began.
	StartedAt time.Time `json:"started_at"`
	// Events counts events replayed against the challenger; Windows
	// counts champion/challenger verdict pairs compared.
	Events  int `json:"events"`
	Windows int `json:"windows"`
	// Dropped counts batches the bounded shadow queue rejected (or that
	// arrived after the canary stopped); DroppedEvents counts the events
	// those batches carried — the evidence the comparison never saw.
	// Diverged counts batches whose champion and challenger window
	// counts disagreed (never expected when the windows match).
	Dropped       int `json:"dropped"`
	DroppedEvents int `json:"dropped_events"`
	Diverged      int `json:"diverged"`
	// Confusion is the verdict-agreement matrix.
	Confusion metrics.Confusion `json:"confusion"`
}

// Summary derives the agreement measurements (ACC, PPV, TPR, TNR, NPV,
// F1) from the comparison's confusion matrix.
func (c Comparison) Summary() metrics.Summary { return c.Confusion.Summary() }

// shadowBatch is one unit of shadow work: a scored batch's events plus
// the champion's verdicts for the windows that batch completed.
type shadowBatch struct {
	session   string
	modules   *trace.ModuleMap
	events    []trace.Event
	malicious []bool // champion verdicts, in window order
}

// Canary shadow-evaluates one challenger model against live champion
// traffic. Offer is non-blocking and never touches the champion scoring
// path: batches are copied onto a bounded queue and replayed against
// per-session challenger detectors by a single background goroutine, so
// champion verdicts are byte-identical with a canary attached or not.
// Per-session event order is preserved (one FIFO queue, one consumer),
// which keeps the challenger's verdict stream deterministic too.
type Canary struct {
	id  string
	mon *core.Monitor

	queue chan shadowBatch
	stop  chan struct{}
	done  chan struct{}

	mu   sync.Mutex
	dets map[string]*core.StreamDetector
	cmp  Comparison
	lag  int // events queued but not yet replayed, mirrors mShadowLag
}

// NewCanary starts shadow evaluation of the challenger monitor published
// as registry entry id. queueDepth bounds the shadow queue in batches
// (minimum 1); when the queue is full, Offer drops the batch and counts
// it rather than blocking the serving path.
func NewCanary(id string, mon *core.Monitor, queueDepth int) (*Canary, error) {
	if mon == nil {
		return nil, errors.New("registry: nil challenger monitor")
	}
	if queueDepth < 1 {
		queueDepth = 256
	}
	c := &Canary{
		id:    id,
		mon:   mon,
		queue: make(chan shadowBatch, queueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		dets:  make(map[string]*core.StreamDetector),
		cmp:   Comparison{ChallengerID: id, StartedAt: time.Now().UTC()},
	}
	go c.run()
	return c, nil
}

// ID returns the challenger's registry entry id.
func (c *Canary) ID() string { return c.id }

// Window returns the challenger's detection window, which callers check
// against the champion's before shadowing (mismatched windows cannot be
// compared verdict-for-verdict).
func (c *Canary) Window() int { return c.mon.Window() }

// Offer enqueues one scored batch for shadow replay: the events the
// champion scored and the champion's malicious flag per completed
// window. It never blocks — a full queue drops the batch and reports
// false. The caller must not mutate events after offering.
func (c *Canary) Offer(session string, modules *trace.ModuleMap, events []trace.Event, malicious []bool) bool {
	b := shadowBatch{session: session, modules: modules, events: events, malicious: malicious}
	select {
	case <-c.stop:
		c.dropOffer(len(events))
		return false
	default:
	}
	select {
	case c.queue <- b:
		c.mu.Lock()
		c.lag += len(events)
		c.mu.Unlock()
		mShadowLag.Add(float64(len(events)))
		return true
	default:
		c.dropOffer(len(events))
		return false
	}
}

// dropOffer accounts one rejected offer — a full queue or a stopped
// canary — in the comparison and the telemetry counters.
func (c *Canary) dropOffer(events int) {
	c.mu.Lock()
	c.cmp.Dropped++
	c.cmp.DroppedEvents += events
	c.mu.Unlock()
	mShadowDropped.Inc()
	mShadowDroppedEvents.Add(uint64(events))
}

// run is the single shadow worker: it replays queued batches in arrival
// order against per-session challenger detectors and folds the verdict
// pairs into the comparison.
func (c *Canary) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case b := <-c.queue:
			c.replay(b)
		}
	}
}

// replay scores one batch with the challenger and compares verdicts.
func (c *Canary) replay(b shadowBatch) {
	c.mu.Lock()
	det, ok := c.dets[b.session]
	c.mu.Unlock()
	if !ok {
		d, err := c.mon.Stream(b.modules)
		if err != nil {
			// A module map the challenger cannot stream over: count the
			// batch as divergence and move on.
			c.finish(b, nil, true)
			return
		}
		det = d
		c.mu.Lock()
		c.dets[b.session] = det
		c.mu.Unlock()
	}
	var verdicts []bool
	diverged := false
	for _, e := range b.events {
		d, err := det.Feed(e)
		var evErr *core.EventError
		if err != nil && !errors.As(err, &evErr) {
			diverged = true
			break
		}
		if d != nil {
			verdicts = append(verdicts, d.Malicious)
		}
	}
	c.finish(b, verdicts, diverged)
}

// finish folds one replayed batch into the comparison and releases its
// lag accounting.
func (c *Canary) finish(b shadowBatch, verdicts []bool, diverged bool) {
	n := len(b.malicious)
	if len(verdicts) != n {
		diverged = true
		if len(verdicts) < n {
			n = len(verdicts)
		}
	}
	c.mu.Lock()
	c.cmp.Events += len(b.events)
	for i := 0; i < n; i++ {
		c.cmp.Confusion.Add(!b.malicious[i], !verdicts[i])
		c.cmp.Windows++
	}
	if diverged {
		c.cmp.Diverged++
	}
	c.lag -= len(b.events)
	c.mu.Unlock()
	mShadowEvents.Add(uint64(len(b.events)))
	mShadowLag.Add(-float64(len(b.events)))
	if diverged {
		mShadowDiverged.Inc()
	}
}

// Status snapshots the accumulated comparison.
func (c *Canary) Status() Comparison {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cmp
}

// Lag reports the events queued for shadow replay but not yet scored.
func (c *Canary) Lag() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lag
}

// Sync blocks until every batch offered so far has been replayed (or the
// canary stopped). Tests and pre-promotion checks use it to read a
// settled comparison.
func (c *Canary) Sync() {
	for {
		select {
		case <-c.done:
			return
		default:
		}
		c.mu.Lock()
		settled := c.lag == 0 && len(c.queue) == 0
		c.mu.Unlock()
		if settled {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Stop ends shadow evaluation. Queued but unreplayed batches are
// discarded; their lag accounting is released. Stop is idempotent.
func (c *Canary) Stop() {
	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		return
	default:
		close(c.stop)
	}
	c.mu.Unlock()
	<-c.done
	// Drain what the worker never got to and release its lag.
	for {
		select {
		case b := <-c.queue:
			c.mu.Lock()
			c.lag -= len(b.events)
			c.mu.Unlock()
			mShadowLag.Add(-float64(len(b.events)))
		default:
			return
		}
	}
}
