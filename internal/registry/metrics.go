package registry

import "repro/internal/telemetry"

// Registry lifecycle metrics, registered on the default telemetry
// registry so they surface on the serving process's /metrics endpoint
// next to the serve_* instruments.
var (
	mPublishes = telemetry.NewCounter("registry_publishes_total",
		"model bundles published into the registry store")
	mPromotions = telemetry.NewCounter("registry_promotions_total",
		"challenger entries promoted to current")
	mRollbacks = telemetry.NewCounter("registry_rollbacks_total",
		"current-pointer rollbacks to a prior entry")
	mImports = telemetry.NewCounter("registry_imports_total",
		"entries imported from a primary store by replication")
	mShadowEvents = telemetry.NewCounter("registry_shadow_events_total",
		"events replayed against shadow challengers")
	mShadowDropped = telemetry.NewCounter("registry_shadow_dropped_batches_total",
		"shadow batches dropped because the shadow queue was full")
	mShadowDroppedEvents = telemetry.NewCounter("registry_shadow_dropped_events_total",
		"events carried by dropped shadow batches (evidence the comparison never saw)")
	mShadowDiverged = telemetry.NewCounter("registry_shadow_divergence_total",
		"shadow batches whose champion and challenger window counts disagreed")
	mShadowLag = telemetry.NewGauge("registry_shadow_lag_events",
		"events queued for shadow scoring but not yet replayed")
)
