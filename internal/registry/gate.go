package registry

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Gate is the promotion policy: the minimum shadow evidence and the
// verdict-agreement thresholds a challenger must clear before it may
// replace the champion. The zero value selects the defaults; the gate
// fails closed — a measurement that is undefined because the shadow
// traffic never exercised it (NaN) blocks promotion rather than waving
// it through.
type Gate struct {
	// MinEvents is the minimum number of shadow-replayed events
	// (default 1000).
	MinEvents int
	// MinTPR is the minimum challenger agreement rate on windows the
	// champion called benign (default 0.95). Lower means the challenger
	// would raise false alarms the champion does not.
	MinTPR float64
	// MaxFPR is the maximum rate at which the challenger may clear
	// windows the champion flagged malicious (default 0.05). Higher
	// means the challenger would miss detections the champion makes.
	MaxFPR float64
}

// Effective returns the gate with every unset threshold replaced by its
// default — the thresholds Decide actually applies. Callers that need to
// know the evidence floor before deciding (the autopilot waits for it)
// read it from here instead of re-hardcoding the defaults.
func (g Gate) Effective() Gate { return g.withDefaults() }

// withDefaults fills unset thresholds.
func (g Gate) withDefaults() Gate {
	if g.MinEvents <= 0 {
		g.MinEvents = 1000
	}
	if g.MinTPR <= 0 {
		g.MinTPR = 0.95
	}
	if g.MaxFPR <= 0 {
		g.MaxFPR = 0.05
	}
	return g
}

// Decision is the gate's verdict on one comparison: whether promotion is
// allowed and, when it is not, every threshold that blocked it.
type Decision struct {
	// OK reports that every gate condition passed.
	OK bool `json:"ok"`
	// Reasons lists the failed conditions (empty when OK).
	Reasons []string `json:"reasons,omitempty"`
	// Summary is the agreement measurement set the decision was made on.
	Summary metrics.Summary `json:"summary"`
}

// Decide evaluates the gate against accumulated shadow evidence.
func (g Gate) Decide(c Comparison) Decision {
	g = g.withDefaults()
	d := Decision{Summary: c.Summary()}
	if c.Events < g.MinEvents {
		d.Reasons = append(d.Reasons,
			fmt.Sprintf("shadow events %d < required %d", c.Events, g.MinEvents))
	}
	tpr := c.Confusion.TPR()
	switch {
	case math.IsNaN(tpr):
		d.Reasons = append(d.Reasons,
			"benign agreement (TPR) undefined: no champion-benign windows shadowed")
	case tpr < g.MinTPR:
		d.Reasons = append(d.Reasons,
			fmt.Sprintf("benign agreement (TPR) %.3f < required %.3f", tpr, g.MinTPR))
	}
	tnr := c.Confusion.TNR()
	switch {
	case math.IsNaN(tnr):
		d.Reasons = append(d.Reasons,
			"malicious agreement (FPR) undefined: no champion-malicious windows shadowed")
	case 1-tnr > g.MaxFPR:
		d.Reasons = append(d.Reasons,
			fmt.Sprintf("missed-detection rate (FPR) %.3f > allowed %.3f", 1-tnr, g.MaxFPR))
	}
	d.OK = len(d.Reasons) == 0
	return d
}
