// Package registry is the model-lifecycle subsystem layered between
// training and serving: a versioned, content-addressed store of immutable
// model bundles plus the champion/challenger machinery that decides when
// a newly trained model may take over live traffic.
//
// A Store keeps every published bundle under a root directory, addressed
// by the SHA-256 of its bytes, each with a small JSON manifest (id, hash,
// creation time, file-format version, training summary, lineage). One
// manifest pointer — current.json, the symlink-equivalent — names the
// champion; every repoint is appended to an append-only history log, so
// any prior entry remains one rollback away. All writes are atomic
// (temp file + rename, the internal/core spool discipline), so a crash
// mid-publish never leaves a torn bundle or a dangling pointer.
//
// A Canary runs shadow evaluation: the serving path scores traffic with
// the champion (whose verdicts are the ones returned) and asynchronously
// replays the same events against a challenger detector, accumulating a
// metrics.Confusion that treats the champion's verdicts as the reference
// labels. A Gate turns that comparison into a promotion decision: enough
// shadow evidence, high enough agreement on champion-benign windows
// (TPR), few enough missed detections (FPR). Promotion and rollback
// repoint the store's current pointer and hot-reload the server.
package registry

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Store layout under the root directory.
const (
	entriesDir   = "entries"
	bundleFile   = "bundle.model"
	manifestFile = "manifest.json"
	currentFile  = "current.json"
	historyFile  = "history.jsonl"
	// idLen is the length of an entry id: a hex prefix of the bundle's
	// SHA-256 long enough that collisions mean identical content in
	// practice (and are detected against the full hash regardless).
	idLen = 12
)

// TrainInfo is the training-configuration summary recorded in a
// manifest: enough provenance to tell entries apart in a listing, not a
// full reproduction recipe.
type TrainInfo struct {
	// App is the monitored application the model was trained for.
	App string `json:"app,omitempty"`
	// Seed is the data-selection seed the model was trained with.
	Seed int64 `json:"seed,omitempty"`
	// Lambda and Kernel identify the WSVM hyperparameters.
	Lambda float64 `json:"lambda,omitempty"`
	Kernel string  `json:"kernel,omitempty"`
	// BenignLog and MixedLog name the training inputs.
	BenignLog string `json:"benign_log,omitempty"`
	MixedLog  string `json:"mixed_log,omitempty"`
}

// Manifest describes one immutable store entry.
type Manifest struct {
	// ID addresses the entry: a 12-hex-digit prefix of SHA256.
	ID string `json:"id"`
	// SHA256 is the full content hash of the bundle bytes.
	SHA256 string `json:"sha256"`
	// CreatedAt is the publish time.
	CreatedAt time.Time `json:"created_at"`
	// FormatVersion is the bundle's file-format version; Window is the
	// model's event-coalescing window; Degraded reports a bundle whose
	// statistical sections are unusable (it would serve the call-graph
	// fallback).
	FormatVersion int  `json:"format_version"`
	Window        int  `json:"window"`
	Degraded      bool `json:"degraded"`
	// Parent is the entry that was current when this one was published —
	// the lineage link for champion/challenger chains.
	Parent string `json:"parent,omitempty"`
	// Train is the training-configuration summary.
	Train TrainInfo `json:"train,omitempty"`
}

// Pointer is the current.json payload: the manifest pointer naming the
// champion entry.
type Pointer struct {
	// ID is the current entry.
	ID string `json:"id"`
	// Generation counts repoints monotonically from 1; replication uses
	// it as the cheap "did the pointer move" poll token (a mirrored
	// pointer keeps the primary's generation verbatim). Pointers written
	// before generations existed read back as 0.
	Generation int64 `json:"generation,omitempty"`
	// UpdatedAt is when the pointer was last repointed.
	UpdatedAt time.Time `json:"updated_at"`
	// Reason records why (publish, promotion, rollback).
	Reason string `json:"reason,omitempty"`
}

// Transition is one history.jsonl record: a repoint of the current
// pointer, kept append-only so every promotion and rollback is auditable
// and any prior champion is recoverable.
type Transition struct {
	// At is when the transition happened.
	At time.Time `json:"at"`
	// From is the previous current entry ("" for the first).
	From string `json:"from,omitempty"`
	// To is the new current entry.
	To string `json:"to"`
	// Reason records why.
	Reason string `json:"reason,omitempty"`
}

// Store is a content-addressed registry of immutable model bundles
// rooted at one directory. Entry bundles and manifests are written once
// and never modified; only the current pointer and the history log
// change. A Store serialises its own pointer writes; concurrent
// processes sharing a root are safe against torn files (every write is
// temp+rename) but race on who repoints last.
type Store struct {
	root string
	mu   sync.Mutex // serialises pointer/history writes in-process
}

// Open opens (creating if needed) the registry rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: empty root directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, entriesDir), 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// validID rejects ids that are not lower-hex of the expected length, so
// hostile ids cannot traverse out of the entries directory.
func validID(id string) error {
	if len(id) != idLen {
		return fmt.Errorf("registry: entry id %q is not %d hex digits", id, idLen)
	}
	for _, r := range id {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("registry: entry id %q is not lower-case hex", id)
		}
	}
	return nil
}

func (s *Store) entryDir(id string) string {
	return filepath.Join(s.root, entriesDir, id)
}

// writeFileAtomic lands blob at path via temp file + fsync + rename, the
// spool discipline: a crash leaves the previous file or none, never a
// truncated one.
func writeFileAtomic(path string, blob []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(blob); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Publish stores the bundle read from r as a new immutable entry and
// returns its manifest. The entry id is content-addressed, so publishing
// identical bytes twice is idempotent and returns the existing entry.
// The bundle is validated on the way in — a bundle no Monitor could load
// (for example a corrupt version-1 file with no call-graph fallback) is
// rejected with the loader's error. The first entry published into an
// empty store becomes current automatically; later entries never touch
// the pointer (promotion is the Gate's job). Parent records the entry
// that was current at publish time.
func (s *Store) Publish(r io.Reader, train TrainInfo) (Manifest, error) {
	_, span := telemetry.StartSpan(context.Background(), "registry/publish")
	defer span.End()
	blob, err := io.ReadAll(r)
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: reading bundle: %w", err)
	}
	sum := sha256.Sum256(blob)
	hash := hex.EncodeToString(sum[:])
	id := hash[:idLen]

	info, err := core.InspectBundle(bytes.NewReader(blob))
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: rejecting bundle: %w", err)
	}

	if existing, err := s.Get(id); err == nil {
		if existing.SHA256 != hash {
			return Manifest{}, fmt.Errorf("registry: id collision: entry %s holds hash %s, new bundle hashes %s", id, existing.SHA256, hash)
		}
		return existing, nil
	}

	parent := ""
	if cur, ok, err := s.Current(); err == nil && ok {
		parent = cur.ID
	}
	man := Manifest{
		ID:            id,
		SHA256:        hash,
		CreatedAt:     time.Now().UTC(),
		FormatVersion: info.Version,
		Window:        info.Window,
		Degraded:      info.Degraded,
		Parent:        parent,
		Train:         train,
	}

	dir := s.entryDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("registry: creating entry: %w", err)
	}
	if err := faultinject.Step("registry/publish/bundle"); err != nil {
		return Manifest{}, fmt.Errorf("registry: writing bundle: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, bundleFile), blob); err != nil {
		return Manifest{}, fmt.Errorf("registry: writing bundle: %w", err)
	}
	manBlob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: encoding manifest: %w", err)
	}
	// The manifest lands last: an entry directory without one is an
	// uncommitted publish and is ignored by Get/List. The fault point
	// between the two writes is where crash tests kill the publisher.
	if err := faultinject.Step("registry/publish/manifest"); err != nil {
		return Manifest{}, fmt.Errorf("registry: writing manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestFile), manBlob); err != nil {
		return Manifest{}, fmt.Errorf("registry: writing manifest: %w", err)
	}
	mPublishes.Inc()
	telemetry.RecordFlight(telemetry.FlightEntry{
		Kind: "registry", Name: "publish",
		Attrs: map[string]string{"entry": id, "parent": parent},
	})

	if _, ok, err := s.Current(); err == nil && !ok {
		if _, err := s.SetCurrent(id, "initial publish"); err != nil {
			return Manifest{}, err
		}
	}
	return man, nil
}

// Get returns the manifest of one committed entry.
func (s *Store) Get(id string) (Manifest, error) {
	if err := validID(id); err != nil {
		return Manifest{}, err
	}
	blob, err := os.ReadFile(filepath.Join(s.entryDir(id), manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: no entry %s: %w", id, err)
	}
	var man Manifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return Manifest{}, fmt.Errorf("registry: entry %s manifest: %w", id, err)
	}
	return man, nil
}

// List returns every committed entry, oldest first (creation time, then
// id for stability).
func (s *Store) List() ([]Manifest, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, entriesDir))
	if err != nil {
		return nil, fmt.Errorf("registry: reading entries: %w", err)
	}
	var out []Manifest
	for _, e := range ents {
		if !e.IsDir() || validID(e.Name()) != nil {
			continue
		}
		man, err := s.Get(e.Name())
		if err != nil {
			continue // uncommitted or torn entry: invisible
		}
		out = append(out, man)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// BundlePath returns the filesystem path of a committed entry's bundle,
// the path a serving process loads its monitor from.
func (s *Store) BundlePath(id string) (string, error) {
	if _, err := s.Get(id); err != nil {
		return "", err
	}
	return filepath.Join(s.entryDir(id), bundleFile), nil
}

// OpenBundle opens a committed entry's bundle for reading.
func (s *Store) OpenBundle(id string) (io.ReadCloser, error) {
	path, err := s.BundlePath(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("registry: opening bundle %s: %w", id, err)
	}
	return f, nil
}

// Current returns the manifest pointer naming the champion entry, with
// ok reporting whether one has been set.
func (s *Store) Current() (ptr Pointer, ok bool, err error) {
	blob, err := os.ReadFile(filepath.Join(s.root, currentFile))
	if os.IsNotExist(err) {
		return Pointer{}, false, nil
	}
	if err != nil {
		return Pointer{}, false, fmt.Errorf("registry: reading current pointer: %w", err)
	}
	if err := json.Unmarshal(blob, &ptr); err != nil {
		return Pointer{}, false, fmt.Errorf("registry: current pointer: %w", err)
	}
	return ptr, true, nil
}

// SetCurrent atomically repoints the current pointer at a committed
// entry and appends the transition to the history log. It is the single
// mutation promotion and rollback share.
func (s *Store) SetCurrent(id, reason string) (Transition, error) {
	if _, err := s.Get(id); err != nil {
		return Transition{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _, err := s.Current()
	if err != nil {
		return Transition{}, err
	}
	tr := Transition{At: time.Now().UTC(), From: prev.ID, To: id, Reason: reason}
	ptr := Pointer{ID: id, Generation: prev.Generation + 1, UpdatedAt: tr.At, Reason: reason}
	blob, err := json.MarshalIndent(ptr, "", "  ")
	if err != nil {
		return Transition{}, fmt.Errorf("registry: encoding current pointer: %w", err)
	}
	if err := faultinject.Step("registry/setcurrent"); err != nil {
		return Transition{}, fmt.Errorf("registry: repointing current: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.root, currentFile), blob); err != nil {
		return Transition{}, fmt.Errorf("registry: repointing current: %w", err)
	}
	line, err := json.Marshal(tr)
	if err != nil {
		return Transition{}, fmt.Errorf("registry: encoding transition: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.root, historyFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Transition{}, fmt.Errorf("registry: opening history: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return Transition{}, fmt.Errorf("registry: appending history: %w", werr)
	}
	return tr, nil
}

// Promote repoints current at a challenger entry, counting the
// promotion. Whether the promotion was gate-approved is the caller's
// business — the store only records the transition.
func (s *Store) Promote(id, reason string) (Transition, error) {
	tr, err := s.SetCurrent(id, reason)
	if err == nil {
		mPromotions.Inc()
		telemetry.RecordFlight(telemetry.FlightEntry{
			Kind: "registry", Name: "promote",
			Attrs: map[string]string{"entry": id, "from": tr.From, "reason": reason},
		})
	}
	return tr, err
}

// Rollback repoints current at a previously-serving entry, counting the
// rollback.
func (s *Store) Rollback(id, reason string) (Transition, error) {
	tr, err := s.SetCurrent(id, reason)
	if err == nil {
		mRollbacks.Inc()
		telemetry.RecordFlight(telemetry.FlightEntry{
			Kind: "registry", Name: "rollback",
			Attrs: map[string]string{"entry": id, "from": tr.From, "reason": reason},
		})
	}
	return tr, err
}

// ImportEntry lands an entry fetched from another store as a committed
// entry of this one, preserving the source manifest verbatim. It is the
// replication half of Publish: the bundle bytes are hash-verified
// against the manifest (both the full SHA-256 and the id prefix) but not
// re-inspected — the primary already validated them at publish time —
// and the pointer is never touched (mirroring the pointer is
// SetCurrentMirror's job). Importing an entry that already exists with
// the same hash is a no-op, so interrupted syncs can simply re-run. The
// manifest-last commit protocol is shared with Publish: a crash between
// the bundle and manifest writes leaves an uncommitted entry directory
// that Get/List ignore.
func (s *Store) ImportEntry(man Manifest, blob []byte) error {
	if err := validID(man.ID); err != nil {
		return err
	}
	sum := sha256.Sum256(blob)
	hash := hex.EncodeToString(sum[:])
	if hash != man.SHA256 {
		return fmt.Errorf("registry: import %s: bundle hashes %s, manifest says %s", man.ID, hash, man.SHA256)
	}
	if !strings.HasPrefix(hash, man.ID) {
		return fmt.Errorf("registry: import %s: id is not a prefix of bundle hash %s", man.ID, hash)
	}
	if existing, err := s.Get(man.ID); err == nil {
		if existing.SHA256 != hash {
			return fmt.Errorf("registry: import %s: existing entry holds hash %s, import hashes %s", man.ID, existing.SHA256, hash)
		}
		return nil
	}
	dir := s.entryDir(man.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: import %s: creating entry: %w", man.ID, err)
	}
	if err := faultinject.Step("registry/import/bundle"); err != nil {
		return fmt.Errorf("registry: import %s: writing bundle: %w", man.ID, err)
	}
	if err := writeFileAtomic(filepath.Join(dir, bundleFile), blob); err != nil {
		return fmt.Errorf("registry: import %s: writing bundle: %w", man.ID, err)
	}
	manBlob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: import %s: encoding manifest: %w", man.ID, err)
	}
	if err := faultinject.Step("registry/import/manifest"); err != nil {
		return fmt.Errorf("registry: import %s: writing manifest: %w", man.ID, err)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestFile), manBlob); err != nil {
		return fmt.Errorf("registry: import %s: writing manifest: %w", man.ID, err)
	}
	mImports.Inc()
	return nil
}

// SetCurrentMirror repoints the current pointer at a committed entry,
// copying a primary store's pointer verbatim — generation, timestamp and
// reason are the primary's, not regenerated, so replicas converge on
// byte-equal pointer state and the generation poll token stays
// comparable across the fleet. The transition appended to the local
// history names the sync so replica history is distinguishable from
// first-hand promotions. Mirroring a pointer at an entry this store does
// not hold is refused: the caller must import entries before the
// pointer, which is what keeps a replica from ever exposing a pointer to
// a missing entry.
func (s *Store) SetCurrentMirror(ptr Pointer) (Transition, error) {
	if _, err := s.Get(ptr.ID); err != nil {
		return Transition{}, fmt.Errorf("registry: mirroring pointer: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _, err := s.Current()
	if err != nil {
		return Transition{}, err
	}
	if prev.ID == ptr.ID && prev.Generation == ptr.Generation {
		return Transition{}, nil // already converged
	}
	tr := Transition{At: time.Now().UTC(), From: prev.ID, To: ptr.ID,
		Reason: fmt.Sprintf("sync: mirror generation %d (%s)", ptr.Generation, ptr.Reason)}
	blob, err := json.MarshalIndent(ptr, "", "  ")
	if err != nil {
		return Transition{}, fmt.Errorf("registry: encoding mirrored pointer: %w", err)
	}
	if err := faultinject.Step("registry/setcurrent/mirror"); err != nil {
		return Transition{}, fmt.Errorf("registry: mirroring pointer: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.root, currentFile), blob); err != nil {
		return Transition{}, fmt.Errorf("registry: mirroring pointer: %w", err)
	}
	line, err := json.Marshal(tr)
	if err != nil {
		return Transition{}, fmt.Errorf("registry: encoding transition: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.root, historyFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Transition{}, fmt.Errorf("registry: opening history: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return Transition{}, fmt.Errorf("registry: appending history: %w", werr)
	}
	return tr, nil
}

// History returns every recorded transition, oldest first. A line the
// decoder cannot parse (torn tail after a crash) ends the history early
// rather than failing it.
func (s *Store) History() ([]Transition, error) {
	blob, err := os.ReadFile(filepath.Join(s.root, historyFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: reading history: %w", err)
	}
	var out []Transition
	for _, line := range strings.Split(string(blob), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var tr Transition
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			break
		}
		out = append(out, tr)
	}
	return out, nil
}

// RollbackTarget returns the entry that was current before the latest
// transition — the default destination of a rollback with no explicit
// id.
func (s *Store) RollbackTarget() (string, error) {
	hist, err := s.History()
	if err != nil {
		return "", err
	}
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].From != "" {
			return hist[i].From, nil
		}
	}
	return "", fmt.Errorf("registry: no prior entry to roll back to")
}
