package registry

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// TestPublishCrashBetweenBundleAndManifest kills the publisher at the
// fault point between the bundle write and the manifest write — the
// manifest-last commit protocol's window — and asserts the store treats
// the orphaned entry directory as if the publish never happened: Get and
// List ignore it, the pointer is untouched, and a re-publish of the same
// bytes lands cleanly over the debris.
func TestPublishCrashBetweenBundleAndManifest(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	raw, _ := testBundle(t)
	st := openStore(t)

	faultinject.ArmCrash("registry/publish/manifest")
	var crash *faultinject.CrashPanic
	func() {
		defer func() { crash = faultinject.Recover(recover()) }()
		_, _ = st.Publish(bytes.NewReader(raw), TrainInfo{App: "vim.exe"})
		t.Error("Publish returned past an armed crash point")
	}()
	if crash == nil || crash.Point != "registry/publish/manifest" {
		t.Fatalf("recovered crash %+v, want registry/publish/manifest", crash)
	}

	// The bundle landed but the manifest did not: exactly one orphaned
	// entry directory with a bundle and no manifest.
	ents, err := os.ReadDir(filepath.Join(st.Root(), entriesDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("crash left %d entry dirs, want 1 orphan", len(ents))
	}
	orphan := ents[0].Name()
	if _, err := os.Stat(filepath.Join(st.Root(), entriesDir, orphan, bundleFile)); err != nil {
		t.Fatalf("orphan lost its bundle: %v", err)
	}
	if _, err := os.Stat(filepath.Join(st.Root(), entriesDir, orphan, manifestFile)); !os.IsNotExist(err) {
		t.Fatalf("orphan has a manifest (err %v): the crash point fired too late", err)
	}

	// The uncommitted entry is invisible to every read path.
	if _, err := st.Get(orphan); err == nil {
		t.Error("Get returned the uncommitted entry")
	}
	if list, err := st.List(); err != nil || len(list) != 0 {
		t.Errorf("List = %d entries, err %v, want the orphan ignored", len(list), err)
	}
	if _, ok, err := st.Current(); err != nil || ok {
		t.Errorf("crashed first publish set the current pointer (ok=%v err=%v)", ok, err)
	}

	// Recovery is a plain re-publish: same bytes, same content address,
	// committed this time.
	man, err := st.Publish(bytes.NewReader(raw), TrainInfo{App: "vim.exe"})
	if err != nil {
		t.Fatalf("re-publish after crash: %v", err)
	}
	if man.ID != orphan {
		t.Errorf("re-publish landed at %s, want the orphan's address %s", man.ID, orphan)
	}
	list, err := st.List()
	if err != nil || len(list) != 1 || list[0].ID != man.ID {
		t.Fatalf("List after recovery = %v err %v, want exactly %s", list, err, man.ID)
	}
	ptr, ok, err := st.Current()
	if err != nil || !ok || ptr.ID != man.ID {
		t.Errorf("recovered first publish did not become current: %+v ok=%v err=%v", ptr, ok, err)
	}
}

// TestPublishDiskFullBeforeBundle injects a write error at the bundle
// fault point and asserts Publish surfaces it and the store stays
// publishable once the disk "recovers".
func TestPublishDiskFullBeforeBundle(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	raw, _ := testBundle(t)
	st := openStore(t)

	boom := errors.New("no space left on device")
	faultinject.ArmError("registry/publish/bundle", boom, 1)
	if _, err := st.Publish(bytes.NewReader(raw), TrainInfo{}); !errors.Is(err, boom) {
		t.Fatalf("Publish error = %v, want injected %v", err, boom)
	}
	if list, _ := st.List(); len(list) != 0 {
		t.Fatalf("failed publish committed %d entries", len(list))
	}
	if _, err := st.Publish(bytes.NewReader(raw), TrainInfo{}); err != nil {
		t.Fatalf("publish after transient disk error: %v", err)
	}
}

// TestSetCurrentInjectedFailureLeavesPointer verifies a failed repoint
// leaves the previous pointer intact — the serving process keeps its
// champion when promotion's pointer write dies.
func TestSetCurrentInjectedFailureLeavesPointer(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	raw, _ := testBundle(t)
	st := openStore(t)
	man, err := st.Publish(bytes.NewReader(raw), TrainInfo{})
	if err != nil {
		t.Fatal(err)
	}
	second := mutateBundle(t, raw, func(e *bundleEnvelope) { e.Model = []byte("corrupt") })
	man2, err := st.Publish(bytes.NewReader(second), TrainInfo{})
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("eio")
	faultinject.ArmError("registry/setcurrent", boom, 1)
	if _, err := st.SetCurrent(man2.ID, "promoted"); !errors.Is(err, boom) {
		t.Fatalf("SetCurrent error = %v, want injected %v", err, boom)
	}
	ptr, ok, err := st.Current()
	if err != nil || !ok || ptr.ID != man.ID {
		t.Fatalf("failed repoint moved the pointer: %+v ok=%v err=%v, want %s", ptr, ok, err, man.ID)
	}
	hist, err := st.History()
	if err != nil || len(hist) != 1 {
		t.Fatalf("failed repoint appended history: %d records, err %v", len(hist), err)
	}
}
