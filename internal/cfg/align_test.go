package cfg

import (
	"math/rand"
	"testing"
)

// chainGraph builds a structured graph: a root fanning out to several
// chains of distinct lengths (so most nodes have unique fingerprints).
func chainGraph(base uint64, chains []int) *Graph {
	g := NewGraph()
	addr := base + 0x100
	for _, length := range chains {
		prev := base // root
		for i := 0; i < length; i++ {
			g.AddEdge(prev, addr)
			prev = addr
			addr += 0x80
		}
	}
	return g
}

// shiftGraph returns a copy of g with every address >= from shifted by
// delta (simulating recompilation after a source insertion).
func shiftGraph(g *Graph, from uint64, delta uint64) *Graph {
	out := NewGraph()
	shift := func(a uint64) uint64 {
		if a >= from {
			return a + delta
		}
		return a
	}
	for _, e := range g.Edges() {
		out.AddEdge(shift(e.From), shift(e.To))
	}
	return out
}

func TestAlignIdenticalGraphs(t *testing.T) {
	g := chainGraph(0x400000, []int{2, 3, 5, 7, 9})
	al := AlignGraphs(g, g)
	if al.Pivots == 0 {
		t.Fatal("no pivots on identical graphs")
	}
	if len(al.Offsets) == 0 || al.Offsets[0] != 0 {
		t.Fatalf("offsets = %v, want leading 0", al.Offsets)
	}
	if f := al.MatchedFraction(g); f < 0.9 {
		t.Errorf("matched fraction = %.2f, want >= 0.9", f)
	}
	for b, a := range al.BToA {
		if b != a {
			t.Fatalf("identity alignment mapped 0x%x to 0x%x", b, a)
		}
	}
}

func TestAlignUniformShift(t *testing.T) {
	benign := chainGraph(0x400000, []int{2, 3, 5, 7, 9, 11})
	shifted := shiftGraph(benign, 0, 0x2000) // whole binary relocated
	al := AlignGraphs(benign, shifted)
	if len(al.Offsets) == 0 || al.Offsets[0] != 0x2000 {
		t.Fatalf("offsets = %v, want leading 0x2000", al.Offsets)
	}
	if f := al.MatchedFraction(shifted); f < 0.9 {
		t.Errorf("matched fraction = %.2f, want >= 0.9", f)
	}
	// Translation recovers original addresses.
	for b, a := range al.BToA {
		if b-a != 0x2000 {
			t.Fatalf("node 0x%x mapped with offset 0x%x", b, b-a)
		}
	}
	// TranslateGraph reproduces the benign edge set.
	back := al.TranslateGraph(shifted)
	d := DiffGraphs(benign, back)
	if len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Errorf("translated graph differs: onlyA=%d onlyB=%d", len(d.OnlyA), len(d.OnlyB))
	}
}

func TestAlignInsertionShift(t *testing.T) {
	// Source-level trojan: functions above the insertion point shift by
	// 0x1000, earlier ones stay. Piecewise-constant offsets {0, 0x1000}.
	benign := chainGraph(0x400000, []int{2, 3, 5, 7, 9, 11, 13})
	mixed := shiftGraph(benign, 0x400a00, 0x1000)
	// The trojan also adds its own subgraph.
	mixed.AddEdge(0x410000, 0x410080)
	mixed.AddEdge(0x410080, 0x410100)

	al := AlignGraphs(benign, mixed)
	if len(al.Offsets) < 2 {
		t.Fatalf("offsets = %v, want both 0 and 0x1000", al.Offsets)
	}
	has := map[int64]bool{}
	for _, off := range al.Offsets {
		has[off] = true
	}
	if !has[0] || !has[0x1000] {
		t.Fatalf("offsets = %v, want {0, 0x1000}", al.Offsets)
	}
	if f := al.MatchedFraction(mixed); f < 0.6 {
		t.Errorf("matched fraction = %.2f, want >= 0.6", f)
	}
	// Payload nodes must stay unmatched.
	for _, payload := range []uint64{0x410000, 0x410080, 0x410100} {
		if _, ok := al.BToA[payload]; ok {
			t.Errorf("payload node 0x%x was aligned to benign code", payload)
		}
	}
}

func TestAlignmentTranslateUnmatched(t *testing.T) {
	al := &Alignment{BToA: map[uint64]uint64{10: 5}}
	if a, ok := al.Translate(10); !ok || a != 5 {
		t.Errorf("Translate(10) = (%d,%v)", a, ok)
	}
	if a, ok := al.Translate(99); ok || a != 99 {
		t.Errorf("Translate(99) = (%d,%v), want identity,false", a, ok)
	}
}

func TestMatchedFractionEmptyGraph(t *testing.T) {
	al := &Alignment{BToA: map[uint64]uint64{}}
	if f := al.MatchedFraction(NewGraph()); f != 0 {
		t.Errorf("MatchedFraction(empty) = %v", f)
	}
}

// Randomised property: alignment of a randomly shifted structured graph
// recovers a majority of nodes at the right offset.
func TestAlignRandomisedShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		chains := make([]int, 5+rng.Intn(4))
		for i := range chains {
			chains[i] = 2 + i + rng.Intn(2) // distinct-ish lengths
		}
		benign := chainGraph(0x400000, chains)
		delta := uint64(0x800 * (1 + rng.Intn(8)))
		shifted := shiftGraph(benign, 0, delta)
		al := AlignGraphs(benign, shifted)
		if len(al.Offsets) == 0 || al.Offsets[0] != int64(delta) {
			t.Fatalf("trial %d: offsets %v, want leading %#x", trial, al.Offsets, delta)
		}
		if f := al.MatchedFraction(shifted); f < 0.7 {
			t.Fatalf("trial %d: matched fraction %.2f", trial, f)
		}
	}
}
