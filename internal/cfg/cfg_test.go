package cfg

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/appsim"
	"repro/internal/partition"
	"repro/internal/trace"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("new graph not empty")
	}
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate
	g.AddEdge(2, 3)
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("HasEdge wrong")
	}
	if !g.HasNode(3) || g.HasNode(4) {
		t.Error("HasNode wrong")
	}
	if got := g.Nodes(); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Errorf("Nodes = %v", got)
	}
	if got := g.Successors(1); !reflect.DeepEqual(got, []uint64{2}) {
		t.Errorf("Successors(1) = %v", got)
	}
	if got := g.Successors(99); len(got) != 0 {
		t.Errorf("Successors(99) = %v, want empty", got)
	}
	edges := g.Edges()
	if !reflect.DeepEqual(edges, []Edge{{1, 2}, {2, 3}}) {
		t.Errorf("Edges = %v", edges)
	}
}

func TestReachable(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(5, 6)
	tests := []struct {
		from, to uint64
		want     bool
	}{
		{1, 2, true},
		{1, 4, true},  // transitive
		{4, 1, false}, // wrong direction
		{1, 6, false}, // different component
		{1, 1, false}, // needs a cycle
		{99, 1, false},
		{1, 99, false},
	}
	for _, tt := range tests {
		if got := g.Reachable(tt.from, tt.to); got != tt.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestReachableCycleSafe(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1) // cycle
	g.AddEdge(2, 3)
	if !g.Reachable(1, 1) {
		t.Error("Reachable(1,1) via cycle = false")
	}
	if !g.Reachable(1, 3) {
		t.Error("Reachable(1,3) = false")
	}
	if g.Reachable(3, 1) {
		t.Error("Reachable(3,1) = true")
	}
}

// Property: Reachable agrees with a reference BFS on random graphs.
func TestReachablePropertyQuick(t *testing.T) {
	ref := func(g *Graph, start, end uint64) bool {
		seen := map[uint64]bool{}
		queue := g.Successors(start)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur == end {
				return true
			}
			if seen[cur] {
				continue
			}
			seen[cur] = true
			queue = append(queue, g.Successors(cur)...)
		}
		return false
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 2 + rng.Intn(12)
		for e := 0; e < rng.Intn(30); e++ {
			g.AddEdge(uint64(rng.Intn(n)), uint64(rng.Intn(n)))
		}
		for trial := 0; trial < 20; trial++ {
			a, b := uint64(rng.Intn(n)), uint64(rng.Intn(n))
			if g.Reachable(a, b) != ref(g, a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(3, 2) // same component via shared node
	g.AddEdge(10, 11)
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []uint64{1, 2, 3}) {
		t.Errorf("largest component = %v, want [1 2 3]", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []uint64{10, 11}) {
		t.Errorf("second component = %v, want [10 11]", comps[1])
	}
}

func TestDensityArraySortedDistinct(t *testing.T) {
	g := NewGraph()
	g.AddEdge(5, 1)
	g.AddEdge(1, 5)
	g.AddEdge(5, 9)
	da := g.DensityArray()
	if !reflect.DeepEqual(da, []uint64{1, 5, 9}) {
		t.Errorf("DensityArray = %v, want [1 5 9]", da)
	}
}

func TestDOT(t *testing.T) {
	g := NewGraph()
	g.AddEdge(0x10, 0x20)
	dot := g.DOT("test", nil)
	if !strings.Contains(dot, `"0x10" -> "0x20"`) {
		t.Errorf("DOT missing edge:\n%s", dot)
	}
	named := g.DOT("test", func(a uint64) string {
		if a == 0x10 {
			return "main"
		}
		return ""
	})
	if !strings.Contains(named, `"main" -> "0x20"`) {
		t.Errorf("DOT resolve not applied:\n%s", named)
	}
}

func TestDiffGraphs(t *testing.T) {
	a := NewGraph()
	a.AddEdge(1, 2)
	a.AddEdge(2, 3)
	b := NewGraph()
	b.AddEdge(1, 2)
	b.AddEdge(7, 8)
	d := DiffGraphs(a, b)
	if !reflect.DeepEqual(d.Common, []Edge{{1, 2}}) {
		t.Errorf("Common = %v", d.Common)
	}
	if !reflect.DeepEqual(d.OnlyA, []Edge{{2, 3}}) {
		t.Errorf("OnlyA = %v", d.OnlyA)
	}
	if !reflect.DeepEqual(d.OnlyB, []Edge{{7, 8}}) {
		t.Errorf("OnlyB = %v", d.OnlyB)
	}
}

// partEvent builds a partitioned event with the given app-stack addresses.
func partEvent(seq int, addrs ...uint64) partition.Event {
	e := partition.Event{Seq: seq, Type: trace.EventFileRead}
	for _, a := range addrs {
		e.AppTrace = append(e.AppTrace, trace.Frame{Addr: a})
	}
	return e
}

// TestInferPaperFigure3 reproduces the paper's Figure 3: Event 1 walks
// Addr_1..Addr_5; Event 2 diverges after Addr_3, invoking Addr_6, Addr_7.
// The implicit edge is Addr_4 -> Addr_6.
func TestInferPaperFigure3(t *testing.T) {
	log := &partition.Log{Events: []partition.Event{
		partEvent(0, 1, 2, 3, 4, 5),
		partEvent(1, 1, 2, 3, 6, 7),
	}}
	inf, err := Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	g := inf.Graph
	wantExplicit := []Edge{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 6}, {6, 7}}
	for _, e := range wantExplicit {
		if !g.HasEdge(e.From, e.To) {
			t.Errorf("missing explicit edge %v", e)
		}
	}
	if !g.HasEdge(4, 6) {
		t.Error("missing implicit edge 4 -> 6")
	}
	if g.NumEdges() != len(wantExplicit)+1 {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), len(wantExplicit)+1)
	}
	if inf.ExplicitEdges != len(wantExplicit) || inf.ImplicitEdges != 1 {
		t.Errorf("edge counts = (%d explicit, %d implicit), want (%d, 1)",
			inf.ExplicitEdges, inf.ImplicitEdges, len(wantExplicit))
	}
}

func TestInferEventsByEdge(t *testing.T) {
	log := &partition.Log{Events: []partition.Event{
		partEvent(0, 1, 2),
		partEvent(1, 1, 3),
		partEvent(2, 1, 2),
	}}
	inf, err := Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	// Edge (1,2) contributed by events 0 and 2.
	if got := inf.EventsByEdge[Edge{1, 2}]; !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("EventsByEdge[1->2] = %v, want [0 2]", got)
	}
	// Implicit edge (2,3) attributed to event 1.
	if got := inf.EventsByEdge[Edge{2, 3}]; !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("EventsByEdge[2->3] = %v, want [1]", got)
	}
	// Implicit edge (3,2) attributed to event 2.
	if got := inf.EventsByEdge[Edge{3, 2}]; !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("EventsByEdge[3->2] = %v, want [2]", got)
	}
}

func TestInferPrefixStacksNoImplicitEdge(t *testing.T) {
	// Second stack is a strict prefix of the first: no divergent pair.
	log := &partition.Log{Events: []partition.Event{
		partEvent(0, 1, 2, 3),
		partEvent(1, 1, 2),
	}}
	inf, err := Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	if inf.ImplicitEdges != 0 {
		t.Errorf("ImplicitEdges = %d, want 0", inf.ImplicitEdges)
	}
}

func TestInferSkipsEmptyStacks(t *testing.T) {
	log := &partition.Log{Events: []partition.Event{
		partEvent(0, 1, 2),
		partEvent(1), // stackless
		partEvent(2, 1, 3),
	}}
	inf, err := Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	if inf.SkippedEvents != 1 {
		t.Errorf("SkippedEvents = %d, want 1", inf.SkippedEvents)
	}
	// The stackless event must not break adjacency: implicit edge 2->3
	// still connects events 0 and 2.
	if !inf.Graph.HasEdge(2, 3) {
		t.Error("implicit edge across stackless event missing")
	}
}

func TestInferSingleFrameStacks(t *testing.T) {
	log := &partition.Log{Events: []partition.Event{
		partEvent(0, 7),
		partEvent(1, 8),
	}}
	inf, err := Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	// No explicit edges (single frames), one implicit edge 7->8.
	if inf.ExplicitEdges != 0 || inf.ImplicitEdges != 1 || !inf.Graph.HasEdge(7, 8) {
		t.Errorf("got explicit=%d implicit=%d", inf.ExplicitEdges, inf.ImplicitEdges)
	}
}

func TestInferNilLog(t *testing.T) {
	if _, err := Infer(nil); err == nil {
		t.Error("Infer(nil) succeeded")
	}
}

// TestInferSeparatesPayloadComponent checks the Figure 4 phenomenon on
// simulated data: the mixed CFG of an offline-infected process contains
// the benign subgraph plus payload nodes beyond the benign address range.
func TestInferSeparatesPayloadComponent(t *testing.T) {
	payload := appsim.ReverseTCPProfile()
	proc, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	benignLog, err := proc.GenerateLog(appsim.GenConfig{Seed: 1, Events: 2000, PID: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A clean process for the benign CFG (no payload events at all).
	clean, err := appsim.NewProcess(appsim.VimProfile(), nil, appsim.MethodNone)
	if err != nil {
		t.Fatal(err)
	}
	cleanLog, err := clean.GenerateLog(appsim.GenConfig{Seed: 2, Events: 2000, PID: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = benignLog

	mixedLog, err := proc.GenerateLog(appsim.GenConfig{Seed: 3, Events: 2000, PayloadFraction: 0.4, PID: 3})
	if err != nil {
		t.Fatal(err)
	}

	cleanPart, err := partition.Split(cleanLog)
	if err != nil {
		t.Fatal(err)
	}
	mixedPart, err := partition.Split(mixedLog)
	if err != nil {
		t.Fatal(err)
	}
	benign, err := Infer(cleanPart)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Infer(mixedPart)
	if err != nil {
		t.Fatal(err)
	}

	_, bHi := proc.BenignRange()
	var payloadNodes, benignNodes int
	for _, n := range mixed.Graph.Nodes() {
		if n >= bHi {
			payloadNodes++
		} else {
			benignNodes++
		}
	}
	if payloadNodes == 0 {
		t.Fatal("mixed CFG has no payload nodes")
	}
	if benignNodes == 0 {
		t.Fatal("mixed CFG has no benign nodes")
	}
	// The benign CFG must contain no payload-range nodes.
	for _, n := range benign.Graph.Nodes() {
		if n >= bHi {
			t.Fatalf("benign CFG contains payload-range node 0x%x", n)
		}
	}
	// Most mixed-CFG benign edges also occur in the clean CFG.
	d := DiffGraphs(benign.Graph, mixed.Graph)
	if len(d.Common) == 0 {
		t.Error("no common edges between benign and mixed CFGs")
	}
}
