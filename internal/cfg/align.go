package cfg

import (
	"sort"
)

// This file implements the paper's §VI-A future-work extension: aligning
// CFGs under address shifts. A source-level trojan — malicious code added
// to the application's source before recompilation — moves every benign
// function, so exact address matching between the benign CFG and a mixed
// CFG fails even though the benign subgraph's *structure* is unchanged.
// AlignGraphs identifies pivotal nodes by structural fingerprint, votes on
// candidate address offsets, and produces a node correspondence that lets
// weight assessment run in the benign CFG's coordinate system.

// Alignment is a correspondence from nodes of graph B (e.g. a mixed CFG)
// to nodes of graph A (the benign CFG).
type Alignment struct {
	// BToA maps matched B-node addresses to their A counterparts.
	BToA map[uint64]uint64
	// Offsets holds the accepted address shifts (B minus A), most voted
	// first.
	Offsets []int64
	// Pivots counts the unique-fingerprint node pairs that anchored the
	// alignment.
	Pivots int
}

// MatchedFraction reports the share of B's nodes that were aligned.
func (al *Alignment) MatchedFraction(b *Graph) float64 {
	if b.NumNodes() == 0 {
		return 0
	}
	return float64(len(al.BToA)) / float64(b.NumNodes())
}

// Translate maps a B address to A coordinates; unmatched addresses return
// themselves with ok=false.
func (al *Alignment) Translate(addr uint64) (uint64, bool) {
	a, ok := al.BToA[addr]
	if !ok {
		return addr, false
	}
	return a, true
}

// wlRounds is how many Weisfeiler-Leman refinement rounds structural
// colouring runs; enough for nodes to absorb the topology of their
// wlRounds-hop neighbourhood in both edge directions.
const wlRounds = 6

// wlColorLevels assigns every node a structural colour per refinement
// level by Weisfeiler-Leman refinement: starting from (out-degree,
// in-degree), each round rehashes a node's colour together with the sorted
// colours of its successors and predecessors. Early levels capture coarse
// structure robust to noise edges; later levels are highly discriminative.
// Colours unique within both graphs at any level identify the paper's
// "pivotal nodes".
func wlColorLevels(g *Graph) []map[uint64]uint64 {
	nodes := g.Nodes()
	pred := make(map[uint64][]uint64, len(nodes))
	for _, e := range g.Edges() {
		pred[e.To] = append(pred[e.To], e.From)
	}
	colors := make(map[uint64]uint64, len(nodes))
	for _, n := range nodes {
		colors[n] = hashPair(uint64(len(g.Successors(n))), uint64(len(pred[n])))
	}
	levels := []map[uint64]uint64{colors}
	for round := 0; round < wlRounds; round++ {
		next := make(map[uint64]uint64, len(nodes))
		for _, n := range nodes {
			h := colors[n]
			h = hashPair(h, hashMultiset(colors, g.Successors(n)))
			h = hashPair(h, hashMultiset(colors, pred[n])+1)
			next[n] = h
		}
		colors = next
		levels = append(levels, colors)
	}
	return levels
}

// hashPair mixes two words (FNV-style).
func hashPair(a, b uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range [2]uint64{a, b} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// hashMultiset order-independently hashes the colours of the given nodes.
func hashMultiset(colors map[uint64]uint64, nodes []uint64) uint64 {
	cs := make([]uint64, len(nodes))
	for i, n := range nodes {
		cs[i] = colors[n]
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	h := uint64(len(cs)) + 0x9e3779b97f4a7c15
	for _, c := range cs {
		h = hashPair(h, c)
	}
	return h
}

// uniqueByColor inverts a colour map, keeping only colours held by exactly
// one node.
func uniqueByColor(colors map[uint64]uint64) map[uint64]uint64 {
	count := make(map[uint64]int, len(colors))
	for _, c := range colors {
		count[c]++
	}
	out := make(map[uint64]uint64)
	for n, c := range colors {
		if count[c] == 1 {
			out[c] = n
		}
	}
	return out
}

// maxAlignmentOffsets bounds how many distinct shifts the aligner accepts
// (a recompiled binary shifts code in a handful of contiguous runs).
const maxAlignmentOffsets = 4

// AlignGraphs aligns graph b onto graph a under piecewise-constant address
// shifts:
//
//  1. Weisfeiler-Leman colour refinement identifies pivot pairs — nodes
//     with structurally unique colours in both graphs at any refinement
//     level;
//  2. candidate shifts are scored by greedy overlap correlation (how many
//     unexplained b nodes land on a nodes, with bonuses for colour
//     agreement and pivot pairs), accepting up to maxAlignmentOffsets
//     shifts;
//  3. every b node whose address minus an accepted shift hits an a node
//     with compatible degree structure is aligned.
func AlignGraphs(a, b *Graph) *Alignment {
	al := &Alignment{BToA: make(map[uint64]uint64)}
	levelsA := wlColorLevels(a)
	levelsB := wlColorLevels(b)

	// Count unique-colour pivot pairs across refinement levels (reported
	// for diagnostics; the paper's "pivotal nodes"). Their offsets seed
	// the bonus scoring below.
	pivotPairs := make(map[[2]uint64]bool)
	for lvl := range levelsA {
		uniqueA := uniqueByColor(levelsA[lvl])
		uniqueB := uniqueByColor(levelsB[lvl])
		for c, bn := range uniqueB {
			if an, ok := uniqueA[c]; ok && !pivotPairs[[2]uint64{bn, an}] {
				pivotPairs[[2]uint64{bn, an}] = true
				al.Pivots++
			}
		}
	}

	// Offset discovery by greedy overlap correlation: score every
	// candidate shift δ by how many (still unmatched) b nodes land on a
	// nodes under it, with a bonus when the superimposed nodes share a
	// coarse structural colour or form a pivot pair. Accept the best
	// offset, remove the b nodes it explains, and repeat — recompiled
	// binaries shift code in a handful of contiguous runs
	// (piecewise-constant δ).
	aNodes := make(map[uint64]bool, a.NumNodes())
	for _, n := range a.Nodes() {
		aNodes[n] = true
	}
	remaining := make(map[uint64]bool, b.NumNodes())
	for _, n := range b.Nodes() {
		remaining[n] = true
	}
	colorBonus := func(bn, an uint64) float64 {
		var bonus float64
		if pivotPairs[[2]uint64{bn, an}] {
			bonus += 2
		}
		// Level-1 colour agreement: one refinement round of structure.
		if levelsA[1][an] == levelsB[1][bn] {
			bonus++
		}
		return bonus
	}
	minExplained := 3
	if n := a.NumNodes() / 5; n > minExplained {
		minExplained = n
	}
	for len(al.Offsets) < maxAlignmentOffsets && len(remaining) > 0 {
		scores := make(map[int64]float64)
		for bn := range remaining {
			for an := range aNodes {
				scores[int64(bn)-int64(an)]++
			}
		}
		// Keep only plausible offsets, then refine with colour bonuses.
		type cand struct {
			off   int64
			score float64
		}
		var best cand
		bestSet := false
		for off, base := range scores {
			if int(base) < minExplained {
				continue
			}
			score := base
			for bn := range remaining {
				c := int64(bn) - off
				if c >= 0 && aNodes[uint64(c)] {
					score += colorBonus(bn, uint64(c))
				}
			}
			if !bestSet || score > best.score || (score == best.score && abs64(off) < abs64(best.off)) {
				best = cand{off, score}
				bestSet = true
			}
		}
		if !bestSet {
			break
		}
		al.Offsets = append(al.Offsets, best.off)
		for bn := range remaining {
			c := int64(bn) - best.off
			if c >= 0 && aNodes[uint64(c)] {
				delete(remaining, bn)
			}
		}
	}

	// Match every b node through the accepted offsets, best offset first.
	// Compatibility uses out-degrees, not full colours: the mixed graph
	// sees extra edges (payload hooks, implicit paths), so exact colour
	// equality would be too strict away from pivots.
	for _, bn := range b.Nodes() {
		outB := len(b.Successors(bn))
		for _, off := range al.Offsets {
			cand := int64(bn) - off
			if cand < 0 {
				continue
			}
			an := uint64(cand)
			if !a.HasNode(an) {
				continue
			}
			outA := len(a.Successors(an))
			if outA <= outB+1 && outB <= outA+3 {
				al.BToA[bn] = an
				break
			}
		}
	}
	return al
}

// TranslateGraph rewrites graph b into a's coordinate system using the
// alignment; unmatched nodes keep their addresses. The edge set is
// preserved (possibly merging parallel edges).
func (al *Alignment) TranslateGraph(b *Graph) *Graph {
	out := NewGraph()
	for _, e := range b.Edges() {
		from, _ := al.Translate(e.From)
		to, _ := al.Translate(e.To)
		out.AddEdge(from, to)
	}
	return out
}

// abs64 returns |x|.
func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
