package cfg

import (
	"errors"

	"repro/internal/partition"
	"repro/internal/telemetry"
)

// CFG telemetry: size of the last inferred graph and how much of the log
// could not contribute (stackless events carry no application frames).
var (
	mInferRuns     = telemetry.NewCounter("cfg_infer_runs_total", "CFG inference runs")
	mInferSkipped  = telemetry.NewCounter("cfg_skipped_events_total", "events without application frames, skipped by CFG inference")
	mInferNodes    = telemetry.NewGauge("cfg_nodes", "nodes in the last inferred CFG")
	mInferExplicit = telemetry.NewGauge("cfg_explicit_edges", "explicit (within-stack) edges in the last inferred CFG")
	mInferImplicit = telemetry.NewGauge("cfg_implicit_edges", "implicit (branch-point) edges in the last inferred CFG")
)

// Inference is the output of CFG inference over one partitioned log: the
// graph plus the reverse mapping from each inferred edge to the events
// whose stack traces produced it (the paper's memap), which the weight
// assessment uses to push path weights back onto events.
type Inference struct {
	Graph *Graph
	// EventsByEdge maps each edge to the ordinals (Seq) of the events
	// that contributed it, in first-contribution order without
	// duplicates.
	EventsByEdge map[Edge][]int
	// Explicit marks edges observed at least once as within-stack
	// function invocations; edges absent from this set were only ever
	// inferred from adjacent-stack branch points (implicit paths).
	Explicit map[Edge]bool
	// ExplicitEdges and ImplicitEdges count how many distinct edges came
	// from within-stack function invocations vs. adjacent-stack branch
	// points (an edge seen both ways counts as explicit).
	ExplicitEdges int
	ImplicitEdges int
	// SkippedEvents counts events without application frames (no stack
	// walk), which contribute nothing to the CFG.
	SkippedEvents int
}

// Infer derives the application CFG from the application stack traces of
// the log, implementing Algorithm 1 of the paper:
//
//   - explicit paths: for each event, an edge between every pair of
//     adjacent frames of its application stack trace (the function
//     invocations that led to the event);
//   - implicit paths: for each pair of adjacent events, an edge between
//     the frames at the first index where their stack traces diverge,
//     capturing control flow between the two stacks' branch point.
func Infer(log *partition.Log) (*Inference, error) {
	if log == nil {
		return nil, errors.New("cfg: nil log")
	}
	inf := &Inference{
		Graph:        NewGraph(),
		EventsByEdge: make(map[Edge][]int),
		Explicit:     make(map[Edge]bool),
	}
	addEdge := func(from, to uint64, seq int, implicit bool) {
		e := Edge{From: from, To: to}
		if !inf.Graph.HasEdge(from, to) {
			if implicit {
				inf.ImplicitEdges++
			} else {
				inf.ExplicitEdges++
			}
		} else if !implicit && !inf.Explicit[e] {
			// Promoted from implicit-only to explicit.
			inf.ImplicitEdges--
			inf.ExplicitEdges++
		}
		if !implicit {
			inf.Explicit[e] = true
		}
		inf.Graph.AddEdge(from, to)
		evs := inf.EventsByEdge[e]
		if len(evs) == 0 || evs[len(evs)-1] != seq {
			inf.EventsByEdge[e] = append(evs, seq)
		}
	}

	var prev []uint64
	for i := range log.Events {
		e := &log.Events[i]
		curr := e.AppTrace.Addrs()
		if len(curr) == 0 {
			inf.SkippedEvents++
			continue
		}
		// Implicit path: edge at the branch point between the previous
		// and current stack traces (BRANCH_POINT is the common prefix
		// length). When one trace is a prefix of the other there is no
		// divergent pair to connect.
		if prev != nil {
			idx := commonPrefixLen(prev, curr)
			if idx < len(prev) && idx < len(curr) {
				addEdge(prev[idx], curr[idx], e.Seq, true)
			}
		}
		// Explicit paths: the function invocations within this stack.
		for j := 0; j+1 < len(curr); j++ {
			addEdge(curr[j], curr[j+1], e.Seq, false)
		}
		prev = curr
	}
	mInferRuns.Inc()
	mInferSkipped.Add(uint64(inf.SkippedEvents))
	mInferNodes.Set(float64(inf.Graph.NumNodes()))
	mInferExplicit.Set(float64(inf.ExplicitEdges))
	mInferImplicit.Set(float64(inf.ImplicitEdges))
	return inf, nil
}

// commonPrefixLen returns the length of the longest common prefix of a
// and b.
func commonPrefixLen(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
