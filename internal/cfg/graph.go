// Package cfg implements the paper's Control Flow Graph Inference Module:
// it derives an (incomplete but structurally faithful) control flow graph
// of the application purely from the application stack traces in the
// system event log — Algorithm 1 of the paper — plus the graph operations
// the weight-assessment stage needs (reachability, density arrays) and
// tooling for comparison and DOT export (Figure 4).
package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is one control-flow edge between two code addresses.
type Edge struct {
	From, To uint64
}

// Graph is a directed graph over code addresses.
type Graph struct {
	succ map[uint64]map[uint64]struct{}
	// numEdges caches the edge count.
	numEdges int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{succ: make(map[uint64]map[uint64]struct{})}
}

// AddEdge inserts the edge from→to; duplicates are ignored. Both endpoints
// become graph nodes.
func (g *Graph) AddEdge(from, to uint64) {
	set, ok := g.succ[from]
	if !ok {
		set = make(map[uint64]struct{})
		g.succ[from] = set
	}
	if _, dup := set[to]; dup {
		return
	}
	set[to] = struct{}{}
	g.numEdges++
	// Ensure the target is present as a node even if it has no
	// successors.
	if _, ok := g.succ[to]; !ok {
		g.succ[to] = make(map[uint64]struct{})
	}
}

// HasEdge reports whether the direct edge from→to exists.
func (g *Graph) HasEdge(from, to uint64) bool {
	_, ok := g.succ[from][to]
	return ok
}

// HasNode reports whether addr appears in the graph.
func (g *Graph) HasNode(addr uint64) bool {
	_, ok := g.succ[addr]
	return ok
}

// NumNodes returns the number of distinct addresses in the graph.
func (g *Graph) NumNodes() int { return len(g.succ) }

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Nodes returns every node address in ascending order.
func (g *Graph) Nodes() []uint64 {
	out := make([]uint64, 0, len(g.succ))
	for a := range g.succ {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Successors returns the direct successors of addr in ascending order.
func (g *Graph) Successors(addr uint64) []uint64 {
	set := g.succ[addr]
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns every edge, ordered by (From, To).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for from, set := range g.succ {
		for to := range set {
			out = append(out, Edge{From: from, To: to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Reachable reports whether end can be reached from start along one or
// more edges (the paper's CHECK_CFG: start == end requires a cycle). It is
// cycle-safe, unlike the paper's pseudo-code.
func (g *Graph) Reachable(start, end uint64) bool {
	firsts, ok := g.succ[start]
	if !ok {
		return false
	}
	visited := make(map[uint64]struct{}, len(g.succ))
	stack := make([]uint64, 0, len(firsts))
	for a := range firsts {
		stack = append(stack, a)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == end {
			return true
		}
		if _, seen := visited[cur]; seen {
			continue
		}
		visited[cur] = struct{}{}
		for next := range g.succ[cur] {
			if _, seen := visited[next]; !seen {
				stack = append(stack, next)
			}
		}
	}
	return false
}

// DensityArray returns the sorted distinct addresses of all graph nodes —
// the paper's density array over the benign CFG, used to estimate weights
// for paths absent from it. (The paper's pseudo-code inserts endpoints
// with duplicates; deduplicating is required for the weight formula's
// neighbour gaps to be non-zero.)
func (g *Graph) DensityArray() []uint64 { return g.Nodes() }

// WeaklyConnectedComponents returns the node sets of the graph's weakly
// connected components, largest first. The paper's Figure 4 intuition —
// payload code forms its own subgraph — shows up as separate components.
func (g *Graph) WeaklyConnectedComponents() [][]uint64 {
	// Undirected adjacency.
	adj := make(map[uint64][]uint64, len(g.succ))
	for from, set := range g.succ {
		for to := range set {
			adj[from] = append(adj[from], to)
			adj[to] = append(adj[to], from)
		}
	}
	visited := make(map[uint64]bool, len(g.succ))
	var comps [][]uint64
	for _, start := range g.Nodes() {
		if visited[start] {
			continue
		}
		var comp []uint64
		stack := []uint64{start}
		visited[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for _, next := range adj[cur] {
				if !visited[next] {
					visited[next] = true
					stack = append(stack, next)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// DOT renders the graph in Graphviz format. resolve, when non-nil, maps
// addresses to display labels; nil falls back to hex addresses.
func (g *Graph) DOT(name string, resolve func(uint64) string) string {
	label := func(a uint64) string {
		if resolve != nil {
			if s := resolve(a); s != "" {
				return s
			}
		}
		return fmt.Sprintf("0x%x", a)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", label(e.From), label(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}

// Diff summarises the structural comparison of two graphs.
type Diff struct {
	// Common, OnlyA and OnlyB partition the union of the two edge sets.
	Common []Edge
	OnlyA  []Edge
	OnlyB  []Edge
}

// DiffGraphs compares the edges of a and b (e.g. the benign and the mixed
// CFG of Figure 4).
func DiffGraphs(a, b *Graph) Diff {
	var d Diff
	for _, e := range a.Edges() {
		if b.HasEdge(e.From, e.To) {
			d.Common = append(d.Common, e)
		} else {
			d.OnlyA = append(d.OnlyA, e)
		}
	}
	for _, e := range b.Edges() {
		if !a.HasEdge(e.From, e.To) {
			d.OnlyB = append(d.OnlyB, e)
		}
	}
	return d
}
