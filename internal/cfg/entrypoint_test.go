package cfg

import (
	"testing"

	"repro/internal/appsim"
	"repro/internal/partition"
)

func TestEntryPointsMicro(t *testing.T) {
	// Benign CFG knows 1 -> 2 -> 3.
	benign := NewGraph()
	benign.AddEdge(1, 2)
	benign.AddEdge(2, 3)

	// Mixed log: one stack walks through the hook (2) into payload code
	// (100); plus benign activity and an adjacent-event implicit edge to
	// the payload that must NOT count as an entry point.
	log := &partition.Log{Events: []partition.Event{
		partEvent(0, 1, 2, 3),
		partEvent(1, 1, 2, 100, 101), // explicit detour through 2 into 100
		partEvent(2, 100, 102),       // payload activity
		partEvent(3, 1, 2, 3),        // back to benign: implicit 100->1 edge
	}}
	inf, err := Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	eps := EntryPoints(benign, inf)
	if len(eps) != 1 {
		t.Fatalf("EntryPoints = %v, want exactly the hook edge", eps)
	}
	if eps[0].Edge != (Edge{From: 2, To: 100}) {
		t.Errorf("entry edge = %v, want 2 -> 100", eps[0].Edge)
	}
	if len(eps[0].Events) == 0 || eps[0].Events[0] != 1 {
		t.Errorf("entry events = %v, want first observation at event 1", eps[0].Events)
	}
}

func TestEntryPointsIgnoresImplicitCrossEdges(t *testing.T) {
	benign := NewGraph()
	benign.AddEdge(1, 2)
	// Adjacent events with divergence at index 0: implicit edges between
	// benign and payload roots in both directions, but no explicit
	// invocation crossing the boundary.
	log := &partition.Log{Events: []partition.Event{
		partEvent(0, 1, 2),
		partEvent(1, 100, 101),
		partEvent(2, 1, 2),
	}}
	inf, err := Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	if eps := EntryPoints(benign, inf); len(eps) != 0 {
		t.Errorf("EntryPoints = %v, want none (only implicit crossings)", eps)
	}
}

// TestEntryPointsSimulatedTrojan backtracks the detour of an
// offline-infected process to the preamble event.
func TestEntryPointsSimulatedTrojan(t *testing.T) {
	payload := appsim.ReverseTCPProfile()
	victim, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := appsim.NewProcess(appsim.VimProfile(), nil, appsim.MethodNone)
	if err != nil {
		t.Fatal(err)
	}
	benignLog, err := clean.GenerateLog(appsim.GenConfig{Seed: 1, Events: 3000, PID: 1})
	if err != nil {
		t.Fatal(err)
	}
	mixedLog, err := victim.GenerateLog(appsim.GenConfig{Seed: 2, Events: 3000, PayloadFraction: 0.4, PID: 2})
	if err != nil {
		t.Fatal(err)
	}
	bp, err := partition.Split(benignLog)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := partition.Split(mixedLog)
	if err != nil {
		t.Fatal(err)
	}
	bInf, err := Infer(bp)
	if err != nil {
		t.Fatal(err)
	}
	mInf, err := Infer(mp)
	if err != nil {
		t.Fatal(err)
	}
	eps := EntryPoints(bInf.Graph, mInf)
	if len(eps) == 0 {
		t.Fatal("no entry points found for an offline-infected process")
	}
	// The earliest entry point must be the trigger preamble: event 0,
	// crossing from benign code into the appended section.
	first := eps[0]
	if first.Events[0] != 0 {
		t.Errorf("earliest entry at event %d, want the preamble (0)", first.Events[0])
	}
	bLo, bHi := victim.BenignRange()
	if first.Edge.From < bLo || first.Edge.From >= bHi {
		t.Errorf("entry source 0x%x outside benign code range", first.Edge.From)
	}
	pLo, pHi, _ := victim.PayloadRange()
	if first.Edge.To < pLo || first.Edge.To >= pHi {
		t.Errorf("entry target 0x%x outside payload range", first.Edge.To)
	}
}
