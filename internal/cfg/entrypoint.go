package cfg

import "sort"

// This file implements the threat model's backtracking goal (§II-A): once
// anomalous behaviour is detected, trace back to the attack's entry point
// — the control transfer where benign code first handed execution to the
// payload (a detour hook in a trojaned binary, or the thread bootstrap of
// injected code).

// EntryPoint is one candidate attack entry: an explicit control transfer
// from code the benign CFG knows into code it does not.
type EntryPoint struct {
	// Edge is the crossing control-flow edge (benign-known From,
	// unknown To).
	Edge Edge
	// Events lists the ordinals of the events whose stack walks recorded
	// the transfer, in first-observation order. The first entry is the
	// earliest observable trace of the attack.
	Events []int
}

// EntryPoints backtracks attack entry points in a mixed-log inference:
// explicit edges (observed as real function invocations within a stack
// walk, not inferred from event adjacency) whose source the benign CFG
// contains and whose target it does not. Targets inside the benign CFG's
// address span are excluded by the same density heuristic Algorithm 2
// uses: code between known-benign functions is most likely unobserved
// benign functionality, not a payload. Results are ordered by earliest
// contributing event.
func EntryPoints(benign *Graph, mixed *Inference) []EntryPoint {
	density := benign.DensityArray()
	inSpan := func(addr uint64) bool {
		return len(density) >= 2 && addr >= density[0] && addr <= density[len(density)-1]
	}
	var out []EntryPoint
	for e := range mixed.Explicit {
		if !benign.HasNode(e.From) || benign.HasNode(e.To) || inSpan(e.To) {
			continue
		}
		evs := mixed.EventsByEdge[e]
		cp := make([]int, len(evs))
		copy(cp, evs)
		out = append(out, EntryPoint{Edge: e, Events: cp})
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := firstEvent(out[i]), firstEvent(out[j])
		if fi != fj {
			return fi < fj
		}
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	return out
}

func firstEvent(ep EntryPoint) int {
	if len(ep.Events) == 0 {
		return int(^uint(0) >> 1)
	}
	return ep.Events[0]
}
