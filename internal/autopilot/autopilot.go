// Package autopilot closes the serve→retrain→shadow→promote loop: a
// supervised controller that watches serving traffic, retrains off the
// request path when enough new evidence has accumulated, publishes the
// candidate into the model registry with provenance, shadow-evaluates
// it as a canary against live traffic, and promotes it only when the
// registry's fail-closed gate approves.
//
// The controller is crash-safe by construction. Every state transition
// is recorded in an append-only journal (autopilot.jsonl under the
// state directory) using written-last commit: the side effect lands
// first, the journal admits it second. A controller killed at any point
// resumes exactly where it stopped — the journal names the last
// completed transition, and every remaining stage is idempotent
// (publish is content-addressed, promotion checks the current pointer
// before repointing, reload converges on the pointer). Transient stage
// failures are retried with exponential backoff and deterministic
// jitter under a per-stage budget; cycles that still fail feed a
// circuit breaker that, after Config.BreakerThreshold consecutive
// failures, stops retraining entirely and degrades to champion-only
// serving until an operator resumes it (POST /v1/autopilot/resume).
//
// The package deliberately does not import internal/serve: the serving
// side is the small Serving interface, satisfied structurally by
// serve.Server, so the dependency points the same way as the data flow.
package autopilot

import (
	"context"
	"errors"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/registry"
	"repro/internal/telemetry"
)

// Serving is what the autopilot needs from the serving subsystem:
// traffic volume for the retrain trigger, shadow-canary control, and a
// model reload after promotion. serve.Server satisfies it.
type Serving interface {
	// TrafficStats reports cumulative scored verdict windows and how many
	// were malicious, since the serving process started.
	TrafficStats() (verdicts, malicious uint64)
	// StartShadow begins shadow evaluation of a registry entry against
	// live traffic.
	StartShadow(entry string) error
	// ShadowComparison snapshots the active shadow evaluation's
	// accumulated evidence; ok is false when none is running.
	ShadowComparison() (cmp registry.Comparison, ok bool)
	// StopShadow ends any active shadow evaluation, reporting whether
	// one was running.
	StopShadow() bool
	// Reload re-reads the registry's current entry for new sessions.
	Reload() error
}

// Trainer produces candidate model bundles. Train is called off the
// serving path and may be slow; it must honour ctx cancellation at
// least between major phases.
type Trainer interface {
	Train(ctx context.Context) (bundle []byte, info registry.TrainInfo, err error)
}

// TrainerFunc adapts a function to the Trainer interface.
type TrainerFunc func(ctx context.Context) ([]byte, registry.TrainInfo, error)

// Train implements Trainer.
func (f TrainerFunc) Train(ctx context.Context) ([]byte, registry.TrainInfo, error) {
	return f(ctx)
}

// Sentinel errors for cycle admission.
var (
	// ErrBusy: a cycle is already executing.
	ErrBusy = errors.New("autopilot: cycle already running")
	// ErrPaused: the controller is operator-paused.
	ErrPaused = errors.New("autopilot: paused")
	// ErrBreakerOpen: the circuit breaker has tripped; resume to reset.
	ErrBreakerOpen = errors.New("autopilot: circuit breaker open")
	// errStopped: the controller is shutting down mid-cycle.
	errStopped = errors.New("autopilot: stopped")
)

// Config parameterises a Controller. Store, Trainer and StateDir are
// mandatory; the zero value of every knob selects a production-safe
// default.
type Config struct {
	// Store is the model registry candidates are published into and
	// promoted through.
	Store *registry.Store
	// Trainer produces candidate bundles.
	Trainer Trainer
	// Gate is the promotion policy (zero value = registry defaults). The
	// controller also reads its effective MinEvents as the shadow
	// evidence target.
	Gate registry.Gate
	// StateDir holds the journal. A restarted controller pointed at the
	// same directory resumes any interrupted cycle.
	StateDir string
	// Interval is the trigger-check period (default 1m).
	Interval time.Duration
	// TriggerEvents is how many new verdict windows must accumulate
	// since the last cycle before retraining triggers (default 5000).
	TriggerEvents uint64
	// ShadowTimeout bounds how long a cycle waits for shadow evidence to
	// reach the gate's MinEvents before judging on what it has — the
	// gate fails closed on thin evidence (default 10m).
	ShadowTimeout time.Duration
	// ShadowPoll is the evidence polling period (default 250ms).
	ShadowPoll time.Duration
	// StageRetries is how many times a failed stage is retried beyond
	// its first attempt (default 2, so 3 attempts per stage).
	StageRetries int
	// BackoffBase and BackoffMax bound the exponential retry backoff
	// (defaults 500ms and 30s). Jitter is deterministic — a hash of
	// stage, cycle, attempt and Seed — so recovery schedules are
	// reproducible.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is how many consecutive failed cycles trip the
	// circuit breaker (default 3).
	BreakerThreshold int
	// Seed perturbs the deterministic backoff jitter.
	Seed int64
	// Logger receives operational logs (default slog.Default()).
	Logger *slog.Logger
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.TriggerEvents == 0 {
		c.TriggerEvents = 5000
	}
	if c.ShadowTimeout <= 0 {
		c.ShadowTimeout = 10 * time.Minute
	}
	if c.ShadowPoll <= 0 {
		c.ShadowPoll = 250 * time.Millisecond
	}
	if c.StageRetries < 0 {
		c.StageRetries = 0
	} else if c.StageRetries == 0 {
		c.StageRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// CycleCounts tallies completed cycles by outcome.
type CycleCounts struct {
	Started   int `json:"started"`
	Promoted  int `json:"promoted"`
	Rejected  int `json:"rejected"`
	Unchanged int `json:"unchanged"`
	Failed    int `json:"failed"`
}

// Status is the controller's externally visible state, the body of
// GET /v1/autopilot.
type Status struct {
	// Phase is what the controller is doing right now: idle, training,
	// publishing, shadowing, promoting, paused or breaker-open.
	Phase string `json:"phase"`
	// Paused and PauseReason report operator pause state.
	Paused      bool   `json:"paused"`
	PauseReason string `json:"pause_reason,omitempty"`
	// BreakerOpen reports the circuit breaker; ConsecutiveFailures is
	// how close it is to (or past) BreakerThreshold.
	BreakerOpen         bool `json:"breaker_open"`
	ConsecutiveFailures int  `json:"consecutive_failures"`
	BreakerThreshold    int  `json:"breaker_threshold"`
	// Cycle is the highest cycle number started so far.
	Cycle int `json:"cycle"`
	// Cycles tallies completed cycles by outcome.
	Cycles CycleCounts `json:"cycles"`
	// LastEntry and LastOutcome describe the most recent completed
	// cycle; LastError carries its failure, if any.
	LastEntry   string `json:"last_entry,omitempty"`
	LastOutcome string `json:"last_outcome,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	// TriggerEvents and SinceBaseline show retrain-trigger progress:
	// the next cycle starts when SinceBaseline reaches TriggerEvents.
	TriggerEvents uint64 `json:"trigger_events"`
	SinceBaseline uint64 `json:"verdicts_since_baseline"`
	// Resuming reports an interrupted cycle recovered from the journal
	// and not yet re-driven to completion.
	Resuming bool `json:"resuming,omitempty"`
}

// Controller is the retraining autopilot. Create with New, attach the
// serving side with Bind, then Start. Stop is graceful: an executing
// cycle finishes its current stage wait and aborts cleanly (the journal
// lets the next Start resume it).
type Controller struct {
	cfg Config
	jrn *journal

	mu         sync.Mutex
	srv        Serving
	started    bool
	phase      string
	running    bool
	paused     bool
	pauseRsn   string
	consecFail int
	breaker    bool
	nextCycle  int
	lastCycle  int
	baseline   uint64
	counts     CycleCounts
	lastEntry  string
	lastOut    string
	lastErr    string
	incomplete *resumePoint

	stop     chan struct{}
	done     chan struct{}
	kick     chan struct{}
	stopOnce sync.Once
	ctx      context.Context // cancelled by Stop; handed to the Trainer
	cancel   context.CancelFunc

	// cycleTrace is the executing cycle's trace ID, stamped on every
	// journal transition's flight entry so one trace follows a retrain
	// cycle end to end. Atomic because journalAppend runs both with and
	// without c.mu held.
	cycleTrace atomic.Pointer[string]
}

// journalAppend commits one journal transition and mirrors it into the
// telemetry flight recorder (kind "autopilot"), stamped with the
// executing cycle's trace ID when one is set.
func (c *Controller) journalAppend(rec Record) error {
	err := c.jrn.append(rec)
	var trace string
	if p := c.cycleTrace.Load(); p != nil {
		trace = *p
	}
	attrs := map[string]string{}
	if rec.Cycle != 0 {
		attrs["cycle"] = strconv.Itoa(rec.Cycle)
	}
	if rec.Entry != "" {
		attrs["entry"] = rec.Entry
	}
	if rec.Outcome != "" {
		attrs["outcome"] = rec.Outcome
	}
	if rec.Note != "" {
		attrs["note"] = rec.Note
	}
	if err != nil {
		attrs["journal_error"] = err.Error()
	}
	telemetry.RecordFlight(telemetry.FlightEntry{
		Kind: "autopilot", Name: rec.State, Trace: trace, Attrs: attrs,
	})
	return err
}

// New opens (or resumes) a controller over the journal in
// cfg.StateDir. The returned controller has recovered its pause state,
// breaker run-length, cycle numbering and any interrupted cycle, but
// runs nothing until Start (or RunCycle).
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("autopilot: Config.Store is required")
	}
	if cfg.Trainer == nil {
		return nil, errors.New("autopilot: Config.Trainer is required")
	}
	jrn, err := openJournal(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	r := jrn.analyze()
	c := &Controller{
		cfg:        cfg,
		jrn:        jrn,
		phase:      "idle",
		paused:     r.paused,
		pauseRsn:   r.pauseReason,
		consecFail: r.consecFailures,
		breaker:    r.consecFailures >= cfg.BreakerThreshold,
		nextCycle:  r.nextCycle,
		lastCycle:  r.nextCycle - 1,
		baseline:   r.baseline,
		counts:     r.counts,
		lastEntry:  r.lastEntry,
		lastOut:    r.lastOutcome,
		incomplete: r.incomplete,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		kick:       make(chan struct{}, 1),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	setGauge(mPausedGauge, c.paused)
	setGauge(mBreakerOpen, c.breaker)
	if c.incomplete != nil {
		cfg.Logger.Info("autopilot: journal holds an interrupted cycle",
			"cycle", c.incomplete.cycle, "state", c.incomplete.state, "entry", c.incomplete.entry)
	}
	return c, nil
}

func setGauge(g interface{ Set(float64) }, on bool) {
	if on {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Bind attaches the serving side. It must be called before Start; it is
// separate from New because the server's Config needs the controller
// (for the /v1/autopilot endpoints) before the server exists.
func (c *Controller) Bind(s Serving) {
	c.mu.Lock()
	c.srv = s
	c.mu.Unlock()
}

// Start launches the supervision loop: resume any interrupted cycle
// immediately, then retrain whenever the traffic trigger fires.
func (c *Controller) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srv == nil {
		return errors.New("autopilot: Start before Bind")
	}
	if c.started {
		return errors.New("autopilot: already started")
	}
	c.started = true
	go c.loop()
	return nil
}

// Stop ends the supervision loop, cancels any in-flight training, and
// aborts an executing cycle at its next wait point. The journal keeps
// the cycle resumable.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.cancel()
	})
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
}

// Kick requests an immediate trigger check without waiting for the next
// interval tick. Non-blocking.
func (c *Controller) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

func (c *Controller) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	// An interrupted cycle resumes before any trigger arithmetic: the
	// journal says work was mid-flight.
	if c.pending() {
		c.runLogged()
	}
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		case <-tick.C:
		}
		if c.pending() || c.triggered() {
			c.runLogged()
		}
	}
}

// pending reports an unresumed interrupted cycle, gated on pause and
// breaker state like any other run.
func (c *Controller) pending() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incomplete != nil && !c.paused && !c.breaker
}

// triggered reports whether enough new traffic has accumulated since
// the last cycle's baseline to justify retraining.
func (c *Controller) triggered() bool {
	c.mu.Lock()
	if c.paused || c.breaker || c.running {
		c.mu.Unlock()
		return false
	}
	srv := c.srv
	base := c.baseline
	c.mu.Unlock()
	verdicts, _ := srv.TrafficStats()
	if verdicts < base {
		// The serving process restarted and its counters reset; re-anchor
		// rather than waiting for them to catch up to a stale watermark.
		c.mu.Lock()
		c.baseline = verdicts
		c.mu.Unlock()
		return false
	}
	return verdicts-base >= c.cfg.TriggerEvents
}

func (c *Controller) runLogged() {
	if _, err := c.RunCycle(); err != nil &&
		!errors.Is(err, ErrBusy) && !errors.Is(err, ErrPaused) &&
		!errors.Is(err, ErrBreakerOpen) && !errors.Is(err, errStopped) {
		c.cfg.Logger.Error("autopilot cycle failed", "error", err)
	}
}

// Pause stops the controller from starting cycles until Resume. The
// pause survives restarts (it is journaled). An executing cycle is not
// interrupted — pause gates admission, not execution.
func (c *Controller) Pause(reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.paused {
		c.pauseRsn = reason
		return nil
	}
	if err := c.journalAppend(Record{State: statePaused, Note: reason}); err != nil {
		return err
	}
	c.paused, c.pauseRsn = true, reason
	setGauge(mPausedGauge, true)
	c.cfg.Logger.Info("autopilot paused", "reason", reason)
	return nil
}

// Resume lifts a pause and resets the circuit breaker: the operator has
// looked, so the failure run-length starts over.
func (c *Controller) Resume() error {
	c.mu.Lock()
	if !c.paused && !c.breaker && c.consecFail == 0 {
		c.mu.Unlock()
		return nil
	}
	if err := c.journalAppend(Record{State: stateResumed}); err != nil {
		c.mu.Unlock()
		return err
	}
	wasBreaker := c.breaker
	c.paused, c.pauseRsn = false, ""
	c.consecFail = 0
	c.breaker = false
	if wasBreaker {
		// Best-effort informational record; the resumed record above
		// already reset the derived breaker state.
		if err := c.journalAppend(Record{State: stateBreakerClosed}); err != nil {
			c.cfg.Logger.Warn("autopilot: journaling breaker-closed", "error", err)
		}
	}
	c.mu.Unlock()
	setGauge(mPausedGauge, false)
	setGauge(mBreakerOpen, false)
	c.cfg.Logger.Info("autopilot resumed", "breaker_was_open", wasBreaker)
	c.Kick()
	return nil
}

// Snapshot returns the controller's typed status.
func (c *Controller) Snapshot() Status {
	c.mu.Lock()
	st := Status{
		Phase:               c.phase,
		Paused:              c.paused,
		PauseReason:         c.pauseRsn,
		BreakerOpen:         c.breaker,
		ConsecutiveFailures: c.consecFail,
		BreakerThreshold:    c.cfg.BreakerThreshold,
		Cycle:               c.lastCycle,
		Cycles:              c.counts,
		LastEntry:           c.lastEntry,
		LastOutcome:         c.lastOut,
		LastError:           c.lastErr,
		TriggerEvents:       c.cfg.TriggerEvents,
		Resuming:            c.incomplete != nil,
	}
	srv := c.srv
	base := c.baseline
	running := c.running
	c.mu.Unlock()
	switch {
	case st.Paused:
		st.Phase = "paused"
	case st.BreakerOpen:
		st.Phase = "breaker-open"
	}
	if srv != nil && !running {
		if verdicts, _ := srv.TrafficStats(); verdicts >= base {
			st.SinceBaseline = verdicts - base
		}
	}
	return st
}

// Status returns the status as an opaque value — the shape the serve
// package's Autopilot interface wants without importing this package.
func (c *Controller) Status() any { return c.Snapshot() }

// Journal returns the committed transition history, oldest first.
// Tests and the status API's verbose mode read it; the controller
// itself only appends.
func (c *Controller) Journal() []Record { return c.jrn.records() }
