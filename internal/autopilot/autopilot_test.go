package autopilot

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/svm"
	"repro/internal/trace"
)

// Shared trained bundles: training dominates test time, so every test
// reuses one champion (A) and one distinct candidate (B).
var (
	fixOnce          sync.Once
	fixErr           error
	bundleA, bundleB []byte
)

func testBundles(t *testing.T) (champion, candidate []byte) {
	t.Helper()
	fixOnce.Do(func() {
		spec, err := dataset.ByName("vim_reverse_tcp")
		if err != nil {
			fixErr = err
			return
		}
		logs, err := spec.Generate(7)
		if err != nil {
			fixErr = err
			return
		}
		train := func(lambda, sigma2 float64) ([]byte, error) {
			td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
				Seed:        7,
				FixedParams: &svm.Params{Lambda: lambda, Kernel: svm.RBFKernel{Sigma2: sigma2}},
			})
			if err != nil {
				return nil, err
			}
			clf, err := td.Train()
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := clf.Save(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}
		if bundleA, fixErr = train(8, 2); fixErr != nil {
			return
		}
		bundleB, fixErr = train(2, 4)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	if bytes.Equal(bundleA, bundleB) {
		t.Fatal("fixture bundles are identical; tests need two distinct models")
	}
	return bundleA, bundleB
}

// fakeServing satisfies Serving with scripted behaviour: shadow
// evaluations immediately report the configured comparison, and Reload
// records which registry entry a real server would have loaded.
type fakeServing struct {
	store     *registry.Store
	cmp       registry.Comparison
	startErr  error
	reloadErr error

	mu           sync.Mutex
	verdicts     uint64
	shadow       string
	loaded       string
	reloads      int
	shadowStarts int
}

func (f *fakeServing) TrafficStats() (uint64, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.verdicts, 0
}

func (f *fakeServing) StartShadow(entry string) error {
	if f.startErr != nil {
		return f.startErr
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shadow = entry
	f.shadowStarts++
	return nil
}

func (f *fakeServing) ShadowComparison() (registry.Comparison, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shadow == "" {
		return registry.Comparison{}, false
	}
	cmp := f.cmp
	cmp.ChallengerID = f.shadow
	return cmp, true
}

func (f *fakeServing) StopShadow() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	had := f.shadow != ""
	f.shadow = ""
	return had
}

func (f *fakeServing) Reload() error {
	if f.reloadErr != nil {
		return f.reloadErr
	}
	ptr, ok, err := f.store.Current()
	if err != nil || !ok {
		return fmt.Errorf("fake reload: current pointer ok=%v err=%v", ok, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loaded = ptr.ID
	f.reloads++
	return nil
}

// goodComparison passes the test gate (MinEvents 100, MinTPR 0.9,
// MaxFPR 0.1): TPR 180/184, FPR 1/16.
func goodComparison() registry.Comparison {
	return registry.Comparison{Events: 200, Windows: 200,
		Confusion: metrics.Confusion{TP: 180, TN: 15, FP: 1, FN: 4}}
}

// badComparison fails the gate on TPR: the candidate raises new alarms
// on half the champion-benign windows.
func badComparison() registry.Comparison {
	return registry.Comparison{Events: 200, Windows: 200,
		Confusion: metrics.Confusion{TP: 90, TN: 15, FP: 1, FN: 94}}
}

func staticTrainer(blob []byte) Trainer {
	return TrainerFunc(func(context.Context) ([]byte, registry.TrainInfo, error) {
		return blob, registry.TrainInfo{App: "vim.exe", Seed: 7}, nil
	})
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// fixture is one wired test world: a registry with champion A current,
// a fake serving side, and a controller config with fast timings.
type fixture struct {
	store    *registry.Store
	fake     *fakeServing
	cfg      Config
	champion registry.Manifest
}

func newFixture(t *testing.T, trainer Trainer) *fixture {
	t.Helper()
	champ, _ := testBundles(t)
	store, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.Publish(bytes.NewReader(champ), registry.TrainInfo{App: "vim.exe", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fake := &fakeServing{store: store, cmp: goodComparison(), verdicts: 10_000}
	return &fixture{
		store:    store,
		fake:     fake,
		champion: man,
		cfg: Config{
			Store:            store,
			Trainer:          trainer,
			Gate:             registry.Gate{MinEvents: 100, MinTPR: 0.9, MaxFPR: 0.1},
			StateDir:         t.TempDir(),
			Interval:         time.Hour,
			TriggerEvents:    50,
			ShadowTimeout:    2 * time.Second,
			ShadowPoll:       time.Millisecond,
			BackoffBase:      time.Millisecond,
			BackoffMax:       4 * time.Millisecond,
			BreakerThreshold: 2,
			Logger:           quietLogger(),
		},
	}
}

func (fx *fixture) controller(t *testing.T) *Controller {
	t.Helper()
	ctl, err := New(fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Bind(fx.fake)
	return ctl
}

// journalStates lists the journaled state names in order.
func journalStates(ctl *Controller) []string {
	var out []string
	for _, rec := range ctl.Journal() {
		out = append(out, rec.State)
	}
	return out
}

func TestHappyCyclePromotes(t *testing.T) {
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	ctl := fx.controller(t)

	res, err := ctl.RunCycle()
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if res.Outcome != OutcomePromoted || res.Cycle != 1 {
		t.Fatalf("result = %+v, want cycle 1 promoted", res)
	}
	if res.Decision == nil || !res.Decision.OK {
		t.Errorf("promoted without an approving decision: %+v", res.Decision)
	}
	ptr, ok, _ := fx.store.Current()
	if !ok || ptr.ID != res.Entry || ptr.ID == fx.champion.ID {
		t.Errorf("current = %+v, want the candidate %s", ptr, res.Entry)
	}
	if fx.fake.loaded != res.Entry || fx.fake.reloads != 1 {
		t.Errorf("serving reloaded %q x%d, want %s x1", fx.fake.loaded, fx.fake.reloads, res.Entry)
	}
	want := []string{stateCycleStart, statePublished, stateShadowStarted,
		stateEvaluated, statePromoted, stateCycleDone}
	got := journalStates(ctl)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("journal = %v, want %v", got, want)
	}
	st := ctl.Snapshot()
	if st.Cycles.Promoted != 1 || st.LastOutcome != OutcomePromoted || st.LastEntry != res.Entry {
		t.Errorf("status after promotion = %+v", st)
	}
}

func TestUnchangedCandidateSkipsShadow(t *testing.T) {
	champ, _ := testBundles(t)
	fx := newFixture(t, staticTrainer(champ)) // trainer reproduces the champion
	ctl := fx.controller(t)

	res, err := ctl.RunCycle()
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if res.Outcome != OutcomeUnchanged || res.Entry != fx.champion.ID {
		t.Fatalf("result = %+v, want unchanged %s", res, fx.champion.ID)
	}
	if fx.fake.shadowStarts != 0 || fx.fake.reloads != 0 {
		t.Errorf("unchanged cycle touched serving: %d shadows, %d reloads",
			fx.fake.shadowStarts, fx.fake.reloads)
	}
}

func TestGateRejectionKeepsChampion(t *testing.T) {
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	fx.fake.cmp = badComparison()
	ctl := fx.controller(t)

	res, err := ctl.RunCycle()
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if res.Outcome != OutcomeRejected {
		t.Fatalf("result = %+v, want rejected", res)
	}
	if res.Decision == nil || res.Decision.OK || len(res.Decision.Reasons) == 0 {
		t.Errorf("rejection carries no blocking reasons: %+v", res.Decision)
	}
	ptr, _, _ := fx.store.Current()
	if ptr.ID != fx.champion.ID {
		t.Errorf("rejected cycle moved current to %s", ptr.ID)
	}
	if fx.fake.reloads != 0 {
		t.Error("rejected cycle reloaded serving")
	}
	if fx.fake.shadow != "" {
		t.Error("canary left running after rejection")
	}
	// A rejection is a clean outcome: the breaker run stays at zero.
	if st := ctl.Snapshot(); st.ConsecutiveFailures != 0 || st.BreakerOpen {
		t.Errorf("rejection advanced the breaker: %+v", st)
	}
}

func TestShadowEvidenceStarvationRejects(t *testing.T) {
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	cmp := goodComparison()
	cmp.Events = 10 // never reaches MinEvents 100
	fx.fake.cmp = cmp
	fx.cfg.ShadowTimeout = 20 * time.Millisecond
	ctl := fx.controller(t)

	res, err := ctl.RunCycle()
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if res.Outcome != OutcomeRejected {
		t.Fatalf("starved shadow produced %q, want rejected (fail closed)", res.Outcome)
	}
	found := false
	for _, r := range res.Decision.Reasons {
		if strings.Contains(r, "shadow events") {
			found = true
		}
	}
	if !found {
		t.Errorf("rejection reasons %v do not name the evidence shortfall", res.Decision.Reasons)
	}
}

func TestTrainerRetriesThenSucceeds(t *testing.T) {
	_, cand := testBundles(t)
	attempts := 0
	trainer := TrainerFunc(func(context.Context) ([]byte, registry.TrainInfo, error) {
		attempts++
		if attempts <= 2 {
			return nil, registry.TrainInfo{}, errors.New("transient: dataset busy")
		}
		return cand, registry.TrainInfo{App: "vim.exe"}, nil
	})
	fx := newFixture(t, trainer)
	fx.cfg.StageRetries = 2
	ctl := fx.controller(t)

	res, err := ctl.RunCycle()
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if res.Outcome != OutcomePromoted || attempts != 3 {
		t.Fatalf("outcome %q after %d attempts, want promoted after 3", res.Outcome, attempts)
	}
}

func TestCorruptCandidateFailsCycle(t *testing.T) {
	fx := newFixture(t, staticTrainer([]byte("not a model bundle")))
	fx.cfg.StageRetries = 1
	ctl := fx.controller(t)

	res, err := ctl.RunCycle()
	if err == nil {
		t.Fatal("corrupt candidate bundle completed a cycle")
	}
	if res.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %q, want failed", res.Outcome)
	}
	if !strings.Contains(err.Error(), "rejecting bundle") {
		t.Errorf("error %v does not surface the registry's bundle rejection", err)
	}
	ptr, _, _ := fx.store.Current()
	if ptr.ID != fx.champion.ID {
		t.Errorf("failed cycle moved current to %s", ptr.ID)
	}
}

func TestBreakerTripsAndResumeResets(t *testing.T) {
	_, cand := testBundles(t)
	broken := true
	trainer := TrainerFunc(func(context.Context) ([]byte, registry.TrainInfo, error) {
		if broken {
			return nil, registry.TrainInfo{}, errors.New("training backend down")
		}
		return cand, registry.TrainInfo{App: "vim.exe"}, nil
	})
	fx := newFixture(t, trainer)
	fx.cfg.StageRetries = 1 // 2 attempts per cycle keeps the test quick
	ctl := fx.controller(t)

	for i := 0; i < fx.cfg.BreakerThreshold; i++ {
		if _, err := ctl.RunCycle(); err == nil {
			t.Fatalf("cycle %d succeeded with a broken trainer", i+1)
		}
	}
	st := ctl.Snapshot()
	if !st.BreakerOpen || st.ConsecutiveFailures != fx.cfg.BreakerThreshold {
		t.Fatalf("breaker not open after %d failures: %+v", fx.cfg.BreakerThreshold, st)
	}
	if st.Phase != "breaker-open" {
		t.Errorf("phase = %q, want breaker-open", st.Phase)
	}
	if _, err := ctl.RunCycle(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("RunCycle with open breaker = %v, want ErrBreakerOpen", err)
	}
	// The champion keeps serving the whole time.
	if ptr, _, _ := fx.store.Current(); ptr.ID != fx.champion.ID {
		t.Errorf("breaker path moved current to %s", ptr.ID)
	}

	broken = false
	if err := ctl.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	st = ctl.Snapshot()
	if st.BreakerOpen || st.ConsecutiveFailures != 0 {
		t.Fatalf("Resume did not reset the breaker: %+v", st)
	}
	res, err := ctl.RunCycle()
	if err != nil || res.Outcome != OutcomePromoted {
		t.Fatalf("post-resume cycle = %+v err %v, want promoted", res, err)
	}
}

func TestBreakerStateSurvivesRestart(t *testing.T) {
	fx := newFixture(t, TrainerFunc(func(context.Context) ([]byte, registry.TrainInfo, error) {
		return nil, registry.TrainInfo{}, errors.New("always broken")
	}))
	fx.cfg.StageRetries = 0
	ctl := fx.controller(t)
	for i := 0; i < fx.cfg.BreakerThreshold; i++ {
		if _, err := ctl.RunCycle(); err == nil {
			t.Fatal("broken trainer succeeded")
		}
	}

	// A restarted controller recomputes the breaker from the journal.
	ctl2 := fx.controller(t)
	if st := ctl2.Snapshot(); !st.BreakerOpen {
		t.Fatalf("restart lost the open breaker: %+v", st)
	}
	if _, err := ctl2.RunCycle(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("restarted controller ran with open breaker: %v", err)
	}
}

func TestPausePersistsAcrossRestart(t *testing.T) {
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	ctl := fx.controller(t)
	if err := ctl.Pause("maintenance window"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.RunCycle(); !errors.Is(err, ErrPaused) {
		t.Fatalf("paused RunCycle = %v, want ErrPaused", err)
	}

	ctl2 := fx.controller(t)
	st := ctl2.Snapshot()
	if !st.Paused || st.PauseReason != "maintenance window" {
		t.Fatalf("restart lost the pause: %+v", st)
	}
	if err := ctl2.Resume(); err != nil {
		t.Fatal(err)
	}
	res, err := ctl2.RunCycle()
	if err != nil || res.Outcome != OutcomePromoted {
		t.Fatalf("post-resume cycle = %+v err %v", res, err)
	}
}

func TestTriggerFiresOnTrafficDelta(t *testing.T) {
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	fx.fake.verdicts = 40 // below TriggerEvents 50
	ctl := fx.controller(t)

	if ctl.triggered() {
		t.Fatal("trigger fired below the traffic floor")
	}
	fx.fake.mu.Lock()
	fx.fake.verdicts = 60
	fx.fake.mu.Unlock()
	if !ctl.triggered() {
		t.Fatal("trigger did not fire past the traffic floor")
	}
	if _, err := ctl.RunCycle(); err != nil {
		t.Fatal(err)
	}
	// The cycle re-anchored the baseline: no immediate re-trigger.
	if ctl.triggered() {
		t.Fatal("trigger re-fired immediately after a cycle")
	}
	st := ctl.Snapshot()
	if st.SinceBaseline != 0 || st.TriggerEvents != 50 {
		t.Errorf("trigger progress = %+v", st)
	}
}

func TestTriggerReanchorsAfterServeRestart(t *testing.T) {
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	ctl := fx.controller(t)
	if _, err := ctl.RunCycle(); err != nil { // baseline = 10000
		t.Fatal(err)
	}
	// Serving process restarted: counters reset below the watermark.
	fx.fake.mu.Lock()
	fx.fake.verdicts = 5
	fx.fake.mu.Unlock()
	if ctl.triggered() {
		t.Fatal("trigger fired on a counter reset")
	}
	fx.fake.mu.Lock()
	fx.fake.verdicts = 5 + 50
	fx.fake.mu.Unlock()
	if !ctl.triggered() {
		t.Fatal("trigger did not re-anchor to the reset counters")
	}
}

func TestStartLoopRunsCycleOnKick(t *testing.T) {
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	fx.cfg.Interval = 10 * time.Millisecond
	ctl := fx.controller(t)
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctl.Stop()
	ctl.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := ctl.Snapshot(); st.Cycles.Promoted == 1 {
			if ptr, _, _ := fx.store.Current(); ptr.ID == st.LastEntry {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("loop never promoted: %+v", ctl.Snapshot())
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	fx := newFixture(t, staticTrainer(nil))
	fx.cfg.BackoffBase = 100 * time.Millisecond
	fx.cfg.BackoffMax = time.Second
	ctl := fx.controller(t)

	for attempt := 0; attempt < 8; attempt++ {
		d1 := ctl.backoff("train", 3, attempt)
		d2 := ctl.backoff("train", 3, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 > fx.cfg.BackoffMax {
			t.Fatalf("attempt %d: backoff %v exceeds max %v", attempt, d1, fx.cfg.BackoffMax)
		}
		if d1 < fx.cfg.BackoffBase/2 {
			t.Fatalf("attempt %d: backoff %v below half the base", attempt, d1)
		}
	}
	// Jitter differentiates stages: identical budgets, different delays
	// (holds for this seed; the schedule is pinned by determinism).
	if ctl.backoff("train", 3, 1) == ctl.backoff("publish", 3, 1) &&
		ctl.backoff("train", 4, 1) == ctl.backoff("publish", 4, 1) {
		t.Error("jitter identical across stages for two cycles; hash looks unused")
	}
}

// writeRaw serialises one sliced log back into a raw .letl file.
func writeRaw(t *testing.T, path string, log *trace.Log) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := etl.WriteLogs(f, log); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogTrainerTrainsFromDisk(t *testing.T) {
	t.Parallel()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		t.Fatal(err)
	}
	logs, err := spec.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	benign, mixed := dir+"/benign.letl", dir+"/mixed.letl"
	writeRaw(t, benign, logs.Benign)
	writeRaw(t, mixed, logs.Mixed)

	tr := LogTrainer{BenignPath: benign, MixedPath: mixed, Lambda: 8, Sigma2: 2, Seed: 7}
	blob, info, err := tr.Train(context.Background())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(blob) == 0 || info.Lambda != 8 || info.BenignLog != benign {
		t.Errorf("trained blob %d bytes, info %+v", len(blob), info)
	}
	if _, err := core.LoadMonitor(bytes.NewReader(blob)); err != nil {
		t.Errorf("trained bundle does not load: %v", err)
	}
}
