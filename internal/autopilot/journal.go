package autopilot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// journalFile is the append-only transition log under Config.StateDir.
const journalFile = "autopilot.jsonl"

// Journaled states, in cycle order. Every transition follows its side
// effect (written-last commit): the record is appended only after the
// work it names has landed, so a crash between the two leaves the
// journal one step behind reality and recovery re-drives the missing
// step idempotently.
const (
	stateCycleStart    = "cycle-start"
	statePublished     = "published"
	stateShadowStarted = "shadow-started"
	stateEvaluated     = "evaluated"
	statePromoted      = "promoted"
	stateCycleDone     = "cycle-done"
	statePaused        = "paused"
	stateResumed       = "resumed"
	stateBreakerOpen   = "breaker-open"
	stateBreakerClosed = "breaker-closed"
)

// Cycle outcomes recorded on cycle-done (and, for approved/rejected, on
// evaluated).
const (
	// OutcomePromoted: the candidate passed the gate and is serving.
	OutcomePromoted = "promoted"
	// OutcomeRejected: the gate blocked the candidate; the champion keeps
	// serving. A clean outcome, not a failure.
	OutcomeRejected = "rejected"
	// OutcomeUnchanged: training reproduced the serving champion
	// byte-for-byte; nothing to evaluate.
	OutcomeUnchanged = "unchanged"
	// OutcomeFailed: a stage exhausted its retry budget. Consecutive
	// failures feed the circuit breaker.
	OutcomeFailed = "failed"
	// outcomeApproved marks an evaluated record whose gate decision
	// passed; the cycle still has promotion left to do.
	outcomeApproved = "approved"
)

// Record is one journal line: a completed state transition of the
// autopilot's cycle machine.
type Record struct {
	// Seq is the record's position in the journal, starting at 1.
	Seq int `json:"seq"`
	// At is when the transition was journaled.
	At time.Time `json:"at"`
	// Cycle numbers the retraining cycle the record belongs to (0 for
	// cycle-independent records: paused, resumed, breaker-*).
	Cycle int `json:"cycle,omitempty"`
	// State is the transition reached (cycle-start, published, ...).
	State string `json:"state"`
	// Entry is the registry entry the cycle produced, once known.
	Entry string `json:"entry,omitempty"`
	// Outcome qualifies evaluated and cycle-done records.
	Outcome string `json:"outcome,omitempty"`
	// Note carries human context: gate reasons, failure errors, pause
	// reasons.
	Note string `json:"note,omitempty"`
	// Baseline is the serving traffic watermark (total verdicts) at
	// cycle-start — the reference the next trigger measures against.
	Baseline uint64 `json:"baseline,omitempty"`
}

// journal is the append-only transition log. Appends are synced before
// they are acknowledged; reads tolerate a torn final line (the crash the
// sync discipline still permits) by ending the history there.
type journal struct {
	path string

	mu   sync.Mutex
	recs []Record
	seq  int
}

// openJournal opens (creating if needed) the journal under dir.
func openJournal(dir string) (*journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("autopilot: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("autopilot: creating state dir: %w", err)
	}
	j := &journal{path: filepath.Join(dir, journalFile)}
	blob, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("autopilot: reading journal: %w", err)
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			break // torn tail: the journal ends at the last whole record
		}
		j.recs = append(j.recs, rec)
		j.seq = rec.Seq
	}
	return j, nil
}

// append commits one transition. The fault point before the write is
// the per-transition kill-before-journal crash site: a test arming
// "autopilot/journal/<state>" kills the controller after the state's
// side effect but before the journal admits it happened.
func (j *journal) append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Seq = j.seq + 1
	rec.At = time.Now().UTC()
	if err := faultinject.Step("autopilot/journal/" + rec.State); err != nil {
		return fmt.Errorf("autopilot: journaling %s: %w", rec.State, err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("autopilot: encoding %s record: %w", rec.State, err)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("autopilot: opening journal: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("autopilot: appending %s record: %w", rec.State, werr)
	}
	j.seq = rec.Seq
	j.recs = append(j.recs, rec)
	return nil
}

// records returns a copy of the committed history, oldest first.
func (j *journal) records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.recs))
	copy(out, j.recs)
	return out
}

// resumePoint describes where an interrupted cycle stopped: the last
// transition the journal admits, from which recovery re-drives the
// rest of the cycle.
type resumePoint struct {
	cycle   int
	state   string // last journaled cycle state
	entry   string
	outcome string // evaluated verdict, when state is evaluated
	note    string
}

// recovered is everything a restarting controller learns from its
// journal: where to pick up, whether it was paused, how close the
// breaker is to tripping, and the lifetime tallies.
type recovered struct {
	nextCycle      int
	paused         bool
	pauseReason    string
	consecFailures int
	incomplete     *resumePoint
	counts         CycleCounts
	lastEntry      string
	lastOutcome    string
	baseline       uint64
}

// analyze replays the journal into the controller's starting state.
func (j *journal) analyze() recovered {
	r := recovered{nextCycle: 1}
	var open *resumePoint
	for _, rec := range j.records() {
		switch rec.State {
		case statePaused:
			r.paused, r.pauseReason = true, rec.Note
		case stateResumed:
			r.paused, r.pauseReason = false, ""
			r.consecFailures = 0
		case stateBreakerOpen, stateBreakerClosed:
			// Informational: breaker state is derived from the failure
			// run-length, which resumed already resets.
		case stateCycleStart:
			open = &resumePoint{cycle: rec.Cycle, state: rec.State}
			r.baseline = rec.Baseline
			if rec.Cycle >= r.nextCycle {
				r.nextCycle = rec.Cycle + 1
			}
			r.counts.Started++
		case stateCycleDone:
			open = nil
			if rec.Cycle >= r.nextCycle {
				r.nextCycle = rec.Cycle + 1
			}
			r.lastOutcome = rec.Outcome
			if rec.Entry != "" {
				r.lastEntry = rec.Entry
			}
			switch rec.Outcome {
			case OutcomePromoted:
				r.counts.Promoted++
				r.consecFailures = 0
			case OutcomeRejected:
				r.counts.Rejected++
				r.consecFailures = 0
			case OutcomeUnchanged:
				r.counts.Unchanged++
				r.consecFailures = 0
			case OutcomeFailed:
				r.counts.Failed++
				r.consecFailures++
			}
		default:
			if open != nil && rec.Cycle == open.cycle {
				open.state = rec.State
				if rec.Entry != "" {
					open.entry = rec.Entry
				}
				if rec.State == stateEvaluated {
					open.outcome = rec.Outcome
				}
				open.note = rec.Note
			}
		}
	}
	r.incomplete = open
	return r
}
