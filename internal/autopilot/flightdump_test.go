package autopilot

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/registry"
	"repro/internal/telemetry"
)

// TestBreakerTripDumpsFlightRecorder forces consecutive cycle failures
// until the circuit breaker opens and asserts the capture-now artifact:
// a flight-recorder dump in the state dir whose entries include the
// failing cycles' journal transitions, each stamped with its cycle's
// trace ID.
func TestBreakerTripDumpsFlightRecorder(t *testing.T) {
	fx := newFixture(t, TrainerFunc(func(context.Context) ([]byte, registry.TrainInfo, error) {
		return nil, registry.TrainInfo{}, errors.New("training backend down")
	}))
	fx.cfg.StageRetries = -1 // no retries: each RunCycle fails once
	ctl := fx.controller(t)

	for i := 0; i < fx.cfg.BreakerThreshold; i++ {
		if _, err := ctl.RunCycle(); err == nil {
			t.Fatalf("cycle %d succeeded with a broken trainer", i+1)
		}
	}
	if st := ctl.Snapshot(); !st.BreakerOpen {
		t.Fatalf("breaker not open: %+v", st)
	}

	matches, err := filepath.Glob(filepath.Join(fx.cfg.StateDir, "flight-breaker-trip-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("found %d breaker-trip dumps in %s, want 1", len(matches), fx.cfg.StateDir)
	}
	blob, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetry.FlightDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "breaker-trip" {
		t.Fatalf("dump reason = %q, want breaker-trip", dump.Reason)
	}

	// The journal transitions of the failing cycles must be in the dump,
	// each carrying its cycle's trace so the post-mortem reads as traces.
	traces := map[string]bool{}
	states := map[string]bool{}
	for _, e := range dump.Entries {
		if e.Kind != "autopilot" {
			continue
		}
		states[e.Name] = true
		switch e.Name {
		case statePaused, stateResumed, stateBreakerClosed:
			continue // journaled outside any cycle: no trace to carry
		}
		if e.Trace == "" {
			t.Fatalf("autopilot flight entry %q has no cycle trace", e.Name)
		}
		traces[e.Trace] = true
	}
	for _, want := range []string{stateCycleStart, stateCycleDone, stateBreakerOpen} {
		if !states[want] {
			t.Errorf("dump records no %q transition (got %v)", want, states)
		}
	}
	if len(traces) < fx.cfg.BreakerThreshold {
		t.Errorf("dump holds %d distinct cycle traces, want >= %d (one per failed cycle)",
			len(traces), fx.cfg.BreakerThreshold)
	}
}
