package autopilot

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// Cycle stages, the resume granularity: the journal's last record maps
// to the stage recovery re-enters.
const (
	stageTrain   = "train"
	stageShadow  = "shadow"
	stagePromote = "promote"
	stageFinish  = "finish"
)

// Result summarises one completed (or failed) cycle.
type Result struct {
	// Cycle is the cycle number.
	Cycle int `json:"cycle"`
	// Outcome is the cycle-done outcome (promoted, rejected, unchanged,
	// failed).
	Outcome string `json:"outcome"`
	// Entry is the candidate registry entry, once one was published.
	Entry string `json:"entry,omitempty"`
	// Decision is the gate's verdict, when the cycle reached evaluation.
	Decision *registry.Decision `json:"decision,omitempty"`
}

// RunCycle executes one retraining cycle synchronously: train → publish
// → shadow → evaluate → promote. If the journal holds an interrupted
// cycle it is resumed at the stage after its last journaled transition
// instead of starting fresh. The supervision loop calls this on
// trigger; tests and operators may call it directly.
func (c *Controller) RunCycle() (Result, error) {
	c.mu.Lock()
	switch {
	case c.srv == nil:
		c.mu.Unlock()
		return Result{}, errors.New("autopilot: RunCycle before Bind")
	case c.running:
		c.mu.Unlock()
		return Result{}, ErrBusy
	case c.paused:
		c.mu.Unlock()
		return Result{}, ErrPaused
	case c.breaker:
		c.mu.Unlock()
		return Result{}, ErrBreakerOpen
	}
	rp := c.incomplete
	c.incomplete = nil
	c.running = true
	c.mu.Unlock()
	// One trace ID per cycle execution: every journal transition, span
	// and flight entry the cycle produces carries it, so a promotion (or
	// a breaker trip) is reconstructible as a single trace.
	trace := telemetry.NewTraceID().String()
	c.cycleTrace.Store(&trace)
	defer func() {
		c.cycleTrace.Store(nil)
		c.mu.Lock()
		c.running = false
		c.phase = "idle"
		c.mu.Unlock()
	}()

	res, err := c.runCycle(rp)
	switch {
	case err == nil:
	case errors.Is(err, errStopped):
		// Shutdown mid-cycle: the journal stays mid-cycle, so the next
		// Start (this process or the next one) resumes it.
		c.restoreIncomplete()
	default:
		res.Outcome = OutcomeFailed
		c.failCycle(res.Cycle, res.Entry, err)
	}
	return res, err
}

// restoreIncomplete re-derives the interrupted-cycle marker from the
// journal after an aborted run.
func (c *Controller) restoreIncomplete() {
	r := c.jrn.analyze()
	c.mu.Lock()
	c.incomplete = r.incomplete
	c.mu.Unlock()
}

func (c *Controller) runCycle(rp *resumePoint) (Result, error) {
	res := Result{}
	var entry string
	stage := stageTrain
	var resumeNote string
	if rp != nil {
		res.Cycle = rp.cycle
		entry = rp.entry
		resumeNote = rp.note
		mResumes.Inc()
		c.cfg.Logger.Info("autopilot resuming interrupted cycle",
			"cycle", rp.cycle, "journaled", rp.state, "entry", rp.entry)
		switch rp.state {
		case stateCycleStart:
			// Nothing journaled past the start: re-train. Publishing is
			// content-addressed, so a publish that landed before the crash
			// is simply found again.
			stage = stageTrain
		case statePublished, stateShadowStarted:
			// Shadow state died with the process; (re)start it.
			stage = stageShadow
		case stateEvaluated:
			if rp.outcome == outcomeApproved {
				stage = stagePromote
			} else {
				stage = stageFinish
				resumeNote = rp.note
			}
		case statePromoted:
			stage = stageFinish
		default:
			return res, fmt.Errorf("autopilot: journal resume from unknown state %q", rp.state)
		}
		c.mu.Lock()
		c.lastCycle = rp.cycle
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		res.Cycle = c.nextCycle
		c.nextCycle++
		c.lastCycle = res.Cycle
		c.mu.Unlock()
		verdicts, _ := c.serving().TrafficStats()
		if err := c.journalAppend(Record{Cycle: res.Cycle, State: stateCycleStart, Baseline: verdicts}); err != nil {
			return res, err
		}
		c.mu.Lock()
		c.baseline = verdicts
		c.counts.Started++
		c.mu.Unlock()
	}

	if stage == stageTrain {
		c.setPhase("training")
		var blob []byte
		var info registry.TrainInfo
		if err := c.retryStage("train", res.Cycle, func() error {
			b, i, err := c.cfg.Trainer.Train(c.ctx)
			if err != nil {
				return err
			}
			blob, info = b, i
			return nil
		}); err != nil {
			return res, err
		}
		c.setPhase("publishing")
		var man registry.Manifest
		if err := c.retryStage("publish", res.Cycle, func() error {
			m, err := c.cfg.Store.Publish(bytes.NewReader(blob), info)
			if err != nil {
				return err
			}
			man = m
			return nil
		}); err != nil {
			return res, err
		}
		entry = man.ID
		// A candidate that reproduces the serving champion byte-for-byte
		// has nothing to prove; the cycle ends clean without a shadow.
		if cur, ok, err := c.cfg.Store.Current(); err == nil && ok && cur.ID == entry {
			res.Entry = entry
			return c.finishCycle(res, entry, OutcomeUnchanged,
				"candidate reproduces the serving champion", nil)
		}
		if err := c.journalAppend(Record{Cycle: res.Cycle, State: statePublished, Entry: entry}); err != nil {
			return res, err
		}
		stage = stageShadow
	}
	res.Entry = entry

	var decision *registry.Decision
	if stage == stageShadow {
		c.setPhase("shadowing")
		if err := faultinject.Step("autopilot/before-shadow"); err != nil {
			return res, err
		}
		srv := c.serving()
		// Clear any stale canary — a crashed run's, or an operator's —
		// before starting this cycle's.
		srv.StopShadow()
		if err := c.retryStage("shadow-start", res.Cycle, func() error {
			return srv.StartShadow(entry)
		}); err != nil {
			return res, err
		}
		if err := c.journalAppend(Record{Cycle: res.Cycle, State: stateShadowStarted, Entry: entry}); err != nil {
			srv.StopShadow()
			return res, err
		}
		cmp, err := c.awaitEvidence()
		if err != nil {
			srv.StopShadow()
			return res, err
		}
		d := c.cfg.Gate.Decide(cmp)
		decision = &d
		out, note := outcomeApproved, fmt.Sprintf("shadowed %d events over %d windows", cmp.Events, cmp.Windows)
		if !d.OK {
			out, note = OutcomeRejected, strings.Join(d.Reasons, "; ")
		}
		if err := c.journalAppend(Record{Cycle: res.Cycle, State: stateEvaluated, Entry: entry, Outcome: out, Note: note}); err != nil {
			srv.StopShadow()
			return res, err
		}
		srv.StopShadow()
		if !d.OK {
			return c.finishCycle(res, entry, OutcomeRejected, note, decision)
		}
		resumeNote = note
		stage = stagePromote
	}

	if stage == stagePromote {
		c.setPhase("promoting")
		if err := c.retryStage("promote", res.Cycle, func() error {
			// Idempotent re-drive: a crash after the pointer moved but
			// before the promoted record landed must not repoint again.
			cur, ok, err := c.cfg.Store.Current()
			if err != nil {
				return err
			}
			if !ok || cur.ID != entry {
				reason := fmt.Sprintf("autopilot cycle %d: %s", res.Cycle, resumeNote)
				if _, err := c.cfg.Store.Promote(entry, reason); err != nil {
					return err
				}
			}
			if err := faultinject.Step("autopilot/mid-promotion"); err != nil {
				return err
			}
			return c.serving().Reload()
		}); err != nil {
			return res, err
		}
		if err := c.journalAppend(Record{Cycle: res.Cycle, State: statePromoted, Entry: entry}); err != nil {
			return res, err
		}
		return c.finishCycle(res, entry, OutcomePromoted, resumeNote, decision)
	}

	// stageFinish: the journal already admits the terminal transition;
	// only the cycle-done record is missing.
	out := OutcomePromoted
	if rp != nil && rp.state == stateEvaluated {
		out = OutcomeRejected
	}
	if out == OutcomePromoted {
		// Converge serving on the journaled promotion regardless of where
		// exactly the crash hit; Reload on an already-current entry is a
		// no-op swap.
		if err := c.serving().Reload(); err != nil {
			return res, err
		}
	}
	return c.finishCycle(res, entry, out, resumeNote, nil)
}

// finishCycle journals cycle-done and folds the outcome into the
// controller's tallies. Any clean outcome resets the breaker run.
func (c *Controller) finishCycle(res Result, entry, outcome, note string, d *registry.Decision) (Result, error) {
	res.Entry = entry
	res.Outcome = outcome
	res.Decision = d
	if err := c.journalAppend(Record{Cycle: res.Cycle, State: stateCycleDone, Entry: entry, Outcome: outcome, Note: note}); err != nil {
		return res, err
	}
	mCycles.With(outcome).Inc()
	c.mu.Lock()
	switch outcome {
	case OutcomePromoted:
		c.counts.Promoted++
	case OutcomeRejected:
		c.counts.Rejected++
	case OutcomeUnchanged:
		c.counts.Unchanged++
	}
	c.consecFail = 0
	c.lastEntry = entry
	c.lastOut = outcome
	c.lastErr = ""
	c.mu.Unlock()
	c.cfg.Logger.Info("autopilot cycle complete",
		"cycle", res.Cycle, "outcome", outcome, "entry", entry, "note", note)
	return res, nil
}

// failCycle records a failed cycle and advances the circuit breaker.
func (c *Controller) failCycle(cycle int, entry string, cause error) {
	note := cause.Error()
	if err := c.journalAppend(Record{Cycle: cycle, State: stateCycleDone, Outcome: OutcomeFailed, Entry: entry, Note: note}); err != nil {
		// The journal itself is failing; the cycle stays mid-flight on
		// disk and will be resumed rather than counted.
		c.cfg.Logger.Error("autopilot: journaling failed cycle", "cycle", cycle, "error", err)
	}
	mCycles.With(OutcomeFailed).Inc()
	c.mu.Lock()
	c.counts.Failed++
	c.consecFail++
	c.lastOut = OutcomeFailed
	c.lastErr = note
	trip := !c.breaker && c.consecFail >= c.cfg.BreakerThreshold
	if trip {
		c.breaker = true
	}
	n := c.consecFail
	c.mu.Unlock()
	c.cfg.Logger.Error("autopilot cycle failed", "cycle", cycle, "error", note,
		"consecutive_failures", n)
	if trip {
		setGauge(mBreakerOpen, true)
		if err := c.journalAppend(Record{State: stateBreakerOpen,
			Note: fmt.Sprintf("%d consecutive failed cycles", n)}); err != nil {
			c.cfg.Logger.Warn("autopilot: journaling breaker-open", "error", err)
		}
		// The breaker opening is a capture-now moment: persist the flight
		// recorder next to the journal so the failure run's recent spans,
		// logs and transitions survive for the post-mortem.
		if path, err := telemetry.DumpFlightTo(c.cfg.StateDir, "breaker-trip"); err != nil {
			c.cfg.Logger.Warn("autopilot: writing breaker-trip flight dump", "error", err)
		} else {
			c.cfg.Logger.Info("flight recorder dumped on breaker trip", "dump", path)
		}
		c.cfg.Logger.Error("autopilot circuit breaker tripped; serving continues on champion only",
			"consecutive_failures", n, "threshold", c.cfg.BreakerThreshold)
	}
}

// awaitEvidence polls the shadow comparison until it reaches the gate's
// effective evidence floor or the shadow timeout passes; the gate then
// judges whatever accumulated (and fails closed on thin evidence).
func (c *Controller) awaitEvidence() (registry.Comparison, error) {
	eff := c.cfg.Gate.Effective()
	deadline := time.Now().Add(c.cfg.ShadowTimeout)
	var last registry.Comparison
	for {
		cmp, ok := c.serving().ShadowComparison()
		if !ok {
			return last, errors.New("autopilot: shadow evaluation disappeared mid-cycle")
		}
		last = cmp
		if cmp.Events >= eff.MinEvents || time.Now().After(deadline) {
			return cmp, nil
		}
		select {
		case <-c.stop:
			return last, errStopped
		case <-time.After(c.cfg.ShadowPoll):
		}
	}
}

// retryStage runs fn under the stage's retry budget, backing off
// exponentially with deterministic jitter between attempts.
func (c *Controller) retryStage(stage string, cycle int, fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if errors.Is(err, errStopped) {
			return err
		}
		if attempt >= c.cfg.StageRetries {
			break
		}
		d := c.backoff(stage, cycle, attempt)
		mRetries.Inc()
		c.cfg.Logger.Warn("autopilot stage failed; backing off",
			"stage", stage, "cycle", cycle, "attempt", attempt+1, "backoff", d, "error", err)
		select {
		case <-c.stop:
			return errStopped
		case <-time.After(d):
		}
	}
	return fmt.Errorf("autopilot: stage %s: %d attempts exhausted: %w",
		stage, c.cfg.StageRetries+1, err)
}

// backoff is exponential in the attempt with deterministic jitter: the
// delay for (stage, cycle, attempt) is a pure function of those and
// Config.Seed, in [base/2, base] where base doubles per attempt up to
// BackoffMax. Reproducible schedules make recovery tests and incident
// timelines exact.
func (c *Controller) backoff(stage string, cycle, attempt int) time.Duration {
	base := c.cfg.BackoffBase
	for i := 0; i < attempt && base < c.cfg.BackoffMax; i++ {
		base *= 2
	}
	if base > c.cfg.BackoffMax {
		base = c.cfg.BackoffMax
	}
	span := uint64(base) / 2
	if span == 0 {
		return base
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", c.cfg.Seed, stage, cycle, attempt)
	return time.Duration(uint64(base)/2 + h.Sum64()%(span+1))
}

func (c *Controller) serving() Serving {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srv
}

func (c *Controller) setPhase(p string) {
	c.mu.Lock()
	c.phase = p
	c.mu.Unlock()
}
