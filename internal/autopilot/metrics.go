package autopilot

import "repro/internal/telemetry"

// Autopilot lifecycle metrics, on the default telemetry registry so
// they surface on the serving process's /metrics endpoint next to the
// serve_* and registry_* instruments.
var (
	mCycles = telemetry.NewCounterVec("autopilot_cycles_total",
		"completed retraining cycles by outcome (promoted, rejected, unchanged, failed)",
		"outcome")
	mRetries = telemetry.NewCounter("autopilot_stage_retries_total",
		"stage attempts retried after a failure, across all cycles")
	mResumes = telemetry.NewCounter("autopilot_resumes_total",
		"interrupted cycles resumed from the journal after a restart")
	mBreakerOpen = telemetry.NewGauge("autopilot_breaker_open",
		"1 while the circuit breaker is open (champion-only serving), else 0")
	mPausedGauge = telemetry.NewGauge("autopilot_paused",
		"1 while the autopilot is operator-paused, else 0")
)
