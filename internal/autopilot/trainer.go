package autopilot

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/etl"
	"repro/internal/registry"
	"repro/internal/svm"
	"repro/internal/trace"
)

// LogTrainer retrains from raw .letl logs on disk — the leaps-train
// recipe with fixed hyperparameters. Each Train call re-reads the logs,
// so drift shows up as new content at the same paths (rotated-in
// captures, appended traffic). Fixed Lambda/Sigma2 keep the retrain
// cheap and deterministic; leave them zero to grid-search each cycle.
type LogTrainer struct {
	// BenignPath and MixedPath are the training inputs.
	BenignPath string
	MixedPath  string
	// App selects the process to slice (defaults to the only one).
	App string
	// Window is the event-coalescing window (0 = core default).
	Window int
	// Lambda and Sigma2 fix the WSVM hyperparameters; both zero selects
	// cross-validated grid search.
	Lambda float64
	Sigma2 float64
	// Seed is the data-selection seed.
	Seed int64
	// Lenient skips corrupt log records instead of rejecting the file.
	Lenient bool
	// Parallel bounds the pipeline worker pools (0 = all processors).
	Parallel int
}

// Train implements Trainer: parse, slice, build, fit, serialise.
func (t LogTrainer) Train(ctx context.Context) ([]byte, registry.TrainInfo, error) {
	benign, err := t.readLog(t.BenignPath)
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	mixed, err := t.readLog(t.MixedPath)
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, registry.TrainInfo{}, err
	}
	cfg := core.Config{Window: t.Window, Seed: t.Seed, Parallel: t.Parallel}
	if t.Lambda > 0 && t.Sigma2 > 0 {
		cfg.FixedParams = &svm.Params{Lambda: t.Lambda, Kernel: svm.RBFKernel{Sigma2: t.Sigma2}}
	}
	td, err := core.BuildTrainingData(benign, mixed, cfg)
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, registry.TrainInfo{}, err
	}
	clf, err := td.Train()
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		return nil, registry.TrainInfo{}, err
	}
	info := registry.TrainInfo{
		App:       benign.App,
		Seed:      t.Seed,
		Lambda:    clf.Params().Lambda,
		Kernel:    fmt.Sprint(clf.Params().Kernel),
		BenignLog: t.BenignPath,
		MixedLog:  t.MixedPath,
	}
	return buf.Bytes(), info, nil
}

// readLog parses one raw log and slices the monitored process.
func (t LogTrainer) readLog(path string) (*trace.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := etl.ParseWith(f, etl.ParseOpts{Lenient: t.Lenient})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.App != "" {
		return raw.SliceApp(t.App)
	}
	pids := raw.PIDs()
	if len(pids) != 1 {
		return nil, fmt.Errorf("%s holds %d processes; set App", path, len(pids))
	}
	return raw.Slice(pids[0])
}
