package autopilot

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
)

// TestCrashMatrixConvergesToSamePromotion kills the controller at every
// journaled transition and at the mid-stage fault points, then restarts
// it against the same journal and registry and asserts the resumed run
// converges to exactly the state an uninterrupted run reaches: the
// candidate promoted once (no duplicate pointer transitions), serving
// reloaded onto it, and the journal closed with a promoted cycle-done.
func TestCrashMatrixConvergesToSamePromotion(t *testing.T) {
	points := []struct {
		point string
		// fresh marks points where the crash precedes the first journal
		// record, so recovery starts a fresh cycle instead of resuming.
		fresh bool
	}{
		{point: "autopilot/journal/cycle-start", fresh: true},
		{point: "registry/publish/bundle"},
		{point: "registry/publish/manifest"},
		{point: "autopilot/journal/published"},
		{point: "autopilot/before-shadow"},
		{point: "autopilot/journal/shadow-started"},
		{point: "autopilot/journal/evaluated"},
		{point: "registry/setcurrent"},
		{point: "autopilot/mid-promotion"},
		{point: "autopilot/journal/promoted"},
		{point: "autopilot/journal/cycle-done"},
	}
	_, cand := testBundles(t)
	for _, tc := range points {
		t.Run(tc.point, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			fx := newFixture(t, staticTrainer(cand))
			ctl := fx.controller(t)

			faultinject.ArmCrash(tc.point)
			var crash *faultinject.CrashPanic
			func() {
				defer func() { crash = faultinject.Recover(recover()) }()
				_, _ = ctl.RunCycle()
				t.Errorf("RunCycle returned past armed crash point %s", tc.point)
			}()
			if crash == nil || crash.Point != tc.point {
				t.Fatalf("recovered crash %+v, want %s", crash, tc.point)
			}

			// "Restart": a fresh controller over the same journal and
			// registry, bound to a fresh serving side (the old process
			// died; its in-memory canary and counters died with it).
			fx.fake.shadow = ""
			ctl2 := fx.controller(t)
			if st := ctl2.Snapshot(); st.Resuming == tc.fresh {
				t.Errorf("resuming = %v after crash at %s, want %v", st.Resuming, tc.point, !tc.fresh)
			}
			res, err := ctl2.RunCycle()
			if err != nil {
				t.Fatalf("resumed RunCycle: %v", err)
			}
			if res.Outcome != OutcomePromoted || res.Cycle != 1 {
				t.Fatalf("resumed result = %+v, want cycle 1 promoted", res)
			}

			// Converged state is identical to an uninterrupted run's.
			ptr, ok, err := fx.store.Current()
			if err != nil || !ok || ptr.ID != res.Entry || ptr.ID == fx.champion.ID {
				t.Errorf("current = %+v ok=%v err=%v, want the candidate %s", ptr, ok, err, res.Entry)
			}
			if fx.fake.loaded != res.Entry {
				t.Errorf("serving loaded %q, want %s", fx.fake.loaded, res.Entry)
			}
			if fx.fake.shadow != "" {
				t.Error("canary left running after the resumed cycle")
			}
			// Exactly one promotion transition to the candidate: resume
			// never re-drives a side effect that already landed.
			hist, err := fx.store.History()
			if err != nil {
				t.Fatal(err)
			}
			promotions := 0
			for _, tr := range hist {
				if tr.To == res.Entry {
					promotions++
				}
			}
			if promotions != 1 {
				t.Errorf("history has %d transitions to %s, want exactly 1", promotions, res.Entry)
			}
			// The journal closes with a promoted cycle-done for cycle 1.
			recs := ctl2.Journal()
			if len(recs) == 0 {
				t.Fatal("empty journal after resumed cycle")
			}
			last := recs[len(recs)-1]
			if last.State != stateCycleDone || last.Outcome != OutcomePromoted || last.Cycle != 1 {
				t.Errorf("journal tail = %+v, want cycle 1 cycle-done promoted", last)
			}
			// A third controller sees a clean history: nothing to resume.
			ctl3 := fx.controller(t)
			if st := ctl3.Snapshot(); st.Resuming || st.ConsecutiveFailures != 0 {
				t.Errorf("post-convergence restart not clean: %+v", st)
			}
		})
	}
}

// TestCrashDuringRejectedEvaluationResumesToRejection kills the
// controller after a failing evaluation was journaled but before the
// cycle closed, and asserts the resumed run finishes the cycle as
// rejected without re-shadowing or touching the champion.
func TestCrashDuringRejectedEvaluationResumesToRejection(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	fx.fake.cmp = badComparison()
	ctl := fx.controller(t)

	faultinject.ArmCrash("autopilot/journal/cycle-done")
	var crash *faultinject.CrashPanic
	func() {
		defer func() { crash = faultinject.Recover(recover()) }()
		_, _ = ctl.RunCycle()
	}()
	if crash == nil {
		t.Fatal("no crash fired")
	}

	fx.fake.shadow = ""
	starts := fx.fake.shadowStarts
	ctl2 := fx.controller(t)
	res, err := ctl2.RunCycle()
	if err != nil {
		t.Fatalf("resumed RunCycle: %v", err)
	}
	if res.Outcome != OutcomeRejected {
		t.Fatalf("resumed outcome = %q, want rejected", res.Outcome)
	}
	if fx.fake.shadowStarts != starts {
		t.Error("resume re-shadowed an already-evaluated candidate")
	}
	if ptr, _, _ := fx.store.Current(); ptr.ID != fx.champion.ID {
		t.Errorf("rejected resume moved current to %s", ptr.ID)
	}
}

// TestDiskFullDuringCycleRetriesThenFails injects a persistent write
// error into the registry publish path and asserts the cycle burns its
// retry budget, fails cleanly, and the next cycle succeeds once the
// disk recovers.
func TestDiskFullDuringCycleRetriesThenFails(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	fx.cfg.StageRetries = 2
	ctl := fx.controller(t)

	faultinject.ArmError("registry/publish/bundle", errDiskFull, 3) // every attempt
	res, err := ctl.RunCycle()
	if err == nil {
		t.Fatal("cycle succeeded against a full disk")
	}
	if res.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %q, want failed", res.Outcome)
	}
	if st := ctl.Snapshot(); st.ConsecutiveFailures != 1 {
		t.Errorf("consecutive failures = %d, want 1", st.ConsecutiveFailures)
	}

	res, err = ctl.RunCycle()
	if err != nil || res.Outcome != OutcomePromoted {
		t.Fatalf("post-recovery cycle = %+v err %v, want promoted", res, err)
	}
}

// TestJournalDiskFullKeepsCycleResumable makes the journal wholly
// unwritable mid-cycle: the published record cannot land, and neither
// can the failed cycle-done. The cycle stays mid-flight on disk, and
// the restarted controller resumes and finishes it.
func TestJournalDiskFullKeepsCycleResumable(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, cand := testBundles(t)
	fx := newFixture(t, staticTrainer(cand))
	fx.cfg.StageRetries = 0
	ctl := fx.controller(t)

	faultinject.ArmError("autopilot/journal/published", errDiskFull, -1)
	faultinject.ArmError("autopilot/journal/cycle-done", errDiskFull, -1)
	if _, err := ctl.RunCycle(); err == nil {
		t.Fatal("cycle succeeded with an unwritable journal")
	}
	faultinject.Reset()

	ctl2 := fx.controller(t)
	if st := ctl2.Snapshot(); !st.Resuming {
		t.Fatal("interrupted cycle not recovered from the journal")
	}
	res, err := ctl2.RunCycle()
	if err != nil || res.Outcome != OutcomePromoted {
		t.Fatalf("resumed cycle = %+v err %v, want promoted", res, err)
	}
}

var errDiskFull = errors.New("no space left on device")
