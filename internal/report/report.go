// Package report renders evaluation results as aligned ASCII tables and
// CSV, shared by the benchmark harness and the command-line tools.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows under a fixed header for aligned rendering.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table with column alignment. It reports the bytes
// written, satisfying io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width, c)
		}
		n, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		total += int64(n)
		return err
	}
	if err := writeRow(t.header); err != nil {
		return total, err
	}
	sep := make([]string, len(t.header))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	if err := writeRow(sep); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			if i > 0 {
				b.WriteByte(',')
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a ratio in [0,1] as the paper's three-decimal style
// ("0.932"); NaN renders as "n/a".
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// Pct1 formats a ratio as a percentage with one decimal ("93.2%").
func Pct1(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}
