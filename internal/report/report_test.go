package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Name", "ACC")
	tab.AddRow("winscp_reverse_tcp", "0.932")
	tab.AddRow("x", "0.8")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: "ACC" starts at the same offset in each line.
	off := strings.Index(lines[0], "ACC")
	if strings.Index(lines[2], "0.932") != off {
		t.Errorf("column misaligned:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableShortRow(t *testing.T) {
	tab := NewTable("A", "B", "C")
	tab.AddRow("x")
	out := tab.String()
	if !strings.Contains(out, "x") {
		t.Errorf("short row missing:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tab := NewTable("Name", "Value")
	tab.AddRow("plain", "1")
	tab.AddRow(`with "quote", and comma`, "2")
	csv := tab.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "Name,Value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "plain,1" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != `"with ""quote"", and comma",2` {
		t.Errorf("quoted row = %q", lines[2])
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.9321); got != "0.932" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(math.NaN()); got != "n/a" {
		t.Errorf("Pct(NaN) = %q", got)
	}
	if got := Pct1(0.9321); got != "93.2%" {
		t.Errorf("Pct1 = %q", got)
	}
	if got := Pct1(math.NaN()); got != "n/a" {
		t.Errorf("Pct1(NaN) = %q", got)
	}
}
