package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/appsim"
	"repro/internal/cfg"
	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/preprocess"
	"repro/internal/report"
	"repro/internal/svm"
	"repro/internal/trace"
)

// Figure2 reproduces the paper's Figure 2: it preprocesses one system
// event — hierarchical clustering of its library and function sets — and
// renders the event's stack alongside the resulting discretised 3-tuple.
func Figure2(seed int64) (string, error) {
	clean, err := appsim.NewProcess(appsim.VimProfile(), nil, appsim.MethodNone)
	if err != nil {
		return "", err
	}
	log, err := clean.GenerateLog(appsim.GenConfig{Seed: seed, Events: 1500, PID: 1})
	if err != nil {
		return "", err
	}
	part, err := partition.Split(log)
	if err != nil {
		return "", err
	}
	enc, err := preprocess.Fit(part.Events, preprocess.Config{})
	if err != nil {
		return "", err
	}
	// Pick the first event with a reasonably deep system stack, as the
	// paper picks a SysCallEnter with a full walk.
	var pick *partition.Event
	for i := range part.Events {
		if len(part.Events[i].SysTrace) >= 5 {
			pick = &part.Events[i]
			break
		}
	}
	if pick == nil {
		pick = &part.Events[0]
	}
	tuple := enc.Encode(pick)

	var b strings.Builder
	fmt.Fprintf(&b, "Event @%d  type=%v\n", pick.Seq, pick.Type)
	b.WriteString("System stack trace:\n")
	for _, fr := range pick.SysTrace {
		fmt.Fprintf(&b, "  %s!%s\n", fr.Module, fr.Function)
	}
	fmt.Fprintf(&b, "Clusters learned: %d library-set, %d function-set\n",
		enc.NumLibClusters(), enc.NumFuncClusters())
	fmt.Fprintf(&b, "Discretised 3-tuple: {Event_Type:%d, Lib:%d, Func:%d}\n",
		tuple.EventType, tuple.Lib, tuple.Func)
	return b.String(), nil
}

// Figure4Stats summarises a benign-vs-mixed CFG comparison like the
// paper's Figure 4 (vim with a reverse TCP shell): graph sizes, shared
// structure, and the payload's separate region.
type Figure4Stats struct {
	BenignNodes, BenignEdges int
	MixedNodes, MixedEdges   int
	CommonEdges              int
	MixedOnlyEdges           int
	// PayloadRegionNodes counts mixed-CFG nodes outside the benign
	// application code (the right-hand subgraph of Figure 4).
	PayloadRegionNodes int
	MixedComponents    int
	// BenignDOT and MixedDOT are Graphviz renderings of the two CFGs.
	BenignDOT, MixedDOT string
}

// Figure4 infers the benign and mixed CFGs of the vim_reverse_tcp dataset
// and compares them.
func Figure4(seed int64) (*Figure4Stats, error) {
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		return nil, err
	}
	logs, err := spec.Generate(seed)
	if err != nil {
		return nil, err
	}
	benignPart, err := partition.Split(logs.Benign)
	if err != nil {
		return nil, err
	}
	mixedPart, err := partition.Split(logs.Mixed)
	if err != nil {
		return nil, err
	}
	benign, err := cfg.Infer(benignPart)
	if err != nil {
		return nil, err
	}
	mixed, err := cfg.Infer(mixedPart)
	if err != nil {
		return nil, err
	}
	diff := cfg.DiffGraphs(benign.Graph, mixed.Graph)
	_, benignHi := logs.Victim.BenignRange()
	stats := &Figure4Stats{
		BenignNodes:     benign.Graph.NumNodes(),
		BenignEdges:     benign.Graph.NumEdges(),
		MixedNodes:      mixed.Graph.NumNodes(),
		MixedEdges:      mixed.Graph.NumEdges(),
		CommonEdges:     len(diff.Common),
		MixedOnlyEdges:  len(diff.OnlyB),
		MixedComponents: len(mixed.Graph.WeaklyConnectedComponents()),
	}
	for _, n := range mixed.Graph.Nodes() {
		if n >= benignHi {
			stats.PayloadRegionNodes++
		}
	}
	resolve := func(a uint64) string {
		f := logs.Victim.Modules().Resolve(trace.Frame{Addr: a})
		return f.Function
	}
	stats.BenignDOT = benign.Graph.DOT("vim_benign_cfg", resolve)
	stats.MixedDOT = mixed.Graph.DOT("vim_mixed_cfg", resolve)
	return stats, nil
}

// String renders the comparison.
func (s *Figure4Stats) String() string {
	t := report.NewTable("Graph", "Nodes", "Edges")
	t.AddRow("benign CFG", fmt.Sprint(s.BenignNodes), fmt.Sprint(s.BenignEdges))
	t.AddRow("mixed CFG", fmt.Sprint(s.MixedNodes), fmt.Sprint(s.MixedEdges))
	return t.String() + fmt.Sprintf(
		"common edges: %d\nmixed-only edges: %d\npayload-region nodes in mixed CFG: %d\nmixed CFG components: %d\n",
		s.CommonEdges, s.MixedOnlyEdges, s.PayloadRegionNodes, s.MixedComponents)
}

// Figure5Result quantifies the paper's Figure 5 illustration: on a 2-D
// training set whose negative labels are noisy, the weighted SVM recovers
// the true boundary the plain SVM loses.
type Figure5Result struct {
	SVMAccuracy  float64
	WSVMAccuracy float64
}

// Figure5 builds the two-cluster noisy-label toy problem and scores both
// models on clean held-out data.
func Figure5(seed int64) (*Figure5Result, error) {
	rng := rand.New(rand.NewSource(seed))
	var prob svm.Problem
	add := func(cx, cy, label, w float64) {
		prob.X = append(prob.X, []float64{cx + rng.NormFloat64()*0.4, cy + rng.NormFloat64()*0.4})
		prob.Y = append(prob.Y, label)
		prob.Weight = append(prob.Weight, w)
	}
	for i := 0; i < 80; i++ {
		add(0, 0, 1, 1) // benign cluster
	}
	for i := 0; i < 80; i++ {
		add(2.2, 2.2, -1, 0.9) // true malicious cluster
	}
	for i := 0; i < 80; i++ {
		add(0, 0, -1, 0.05) // mislabeled benign points inside the mixed data
	}
	params := svm.Params{Lambda: 5, Kernel: svm.RBFKernel{Sigma2: 2}}
	weighted, err := svm.Train(prob, params)
	if err != nil {
		return nil, err
	}
	plain, err := svm.Train(svm.Problem{X: prob.X, Y: prob.Y}, params)
	if err != nil {
		return nil, err
	}
	score := func(m *svm.Model) float64 {
		const trials = 400
		correct := 0
		for i := 0; i < trials; i++ {
			if m.Predict([]float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4}) == 1 {
				correct++
			}
			if m.Predict([]float64{2.2 + rng.NormFloat64()*0.4, 2.2 + rng.NormFloat64()*0.4}) == -1 {
				correct++
			}
		}
		return float64(correct) / float64(2*trials)
	}
	return &Figure5Result{SVMAccuracy: score(plain), WSVMAccuracy: score(weighted)}, nil
}
