package experiments

import (
	"context"

	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/svm"
	"repro/internal/weight"
)

// ablationSpecs is the dataset subset ablations run on: one per
// application, mixing both attack methods.
func ablationSpecs() ([]dataset.Spec, error) {
	names := []string{
		"winscp_reverse_tcp",
		"chrome_reverse_https",
		"vim_codeinject",
		"putty_reverse_https_online",
		"notepad++_reverse_tcp_online",
	}
	out := make([]dataset.Spec, 0, len(names))
	for _, n := range names {
		s, err := dataset.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// runVariants evaluates each dataset under several pipeline configurations
// and tabulates WSVM accuracy per variant.
func runVariants(opts Options, variants []string, configure func(variant string, cfg *core.Config)) (*report.Table, error) {
	opts = opts.withDefaults()
	specs, err := ablationSpecs()
	if err != nil {
		return nil, err
	}
	header := append([]string{"Dataset"}, variants...)
	t := report.NewTable(header...)
	for i, spec := range specs {
		logs, err := spec.Generate(opts.Seed + int64(i)*104729)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, v := range variants {
			cfg := opts.coreConfig()
			configure(v, &cfg)
			res, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, opts.Runs)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", spec.Name, v, err)
			}
			row = append(row, report.Pct(res.WSVM.ACC))
		}
		t.AddRow(row...)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%v\n", row)
		}
	}
	return t, nil
}

// AblationWeights (A1) compares the full CFG-guided WSVM against the same
// model with shuffled weights and against the unweighted SVM, isolating
// the value of the guidance itself from the weight distribution.
func AblationWeights(opts Options) (*report.Table, error) {
	opts = opts.withDefaults()
	specs, err := ablationSpecs()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Dataset", "WSVM", "WSVM shuffled", "SVM")
	for i, spec := range specs {
		logs, err := spec.Generate(opts.Seed + int64(i)*104729)
		if err != nil {
			return nil, err
		}
		cfg := opts.coreConfig()
		intact, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, opts.Runs)
		if err != nil {
			return nil, err
		}
		cfg.ShuffleWeights = true
		shuffled, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, opts.Runs)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			report.Pct(intact.WSVM.ACC),
			report.Pct(shuffled.WSVM.ACC),
			report.Pct(intact.SVM.ACC))
	}
	return t, nil
}

// AblationDensity (A2) measures the value of Algorithm 2's density-array
// estimate. Its effect is on the *event-level* weights of benign
// functionality the benign CFG never observed (the holdout operations):
// with the estimate those events keep high benignity; with hard 0/1
// weights they are misjudged as confidently malicious. The table reports
// the mean benignity assessed for benign-thread and payload-thread events
// under both settings (window-level accuracy is insensitive because the
// affected events are a few percent of the log).
func AblationDensity(opts Options) (*report.Table, error) {
	opts = opts.withDefaults()
	specs, err := ablationSpecs()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Dataset",
		"benign-event w (estimate)", "benign-event w (hard 0/1)",
		"payload-event w (estimate)", "payload-event w (hard 0/1)")
	for i, spec := range specs {
		logs, err := spec.Generate(opts.Seed + int64(i)*104729)
		if err != nil {
			return nil, err
		}
		var cells []string
		var byCfg [2][2]float64 // [estimate, hard] x [benign, payload]
		for vi, wcfg := range []weight.Config{{}, {DisableDensityEstimate: true}} {
			td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
				Seed:        opts.Seed,
				Weight:      wcfg,
				FixedParams: opts.FixedParams,
			})
			if err != nil {
				return nil, err
			}
			var bSum, bN, pSum, pN float64
			for seq, e := range logs.Mixed.Events {
				w := td.Weights.Benignity(seq, 0.5)
				if e.TID == 9 { // payload thread
					pSum += w
					pN++
				} else {
					bSum += w
					bN++
				}
			}
			byCfg[vi][0] = bSum / bN
			byCfg[vi][1] = pSum / pN
		}
		cells = append(cells, spec.Name,
			report.Pct(byCfg[0][0]), report.Pct(byCfg[1][0]),
			report.Pct(byCfg[0][1]), report.Pct(byCfg[1][1]))
		t.AddRow(cells...)
	}
	return t, nil
}

// AblationWindow (A3) sweeps the event-coalescing window, the paper's
// "dimensions from 3 up to 30" choice.
func AblationWindow(opts Options) (*report.Table, error) {
	windows := map[string]int{"w=1": 1, "w=5": 5, "w=10": 10, "w=20": 20}
	return runVariants(opts, []string{"w=1", "w=5", "w=10", "w=20"},
		func(v string, cfg *core.Config) { cfg.Window = windows[v] })
}

// AblationKernel (A5) compares kernel choices at fixed λ.
func AblationKernel(opts Options) (*report.Table, error) {
	kernels := map[string]svm.Kernel{
		"linear":   svm.LinearKernel{},
		"rbf":      svm.RBFKernel{Sigma2: 2},
		"poly(d2)": svm.PolyKernel{Degree: 2, Gamma: 1, Coef0: 1},
	}
	return runVariants(opts, []string{"linear", "rbf", "poly(d2)"},
		func(v string, cfg *core.Config) {
			cfg.FixedParams = &svm.Params{Lambda: 8, Kernel: kernels[v]}
		})
}

// AblationNoise (A4) sweeps the mixed log's payload activity share: the
// lower the share, the noisier the negative labels and the larger the gap
// between WSVM and SVM should grow.
func AblationNoise(opts Options) (*report.Table, error) {
	opts = opts.withDefaults()
	spec, err := dataset.ByName("winscp_reverse_tcp")
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Payload fraction", "WSVM ACC", "SVM ACC", "Gap")
	for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		s := spec
		s.PayloadFraction = frac
		logs, err := s.Generate(opts.Seed)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, opts.coreConfig(), opts.Runs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", frac),
			report.Pct(res.WSVM.ACC), report.Pct(res.SVM.ACC),
			report.Pct(res.WSVM.ACC-res.SVM.ACC))
	}
	return t, nil
}
