package experiments

import (
	"context"

	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/trace"
)

// ExtensionSourceTrojan evaluates the §VI-A scenario: trojans recompiled
// from source, shifting all benign code. Without CFG alignment the weight
// assessment zeroes genuinely benign paths (every mixed address misses the
// benign CFG) and WSVM degenerates toward plain SVM; with the
// pivot-node alignment extension the weights — and WSVM's advantage —
// are recovered.
func ExtensionSourceTrojan(opts Options) (*report.Table, error) {
	opts = opts.withDefaults()
	names := []string{"vim_reverse_tcp", "notepad++_reverse_https", "winscp_reverse_tcp"}
	t := report.NewTable("Dataset (source trojan)", "SVM", "WSVM unaligned", "WSVM aligned")
	for i, name := range names {
		spec, err := dataset.SourceTrojanVariant(name)
		if err != nil {
			return nil, err
		}
		logs, err := spec.Generate(opts.Seed + int64(i)*104729)
		if err != nil {
			return nil, err
		}
		cfg := opts.coreConfig()
		unaligned, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s unaligned: %w", spec.Name, err)
		}
		cfg.AlignCFGs = true
		aligned, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, cfg, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s aligned: %w", spec.Name, err)
		}
		t.AddRow(spec.Name,
			report.Pct(unaligned.SVM.ACC),
			report.Pct(unaligned.WSVM.ACC),
			report.Pct(aligned.WSVM.ACC))
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-32s unaligned=%s aligned=%s\n",
				spec.Name, report.Pct(unaligned.WSVM.ACC), report.Pct(aligned.WSVM.ACC))
		}
	}
	return t, nil
}

// ExtensionHMM evaluates the §VI-B scenario: a two-class HMM over the
// event-symbol sequence as a fourth model beside CGraph, SVM and WSVM.
func ExtensionHMM(opts Options) (*report.Table, error) {
	opts = opts.withDefaults()
	names := []string{"vim_reverse_tcp", "putty_reverse_https_online", "chrome_reverse_https"}
	t := report.NewTable("Dataset", "CGraph", "SVM", "HMM", "WSVM")
	for i, name := range names {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		logs, err := spec.Generate(opts.Seed + int64(i)*104729)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateWithHMM(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, opts.coreConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		t.AddRow(spec.Name,
			report.Pct(res.CGraph.ACC),
			report.Pct(res.SVM.ACC),
			report.Pct(res.HMM.ACC),
			report.Pct(res.WSVM.ACC))
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-32s HMM=%s WSVM=%s\n",
				spec.Name, report.Pct(res.HMM.ACC), report.Pct(res.WSVM.ACC))
		}
	}
	return t, nil
}

// ExtensionUniversal evaluates the §II-B2 remark that the per-application
// classifiers are only an evaluation convenience: one universal classifier
// is trained over several applications' benign/mixed logs and tested per
// application, side by side with the dedicated per-application WSVMs.
func ExtensionUniversal(opts Options) (*report.Table, error) {
	opts = opts.withDefaults()
	names := []string{
		"winscp_reverse_tcp",
		"chrome_reverse_https",
		"vim_codeinject",
		"putty_reverse_https_online",
		"notepad++_reverse_tcp_online",
	}
	var pairs []core.LogPair
	var malicious []*trace.Log
	var perAppACC []float64
	for i, name := range names {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		logs, err := spec.Generate(opts.Seed + int64(i)*104729)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, core.LogPair{Benign: logs.Benign, Mixed: logs.Mixed})
		malicious = append(malicious, logs.Malicious)
		res, err := core.Evaluate(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, opts.coreConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		perAppACC = append(perAppACC, res.WSVM.ACC)
	}
	uniApp, uniPooled, err := core.EvaluateUniversal(context.Background(), pairs, malicious, opts.coreConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: universal: %w", err)
	}
	t := report.NewTable("Dataset", "Per-app WSVM ACC", "Universal WSVM ACC")
	for i, name := range names {
		t.AddRow(name, report.Pct(perAppACC[i]), report.Pct(uniApp[i].ACC))
	}
	t.AddRow("pooled", "", report.Pct(uniPooled.ACC))
	return t, nil
}

// ExtensionOneClass compares the related-work anomaly-detection baseline —
// a one-class SVM trained on benign data only (Heller et al.) — against
// plain SVM and LEAPS's WSVM, isolating the value of (de-noised) mixed
// training data.
func ExtensionOneClass(opts Options) (*report.Table, error) {
	opts = opts.withDefaults()
	specs, err := ablationSpecs()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Dataset", "OCSVM (benign only)", "SVM", "WSVM")
	for i, spec := range specs {
		logs, err := spec.Generate(opts.Seed + int64(i)*104729)
		if err != nil {
			return nil, err
		}
		oc, err := core.EvaluateOneClass(context.Background(), logs.Benign, logs.Malicious, opts.coreConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s one-class: %w", spec.Name, err)
		}
		res, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, opts.coreConfig(), opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		t.AddRow(spec.Name, report.Pct(oc.ACC), report.Pct(res.SVM.ACC), report.Pct(res.WSVM.ACC))
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-32s OCSVM=%s WSVM=%s\n",
				spec.Name, report.Pct(oc.ACC), report.Pct(res.WSVM.ACC))
		}
	}
	return t, nil
}
