package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/svm"
)

// fastOpts keeps harness tests quick: one run, fixed parameters.
func fastOpts() Options {
	return Options{
		Runs:        1,
		Seed:        99,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	}
}

func TestRunSpecsAndTable1(t *testing.T) {
	specs := []dataset.Spec{}
	for _, n := range []string{"vim_reverse_tcp", "vim_reverse_tcp_online"} {
		s, err := dataset.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	results, err := RunSpecs(specs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	tab := Table1(results)
	out := tab.String()
	if !strings.Contains(out, "vim_reverse_tcp") || !strings.Contains(out, "Offline Infection") {
		t.Errorf("Table1 output missing rows:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("Table1 rows = %d", tab.NumRows())
	}

	fig := FigureSeries(results)
	if fig.NumRows() != 6 {
		t.Errorf("FigureSeries rows = %d, want 6 (3 models × 2 datasets)", fig.NumRows())
	}
	if !strings.Contains(fig.String(), "CGraph") || !strings.Contains(fig.String(), "WSVM") {
		t.Error("FigureSeries missing model rows")
	}
}

func TestFigure2(t *testing.T) {
	out, err := Figure2(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"System stack trace:", "Discretised 3-tuple:", "Lib:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4(t *testing.T) {
	stats, err := Figure4(2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MixedNodes <= stats.BenignNodes {
		t.Errorf("mixed CFG (%d nodes) not larger than benign (%d)", stats.MixedNodes, stats.BenignNodes)
	}
	if stats.PayloadRegionNodes == 0 {
		t.Error("no payload-region nodes found in the mixed CFG")
	}
	if stats.CommonEdges == 0 {
		t.Error("no common edges between benign and mixed CFGs")
	}
	if !strings.Contains(stats.BenignDOT, "digraph") || !strings.Contains(stats.MixedDOT, "digraph") {
		t.Error("DOT outputs malformed")
	}
	if !strings.Contains(stats.String(), "payload-region nodes") {
		t.Error("String() summary incomplete")
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WSVMAccuracy < 0.9 {
		t.Errorf("WSVM toy accuracy = %.3f, want >= 0.9", res.WSVMAccuracy)
	}
	if res.WSVMAccuracy <= res.SVMAccuracy {
		t.Errorf("WSVM %.3f not above SVM %.3f on noisy toy data",
			res.WSVMAccuracy, res.SVMAccuracy)
	}
}

func TestCaseStudies(t *testing.T) {
	tab, err := CaseStudies(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"winscp_reverse_tcp", "vim_codeinject", "putty_reverse_https_online", "0.932"} {
		if !strings.Contains(out, want) {
			t.Errorf("case studies missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 9 {
		t.Errorf("case-study rows = %d, want 9", tab.NumRows())
	}
}

func TestAblationDensitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test is slow")
	}
	tab, err := AblationDensity(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Errorf("ablation rows = %d, want 5", tab.NumRows())
	}
}

func TestAblationNoiseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test is slow")
	}
	tab, err := AblationNoise(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Errorf("noise sweep rows = %d, want 5", tab.NumRows())
	}
}

func TestExtensionSourceTrojan(t *testing.T) {
	if testing.Short() {
		t.Skip("extension test is slow")
	}
	tab, err := ExtensionSourceTrojan(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Errorf("source-trojan rows = %d, want 3", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "srctrojan") {
		t.Error("source-trojan table missing variant names")
	}
}

func TestExtensionHMM(t *testing.T) {
	if testing.Short() {
		t.Skip("extension test is slow")
	}
	tab, err := ExtensionHMM(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Errorf("HMM extension rows = %d, want 3", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "HMM") {
		t.Error("HMM extension table missing model column")
	}
}

func TestExtensionUniversal(t *testing.T) {
	if testing.Short() {
		t.Skip("extension test is slow")
	}
	tab, err := ExtensionUniversal(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Errorf("universal rows = %d, want 5 datasets + pooled", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "pooled") {
		t.Error("universal table missing pooled row")
	}
}

func TestRemainingAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test is slow")
	}
	for _, tc := range []struct {
		name string
		run  func(Options) (*report.Table, error)
		rows int
	}{
		{"weights", AblationWeights, 5},
		{"window", AblationWindow, 5},
		{"kernel", AblationKernel, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := tc.run(fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			if tab.NumRows() != tc.rows {
				t.Errorf("rows = %d, want %d", tab.NumRows(), tc.rows)
			}
		})
	}
}

func TestFigure6And7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test is slow")
	}
	opts := fastOpts()
	t6, r6, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r6) != 13 || t6.NumRows() != 39 {
		t.Errorf("Figure6: %d datasets, %d rows", len(r6), t6.NumRows())
	}
	t7, r7, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r7) != 8 || t7.NumRows() != 24 {
		t.Errorf("Figure7: %d datasets, %d rows", len(r7), t7.NumRows())
	}
}

func TestExtensionOneClass(t *testing.T) {
	if testing.Short() {
		t.Skip("extension test is slow")
	}
	tab, err := ExtensionOneClass(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Errorf("one-class rows = %d, want 5", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "OCSVM") {
		t.Error("one-class table missing model column")
	}
}
