// Package experiments is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§V): Table I (WSVM metrics
// on all 21 datasets), Figures 6 and 7 (CGraph vs SVM vs WSVM on the
// offline and online dataset groups), the three case studies, the
// illustrative Figures 2, 4 and 5, and the ablation studies listed in
// DESIGN.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/svm"
)

// Options configures a harness run.
type Options struct {
	// Runs is how many data-selection runs are averaged per dataset; the
	// paper uses 10. The zero value uses 3 for tolerable latency.
	Runs int
	// Seed drives log generation and data selection.
	Seed int64
	// FixedParams skips per-run cross-validated model selection; nil (the
	// default) reproduces the paper's grid-searched λ and σ².
	FixedParams *svm.Params
	// Progress, when non-nil, receives one line per completed dataset.
	Progress io.Writer
	// Parallel bounds the per-dataset pipeline's worker pools (artifact
	// branches, grid points, evaluation runs). The harness already runs
	// datasets concurrently, so the zero value here means 1 (serial
	// inside each dataset) rather than core's "every processor".
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 20150622 // the paper's DSN publication era; arbitrary but fixed
	}
	if o.Parallel == 0 {
		o.Parallel = 1
	}
	return o
}

// DatasetResult pairs a dataset with its averaged evaluation.
type DatasetResult struct {
	Spec   dataset.Spec
	Result *core.EvalResult
}

// coreConfig builds the pipeline configuration for one dataset run.
func (o Options) coreConfig() core.Config {
	return core.Config{
		Seed:        o.Seed,
		FixedParams: o.FixedParams,
		Parallel:    o.Parallel,
	}
}

// RunSpecs evaluates the given datasets with all three models. Datasets
// are independent, so they run concurrently on up to runtime.NumCPU()
// workers; results keep the input order.
func RunSpecs(specs []dataset.Spec, opts Options) ([]DatasetResult, error) {
	opts = opts.withDefaults()
	out := make([]DatasetResult, len(specs))
	errs := make([]error, len(specs))

	var progressMu sync.Mutex
	sem := make(chan struct{}, maxParallel())
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int, spec dataset.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			logs, err := spec.Generate(opts.Seed + int64(i)*104729)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: %s: %w", spec.Name, err)
				return
			}
			res, err := core.EvaluateRuns(context.Background(), logs.Benign, logs.Mixed, logs.Malicious, opts.coreConfig(), opts.Runs)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: %s: %w", spec.Name, err)
				return
			}
			out[i] = DatasetResult{Spec: spec, Result: res}
			if opts.Progress != nil {
				progressMu.Lock()
				fmt.Fprintf(opts.Progress, "%-32s WSVM ACC=%s SVM ACC=%s CGraph ACC=%s\n",
					spec.Name, report.Pct(res.WSVM.ACC), report.Pct(res.SVM.ACC), report.Pct(res.CGraph.ACC))
				progressMu.Unlock()
			}
		}(i, specs[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// maxParallel bounds dataset-level concurrency.
func maxParallel() int {
	n := runtime.NumCPU()
	if n < 1 {
		return 1
	}
	return n
}

// RunAll evaluates all 21 Table I datasets.
func RunAll(opts Options) ([]DatasetResult, error) {
	return RunSpecs(dataset.Table1Specs(), opts)
}

// Table1 renders the paper's Table I: the WSVM measurements per dataset.
func Table1(results []DatasetResult) *report.Table {
	t := report.NewTable("Name", "Attack Method", "Application", "Payload",
		"ACC", "PPV", "TPR", "TNR", "NPV", "F1")
	for _, r := range results {
		s := r.Result.WSVM
		t.AddRow(r.Spec.Name, r.Spec.AttackMethodLabel(), r.Spec.AppLabel(), r.Spec.PayloadLabel(),
			report.Pct(s.ACC), report.Pct(s.PPV), report.Pct(s.TPR), report.Pct(s.TNR), report.Pct(s.NPV),
			report.Pct(s.F1))
	}
	return t
}

// AUCTable renders the threshold-free comparison of the two margin
// models: area under the ROC curve per dataset (a view the paper does not
// include but that the decision values make free to compute).
func AUCTable(results []DatasetResult) *report.Table {
	t := report.NewTable("Name", "WSVM AUC", "SVM AUC")
	for _, r := range results {
		t.AddRow(r.Spec.Name, report.Pct(r.Result.WSVMAUC), report.Pct(r.Result.SVMAUC))
	}
	return t
}

// FigureSeries renders a Figure 6/7-style comparison: for each dataset the
// five measurements of all three models (the figures' bar groups as
// table rows).
func FigureSeries(results []DatasetResult) *report.Table {
	t := report.NewTable("Name", "Model", "ACC", "PPV", "TPR", "TNR", "NPV", "F1")
	for _, r := range results {
		add := func(model string, s metrics.Summary) {
			t.AddRow(r.Spec.Name, model,
				report.Pct(s.ACC), report.Pct(s.PPV), report.Pct(s.TPR), report.Pct(s.TNR),
				report.Pct(s.NPV), report.Pct(s.F1))
		}
		add("CGraph", r.Result.CGraph)
		add("SVM", r.Result.SVM)
		add("WSVM", r.Result.WSVM)
	}
	return t
}

// Figure6 evaluates and renders the offline-infection comparison.
func Figure6(opts Options) (*report.Table, []DatasetResult, error) {
	results, err := RunSpecs(dataset.OfflineSpecs(), opts)
	if err != nil {
		return nil, nil, err
	}
	return FigureSeries(results), results, nil
}

// Figure7 evaluates and renders the online-injection comparison.
func Figure7(opts Options) (*report.Table, []DatasetResult, error) {
	results, err := RunSpecs(dataset.OnlineSpecs(), opts)
	if err != nil {
		return nil, nil, err
	}
	return FigureSeries(results), results, nil
}

// paperCase records the paper's reported numbers for a case study so the
// rendered output can show paper-vs-measured side by side.
type paperCase struct {
	dataset string
	// ACCs and TPRs indexed CGraph, SVM, WSVM. NaN = not reported.
	acc [3]float64
	tpr [3]float64
}

// CaseStudies returns the paper's three case studies (§V-C) with the
// paper's reported ACC/TPR values alongside the measured ones.
func CaseStudies(opts Options) (*report.Table, error) {
	cases := []paperCase{
		{dataset: "winscp_reverse_tcp", acc: [3]float64{0.7479, 0.8581, 0.932}, tpr: [3]float64{0.6816, 0.7208, 0.865}},
		{dataset: "vim_codeinject", acc: [3]float64{0.355, 0.725, 0.852}, tpr: [3]float64{math.NaN(), math.NaN(), 0.715}},
		{dataset: "putty_reverse_https_online", acc: [3]float64{0.6922, 0.7825, 0.8686}, tpr: [3]float64{0.412, 0.561, 0.738}},
	}
	t := report.NewTable("Case", "Model", "Paper ACC", "Measured ACC", "Paper TPR", "Measured TPR")
	for i, c := range cases {
		spec, err := dataset.ByName(c.dataset)
		if err != nil {
			return nil, err
		}
		results, err := RunSpecs([]dataset.Spec{spec}, opts)
		if err != nil {
			return nil, err
		}
		r := results[0].Result
		measuredACC := [3]float64{r.CGraph.ACC, r.SVM.ACC, r.WSVM.ACC}
		measuredTPR := [3]float64{r.CGraph.TPR, r.SVM.TPR, r.WSVM.TPR}
		for m, model := range []string{"CGraph", "SVM", "WSVM"} {
			label := ""
			if m == 0 {
				label = fmt.Sprintf("Case %d: %s", i+1, c.dataset)
			}
			t.AddRow(label, model,
				report.Pct(c.acc[m]), report.Pct(measuredACC[m]),
				report.Pct(c.tpr[m]), report.Pct(measuredTPR[m]))
		}
	}
	return t, nil
}
