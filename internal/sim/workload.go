package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/appsim"
	"repro/internal/serve"
)

// simSession is one synthetic monitored process streaming events into
// the fleet: an appsim generator paced into fixed-size batches on the
// virtual clock, pinned to one replica.
type simSession struct {
	idx     int
	name    string // s%05d, the session's identity in logs and reports
	mix     MixEntry
	replica *replica
	spec    serve.SessionSpec
	gen     *appsim.Generator

	serverID  string // server-assigned id (random; never enters reports)
	total     int    // lifetime event budget
	sent      int
	batches   int // batches emitted so far
	remaining int // batch completions (or drops) still outstanding
	recreated int

	verdicts  int
	malicious int
	hash      verdictHash
	completed bool
}

// arrivalTimes draws the session arrival schedule for the scenario's
// whole arrival window from the dedicated arrivals stream. Bursty
// arrivals modulate the Poisson rate by the on/off phase at the current
// virtual time.
func arrivalTimes(sc Scenario, rng *rand.Rand) []int64 {
	var out []int64
	t := 0.0
	for {
		rate := sc.Arrival.RatePerSec
		if sc.Arrival.Process == "bursty" {
			cycle := sc.Arrival.OnSec + sc.Arrival.OffSec
			if math.Mod(t, cycle) < sc.Arrival.OnSec {
				rate *= sc.Arrival.BurstFactor
			}
		}
		t += rng.ExpFloat64() / rate
		if t >= sc.DurationSec {
			return out
		}
		out = append(out, secNS(t))
	}
}

// pickMix selects a session template by weight from the mix stream.
func pickMix(mix []MixEntry, rng *rand.Rand) MixEntry {
	var total float64
	for _, m := range mix {
		total += m.Weight
	}
	x := rng.Float64() * total
	for _, m := range mix {
		x -= m.Weight
		if x < 0 {
			return m
		}
	}
	return mix[len(mix)-1]
}

// drawLifetime draws one session's event budget from the lifetime
// stream.
func drawLifetime(lt LifetimeConfig, rng *rand.Rand) int {
	if lt.Dist == "uniform" && lt.MaxEvents > lt.MinEvents {
		return lt.MinEvents + rng.Intn(lt.MaxEvents-lt.MinEvents+1)
	}
	return lt.MinEvents
}

// scheduleArrivals draws the arrival schedule and enqueues every
// session's arrival event. Template choice and lifetime are drawn here,
// in arrival order, from their own global streams; the per-session
// workload stream is derived from the session name — so a session's
// event content depends only on its arrival index, never on fleet shape
// or timing.
func (s *simulation) scheduleArrivals() {
	arrivals := arrivalTimes(s.sc, s.prng.Stream("arrivals"))
	mixRNG := s.prng.Stream("mix")
	lifeRNG := s.prng.Stream("lifetime")
	for i, at := range arrivals {
		sess := &simSession{
			idx:     i,
			name:    fmt.Sprintf("s%05d", i),
			mix:     pickMix(s.sc.Mix, mixRNG),
			replica: s.replicas[i%len(s.replicas)],
			total:   drawLifetime(s.sc.Lifetime, lifeRNG),
			hash:    newVerdictHash(),
		}
		s.sessions = append(s.sessions, sess)
		at := at
		s.clock.Schedule(at, prioArrival, func() { s.arrive(sess, at) })
	}
}

// arrive opens the session's generator and starts its batch cadence.
func (s *simulation) arrive(sess *simSession, now int64) {
	if s.err != nil {
		return
	}
	proc, ok := s.procs[procKey(sess.mix)]
	if !ok {
		s.fail(fmt.Errorf("sim: no process built for mix entry %+v", sess.mix))
		return
	}
	gen, err := proc.Generator(appsim.GenConfig{
		Seed:            s.prng.StreamSeed("workload", sess.name),
		PayloadFraction: sess.mix.PayloadFraction,
		PID:             100 + sess.idx,
	})
	if err != nil {
		s.fail(fmt.Errorf("sim: session %s: %w", sess.name, err))
		return
	}
	sess.gen = gen
	sess.spec = serve.SessionSpecOfModules(proc.Modules(), "")
	if s.sc.Routed {
		// Routed sessions are placed by the ring, not round-robin; pin
		// the display owner now so the arrival log shows the placement.
		r, err := s.ownerReplica(sess.name)
		if err != nil {
			s.fail(err)
			return
		}
		sess.replica = r
	}
	s.agg.sessionsStarted++
	s.logf("t=%d arrive %s replica=%d app=%s payload=%s events=%d",
		now, sess.name, sess.replica.idx, sess.mix.App, orDash(sess.mix.Payload), sess.total)
	s.clock.Schedule(now, prioBatch, func() { s.emitBatch(sess, now) })
}

// emitBatch generates the session's next batch and hands it to the
// session's replica — immediately when the replica is up, or onto its
// held queue when it is down (the client keeps sending; the fleet's
// unavailability shows up as latency, not as lost load). The next batch
// is paced BatchIntervalMS later regardless, so arrival pressure is
// independent of fleet health.
func (s *simulation) emitBatch(sess *simSession, now int64) {
	if s.err != nil {
		return
	}
	n := sess.total - sess.sent
	if n > s.sc.BatchEvents {
		n = s.sc.BatchEvents
	}
	if n <= 0 {
		return
	}
	events := serve.EventSpecsOf(sess.gen.Next(n))
	sess.sent += n
	sess.batches++
	sess.remaining++
	s.agg.eventsSent += n
	s.agg.batchesSent++
	b := &heldBatch{sess: sess, seq: sess.batches, events: events, arrival: now}
	r := sess.replica
	if s.sc.Routed {
		// Re-resolve the owner every batch: a drain between batches moves
		// the session, and its virtual service time must move with it.
		owner, err := s.ownerReplica(sess.name)
		if err != nil {
			s.fail(err)
			return
		}
		r = owner
	}
	if r.up {
		if err := r.dispatch(b, now); err != nil {
			s.fail(err)
			return
		}
	} else {
		r.held = append(r.held, b)
		r.heldCount++
		s.agg.batchesHeld++
		s.logf("t=%d hold %s batch=%d n=%d replica=%d", now, sess.name, b.seq, len(events), r.idx)
	}
	if sess.sent < sess.total {
		next := now + int64(s.sc.BatchIntervalMS*1e6)
		s.clock.Schedule(next, prioBatch, func() { s.emitBatch(sess, next) })
	}
}

// batchSettled records one batch completion (or drop) and closes the
// session once its last batch has settled.
func (s *simulation) batchSettled(sess *simSession, now int64) {
	sess.remaining--
	if sess.completed || sess.remaining > 0 || sess.sent < sess.total {
		return
	}
	sess.completed = true
	s.agg.sessionsCompleted++
	s.logf("t=%d complete %s verdicts=%d malicious=%d", now, sess.name, sess.verdicts, sess.malicious)
	if sess.serverID == "" {
		return
	}
	if s.sc.Routed {
		// Close through the router so its ownership table forgets the
		// session too.
		if err := s.routerDrv.DeleteSession(sess.serverID); err != nil && !serve.IsStatus(err, 404) {
			s.fail(fmt.Errorf("sim: closing session %s: %w", sess.name, err))
		}
		return
	}
	r := sess.replica
	if r.up {
		if err := r.drv.DeleteSession(sess.serverID); err != nil && !serve.IsStatus(err, 404) {
			s.fail(fmt.Errorf("sim: closing session %s: %w", sess.name, err))
		}
	}
}

// orDash renders an optional name for the event log.
func orDash(v string) string {
	if v == "" {
		return "-"
	}
	return v
}
