package sim

import "container/heap"

// Event priorities: when two events share a virtual timestamp, the lower
// priority class runs first, and within a class the earlier-scheduled
// event wins (the insertion sequence number is the final tie-break).
// The class order encodes causality at an instant: a replica that
// restores at t must be up before traffic scheduled at t reaches it; a
// promotion at t applies before new sessions arriving at t; completions
// at t finish before a crash at t takes the replica down.
const (
	prioRestore = iota
	prioPromote
	prioArrival
	prioBatch
	prioComplete
	prioShutdown
	prioCrash
)

// scheduled is one pending simulation event on the shared clock.
type scheduled struct {
	at   int64 // virtual nanoseconds
	prio int
	seq  uint64
	run  func()
}

// eventHeap orders scheduled events by (time, priority, sequence).
type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) { *h = append(*h, x.(*scheduled)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Clock is the simulation's shared discrete-event clock: a single
// min-heap of scheduled events in virtual time, processed one at a time
// in (time, priority, sequence) order. Every replica, session and fault
// advances on this one clock — the shared-clock design from the
// ClusterSimulator pattern — so the global event order is total and
// reproducible, and wall-clock time never appears anywhere in the
// schedule. The three step primitives (HasPendingEvents,
// PeekNextEventTime, ProcessNextEvent) decompose the run loop so a
// harness can observe or bound the simulation between single events.
type Clock struct {
	now  int64
	seq  uint64
	heap eventHeap
}

// NewClock returns a clock at virtual time zero with no pending events.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Schedule enqueues run at virtual time at with the given priority
// class. Scheduling in the past (at < Now) is a programming error and
// panics: a discrete-event simulation must never rewind.
func (c *Clock) Schedule(at int64, prio int, run func()) {
	if at < c.now {
		panic("sim: scheduling an event in the virtual past")
	}
	c.seq++
	heap.Push(&c.heap, &scheduled{at: at, prio: prio, seq: c.seq, run: run})
}

// HasPendingEvents reports whether any event remains to process.
func (c *Clock) HasPendingEvents() bool { return len(c.heap) > 0 }

// PeekNextEventTime returns the virtual time of the next event without
// processing it. It panics when no events are pending.
func (c *Clock) PeekNextEventTime() int64 {
	if len(c.heap) == 0 {
		panic("sim: PeekNextEventTime on an empty clock")
	}
	return c.heap[0].at
}

// ProcessNextEvent advances the clock to the next event's time and runs
// it. It panics when no events are pending.
func (c *Clock) ProcessNextEvent() {
	if len(c.heap) == 0 {
		panic("sim: ProcessNextEvent on an empty clock")
	}
	ev := heap.Pop(&c.heap).(*scheduled)
	c.now = ev.at
	ev.run()
}
