package sim

import (
	"bytes"
	"testing"
)

// testScenario is a small-but-interesting workload: mixed clean and
// infected sessions, small model, a couple of virtual seconds — big
// enough to produce verdicts, small enough to train and run in well
// under a second.
func testScenario() Scenario {
	return Scenario{
		Name:        "test",
		Seed:        901,
		Replicas:    2,
		DurationSec: 4,
		Arrival:     ArrivalConfig{Process: "poisson", RatePerSec: 3},
		Lifetime:    LifetimeConfig{Dist: "uniform", MinEvents: 30, MaxEvents: 60},
		Mix: []MixEntry{
			{App: "vim", Weight: 3},
			{App: "vim", Payload: "reverse_tcp", Method: "online-injection", PayloadFraction: 0.3, Weight: 1},
		},
		BatchEvents: 10, BatchIntervalMS: 200,
		Service: ServiceConfig{PerEventMicros: 150, BatchOverheadMicros: 500, JitterFrac: 0.2},
		Model:   ModelConfig{Seed: 7, BenignEvents: 2000, MixedEvents: 1000, MaliciousEvents: 500},
	}
}

// runScenario runs one simulation and returns the report bytes and the
// event log bytes.
func runScenario(t *testing.T, sc Scenario) (*Report, []byte, []byte) {
	t.Helper()
	var log bytes.Buffer
	rep, err := Run(Config{Scenario: sc, WorkDir: t.TempDir(), EventLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return rep, blob, log.Bytes()
}

// TestRunByteDeterminism is the simulator's core contract: two runs with
// the same scenario and seed produce byte-identical reports and event
// logs — in fresh work directories, under -race, regardless of the real
// concurrency inside the serve replicas.
func TestRunByteDeterminism(t *testing.T) {
	rep1, blob1, log1 := runScenario(t, testScenario())
	_, blob2, log2 := runScenario(t, testScenario())
	if !bytes.Equal(blob1, blob2) {
		t.Errorf("same seed produced different reports:\n--- run1\n%s\n--- run2\n%s", blob1, blob2)
	}
	if !bytes.Equal(log1, log2) {
		t.Error("same seed produced different event logs")
	}
	if rep1.Verdicts == 0 || rep1.SessionsCompleted == 0 {
		t.Fatalf("degenerate run: %d verdicts, %d sessions completed", rep1.Verdicts, rep1.SessionsCompleted)
	}
	if rep1.SessionsCompleted != rep1.SessionsStarted {
		t.Errorf("%d of %d sessions completed; the drain tail should finish every session",
			rep1.SessionsCompleted, rep1.SessionsStarted)
	}
}

// TestRunSeedSensitivity proves the determinism is seeded, not
// degenerate: a different seed yields a different schedule and a
// different verdict stream.
func TestRunSeedSensitivity(t *testing.T) {
	sc := testScenario()
	rep1, _, _ := runScenario(t, sc)
	sc.Seed = 902
	rep2, _, _ := runScenario(t, sc)
	if rep1.VerdictChecksum == rep2.VerdictChecksum {
		t.Error("different seeds produced identical verdict checksums")
	}
	if rep1.EventsSent == rep2.EventsSent && rep1.SessionsStarted == rep2.SessionsStarted {
		t.Error("different seeds produced an identical arrival schedule")
	}
}

// TestRunReplicaCountInvariance proves RNG partitioning isolates the
// workload from the fleet shape: changing the replica count changes the
// service schedule (different busy queues) but not a single verdict —
// each session's event content and scoring depend only on its arrival
// index, never on which replica served it.
func TestRunReplicaCountInvariance(t *testing.T) {
	sc := testScenario()
	rep2, _, _ := runScenario(t, sc)
	sc.Replicas = 1
	rep1, _, _ := runScenario(t, sc)
	if rep1.VerdictChecksum != rep2.VerdictChecksum {
		t.Errorf("verdict checksum changed with replica count: %s vs %s",
			rep1.VerdictChecksum, rep2.VerdictChecksum)
	}
	if rep1.Verdicts != rep2.Verdicts || rep1.EventsSent != rep2.EventsSent {
		t.Errorf("workload changed with replica count: %d/%d verdicts, %d/%d events",
			rep1.Verdicts, rep2.Verdicts, rep1.EventsSent, rep2.EventsSent)
	}
	// The schedules must actually differ — one replica serialises what
	// two overlapped — or the invariance above proves nothing.
	if rep1.VirtualDurationMS == rep2.VirtualDurationMS &&
		rep1.BatchLatency == rep2.BatchLatency {
		t.Error("service schedule identical across replica counts; the model is not exercising the fleet")
	}
}

// TestRunSigtermContinuity proves graceful churn is invisible to the
// verdict stream: a sigterm crash checkpoints sessions to the spool and
// the restored replica resumes them with identical detector state, so
// the run's verdict checksum matches the fault-free reference exactly —
// while the held-batch counters prove the crash really happened.
func TestRunSigtermContinuity(t *testing.T) {
	ref, _, _ := runScenario(t, testScenario())
	sc := testScenario()
	sc.Faults = []FaultSpec{{Replica: 0, AtSec: 1, DownSec: 2, Kind: "sigterm"}}
	churned, _, _ := runScenario(t, sc)
	if churned.BatchesHeld == 0 || churned.Fleet[0].Crashes != 1 || churned.Fleet[0].Restores != 1 {
		t.Fatalf("crash did not bite: held=%d fleet=%+v", churned.BatchesHeld, churned.Fleet)
	}
	if churned.VerdictChecksum != ref.VerdictChecksum {
		t.Errorf("sigterm churn changed the verdict stream: %s vs reference %s",
			churned.VerdictChecksum, ref.VerdictChecksum)
	}
	if churned.Verdicts != ref.Verdicts || churned.SessionsRecreated != 0 {
		t.Errorf("sigterm churn lost state: %d vs %d verdicts, %d recreations",
			churned.Verdicts, ref.Verdicts, churned.SessionsRecreated)
	}
	if churned.BatchLatency.MaxMS < 1000 {
		t.Errorf("held batches should surface downtime in tail latency; max %.1fms", churned.BatchLatency.MaxMS)
	}
}

// TestRunKillDivergence proves hard kills are NOT invisible: the spool
// checkpoint fails, server-side sessions die, the simulator re-opens
// them, and the verdict stream diverges from the fault-free reference.
// Still deterministically — the killed run reproduces itself.
func TestRunKillDivergence(t *testing.T) {
	ref, _, _ := runScenario(t, testScenario())
	sc := testScenario()
	sc.Faults = []FaultSpec{{Replica: 0, AtSec: 1, DownSec: 2, Kind: "kill"}}
	killed1, blob1, _ := runScenario(t, sc)
	_, blob2, _ := runScenario(t, sc)
	if !bytes.Equal(blob1, blob2) {
		t.Errorf("killed run is not reproducible:\n--- run1\n%s\n--- run2\n%s", blob1, blob2)
	}
	if killed1.SessionsRecreated == 0 {
		t.Error("kill lost no sessions; the spool fault injection did not bite")
	}
	if killed1.VerdictChecksum == ref.VerdictChecksum {
		t.Error("kill churn left the verdict stream identical to the fault-free reference")
	}
}

// TestRunPromotion proves the mid-traffic promotion fires and the run
// stays deterministic with two models in play.
func TestRunPromotion(t *testing.T) {
	sc := testScenario()
	sc.Model.ChallengerSeed = 11
	sc.Promotion = &PromotionSpec{AtSec: 2}
	rep, blob1, _ := runScenario(t, sc)
	if !rep.Promoted {
		t.Fatal("promotion did not fire")
	}
	if rep.Challenger == "" || rep.Challenger == rep.Champion {
		t.Fatalf("challenger %q vs champion %q: want two distinct registry entries", rep.Challenger, rep.Champion)
	}
	_, blob2, _ := runScenario(t, sc)
	if !bytes.Equal(blob1, blob2) {
		t.Error("promotion run is not reproducible")
	}
}
