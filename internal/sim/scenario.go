package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/appsim"
	"repro/internal/dataset"
)

// ArrivalConfig describes the session arrival process.
type ArrivalConfig struct {
	// Process selects the arrival model: "poisson" (exponential
	// inter-arrivals at RatePerSec) or "bursty" (an on/off modulated
	// Poisson process: RatePerSec*BurstFactor during on-phases of OnSec,
	// RatePerSec during off-phases of OffSec).
	Process string `json:"process"`
	// RatePerSec is the base session arrival rate, in sessions per
	// virtual second.
	RatePerSec float64 `json:"rate_per_sec"`
	// BurstFactor multiplies the rate during on-phases (bursty only).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// OnSec and OffSec are the phase lengths of the bursty modulation,
	// in virtual seconds.
	OnSec  float64 `json:"on_sec,omitempty"`
	OffSec float64 `json:"off_sec,omitempty"`
}

// LifetimeConfig describes how many events one session emits over its
// life.
type LifetimeConfig struct {
	// Dist selects the lifetime distribution: "fixed" (always MinEvents)
	// or "uniform" (uniform on [MinEvents, MaxEvents]).
	Dist string `json:"dist"`
	// MinEvents and MaxEvents bound the per-session event count.
	MinEvents int `json:"min_events"`
	MaxEvents int `json:"max_events,omitempty"`
}

// MixEntry is one session template in the scenario's workload mix: which
// appsim application the session runs, the payload infecting it (if
// any), and the template's selection weight.
type MixEntry struct {
	// App names the appsim application profile (winscp, chrome,
	// notepad++, putty, vim).
	App string `json:"app"`
	// Payload names the appsim payload profile (reverse_tcp,
	// reverse_https, codeinject); empty means a clean session.
	Payload string `json:"payload,omitempty"`
	// Method is the attack method for infected sessions:
	// "offline-infection" or "online-injection" (default
	// "online-injection" when a payload is set).
	Method string `json:"method,omitempty"`
	// PayloadFraction is the probability of drawing payload operations
	// while generating the session's events (infected sessions only).
	PayloadFraction float64 `json:"payload_fraction,omitempty"`
	// Weight is the relative probability of a new session using this
	// template.
	Weight float64 `json:"weight"`
}

// FaultSpec schedules one replica crash and its restoration.
type FaultSpec struct {
	// Replica is the replica index to kill; -1 kills every replica.
	Replica int `json:"replica"`
	// AtSec is the crash's virtual time.
	AtSec float64 `json:"at_sec"`
	// DownSec is how long the replica stays down before restoring.
	DownSec float64 `json:"down_sec"`
	// Kind is the crash flavour: "sigterm" (graceful — queued batches
	// drain, sessions checkpoint to the spool and restore intact) or
	// "kill" (hard — in-flight batches drop, the checkpoint spool fails
	// via the serve/spool/checkpoint fault-injection point, sessions
	// restart from scratch).
	Kind string `json:"kind"`
}

// DrainSpec schedules one ring change in a routed scenario: the replica
// leaves the ring at AtSec (its sessions move to their new ring owners
// by checkpoint handoff) and rejoins RejoinSec later (sessions whose
// ring owner it is hand back). Unlike a FaultSpec crash, no state is
// ever lost — the drain is the cooperative maintenance path, and the
// run's verdict checksum must not notice it happened.
type DrainSpec struct {
	// Replica is the replica index to drain.
	Replica int `json:"replica"`
	// AtSec is the drain's virtual time.
	AtSec float64 `json:"at_sec"`
	// RejoinSec is how long after the drain the replica rejoins the
	// ring; 0 means it stays out for the rest of the run.
	RejoinSec float64 `json:"rejoin_sec,omitempty"`
}

// PromotionSpec schedules a mid-traffic registry promotion.
type PromotionSpec struct {
	// AtSec is when the challenger entry becomes the registry's current
	// pointer and every live replica hot-reloads. Sessions opened before
	// the promotion stay pinned to the old champion; sessions opened
	// after score with the challenger.
	AtSec float64 `json:"at_sec"`
}

// ServiceConfig is the deterministic virtual service-time model of one
// replica: how long, in virtual time, scoring work occupies the
// replica's pipeline. Real scoring still happens (each batch goes
// through the serve handler path), but its wall-clock cost never enters
// the schedule — latency and throughput are functions of this model and
// the arrival schedule alone, which is what makes reports
// machine-independent and byte-reproducible.
type ServiceConfig struct {
	// PerEventMicros is the virtual cost of scoring one event.
	PerEventMicros float64 `json:"per_event_micros"`
	// BatchOverheadMicros is the fixed virtual cost per batch (request
	// handling, queue hand-off).
	BatchOverheadMicros float64 `json:"batch_overhead_micros"`
	// JitterFrac scales a deterministic per-batch service-time jitter
	// drawn from the replica's RNG stream: the cost is multiplied by a
	// factor uniform on [1-JitterFrac, 1+JitterFrac].
	JitterFrac float64 `json:"jitter_frac,omitempty"`
}

// ModelConfig describes the model bundle(s) the simulated fleet serves.
// The simulator trains them in-process from a dataset spec — training is
// deterministic, so the served model (and therefore every verdict) is a
// pure function of this config.
type ModelConfig struct {
	// Dataset names the internal/dataset spec to train from (default
	// "vim_reverse_tcp").
	Dataset string `json:"dataset"`
	// Seed is the champion's training seed.
	Seed int64 `json:"seed"`
	// ChallengerSeed trains the promotion challenger (scenarios with a
	// promotion only); it must differ from Seed so the bundles hash to
	// distinct registry entries.
	ChallengerSeed int64 `json:"challenger_seed,omitempty"`
	// BenignEvents, MixedEvents and MaliciousEvents size the training
	// logs (defaults keep training under a couple of seconds).
	BenignEvents    int `json:"benign_events,omitempty"`
	MixedEvents     int `json:"mixed_events,omitempty"`
	MaliciousEvents int `json:"malicious_events,omitempty"`
}

// Scenario is one complete simulation configuration: the cluster shape,
// workload, faults and service model. A scenario plus its seed fully
// determines the run — same scenario, same seed, byte-identical report.
type Scenario struct {
	// Name labels the scenario in reports and BENCH_sim.json rows.
	Name string `json:"name"`
	// Seed is the master seed every random stream partitions from.
	Seed int64 `json:"seed"`
	// Replicas is how many in-process serve replicas the fleet runs.
	Replicas int `json:"replicas"`
	// DurationSec is the arrival window in virtual seconds: sessions
	// stop arriving at this time and the simulation drains the tail.
	DurationSec float64 `json:"duration_sec"`
	// Arrival is the session arrival process.
	Arrival ArrivalConfig `json:"arrival"`
	// Lifetime is the per-session event-count distribution.
	Lifetime LifetimeConfig `json:"lifetime"`
	// Mix is the weighted set of session templates.
	Mix []MixEntry `json:"mix"`
	// BatchEvents is how many events one ingest batch carries.
	BatchEvents int `json:"batch_events"`
	// BatchIntervalMS is the virtual pacing between a session's batches,
	// in milliseconds.
	BatchIntervalMS float64 `json:"batch_interval_ms"`
	// Service is the replica service-time model.
	Service ServiceConfig `json:"service"`
	// Routed runs the fleet behind a real fleet.Router: sessions shard
	// by consistent hash on the session name instead of round-robin
	// pinning, every batch traverses the router's forwarding path, each
	// replica serves from its own registry store replicated from the
	// run's primary, and promotions propagate through registry sync. The
	// verdict checksum must match the same workload unrouted — routing
	// is a placement concern and may never change what is scored.
	Routed bool `json:"routed,omitempty"`
	// Faults is the crash/restore schedule, possibly empty.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Drains is the routed-mode ring-change schedule (drain + rejoin via
	// checkpoint handoff); requires Routed.
	Drains []DrainSpec `json:"drains,omitempty"`
	// Promotion, when set, schedules a mid-traffic registry promotion.
	Promotion *PromotionSpec `json:"promotion,omitempty"`
	// Model configures the served bundle(s).
	Model ModelConfig `json:"model"`
}

// secNS converts virtual seconds to virtual nanoseconds.
func secNS(s float64) int64 { return int64(s * 1e9) }

// withDefaults fills unset scenario knobs with the simulator defaults.
func (sc Scenario) withDefaults() Scenario {
	if sc.Replicas <= 0 {
		sc.Replicas = 1
	}
	if sc.BatchEvents <= 0 {
		sc.BatchEvents = 10
	}
	if sc.BatchIntervalMS <= 0 {
		sc.BatchIntervalMS = 100
	}
	if sc.Service.PerEventMicros <= 0 {
		sc.Service.PerEventMicros = 150
	}
	if sc.Service.BatchOverheadMicros <= 0 {
		sc.Service.BatchOverheadMicros = 500
	}
	if sc.Lifetime.Dist == "" {
		sc.Lifetime.Dist = "fixed"
	}
	if sc.Lifetime.MaxEvents == 0 {
		sc.Lifetime.MaxEvents = sc.Lifetime.MinEvents
	}
	if sc.Arrival.Process == "" {
		sc.Arrival.Process = "poisson"
	}
	if sc.Model.Dataset == "" {
		sc.Model.Dataset = "vim_reverse_tcp"
	}
	if sc.Model.Seed == 0 {
		sc.Model.Seed = 7
	}
	if sc.Model.BenignEvents == 0 {
		sc.Model.BenignEvents = 4000
	}
	if sc.Model.MixedEvents == 0 {
		sc.Model.MixedEvents = 2000
	}
	if sc.Model.MaliciousEvents == 0 {
		sc.Model.MaliciousEvents = 1000
	}
	if len(sc.Mix) == 0 {
		sc.Mix = []MixEntry{{App: "vim", Weight: 4}, {App: "vim", Payload: "reverse_tcp", Method: "online-injection", PayloadFraction: 0.3, Weight: 1}}
	}
	return sc
}

// attackMethods maps scenario method names onto appsim.
var attackMethods = map[string]appsim.AttackMethod{
	"offline-infection": appsim.MethodOfflineInfection,
	"online-injection":  appsim.MethodOnlineInjection,
}

// Validate checks the scenario (after defaulting) for structural errors.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("sim: scenario has no name")
	}
	if sc.DurationSec <= 0 {
		return fmt.Errorf("sim: scenario %q: duration_sec must be positive", sc.Name)
	}
	switch sc.Arrival.Process {
	case "poisson":
	case "bursty":
		if sc.Arrival.OnSec <= 0 || sc.Arrival.OffSec <= 0 {
			return fmt.Errorf("sim: scenario %q: bursty arrivals need positive on_sec and off_sec", sc.Name)
		}
		if sc.Arrival.BurstFactor <= 1 {
			return fmt.Errorf("sim: scenario %q: bursty arrivals need burst_factor > 1", sc.Name)
		}
	default:
		return fmt.Errorf("sim: scenario %q: unknown arrival process %q (want poisson or bursty)", sc.Name, sc.Arrival.Process)
	}
	if sc.Arrival.RatePerSec <= 0 {
		return fmt.Errorf("sim: scenario %q: arrival rate_per_sec must be positive", sc.Name)
	}
	switch sc.Lifetime.Dist {
	case "fixed", "uniform":
	default:
		return fmt.Errorf("sim: scenario %q: unknown lifetime dist %q (want fixed or uniform)", sc.Name, sc.Lifetime.Dist)
	}
	if sc.Lifetime.MinEvents <= 0 || sc.Lifetime.MaxEvents < sc.Lifetime.MinEvents {
		return fmt.Errorf("sim: scenario %q: lifetime events range [%d,%d] invalid", sc.Name, sc.Lifetime.MinEvents, sc.Lifetime.MaxEvents)
	}
	for i, m := range sc.Mix {
		if _, err := appsim.AppProfile(m.App); err != nil {
			return fmt.Errorf("sim: scenario %q: mix[%d]: %w", sc.Name, i, err)
		}
		if m.Weight <= 0 {
			return fmt.Errorf("sim: scenario %q: mix[%d] weight must be positive", sc.Name, i)
		}
		if m.Payload != "" {
			if _, err := appsim.PayloadProfile(m.Payload); err != nil {
				return fmt.Errorf("sim: scenario %q: mix[%d]: %w", sc.Name, i, err)
			}
			method := m.Method
			if method == "" {
				method = "online-injection"
			}
			if _, ok := attackMethods[method]; !ok {
				return fmt.Errorf("sim: scenario %q: mix[%d]: unknown attack method %q", sc.Name, i, method)
			}
			if m.PayloadFraction <= 0 || m.PayloadFraction > 1 {
				return fmt.Errorf("sim: scenario %q: mix[%d]: payload_fraction %v out of (0,1]", sc.Name, i, m.PayloadFraction)
			}
		} else if m.Method != "" {
			return fmt.Errorf("sim: scenario %q: mix[%d]: method set without a payload", sc.Name, i)
		}
	}
	for i, f := range sc.Faults {
		if f.Replica < -1 || f.Replica >= sc.Replicas {
			return fmt.Errorf("sim: scenario %q: faults[%d]: replica %d out of range (have %d replicas, -1 = all)", sc.Name, i, f.Replica, sc.Replicas)
		}
		if f.AtSec <= 0 || f.DownSec <= 0 {
			return fmt.Errorf("sim: scenario %q: faults[%d]: at_sec and down_sec must be positive", sc.Name, i)
		}
		switch f.Kind {
		case "sigterm", "kill":
		default:
			return fmt.Errorf("sim: scenario %q: faults[%d]: unknown kind %q (want sigterm or kill)", sc.Name, i, f.Kind)
		}
	}
	if len(sc.Drains) > 0 && !sc.Routed {
		return fmt.Errorf("sim: scenario %q: drains require routed mode", sc.Name)
	}
	if sc.Routed && len(sc.Faults) > 0 {
		return fmt.Errorf("sim: scenario %q: routed mode and faults are mutually exclusive (a crash bypasses the router's ownership table; use drains)", sc.Name)
	}
	for i, d := range sc.Drains {
		if d.Replica < 0 || d.Replica >= sc.Replicas {
			return fmt.Errorf("sim: scenario %q: drains[%d]: replica %d out of range (have %d replicas)", sc.Name, i, d.Replica, sc.Replicas)
		}
		if d.AtSec <= 0 || d.RejoinSec < 0 {
			return fmt.Errorf("sim: scenario %q: drains[%d]: at_sec must be positive and rejoin_sec non-negative", sc.Name, i)
		}
	}
	if sc.Routed && sc.Replicas < 2 {
		return fmt.Errorf("sim: scenario %q: routed mode needs at least 2 replicas", sc.Name)
	}
	if sc.Promotion != nil {
		if sc.Promotion.AtSec <= 0 {
			return fmt.Errorf("sim: scenario %q: promotion at_sec must be positive", sc.Name)
		}
		if sc.Model.ChallengerSeed == 0 || sc.Model.ChallengerSeed == sc.Model.Seed {
			return fmt.Errorf("sim: scenario %q: promotion needs model.challenger_seed distinct from model.seed", sc.Name)
		}
	}
	if _, err := dataset.ByName(sc.Model.Dataset); err != nil {
		return fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
	}
	return nil
}

// ParseScenario decodes a scenario JSON document, applies defaults and
// validates it. Unknown fields are rejected so a typo'd knob fails loud
// instead of silently simulating something else.
func ParseScenario(blob []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("sim: decoding scenario: %w", err)
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (Scenario, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %w", err)
	}
	sc, err := ParseScenario(blob)
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	return sc, nil
}

// Canonical returns the pinned scenario catalog from EXPERIMENTS.md: the
// named workloads (and their seeds) every BENCH_sim.json row is
// keyed by, so simulator numbers stay comparable across PRs. Mutating a
// canonical scenario's shape or seed invalidates the committed baseline
// and requires a BENCH_REBASELINE=1 rebaseline.
func Canonical() []Scenario {
	mix := []MixEntry{
		{App: "vim", Weight: 3},
		{App: "putty", Weight: 2},
		{App: "vim", Payload: "reverse_tcp", Method: "online-injection", PayloadFraction: 0.3, Weight: 1},
	}
	base := Scenario{
		Replicas:    2,
		DurationSec: 30,
		Arrival:     ArrivalConfig{Process: "poisson", RatePerSec: 6},
		Lifetime:    LifetimeConfig{Dist: "uniform", MinEvents: 40, MaxEvents: 80},
		Mix:         mix,
		BatchEvents: 10, BatchIntervalMS: 250,
		Service: ServiceConfig{PerEventMicros: 150, BatchOverheadMicros: 500, JitterFrac: 0.2},
		Model:   ModelConfig{Dataset: "vim_reverse_tcp", Seed: 7},
	}
	steady := base
	steady.Name, steady.Seed = "steady-state", 1101

	burst := base
	burst.Name, burst.Seed = "burst", 1102
	burst.Arrival = ArrivalConfig{Process: "bursty", RatePerSec: 4, BurstFactor: 8, OnSec: 3, OffSec: 7}

	churn := base
	churn.Name, churn.Seed = "churn", 1103
	churn.Faults = []FaultSpec{
		{Replica: 0, AtSec: 8, DownSec: 3, Kind: "sigterm"},
		{Replica: 1, AtSec: 14, DownSec: 3, Kind: "kill"},
		{Replica: 0, AtSec: 22, DownSec: 2, Kind: "sigterm"},
	}

	promote := base
	promote.Name, promote.Seed = "promote-under-load", 1104
	promote.Promotion = &PromotionSpec{AtSec: 15}
	promote.Model.ChallengerSeed = 11

	storm := base
	storm.Name, storm.Seed = "restore-storm", 1105
	storm.Replicas = 3
	storm.Faults = []FaultSpec{{Replica: -1, AtSec: 12, DownSec: 5, Kind: "sigterm"}}

	routedSteady := base
	routedSteady.Name, routedSteady.Seed = "routed-steady", 1106
	routedSteady.Routed = true
	routedSteady.Replicas = 3

	routedRebalance := base
	routedRebalance.Name, routedRebalance.Seed = "routed-rebalance", 1107
	routedRebalance.Routed = true
	routedRebalance.Replicas = 3
	routedRebalance.Drains = []DrainSpec{{Replica: 1, AtSec: 10, RejoinSec: 10}}
	routedRebalance.Promotion = &PromotionSpec{AtSec: 15}
	routedRebalance.Model.ChallengerSeed = 11

	out := []Scenario{steady, burst, churn, promote, storm, routedSteady, routedRebalance}
	for i := range out {
		out[i] = out[i].withDefaults()
	}
	return out
}

// CanonicalByName returns the named canonical scenario.
func CanonicalByName(name string) (Scenario, error) {
	for _, sc := range Canonical() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("sim: unknown canonical scenario %q", name)
}

// CanonicalNames lists the canonical scenario names in catalog order.
func CanonicalNames() []string {
	scs := Canonical()
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Name
	}
	return out
}
