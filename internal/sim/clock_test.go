package sim

import "testing"

// TestClockOrdering proves the heap's total order: time first, then the
// priority class, then insertion sequence.
func TestClockOrdering(t *testing.T) {
	c := NewClock()
	var got []string
	record := func(s string) func() { return func() { got = append(got, s) } }

	c.Schedule(20, prioBatch, record("batch@20"))
	c.Schedule(10, prioCrash, record("crash@10"))
	c.Schedule(10, prioRestore, record("restore@10"))
	c.Schedule(10, prioComplete, record("complete@10-a"))
	c.Schedule(10, prioComplete, record("complete@10-b"))
	c.Schedule(5, prioArrival, record("arrival@5"))

	for c.HasPendingEvents() {
		c.ProcessNextEvent()
	}
	want := []string{"arrival@5", "restore@10", "complete@10-a", "complete@10-b", "crash@10", "batch@20"}
	if len(got) != len(want) {
		t.Fatalf("processed %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
	if c.Now() != 20 {
		t.Fatalf("clock at %d after drain, want 20", c.Now())
	}
}

// TestClockSameInstantScheduling proves events scheduled at the current
// instant (at == Now) are legal and run after the current event.
func TestClockSameInstantScheduling(t *testing.T) {
	c := NewClock()
	var got []string
	c.Schedule(10, prioArrival, func() {
		got = append(got, "arrival")
		c.Schedule(10, prioBatch, func() { got = append(got, "batch") })
	})
	for c.HasPendingEvents() {
		c.ProcessNextEvent()
	}
	if len(got) != 2 || got[0] != "arrival" || got[1] != "batch" {
		t.Fatalf("got %v, want [arrival batch]", got)
	}
}

// TestClockRejectsPast proves scheduling before Now panics: a
// discrete-event simulation must never rewind.
func TestClockRejectsPast(t *testing.T) {
	c := NewClock()
	c.Schedule(10, prioArrival, func() {})
	c.ProcessNextEvent()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.Schedule(5, prioArrival, func() {})
}

// TestClockPeek proves PeekNextEventTime observes without advancing.
func TestClockPeek(t *testing.T) {
	c := NewClock()
	c.Schedule(42, prioArrival, func() {})
	if at := c.PeekNextEventTime(); at != 42 {
		t.Fatalf("peek %d, want 42", at)
	}
	if c.Now() != 0 {
		t.Fatalf("peek advanced the clock to %d", c.Now())
	}
}
