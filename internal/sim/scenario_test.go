package sim

import (
	"encoding/json"
	"strings"
	"testing"
)

// validScenarioJSON is a minimal well-formed scenario document.
const validScenarioJSON = `{
  "name": "t",
  "seed": 1,
  "replicas": 2,
  "duration_sec": 5,
  "arrival": {"process": "poisson", "rate_per_sec": 2},
  "lifetime": {"dist": "uniform", "min_events": 20, "max_events": 40},
  "mix": [{"app": "vim", "weight": 1}],
  "batch_events": 10,
  "batch_interval_ms": 100,
  "service": {"per_event_micros": 100, "batch_overhead_micros": 200}
}`

func TestParseScenarioRoundTrip(t *testing.T) {
	sc, err := ParseScenario([]byte(validScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := ParseScenario(blob)
	if err != nil {
		t.Fatalf("re-parsing a marshalled scenario: %v", err)
	}
	if sc2.Name != sc.Name || sc2.Seed != sc.Seed || sc2.Replicas != sc.Replicas ||
		sc2.Lifetime != sc.Lifetime || sc2.Arrival != sc.Arrival || sc2.Service != sc.Service {
		t.Fatalf("round trip changed the scenario: %+v vs %+v", sc2, sc)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	blob := strings.Replace(validScenarioJSON, `"seed": 1,`, `"seed": 1, "sede": 2,`, 1)
	if _, err := ParseScenario([]byte(blob)); err == nil {
		t.Fatal("typo'd field was accepted silently")
	}
}

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"name": "d", "seed": 1, "duration_sec": 5,
		"arrival": {"rate_per_sec": 1}, "lifetime": {"min_events": 10}}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Replicas != 1 || sc.BatchEvents != 10 || sc.Arrival.Process != "poisson" ||
		sc.Lifetime.Dist != "fixed" || sc.Lifetime.MaxEvents != 10 ||
		sc.Model.Dataset != "vim_reverse_tcp" || len(sc.Mix) == 0 {
		t.Fatalf("defaults not applied: %+v", sc)
	}
}

// TestScenarioValidation walks the validator's error cases.
func TestScenarioValidation(t *testing.T) {
	base := func() Scenario {
		sc, err := ParseScenario([]byte(validScenarioJSON))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		substr string
	}{
		{"no name", func(sc *Scenario) { sc.Name = "" }, "no name"},
		{"bad duration", func(sc *Scenario) { sc.DurationSec = 0 }, "duration_sec"},
		{"bad arrival process", func(sc *Scenario) { sc.Arrival.Process = "constant" }, "arrival process"},
		{"bursty without phases", func(sc *Scenario) { sc.Arrival.Process = "bursty"; sc.Arrival.BurstFactor = 4 }, "on_sec"},
		{"bursty without factor", func(sc *Scenario) {
			sc.Arrival.Process = "bursty"
			sc.Arrival.OnSec, sc.Arrival.OffSec = 1, 1
		}, "burst_factor"},
		{"bad lifetime dist", func(sc *Scenario) { sc.Lifetime.Dist = "zipf" }, "lifetime dist"},
		{"inverted lifetime", func(sc *Scenario) { sc.Lifetime.MaxEvents = 5 }, "invalid"},
		{"unknown app", func(sc *Scenario) { sc.Mix[0].App = "emacs" }, "emacs"},
		{"zero weight", func(sc *Scenario) { sc.Mix[0].Weight = 0 }, "weight"},
		{"unknown payload", func(sc *Scenario) {
			sc.Mix[0].Payload = "cryptominer"
			sc.Mix[0].PayloadFraction = 0.5
		}, "cryptominer"},
		{"method without payload", func(sc *Scenario) { sc.Mix[0].Method = "online-injection" }, "without a payload"},
		{"payload without fraction", func(sc *Scenario) { sc.Mix[0].Payload = "reverse_tcp" }, "payload_fraction"},
		{"fault replica out of range", func(sc *Scenario) {
			sc.Faults = []FaultSpec{{Replica: 2, AtSec: 1, DownSec: 1, Kind: "sigterm"}}
		}, "out of range"},
		{"bad fault kind", func(sc *Scenario) {
			sc.Faults = []FaultSpec{{Replica: 0, AtSec: 1, DownSec: 1, Kind: "sigkill9"}}
		}, "kind"},
		{"promotion without challenger", func(sc *Scenario) { sc.Promotion = &PromotionSpec{AtSec: 2} }, "challenger_seed"},
		{"unknown dataset", func(sc *Scenario) { sc.Model.Dataset = "nope" }, "nope"},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", tc.name, tc.substr)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

// TestCanonicalCatalog proves every canonical scenario validates, the
// names are unique, and the catalog covers the documented matrix:
// bursty arrivals, both crash kinds, and a promotion.
func TestCanonicalCatalog(t *testing.T) {
	scs := Canonical()
	if len(scs) != 7 {
		t.Fatalf("catalog has %d scenarios, want 7", len(scs))
	}
	seen := map[string]bool{}
	seeds := map[int64]bool{}
	var bursty, sigterm, kill, promotion, routed, drained bool
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Errorf("canonical %s invalid: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate canonical name %s", sc.Name)
		}
		if seeds[sc.Seed] {
			t.Errorf("duplicate canonical seed %d", sc.Seed)
		}
		seen[sc.Name], seeds[sc.Seed] = true, true
		bursty = bursty || sc.Arrival.Process == "bursty"
		promotion = promotion || sc.Promotion != nil
		routed = routed || sc.Routed
		drained = drained || len(sc.Drains) > 0
		for _, f := range sc.Faults {
			sigterm = sigterm || f.Kind == "sigterm"
			kill = kill || f.Kind == "kill"
		}
	}
	if !bursty || !sigterm || !kill || !promotion || !routed || !drained {
		t.Fatalf("catalog coverage: bursty=%v sigterm=%v kill=%v promotion=%v routed=%v drained=%v, want all true",
			bursty, sigterm, kill, promotion, routed, drained)
	}
	if _, err := CanonicalByName("steady-state"); err != nil {
		t.Fatal(err)
	}
	if _, err := CanonicalByName("no-such"); err == nil {
		t.Fatal("unknown canonical name accepted")
	}
	if names := CanonicalNames(); len(names) != len(scs) || names[0] != scs[0].Name {
		t.Fatalf("CanonicalNames mismatch: %v", names)
	}
}
