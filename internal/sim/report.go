package sim

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"sort"
)

// LatencySummary summarises one virtual-latency sample set in
// milliseconds. All quantiles are over virtual time — the deterministic
// service model, not wall clock — so the summary is identical across
// runs and machines.
type LatencySummary struct {
	// Count is how many samples the summary covers.
	Count int `json:"count"`
	// P50ms, P95ms, P99ms and MaxMS are virtual-latency quantiles.
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// summarize builds the quantile summary of virtual-nanosecond samples.
func summarize(samples []int64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(sorted[i]) / 1e6
	}
	return LatencySummary{
		Count: len(sorted),
		P50ms: q(0.50),
		P95ms: q(0.95),
		P99ms: q(0.99),
		MaxMS: float64(sorted[len(sorted)-1]) / 1e6,
	}
}

// ReplicaStats is one replica's row in the report.
type ReplicaStats struct {
	// Replica is the replica index.
	Replica int `json:"replica"`
	// Batches counts batches the replica scored; Held counts batches
	// that arrived while it was down and were delivered at restore;
	// Dropped counts in-flight batches lost to hard kills.
	Batches int `json:"batches"`
	Held    int `json:"held"`
	Dropped int `json:"dropped"`
	// Crashes and Restores count the replica's fault cycles.
	Crashes  int `json:"crashes"`
	Restores int `json:"restores"`
}

// Report is a simulation run's result. Every field is a deterministic
// function of (scenario, seed): virtual time only, no wall-clock
// timestamps, no host paths, no randomly assigned identifiers — two runs
// with the same inputs marshal to byte-identical JSON.
type Report struct {
	// Scenario and Seed identify the run.
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Replicas is the fleet size.
	Replicas int `json:"replicas"`
	// Champion is the registry entry the fleet boots on; Challenger is
	// the promotion candidate (promotion scenarios only); Promoted
	// reports whether the mid-traffic promotion fired.
	Champion   string `json:"champion"`
	Challenger string `json:"challenger,omitempty"`
	Promoted   bool   `json:"promoted,omitempty"`
	// VirtualDurationMS is the virtual time of the last simulation
	// event — arrival window plus drain tail.
	VirtualDurationMS float64 `json:"virtual_duration_ms"`
	// SessionsStarted, SessionsCompleted and SessionsRecreated count
	// session lifecycles; a recreation is a session re-opened after a
	// hard kill lost its server-side state.
	SessionsStarted   int `json:"sessions_started"`
	SessionsCompleted int `json:"sessions_completed"`
	SessionsRecreated int `json:"sessions_recreated"`
	// EventsSent counts generated events ingested into the fleet.
	EventsSent int `json:"events_sent"`
	// BatchesSent/Held/Dropped count ingest batches by fate.
	BatchesSent    int `json:"batches_sent"`
	BatchesHeld    int `json:"batches_held"`
	BatchesDropped int `json:"batches_dropped"`
	// Verdicts and Malicious count delivered verdict windows.
	Verdicts  int `json:"verdicts"`
	Malicious int `json:"malicious"`
	// Routed reports that the run sharded sessions through a real
	// fleet.Router; RingGeneration is the ring's final generation and
	// Handoffs counts sessions moved by checkpoint handoff across every
	// drain and rejoin. All three are omitted for unrouted runs so
	// pre-fleet baseline rows keep their exact bytes.
	Routed         bool  `json:"routed,omitempty"`
	RingGeneration int64 `json:"ring_generation,omitempty"`
	Handoffs       int   `json:"handoffs,omitempty"`
	// VerdictChecksum fingerprints the full verdict stream: FNV-1a over
	// every session's (window bounds, score bits, verdict) in session
	// order. Byte-equal checksums mean byte-equal verdict streams.
	VerdictChecksum string `json:"verdict_checksum"`
	// ThroughputEPS is events scored per virtual second.
	ThroughputEPS float64 `json:"throughput_eps"`
	// BatchLatency and VerdictLatency summarise virtual arrival-to-done
	// latency per batch and per verdict window.
	BatchLatency   LatencySummary `json:"batch_latency"`
	VerdictLatency LatencySummary `json:"verdict_latency"`
	// Fleet is the per-replica breakdown.
	Fleet []ReplicaStats `json:"fleet"`
}

// JSON marshals the report in its canonical indented form, trailing
// newline included — the bytes the determinism contract is stated over.
func (r *Report) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// aggregator accumulates run statistics as completion events fire.
type aggregator struct {
	batchLat   []int64
	verdictLat []int64

	eventsSent     int
	batchesSent    int
	batchesHeld    int
	batchesDropped int
	verdicts       int
	malicious      int

	sessionsStarted   int
	sessionsCompleted int
	sessionsRecreated int

	handoffs int
}

// verdictHash carries one session's running verdict-stream fingerprint.
type verdictHash struct{ sum uint64 }

// newVerdictHash starts an FNV-1a fingerprint.
func newVerdictHash() verdictHash { return verdictHash{sum: 14695981039346656037} }

func (h *verdictHash) write(b []byte) {
	for _, c := range b {
		h.sum ^= uint64(c)
		h.sum *= 1099511628211
	}
}

// addVerdict folds one verdict window into the fingerprint.
func (h *verdictHash) addVerdict(first, last int, score float64, malicious bool) {
	var b [25]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(int64(first)))
	binary.LittleEndian.PutUint64(b[8:], uint64(int64(last)))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(score))
	if malicious {
		b[24] = 1
	}
	h.write(b[:])
}

// combine folds another fingerprint's state into this one.
func (h *verdictHash) combine(other verdictHash) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], other.sum)
	h.write(b[:])
}
