package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/serve"
)

// errSimKill is the injected spool failure a hard kill arms: the dying
// replica cannot checkpoint, so its sessions are lost exactly as they
// would be to a SIGKILL before the spool fsync.
var errSimKill = errors.New("sim: hard kill: checkpoint spool unavailable")

// spoolCheckpointPoint is the serve fault-injection point a hard kill
// arms to make session checkpointing fail.
const spoolCheckpointPoint = "serve/spool/checkpoint"

// heldBatch is one generated batch awaiting (or undergoing) service.
type heldBatch struct {
	sess    *simSession
	seq     int // 1-based batch ordinal within the session
	events  []serve.EventSpec
	arrival int64 // virtual time the batch was emitted
}

// replica is one simulated serve instance: a real serve.Server driven
// in-process through its HTTP handler, wrapped in a virtual-time service
// model. Scoring is real — every batch runs the actual handler, queue
// and worker path and produces real verdicts — but the time it takes
// exists only in the model (busyUntil plus the scenario's service
// costs), so the schedule never observes the wall clock.
type replica struct {
	idx      int
	id       string // fleet member name ("r0", "r1", …)
	sim      *simulation
	spoolDir string
	jitter   *rand.Rand

	srv *serve.Server
	drv *serve.Driver

	// Routed mode only: the replica's own registry store, replicated
	// from the run's primary by a real fleet.Syncer — promotions reach
	// this replica through registry sync, never by sharing the primary.
	store  *registry.Store
	syncer *fleet.Syncer

	up        bool
	epoch     int   // bumped by hard kills; stale completions check it
	busyUntil int64 // virtual time the pipeline drains

	held      []*heldBatch // batches that arrived while down
	heldCount int
	batches   int
	dropped   int
	crashes   int
	restores  int
}

// newReplica prepares (but does not boot) one replica harness.
func (s *simulation) newReplica(idx int) *replica {
	return &replica{
		idx:      idx,
		id:       fmt.Sprintf("r%d", idx),
		sim:      s,
		spoolDir: filepath.Join(s.workDir, fmt.Sprintf("spool-r%d", idx)),
		jitter:   s.prng.Stream("replica-jitter", strconv.Itoa(idx)),
	}
}

// boot starts the replica's serve.Server. Unrouted replicas share the
// run's primary registry store directly; routed replicas first converge
// their own local store off the primary through a real sync round, then
// serve from that — exactly the replicated topology cmd/leaps-serve
// -sync-from runs in production. Booting loads the registry's *current*
// entry, so a replica restored after a promotion comes back serving the
// new champion.
func (r *replica) boot() error {
	store := r.sim.store
	if r.sim.sc.Routed {
		if r.store == nil {
			st, err := registry.Open(filepath.Join(r.sim.workDir, "registry-"+r.id))
			if err != nil {
				return fmt.Errorf("sim: opening replica %s store: %w", r.id, err)
			}
			r.store = st
			r.syncer = &fleet.Syncer{
				Source:  r.sim.store,
				Replica: st,
				Logger:  r.sim.logger,
				OnAdvance: func(registry.Pointer) error {
					if r.srv == nil {
						return nil // pre-boot convergence; boot loads current itself
					}
					return r.srv.Reload()
				},
			}
		}
		if err := r.syncer.SyncOnce(); err != nil {
			return fmt.Errorf("sim: syncing replica %s: %w", r.id, err)
		}
		store = r.store
	}
	srv, err := serve.NewServer(serve.Config{
		Registry:  store,
		SpoolDir:  r.spoolDir,
		Parallel:  2,
		ReplicaID: r.id,
		Logger:    r.sim.logger,
	})
	if err != nil {
		return fmt.Errorf("sim: booting replica %d: %w", r.idx, err)
	}
	r.srv = srv
	r.drv = serve.NewDriver(srv)
	r.up = true
	return nil
}

// stop shuts the replica's server down for real. Graceful stops spool
// every session; hard kills arm the spool fault point first, so the
// checkpoints fail and sessions die with the process.
func (r *replica) stop(graceful bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !graceful {
		faultinject.ArmError(spoolCheckpointPoint, errSimKill, -1)
		defer faultinject.Disarm(spoolCheckpointPoint)
		_ = r.srv.Shutdown(ctx) // spool failures are the point
	} else if err := r.srv.Shutdown(ctx); err != nil {
		r.sim.fail(fmt.Errorf("sim: stopping replica %d: %w", r.idx, err))
	}
	r.srv, r.drv = nil, nil
	r.up = false
}

// cost returns the virtual service time of an n-event batch, including
// the replica's deterministic jitter draw.
func (r *replica) cost(n int) int64 {
	svc := r.sim.sc.Service
	micros := svc.BatchOverheadMicros + svc.PerEventMicros*float64(n)
	if svc.JitterFrac > 0 {
		micros *= 1 + svc.JitterFrac*(2*r.jitter.Float64()-1)
	}
	return int64(micros * 1000)
}

// ingest pushes the batch through the replica's real serving path,
// creating (or re-creating, after a kill lost it) the server-side
// session as needed.
func (r *replica) ingest(b *heldBatch) (serve.IngestResult, error) {
	sess := b.sess
	drv := r.drv
	if r.sim.sc.Routed {
		// Routed batches go through the router's forwarding path; the
		// session's stable name is its id, so the router's consistent
		// hash (not the simulator) decides which replica scores it.
		drv = r.sim.routerDrv
	}
	if sess.serverID == "" {
		spec := sess.spec
		if r.sim.sc.Routed {
			spec.ID = sess.name
		}
		info, err := drv.CreateSession(spec)
		if err != nil {
			return serve.IngestResult{}, fmt.Errorf("sim: creating session %s: %w", sess.name, err)
		}
		sess.serverID = info.ID
	}
	res, err := drv.Ingest(sess.serverID, serve.EventBatch{Events: b.events})
	if serve.IsStatus(err, 404) || serve.IsStatus(err, 409) {
		// The server-side session died with a killed replica (or was
		// closed under us): re-open and restart the stream there.
		spec := sess.spec
		if r.sim.sc.Routed {
			spec.ID = sess.name
		}
		info, cerr := drv.CreateSession(spec)
		if cerr != nil {
			return serve.IngestResult{}, fmt.Errorf("sim: recreating session %s: %w", sess.name, cerr)
		}
		sess.serverID = info.ID
		sess.recreated++
		r.sim.agg.sessionsRecreated++
		res, err = drv.Ingest(sess.serverID, serve.EventBatch{Events: b.events})
	}
	if err != nil {
		return serve.IngestResult{}, fmt.Errorf("sim: ingesting %s batch %d: %w", sess.name, b.seq, err)
	}
	return res, nil
}

// dispatch services a batch: real ingest now, verdict delivery at the
// virtual completion time. The completion closure captures the replica's
// epoch — if a hard kill intervenes, the batch's results are dropped on
// the floor exactly as a dying process would drop them.
func (r *replica) dispatch(b *heldBatch, now int64) error {
	res, err := r.ingest(b)
	if err != nil {
		return err
	}
	r.batches++
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	done := start + r.cost(len(b.events))
	r.busyUntil = done
	epoch := r.epoch
	s := r.sim
	s.clock.Schedule(done, prioComplete, func() {
		if r.epoch != epoch {
			r.dropped++
			s.agg.batchesDropped++
			s.logf("t=%d drop %s batch=%d replica=%d", done, b.sess.name, b.seq, r.idx)
			s.batchSettled(b.sess, done)
			return
		}
		lat := done - b.arrival
		s.agg.batchLat = append(s.agg.batchLat, lat)
		for _, v := range res.Verdicts {
			b.sess.hash.addVerdict(v.FirstEvent, v.LastEvent, v.Score, v.Malicious)
			b.sess.verdicts++
			s.agg.verdicts++
			if v.Malicious {
				b.sess.malicious++
				s.agg.malicious++
			}
			s.agg.verdictLat = append(s.agg.verdictLat, lat)
		}
		s.logf("t=%d done %s batch=%d replica=%d verdicts=%d latency_ns=%d",
			done, b.sess.name, b.seq, r.idx, len(res.Verdicts), lat)
		s.batchSettled(b.sess, done)
	})
	return nil
}

// crash takes the replica down at virtual time now and schedules its
// restore. Graceful crashes ("sigterm") let in-flight work drain and
// checkpoint sessions; hard crashes ("kill") bump the epoch — dropping
// every in-flight completion — and lose session state.
func (r *replica) crash(now int64, f FaultSpec) {
	if !r.up {
		r.sim.logf("t=%d crash-skip replica=%d (already down)", now, r.idx)
		return
	}
	r.crashes++
	graceful := f.Kind == "sigterm"
	if !graceful {
		r.epoch++
	}
	r.stop(graceful)
	r.sim.logf("t=%d crash replica=%d kind=%s", now, r.idx, f.Kind)
	restoreAt := now + secNS(f.DownSec)
	if graceful && r.busyUntil+1 > restoreAt {
		// A graceful stop drains before the process exits; the replacement
		// cannot be up before the drain finishes.
		restoreAt = r.busyUntil + 1
	}
	r.sim.clock.Schedule(restoreAt, prioRestore, func() { r.restore(restoreAt) })
}

// restore boots the replacement replica and delivers the batches held
// while it was down, in arrival order, with latency measured from each
// batch's original arrival — downtime surfaces as tail latency.
func (r *replica) restore(now int64) {
	s := r.sim
	if s.err != nil {
		return
	}
	if err := r.boot(); err != nil {
		s.fail(err)
		return
	}
	r.restores++
	r.busyUntil = now
	held := r.held
	r.held = nil
	s.logf("t=%d restore replica=%d held=%d", now, r.idx, len(held))
	for _, b := range held {
		if err := r.dispatch(b, b.arrival); err != nil {
			s.fail(err)
			return
		}
	}
}
