package sim

import (
	"bytes"
	"testing"
)

// routedScenario is the routed twin of testScenario: the same workload
// sharded through a real fleet.Router over 3 replicas, each serving
// from its own synced registry store.
func routedScenario() Scenario {
	sc := testScenario()
	sc.Name = "routed-test"
	sc.Routed = true
	sc.Replicas = 3
	return sc
}

// TestRoutedByteDeterminism extends the core contract to routed mode:
// same scenario, same seed — byte-identical report and event log, even
// with the router's forwarding, registry sync and handoff machinery in
// the loop.
func TestRoutedByteDeterminism(t *testing.T) {
	sc := routedScenario()
	sc.Drains = []DrainSpec{{Replica: 1, AtSec: 1, RejoinSec: 2}}
	rep1, blob1, log1 := runScenario(t, sc)
	_, blob2, log2 := runScenario(t, sc)
	if !bytes.Equal(blob1, blob2) {
		t.Errorf("same seed produced different routed reports:\n--- run1\n%s\n--- run2\n%s", blob1, blob2)
	}
	if !bytes.Equal(log1, log2) {
		t.Error("same seed produced different routed event logs")
	}
	if !rep1.Routed || rep1.Verdicts == 0 || rep1.SessionsCompleted != rep1.SessionsStarted {
		t.Fatalf("degenerate routed run: %+v", rep1)
	}
}

// TestRoutedChecksumMatchesUnrouted is the tentpole proof: routing the
// workload through the consistent-hash router — including a mid-traffic
// drain with checkpoint handoff, a promotion propagated by registry
// sync, and the rejoin handing sessions back — changes which replica
// scores each batch but not one bit of the verdict stream. The routed
// run's checksum equals a plain single-replica run of the same workload.
func TestRoutedChecksumMatchesUnrouted(t *testing.T) {
	ref := testScenario()
	ref.Replicas = 1
	ref.Model.ChallengerSeed = 11
	ref.Promotion = &PromotionSpec{AtSec: 2}
	refRep, _, _ := runScenario(t, ref)

	sc := routedScenario()
	sc.Model.ChallengerSeed = 11
	sc.Promotion = &PromotionSpec{AtSec: 2}
	sc.Drains = []DrainSpec{{Replica: 1, AtSec: 1, RejoinSec: 2}}
	routed, _, _ := runScenario(t, sc)

	if routed.Handoffs == 0 || routed.RingGeneration != 5 {
		t.Fatalf("ring change did not bite: handoffs=%d ring_gen=%d (want handoffs>0, gen 5)",
			routed.Handoffs, routed.RingGeneration)
	}
	if !routed.Promoted {
		t.Fatal("routed promotion did not fire")
	}
	if routed.VerdictChecksum != refRep.VerdictChecksum {
		t.Errorf("routing + drain + handoff changed the verdict stream: %s vs unrouted reference %s",
			routed.VerdictChecksum, refRep.VerdictChecksum)
	}
	if routed.Verdicts != refRep.Verdicts || routed.EventsSent != refRep.EventsSent {
		t.Errorf("workload changed under routing: %d/%d verdicts, %d/%d events",
			routed.Verdicts, refRep.Verdicts, routed.EventsSent, refRep.EventsSent)
	}
	if routed.SessionsRecreated != 0 {
		t.Errorf("%d sessions recreated; checkpoint handoff must never lose state", routed.SessionsRecreated)
	}
}

// TestRoutedSpreadsLoad sanity-checks that consistent hashing actually
// shards: with 3 replicas in the ring, more than one replica scores
// batches.
func TestRoutedSpreadsLoad(t *testing.T) {
	rep, _, _ := runScenario(t, routedScenario())
	busy := 0
	for _, f := range rep.Fleet {
		if f.Batches > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of %d replicas scored batches; fleet stats %+v", busy, len(rep.Fleet), rep.Fleet)
	}
	if rep.RingGeneration != 3 {
		t.Errorf("ring generation %d, want 3 (one add per member, no drains)", rep.RingGeneration)
	}
}

// TestRoutedValidation covers the routed-mode scenario constraints.
func TestRoutedValidation(t *testing.T) {
	sc := routedScenario()
	sc.Faults = []FaultSpec{{Replica: 0, AtSec: 1, DownSec: 1, Kind: "sigterm"}}
	if err := sc.Validate(); err == nil {
		t.Error("routed + faults validated; they are mutually exclusive")
	}

	sc = testScenario()
	sc.Drains = []DrainSpec{{Replica: 0, AtSec: 1}}
	if err := sc.Validate(); err == nil {
		t.Error("drains without routed validated")
	}

	sc = routedScenario()
	sc.Drains = []DrainSpec{{Replica: 9, AtSec: 1}}
	if err := sc.Validate(); err == nil {
		t.Error("drain of out-of-range replica validated")
	}

	sc = routedScenario()
	sc.Replicas = 1
	if err := sc.Validate(); err == nil {
		t.Error("routed single-replica fleet validated")
	}
}
