package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// PartitionedRNG derives independent deterministic random streams from
// one master seed. Every consumer of randomness in a simulation — the
// arrival process, the session mix, each session's workload, each
// replica's service jitter — draws from its own stream, addressed by a
// stable label path, so consumers never share a cursor: adding a
// session, reordering replica boot, or drawing more jitter on one
// replica cannot perturb any other stream. That isolation is what keeps
// a scenario's schedule byte-reproducible under structural change (the
// inference-sim PartitionedRNG pattern).
type PartitionedRNG struct {
	seed int64
}

// NewPartitionedRNG returns a partitioned source over the master seed.
func NewPartitionedRNG(seed int64) *PartitionedRNG {
	return &PartitionedRNG{seed: seed}
}

// StreamSeed returns the derived sub-seed for a label path: FNV-1a over
// the master seed and the NUL-separated labels. The same (seed, labels)
// always yields the same sub-seed; distinct label paths collide no more
// often than the hash does.
func (p *PartitionedRNG) StreamSeed(labels ...string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(p.seed))
	h.Write(b[:])
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// Stream returns the deterministic random stream for a label path. Each
// call returns a fresh cursor positioned at the stream's start.
func (p *PartitionedRNG) Stream(labels ...string) *rand.Rand {
	return rand.New(rand.NewSource(p.StreamSeed(labels...)))
}
