// Package sim is the deterministic cluster load simulator behind the
// leaps-sim binary: a discrete-event harness that drives N in-process
// serve replicas with synthetic appsim sessions under one shared virtual
// clock.
//
// Everything that varies — session arrivals, workload mix, event
// content, service jitter — draws from a PartitionedRNG stream addressed
// by a stable label path, and everything that takes time takes *virtual*
// time from a deterministic service model, so a scenario plus its seed
// fully determines the run: same inputs, byte-identical report and event
// log, on any machine, under -race, at any -test.count. Scoring is still
// real — each batch traverses the actual serve handler/queue/worker path
// and the verdict stream comes from a really-trained model — which is
// what makes the simulator useful for exercising crash/restore and
// promotion behaviour, not just queueing arithmetic.
//
// See DESIGN.md §13 for the architecture and EXPERIMENTS.md for the
// canonical scenario catalog.
package sim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	"repro/internal/appsim"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/svm"
)

// Config parameterises one simulation run.
type Config struct {
	// Scenario is the run's full configuration (see Scenario).
	Scenario Scenario
	// WorkDir hosts the run's scratch state: the model registry and the
	// per-replica checkpoint spools. Empty creates (and removes) a
	// temporary directory. The directory's path never enters the report
	// or event log, so it does not affect determinism.
	WorkDir string
	// Logger receives the replicas' operational logs (default: discard).
	Logger *slog.Logger
	// EventLog, when non-nil, receives the run's deterministic event
	// trace: one line per simulation event, virtual timestamps only.
	EventLog io.Writer
}

// simulation is one run's mutable state.
type simulation struct {
	sc      Scenario
	workDir string
	logger  *slog.Logger
	out     io.Writer

	clock *Clock
	prng  *PartitionedRNG
	store *registry.Store
	procs map[string]*appsim.Process

	replicas []*replica
	sessions []*simSession
	agg      aggregator

	// Routed mode: the real consistent-hash router in front of the
	// replicas and the driver every batch traverses it through.
	router    *fleet.Router
	routerDrv *serve.Driver

	championID   string
	challengerID string
	promoted     bool

	err error
}

// procKey identifies the shared appsim process a mix entry uses.
func procKey(m MixEntry) string {
	return m.App + "\x00" + m.Payload + "\x00" + m.Method
}

// fail records the run's first error; the event loop stops on it.
func (s *simulation) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// logf appends one line to the deterministic event log.
func (s *simulation) logf(format string, args ...any) {
	if s.out == nil {
		return
	}
	fmt.Fprintf(s.out, format+"\n", args...)
}

// trainBundle deterministically trains one model bundle from the
// scenario's dataset spec and returns its serialized bytes. Training
// with fixed hyperparameters (no grid search) keeps it fast; the same
// (dataset, sizes, seed) always yields the same bundle bytes, so the
// registry entry ID — a content hash — is itself deterministic.
func trainBundle(mc ModelConfig, seed int64) ([]byte, registry.TrainInfo, error) {
	spec, err := dataset.ByName(mc.Dataset)
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = mc.BenignEvents, mc.MixedEvents, mc.MaliciousEvents
	logs, err := spec.Generate(seed)
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
		Seed:        seed,
		FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
	})
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	clf, err := td.Train()
	if err != nil {
		return nil, registry.TrainInfo{}, err
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		return nil, registry.TrainInfo{}, err
	}
	info := registry.TrainInfo{
		App:    logs.Benign.App,
		Seed:   seed,
		Lambda: 8,
		Kernel: "rbf",
	}
	return buf.Bytes(), info, nil
}

// setupModels trains and publishes the champion (and, for promotion
// scenarios, the challenger) into the run's registry. The first publish
// pins the current pointer to the champion.
func (s *simulation) setupModels() error {
	store, err := registry.Open(filepath.Join(s.workDir, "registry"))
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	s.store = store
	blob, info, err := trainBundle(s.sc.Model, s.sc.Model.Seed)
	if err != nil {
		return fmt.Errorf("sim: training champion: %w", err)
	}
	champion, err := store.Publish(bytes.NewReader(blob), info)
	if err != nil {
		return fmt.Errorf("sim: publishing champion: %w", err)
	}
	s.championID = champion.ID
	if s.sc.Promotion != nil {
		blob, info, err := trainBundle(s.sc.Model, s.sc.Model.ChallengerSeed)
		if err != nil {
			return fmt.Errorf("sim: training challenger: %w", err)
		}
		challenger, err := store.Publish(bytes.NewReader(blob), info)
		if err != nil {
			return fmt.Errorf("sim: publishing challenger: %w", err)
		}
		if challenger.ID == champion.ID {
			return fmt.Errorf("sim: challenger trained identical to champion (seed %d vs %d)", s.sc.Model.ChallengerSeed, s.sc.Model.Seed)
		}
		s.challengerID = challenger.ID
	}
	return nil
}

// setupProcs builds the shared appsim process for every distinct mix
// template. Processes are immutable once built; sessions hold their own
// generator cursors.
func (s *simulation) setupProcs() error {
	s.procs = make(map[string]*appsim.Process)
	for _, m := range s.sc.Mix {
		key := procKey(m)
		if _, ok := s.procs[key]; ok {
			continue
		}
		app, err := appsim.AppProfile(m.App)
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		var proc *appsim.Process
		if m.Payload == "" {
			proc, err = appsim.NewProcess(app, nil, appsim.MethodNone)
		} else {
			var payload appsim.Profile
			payload, err = appsim.PayloadProfile(m.Payload)
			if err == nil {
				method := m.Method
				if method == "" {
					method = "online-injection"
				}
				proc, err = appsim.NewProcess(app, &payload, attackMethods[method])
			}
		}
		if err != nil {
			return fmt.Errorf("sim: building process for mix %s/%s: %w", m.App, m.Payload, err)
		}
		s.procs[key] = proc
	}
	return nil
}

// scheduleFaults enqueues the scenario's crash events.
func (s *simulation) scheduleFaults() {
	for _, f := range s.sc.Faults {
		f := f
		at := secNS(f.AtSec)
		targets := []*replica{}
		if f.Replica < 0 {
			targets = s.replicas
		} else {
			targets = append(targets, s.replicas[f.Replica])
		}
		for _, r := range targets {
			r := r
			s.clock.Schedule(at, prioCrash, func() { r.crash(at, f) })
		}
	}
}

// schedulePromotion enqueues the mid-traffic registry promotion: repoint
// the current pointer at the challenger, then propagate it. Unrouted
// replicas share the primary store, so propagation is a direct
// hot-reload. Routed replicas serve from their own mirrored stores, so
// propagation is a real sync round per replica (in index order): the
// entry imports, the pointer mirrors, and the syncer's OnAdvance hook
// reloads the server — the exact path a production replica takes. Down
// replicas pick the new champion up at restore, because boot always
// loads the registry's current entry.
func (s *simulation) schedulePromotion() {
	if s.sc.Promotion == nil {
		return
	}
	at := secNS(s.sc.Promotion.AtSec)
	s.clock.Schedule(at, prioPromote, func() {
		if s.err != nil {
			return
		}
		if _, err := s.store.Promote(s.challengerID, "sim promotion"); err != nil {
			s.fail(fmt.Errorf("sim: promoting challenger: %w", err))
			return
		}
		for _, r := range s.replicas {
			if !r.up {
				continue
			}
			if s.sc.Routed {
				if err := r.syncer.SyncOnce(); err != nil {
					s.fail(fmt.Errorf("sim: syncing promotion to %s: %w", r.id, err))
					return
				}
			} else if err := r.srv.Reload(); err != nil {
				s.fail(fmt.Errorf("sim: reloading replica %d: %w", r.idx, err))
				return
			}
		}
		s.promoted = true
		s.logf("t=%d promote entry=%s", at, s.challengerID)
	})
}

// scheduleDrains enqueues the routed-mode ring changes: each drain takes
// its replica out of the ring mid-traffic (checkpoint handoff moves its
// sessions), each rejoin puts it back (sessions hand back). The handoffs
// are real — exported and imported session checkpoints over the router's
// member handlers — which is exactly what the replica-count-invariant
// verdict checksum then proves lossless.
func (s *simulation) scheduleDrains() {
	for _, d := range s.sc.Drains {
		r := s.replicas[d.Replica]
		at := secNS(d.AtSec)
		s.clock.Schedule(at, prioCrash, func() {
			if s.err != nil {
				return
			}
			moved, err := s.router.DrainMember(context.Background(), r.id)
			if err != nil {
				s.fail(fmt.Errorf("sim: draining %s: %w", r.id, err))
				return
			}
			s.agg.handoffs += moved
			s.logf("t=%d drain %s moved=%d ring_gen=%d", at, r.id, moved, s.router.Status().Generation)
		})
		if d.RejoinSec <= 0 {
			continue
		}
		rejoinAt := at + secNS(d.RejoinSec)
		s.clock.Schedule(rejoinAt, prioRestore, func() {
			if s.err != nil {
				return
			}
			moved, err := s.router.JoinMember(context.Background(), r.id)
			if err != nil {
				s.fail(fmt.Errorf("sim: rejoining %s: %w", r.id, err))
				return
			}
			s.agg.handoffs += moved
			s.logf("t=%d rejoin %s moved=%d ring_gen=%d", rejoinAt, r.id, moved, s.router.Status().Generation)
		})
	}
}

// setupRouter builds the real fleet router over the booted replicas.
// Session ids always come from the workload (the stable s%05d names), so
// the minting callback is a deterministic fallback that only the
// recreate-after-loss path could ever reach.
func (s *simulation) setupRouter() error {
	members := make([]fleet.Member, len(s.replicas))
	for i, r := range s.replicas {
		members[i] = fleet.Member{ID: r.id, Handler: r.srv.Handler()}
	}
	minted := 0
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Members: members,
		Seed:    uint64(s.sc.Seed),
		Logger:  s.logger,
		NewID: func() string {
			minted++
			return fmt.Sprintf("anon%05d", minted)
		},
	})
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	s.router = rt
	s.routerDrv = serve.NewHandlerDriver(rt.Handler())
	return nil
}

// ownerReplica resolves which replica the router currently places a
// session on, so virtual service time is charged to the replica that
// really scored the batch.
func (s *simulation) ownerReplica(name string) (*replica, error) {
	mid, _, ok := s.router.Owner(name)
	if !ok {
		return nil, fmt.Errorf("sim: no ring owner for session %s", name)
	}
	for _, r := range s.replicas {
		if r.id == mid {
			return r, nil
		}
	}
	return nil, fmt.Errorf("sim: router owner %q is not a fleet replica", mid)
}

// report assembles the run's deterministic report.
func (s *simulation) report() *Report {
	rep := &Report{
		Scenario:          s.sc.Name,
		Seed:              s.sc.Seed,
		Replicas:          s.sc.Replicas,
		Champion:          s.championID,
		Challenger:        s.challengerID,
		Promoted:          s.promoted,
		VirtualDurationMS: float64(s.clock.Now()) / 1e6,
		SessionsStarted:   s.agg.sessionsStarted,
		SessionsCompleted: s.agg.sessionsCompleted,
		SessionsRecreated: s.agg.sessionsRecreated,
		EventsSent:        s.agg.eventsSent,
		BatchesSent:       s.agg.batchesSent,
		BatchesHeld:       s.agg.batchesHeld,
		BatchesDropped:    s.agg.batchesDropped,
		Verdicts:          s.agg.verdicts,
		Malicious:         s.agg.malicious,
		BatchLatency:      summarize(s.agg.batchLat),
		VerdictLatency:    summarize(s.agg.verdictLat),
	}
	if s.clock.Now() > 0 {
		rep.ThroughputEPS = float64(s.agg.eventsSent) / (float64(s.clock.Now()) / 1e9)
	}
	combined := newVerdictHash()
	for _, sess := range s.sessions {
		combined.combine(sess.hash)
	}
	rep.VerdictChecksum = fmt.Sprintf("%016x", combined.sum)
	if s.sc.Routed {
		rep.Routed = true
		rep.RingGeneration = s.router.Status().Generation
		rep.Handoffs = s.agg.handoffs
	}
	for _, r := range s.replicas {
		rep.Fleet = append(rep.Fleet, ReplicaStats{
			Replica: r.idx, Batches: r.batches, Held: r.heldCount,
			Dropped: r.dropped, Crashes: r.crashes, Restores: r.restores,
		})
	}
	return rep
}

// Run executes one simulation: train and publish the scenario's models,
// boot the fleet, process every scheduled event on the shared virtual
// clock, and return the deterministic report.
func Run(cfg Config) (*Report, error) {
	sc := cfg.Scenario.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "leaps-sim-")
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &simulation{
		sc:      sc,
		workDir: workDir,
		logger:  logger,
		out:     cfg.EventLog,
		clock:   NewClock(),
		prng:    NewPartitionedRNG(sc.Seed),
	}
	if err := s.setupModels(); err != nil {
		return nil, err
	}
	if err := s.setupProcs(); err != nil {
		return nil, err
	}
	for i := 0; i < sc.Replicas; i++ {
		s.replicas = append(s.replicas, s.newReplica(i))
	}
	for _, r := range s.replicas {
		if err := r.boot(); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, r := range s.replicas {
			if r.up {
				r.stop(true)
			}
		}
	}()
	if sc.Routed {
		if err := s.setupRouter(); err != nil {
			return nil, err
		}
	}
	s.scheduleArrivals()
	s.scheduleFaults()
	s.scheduleDrains()
	s.schedulePromotion()
	for s.clock.HasPendingEvents() && s.err == nil {
		s.clock.ProcessNextEvent()
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.report(), nil
}
