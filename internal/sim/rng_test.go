package sim

import "testing"

// TestPartitionedRNGStability proves stream derivation is a pure
// function of (seed, labels).
func TestPartitionedRNGStability(t *testing.T) {
	a := NewPartitionedRNG(42)
	b := NewPartitionedRNG(42)
	if a.StreamSeed("arrivals") != b.StreamSeed("arrivals") {
		t.Fatal("same (seed, labels) produced different sub-seeds")
	}
	ra, rb := a.Stream("workload", "s00001"), b.Stream("workload", "s00001")
	for i := 0; i < 100; i++ {
		if ra.Int63() != rb.Int63() {
			t.Fatalf("stream values diverged at draw %d", i)
		}
	}
}

// TestPartitionedRNGIndependence proves distinct label paths yield
// distinct streams, master seeds shift every stream, and draining one
// stream never perturbs another — the property that keeps structural
// changes from rippling through a schedule.
func TestPartitionedRNGIndependence(t *testing.T) {
	p := NewPartitionedRNG(42)
	if p.StreamSeed("arrivals") == p.StreamSeed("mix") {
		t.Fatal("distinct labels produced identical sub-seeds")
	}
	if p.StreamSeed("s", "a") == p.StreamSeed("sa") {
		t.Fatal("label-path boundary not encoded: [s a] collides with [sa]")
	}
	if NewPartitionedRNG(1).StreamSeed("arrivals") == NewPartitionedRNG(2).StreamSeed("arrivals") {
		t.Fatal("different master seeds produced identical sub-seeds")
	}

	// Draining one stream leaves an independently-addressed stream's
	// sequence untouched.
	ref := p.Stream("mix").Int63()
	noisy := p.Stream("arrivals")
	for i := 0; i < 1000; i++ {
		noisy.Int63()
	}
	if got := p.Stream("mix").Int63(); got != ref {
		t.Fatalf("draining the arrivals stream perturbed the mix stream: %d != %d", got, ref)
	}
}
