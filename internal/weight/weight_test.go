package weight

import (
	"math"
	"testing"

	"repro/internal/appsim"
	"repro/internal/cfg"
	"repro/internal/partition"
	"repro/internal/trace"
)

// buildInference constructs a mixed inference from explicit stack traces.
func buildInference(t *testing.T, stacks [][]uint64) *cfg.Inference {
	t.Helper()
	log := &partition.Log{}
	for i, s := range stacks {
		e := partition.Event{Seq: i, Type: trace.EventFileRead}
		for _, a := range s {
			e.AppTrace = append(e.AppTrace, trace.Frame{Addr: a})
		}
		log.Events = append(log.Events, e)
	}
	inf, err := cfg.Infer(log)
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

func TestAssessValidation(t *testing.T) {
	if _, err := Assess(nil, &cfg.Inference{Graph: cfg.NewGraph()}, Config{}); err == nil {
		t.Error("nil benign accepted")
	}
	if _, err := Assess(cfg.NewGraph(), nil, Config{}); err == nil {
		t.Error("nil mixed accepted")
	}
}

func TestAssessConnectedPathsScoreOne(t *testing.T) {
	benign := cfg.NewGraph()
	benign.AddEdge(100, 200)
	benign.AddEdge(200, 300)
	// Mixed log replays exactly the benign path.
	mixed := buildInference(t, [][]uint64{{100, 200, 300}})
	res, err := Assess(benign, mixed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConnectedPaths != 2 || res.EstimatedPaths != 0 || res.OutsidePaths != 0 {
		t.Errorf("path counts = (%d,%d,%d), want (2,0,0)",
			res.ConnectedPaths, res.EstimatedPaths, res.OutsidePaths)
	}
	if w := res.Benignity(0, -1); w != 1 {
		t.Errorf("event benignity = %v, want 1", w)
	}
}

func TestAssessTransitivelyConnectedScoresOne(t *testing.T) {
	// The benign CFG has 100 -> 150 -> 300; the mixed path jumps
	// 100 -> 300 directly. CHECK_CFG uses reachability, so it scores 1.
	benign := cfg.NewGraph()
	benign.AddEdge(100, 150)
	benign.AddEdge(150, 300)
	mixed := buildInference(t, [][]uint64{{100, 300}})
	res, err := Assess(benign, mixed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PathWeight[cfg.Edge{From: 100, To: 300}] != 1 {
		t.Errorf("transitive path weight = %v, want 1", res.PathWeight[cfg.Edge{From: 100, To: 300}])
	}
}

func TestAssessOutsidePathsScoreZero(t *testing.T) {
	benign := cfg.NewGraph()
	benign.AddEdge(100, 200)
	// Payload region far above the benign range.
	mixed := buildInference(t, [][]uint64{{5000, 6000, 7000}})
	res, err := Assess(benign, mixed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutsidePaths != 2 {
		t.Errorf("OutsidePaths = %d, want 2", res.OutsidePaths)
	}
	if w := res.Benignity(0, -1); w != 0 {
		t.Errorf("payload event benignity = %v, want 0", w)
	}
}

func TestAssessDensityEstimate(t *testing.T) {
	// Benign nodes at 100 and 200. An unseen path starting at 150 (the
	// midpoint) gets weight 1 - 50/100 = 0.5; at 190, 1 - 10/100 = 0.9.
	benign := cfg.NewGraph()
	benign.AddEdge(100, 200)
	tests := []struct {
		start uint64
		want  float64
	}{
		{150, 0.5},
		{190, 0.9},
		{110, 0.9},
		{100, 1}, // exactly on a benign node
	}
	for _, tt := range tests {
		mixed := buildInference(t, [][]uint64{{tt.start, 180}})
		res, err := Assess(benign, mixed, Config{})
		if err != nil {
			t.Fatal(err)
		}
		got := res.PathWeight[cfg.Edge{From: tt.start, To: 180}]
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("estimate(start=%d) = %v, want %v", tt.start, got, tt.want)
		}
	}
}

func TestAssessDensityEstimateDisabled(t *testing.T) {
	benign := cfg.NewGraph()
	benign.AddEdge(100, 200)
	mixed := buildInference(t, [][]uint64{{150, 180}})
	res, err := Assess(benign, mixed, Config{DisableDensityEstimate: true})
	if err != nil {
		t.Fatal(err)
	}
	if w := res.PathWeight[cfg.Edge{From: 150, To: 180}]; w != 0 {
		t.Errorf("weight with estimate disabled = %v, want 0", w)
	}
	if res.EstimatedPaths != 0 || res.OutsidePaths != 1 {
		t.Errorf("counts = (%d estimated, %d outside), want (0, 1)",
			res.EstimatedPaths, res.OutsidePaths)
	}
}

func TestAssessRangeRequiresBothEndpoints(t *testing.T) {
	benign := cfg.NewGraph()
	benign.AddEdge(100, 200)
	// Start inside the benign range but end far outside: not estimable.
	mixed := buildInference(t, [][]uint64{{150, 9000}})
	res, err := Assess(benign, mixed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if w := res.PathWeight[cfg.Edge{From: 150, To: 9000}]; w != 0 {
		t.Errorf("out-of-range end scored %v, want 0", w)
	}
}

func TestAssessEventAveraging(t *testing.T) {
	// One event contributes a benign path (1.0) and an outside path (0.0):
	// its benignity is the average, 0.5.
	benign := cfg.NewGraph()
	benign.AddEdge(100, 200)
	mixed := &cfg.Inference{Graph: cfg.NewGraph(), EventsByEdge: map[cfg.Edge][]int{}}
	mixed.Graph.AddEdge(100, 200)
	mixed.Graph.AddEdge(5000, 6000)
	mixed.EventsByEdge[cfg.Edge{From: 100, To: 200}] = []int{0}
	mixed.EventsByEdge[cfg.Edge{From: 5000, To: 6000}] = []int{0}
	res, err := Assess(benign, mixed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if w := res.Benignity(0, -1); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("averaged benignity = %v, want 0.5", w)
	}
}

func TestBenignityDefault(t *testing.T) {
	r := &Result{EventBenignity: map[int]float64{3: 0.7}}
	if got := r.Benignity(3, 0.5); got != 0.7 {
		t.Errorf("Benignity(3) = %v", got)
	}
	if got := r.Benignity(4, 0.5); got != 0.5 {
		t.Errorf("Benignity(4) = %v, want default", got)
	}
}

func TestMeanBenignity(t *testing.T) {
	r := &Result{EventBenignity: map[int]float64{0: 1, 1: 0}}
	if got := r.MeanBenignity(0, 2, 0.5); got != 0.5 {
		t.Errorf("MeanBenignity(0,2) = %v, want 0.5", got)
	}
	// Unscored event uses the default.
	if got := r.MeanBenignity(0, 4, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MeanBenignity(0,4) = %v, want 0.75", got)
	}
	if got := r.MeanBenignity(5, 5, 0.3); got != 0.3 {
		t.Errorf("MeanBenignity(empty) = %v, want default", got)
	}
}

// End-to-end separation invariant on simulated data: payload events score
// far below benign events in the mixed log.
func TestAssessSeparatesPayloadFromBenign(t *testing.T) {
	for _, method := range []appsim.AttackMethod{appsim.MethodOfflineInfection, appsim.MethodOnlineInjection} {
		t.Run(method.String(), func(t *testing.T) {
			payload := appsim.ReverseTCPProfile()
			proc, err := appsim.NewProcess(appsim.WinSCPProfile(), &payload, method)
			if err != nil {
				t.Fatal(err)
			}
			clean, err := appsim.NewProcess(appsim.WinSCPProfile(), nil, appsim.MethodNone)
			if err != nil {
				t.Fatal(err)
			}
			cleanLog, err := clean.GenerateLog(appsim.GenConfig{Seed: 10, Events: 3000, PID: 1})
			if err != nil {
				t.Fatal(err)
			}
			mixedLog, err := proc.GenerateLog(appsim.GenConfig{Seed: 11, Events: 3000, PayloadFraction: 0.4, PID: 2})
			if err != nil {
				t.Fatal(err)
			}
			cleanPart, err := partition.Split(cleanLog)
			if err != nil {
				t.Fatal(err)
			}
			mixedPart, err := partition.Split(mixedLog)
			if err != nil {
				t.Fatal(err)
			}
			benignInf, err := cfg.Infer(cleanPart)
			if err != nil {
				t.Fatal(err)
			}
			mixedInf, err := cfg.Infer(mixedPart)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Assess(benignInf.Graph, mixedInf, Config{})
			if err != nil {
				t.Fatal(err)
			}
			var benignSum, benignN, payloadSum, payloadN float64
			for i, e := range mixedLog.Events {
				w := res.Benignity(i, 0.5)
				if e.TID == 9 { // payload thread
					payloadSum += w
					payloadN++
				} else {
					benignSum += w
					benignN++
				}
			}
			benignMean := benignSum / benignN
			payloadMean := payloadSum / payloadN
			if benignMean < 0.8 {
				t.Errorf("benign mean benignity = %.3f, want >= 0.8", benignMean)
			}
			if payloadMean > 0.35 {
				t.Errorf("payload mean benignity = %.3f, want <= 0.35", payloadMean)
			}
			if benignMean-payloadMean < 0.5 {
				t.Errorf("separation = %.3f, want >= 0.5", benignMean-payloadMean)
			}
		})
	}
}
