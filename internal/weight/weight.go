// Package weight implements the paper's Weight Assessment (Algorithm 2):
// given the benign CFG (the oracle) and the CFG inferred from the mixed
// log, it assigns every mixed-log event a benignity weight in [0, 1].
//
// Each program path (edge) of the mixed CFG is scored: 1 when its
// endpoints are already connected in the benign CFG; an interpolated value
// when the path is missing but its start address falls inside the benign
// CFG's address range (the density array) — such paths are likely benign
// functionality that the incomplete benign CFG never observed; and 0 when
// the path lies outside the benign address range altogether, the signature
// of payload code in an appended section or a remote allocation. Path
// scores are averaged onto the events that produced the paths through the
// inference's edge→event reverse map (the paper's memap).
//
// Note on orientation: the paper's Algorithm 2 computes "the degree of
// benignity" (1 = on the benign CFG). Its Weighted SVM needs per-sample
// confidence that the *negative* (malicious) label is correct, so the
// classifier layer uses cᵢ = 1 − benignity for mixed samples. The paper
// leaves this inversion implicit; see DESIGN.md.
package weight

import (
	"errors"
	"sort"

	"repro/internal/cfg"
	"repro/internal/telemetry"
)

// Weight-assessment telemetry: how paths were scored, the share of paths
// falling off the benign CFG (the camouflage signal), and the benignity
// distribution pushed onto events.
var (
	mPaths          = telemetry.NewCounterVec("weight_paths_total", "mixed-CFG paths scored, by scoring rule", "kind")
	mPathsConnected = mPaths.With("connected")
	mPathsEstimated = mPaths.With("estimated")
	mPathsOutside   = mPaths.With("outside")
	mOffCFGRatio    = telemetry.NewGauge("weight_offcfg_path_ratio", "share of mixed-CFG paths outside the benign CFG in the last assessment")
	mBenignity      = telemetry.NewHistogram("weight_event_benignity", "per-event benignity weights from the last assessments", telemetry.UnitBuckets())
)

// Config controls weight assessment.
type Config struct {
	// DisableDensityEstimate turns off the density-array interpolation
	// (Algorithm 2 lines 26–30): paths absent from the benign CFG score 0
	// regardless of position. Used by the ablation benchmarks.
	DisableDensityEstimate bool
}

// Result is the output of weight assessment.
type Result struct {
	// EventBenignity maps each mixed-log event ordinal (Seq) that
	// contributed at least one CFG path to its benignity in [0, 1], the
	// average of its paths' scores.
	EventBenignity map[int]float64
	// PathWeight records the score of every mixed-CFG edge.
	PathWeight map[cfg.Edge]float64
	// ConnectedPaths, EstimatedPaths and OutsidePaths count edges scored
	// by benign-CFG reachability, density interpolation and out-of-range
	// zeroing respectively.
	ConnectedPaths int
	EstimatedPaths int
	OutsidePaths   int
}

// Assess scores every path of the mixed CFG against the benign CFG and
// averages path scores per event (Algorithm 2).
func Assess(benign *cfg.Graph, mixed *cfg.Inference, cfgOpts Config) (*Result, error) {
	return assess(benign, mixed, nil, cfgOpts)
}

// AssessAligned is Assess for source-level trojans (§VI-A): the mixed
// CFG's addresses are first translated into the benign CFG's coordinate
// system through the alignment, so recompilation shifts do not zero out
// genuinely benign paths. Path scores still attach to the original mixed
// events.
func AssessAligned(benign *cfg.Graph, mixed *cfg.Inference, al *cfg.Alignment, cfgOpts Config) (*Result, error) {
	if al == nil {
		return nil, errors.New("weight: nil alignment")
	}
	return assess(benign, mixed, al, cfgOpts)
}

func assess(benign *cfg.Graph, mixed *cfg.Inference, al *cfg.Alignment, cfgOpts Config) (*Result, error) {
	if benign == nil {
		return nil, errors.New("weight: nil benign CFG")
	}
	if mixed == nil || mixed.Graph == nil {
		return nil, errors.New("weight: nil mixed inference")
	}
	density := benign.DensityArray()
	res := &Result{
		EventBenignity: make(map[int]float64),
		PathWeight:     make(map[cfg.Edge]float64, mixed.Graph.NumEdges()),
	}
	// Running means per event.
	sums := make(map[int]float64)
	counts := make(map[int]int)

	for _, e := range mixed.Graph.Edges() {
		from, to := e.From, e.To
		if al != nil {
			from, _ = al.Translate(from)
			to, _ = al.Translate(to)
		}
		var w float64
		switch {
		case benign.Reachable(from, to):
			w = 1
			res.ConnectedPaths++
		case !cfgOpts.DisableDensityEstimate && withinRange(from, to, density):
			w = estimate(from, density)
			res.EstimatedPaths++
		default:
			w = 0
			res.OutsidePaths++
		}
		res.PathWeight[e] = w
		for _, seq := range mixed.EventsByEdge[e] {
			sums[seq] += w
			counts[seq]++
		}
	}
	for seq, s := range sums {
		b := s / float64(counts[seq])
		res.EventBenignity[seq] = b
		mBenignity.Observe(b)
	}
	mPathsConnected.Add(uint64(res.ConnectedPaths))
	mPathsEstimated.Add(uint64(res.EstimatedPaths))
	mPathsOutside.Add(uint64(res.OutsidePaths))
	if total := res.ConnectedPaths + res.EstimatedPaths + res.OutsidePaths; total > 0 {
		mOffCFGRatio.Set(float64(res.OutsidePaths) / float64(total))
	}
	return res, nil
}

// withinRange reports whether both endpoints fall inside the density
// array's address span.
func withinRange(from, to uint64, density []uint64) bool {
	if len(density) < 2 {
		return false
	}
	lo, hi := density[0], density[len(density)-1]
	return from >= lo && from <= hi && to >= lo && to <= hi
}

// estimate interpolates the benignity of an unseen path from its start
// address's normalised distance to the nearest benign CFG nodes
// (ESTIMATE_WEIGHT in Algorithm 2): a start adjacent to benign code is
// probably unobserved benign functionality.
func estimate(addr uint64, density []uint64) float64 {
	// First index with density[i] > addr (bisect_right).
	idx := sort.Search(len(density), func(i int) bool { return density[i] > addr })
	if idx == 0 {
		return 0 // below range; callers guard with withinRange
	}
	if idx == len(density) {
		// addr equals the last element (withinRange guarantees <= hi).
		return 1
	}
	left, right := density[idx-1], density[idx]
	gap := right - left
	if gap == 0 {
		return 1
	}
	d1 := addr - left
	d2 := right - addr
	mindiff := d1
	if d2 < mindiff {
		mindiff = d2
	}
	return 1 - float64(mindiff)/float64(gap)
}

// Benignity returns the event's benignity, defaulting to the given value
// for events that contributed no CFG path (e.g. stackless events).
func (r *Result) Benignity(seq int, def float64) float64 {
	if w, ok := r.EventBenignity[seq]; ok {
		return w
	}
	return def
}

// MeanBenignity averages benignity over the half-open event range
// [from, to), using def for unscored events. It is how window-level
// weights for coalesced data points are derived.
func (r *Result) MeanBenignity(from, to int, def float64) float64 {
	if to <= from {
		return def
	}
	var sum float64
	for seq := from; seq < to; seq++ {
		sum += r.Benignity(seq, def)
	}
	return sum / float64(to-from)
}
