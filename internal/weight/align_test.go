package weight

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/partition"
	"repro/internal/trace"
)

// sourceTrojanScenario models §VI-A: the adversary recompiles the
// application with an embedded payload, shifting every benign function by
// a constant. It returns the benign CFG (original addresses) and the mixed
// inference (shifted benign paths + payload paths), along with the event
// ranges of benign and payload activity in the mixed log.
func sourceTrojanScenario(t *testing.T) (benign *cfg.Graph, mixed *cfg.Inference, benignEvents, payloadEvents []int) {
	t.Helper()
	// Benign program: root 0x1000 dispatching to chains of distinct
	// lengths (structured enough for WL pivots).
	mkLog := func(base uint64, withPayload bool) *partition.Log {
		log := &partition.Log{}
		seq := 0
		addEvent := func(addrs ...uint64) {
			e := partition.Event{Seq: seq, Type: trace.EventFileRead}
			for _, a := range addrs {
				e.AppTrace = append(e.AppTrace, trace.Frame{Addr: a})
			}
			log.Events = append(log.Events, e)
			seq++
		}
		root := base
		addr := base + 0x100
		for _, chainLen := range []int{2, 3, 4, 5, 6, 7} {
			stack := []uint64{root}
			for i := 0; i < chainLen; i++ {
				stack = append(stack, addr)
				addr += 0x80
			}
			// Walk the chain twice for stable edges.
			addEvent(stack...)
			addEvent(stack...)
		}
		if withPayload {
			// Payload section above the shifted benign code.
			p := base + 0x8000
			for i := 0; i < 6; i++ {
				addEvent(p, p+0x80, p+0x100)
			}
		}
		return log
	}

	benignLog := mkLog(0x1000, false)
	mixedLog := mkLog(0x3000, true) // recompiled: everything shifted by 0x2000

	bInf, err := cfg.Infer(benignLog)
	if err != nil {
		t.Fatal(err)
	}
	mInf, err := cfg.Infer(mixedLog)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mixedLog.Events {
		if mixedLog.Events[i].AppTrace[0].Addr >= 0x3000+0x8000 {
			payloadEvents = append(payloadEvents, i)
		} else {
			benignEvents = append(benignEvents, i)
		}
	}
	return bInf.Graph, mInf, benignEvents, payloadEvents
}

func TestAssessAlignedRecoversSourceTrojan(t *testing.T) {
	benign, mixed, benignEvents, payloadEvents := sourceTrojanScenario(t)

	// Without alignment, the shifted benign paths fall outside the benign
	// CFG's address range: everything scores near zero — exactly the
	// failure mode §VI-A describes.
	plain, err := Assess(benign, mixed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var plainBenignMean float64
	for _, seq := range benignEvents {
		plainBenignMean += plain.Benignity(seq, 0.5)
	}
	plainBenignMean /= float64(len(benignEvents))
	if plainBenignMean > 0.3 {
		t.Fatalf("unaligned assessment scored shifted benign events %.2f; expected the §VI-A failure (near 0)",
			plainBenignMean)
	}

	// With alignment the benign events recover high benignity while the
	// payload stays low.
	al := cfg.AlignGraphs(benign, mixed.Graph)
	if len(al.Offsets) == 0 || al.Offsets[0] != 0x2000 {
		t.Fatalf("alignment offsets = %v, want leading 0x2000", al.Offsets)
	}
	aligned, err := AssessAligned(benign, mixed, al, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var alignedBenignMean, alignedPayloadMean float64
	for _, seq := range benignEvents {
		alignedBenignMean += aligned.Benignity(seq, 0.5)
	}
	alignedBenignMean /= float64(len(benignEvents))
	for _, seq := range payloadEvents {
		alignedPayloadMean += aligned.Benignity(seq, 0.5)
	}
	alignedPayloadMean /= float64(len(payloadEvents))

	if alignedBenignMean < 0.8 {
		t.Errorf("aligned benign mean benignity = %.2f, want >= 0.8", alignedBenignMean)
	}
	if alignedPayloadMean > 0.3 {
		t.Errorf("aligned payload mean benignity = %.2f, want <= 0.3", alignedPayloadMean)
	}
}

func TestAssessAlignedValidation(t *testing.T) {
	g := cfg.NewGraph()
	g.AddEdge(1, 2)
	inf := &cfg.Inference{Graph: g, EventsByEdge: map[cfg.Edge][]int{}}
	if _, err := AssessAligned(g, inf, nil, Config{}); err == nil {
		t.Error("nil alignment accepted")
	}
}
