// Deterministic cross-checks of the zero-copy parse path — the fuzz
// target's contract, held on the generated corpus in every plain test
// run.
package etl_test

import (
	"bytes"
	"testing"

	"repro/internal/etl"
	"repro/internal/faultinject"
)

// TestParseBytesMatchesStreaming runs the clean stream and every
// deterministic single-fault mutant through both parsers, in both
// strictness modes, and requires identical results.
func TestParseBytesMatchesStreaming(t *testing.T) {
	data := fuzzStream(t)
	inputs := [][]byte{data, {}, []byte("LETL"), data[: len(data)/3 : len(data)/3]}
	mutants, err := faultinject.Corpus(data, 7, 25)
	if err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, mutants...)

	for i, in := range inputs {
		for _, opts := range []etl.ParseOpts{{}, {Lenient: true}} {
			ref, refErr := etl.ParseWith(bytes.NewReader(in), opts)
			zc, zcErr := etl.ParseBytes(in, opts)
			if (refErr == nil) != (zcErr == nil) {
				t.Fatalf("input %d lenient=%v: streaming err=%v, zero-copy err=%v", i, opts.Lenient, refErr, zcErr)
			}
			if refErr != nil {
				if refErr.Error() != zcErr.Error() {
					t.Fatalf("input %d lenient=%v: error text diverged:\n  streaming: %v\n  zero-copy: %v",
						i, opts.Lenient, refErr, zcErr)
				}
				continue
			}
			sameRawFile(t, ref, zc)
		}
	}
}

// TestParseBytesSlabReuse proves a shared slab is safe to recycle: a
// Reset between parses yields files identical to fresh parses, and the
// second parse reuses the first one's chunk instead of growing.
func TestParseBytesSlabReuse(t *testing.T) {
	data := fuzzStream(t)
	ref, err := etl.ParseBytes(data, etl.ParseOpts{})
	if err != nil {
		t.Fatal(err)
	}

	var slab etl.Slab
	for round := 0; round < 3; round++ {
		slab.Reset()
		got, err := etl.ParseBytesSlab(data, etl.ParseOpts{}, &slab)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sameRawFile(t, ref, got)
	}
}

// TestScanRecordsInto proves the span buffer is reused: scanning into a
// recycled slice appends into the same backing array and returns the
// same spans as a fresh scan.
func TestScanRecordsInto(t *testing.T) {
	data := fuzzStream(t)
	ref, err := etl.ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := etl.ScanRecordsInto(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := etl.ScanRecordsInto(spans[:0], data)
	if err != nil {
		t.Fatal(err)
	}
	if &reused[0] != &spans[0] {
		t.Fatal("ScanRecordsInto reallocated despite sufficient capacity")
	}
	if len(reused) != len(ref) {
		t.Fatalf("span count: want %d, got %d", len(ref), len(reused))
	}
	for i := range ref {
		if reused[i] != ref[i] {
			t.Fatalf("span %d: want %+v, got %+v", i, ref[i], reused[i])
		}
	}
}
