package etl_test

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etl"
)

// BenchmarkParseBytes measures the zero-copy parse path on a generated
// benign log; BenchmarkParseStream is the io.Reader reference path on
// the same bytes.
func BenchmarkParseBytes(b *testing.B) {
	raw := benchRaw(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	var slab etl.Slab
	for i := 0; i < b.N; i++ {
		slab.Reset()
		if _, err := etl.ParseBytesSlab(raw, etl.ParseOpts{}, &slab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseStream(b *testing.B) {
	raw := benchRaw(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := etl.Parse(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRaw(b *testing.B) []byte {
	b.Helper()
	spec, err := dataset.ByName("vim_reverse_tcp")
	if err != nil {
		b.Fatal(err)
	}
	spec.BenignEvents, spec.MixedEvents, spec.MaliciousEvents = 2000, 10, 10
	logs, err := spec.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := etl.WriteLogs(&buf, logs.Benign); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}
