// Package etl implements the raw event-trace-log layer of LEAPS: a compact
// binary container for system event streams with stack walks (standing in
// for Windows ETL files) and the raw-log parser that, like the Introperf
// front end the paper builds on, correlates stack-walk records with their
// system events and slices the stream per process into stack-event
// correlated logs.
//
// File layout (all integers little-endian):
//
//	magic "LETL" | version u16 | record*
//
// Records, each introduced by a one-byte tag:
//
//	recProcess: pid u32, app string, modules
//	    (module: name string, kind u8, base u64, size u64,
//	     symbol count u32, symbols (name string, addr u64))
//	recEvent:   type u16, time i64 (ns), pid u32, tid u32, flags u8
//	recStack:   pid u32, tid u32, frame count u16, addrs u64*
//	recEnd:     (nothing; terminates the stream)
//
// Strings are a u16 length followed by raw bytes. A recStack attaches to
// the most recent event of the same pid/tid that declared flagHasStack and
// has not yet received its walk — mirroring how ETW emits stack-walk events
// separately from the events that triggered them.
package etl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Format constants.
const (
	magic   = "LETL"
	version = uint16(1)

	recProcess = 0x01
	recEvent   = 0x02
	recStack   = 0x03
	recEnd     = 0xFF

	flagHasStack = 0x01

	// maxString and maxFrames bound allocations while parsing untrusted
	// input.
	maxString = 4096
	maxFrames = 512
)

// ErrCorrupt is wrapped by every parse error caused by malformed input.
var ErrCorrupt = errors.New("etl: corrupt file")

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeU8(w io.Writer, v uint8) error   { return binary.Write(w, binary.LittleEndian, v) }
func writeU16(w io.Writer, v uint16) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
func writeI64(w io.Writer, v int64) error  { return binary.Write(w, binary.LittleEndian, v) }

func writeString(w io.Writer, s string) error {
	if len(s) > maxString {
		return fmt.Errorf("etl: string of %d bytes exceeds limit %d", len(s), maxString)
	}
	if err := writeU16(w, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// recordSource abstracts the byte source a parse consumes so the record
// loop, lenient recovery and resynchronization logic are written once
// and run unchanged over the buffered streaming reader and the
// in-memory zero-copy reader. All implementations share the streaming
// reader's error and offset semantics: primitives fail with a
// corrupt-wrapped io.EOF (nothing available) or io.ErrUnexpectedEOF
// (partial record), consuming whatever was available so the offset
// lands on the truncation point.
type recordSource interface {
	// offset is the number of bytes consumed so far.
	offset() int64
	full(b []byte) error
	// discard skips n bytes (used by resynchronization scans),
	// returning an error when fewer than n were available.
	discard(n int) error
	u8() (uint8, error)
	u16() (uint16, error)
	u32() (uint32, error)
	u64() (uint64, error)
	i64() (int64, error)
	str() (string, error)
	// peek returns up to n upcoming bytes without consuming them; an
	// empty slice means end of input.
	peek(n int) []byte
}

// reader decodes little-endian primitives while tracking the byte
// offset in the stream, so lenient parsing can report where a record
// failed and resynchronize from there.
type reader struct {
	r   *bufio.Reader
	off int64
	buf [8]byte
}

func (rd *reader) offset() int64 { return rd.off }

func (rd *reader) peek(n int) []byte {
	b, _ := rd.r.Peek(n)
	return b
}

// full reads exactly len(b) bytes, accounting for partial reads in the
// offset so error positions stay accurate.
func (rd *reader) full(b []byte) error {
	n, err := io.ReadFull(rd.r, b)
	rd.off += int64(n)
	if err != nil {
		return corrupt(err)
	}
	return nil
}

// discard skips n bytes (used by resynchronization scans).
func (rd *reader) discard(n int) error {
	m, err := rd.r.Discard(n)
	rd.off += int64(m)
	return err
}

func (rd *reader) u8() (uint8, error) {
	b, err := rd.r.ReadByte()
	if err != nil {
		return 0, corrupt(err)
	}
	rd.off++
	return b, nil
}

func (rd *reader) u16() (uint16, error) {
	if err := rd.full(rd.buf[:2]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(rd.buf[:2]), nil
}

func (rd *reader) u32() (uint32, error) {
	if err := rd.full(rd.buf[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(rd.buf[:4]), nil
}

func (rd *reader) u64() (uint64, error) {
	if err := rd.full(rd.buf[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(rd.buf[:8]), nil
}

func (rd *reader) i64() (int64, error) {
	u, err := rd.u64()
	if err != nil {
		return 0, err
	}
	return int64(u), nil
}

func (rd *reader) str() (string, error) {
	n, err := rd.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxString {
		return "", corrupt(fmt.Errorf("string length %d exceeds limit", n))
	}
	b := make([]byte, n)
	if err := rd.full(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// corrupt wraps err with ErrCorrupt unless it already is one.
func corrupt(err error) error {
	if errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}
