package etl

import (
	"encoding/binary"
	"fmt"
)

// Exported record tags, for tools (fault injectors, analyzers) that
// operate on serialized streams structurally.
const (
	TagProcess byte = recProcess
	TagEvent   byte = recEvent
	TagStack   byte = recStack
	TagEnd     byte = recEnd
)

// HeaderLen is the size of the stream header (magic + version).
const HeaderLen = len(magic) + 2

// RecordSpan locates one record inside a serialized stream.
type RecordSpan struct {
	// Offset is the byte position of the record's tag.
	Offset int64
	// Len is the record's total size including the tag byte.
	Len int
	// Tag identifies the record kind.
	Tag byte
}

// ScanRecords structurally walks a serialized stream and returns the
// span of every record, the header excluded. It validates lengths and
// bounds only, not content semantics, so it works on any stream the
// writer could have produced. The end record, when present, is the last
// span returned.
func ScanRecords(data []byte) ([]RecordSpan, error) {
	return ScanRecordsInto(nil, data)
}

// ScanRecordsInto is ScanRecords appending into dst (reusing its
// capacity), so repeated scans over a stream reuse one span buffer.
// Pass dst[:0] to recycle a previous result.
func ScanRecordsInto(dst []RecordSpan, data []byte) ([]RecordSpan, error) {
	if len(data) < HeaderLen || string(data[:len(magic)]) != magic {
		return nil, corrupt(fmt.Errorf("bad or short header"))
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):HeaderLen]); v != version {
		return nil, corrupt(fmt.Errorf("unsupported version %d", v))
	}
	spans := dst
	pos := HeaderLen
	for pos < len(data) {
		start := pos
		tag := data[pos]
		n, err := recordLen(data[pos:])
		if err != nil {
			return nil, fmt.Errorf("record at offset %d: %w", start, err)
		}
		pos += n
		spans = append(spans, RecordSpan{Offset: int64(start), Len: n, Tag: tag})
		if tag == recEnd {
			break
		}
	}
	return spans, nil
}

// recordLen computes the serialized size of the record starting at
// b[0], including the tag byte.
func recordLen(b []byte) (int, error) {
	need := func(pos, n int) error {
		if pos+n > len(b) {
			return corrupt(fmt.Errorf("truncated record (tag 0x%02x)", b[0]))
		}
		return nil
	}
	str := func(pos int) (int, error) {
		if err := need(pos, 2); err != nil {
			return 0, err
		}
		n := int(binary.LittleEndian.Uint16(b[pos : pos+2]))
		if n > maxString {
			return 0, corrupt(fmt.Errorf("string length %d exceeds limit", n))
		}
		if err := need(pos+2, n); err != nil {
			return 0, err
		}
		return 2 + n, nil
	}

	switch b[0] {
	case recEnd:
		return 1, nil

	case recEvent:
		// tag + type u16 + time i64 + pid u32 + tid u32 + flags u8
		if err := need(0, 20); err != nil {
			return 0, err
		}
		return 20, nil

	case recStack:
		// tag + pid u32 + tid u32 + count u16 + count*u64
		if err := need(0, 11); err != nil {
			return 0, err
		}
		n := int(binary.LittleEndian.Uint16(b[9:11]))
		if n > maxFrames {
			return 0, corrupt(fmt.Errorf("stack of %d frames exceeds limit", n))
		}
		if err := need(11, 8*n); err != nil {
			return 0, err
		}
		return 11 + 8*n, nil

	case recProcess:
		// tag + pid u32 + app string + module count u32 + modules
		pos := 5
		sn, err := str(pos)
		if err != nil {
			return 0, err
		}
		pos += sn
		if err := need(pos, 4); err != nil {
			return 0, err
		}
		nMods := binary.LittleEndian.Uint32(b[pos : pos+4])
		pos += 4
		if nMods > 4096 {
			return 0, corrupt(fmt.Errorf("module count %d exceeds limit", nMods))
		}
		for i := uint32(0); i < nMods; i++ {
			// name string + kind u8 + base u64 + size u64 + sym count u32
			sn, err := str(pos)
			if err != nil {
				return 0, err
			}
			pos += sn
			if err := need(pos, 1+8+8+4); err != nil {
				return 0, err
			}
			nSyms := binary.LittleEndian.Uint32(b[pos+17 : pos+21])
			pos += 21
			if nSyms > 1<<20 {
				return 0, corrupt(fmt.Errorf("symbol count %d exceeds limit", nSyms))
			}
			for j := uint32(0); j < nSyms; j++ {
				sn, err := str(pos)
				if err != nil {
					return 0, err
				}
				pos += sn
				if err := need(pos, 8); err != nil {
					return 0, err
				}
				pos += 8
			}
		}
		return pos, nil
	}
	return 0, corrupt(fmt.Errorf("unknown record tag 0x%02x", b[0]))
}
