// Fuzz targets for the raw-log parser, in an external test package so the
// seed corpus can come from faultinject (which imports etl).
package etl_test

import (
	"bytes"
	"testing"

	"repro/internal/appsim"
	"repro/internal/etl"
	"repro/internal/faultinject"
)

// fuzzStream serialises a small but representative log: process record,
// events, stack records.
func fuzzStream(tb testing.TB) []byte {
	tb.Helper()
	payload := appsim.ReverseTCPProfile()
	p, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		tb.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: 99, Events: 60, PayloadFraction: 0.3, PID: 4})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := etl.WriteLogs(&buf, log); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// seedCorpus adds the clean stream, deterministic single-fault mutants of
// it, and a few degenerate inputs.
func seedCorpus(f *testing.F) {
	data := fuzzStream(f)
	f.Add(data)
	mutants, err := faultinject.Corpus(data, 7, 10)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range mutants {
		f.Add(m)
	}
	f.Add([]byte{})
	f.Add([]byte("LETL"))
	f.Add(data[:len(data)/3])
}

// sameRawFile fails t unless the two parses recovered identical content:
// same processes, events, resolved stacks (element-wise, so slab-backed
// and individually allocated walks compare equal), drop accounting and
// error logs (offsets, tags, cause text and resync distances).
func sameRawFile(t *testing.T, want, got *etl.RawFile) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("one parse returned a file, the other nil (want=%v got=%v)", want != nil, got != nil)
	}
	if want == nil {
		return
	}
	if want.Dropped != got.Dropped {
		t.Fatalf("dropped: want %d, got %d", want.Dropped, got.Dropped)
	}
	if len(want.ErrorLog) != len(got.ErrorLog) {
		t.Fatalf("error log length: want %d, got %d", len(want.ErrorLog), len(got.ErrorLog))
	}
	for i := range want.ErrorLog {
		w, g := want.ErrorLog[i], got.ErrorLog[i]
		if w.Offset != g.Offset || w.Tag != g.Tag || w.ResyncBytes != g.ResyncBytes || w.Cause.Error() != g.Cause.Error() {
			t.Fatalf("error log [%d]: want %+v (%v), got %+v (%v)", i, w, w.Cause, g, g.Cause)
		}
	}
	wPIDs, gPIDs := want.PIDs(), got.PIDs()
	if len(wPIDs) != len(gPIDs) {
		t.Fatalf("pids: want %v, got %v", wPIDs, gPIDs)
	}
	for i := range wPIDs {
		if wPIDs[i] != gPIDs[i] {
			t.Fatalf("pids: want %v, got %v", wPIDs, gPIDs)
		}
		wl, _ := want.Slice(wPIDs[i])
		gl, _ := got.Slice(wPIDs[i])
		if wl.App != gl.App || wl.PID != gl.PID || len(wl.Events) != len(gl.Events) {
			t.Fatalf("pid %d: want (%q, %d events), got (%q, %d events)",
				wPIDs[i], wl.App, len(wl.Events), gl.App, len(gl.Events))
		}
		for j := range wl.Events {
			we, ge := &wl.Events[j], &gl.Events[j]
			if we.Seq != ge.Seq || we.Type != ge.Type || !we.Time.Equal(ge.Time) ||
				we.PID != ge.PID || we.TID != ge.TID || len(we.Stack) != len(ge.Stack) {
				t.Fatalf("pid %d event %d: want %+v, got %+v", wPIDs[i], j, we, ge)
			}
			for k := range we.Stack {
				if we.Stack[k] != ge.Stack[k] {
					t.Fatalf("pid %d event %d frame %d: want %+v, got %+v",
						wPIDs[i], j, k, we.Stack[k], ge.Stack[k])
				}
			}
		}
	}
}

// FuzzParseBytesCrossCheck holds the zero-copy parser to the streaming
// parser's contract on arbitrary input, in both strictness modes:
// identical recovered records, identical drop accounting and identical
// resynchronization behaviour (error offsets, causes, resync bytes).
func FuzzParseBytesCrossCheck(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, in []byte) {
		for _, opts := range []etl.ParseOpts{{}, {Lenient: true}} {
			ref, refErr := etl.ParseWith(bytes.NewReader(in), opts)
			zc, zcErr := etl.ParseBytes(in, opts)
			if (refErr == nil) != (zcErr == nil) {
				t.Fatalf("lenient=%v: streaming err=%v, zero-copy err=%v", opts.Lenient, refErr, zcErr)
			}
			if refErr != nil {
				if refErr.Error() != zcErr.Error() {
					t.Fatalf("lenient=%v: error text diverged:\n  streaming: %v\n  zero-copy: %v", opts.Lenient, refErr, zcErr)
				}
				continue
			}
			sameRawFile(t, ref, zc)
		}
	})
}

func FuzzParseStrict(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, in []byte) {
		raw, err := etl.Parse(bytes.NewReader(in))
		if err != nil {
			return
		}
		if raw == nil {
			t.Fatal("strict parse returned nil file without error")
		}
		if len(raw.ErrorLog) != 0 {
			t.Fatalf("strict parse produced %d parse errors", len(raw.ErrorLog))
		}
	})
}

func FuzzParseLenient(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, in []byte) {
		soft, err := etl.ParseWith(bytes.NewReader(in), etl.ParseOpts{Lenient: true})
		if err == nil && soft == nil {
			t.Fatal("lenient parse returned nil file without error")
		}
		// Anything the strict parser accepts, the lenient parser must
		// accept identically: same events, no logged errors.
		strict, serr := etl.Parse(bytes.NewReader(in))
		if serr != nil {
			return
		}
		if err != nil {
			t.Fatalf("strict parse succeeded but lenient failed: %v", err)
		}
		if len(soft.ErrorLog) != 0 {
			t.Fatalf("lenient parse of a strict-valid stream logged %d errors", len(soft.ErrorLog))
		}
		if soft.TotalEvents() != strict.TotalEvents() || soft.Dropped != strict.Dropped {
			t.Fatalf("lenient = (%d events, %d dropped), strict = (%d, %d)",
				soft.TotalEvents(), soft.Dropped, strict.TotalEvents(), strict.Dropped)
		}
	})
}
