// Fuzz targets for the raw-log parser, in an external test package so the
// seed corpus can come from faultinject (which imports etl).
package etl_test

import (
	"bytes"
	"testing"

	"repro/internal/appsim"
	"repro/internal/etl"
	"repro/internal/faultinject"
)

// fuzzStream serialises a small but representative log: process record,
// events, stack records.
func fuzzStream(tb testing.TB) []byte {
	tb.Helper()
	payload := appsim.ReverseTCPProfile()
	p, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		tb.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: 99, Events: 60, PayloadFraction: 0.3, PID: 4})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := etl.WriteLogs(&buf, log); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// seedCorpus adds the clean stream, deterministic single-fault mutants of
// it, and a few degenerate inputs.
func seedCorpus(f *testing.F) {
	data := fuzzStream(f)
	f.Add(data)
	mutants, err := faultinject.Corpus(data, 7, 10)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range mutants {
		f.Add(m)
	}
	f.Add([]byte{})
	f.Add([]byte("LETL"))
	f.Add(data[:len(data)/3])
}

func FuzzParseStrict(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, in []byte) {
		raw, err := etl.Parse(bytes.NewReader(in))
		if err != nil {
			return
		}
		if raw == nil {
			t.Fatal("strict parse returned nil file without error")
		}
		if len(raw.ErrorLog) != 0 {
			t.Fatalf("strict parse produced %d parse errors", len(raw.ErrorLog))
		}
	})
}

func FuzzParseLenient(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, in []byte) {
		soft, err := etl.ParseWith(bytes.NewReader(in), etl.ParseOpts{Lenient: true})
		if err == nil && soft == nil {
			t.Fatal("lenient parse returned nil file without error")
		}
		// Anything the strict parser accepts, the lenient parser must
		// accept identically: same events, no logged errors.
		strict, serr := etl.Parse(bytes.NewReader(in))
		if serr != nil {
			return
		}
		if err != nil {
			t.Fatalf("strict parse succeeded but lenient failed: %v", err)
		}
		if len(soft.ErrorLog) != 0 {
			t.Fatalf("lenient parse of a strict-valid stream logged %d errors", len(soft.ErrorLog))
		}
		if soft.TotalEvents() != strict.TotalEvents() || soft.Dropped != strict.Dropped {
			t.Fatalf("lenient = (%d events, %d dropped), strict = (%d, %d)",
				soft.TotalEvents(), soft.Dropped, strict.TotalEvents(), strict.Dropped)
		}
	})
}
