package etl

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// byteReader is the zero-copy recordSource over an in-memory stream: no
// buffered reads, no per-primitive copies, just bounds-checked slicing.
// Its error and offset semantics match the streaming reader exactly (see
// recordSource), which the cross-check fuzz target enforces.
type byteReader struct {
	data []byte
	pos  int
}

func (rd *byteReader) offset() int64 { return int64(rd.pos) }

// fail consumes the remainder of the input and returns the truncation
// error the streaming reader would have produced for a short read: EOF
// when nothing was available, ErrUnexpectedEOF when a record was cut.
func (rd *byteReader) fail() error {
	atEOF := rd.pos >= len(rd.data)
	rd.pos = len(rd.data)
	if atEOF {
		return corrupt(io.EOF)
	}
	return corrupt(io.ErrUnexpectedEOF)
}

func (rd *byteReader) full(b []byte) error {
	if rd.pos+len(b) > len(rd.data) {
		copy(b, rd.data[rd.pos:])
		return rd.fail()
	}
	copy(b, rd.data[rd.pos:rd.pos+len(b)])
	rd.pos += len(b)
	return nil
}

func (rd *byteReader) discard(n int) error {
	if rd.pos+n > len(rd.data) {
		rd.pos = len(rd.data)
		return io.EOF
	}
	rd.pos += n
	return nil
}

func (rd *byteReader) u8() (uint8, error) {
	if rd.pos >= len(rd.data) {
		return 0, corrupt(io.EOF)
	}
	b := rd.data[rd.pos]
	rd.pos++
	return b, nil
}

func (rd *byteReader) u16() (uint16, error) {
	if rd.pos+2 > len(rd.data) {
		return 0, rd.fail()
	}
	v := binary.LittleEndian.Uint16(rd.data[rd.pos:])
	rd.pos += 2
	return v, nil
}

func (rd *byteReader) u32() (uint32, error) {
	if rd.pos+4 > len(rd.data) {
		return 0, rd.fail()
	}
	v := binary.LittleEndian.Uint32(rd.data[rd.pos:])
	rd.pos += 4
	return v, nil
}

func (rd *byteReader) u64() (uint64, error) {
	if rd.pos+8 > len(rd.data) {
		return 0, rd.fail()
	}
	v := binary.LittleEndian.Uint64(rd.data[rd.pos:])
	rd.pos += 8
	return v, nil
}

func (rd *byteReader) i64() (int64, error) {
	u, err := rd.u64()
	return int64(u), err
}

func (rd *byteReader) str() (string, error) {
	n, err := rd.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxString {
		return "", corrupt(fmt.Errorf("string length %d exceeds limit", n))
	}
	if rd.pos+int(n) > len(rd.data) {
		return "", rd.fail()
	}
	s := string(rd.data[rd.pos : rd.pos+int(n)])
	rd.pos += int(n)
	return s, nil
}

func (rd *byteReader) peek(n int) []byte {
	end := rd.pos + n
	if end > len(rd.data) {
		end = len(rd.data)
	}
	return rd.data[rd.pos:end]
}

// slabChunk is the minimum backing-array capacity a slab grows by, in
// frames. Large enough that a typical parse settles into one or two
// chunks, small enough not to waste memory on tiny logs.
const slabChunk = 4096

// Slab is a reusable arena for stack-walk frames. A parse carves every
// stack walk out of contiguous chunks instead of allocating one slice
// per stack record; reusing the slab across parses makes the steady
// state allocation-free.
//
// Ownership: every trace.StackWalk in a RawFile produced by
// ParseBytesSlab aliases the slab. The RawFile (and anything retaining
// its stacks) is valid only until the next Reset; callers that outlive
// the slab must Clone the walks they keep.
type Slab struct {
	frames []trace.Frame
}

// Reset recycles the slab's current chunk for the next parse. The
// caller asserts that no stack walk carved from the slab is still live.
func (s *Slab) Reset() { s.frames = s.frames[:0] }

// alloc carves n frames off the slab, growing the backing chunk when
// exhausted. Earlier walks keep aliasing the old chunk, so growth never
// invalidates them. Frames are returned un-zeroed: every caller
// overwrites all fields before the walk escapes.
func (s *Slab) alloc(n int) trace.StackWalk {
	if cap(s.frames)-len(s.frames) < n {
		c := 2 * cap(s.frames)
		if c < slabChunk {
			c = slabChunk
		}
		if c < n {
			c = n
		}
		s.frames = make([]trace.Frame, 0, c)
	}
	i := len(s.frames)
	s.frames = s.frames[:i+n]
	return trace.StackWalk(s.frames[i : i+n : i+n])
}

// ParseBytes is Parse/ParseWith over an in-memory stream on the
// zero-copy path: primitives are sliced straight out of data and stack
// walks are carved from a per-call frame slab, so the only steady
// allocations left are the recovered logs themselves. Behaviour —
// events, drop accounting, ErrorLog offsets and resynchronization — is
// byte-identical to ParseWith(bytes.NewReader(data), opts); the
// cross-check fuzz target holds the two to that contract.
func ParseBytes(data []byte, opts ParseOpts) (*RawFile, error) {
	return ParseBytesSlab(data, opts, nil)
}

// ParseBytesSlab is ParseBytes with a caller-owned frame slab, for
// ingest loops that parse many streams and want zero steady-state
// allocation from stack records. See Slab for the aliasing rules; a nil
// slab gets a private one whose lifetime is the returned RawFile's.
func ParseBytesSlab(data []byte, opts ParseOpts, slab *Slab) (*RawFile, error) {
	_, sp := telemetry.StartSpan(context.Background(), "etl/parse_bytes")
	defer sp.End()
	if opts.MaxErrors == 0 {
		opts.MaxErrors = DefaultMaxErrors
	}
	if slab == nil {
		slab = &Slab{}
	}
	p := &parser{
		rd:   &byteReader{data: data},
		opts: opts,
		f:    &RawFile{byPID: make(map[int]*trace.Log)},
		slab: slab,
	}
	f, err := p.parse()
	mParseBytes.Add(uint64(p.rd.offset()))
	mParseRecords.Add(p.records)
	if err != nil {
		mParseFailures.Inc()
		return nil, err
	}
	mParseEvents.Add(uint64(f.TotalEvents()))
	mParseDropped.Add(uint64(f.Dropped))
	return f, nil
}
