package etl

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/appsim"
	"repro/internal/trace"
)

// genLenientLog mirrors etl_test.go's generator for this file's tests.
func genLenientLog(t *testing.T, seed int64, pid, events int) *trace.Log {
	t.Helper()
	payload := appsim.ReverseTCPProfile()
	p, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: seed, Events: events, PayloadFraction: 0.3, PID: pid})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func serialize(t *testing.T, logs ...*trace.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteLogs(&buf, logs...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func lenient() ParseOpts { return ParseOpts{Lenient: true} }

func TestLenientParseCleanFileMatchesStrict(t *testing.T) {
	data := serialize(t, genLenientLog(t, 31, 5, 200))
	strict, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	soft, err := ParseWith(bytes.NewReader(data), lenient())
	if err != nil {
		t.Fatal(err)
	}
	if len(soft.ErrorLog) != 0 {
		t.Fatalf("clean file produced %d parse errors", len(soft.ErrorLog))
	}
	if soft.TotalEvents() != strict.TotalEvents() || soft.Dropped != strict.Dropped {
		t.Fatalf("lenient = (%d events, %d dropped), strict = (%d, %d)",
			soft.TotalEvents(), soft.Dropped, strict.TotalEvents(), strict.Dropped)
	}
}

func TestLenientParseRecoversAroundGarbage(t *testing.T) {
	log := genLenientLog(t, 32, 6, 150)
	data := serialize(t, log)
	spans, err := ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	// Inject garbage bytes right before the middle record.
	mid := spans[len(spans)/2]
	var mutated []byte
	mutated = append(mutated, data[:mid.Offset]...)
	mutated = append(mutated, 0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x00)
	mutated = append(mutated, data[mid.Offset:]...)

	if _, err := Parse(bytes.NewReader(mutated)); err == nil {
		t.Fatal("strict parse accepted garbage-bearing stream")
	}
	f, err := ParseWith(bytes.NewReader(mutated), lenient())
	if err != nil {
		t.Fatalf("lenient parse: %v", err)
	}
	if len(f.ErrorLog) == 0 {
		t.Fatal("garbage not reported in ErrorLog")
	}
	got, err := f.Slice(6)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() < log.Len()*9/10 {
		t.Fatalf("recovered %d/%d events", got.Len(), log.Len())
	}
}

func TestLenientParseToleratesTruncation(t *testing.T) {
	data := serialize(t, genLenientLog(t, 33, 7, 150))
	cut := data[:len(data)*3/4]
	if _, err := Parse(bytes.NewReader(cut)); err == nil {
		t.Fatal("strict parse accepted truncated stream")
	}
	f, err := ParseWith(bytes.NewReader(cut), lenient())
	if err != nil {
		t.Fatalf("lenient parse: %v", err)
	}
	if len(f.ErrorLog) == 0 {
		t.Fatal("truncation not reported in ErrorLog")
	}
	got, err := f.Slice(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("no events recovered before the cut")
	}
}

func TestLenientParseSkipsUndeclaredPIDEvent(t *testing.T) {
	log := genLenientLog(t, 34, 8, 40)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteProcess(8, log.App, log.Modules.Modules()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(log.Events[0]); err != nil {
		t.Fatal(err)
	}
	// Hand-craft an event for an undeclared pid (99): a semantic error
	// whose bytes are structurally fine.
	if err := writeU8(&w.cw, recEvent); err != nil {
		t.Fatal(err)
	}
	if err := writeU16(&w.cw, uint16(trace.EventFileRead)); err != nil {
		t.Fatal(err)
	}
	if err := writeI64(&w.cw, time.Unix(0, 5).UnixNano()); err != nil {
		t.Fatal(err)
	}
	if err := writeU32(&w.cw, 99); err != nil {
		t.Fatal(err)
	}
	if err := writeU32(&w.cw, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeU8(&w.cw, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(log.Events[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data := buf.Bytes()
	if _, err := Parse(bytes.NewReader(data)); err == nil {
		t.Fatal("strict parse accepted undeclared-pid event")
	}
	f, err := ParseWith(bytes.NewReader(data), lenient())
	if err != nil {
		t.Fatalf("lenient parse: %v", err)
	}
	if len(f.ErrorLog) != 1 {
		t.Fatalf("ErrorLog has %d entries, want 1", len(f.ErrorLog))
	}
	if f.ErrorLog[0].Tag != recEvent {
		t.Errorf("ErrorLog tag = 0x%02x, want event", f.ErrorLog[0].Tag)
	}
	got, err := f.Slice(8)
	if err != nil {
		t.Fatal(err)
	}
	// Both surrounding events survive the skipped one.
	if got.Len() != 2 {
		t.Fatalf("recovered %d events, want 2", got.Len())
	}
}

func TestLenientParseErrorBudget(t *testing.T) {
	data := serialize(t, genLenientLog(t, 35, 9, 100))
	// Corrupt many records: flip a byte in every fourth record body.
	spans, err := ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), data...)
	for i, sp := range spans {
		if sp.Tag == TagEnd || sp.Tag == TagProcess || i%4 != 0 {
			continue
		}
		// Clobber the tag byte: a structural error per corrupted record.
		mutated[sp.Offset] = 0x77
	}
	_, err = ParseWith(bytes.NewReader(mutated), ParseOpts{Lenient: true, MaxErrors: 2})
	if err == nil {
		t.Fatal("parse under tiny error budget succeeded")
	}
	if !errors.Is(err, ErrTooManyErrors) {
		t.Errorf("error %v does not wrap ErrTooManyErrors", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("error %v does not wrap ErrCorrupt", err)
	}
	// The same stream parses under the default budget.
	if _, err := ParseWith(bytes.NewReader(mutated), lenient()); err != nil {
		t.Fatalf("default budget: %v", err)
	}
}

func TestParseErrorOffsetsIncrease(t *testing.T) {
	data := serialize(t, genLenientLog(t, 36, 10, 120))
	spans, err := ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), data...)
	for i, sp := range spans {
		if sp.Tag != TagEvent || i%5 != 0 {
			continue
		}
		// Clobber the event's pid field so it fails semantically.
		mutated[int(sp.Offset)+11] = 0xFA
	}
	f, err := ParseWith(bytes.NewReader(mutated), lenient())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.ErrorLog) == 0 {
		t.Fatal("no errors recorded")
	}
	for i := 1; i < len(f.ErrorLog); i++ {
		if f.ErrorLog[i].Offset <= f.ErrorLog[i-1].Offset {
			t.Fatalf("ErrorLog offsets not increasing: %d then %d",
				f.ErrorLog[i-1].Offset, f.ErrorLog[i].Offset)
		}
	}
}

func TestScanRecordsCoversStream(t *testing.T) {
	log := genLenientLog(t, 37, 11, 80)
	data := serialize(t, log)
	spans, err := ScanRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	pos := int64(HeaderLen)
	var events, stacks, procs int
	for _, sp := range spans {
		if sp.Offset != pos {
			t.Fatalf("span at %d, expected %d (gaps/overlaps)", sp.Offset, pos)
		}
		pos += int64(sp.Len)
		switch sp.Tag {
		case TagEvent:
			events++
		case TagStack:
			stacks++
		case TagProcess:
			procs++
		}
	}
	if pos != int64(len(data)) {
		t.Fatalf("spans cover %d bytes, file has %d", pos, len(data))
	}
	if spans[len(spans)-1].Tag != TagEnd {
		t.Error("last span is not the end record")
	}
	if procs != 1 || events != log.Len() {
		t.Errorf("scanned %d processes / %d events, want 1 / %d", procs, events, log.Len())
	}
	if stacks == 0 {
		t.Error("no stack records scanned")
	}
	if _, err := ScanRecords([]byte("nope")); err == nil {
		t.Error("ScanRecords accepted bad header")
	}
}
