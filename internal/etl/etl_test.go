package etl

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/appsim"
	"repro/internal/trace"
)

// genLog produces a simulated log for round-trip testing.
func genLog(t *testing.T, seed int64, pid, events int) *trace.Log {
	t.Helper()
	payload := appsim.ReverseTCPProfile()
	p, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: seed, Events: events, PayloadFraction: 0.3, PID: pid})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestRoundTripSingleProcess(t *testing.T) {
	orig := genLog(t, 1, 42, 300)
	var buf bytes.Buffer
	if err := WriteLogs(&buf, orig); err != nil {
		t.Fatalf("WriteLogs: %v", err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", f.Dropped)
	}
	got, err := f.Slice(42)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	assertLogsEqual(t, orig, got)
	if _, err := f.SliceApp("vim.exe"); err != nil {
		t.Errorf("SliceApp(vim.exe): %v", err)
	}
	if _, err := f.SliceApp("chrome.exe"); err == nil {
		t.Error("SliceApp(chrome.exe) found a log in a vim-only file")
	}
	if _, err := f.Slice(99); err == nil {
		t.Error("Slice(99) found a log for an untraced pid")
	}
}

func TestRoundTripMultiProcessInterleaved(t *testing.T) {
	a := genLog(t, 2, 10, 250)
	b := genLog(t, 3, 11, 250)
	var buf bytes.Buffer
	if err := WriteLogs(&buf, a, b); err != nil {
		t.Fatalf("WriteLogs: %v", err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pids := f.PIDs()
	if len(pids) != 2 || pids[0] != 10 || pids[1] != 11 {
		t.Fatalf("PIDs() = %v, want [10 11]", pids)
	}
	gotA, _ := f.Slice(10)
	gotB, _ := f.Slice(11)
	assertLogsEqual(t, a, gotA)
	assertLogsEqual(t, b, gotB)
}

func assertLogsEqual(t *testing.T, want, got *trace.Log) {
	t.Helper()
	if got.App != want.App || got.PID != want.PID {
		t.Fatalf("log identity = (%q,%d), want (%q,%d)", got.App, got.PID, want.App, want.PID)
	}
	if got.Len() != want.Len() {
		t.Fatalf("event count = %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Events {
		we, ge := want.Events[i], got.Events[i]
		if ge.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ge.Seq)
		}
		if ge.Type != we.Type || !ge.Time.Equal(we.Time) || ge.TID != we.TID {
			t.Fatalf("event %d = {%v %v %d}, want {%v %v %d}",
				i, ge.Type, ge.Time, ge.TID, we.Type, we.Time, we.TID)
		}
		if len(ge.Stack) != len(we.Stack) {
			t.Fatalf("event %d stack len = %d, want %d", i, len(ge.Stack), len(we.Stack))
		}
		for j := range we.Stack {
			if ge.Stack[j] != we.Stack[j] {
				t.Fatalf("event %d frame %d = %v, want %v", i, j, ge.Stack[j], we.Stack[j])
			}
		}
	}
	// Module maps must survive the trip too.
	if len(got.Modules.Modules()) != len(want.Modules.Modules()) {
		t.Fatalf("module count = %d, want %d", len(got.Modules.Modules()), len(want.Modules.Modules()))
	}
}

func TestWriteLogsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLogs(&buf); err == nil {
		t.Error("WriteLogs() with no logs succeeded")
	}
	if err := WriteLogs(&buf, &trace.Log{App: "x", PID: 1}); err == nil {
		t.Error("WriteLogs() with nil module map succeeded")
	}
}

func TestWriterRejectsUndeclaredPID(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	err := w.WriteEvent(trace.Event{PID: 5, Type: trace.EventFileRead, Time: time.Unix(0, 1)})
	if err == nil {
		t.Fatal("WriteEvent for undeclared pid succeeded")
	}
	// The writer stays failed.
	if err2 := w.Close(); err2 == nil {
		t.Error("Close() after failure returned nil")
	}
}

func TestWriterRejectsDuplicateProcess(t *testing.T) {
	log := genLog(t, 4, 7, 50)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteProcess(7, log.App, log.Modules.Modules()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteProcess(7, log.App, log.Modules.Modules()); err == nil {
		t.Error("duplicate WriteProcess succeeded")
	}
}

func TestParseCorruptInputs(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteLogs(&buf, genLog(t, 5, 3, 40)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE\x01\x00\xff")},
		{"truncated header", []byte("LE")},
		{"bad version", []byte("LETL\x09\x00\xff")},
		{"unknown tag", append([]byte("LETL\x01\x00"), 0x77)},
		{"truncated mid-file", valid[:len(valid)/2]},
		{"missing end", valid[:len(valid)-1]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(bytes.NewReader(tt.data))
			if err == nil {
				t.Fatal("Parse succeeded on corrupt input")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

func TestParseEventBeforeProcessRejected(t *testing.T) {
	// recEvent for a pid with no process record.
	data := []byte("LETL\x01\x00")
	data = append(data, recEvent)
	data = append(data, 0x01, 0x00)                                     // type
	data = append(data, 0, 0, 0, 0, 0, 0, 0, 0)                         // time
	data = append(data, 0x05, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00) // pid, tid
	data = append(data, 0x00)                                           // flags
	data = append(data, recEnd)
	if _, err := Parse(bytes.NewReader(data)); err == nil {
		t.Fatal("Parse accepted event before process record")
	}
}

func TestParseOrphanStackDropped(t *testing.T) {
	log := genLog(t, 6, 9, 30)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteProcess(9, log.App, log.Modules.Modules()); err != nil {
		t.Fatal(err)
	}
	// Emit a stack record with no pending event.
	if err := writeU8(&w.cw, recStack); err != nil {
		t.Fatal(err)
	}
	if err := writeU32(&w.cw, 9); err != nil {
		t.Fatal(err)
	}
	if err := writeU32(&w.cw, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeU16(&w.cw, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeU64(&w.cw, 0x401000); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", f.Dropped)
	}
}

func TestParseResolvesFrames(t *testing.T) {
	orig := genLog(t, 7, 12, 100)
	var buf bytes.Buffer
	if err := WriteLogs(&buf, orig); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := f.Slice(12)
	// Benign frames must re-resolve to module/function names.
	var sawResolved bool
	for _, e := range got.Events {
		for _, fr := range e.Stack {
			if fr.Module == "vim.exe" && fr.Function != "" {
				sawResolved = true
			}
		}
	}
	if !sawResolved {
		t.Error("no resolved application frames after parsing")
	}
}

func TestWriterStringTooLong(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	long := strings.Repeat("x", maxString+1)
	mod, err := trace.NewModule("m.exe", trace.ModuleApp, 0x1000, 0x100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteProcess(1, long, []*trace.Module{mod}); err == nil {
		t.Error("overlong app name accepted")
	}
}

func TestWriterBytesWritten(t *testing.T) {
	log := genLog(t, 8, 2, 60)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteProcess(2, log.App, log.Modules.Modules()); err != nil {
		t.Fatal(err)
	}
	for _, e := range log.Events {
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, buffer has %d", w.BytesWritten(), buf.Len())
	}
}

// Property: Parse never panics on arbitrary byte soup — it either returns
// a file or an error.
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Parse(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: flipping one byte of a valid file never panics and, when it
// parses, yields a structurally sane result.
func TestParseBitflipRobustness(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLogs(&buf, genLog(t, 9, 1, 40)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, len(valid))
		copy(data, valid)
		data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bitflip trial %d: %v", trial, r)
				}
			}()
			f, err := Parse(bytes.NewReader(data))
			if err != nil {
				return
			}
			for _, pid := range f.PIDs() {
				log, err := f.Slice(pid)
				if err != nil || log == nil {
					t.Fatalf("inconsistent parse on trial %d", trial)
				}
			}
		}()
	}
}
