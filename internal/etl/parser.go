package etl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/trace"
)

// RawFile is the parsed content of a raw event-trace-log: the per-process
// stack-event correlated logs, ready for application slicing.
type RawFile struct {
	byPID map[int]*trace.Log
	// Dropped counts stack records that could not be correlated with a
	// pending event and were discarded.
	Dropped int
}

// PIDs returns the traced process ids in ascending order.
func (f *RawFile) PIDs() []int {
	out := make([]int, 0, len(f.byPID))
	for pid := range f.byPID {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// Slice returns the stack-event correlated log of one process — the
// paper's per-application slicing step.
func (f *RawFile) Slice(pid int) (*trace.Log, error) {
	l, ok := f.byPID[pid]
	if !ok {
		return nil, fmt.Errorf("etl: no process %d in file", pid)
	}
	return l, nil
}

// SliceApp returns the log of the process running the named application.
func (f *RawFile) SliceApp(app string) (*trace.Log, error) {
	for _, l := range f.byPID {
		if l.App == app {
			return l, nil
		}
	}
	return nil, fmt.Errorf("etl: no process running %q in file", app)
}

// Parse reads a raw event-trace-log, correlates each stack-walk record
// with the event that triggered it, resolves every frame against the
// process's module map, and slices the stream per process.
func Parse(r io.Reader) (*RawFile, error) {
	rd := &reader{r: bufio.NewReader(r)}

	head := make([]byte, len(magic))
	if _, err := io.ReadFull(rd.r, head); err != nil {
		return nil, corrupt(err)
	}
	if string(head) != magic {
		return nil, corrupt(fmt.Errorf("bad magic %q", head))
	}
	ver, err := rd.u16()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, corrupt(fmt.Errorf("unsupported version %d", ver))
	}

	f := &RawFile{byPID: make(map[int]*trace.Log)}
	// pending[pid<<32|tid] holds the index of the event awaiting its
	// stack record.
	pending := make(map[uint64]int)
	key := func(pid, tid int) uint64 { return uint64(pid)<<32 | uint64(uint32(tid)) }

	for {
		tag, err := rd.u8()
		if err != nil {
			return nil, err
		}
		switch tag {
		case recEnd:
			if len(pending) > 0 {
				f.Dropped += len(pending)
			}
			return f, nil

		case recProcess:
			pid, app, mm, err := parseProcess(rd)
			if err != nil {
				return nil, err
			}
			if _, dup := f.byPID[pid]; dup {
				return nil, corrupt(fmt.Errorf("duplicate process record for pid %d", pid))
			}
			f.byPID[pid] = &trace.Log{App: app, PID: pid, Modules: mm}

		case recEvent:
			typ, err := rd.u16()
			if err != nil {
				return nil, err
			}
			ns, err := rd.i64()
			if err != nil {
				return nil, err
			}
			pid, err := rd.u32()
			if err != nil {
				return nil, err
			}
			tid, err := rd.u32()
			if err != nil {
				return nil, err
			}
			flags, err := rd.u8()
			if err != nil {
				return nil, err
			}
			l, ok := f.byPID[int(pid)]
			if !ok {
				return nil, corrupt(fmt.Errorf("event for undeclared pid %d", pid))
			}
			e := trace.Event{
				Seq:  l.Len(),
				Type: trace.EventType(typ),
				Time: time.Unix(0, ns).UTC(),
				PID:  int(pid),
				TID:  int(tid),
			}
			l.Events = append(l.Events, e)
			if flags&flagHasStack != 0 {
				k := key(int(pid), int(tid))
				if _, dangling := pending[k]; dangling {
					f.Dropped++
				}
				pending[k] = l.Len() - 1
			}

		case recStack:
			pid, err := rd.u32()
			if err != nil {
				return nil, err
			}
			tid, err := rd.u32()
			if err != nil {
				return nil, err
			}
			n, err := rd.u16()
			if err != nil {
				return nil, err
			}
			if int(n) > maxFrames {
				return nil, corrupt(fmt.Errorf("stack of %d frames exceeds limit", n))
			}
			stack := make(trace.StackWalk, n)
			for i := range stack {
				addr, err := rd.u64()
				if err != nil {
					return nil, err
				}
				stack[i].Addr = addr
			}
			l, ok := f.byPID[int(pid)]
			if !ok {
				return nil, corrupt(fmt.Errorf("stack for undeclared pid %d", pid))
			}
			k := key(int(pid), int(tid))
			idx, ok := pending[k]
			if !ok {
				// Orphan stack walk: no event awaits it. Real parsers
				// tolerate these (lost events under load); drop it.
				f.Dropped++
				continue
			}
			delete(pending, k)
			l.Events[idx].Stack = l.Modules.ResolveStack(stack)

		default:
			return nil, corrupt(fmt.Errorf("unknown record tag 0x%02x", tag))
		}
	}
}

// parseProcess reads the body of a recProcess record.
func parseProcess(rd *reader) (int, string, *trace.ModuleMap, error) {
	pid, err := rd.u32()
	if err != nil {
		return 0, "", nil, err
	}
	app, err := rd.str()
	if err != nil {
		return 0, "", nil, err
	}
	nMods, err := rd.u32()
	if err != nil {
		return 0, "", nil, err
	}
	const maxModules = 4096
	if nMods > maxModules {
		return 0, "", nil, corrupt(fmt.Errorf("module count %d exceeds limit", nMods))
	}
	mods := make([]*trace.Module, 0, nMods)
	for i := uint32(0); i < nMods; i++ {
		name, err := rd.str()
		if err != nil {
			return 0, "", nil, err
		}
		kind, err := rd.u8()
		if err != nil {
			return 0, "", nil, err
		}
		base, err := rd.u64()
		if err != nil {
			return 0, "", nil, err
		}
		size, err := rd.u64()
		if err != nil {
			return 0, "", nil, err
		}
		nSyms, err := rd.u32()
		if err != nil {
			return 0, "", nil, err
		}
		const maxSymbols = 1 << 20
		if nSyms > maxSymbols {
			return 0, "", nil, corrupt(fmt.Errorf("symbol count %d exceeds limit", nSyms))
		}
		syms := make([]trace.Symbol, 0, nSyms)
		for j := uint32(0); j < nSyms; j++ {
			sName, err := rd.str()
			if err != nil {
				return 0, "", nil, err
			}
			sAddr, err := rd.u64()
			if err != nil {
				return 0, "", nil, err
			}
			syms = append(syms, trace.Symbol{Name: sName, Addr: sAddr})
		}
		m, err := trace.NewModule(name, trace.ModuleKind(kind), base, size, syms)
		if err != nil {
			return 0, "", nil, corrupt(err)
		}
		mods = append(mods, m)
	}
	mm, err := trace.NewModuleMap(app, mods)
	if err != nil {
		return 0, "", nil, corrupt(err)
	}
	return int(pid), app, mm, nil
}
